// Package multistep implements the paper's multi-step traversal
// (Sections 4.3 and 6): l BFS steps of Toom-Cook-k merged into a single
// step of a degree-k^l algorithm, whose evaluation points live in F^l.
// Fault tolerance then needs only f redundant *multivariate* evaluation
// points — f extra grid columns of P/(2k-1)^l processors each (Figure 3),
// instead of f·P/(2k-1) — provided the extended point set is in
// (2k-1, l)-general position (Definition 6.1). The redundant points are
// found with the Section 6.2 heuristic (points.FindRedundant).
//
// The package realizes the merged step as an explicit bilinear algorithm:
// inputs split into k^l digits (one variable per merged level, Claim 2.1),
// evaluated at the (2k-1)^l + f points, multiplied pointwise, and
// interpolated from any (2k-1)^l surviving products with an on-the-fly
// matrix. Erasing up to f products — the multiplication-phase fault model —
// never changes the result.
package multistep

import (
	"fmt"

	"repro/internal/bigint"
	"repro/internal/mat"
	"repro/internal/points"
	"repro/internal/poly"
	"repro/internal/rat"
	"repro/internal/toom"
)

// Algorithm is a fault-tolerant merged-step Toom-Cook-k^l bilinear form.
type Algorithm struct {
	K, L, F int
	pts     []points.MultiPoint
	u       [][]int64 // ((2k-1)^l+f) × k^l evaluation matrix
	base    *toom.Algorithm
	wCache  map[string]cachedW
}

type cachedW struct {
	rows [][]int64
	den  int64
}

// New constructs the merged-step algorithm: the (2k-1)^l tensor grid of the
// standard finite values extended with f redundant points from the general-
// position heuristic.
func New(k, l, f int) (*Algorithm, error) {
	if k < 2 {
		return nil, fmt.Errorf("multistep: k must be >= 2")
	}
	if l < 1 {
		return nil, fmt.Errorf("multistep: l must be >= 1")
	}
	if f < 0 {
		return nil, fmt.Errorf("multistep: negative redundancy")
	}
	// Base values: 0, 1, -1, 2, -2, … (2k-1 finite values; ∞ is not
	// available in the multivariate affine setting of Section 6).
	base := make([]rat.Rat, 2*k-1)
	base[0] = rat.Zero()
	v := int64(1)
	for i := 1; i < len(base); i += 2 {
		base[i] = rat.FromInt64(v)
		if i+1 < len(base) {
			base[i+1] = rat.FromInt64(-v)
		}
		v++
	}
	pts := points.TensorPoints(base, l)
	if f > 0 {
		extra, err := points.FindRedundant(pts, 2*k-1, l, f, 16)
		if err != nil {
			return nil, fmt.Errorf("multistep: redundant point search: %w", err)
		}
		pts = append(pts, extra...)
	}
	um := points.MultiEvalMatrix(pts, k, l)
	u, err := toom.IntRows(um)
	if err != nil {
		return nil, fmt.Errorf("multistep: evaluation matrix not integral: %w", err)
	}
	balg, err := toom.New(k)
	if err != nil {
		return nil, err
	}
	return &Algorithm{K: k, L: l, F: f, pts: pts, u: u, base: balg, wCache: map[string]cachedW{}}, nil
}

// Points returns the evaluation points (copy).
func (alg *Algorithm) Points() []points.MultiPoint {
	return append([]points.MultiPoint(nil), alg.pts...)
}

// NumProducts returns the pointwise product count (2k-1)^l + f.
func (alg *Algorithm) NumProducts() int { return len(alg.pts) }

// Need returns the number of products interpolation requires: (2k-1)^l.
func (alg *Algorithm) Need() int { return len(alg.pts) - alg.F }

// ProcessorsPerFault returns the paper's Figure 3 claim: with l merged
// steps on P processors, each tolerated fault costs P/(2k-1)^l additional
// processors (down to f total when l = log_{2k-1} P).
func ProcessorsPerFault(p, k, l int) int {
	d := 1
	for i := 0; i < l; i++ {
		d *= 2*k - 1
	}
	return p / d
}

// Mul multiplies via the merged step with no erasures.
func (alg *Algorithm) Mul(a, b bigint.Int) (bigint.Int, error) {
	return alg.MulWithErasures(a, b, nil)
}

// MulWithErasures multiplies while discarding the pointwise products listed
// in dead (product indices, at most F of them) — the multiplication-phase
// fault model. The interpolation matrix is built on the fly from the
// surviving points, exactly as in Section 4.2.
func (alg *Algorithm) MulWithErasures(a, b bigint.Int, dead []int) (bigint.Int, error) {
	if len(dead) > alg.F {
		return bigint.Int{}, fmt.Errorf("multistep: %d erasures exceed tolerance f=%d", len(dead), alg.F)
	}
	deadSet := map[int]bool{}
	for _, d := range dead {
		if d < 0 || d >= len(alg.pts) {
			return bigint.Int{}, fmt.Errorf("multistep: erasure index %d out of range", d)
		}
		if deadSet[d] {
			return bigint.Int{}, fmt.Errorf("multistep: repeated erasure index %d", d)
		}
		deadSet[d] = true
	}

	neg := a.Sign()*b.Sign() < 0
	a, b = a.Abs(), b.Abs()
	if a.IsZero() || b.IsZero() {
		return bigint.Zero(), nil
	}
	kl := pow(alg.K, alg.L)
	maxBits := a.BitLen()
	if b.BitLen() > maxBits {
		maxBits = b.BitLen()
	}
	shift := (maxBits + kl - 1) / kl
	da := digitsOf(a, kl, shift)
	db := digitsOf(b, kl, shift)

	// Evaluation at all (2k-1)^l + f points.
	ea := toom.ApplyRows(alg.u, da)
	eb := toom.ApplyRows(alg.u, db)

	// Pointwise products — skipping the erased ones entirely, as the
	// halted columns of Figure 3 would.
	prods := make([]bigint.Int, len(alg.pts))
	for i := range prods {
		if deadSet[i] {
			continue
		}
		prods[i] = alg.base.Mul(ea[i], eb[i])
	}

	// On-the-fly interpolation from the first Need() survivors.
	surv := make([]int, 0, alg.Need())
	for i := 0; i < len(alg.pts) && len(surv) < alg.Need(); i++ {
		if !deadSet[i] {
			surv = append(surv, i)
		}
	}
	w, err := alg.interpFor(surv)
	if err != nil {
		return bigint.Int{}, err
	}
	sel := make([]bigint.Int, len(surv))
	for i, idx := range surv {
		sel[i] = prods[idx]
	}
	coeffs := toom.ApplyRows(w.rows, sel)
	for i := range coeffs {
		coeffs[i] = coeffs[i].DivExactInt64(w.den)
	}

	// Recompose the multivariate product polynomial at the base tower
	// (Claim 2.1's variable assignment y_j = 2^{shift·k^{l-j}}).
	mp := &poly.MultiPoly{R: 2*alg.K - 1, L: alg.L, Coeffs: coeffs}
	z := mp.EvalBase2Tower(alg.K, shift)
	if neg {
		z = z.Neg()
	}
	return z, nil
}

// interpFor builds (and caches) the scaled interpolation matrix for a
// surviving product subset: the inverse of the product-width evaluation
// matrix restricted to those points, which the (2k-1, l)-general position
// of the point set guarantees to exist (Claim 6.1).
func (alg *Algorithm) interpFor(surv []int) (cachedW, error) {
	key := fmt.Sprint(surv)
	if w, ok := alg.wCache[key]; ok {
		return w, nil
	}
	pts := make([]points.MultiPoint, len(surv))
	for i, idx := range surv {
		pts[i] = alg.pts[idx]
	}
	e := points.MultiEvalMatrix(pts, 2*alg.K-1, alg.L)
	inv, err := e.Inverse()
	if err != nil {
		return cachedW{}, fmt.Errorf("multistep: surviving set not invertible (general position violated?): %w", err)
	}
	rows, den, err := toom.ScaledRows(inv)
	if err != nil {
		return cachedW{}, err
	}
	w := cachedW{rows: rows, den: den}
	alg.wCache[key] = w
	return w, nil
}

// GeneralPosition verifies the extended point set is in (2k-1, l)-general
// position (exponential check; intended for tests and setup validation).
func (alg *Algorithm) GeneralPosition() bool {
	return points.InGeneralPosition(alg.pts, 2*alg.K-1, alg.L)
}

// EvalMatrix exposes the extended evaluation matrix (for diagnostics).
func (alg *Algorithm) EvalMatrix() *mat.Matrix {
	return points.MultiEvalMatrix(alg.pts, alg.K, alg.L)
}

func digitsOf(v bigint.Int, n, shift int) []bigint.Int {
	out := make([]bigint.Int, n)
	for i := 0; i < n; i++ {
		out[i] = v.Extract(i*shift, shift)
	}
	return out
}

func pow(b, e int) int {
	out := 1
	for i := 0; i < e; i++ {
		out *= b
	}
	return out
}
