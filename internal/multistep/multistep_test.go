package multistep

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bigint"
)

func randOperand(rng *rand.Rand, bits int) bigint.Int {
	x := bigint.Random(rng, bits)
	if rng.Intn(2) == 0 {
		x = x.Neg()
	}
	return x
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 2, 0); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := New(2, 0, 0); err == nil {
		t.Error("l=0 should fail")
	}
	if _, err := New(2, 2, -1); err == nil {
		t.Error("negative f should fail")
	}
}

func TestPointCounts(t *testing.T) {
	alg, err := New(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if alg.NumProducts() != 9+2 {
		t.Errorf("products = %d, want 11", alg.NumProducts())
	}
	if alg.Need() != 9 {
		t.Errorf("need = %d, want 9", alg.Need())
	}
}

func TestGeneralPosition(t *testing.T) {
	// The Section 6.2 heuristic must deliver a set in (2k-1, l)-general
	// position — the validity condition of Section 6.1.
	for _, c := range []struct{ k, l, f int }{{2, 1, 2}, {2, 2, 1}, {2, 2, 2}} {
		alg, err := New(c.k, c.l, c.f)
		if err != nil {
			t.Fatalf("k=%d l=%d f=%d: %v", c.k, c.l, c.f, err)
		}
		if !alg.GeneralPosition() {
			t.Errorf("k=%d l=%d f=%d: extended set not in general position", c.k, c.l, c.f)
		}
	}
}

func TestMulMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(111))
	for _, c := range []struct{ k, l, f int }{{2, 1, 0}, {2, 2, 0}, {2, 2, 2}, {3, 1, 2}} {
		alg, err := New(c.k, c.l, c.f)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 15; trial++ {
			a := randOperand(rng, 4096)
			b := randOperand(rng, 4096)
			got, err := alg.Mul(a, b)
			if err != nil {
				t.Fatal(err)
			}
			want := new(big.Int).Mul(a.ToBig(), b.ToBig())
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("k=%d l=%d f=%d: product mismatch", c.k, c.l, c.f)
			}
		}
	}
}

func TestMulWithErasuresAllSingles(t *testing.T) {
	// Every single-product erasure must be recoverable: the heart of the
	// Figure 3 / Section 4.3 construction.
	rng := rand.New(rand.NewSource(112))
	alg, err := New(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randOperand(rng, 2048), randOperand(rng, 2048)
	want := new(big.Int).Mul(a.ToBig(), b.ToBig())
	for d := 0; d < alg.NumProducts(); d++ {
		got, err := alg.MulWithErasures(a, b, []int{d})
		if err != nil {
			t.Fatalf("erasure %d: %v", d, err)
		}
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("erasure %d: wrong product", d)
		}
	}
}

func TestMulWithErasuresPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	alg, err := New(2, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	a, b := randOperand(rng, 1024), randOperand(rng, 1024)
	want := new(big.Int).Mul(a.ToBig(), b.ToBig())
	n := alg.NumProducts()
	for d1 := 0; d1 < n; d1 += 3 {
		for d2 := d1 + 1; d2 < n; d2 += 4 {
			got, err := alg.MulWithErasures(a, b, []int{d1, d2})
			if err != nil {
				t.Fatalf("erasures (%d,%d): %v", d1, d2, err)
			}
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("erasures (%d,%d): wrong product", d1, d2)
			}
		}
	}
}

func TestErasureValidation(t *testing.T) {
	alg, _ := New(2, 1, 1)
	a, b := bigint.FromInt64(12345), bigint.FromInt64(67890)
	if _, err := alg.MulWithErasures(a, b, []int{0, 1}); err == nil {
		t.Error("too many erasures should fail")
	}
	if _, err := alg.MulWithErasures(a, b, []int{99}); err == nil {
		t.Error("out-of-range erasure should fail")
	}
	if _, err := alg.MulWithErasures(a, b, []int{1, 1}); err != nil {
		// duplicate exceeds f=1 anyway; check explicit duplicate error with f=2
	}
	alg2, _ := New(2, 1, 2)
	if _, err := alg2.MulWithErasures(a, b, []int{1, 1}); err == nil {
		t.Error("duplicate erasures should fail")
	}
}

func TestZeroOperands(t *testing.T) {
	alg, _ := New(2, 2, 1)
	got, err := alg.Mul(bigint.Zero(), bigint.FromInt64(42))
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsZero() {
		t.Errorf("0·42 = %v", got)
	}
}

func TestProcessorsPerFault(t *testing.T) {
	// The Figure 3 arithmetic: P=27, k=2 — one merged step needs 9 procs
	// per fault, two need 3, three need 1 (the paper's best case: f total).
	if got := ProcessorsPerFault(27, 2, 1); got != 9 {
		t.Errorf("l=1: %d", got)
	}
	if got := ProcessorsPerFault(27, 2, 2); got != 3 {
		t.Errorf("l=2: %d", got)
	}
	if got := ProcessorsPerFault(27, 2, 3); got != 1 {
		t.Errorf("l=3: %d", got)
	}
}
