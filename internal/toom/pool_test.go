package toom

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"

	"repro/internal/bigint"
)

// TestMulConcurrentPoolBounded is the acceptance test for the bounded
// worker pool: a depth-2 MulConcurrent fan-out (which in the seed spawned
// (2k-1)² goroutines) must never have more than GOMAXPROCS pool workers
// live at once, and must still compute the exact product.
func TestMulConcurrentPoolBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for _, k := range []int{2, 3} {
		t.Run(fmt.Sprintf("k=%d", k), func(t *testing.T) {
			alg := MustNew(k)
			a := bigint.Random(rng, 1<<14)
			b := bigint.Random(rng, 1<<14)
			leafPool.ResetStats()
			got := alg.MulConcurrent(a, b, 2)
			if want := alg.Mul(a, b); !got.Equal(want) {
				t.Fatalf("MulConcurrent(depth=2) product mismatch")
			}
			capacity, peak, spawned, inline := PoolStats()
			if capacity != max(runtime.GOMAXPROCS(0), 1) {
				t.Fatalf("pool capacity %d, want GOMAXPROCS=%d", capacity, runtime.GOMAXPROCS(0))
			}
			if peak > int64(capacity) {
				t.Fatalf("pool peak %d exceeds capacity %d: unbounded fan-out", peak, capacity)
			}
			// The depth-2 tree exposes (2k-1)+(2k-1)² tasks; everything the
			// pool declined must have run inline rather than been dropped.
			tasks := int64((2*k - 1) + (2*k-1)*(2*k-1))
			if spawned+inline != tasks {
				t.Fatalf("spawned(%d)+inline(%d) != submitted tasks(%d)", spawned, inline, tasks)
			}
		})
	}
}

// TestMulConcurrentSharedPoolRace is the race-detector smoke test for the
// pool (run via `go test -race`, wired into the Makefile's race target):
// several goroutines hammer the shared pool with depth-2 multiplies for
// k=2 and k=3 simultaneously, all drawing from the same slots.
func TestMulConcurrentSharedPoolRace(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	type job struct {
		alg  *Algorithm
		a, b bigint.Int
		want bigint.Int
	}
	var jobs []job
	for _, k := range []int{2, 3} {
		alg := MustNew(k)
		a := bigint.Random(rng, 1<<13)
		b := bigint.Random(rng, 1<<13)
		jobs = append(jobs, job{alg, a, b, alg.Mul(a, b)})
	}
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 4; w++ {
		for _, j := range jobs {
			wg.Add(1)
			j := j
			go func() {
				defer wg.Done()
				if got := j.alg.MulConcurrent(j.a, j.b, 2); !got.Equal(j.want) {
					errs <- fmt.Errorf("concurrent product mismatch (k=%d)", j.alg.K())
				}
			}()
		}
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if _, peak, _, _ := PoolStats(); peak > int64(max(runtime.GOMAXPROCS(0), 1)) {
		t.Fatalf("pool peak %d exceeded GOMAXPROCS under contention", peak)
	}
}
