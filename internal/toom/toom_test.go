package toom

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bigint"
	"repro/internal/points"
)

func randOperand(rng *rand.Rand, maxBits int) bigint.Int {
	x := bigint.Random(rng, 1+rng.Intn(maxBits))
	if rng.Intn(2) == 0 {
		x = x.Neg()
	}
	return x
}

func TestNewValidations(t *testing.T) {
	if _, err := New(1); err == nil {
		t.Error("k=1 should be rejected")
	}
	if _, err := NewWithPoints(3, points.Standard(4)); err == nil {
		t.Error("wrong point count should be rejected")
	}
	dup := []points.Point{points.FiniteInt64(0), points.FiniteInt64(1), points.FiniteInt64(1)}
	if _, err := NewWithPoints(2, dup); err == nil {
		t.Error("duplicate points should be rejected")
	}
}

func TestKnownSmallProducts(t *testing.T) {
	alg := MustNew(2).WithThreshold(64)
	cases := [][2]int64{{0, 5}, {1, 1}, {-3, 7}, {123456789, 987654321}, {-5, -5}}
	for _, c := range cases {
		a, b := bigint.FromInt64(c[0]), bigint.FromInt64(c[1])
		if got := alg.Mul(a, b); !got.Equal(a.Mul(b)) {
			t.Errorf("Mul(%d, %d) = %v", c[0], c[1], got)
		}
	}
}

func TestMulAgainstMathBig(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for _, k := range []int{2, 3, 4, 5} {
		alg := MustNew(k)
		for i := 0; i < 40; i++ {
			a := randOperand(rng, 8192)
			b := randOperand(rng, 8192)
			want := new(big.Int).Mul(a.ToBig(), b.ToBig())
			if got := alg.Mul(a, b).ToBig(); got.Cmp(want) != 0 {
				t.Fatalf("k=%d: Mul mismatch for %d-bit × %d-bit", k, a.BitLen(), b.BitLen())
			}
		}
	}
}

func TestMulUnbalancedOperands(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	alg := MustNew(3)
	for i := 0; i < 30; i++ {
		a := randOperand(rng, 16384)
		b := randOperand(rng, 128)
		want := new(big.Int).Mul(a.ToBig(), b.ToBig())
		if got := alg.Mul(a, b).ToBig(); got.Cmp(want) != 0 {
			t.Fatalf("unbalanced mul mismatch")
		}
	}
}

func TestMulPropertyQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	alg := MustNew(3).WithThreshold(128)
	cfg := &quick.Config{MaxCount: 60}
	f := func(int) bool {
		a, b := randOperand(rng, 4096), randOperand(rng, 4096)
		return alg.Mul(a, b).ToBig().Cmp(new(big.Int).Mul(a.ToBig(), b.ToBig())) == 0
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMulWithStats(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	alg := MustNew(2).WithThreshold(256)
	a, b := bigint.Random(rng, 4096), bigint.Random(rng, 4096)
	var s Stats
	got := alg.MulWithStats(a, b, &s)
	if !got.Equal(a.Mul(b)) {
		t.Fatal("wrong product")
	}
	if s.BaseMuls == 0 || s.RecursiveCalls == 0 {
		t.Errorf("stats not collected: %+v", s)
	}
	// Karatsuba: 3 children per node; base mults should be ~3^depth.
	if s.BaseMuls < 9 {
		t.Errorf("expected at least two levels of recursion, got %d base muls", s.BaseMuls)
	}
}

func TestStatsGrowthMatchesExponent(t *testing.T) {
	// Doubling n should multiply base-case count by ~2k-1 / ... precisely:
	// base muls scale as (2k-1)^(levels); one extra level per k-fold n.
	rng := rand.New(rand.NewSource(35))
	for _, k := range []int{2, 3} {
		alg := MustNew(k).WithThreshold(64)
		n1 := 1 << 12
		var s1, s2 Stats
		alg.MulWithStats(bigint.Random(rng, n1), bigint.Random(rng, n1), &s1)
		alg.MulWithStats(bigint.Random(rng, n1*k), bigint.Random(rng, n1*k), &s2)
		ratio := float64(s2.BaseMuls) / float64(s1.BaseMuls)
		lo, hi := float64(2*k-1)*0.5, float64(2*k-1)*2.0
		if ratio < lo || ratio > hi {
			t.Errorf("k=%d: base-mul growth ratio %.2f outside [%.1f, %.1f]", k, ratio, lo, hi)
		}
	}
}

func TestEvalDigitsInterpolateRoundTrip(t *testing.T) {
	// Interpolate(eval(a) ⊙ eval(b)) must equal the coefficients of the
	// product polynomial — the bilinear identity ⟨U,V,W⟩.
	rng := rand.New(rand.NewSource(36))
	for _, k := range []int{2, 3, 4} {
		alg := MustNew(k)
		for trial := 0; trial < 20; trial++ {
			da := make([]bigint.Int, k)
			db := make([]bigint.Int, k)
			for i := 0; i < k; i++ {
				da[i] = bigint.FromInt64(rng.Int63n(1001) - 500)
				db[i] = bigint.FromInt64(rng.Int63n(1001) - 500)
			}
			ea := alg.EvalDigits(da, nil)
			eb := alg.EvalDigits(db, nil)
			prods := make([]bigint.Int, 2*k-1)
			for i := range prods {
				prods[i] = ea[i].Mul(eb[i])
			}
			coeffs := alg.Interpolate(prods, nil)
			// Compare against direct convolution.
			want := make([]bigint.Int, 2*k-1)
			for i := range want {
				want[i] = bigint.Zero()
			}
			for i := 0; i < k; i++ {
				for j := 0; j < k; j++ {
					want[i+j] = want[i+j].Add(da[i].Mul(db[j]))
				}
			}
			for i := range want {
				if !coeffs[i].Equal(want[i]) {
					t.Fatalf("k=%d coeff %d = %v, want %v", k, i, coeffs[i], want[i])
				}
			}
		}
	}
}

func TestApplyRowsToBlocks(t *testing.T) {
	rows := [][]int64{{1, 1}, {1, -1}, {2, 3}}
	blocks := [][]bigint.Int{
		{bigint.FromInt64(1), bigint.FromInt64(2)},
		{bigint.FromInt64(10), bigint.FromInt64(20)},
	}
	out := ApplyRowsToBlocks(rows, blocks)
	wants := [][]int64{{11, 22}, {-9, -18}, {32, 64}}
	for i, w := range wants {
		for j, v := range w {
			if got, _ := out[i][j].Int64(); got != v {
				t.Errorf("out[%d][%d] = %d, want %d", i, j, got, v)
			}
		}
	}
}

func TestMulLazyMatchesPlain(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for _, k := range []int{2, 3} {
		alg := MustNew(k)
		for _, depth := range []int{1, 2, 3} {
			for trial := 0; trial < 15; trial++ {
				a := randOperand(rng, 6000)
				b := randOperand(rng, 6000)
				got, err := alg.MulLazy(a, b, depth)
				if err != nil {
					t.Fatalf("k=%d depth=%d: %v", k, depth, err)
				}
				want := new(big.Int).Mul(a.ToBig(), b.ToBig())
				if got.ToBig().Cmp(want) != 0 {
					t.Fatalf("k=%d depth=%d: lazy product mismatch", k, depth)
				}
			}
		}
	}
}

func TestMulLazyErrors(t *testing.T) {
	alg := MustNew(3)
	if _, err := alg.MulLazy(bigint.FromInt64(5), bigint.FromInt64(7), 0); err == nil {
		t.Error("depth 0 should error")
	}
	// Depth too deep for tiny operands: k^depth > bits.
	if _, err := alg.MulLazy(bigint.FromInt64(5), bigint.FromInt64(7), 10); err == nil {
		t.Error("absurd depth should error")
	}
	if z, err := alg.MulLazy(bigint.Zero(), bigint.FromInt64(7), 1); err != nil || !z.IsZero() {
		t.Error("0 · x should be 0 without error")
	}
}

func TestMulLazyStats(t *testing.T) {
	// Lazy depth l with k: exactly (2k-1)^l base multiplications.
	rng := rand.New(rand.NewSource(38))
	for _, k := range []int{2, 3} {
		alg := MustNew(k)
		for _, depth := range []int{1, 2} {
			var s Stats
			a, b := bigint.Random(rng, 4096), bigint.Random(rng, 4096)
			if _, err := alg.MulLazyWithStats(a, b, depth, &s); err != nil {
				t.Fatal(err)
			}
			want := int64(1)
			for i := 0; i < depth; i++ {
				want *= int64(2*k - 1)
			}
			if s.BaseMuls != want {
				t.Errorf("k=%d depth=%d: %d base muls, want %d", k, depth, s.BaseMuls, want)
			}
		}
	}
}

func TestWithThresholdFloor(t *testing.T) {
	alg := MustNew(2).WithThreshold(1)
	if alg.ThresholdBits() != 64 {
		t.Errorf("threshold floor not applied: %d", alg.ThresholdBits())
	}
}

func TestScaledInterpolationMatrices(t *testing.T) {
	// The scaled integer interpolation must reproduce W^T exactly.
	for _, k := range []int{2, 3, 4, 5} {
		alg := MustNew(k)
		wt, err := points.Interpolation(alg.Points(), 2*k-1)
		if err != nil {
			t.Fatal(err)
		}
		num, den := alg.WScaled()
		for i := 0; i < 2*k-1; i++ {
			for j := 0; j < 2*k-1; j++ {
				got := num[i][j]
				w := wt.At(i, j)
				// w == got/den
				nv, _ := w.Num().Int64()
				dv, _ := w.Den().Int64()
				if nv*(den/dv) != got {
					t.Fatalf("k=%d: scaled entry (%d,%d) = %d, want %v·%d", k, i, j, got, w, den)
				}
			}
		}
	}
}

func TestConcurrentUse(t *testing.T) {
	// Algorithm is immutable; concurrent Muls must not race (run with -race).
	alg := MustNew(3)
	rng := rand.New(rand.NewSource(39))
	type pair struct{ a, b bigint.Int }
	pairs := make([]pair, 8)
	for i := range pairs {
		pairs[i] = pair{bigint.Random(rng, 2048), bigint.Random(rng, 2048)}
	}
	done := make(chan bool)
	for _, p := range pairs {
		go func(p pair) {
			defer func() { done <- true }()
			if !alg.Mul(p.a, p.b).Equal(p.a.Mul(p.b)) {
				t.Error("concurrent product mismatch")
			}
		}(p)
	}
	for range pairs {
		<-done
	}
}

func TestEvalReuseAblation(t *testing.T) {
	// Zanoni's evaluation reuse: ±v point pairs share their even/odd digit
	// sums. Same results, strictly fewer word operations.
	rng := rand.New(rand.NewSource(151))
	for _, k := range []int{3, 4, 5} {
		withReuse := MustNew(k)
		without := withReuse.WithoutEvalReuse()
		a, b := bigint.Random(rng, 1<<14), bigint.Random(rng, 1<<14)
		var sr, sn Stats
		r1 := withReuse.MulWithStats(a, b, &sr)
		r2 := without.MulWithStats(a, b, &sn)
		if !r1.Equal(r2) {
			t.Fatalf("k=%d: reuse changed the product", k)
		}
		if sr.WordOps >= sn.WordOps {
			t.Errorf("k=%d: reuse should cost less: %d vs %d word ops", k, sr.WordOps, sn.WordOps)
		}
	}
}

func TestDetectPairsStructure(t *testing.T) {
	// Standard Toom-3 points {0, 1, -1, 2, inf}: exactly one (±1) pair;
	// 0, 2, inf are singles.
	alg := MustNew(3)
	if len(alg.evalPairs) != 1 {
		t.Fatalf("pairs = %v", alg.evalPairs)
	}
	if len(alg.evalSingles) != 3 {
		t.Fatalf("singles = %v", alg.evalSingles)
	}
	// Toom-4 points {0, 1, -1, 2, -2, 3, inf}: (±1), (±2) pairs.
	alg4 := MustNew(4)
	if len(alg4.evalPairs) != 2 {
		t.Fatalf("k=4 pairs = %v", alg4.evalPairs)
	}
}
