package toom

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestMulConcurrentMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	for _, k := range []int{2, 3} {
		alg := MustNew(k)
		for _, depth := range []int{0, 1, 2, 3} {
			for trial := 0; trial < 10; trial++ {
				a := randOperand(rng, 1<<14)
				b := randOperand(rng, 1<<14)
				want := new(big.Int).Mul(a.ToBig(), b.ToBig())
				if got := alg.MulConcurrent(a, b, depth).ToBig(); got.Cmp(want) != 0 {
					t.Fatalf("k=%d depth=%d trial=%d: mismatch", k, depth, trial)
				}
			}
		}
	}
}

func TestMulConcurrentZero(t *testing.T) {
	alg := MustNew(3)
	if !alg.MulConcurrent(randOperand(rand.New(rand.NewSource(1)), 64).Sub(randOperand(rand.New(rand.NewSource(1)), 64)), randOperand(rand.New(rand.NewSource(2)), 64), 2).IsZero() {
		t.Error("0 · x != 0")
	}
}

func BenchmarkMulConcurrent(b *testing.B) {
	rng := rand.New(rand.NewSource(182))
	alg := MustNew(3)
	x := randOperand(rng, 1<<19).Abs()
	y := randOperand(rng, 1<<19).Abs()
	for _, depth := range []int{0, 2} {
		name := "sequential"
		if depth > 0 {
			name = "fanout-2-levels"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				_ = alg.MulConcurrent(x, y, depth)
			}
		})
	}
}
