package toom

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bigint"
)

func TestUnbalancedValidation(t *testing.T) {
	if _, err := NewUnbalanced(1, 1, nil); err == nil {
		t.Error("k1=1 should fail")
	}
	if _, err := NewUnbalanced(2, 3, nil); err == nil {
		t.Error("k1 < k2 should fail")
	}
	if _, err := NewUnbalanced(3, 0, nil); err == nil {
		t.Error("k2=0 should fail")
	}
}

func TestUnbalancedProductCounts(t *testing.T) {
	// Toom-2.5 = (3,2): 4 products; (4,2): 5; (4,3): 6.
	cases := map[[2]int]int{{3, 2}: 4, {4, 2}: 5, {4, 3}: 6, {2, 2}: 3}
	for ks, want := range cases {
		alg, err := NewUnbalanced(ks[0], ks[1], nil)
		if err != nil {
			t.Fatalf("(%d,%d): %v", ks[0], ks[1], err)
		}
		if got := alg.NumProducts(); got != want {
			t.Errorf("(%d,%d): %d products, want %d", ks[0], ks[1], got, want)
		}
	}
}

func TestUnbalancedMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	for _, ks := range [][2]int{{3, 2}, {4, 2}, {4, 3}, {5, 2}, {2, 1}} {
		alg, err := NewUnbalanced(ks[0], ks[1], nil)
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			// Operands matching the split ratio (the intended use).
			aBits := 1 + rng.Intn(8192)
			bBits := aBits * ks[1] / ks[0]
			if bBits < 1 {
				bBits = 1
			}
			a := bigint.Random(rng, aBits)
			b := bigint.Random(rng, bBits)
			if trial%3 == 0 {
				b = b.Neg()
			}
			want := new(big.Int).Mul(a.ToBig(), b.ToBig())
			if got := alg.Mul(a, b).ToBig(); got.Cmp(want) != 0 {
				t.Fatalf("(%d,%d) trial %d: product mismatch", ks[0], ks[1], trial)
			}
		}
	}
}

func TestUnbalancedMismatchedRatioStillCorrect(t *testing.T) {
	// Correctness must hold for any shapes, not only the intended ratio.
	rng := rand.New(rand.NewSource(142))
	alg, _ := NewUnbalanced(3, 2, MustNew(3))
	for trial := 0; trial < 20; trial++ {
		a := bigint.Random(rng, 1+rng.Intn(4096))
		b := bigint.Random(rng, 1+rng.Intn(4096))
		want := new(big.Int).Mul(a.ToBig(), b.ToBig())
		if got := alg.Mul(a, b).ToBig(); got.Cmp(want) != 0 {
			t.Fatalf("trial %d: mismatch", trial)
		}
	}
}

func TestUnbalancedZero(t *testing.T) {
	alg, _ := NewUnbalanced(3, 2, nil)
	if !alg.Mul(bigint.Zero(), bigint.FromInt64(5)).IsZero() {
		t.Error("0·5 != 0")
	}
	if !alg.Mul(bigint.FromInt64(5), bigint.Zero()).IsZero() {
		t.Error("5·0 != 0")
	}
}

func TestUnbalancedSavesProductsVsBalanced(t *testing.T) {
	// The point of Toom-2.5: a 3:2-shaped multiplication costs 4 pointwise
	// products where balanced Toom-3 would pad to 5.
	alg25, _ := NewUnbalanced(3, 2, nil)
	alg3 := MustNew(3)
	if alg25.NumProducts() >= alg3.NumProducts() {
		t.Errorf("Toom-2.5 should use fewer products: %d vs %d", alg25.NumProducts(), alg3.NumProducts())
	}
}
