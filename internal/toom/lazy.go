package toom

import (
	"fmt"

	"repro/internal/bigint"
)

// MulLazy multiplies a·b using Toom-Cook-k with Lazy Interpolation
// (Algorithm 2, after Bermudo Mera et al.): the inputs are split into k^l
// digits once, up front, in a shared base; every recursive level applies the
// evaluation matrix block-wise; carry propagation is postponed to a single
// recomposition at the end. depth l must be >= 1.
//
// By Claim 2.1 this computes a product of two l-variable polynomials in
// Poly_{k,l}; the block-wise structure is exactly what the parallel BFS
// steps distribute, which is why the parallel engine in internal/parallel
// calls the same block primitives.
func (alg *Algorithm) MulLazy(a, b bigint.Int, depth int) (bigint.Int, error) {
	return alg.MulLazyWithStats(a, b, depth, nil)
}

// MulLazyWithStats is MulLazy with operation counting; stats may be nil.
func (alg *Algorithm) MulLazyWithStats(a, b bigint.Int, depth int, stats *Stats) (bigint.Int, error) {
	if depth < 1 {
		return bigint.Int{}, fmt.Errorf("toom: lazy interpolation needs depth >= 1, got %d", depth)
	}
	neg := a.Sign()*b.Sign() < 0
	a, b = a.Abs(), b.Abs()
	if a.IsZero() || b.IsZero() {
		return bigint.Zero(), nil
	}
	maxBits := a.BitLen()
	if b.BitLen() > maxBits {
		maxBits = b.BitLen()
	}
	numDigits := 1
	for i := 0; i < depth; i++ {
		numDigits *= alg.k
		if numDigits > maxBits {
			return bigint.Int{}, fmt.Errorf("toom: depth %d splits %d-bit operands into more digits (%d) than bits", depth, maxBits, numDigits)
		}
	}
	// One shared base for the entire recursion (Algorithm 2, line 4).
	shift := (maxBits + numDigits - 1) / numDigits

	da := splitDigitVector(a, numDigits, shift)
	db := splitDigitVector(b, numDigits, shift)

	coeffs := alg.lazyRecurse(da, db, depth, stats)

	// Postponed carry computation: coefficients are indexed by base-(2k-1)
	// tuples; coefficient at tuple e contributes at bit offset
	// shift·Σ e_i·k^{l-1-i}.
	z := recomposeTower(coeffs, alg.k, 2*alg.k-1, depth, shift)
	if neg {
		z = z.Neg()
	}
	return z, nil
}

// lazyRecurse multiplies two digit block-vectors of length k^depth,
// returning the (2k-1)^depth product coefficients.
func (alg *Algorithm) lazyRecurse(da, db []bigint.Int, depth int, stats *Stats) []bigint.Int {
	if depth == 0 {
		// Scalar leaf: a single pointwise product (Algorithm 2, line 12);
		// the scalars here are digit-sized, i.e. "hardware" operations.
		if stats != nil {
			stats.BaseMuls++
			stats.chargeWords(wordsOf(da[0]) * wordsOf(db[0]))
		}
		return []bigint.Int{da[0].Mul(db[0])}
	}
	if stats != nil {
		stats.RecursiveCalls++
	}
	k := alg.k
	blockLen := len(da) / k

	// View the digit vector as k blocks and evaluate block-wise (line 6).
	ea := ApplyRowsToBlocks(alg.u, toBlocks(da, k, blockLen))
	eb := ApplyRowsToBlocks(alg.u, toBlocks(db, k, blockLen))
	if stats != nil {
		stats.Evaluations += 2
		stats.chargeWords(blocksWork(alg.u, da, k, blockLen) + blocksWork(alg.u, db, k, blockLen))
	}

	// Recurse on each of the 2k-1 evaluated block pairs (lines 8-14).
	prodBlocks := make([][]bigint.Int, 2*k-1)
	for i := 0; i < 2*k-1; i++ {
		prodBlocks[i] = alg.lazyRecurse(ea[i], eb[i], depth-1, stats)
	}

	// Interpolate block-wise (line 15): c̄ = W^T·c'.
	out := ApplyRowsToBlocks(alg.wNum, prodBlocks)
	if stats != nil {
		stats.Interpolations++
		var w int64
		for _, blk := range prodBlocks {
			for _, v := range blk {
				w += 2 * wordsOf(v)
			}
		}
		stats.chargeWords(w * int64(2*k-1)) // each product feeds 2k-1 rows
	}
	flat := make([]bigint.Int, 0, len(out)*len(out[0]))
	for _, blk := range out {
		for _, v := range blk {
			if stats != nil {
				stats.chargeWords(wordsOf(v))
			}
			flat = append(flat, v.DivExactInt64(alg.wDen))
		}
	}
	return flat
}

// blocksWork estimates the word cost of a block-wise matrix application.
func blocksWork(rows [][]int64, vec []bigint.Int, k, blockLen int) int64 {
	var w int64
	for _, v := range vec {
		w += 2 * wordsOf(v)
	}
	// Each of the k blocks feeds 2k-1 output rows.
	return w * int64(len(rows)) / int64(k)
}

// toBlocks slices v into n consecutive blocks of blockLen.
func toBlocks(v []bigint.Int, n, blockLen int) [][]bigint.Int {
	if len(v) != n*blockLen {
		panic("toom: toBlocks size mismatch")
	}
	blocks := make([][]bigint.Int, n)
	for i := range blocks {
		blocks[i] = v[i*blockLen : (i+1)*blockLen]
	}
	return blocks
}

// splitDigitVector returns the n digits of |a| in base 2^shift.
func splitDigitVector(a bigint.Int, n, shift int) []bigint.Int {
	d := make([]bigint.Int, n)
	for i := 0; i < n; i++ {
		d[i] = a.Extract(i*shift, shift)
	}
	return d
}

// recomposeTower evaluates coefficients indexed by base-r exponent tuples
// (most significant variable first, matching the block recursion) at the
// base tower y_j = 2^{shift·k^{l-1-j}}.
func recomposeTower(coeffs []bigint.Int, k, r, depth, shift int) bigint.Int {
	// weights[j] = bits contributed per unit exponent of variable j.
	weights := make([]int, depth)
	w := 1
	for j := depth - 1; j >= 0; j-- {
		weights[j] = w * shift
		w *= k
	}
	acc := bigint.Zero()
	for idx, c := range coeffs {
		if c.IsZero() {
			continue
		}
		// Decompose idx in base r, most significant digit = variable 0.
		bits := 0
		v := idx
		for j := depth - 1; j >= 0; j-- {
			bits += (v % r) * weights[j]
			v /= r
		}
		acc = acc.Add(c.Shl(uint(bits)))
	}
	return acc
}
