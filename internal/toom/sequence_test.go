package toom_test

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bigint"
	"repro/internal/toom"
	"repro/internal/toomgraph"
)

// TestSequenceInterpolationMatchesMatrix verifies the Toom-Graph-scheduled
// algorithm end to end against math/big for k = 2 and 3.
func TestSequenceInterpolationMatchesMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for _, k := range []int{2, 3, 4, 5} {
		alg := toom.MustNew(k).WithInterpolationSequence(toomgraph.ForK(k))
		for trial := 0; trial < 30; trial++ {
			a := bigint.Random(rng, 8192)
			b := bigint.Random(rng, 8192)
			want := new(big.Int).Mul(a.ToBig(), b.ToBig())
			if got := alg.Mul(a, b).ToBig(); got.Cmp(want) != 0 {
				t.Fatalf("k=%d: sequence-scheduled product mismatch", k)
			}
		}
	}
}

// TestSequenceReducesInterpolationWork checks the ablation direction: the
// scheduled interpolation charges fewer word operations than the dense
// scaled-matrix product.
func TestSequenceReducesInterpolationWork(t *testing.T) {
	rng := rand.New(rand.NewSource(122))
	a := bigint.Random(rng, 1<<15)
	b := bigint.Random(rng, 1<<15)
	dense := toom.MustNew(3)
	sched := dense.WithInterpolationSequence(toomgraph.Toom3())
	var sDense, sSched toom.Stats
	r1 := dense.MulWithStats(a, b, &sDense)
	r2 := sched.MulWithStats(a, b, &sSched)
	if !r1.Equal(r2) {
		t.Fatal("results differ")
	}
	if sSched.WordOps >= sDense.WordOps {
		t.Errorf("scheduled interpolation should charge less work: %d vs %d", sSched.WordOps, sDense.WordOps)
	}
}

// TestSequenceFallback: a broken sequence must fall back to the matrix path
// rather than corrupt the product.
func TestSequenceFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	// Wrong vector length: Apply always errors, exercising the fallback.
	bad := &toomgraph.Sequence{N: 4}
	alg := toom.MustNew(3).WithInterpolationSequence(bad)
	a, b := bigint.Random(rng, 4096), bigint.Random(rng, 4096)
	want := new(big.Int).Mul(a.ToBig(), b.ToBig())
	if got := alg.Mul(a, b).ToBig(); got.Cmp(want) != 0 {
		t.Fatal("fallback path failed")
	}
}
