package toom

import (
	"math/big"
	"math/rand"
	"testing"
)

func TestSquareMatchesBig(t *testing.T) {
	rng := rand.New(rand.NewSource(171))
	for _, k := range []int{2, 3, 4} {
		alg := MustNew(k)
		for trial := 0; trial < 25; trial++ {
			a := randOperand(rng, 1<<14)
			want := new(big.Int).Mul(a.ToBig(), a.ToBig())
			if got := alg.Square(a).ToBig(); got.Cmp(want) != 0 {
				t.Fatalf("k=%d trial %d: Square mismatch", k, trial)
			}
		}
	}
}

func TestSquareCheaperThanMul(t *testing.T) {
	// One evaluation pass instead of two: the word-operation count must be
	// strictly below Mul(a, a)'s.
	rng := rand.New(rand.NewSource(172))
	for _, k := range []int{2, 3} {
		alg := MustNew(k)
		a := randOperand(rng, 1<<15).Abs()
		var sq, mul Stats
		r1 := alg.SquareWithStats(a, &sq)
		r2 := alg.MulWithStats(a, a, &mul)
		if !r1.Equal(r2) {
			t.Fatalf("k=%d: Square != Mul(a,a)", k)
		}
		if sq.WordOps >= mul.WordOps {
			t.Errorf("k=%d: Square should cost less: %d vs %d word ops", k, sq.WordOps, mul.WordOps)
		}
	}
}

func TestSquareEdges(t *testing.T) {
	alg := MustNew(3)
	if !alg.Square(randOperand(rand.New(rand.NewSource(1)), 1).Abs().Sub(randOperand(rand.New(rand.NewSource(1)), 1).Abs())).IsZero() {
		t.Error("Square(0) != 0")
	}
	// Negative input: square is positive.
	a := randOperand(rand.New(rand.NewSource(173)), 4096).Abs().Neg()
	want := new(big.Int).Mul(a.ToBig(), a.ToBig())
	if got := alg.Square(a).ToBig(); got.Cmp(want) != 0 {
		t.Error("Square of negative wrong")
	}
}
