package toom

import "repro/internal/bigint"

// Square returns a² via Toom-Cook-k with a single evaluation pass: both
// "operands" share their digit vector and evaluations, halving the
// evaluation work relative to Mul(a, a) (the squaring specialization of
// Zuras's "On squaring and multiplying large integers", cited by the
// paper's Section 1.1).
func (alg *Algorithm) Square(a bigint.Int) bigint.Int {
	return alg.SquareWithStats(a, nil)
}

// SquareWithStats is Square with operation counting; stats may be nil.
func (alg *Algorithm) SquareWithStats(a bigint.Int, stats *Stats) bigint.Int {
	return alg.squareAbs(a.Abs(), stats)
}

func (alg *Algorithm) squareAbs(a bigint.Int, stats *Stats) bigint.Int {
	if a.IsZero() {
		return bigint.Zero()
	}
	maxBits := a.BitLen()
	if maxBits <= alg.thresholdBits {
		if stats != nil {
			stats.BaseMuls++
			stats.chargeWords(wordsOf(a) * wordsOf(a))
		}
		return a.Mul(a)
	}
	if stats != nil {
		stats.RecursiveCalls++
	}
	k := alg.k
	shift := (maxBits + k - 1) / k
	da := splitDigits(a, k, shift)

	// One evaluation instead of two.
	ea := alg.EvalDigits(da, stats)

	prods := make([]bigint.Int, 2*k-1)
	for i := range prods {
		prods[i] = alg.squareAbs(ea[i].Abs(), stats)
	}

	coeffs := alg.Interpolate(prods, stats)
	if stats != nil {
		for _, c := range coeffs {
			stats.chargeWords(wordsOf(c))
		}
	}
	return Recompose(coeffs, shift)
}
