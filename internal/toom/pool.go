package toom

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workerPool bounds the host parallelism of MulConcurrent. The seed
// implementation spawned one goroutine per pointwise product at every
// recursion level — (2k-1)^depth goroutines, a goroutine explosion at
// depth ≥ 2 that drowned the measurable shared-memory speedup in scheduler
// and GC pressure. The pool admits at most `size` concurrent workers via a
// slot semaphore.
//
// Submission never blocks: fork runs the task inline when no slot is free.
// That property is what makes the pool safe for *recursive* fan-out — a
// worker that submits its own children and then joins them can never
// deadlock waiting for a slot it is itself holding, the classic failure
// mode of a fixed worker set with a blocking queue and nested joins. The
// price is that a "task" may execute on its submitter's stack; the bound on
// live workers (and hence on CPU oversubscription) is exact either way.
type workerPool struct {
	slots chan struct{}

	// Telemetry for the pool tests and the benchmark harness.
	active  atomic.Int64 // workers currently running
	peak    atomic.Int64 // high-water mark of active
	spawned atomic.Int64 // total worker goroutines ever started
	inline  atomic.Int64 // tasks that ran on the submitter (no slot free)
}

func newWorkerPool(size int) *workerPool {
	if size < 1 {
		size = 1
	}
	return &workerPool{slots: make(chan struct{}, size)}
}

// leafPool is the shared process-wide pool used by MulConcurrent; all
// concurrent multiplications draw from the same GOMAXPROCS slots, so nested
// or simultaneous calls cannot oversubscribe the host.
var leafPool = newWorkerPool(runtime.GOMAXPROCS(0))

// fork runs fn, on a pooled worker goroutine when a slot is free and inline
// otherwise. wg is incremented before the worker starts and released when fn
// returns; inline execution completes before fork returns and touches wg
// not at all.
func (p *workerPool) fork(wg *sync.WaitGroup, fn func()) {
	select {
	case p.slots <- struct{}{}:
		wg.Add(1)
		p.spawned.Add(1)
		//ftlint:allow poolspawn this is the bounded pool's own worker launch; admission is gated by the slot semaphore acquired above
		go func() {
			defer func() {
				p.active.Add(-1)
				<-p.slots
				wg.Done()
			}()
			n := p.active.Add(1)
			for {
				cur := p.peak.Load()
				if n <= cur || p.peak.CompareAndSwap(cur, n) {
					break
				}
			}
			fn()
		}()
	default:
		p.inline.Add(1)
		fn()
	}
}

// resetStats zeroes the telemetry counters (test hook; racy against live
// forks by design, so only call it while the pool is idle).
func (p *workerPool) resetStats() {
	p.active.Store(0)
	p.peak.Store(0)
	p.spawned.Store(0)
	p.inline.Store(0)
}

// PoolStats reports the shared worker pool's telemetry: the slot capacity,
// the peak number of concurrently live workers, the total workers spawned,
// and how many tasks ran inline on their submitter. Exposed for tests and
// the benchmark harness.
func PoolStats() (capacity int, peak, spawned, inline int64) {
	p := leafPool
	return cap(p.slots), p.peak.Load(), p.spawned.Load(), p.inline.Load()
}
