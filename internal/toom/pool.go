package toom

import "repro/internal/workpool"

// leafPool is the process-wide bounded worker pool (internal/workpool) used
// by MulConcurrent. All concurrent multiplications — including the bigint
// NTT kernels' butterfly fan-out — draw from the same GOMAXPROCS slots, so
// nested or simultaneous calls cannot oversubscribe the host. The pool
// itself lived in this package through PR 5; it moved to internal/workpool
// so the kernel layer beneath us can share it without an import cycle.
var leafPool = workpool.Shared()

// PoolStats reports the shared worker pool's telemetry: the slot capacity,
// the peak number of concurrently live workers, the total workers spawned,
// and how many tasks ran inline on their submitter. Exposed for tests and
// the benchmark harness.
func PoolStats() (capacity int, peak, spawned, inline int64) {
	p := leafPool
	peak, spawned, inline = p.Stats()
	return p.Capacity(), peak, spawned, inline
}
