package toom

import (
	"fmt"

	"repro/internal/bigint"
	"repro/internal/points"
)

// UnbalancedAlgorithm is a Toom-Cook-(k1, k2) multiplier (Section 1.1 of
// the paper; Toom-Cook-(3,2) is the "Toom-2.5" of Zanoni): the first
// operand splits into k1 digits and the second into k2, giving a product
// polynomial of degree k1+k2-2 evaluated at k1+k2-1 points. Unbalanced
// splits avoid padding when the operands' sizes differ by a known ratio
// (e.g. a 3:2 ratio multiplies with 4 pointwise products instead of
// Toom-3's 5).
//
// Pointwise sub-products are delegated to a balanced Algorithm, the usual
// arrangement in practice (one unbalanced top layer over a balanced
// recursion).
type UnbalancedAlgorithm struct {
	k1, k2 int
	pts    []points.Point
	u      [][]int64 // n×k1 evaluation matrix for the first operand
	v      [][]int64 // n×k2 evaluation matrix for the second operand
	wNum   [][]int64
	wDen   int64
	inner  *Algorithm
}

// NewUnbalanced builds a Toom-Cook-(k1, k2) algorithm over the standard
// points, delegating sub-products to inner (Karatsuba if nil). Requires
// k1 >= k2 >= 1 and k1 >= 2.
func NewUnbalanced(k1, k2 int, inner *Algorithm) (*UnbalancedAlgorithm, error) {
	if k2 < 1 || k1 < k2 || k1 < 2 {
		return nil, fmt.Errorf("toom: unbalanced split needs k1 >= max(k2, 2), k2 >= 1; got (%d, %d)", k1, k2)
	}
	if inner == nil {
		var err error
		inner, err = New(2)
		if err != nil {
			return nil, err
		}
	}
	n := k1 + k2 - 1
	pts := points.Standard(n)
	if err := points.Valid(pts, n); err != nil {
		return nil, err
	}
	u, err := intMatrix(points.EvalMatrix(pts, k1))
	if err != nil {
		return nil, fmt.Errorf("toom: unbalanced U: %w", err)
	}
	v, err := intMatrix(points.EvalMatrix(pts, k2))
	if err != nil {
		return nil, fmt.Errorf("toom: unbalanced V: %w", err)
	}
	wt, err := points.Interpolation(pts, n)
	if err != nil {
		return nil, err
	}
	wNum, wDen, err := scaledIntMatrix(wt)
	if err != nil {
		return nil, err
	}
	return &UnbalancedAlgorithm{k1: k1, k2: k2, pts: pts, u: u, v: v, wNum: wNum, wDen: wDen, inner: inner}, nil
}

// K1 and K2 return the split numbers.
func (alg *UnbalancedAlgorithm) K1() int { return alg.k1 }

// K2 returns the second operand's split number.
func (alg *UnbalancedAlgorithm) K2() int { return alg.k2 }

// NumProducts returns the pointwise product count k1+k2-1.
func (alg *UnbalancedAlgorithm) NumProducts() int { return alg.k1 + alg.k2 - 1 }

// Mul returns a·b via one unbalanced split followed by balanced recursion
// on the pointwise products. The split base is chosen so that |a| needs k1
// digits and |b| needs k2 — most effective when |a|/|b| ≈ k1/k2.
func (alg *UnbalancedAlgorithm) Mul(a, b bigint.Int) bigint.Int {
	neg := a.Sign()*b.Sign() < 0
	a, b = a.Abs(), b.Abs()
	if a.IsZero() || b.IsZero() {
		return bigint.Zero()
	}
	shift := (a.BitLen() + alg.k1 - 1) / alg.k1
	if s2 := (b.BitLen() + alg.k2 - 1) / alg.k2; s2 > shift {
		shift = s2
	}
	if shift < 1 {
		shift = 1
	}
	da := splitDigits(a, alg.k1, shift)
	db := splitDigits(b, alg.k2, shift)
	ea := ApplyRows(alg.u, da)
	eb := ApplyRows(alg.v, db)
	n := alg.NumProducts()
	prods := make([]bigint.Int, n)
	for i := 0; i < n; i++ {
		prods[i] = alg.inner.Mul(ea[i], eb[i])
	}
	coeffs := applyRowsScaled(alg.wNum, prods, alg.wDen, nil)
	z := Recompose(coeffs, shift)
	if neg {
		z = z.Neg()
	}
	return z
}
