package toom

import (
	"sync"

	"repro/internal/bigint"
)

// MulConcurrent returns a·b like Mul, but computes the 2k-1 pointwise
// products of the top `depth` recursion levels in parallel — real host
// parallelism, as opposed to the simulated machine of internal/parallel.
// With depth d the recursion exposes up to (2k-1)^d independent leaf
// multiplications; depth 0 is exactly Mul.
//
// Parallelism is bounded by the shared GOMAXPROCS-sized worker pool
// (pool.go): each level submits its sub-products to the pool and computes
// whatever the pool declines inline, so deep fan-outs stop spawning
// (2k-1)^d goroutines while the recursion-tree independence the paper's BFS
// steps distribute is still fully exploited.
func (alg *Algorithm) MulConcurrent(a, b bigint.Int, depth int) bigint.Int {
	neg := a.Sign()*b.Sign() < 0
	z := alg.mulAbsConcurrent(a.Abs(), b.Abs(), depth)
	if neg {
		z = z.Neg()
	}
	return z
}

func (alg *Algorithm) mulAbsConcurrent(a, b bigint.Int, depth int) bigint.Int {
	if a.IsZero() || b.IsZero() {
		return bigint.Zero()
	}
	maxBits := a.BitLen()
	if b.BitLen() > maxBits {
		maxBits = b.BitLen()
	}
	if depth <= 0 || maxBits <= alg.thresholdBits {
		return alg.mulAbs(a, b, nil)
	}
	k := alg.k
	shift := (maxBits + k - 1) / k
	da := splitDigits(a, k, shift)
	db := splitDigits(b, k, shift)
	ea := alg.EvalDigits(da, nil)
	eb := alg.EvalDigits(db, nil)

	prods := make([]bigint.Int, 2*k-1)
	var wg sync.WaitGroup
	for i := range prods {
		i := i
		leafPool.Fork(&wg, func() {
			x, y := ea[i], eb[i]
			n := x.Sign()*y.Sign() < 0
			z := alg.mulAbsConcurrent(x.Abs(), y.Abs(), depth-1)
			if n {
				z = z.Neg()
			}
			prods[i] = z
		})
	}
	wg.Wait()

	coeffs := alg.Interpolate(prods, nil)
	return Recompose(coeffs, shift)
}
