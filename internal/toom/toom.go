// Package toom implements sequential Toom-Cook-k long integer
// multiplication (Section 2.2 of the paper, Algorithm 1), including the
// Lazy-Interpolation variant of Bermudo Mera et al. (Algorithm 2).
//
// An Algorithm value captures the bilinear form ⟨U, V, W⟩ induced by a split
// number k and a set of 2k-1 evaluation points: U = V is the evaluation
// matrix for the digit polynomials and W^T inverts the product-polynomial
// evaluation. Integer work is kept exactly integral: U must have integer
// entries (true for all standard point sets), and W^T is applied as a scaled
// integer matrix (multiply by d·W^T, then divide exactly by d), so no
// rational arithmetic touches the big operands on the hot path.
//
// The same block primitives (EvalBlocks, InterpolateBlocks) are reused by
// the parallel algorithm in internal/parallel, whose BFS steps are exactly
// these block operations distributed across a processor grid.
package toom

import (
	"fmt"

	"repro/internal/bigint"
	"repro/internal/mat"
	"repro/internal/points"
)

// DefaultThresholdBits is the operand size below which the recursion bottoms
// out into schoolbook multiplication. It plays the role of the paper's
// hardware limit s: a product of two ≤s-bit integers is a "single machine
// operation" of the model (here, one schoolbook call on a handful of limbs).
const DefaultThresholdBits = 256

// Stats accumulates operation counts for one multiplication; pass to
// MulWithStats for the ablation benchmarks.
type Stats struct {
	BaseMuls       int64 // schoolbook base-case multiplications
	RecursiveCalls int64 // internal nodes of the recursion tree
	Evaluations    int64 // digit-vector evaluations (applications of U)
	Interpolations int64 // applications of W^T
	WordOps        int64 // word-level arithmetic operations (the model's F)
}

// chargeWords accumulates word-level operation counts when stats != nil.
func (s *Stats) chargeWords(n int64) {
	if s != nil {
		s.WordOps += n
	}
}

// wordsOf returns the F-charge for touching x once (at least one word).
func wordsOf(x bigint.Int) int64 {
	if l := int64(x.WordLen()); l > 0 {
		return l
	}
	return 1
}

// Algorithm is a ready-to-run Toom-Cook-k multiplier. It is immutable after
// construction and safe for concurrent use.
type Algorithm struct {
	k             int
	pts           []points.Point
	u             [][]int64 // (2k-1)×k integer evaluation matrix
	wNum          [][]int64 // (2k-1)×(2k-1) scaled interpolation numerators
	wDen          int64     // common denominator: W^T = wNum / wDen
	thresholdBits int
	interpSeq     InterpolationSequence // optional Toom-Graph schedule
	evalPairs     []evalPair            // Zanoni evaluation-reuse pairs (±v)
	evalSingles   []int                 // rows not covered by a pair
}

// evalPair marks two evaluation rows at opposite finite points (+v, −v):
// their values share the even/odd digit sums (E ± O), so both evaluations
// cost one pass over the digits instead of two — Zanoni's evaluation-reuse
// optimization mentioned in Section 1.1.
type evalPair struct {
	pos, neg int
}

// InterpolationSequence is an optimized interpolation schedule (a Toom-Graph
// inversion sequence, Definition 2.3): Apply must compute W^T·v exactly.
// internal/toomgraph.Sequence implements it.
type InterpolationSequence interface {
	Apply(v []bigint.Int) ([]bigint.Int, error)
}

// WithInterpolationSequence returns a copy of alg whose Interpolate uses the
// given inversion sequence (falling back to the scaled-matrix path if the
// sequence reports an error). The caller is responsible for supplying a
// sequence that matches alg's evaluation points; the toom tests and the
// ablation benchmarks verify the catalogued ones.
func (alg *Algorithm) WithInterpolationSequence(seq InterpolationSequence) *Algorithm {
	cp := *alg
	cp.interpSeq = seq
	return &cp
}

// New returns the Toom-Cook-k algorithm over the standard evaluation points
// (0, 1, -1, 2, …, ∞). k must be at least 2; k = 2 is Karatsuba.
func New(k int) (*Algorithm, error) {
	if k < 2 {
		return nil, fmt.Errorf("toom: k must be >= 2, got %d", k)
	}
	return NewWithPoints(k, points.Standard(2*k-1))
}

// MustNew is New for known-good k; it panics on error.
func MustNew(k int) *Algorithm {
	alg, err := New(k)
	if err != nil {
		panic(err)
	}
	return alg
}

// NewWithPoints builds a Toom-Cook-k algorithm from an explicit point set of
// exactly 2k-1 pairwise non-proportional points. The evaluation matrix must
// be integral (all standard sets are); the interpolation matrix may be — and
// usually is — rational.
func NewWithPoints(k int, pts []points.Point) (*Algorithm, error) {
	if k < 2 {
		return nil, fmt.Errorf("toom: k must be >= 2, got %d", k)
	}
	if len(pts) != 2*k-1 {
		return nil, fmt.Errorf("toom: Toom-Cook-%d needs %d points, got %d", k, 2*k-1, len(pts))
	}
	if err := points.Valid(pts, 2*k-1); err != nil {
		return nil, err
	}
	u, err := intMatrix(points.EvalMatrix(pts, k))
	if err != nil {
		return nil, fmt.Errorf("toom: evaluation matrix not integral: %w", err)
	}
	wt, err := points.Interpolation(pts, 2*k-1)
	if err != nil {
		return nil, err
	}
	wNum, wDen, err := scaledIntMatrix(wt)
	if err != nil {
		return nil, fmt.Errorf("toom: interpolation matrix: %w", err)
	}
	alg := &Algorithm{
		k:             k,
		pts:           append([]points.Point(nil), pts...),
		u:             u,
		wNum:          wNum,
		wDen:          wDen,
		thresholdBits: DefaultThresholdBits,
	}
	alg.evalPairs, alg.evalSingles = detectPairs(pts)
	return alg, nil
}

// detectPairs finds (+v, −v) finite point pairs for evaluation reuse.
func detectPairs(pts []points.Point) ([]evalPair, []int) {
	var pairs []evalPair
	used := make([]bool, len(pts))
	for i := range pts {
		if used[i] || pts[i].IsInfinity() || pts[i].X.IsZero() {
			continue
		}
		for j := i + 1; j < len(pts); j++ {
			if used[j] || pts[j].IsInfinity() {
				continue
			}
			if pts[i].H.Equal(pts[j].H) && pts[i].X.Equal(pts[j].X.Neg()) {
				pairs = append(pairs, evalPair{pos: i, neg: j})
				used[i], used[j] = true, true
				break
			}
		}
	}
	var singles []int
	for i := range pts {
		if !used[i] {
			singles = append(singles, i)
		}
	}
	return pairs, singles
}

// WithoutEvalReuse returns a copy that evaluates every row independently
// (for the evaluation-reuse ablation).
func (alg *Algorithm) WithoutEvalReuse() *Algorithm {
	cp := *alg
	cp.evalPairs = nil
	cp.evalSingles = make([]int, len(alg.pts))
	for i := range cp.evalSingles {
		cp.evalSingles[i] = i
	}
	return &cp
}

// K returns the split number.
func (alg *Algorithm) K() int { return alg.k }

// Points returns the evaluation points (a copy).
func (alg *Algorithm) Points() []points.Point {
	return append([]points.Point(nil), alg.pts...)
}

// NumProducts returns the number of pointwise sub-products, 2k-1.
func (alg *Algorithm) NumProducts() int { return 2*alg.k - 1 }

// ThresholdBits returns the base-case threshold in bits.
func (alg *Algorithm) ThresholdBits() int { return alg.thresholdBits }

// WithThreshold returns a copy of alg with a different base-case threshold
// (minimum 64 bits, so the recursion always terminates).
func (alg *Algorithm) WithThreshold(bits int) *Algorithm {
	if bits < 64 {
		bits = 64
	}
	cp := *alg
	cp.thresholdBits = bits
	return &cp
}

// Mul returns a·b via recursive Toom-Cook-k (Algorithm 1).
func (alg *Algorithm) Mul(a, b bigint.Int) bigint.Int {
	return alg.MulWithStats(a, b, nil)
}

// MulWithStats is Mul with operation counting; stats may be nil.
func (alg *Algorithm) MulWithStats(a, b bigint.Int, stats *Stats) bigint.Int {
	neg := a.Sign()*b.Sign() < 0
	z := alg.mulAbs(a.Abs(), b.Abs(), stats)
	if neg {
		z = z.Neg()
	}
	return z
}

func (alg *Algorithm) mulAbs(a, b bigint.Int, stats *Stats) bigint.Int {
	if a.IsZero() || b.IsZero() {
		return bigint.Zero()
	}
	maxBits := a.BitLen()
	if b.BitLen() > maxBits {
		maxBits = b.BitLen()
	}
	if maxBits <= alg.thresholdBits {
		if stats != nil {
			stats.BaseMuls++
			// Schoolbook word cost of the base case.
			stats.chargeWords(wordsOf(a) * wordsOf(b))
		}
		return a.Mul(b)
	}
	if stats != nil {
		stats.RecursiveCalls++
	}
	k := alg.k
	// Shared base B = 2^shift, k digits each of shift bits (Algorithm 1,
	// line 4; the +1 rounding of the paper's base definition is the
	// ceiling here).
	shift := (maxBits + k - 1) / k

	da := splitDigits(a, k, shift)
	db := splitDigits(b, k, shift)

	// Evaluation: a' = U·ā, b' = V·b̄ (lines 6-7).
	ea := alg.EvalDigits(da, stats)
	eb := alg.EvalDigits(db, stats)

	// Pointwise products, recursing on large operands (lines 8-14).
	prods := make([]bigint.Int, 2*k-1)
	for i := range prods {
		prods[i] = alg.mulSigned(ea[i], eb[i], stats)
	}

	// Interpolation: c̄ = W^T·c' (line 15).
	coeffs := alg.Interpolate(prods, stats)

	// Recomposition with carries: c = Σ c̄_i·B^i (line 16).
	if stats != nil {
		for _, c := range coeffs {
			stats.chargeWords(wordsOf(c))
		}
	}
	return Recompose(coeffs, shift)
}

// mulSigned multiplies possibly-negative evaluations via the same recursion.
func (alg *Algorithm) mulSigned(a, b bigint.Int, stats *Stats) bigint.Int {
	neg := a.Sign()*b.Sign() < 0
	z := alg.mulAbs(a.Abs(), b.Abs(), stats)
	if neg {
		z = z.Neg()
	}
	return z
}

// EvalDigits applies the evaluation matrix U to a digit vector of length k,
// returning the 2k-1 evaluations. Exported for reuse by the parallel
// algorithm, whose BFS evaluation step performs exactly this per block.
func (alg *Algorithm) EvalDigits(digits []bigint.Int, stats *Stats) []bigint.Int {
	if len(digits) != alg.k {
		panic(fmt.Sprintf("toom: EvalDigits needs %d digits, got %d", alg.k, len(digits)))
	}
	if stats != nil {
		stats.Evaluations++
	}
	out := make([]bigint.Int, len(alg.u))
	// The digit sums accumulate in place (bigint.Acc): each row costs O(1)
	// heap allocations instead of one per nonzero matrix entry.
	evenAcc, oddAcc := bigint.NewAcc(), bigint.NewAcc()
	defer evenAcc.Release()
	defer oddAcc.Release()
	// Paired rows (±v): one pass computes the even and odd digit sums E and
	// O; the two evaluations are E+O and E−O (Zanoni's reuse).
	for _, pr := range alg.evalPairs {
		row := alg.u[pr.pos]
		var work int64
		for m, c := range row {
			if c == 0 || digits[m].IsZero() {
				continue
			}
			work += 2 * wordsOf(digits[m])
			if m%2 == 0 {
				evenAcc.AddMul(digits[m], c)
			} else {
				oddAcc.AddMul(digits[m], c)
			}
		}
		even, odd := evenAcc.Take(), oddAcc.Take()
		out[pr.pos] = even.Add(odd)
		out[pr.neg] = even.Sub(odd)
		work += 2 * wordsOf(even)
		if stats != nil {
			stats.chargeWords(work)
		}
	}
	for _, i := range alg.evalSingles {
		row := alg.u[i]
		var work int64
		for m, c := range row {
			if c == 0 || digits[m].IsZero() {
				continue
			}
			evenAcc.AddMul(digits[m], c)
			work += 2 * wordsOf(digits[m])
		}
		out[i] = evenAcc.Take()
		if stats != nil {
			stats.chargeWords(work)
		}
	}
	return out
}

// Interpolate applies W^T to the 2k-1 pointwise products, returning the
// 2k-1 coefficients of the product polynomial. All divisions are exact; a
// failure indicates corrupted inputs and panics.
func (alg *Algorithm) Interpolate(prods []bigint.Int, stats *Stats) []bigint.Int {
	if len(prods) != 2*alg.k-1 {
		panic(fmt.Sprintf("toom: Interpolate needs %d products, got %d", 2*alg.k-1, len(prods)))
	}
	if alg.interpSeq != nil {
		if out, err := alg.interpSeq.Apply(prods); err == nil {
			if stats != nil {
				stats.Interpolations++
				// A schedule touches each value a handful of times; charge
				// the touched words (cheaper than the dense-matrix charge,
				// which is the point of the Toom-Graph optimization).
				var w int64
				for _, v := range out {
					w += 2 * wordsOf(v)
				}
				stats.chargeWords(w)
			}
			return out
		}
	}
	if stats != nil {
		stats.Interpolations++
		stats.chargeWords(RowsWork(alg.wNum, prods))
	}
	return applyRowsScaled(alg.wNum, prods, alg.wDen, stats)
}

// applyRowsScaled computes (rows·x)/den row by row in one reusable
// accumulator: the scalar combination and the exact division both run in
// place, so each output costs a single allocation (the Take). The F charge
// per row uses the pre-division word length, matching the historical
// ApplyRows-then-DivExactInt64 accounting.
func applyRowsScaled(rows [][]int64, x []bigint.Int, den int64, stats *Stats) []bigint.Int {
	out := make([]bigint.Int, len(rows))
	acc := bigint.NewAcc()
	defer acc.Release()
	for i, row := range rows {
		if len(row) != len(x) {
			panic("toom: applyRowsScaled width mismatch")
		}
		for j, c := range row {
			if c == 0 || x[j].IsZero() {
				continue
			}
			acc.AddMul(x[j], c)
		}
		if stats != nil {
			w := int64(acc.WordLen())
			if w == 0 {
				w = 1
			}
			stats.chargeWords(w)
		}
		acc.DivExact(den)
		out[i] = acc.Take()
	}
	return out
}

// RowsWork returns the word-operation count of ApplyRows(rows, x): each
// nonzero coefficient costs one scalar-by-big multiply plus accumulate,
// charged as the operand's word length.
func RowsWork(rows [][]int64, x []bigint.Int) int64 {
	var work int64
	for _, row := range rows {
		for j, c := range row {
			if c == 0 {
				continue
			}
			work += 2 * wordsOf(x[j])
		}
	}
	return work
}

// splitDigits returns the k digits of |a| in base 2^shift (low digit first).
func splitDigits(a bigint.Int, k, shift int) []bigint.Int {
	d := make([]bigint.Int, k)
	for i := 0; i < k; i++ {
		d[i] = a.Extract(i*shift, shift)
	}
	return d
}

// Recompose evaluates a signed coefficient vector at B = 2^shift:
// Σ coeffs[i]·2^{i·shift}. The signed adds perform the carry propagation
// that Algorithm 1 calls "compute the carry".
//
//ftlint:allow costcharge recomposition is charged by the callers: mulAbs charges wordsOf(c) per coefficient before calling, and AssembleFrom runs host-side outside the model
func Recompose(coeffs []bigint.Int, shift int) bigint.Int {
	acc := bigint.NewAcc()
	defer acc.Release()
	for i := len(coeffs) - 1; i >= 0; i-- {
		acc.Shl(uint(shift))
		acc.Add(coeffs[i])
	}
	return acc.Take()
}

// ApplyRows computes M·x for an integer matrix given as int64 rows. It is
// the workhorse of both evaluation and (scaled) interpolation: each output
// is a small-scalar combination of big integers.
//
//ftlint:allow costcharge a context-free primitive: callers charge its exact word cost via the companion RowsWork(rows, x)
func ApplyRows(rows [][]int64, x []bigint.Int) []bigint.Int {
	out := make([]bigint.Int, len(rows))
	acc := bigint.NewAcc()
	defer acc.Release()
	for i, row := range rows {
		if len(row) != len(x) {
			panic("toom: ApplyRows width mismatch")
		}
		for j, c := range row {
			if c == 0 || x[j].IsZero() {
				continue
			}
			acc.AddMul(x[j], c)
		}
		out[i] = acc.Take()
	}
	return out
}

// ApplyRowsToBlocks applies an integer matrix to a vector of *blocks*:
// blocks[j] is a digit vector and the matrix acts block-wise
// (out[i] = Σ_j M[i][j]·blocks[j], element-wise over the block). This is
// the "multiplication between a matrix and a block vector" of Algorithm 2,
// and the local computation of a parallel BFS step.
//
//ftlint:allow costcharge a context-free primitive: lazy-interpolation callers charge via blocksWork and the parallel layers charge the same work to their Proc
func ApplyRowsToBlocks(rows [][]int64, blocks [][]bigint.Int) [][]bigint.Int {
	if len(blocks) == 0 {
		return nil
	}
	blockLen := len(blocks[0])
	for _, b := range blocks {
		if len(b) != blockLen {
			panic("toom: ragged blocks")
		}
	}
	out := make([][]bigint.Int, len(rows))
	acc := bigint.NewAcc()
	defer acc.Release()
	for i, row := range rows {
		if len(row) != len(blocks) {
			panic("toom: ApplyRowsToBlocks width mismatch")
		}
		res := make([]bigint.Int, blockLen)
		for e := 0; e < blockLen; e++ {
			for j, c := range row {
				if c == 0 || blocks[j][e].IsZero() {
					continue
				}
				acc.AddMul(blocks[j][e], c)
			}
			res[e] = acc.Take()
		}
		out[i] = res
	}
	return out
}

// U returns the integer evaluation matrix rows (shared storage; callers must
// not modify).
func (alg *Algorithm) U() [][]int64 { return alg.u }

// WScaled returns the scaled interpolation matrix: rows wNum and the common
// denominator d with W^T = wNum/d (shared storage; callers must not modify).
func (alg *Algorithm) WScaled() ([][]int64, int64) { return alg.wNum, alg.wDen }

// IntRows converts a rational matrix with integer entries to int64 rows —
// used by fault-tolerant wrappers to build extended evaluation matrices.
func IntRows(m *mat.Matrix) ([][]int64, error) { return intMatrix(m) }

// ScaledRows converts a rational matrix to scaled-integer form: rows and a
// common denominator d with M = rows/d. Fault-tolerant interpolation builds
// its matrix on the fly from surviving evaluation points and applies it in
// this form.
func ScaledRows(m *mat.Matrix) ([][]int64, int64, error) { return scaledIntMatrix(m) }

// intMatrix converts a rational matrix with integer entries to int64 rows.
func intMatrix(m *mat.Matrix) ([][]int64, error) {
	rows := make([][]int64, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		rows[i] = make([]int64, m.Cols())
		for j := 0; j < m.Cols(); j++ {
			v := m.At(i, j)
			if !v.IsInt() {
				return nil, fmt.Errorf("entry (%d,%d) = %v is not an integer", i, j, v)
			}
			n, ok := v.Num().Int64()
			if !ok {
				return nil, fmt.Errorf("entry (%d,%d) = %v overflows int64", i, j, v)
			}
			rows[i][j] = n
		}
	}
	return rows, nil
}

// scaledIntMatrix finds the least common denominator d of a rational matrix
// and returns (d·M as int64 rows, d).
func scaledIntMatrix(m *mat.Matrix) ([][]int64, int64, error) {
	den := int64(1)
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			dv, ok := m.At(i, j).Den().Int64()
			if !ok {
				return nil, 0, fmt.Errorf("denominator at (%d,%d) overflows int64", i, j)
			}
			den = lcm64(den, dv)
			if den <= 0 {
				return nil, 0, fmt.Errorf("common denominator overflows int64")
			}
		}
	}
	rows := make([][]int64, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		rows[i] = make([]int64, m.Cols())
		for j := 0; j < m.Cols(); j++ {
			v := m.At(i, j)
			dv, _ := v.Den().Int64()
			nv, ok := v.Num().Int64()
			if !ok {
				return nil, 0, fmt.Errorf("numerator at (%d,%d) overflows int64", i, j)
			}
			scale := den / dv
			prod := nv * scale
			if nv != 0 && prod/nv != scale {
				return nil, 0, fmt.Errorf("scaled entry at (%d,%d) overflows int64", i, j)
			}
			rows[i][j] = prod
		}
	}
	return rows, den, nil
}

func gcd64(a, b int64) int64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	for b != 0 {
		a, b = b, a%b
	}
	return a
}

func lcm64(a, b int64) int64 {
	if a == 0 || b == 0 {
		return 0
	}
	return a / gcd64(a, b) * b
}
