package mat

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bigint"
	"repro/internal/rat"
)

func randMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := New(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			m.Set(i, j, rat.NewInt64(rng.Int63n(41)-20, rng.Int63n(5)+1))
		}
	}
	return m
}

func TestIdentity(t *testing.T) {
	id := Identity(4)
	m := randMatrix(rand.New(rand.NewSource(1)), 4, 4)
	if !id.Mul(m).Equal(m) || !m.Mul(id).Equal(m) {
		t.Fatal("identity is not multiplicative identity")
	}
}

func TestInverse(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	found := 0
	for found < 30 {
		n := 1 + rng.Intn(6)
		m := randMatrix(rng, n, n)
		inv, err := m.Inverse()
		if err != nil {
			continue // singular sample; skip
		}
		found++
		if !m.Mul(inv).Equal(Identity(n)) || !inv.Mul(m).Equal(Identity(n)) {
			t.Fatalf("A·A⁻¹ != I for\n%v", m)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := FromInt64s(2, 2, []int64{1, 2, 2, 4})
	if _, err := m.Inverse(); err == nil {
		t.Fatal("expected error inverting singular matrix")
	}
	if _, err := New(2, 3).Inverse(); err == nil {
		t.Fatal("expected error inverting non-square matrix")
	}
}

func TestDet(t *testing.T) {
	cases := []struct {
		rows, cols int
		vals       []int64
		want       int64
	}{
		{1, 1, []int64{7}, 7},
		{2, 2, []int64{1, 2, 3, 4}, -2},
		{3, 3, []int64{2, 0, 0, 0, 3, 0, 0, 0, 5}, 30},
		{3, 3, []int64{1, 2, 3, 4, 5, 6, 7, 8, 9}, 0},
	}
	for _, c := range cases {
		m := FromInt64s(c.rows, c.cols, c.vals)
		if got := m.Det(); !got.Equal(rat.FromInt64(c.want)) {
			t.Errorf("Det(%v) = %v, want %d", c.vals, got, c.want)
		}
	}
}

func TestDetMultiplicative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	cfg := &quick.Config{MaxCount: 40}
	f := func(int) bool {
		n := 1 + rng.Intn(4)
		a, b := randMatrix(rng, n, n), randMatrix(rng, n, n)
		return a.Mul(b).Det().Equal(a.Det().Mul(b.Det()))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error("det(AB) != det(A)det(B):", err)
	}
}

func TestRankAndInjectivity(t *testing.T) {
	m := FromInt64s(3, 2, []int64{1, 0, 0, 1, 1, 1})
	if got := m.Rank(); got != 2 {
		t.Errorf("Rank = %d, want 2", got)
	}
	if !m.IsInjective() {
		t.Error("tall full-column-rank matrix should be injective")
	}
	deg := FromInt64s(3, 2, []int64{1, 2, 2, 4, 3, 6})
	if deg.IsInjective() {
		t.Error("rank-1 matrix should not be injective")
	}
	if got := New(3, 3).Rank(); got != 0 {
		t.Errorf("Rank(zero) = %d", got)
	}
}

func TestTranspose(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	m := randMatrix(rng, 3, 5)
	tt := m.Transpose().Transpose()
	if !tt.Equal(m) {
		t.Fatal("double transpose changed the matrix")
	}
	mt := m.Transpose()
	for i := 0; i < m.Rows(); i++ {
		for j := 0; j < m.Cols(); j++ {
			if !m.At(i, j).Equal(mt.At(j, i)) {
				t.Fatalf("transpose wrong at (%d,%d)", i, j)
			}
		}
	}
}

func TestSolve(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; {
		n := 1 + rng.Intn(5)
		m := randMatrix(rng, n, n)
		if m.Det().IsZero() {
			continue
		}
		trial++
		x := make([]rat.Rat, n)
		for i := range x {
			x[i] = rat.NewInt64(rng.Int63n(21)-10, rng.Int63n(4)+1)
		}
		b := m.ApplyRat(x)
		got, err := m.Solve(b)
		if err != nil {
			t.Fatal(err)
		}
		for i := range x {
			if !got[i].Equal(x[i]) {
				t.Fatalf("Solve returned wrong x at %d", i)
			}
		}
	}
}

func TestApplyIntExact(t *testing.T) {
	m := FromInt64s(2, 2, []int64{1, 1, 1, -1})
	x := []bigint.Int{bigint.FromInt64(10), bigint.FromInt64(4)}
	z := m.ApplyIntExact(x)
	if v, _ := z[0].Int64(); v != 14 {
		t.Errorf("z[0] = %v", z[0])
	}
	if v, _ := z[1].Int64(); v != 6 {
		t.Errorf("z[1] = %v", z[1])
	}
	half := New(1, 1)
	half.Set(0, 0, rat.NewInt64(1, 2))
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for non-integer result")
		}
	}()
	half.ApplyIntExact([]bigint.Int{bigint.FromInt64(3)})
}

func TestSelectRows(t *testing.T) {
	m := FromInt64s(4, 2, []int64{0, 1, 10, 11, 20, 21, 30, 31})
	s := m.SelectRows([]int{3, 1})
	want := FromInt64s(2, 2, []int64{30, 31, 10, 11})
	if !s.Equal(want) {
		t.Fatalf("SelectRows = \n%v want \n%v", s, want)
	}
}

func TestVandermondeInvertibility(t *testing.T) {
	// Distinct nodes => any square Vandermonde is invertible.
	nodes := []rat.Rat{rat.FromInt64(1), rat.FromInt64(2), rat.FromInt64(3), rat.FromInt64(5)}
	v := Vandermonde(nodes, 4)
	if v.Det().IsZero() {
		t.Fatal("Vandermonde with distinct nodes is singular")
	}
	// Repeated nodes => singular.
	bad := Vandermonde([]rat.Rat{rat.FromInt64(2), rat.FromInt64(2)}, 2)
	if !bad.Det().IsZero() {
		t.Fatal("Vandermonde with repeated nodes should be singular")
	}
}

func TestAllMinorsInvertible(t *testing.T) {
	// Vandermonde over positive distinct nodes is totally positive => MDS.
	nodes := []rat.Rat{rat.FromInt64(1), rat.FromInt64(2), rat.FromInt64(3)}
	e := Vandermonde(nodes, 4)
	if !AllMinorsInvertible(e) {
		t.Fatal("positive Vandermonde should have all minors invertible")
	}
	// A matrix with a zero entry has a singular 1x1 minor.
	z := FromInt64s(2, 2, []int64{1, 0, 1, 1})
	if AllMinorsInvertible(z) {
		t.Fatal("matrix with zero entry cannot be MDS")
	}
}

func TestCombinations(t *testing.T) {
	cs := combinations(4, 2)
	if len(cs) != 6 {
		t.Fatalf("C(4,2) = %d, want 6", len(cs))
	}
	seen := map[[2]int]bool{}
	for _, c := range cs {
		if len(c) != 2 || c[0] >= c[1] {
			t.Fatalf("bad combination %v", c)
		}
		seen[[2]int{c[0], c[1]}] = true
	}
	if len(seen) != 6 {
		t.Fatal("duplicate combinations")
	}
}

func TestMulShapePanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on shape mismatch")
		}
	}()
	New(2, 3).Mul(New(2, 3))
}

func TestNullspace(t *testing.T) {
	// Rank-1 matrix: kernel dimension 2.
	m := FromInt64s(3, 3, []int64{1, 2, 3, 2, 4, 6, 3, 6, 9})
	basis := m.Nullspace()
	if len(basis) != 2 {
		t.Fatalf("kernel dimension = %d, want 2", len(basis))
	}
	for _, v := range basis {
		img := m.ApplyRat(v)
		for i, x := range img {
			if !x.IsZero() {
				t.Fatalf("basis vector not in kernel at row %d", i)
			}
		}
	}
	// Invertible matrix: trivial kernel.
	if got := Identity(4).Nullspace(); len(got) != 0 {
		t.Fatalf("identity kernel dimension = %d", len(got))
	}
	// Wide matrix: kernel at least cols-rows.
	wide := FromInt64s(1, 3, []int64{1, 1, 1})
	if got := wide.Nullspace(); len(got) != 2 {
		t.Fatalf("wide kernel dimension = %d, want 2", len(got))
	}
}
