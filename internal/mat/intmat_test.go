package mat

import (
	"math/rand"
	"testing"

	"repro/internal/bigint"
)

func randIntMat(rng *rand.Rand, rows, cols, bits int) *IntMat {
	m := NewIntMat(rows, cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			v := bigint.Random(rng, 1+rng.Intn(bits))
			if rng.Intn(2) == 0 {
				v = v.Neg()
			}
			m.Set(i, j, v)
		}
	}
	return m
}

// Ring axioms the matrix algebra must satisfy, checked on random instances
// with both multiplication paths.
func TestIntMatMulAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		r, k, c, d := 1+rng.Intn(7), 1+rng.Intn(7), 1+rng.Intn(7), 1+rng.Intn(7)
		a := randIntMat(rng, r, k, 64)
		b := randIntMat(rng, k, c, 64)
		cc := randIntMat(rng, c, d, 64)
		left := a.MulNaive(b).MulNaive(cc)
		right := a.MulNaive(b.MulNaive(cc))
		if !left.Equal(right) {
			t.Fatalf("trial %d: (A·B)·C != A·(B·C) for %dx%d·%dx%d·%dx%d", trial, r, k, k, c, c, d)
		}
	}
}

func TestIntMatMulDistributive(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		r, k, c := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randIntMat(rng, r, k, 64)
		b := randIntMat(rng, k, c, 64)
		d := randIntMat(rng, k, c, 64)
		left := a.MulNaive(b.Add(d))
		right := a.MulNaive(b).Add(a.MulNaive(d))
		if !left.Equal(right) {
			t.Fatalf("trial %d: A·(B+C) != A·B + A·C", trial)
		}
	}
}

func TestIntMatIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 10; trial++ {
		r, c := 1+rng.Intn(9), 1+rng.Intn(9)
		a := randIntMat(rng, r, c, 64)
		if !IntIdentity(r).MulNaive(a).Equal(a) {
			t.Fatalf("trial %d: I·A != A", trial)
		}
		if !a.MulNaive(IntIdentity(c)).Equal(a) {
			t.Fatalf("trial %d: A·I != A", trial)
		}
	}
}

func TestIntMatTransposeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		r, k, c := 1+rng.Intn(8), 1+rng.Intn(8), 1+rng.Intn(8)
		a := randIntMat(rng, r, k, 64)
		b := randIntMat(rng, k, c, 64)
		if !a.Transpose().Transpose().Equal(a) {
			t.Fatalf("trial %d: (Aᵀ)ᵀ != A", trial)
		}
		if !a.MulNaive(b).Transpose().Equal(b.Transpose().MulNaive(a.Transpose())) {
			t.Fatalf("trial %d: (A·B)ᵀ != Bᵀ·Aᵀ", trial)
		}
	}
}

func TestIntMatSubM(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	a := randIntMat(rng, 5, 7, 64)
	b := randIntMat(rng, 5, 7, 64)
	if !a.SubM(b).Add(b).Equal(a) {
		t.Fatalf("(A−B)+B != A")
	}
	if !a.SubM(a).Equal(NewIntMat(5, 7)) {
		t.Fatalf("A−A != 0")
	}
}

func TestIntMatBlockStitch(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randIntMat(rng, 6, 8, 64)
	z := NewIntMat(6, 8)
	z.SetBlock(0, 0, a.Block(0, 0, 3, 4))
	z.SetBlock(0, 4, a.Block(0, 4, 3, 4))
	z.SetBlock(3, 0, a.Block(3, 0, 3, 4))
	z.SetBlock(3, 4, a.Block(3, 4, 3, 4))
	if !z.Equal(a) {
		t.Fatalf("block decompose/stitch round-trip failed")
	}
}

// Strassen must agree with the classical product on every shape, including
// odd dimensions and shapes around the recursion cutoff.
func TestIntMatStrassenMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := [][3]int{
		{1, 1, 1}, {2, 2, 2}, {3, 3, 3}, {7, 7, 7}, {8, 8, 8},
		{9, 9, 9}, {15, 15, 15}, {16, 16, 16}, {17, 17, 17},
		{5, 9, 3}, {12, 7, 10}, {31, 4, 19}, {1, 33, 1},
	}
	for _, s := range shapes {
		a := randIntMat(rng, s[0], s[1], 48)
		b := randIntMat(rng, s[1], s[2], 48)
		got := a.Strassen(b)
		want := a.MulNaive(b)
		if !got.Equal(want) {
			t.Fatalf("Strassen != naive for %dx%d · %dx%d", s[0], s[1], s[1], s[2])
		}
	}
}

// FuzzIntMatStrassen drives Strassen against the classical oracle with
// fuzzer-chosen shapes (odd, padded, rectangular) and entry seeds.
func FuzzIntMatStrassen(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(5), uint8(2))
	f.Add(int64(2), uint8(9), uint8(9), uint8(9))
	f.Add(int64(3), uint8(17), uint8(1), uint8(17))
	f.Add(int64(4), uint8(8), uint8(16), uint8(24))
	f.Fuzz(func(t *testing.T, seed int64, rr, kk, cc uint8) {
		r := 1 + int(rr)%24
		k := 1 + int(kk)%24
		c := 1 + int(cc)%24
		rng := rand.New(rand.NewSource(seed))
		a := randIntMat(rng, r, k, 40)
		b := randIntMat(rng, k, c, 40)
		got := a.Strassen(b)
		want := a.MulNaive(b)
		if !got.Equal(want) {
			t.Fatalf("Strassen != naive for %dx%d · %dx%d (seed %d)", r, k, k, c, seed)
		}
	})
}
