// Package mat implements dense matrices over exact rationals (internal/rat).
//
// These matrices drive the linear algebra behind the paper: Toom-Cook
// evaluation matrices (U, V), the interpolation matrix (W^T = inverse of the
// product-polynomial evaluation matrix), systematic Vandermonde erasure-code
// generators, and the injectivity/general-position checks of Section 6.
// Everything is exact; there is no floating point anywhere.
package mat

import (
	"fmt"
	"strings"

	"repro/internal/bigint"
	"repro/internal/rat"
)

// Matrix is a dense rows×cols matrix over the rationals. The zero Matrix is
// the empty 0×0 matrix. Matrices are mutable; use Clone before destructive
// operations when the original is still needed.
type Matrix struct {
	rows, cols int
	a          []rat.Rat // row-major
}

// New returns a zero-filled rows×cols matrix.
func New(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	return &Matrix{rows: rows, cols: cols, a: make([]rat.Rat, rows*cols)}
}

// Identity returns the n×n identity matrix.
func Identity(n int) *Matrix {
	m := New(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, rat.One())
	}
	return m
}

// FromInt64s builds a matrix from a row-major slice of small integers.
func FromInt64s(rows, cols int, vals []int64) *Matrix {
	if len(vals) != rows*cols {
		panic("mat: FromInt64s size mismatch")
	}
	m := New(rows, cols)
	for i, v := range vals {
		m.a[i] = rat.FromInt64(v)
	}
	return m
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *Matrix) At(i, j int) rat.Rat {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *Matrix) Set(i, j int, v rat.Rat) {
	m.check(i, j)
	m.a[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	z := New(m.rows, m.cols)
	copy(z.a, m.a)
	return z
}

// Equal reports whether m and n have the same shape and entries.
func (m *Matrix) Equal(n *Matrix) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if !m.a[i].Equal(n.a[i]) {
			return false
		}
	}
	return true
}

// Mul returns the matrix product m·n.
func (m *Matrix) Mul(n *Matrix) *Matrix {
	if m.cols != n.rows {
		panic(fmt.Sprintf("mat: Mul shape mismatch %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	z := New(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.a[i*m.cols+k]
			if mik.IsZero() {
				continue
			}
			for j := 0; j < n.cols; j++ {
				z.a[i*n.cols+j] = z.a[i*n.cols+j].Add(mik.Mul(n.a[k*n.cols+j]))
			}
		}
	}
	return z
}

// Transpose returns mᵀ.
func (m *Matrix) Transpose() *Matrix {
	z := New(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			z.a[j*m.rows+i] = m.a[i*m.cols+j]
		}
	}
	return z
}

// SelectRows returns the submatrix consisting of the given rows, in order.
func (m *Matrix) SelectRows(rows []int) *Matrix {
	z := New(len(rows), m.cols)
	for zi, i := range rows {
		if i < 0 || i >= m.rows {
			panic("mat: SelectRows index out of range")
		}
		copy(z.a[zi*m.cols:(zi+1)*m.cols], m.a[i*m.cols:(i+1)*m.cols])
	}
	return z
}

// Inverse returns m⁻¹ via Gauss-Jordan elimination with exact arithmetic,
// or an error if m is singular or non-square.
func (m *Matrix) Inverse() (*Matrix, error) {
	if m.rows != m.cols {
		return nil, fmt.Errorf("mat: inverse of non-square %dx%d matrix", m.rows, m.cols)
	}
	n := m.rows
	a := m.Clone()
	inv := Identity(n)
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if !a.At(r, col).IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return nil, fmt.Errorf("mat: singular matrix (no pivot in column %d)", col)
		}
		a.swapRows(col, pivot)
		inv.swapRows(col, pivot)
		// Scale pivot row to 1.
		scale := a.At(col, col).Inv()
		a.scaleRow(col, scale)
		inv.scaleRow(col, scale)
		// Eliminate all other rows.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			factor := a.At(r, col)
			if factor.IsZero() {
				continue
			}
			a.addScaledRow(r, col, factor.Neg())
			inv.addScaledRow(r, col, factor.Neg())
		}
	}
	return inv, nil
}

// Det returns the determinant of a square matrix (fraction-based Gaussian
// elimination; exact).
func (m *Matrix) Det() rat.Rat {
	if m.rows != m.cols {
		panic("mat: Det of non-square matrix")
	}
	n := m.rows
	a := m.Clone()
	det := rat.One()
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if !a.At(r, col).IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return rat.Zero()
		}
		if pivot != col {
			a.swapRows(col, pivot)
			det = det.Neg()
		}
		p := a.At(col, col)
		det = det.Mul(p)
		inv := p.Inv()
		for r := col + 1; r < n; r++ {
			f := a.At(r, col)
			if f.IsZero() {
				continue
			}
			a.addScaledRow(r, col, f.Mul(inv).Neg())
		}
	}
	return det
}

// Rank returns the rank of m.
func (m *Matrix) Rank() int {
	a := m.Clone()
	rank := 0
	for col := 0; col < a.cols && rank < a.rows; col++ {
		pivot := -1
		for r := rank; r < a.rows; r++ {
			if !a.At(r, col).IsZero() {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a.swapRows(rank, pivot)
		inv := a.At(rank, col).Inv()
		for r := rank + 1; r < a.rows; r++ {
			f := a.At(r, col)
			if f.IsZero() {
				continue
			}
			a.addScaledRow(r, col, f.Mul(inv).Neg())
		}
		rank++
	}
	return rank
}

// IsInjective reports whether m, viewed as a linear map from cols-space to
// rows-space, is injective (full column rank). This is the validity test the
// paper applies to evaluation matrices (Claims 2.2 and 6.1).
func (m *Matrix) IsInjective() bool { return m.Rank() == m.cols }

// Solve returns the unique x with m·x = b for square invertible m, where b is
// a column vector given as a slice. It errors if m is singular.
func (m *Matrix) Solve(b []rat.Rat) ([]rat.Rat, error) {
	if m.rows != m.cols || m.rows != len(b) {
		return nil, fmt.Errorf("mat: Solve shape mismatch")
	}
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.ApplyRat(b), nil
}

// ApplyRat returns m·x for a rational column vector x.
func (m *Matrix) ApplyRat(x []rat.Rat) []rat.Rat {
	if len(x) != m.cols {
		panic("mat: ApplyRat length mismatch")
	}
	z := make([]rat.Rat, m.rows)
	for i := 0; i < m.rows; i++ {
		acc := rat.Zero()
		for j := 0; j < m.cols; j++ {
			mij := m.a[i*m.cols+j]
			if mij.IsZero() {
				continue
			}
			acc = acc.Add(mij.Mul(x[j]))
		}
		z[i] = acc
	}
	return z
}

// ApplyInt returns m·x for an integer column vector x, as exact rationals.
func (m *Matrix) ApplyInt(x []bigint.Int) []rat.Rat {
	xr := make([]rat.Rat, len(x))
	for i, v := range x {
		xr[i] = rat.FromInt(v)
	}
	return m.ApplyRat(xr)
}

// ApplyIntExact returns m·x for an integer vector x, requiring every
// component of the result to be an integer (it panics otherwise). Toom-Cook
// interpolation applied to a genuine product evaluation always yields
// integers; non-integers indicate corrupted inputs.
func (m *Matrix) ApplyIntExact(x []bigint.Int) []bigint.Int {
	r := m.ApplyInt(x)
	z := make([]bigint.Int, len(r))
	for i, v := range r {
		z[i] = v.Int()
	}
	return z
}

// IsIntegerMatrix reports whether every entry of m is an integer.
func (m *Matrix) IsIntegerMatrix() bool {
	for _, v := range m.a {
		if !v.IsInt() {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging and for the figure harness.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.rows; i++ {
		b.WriteByte('[')
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(m.At(i, j).String())
		}
		b.WriteString("]\n")
	}
	return b.String()
}

func (m *Matrix) swapRows(i, j int) {
	if i == j {
		return
	}
	for c := 0; c < m.cols; c++ {
		m.a[i*m.cols+c], m.a[j*m.cols+c] = m.a[j*m.cols+c], m.a[i*m.cols+c]
	}
}

func (m *Matrix) scaleRow(i int, f rat.Rat) {
	for c := 0; c < m.cols; c++ {
		m.a[i*m.cols+c] = m.a[i*m.cols+c].Mul(f)
	}
}

// addScaledRow adds f·row[src] to row[dst].
func (m *Matrix) addScaledRow(dst, src int, f rat.Rat) {
	for c := 0; c < m.cols; c++ {
		m.a[dst*m.cols+c] = m.a[dst*m.cols+c].Add(f.Mul(m.a[src*m.cols+c]))
	}
}

// Nullspace returns a basis of ker(m) as column vectors (each of length
// Cols). The empty slice means the kernel is trivial. Computed by
// Gauss-Jordan reduction over ℚ.
func (m *Matrix) Nullspace() [][]rat.Rat {
	a := m.Clone()
	rows, cols := a.rows, a.cols
	pivotCol := make([]int, 0, rows) // pivot column per pivot row
	r := 0
	for c := 0; c < cols && r < rows; c++ {
		pivot := -1
		for i := r; i < rows; i++ {
			if !a.At(i, c).IsZero() {
				pivot = i
				break
			}
		}
		if pivot < 0 {
			continue
		}
		a.swapRows(r, pivot)
		a.scaleRow(r, a.At(r, c).Inv())
		for i := 0; i < rows; i++ {
			if i == r {
				continue
			}
			f := a.At(i, c)
			if f.IsZero() {
				continue
			}
			a.addScaledRow(i, r, f.Neg())
		}
		pivotCol = append(pivotCol, c)
		r++
	}
	isPivot := make([]bool, cols)
	for _, c := range pivotCol {
		isPivot[c] = true
	}
	var basis [][]rat.Rat
	for free := 0; free < cols; free++ {
		if isPivot[free] {
			continue
		}
		v := make([]rat.Rat, cols)
		v[free] = rat.One()
		for pr, pc := range pivotCol {
			v[pc] = a.At(pr, free).Neg()
		}
		basis = append(basis, v)
	}
	return basis
}

// Vandermonde returns the f×w Vandermonde matrix with rows (1, η, η², …) for
// the given distinct nodes η — the matrix E of the paper's systematic
// erasure code (Section 2.5).
func Vandermonde(nodes []rat.Rat, width int) *Matrix {
	m := New(len(nodes), width)
	for i, eta := range nodes {
		for j := 0; j < width; j++ {
			m.Set(i, j, eta.Pow(j))
		}
	}
	return m
}

// AllMinorsInvertible reports whether every square submatrix of m (every
// minor, all sizes) is invertible — the MDS property required of the
// systematic part E of an erasure-code generator (Definition 2.7). It is
// exponential in min(rows, cols) and intended for the small code shapes used
// in tests and setup.
func AllMinorsInvertible(m *Matrix) bool {
	rmax := m.rows
	cmax := m.cols
	size := rmax
	if cmax < size {
		size = cmax
	}
	for s := 1; s <= size; s++ {
		rowSets := combinations(rmax, s)
		colSets := combinations(cmax, s)
		for _, rs := range rowSets {
			for _, cs := range colSets {
				sub := New(s, s)
				for i, ri := range rs {
					for j, cj := range cs {
						sub.Set(i, j, m.At(ri, cj))
					}
				}
				if sub.Det().IsZero() {
					return false
				}
			}
		}
	}
	return true
}

// combinations enumerates all size-s subsets of {0, …, n-1}.
func combinations(n, s int) [][]int {
	var out [][]int
	idx := make([]int, s)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == s {
			c := make([]int, s)
			copy(c, idx)
			out = append(out, c)
			return
		}
		for i := start; i <= n-(s-pos); i++ {
			idx[pos] = i
			rec(i+1, pos+1)
		}
	}
	rec(0, 0)
	return out
}
