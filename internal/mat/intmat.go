package mat

// intmat.go implements dense matrices over arbitrary-precision integers
// (internal/bigint) — the payload type of the fault-tolerant matrix
// multiplication tier. An IntMat flattens to a row-major []bigint.Int, which
// is exactly the machine.Ints shape the collective layer moves, so matrix
// tiles travel the same tagged-limb channels as integer digits with no
// second collective implementation.

import (
	"fmt"

	"repro/internal/bigint"
)

// IntMat is a dense rows×cols matrix over integers. The zero IntMat is the
// empty 0×0 matrix. Matrices are mutable; use Clone before destructive
// operations when the original is still needed.
//
// The type is deliberately not named Int: the analysis layers key limb
// arithmetic and value contracts on the receiver type name "Int"
// (bigint.Int), and a colliding matrix type would be swept into those rules.
type IntMat struct {
	rows, cols int
	a          []bigint.Int // row-major
}

// NewIntMat returns a zero-filled rows×cols integer matrix.
func NewIntMat(rows, cols int) *IntMat {
	if rows < 0 || cols < 0 {
		panic("mat: negative dimension")
	}
	a := make([]bigint.Int, rows*cols)
	for i := range a {
		a[i] = bigint.Zero()
	}
	return &IntMat{rows: rows, cols: cols, a: a}
}

// IntMatFromFlat builds a rows×cols matrix over a row-major flat vector.
// The slice is adopted, not copied — the inverse of Flat.
func IntMatFromFlat(rows, cols int, flat []bigint.Int) *IntMat {
	if len(flat) != rows*cols {
		panic(fmt.Sprintf("mat: IntMatFromFlat got %d entries for %dx%d", len(flat), rows, cols))
	}
	return &IntMat{rows: rows, cols: cols, a: flat}
}

// IntMatFromInt64s builds a matrix from a row-major slice of small integers.
func IntMatFromInt64s(rows, cols int, vals []int64) *IntMat {
	if len(vals) != rows*cols {
		panic("mat: IntMatFromInt64s size mismatch")
	}
	m := NewIntMat(rows, cols)
	for i, v := range vals {
		m.a[i] = bigint.FromInt64(v)
	}
	return m
}

// IntIdentity returns the n×n integer identity matrix.
func IntIdentity(n int) *IntMat {
	m := NewIntMat(n, n)
	for i := 0; i < n; i++ {
		m.Set(i, i, bigint.FromInt64(1))
	}
	return m
}

// Rows returns the number of rows.
func (m *IntMat) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *IntMat) Cols() int { return m.cols }

// At returns the element at (i, j).
func (m *IntMat) At(i, j int) bigint.Int {
	m.check(i, j)
	return m.a[i*m.cols+j]
}

// Set assigns the element at (i, j).
func (m *IntMat) Set(i, j int, v bigint.Int) {
	m.check(i, j)
	m.a[i*m.cols+j] = v
}

func (m *IntMat) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("mat: index (%d,%d) out of range %dx%d", i, j, m.rows, m.cols))
	}
}

// Flat returns the row-major backing vector — the wire shape the collective
// layer sends. The slice aliases the matrix; callers who mutate it mutate m.
func (m *IntMat) Flat() []bigint.Int { return m.a }

// Clone returns a deep copy of m (entry values are immutable, so copying the
// backing slice suffices).
func (m *IntMat) Clone() *IntMat {
	z := &IntMat{rows: m.rows, cols: m.cols, a: make([]bigint.Int, len(m.a))}
	copy(z.a, m.a)
	return z
}

// Equal reports whether m and n have the same shape and entries.
func (m *IntMat) Equal(n *IntMat) bool {
	if m.rows != n.rows || m.cols != n.cols {
		return false
	}
	for i := range m.a {
		if m.a[i].Cmp(n.a[i]) != 0 {
			return false
		}
	}
	return true
}

// Add returns m + n.
func (m *IntMat) Add(n *IntMat) *IntMat {
	m.sameShape(n, "Add")
	z := &IntMat{rows: m.rows, cols: m.cols, a: make([]bigint.Int, len(m.a))}
	for i := range m.a {
		z.a[i] = m.a[i].Add(n.a[i])
	}
	return z
}

// SubM returns m − n. (Sub would collide with the bigint.Int limb-arithmetic
// method set the analyzers govern.)
func (m *IntMat) SubM(n *IntMat) *IntMat {
	m.sameShape(n, "SubM")
	z := &IntMat{rows: m.rows, cols: m.cols, a: make([]bigint.Int, len(m.a))}
	for i := range m.a {
		z.a[i] = m.a[i].Sub(n.a[i])
	}
	return z
}

func (m *IntMat) sameShape(n *IntMat, op string) {
	if m.rows != n.rows || m.cols != n.cols {
		panic(fmt.Sprintf("mat: %s shape mismatch %dx%d vs %dx%d", op, m.rows, m.cols, n.rows, n.cols))
	}
}

// MulNaive returns the matrix product m·n by the classical O(r·c·k) triple
// loop — the oracle the Strassen path is verified against.
func (m *IntMat) MulNaive(n *IntMat) *IntMat {
	if m.cols != n.rows {
		panic(fmt.Sprintf("mat: MulNaive shape mismatch %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	z := NewIntMat(m.rows, n.cols)
	for i := 0; i < m.rows; i++ {
		for k := 0; k < m.cols; k++ {
			mik := m.a[i*m.cols+k]
			if mik.IsZero() {
				continue
			}
			for j := 0; j < n.cols; j++ {
				z.a[i*n.cols+j] = z.a[i*n.cols+j].Add(mik.Mul(n.a[k*n.cols+j]))
			}
		}
	}
	return z
}

// strassenCutoff is the dimension below which Strassen recursion falls back
// to the classical product; 2×2 blocking gains nothing on tiny tiles.
const strassenCutoff = 8

// Strassen returns the matrix product m·n via Strassen's 2×2 recursion.
// Odd or non-square shapes are zero-padded to the next even square at each
// level and the result is cropped back, so any conformable pair multiplies.
func (m *IntMat) Strassen(n *IntMat) *IntMat {
	if m.cols != n.rows {
		panic(fmt.Sprintf("mat: Strassen shape mismatch %dx%d · %dx%d", m.rows, m.cols, n.rows, n.cols))
	}
	size := maxDim(m.rows, m.cols, n.cols)
	if size%2 != 0 {
		size++
	}
	if size < strassenCutoff {
		return m.MulNaive(n)
	}
	a := m.padTo(size, size)
	b := n.padTo(size, size)
	c := strassenSquare(a, b)
	return c.Block(0, 0, m.rows, n.cols)
}

// strassenSquare multiplies two even n×n matrices by Strassen's identities.
func strassenSquare(a, b *IntMat) *IntMat {
	n := a.rows
	if n < strassenCutoff {
		return a.MulNaive(b)
	}
	h := n / 2
	if h%2 != 0 && h >= strassenCutoff {
		// Keep halves even so every level splits cleanly.
		return a.padTo(n+2, n+2).strassenEven(b.padTo(n+2, n+2)).Block(0, 0, n, n)
	}
	return a.strassenEven(b)
}

func (a *IntMat) strassenEven(b *IntMat) *IntMat {
	n := a.rows
	h := n / 2
	a00, a01 := a.Block(0, 0, h, h), a.Block(0, h, h, h)
	a10, a11 := a.Block(h, 0, h, h), a.Block(h, h, h, h)
	b00, b01 := b.Block(0, 0, h, h), b.Block(0, h, h, h)
	b10, b11 := b.Block(h, 0, h, h), b.Block(h, h, h, h)

	m1 := strassenSquare(a00.Add(a11), b00.Add(b11))
	m2 := strassenSquare(a10.Add(a11), b00)
	m3 := strassenSquare(a00, b01.SubM(b11))
	m4 := strassenSquare(a11, b10.SubM(b00))
	m5 := strassenSquare(a00.Add(a01), b11)
	m6 := strassenSquare(a10.SubM(a00), b00.Add(b01))
	m7 := strassenSquare(a01.SubM(a11), b10.Add(b11))

	c := NewIntMat(n, n)
	c.SetBlock(0, 0, m1.Add(m4).SubM(m5).Add(m7))
	c.SetBlock(0, h, m3.Add(m5))
	c.SetBlock(h, 0, m2.Add(m4))
	c.SetBlock(h, h, m1.SubM(m2).Add(m3).Add(m6))
	return c
}

// Block returns a copy of the r×c submatrix whose top-left corner is (i0, j0).
func (m *IntMat) Block(i0, j0, r, c int) *IntMat {
	if i0 < 0 || j0 < 0 || r < 0 || c < 0 || i0+r > m.rows || j0+c > m.cols {
		panic(fmt.Sprintf("mat: Block (%d,%d)+%dx%d out of range %dx%d", i0, j0, r, c, m.rows, m.cols))
	}
	z := &IntMat{rows: r, cols: c, a: make([]bigint.Int, r*c)}
	for i := 0; i < r; i++ {
		copy(z.a[i*c:(i+1)*c], m.a[(i0+i)*m.cols+j0:(i0+i)*m.cols+j0+c])
	}
	return z
}

// SetBlock copies blk into m with its top-left corner at (i0, j0).
func (m *IntMat) SetBlock(i0, j0 int, blk *IntMat) {
	if i0 < 0 || j0 < 0 || i0+blk.rows > m.rows || j0+blk.cols > m.cols {
		panic(fmt.Sprintf("mat: SetBlock (%d,%d)+%dx%d out of range %dx%d", i0, j0, blk.rows, blk.cols, m.rows, m.cols))
	}
	for i := 0; i < blk.rows; i++ {
		copy(m.a[(i0+i)*m.cols+j0:(i0+i)*m.cols+j0+blk.cols], blk.a[i*blk.cols:(i+1)*blk.cols])
	}
}

// padTo returns m zero-extended to rows×cols (m's shape must fit).
func (m *IntMat) padTo(rows, cols int) *IntMat {
	if rows == m.rows && cols == m.cols {
		return m
	}
	z := NewIntMat(rows, cols)
	z.SetBlock(0, 0, m)
	return z
}

// Transpose returns mᵀ.
func (m *IntMat) Transpose() *IntMat {
	z := &IntMat{rows: m.cols, cols: m.rows, a: make([]bigint.Int, len(m.a))}
	for i := 0; i < m.rows; i++ {
		for j := 0; j < m.cols; j++ {
			z.a[j*m.rows+i] = m.a[i*m.cols+j]
		}
	}
	return z
}

func maxDim(vals ...int) int {
	out := 0
	for _, v := range vals {
		if v > out {
			out = v
		}
	}
	return out
}
