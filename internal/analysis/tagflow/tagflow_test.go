package tagflow_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/tagflow"
)

func TestTagFlow(t *testing.T) {
	analysistest.Run(t, tagflow.Analyzer, "machine")
}

// One symbolic send tag must silence the orphan-receive check package-wide.
func TestTagFlowSymbolicSendsSilent(t *testing.T) {
	analysistest.Run(t, tagflow.Analyzer, "collective")
}

// The real tree's tags are parameter-derived and its barriers straight-line
// (or error-guarded without an else), so tagflow must stay silent on it.
func TestTagFlowRealTree(t *testing.T) {
	pkgs, err := framework.LoadCached("../../..", "./internal/machine/...", "./internal/collective", "./internal/ftparallel", "./internal/ftengine")
	if err != nil {
		t.Fatalf("loading governed packages: %v", err)
	}
	active, suppressed, err := framework.RunAllDetail([]*framework.Analyzer{tagflow.Analyzer}, pkgs)
	if err != nil {
		t.Fatalf("running tagflow: %v", err)
	}
	// Filter to tagflow findings: running a single analyzer makes the
	// framework's allow-comment validator flag suppressions that belong to
	// the analyzers not in this run.
	for _, d := range active {
		if d.Analyzer == "tagflow" {
			t.Errorf("%s: %s", d.Position, d.Message)
		}
	}
	for _, d := range suppressed {
		if d.Analyzer == "tagflow" {
			t.Errorf("suppressed finding on the real tree: %s: %s", d.Position, d.Message)
		}
	}
}
