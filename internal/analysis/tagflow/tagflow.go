// Package tagflow checks tag-protocol safety of the simulator's message
// passing on constant-propagated values, complementing chanproto's textual
// pairing:
//
//   - a Recv variant whose tag folds to a constant no Send in the package
//     can produce is an orphan receive: the process blocks on a message
//     that never arrives (a deadlock under the simulator, a stall until
//     teardown on the wall clock). The check only claims anything when
//     every send tag in the package also folds — one symbolic send tag can
//     produce any value, so the package goes conservatively silent;
//   - a send and receive whose tag expressions render to the same text but
//     fold to different constants are a fold divergence: chanproto's
//     textual pairing would call them matched while the runtime values can
//     never meet. This is the failure mode of same-named constants with
//     different values in different scopes;
//   - an if/else whose two branches both reach Barrier calls but on
//     different folded phase sets is a deadlock shape: processes taking
//     different sides wait on barriers the other side never enters. Only
//     claimed when both branches' phases all fold, so data-dependent
//     phases stay silent.
//
// Tags cross the transport seam unchanged, so Proc methods and transport
// Endpoint methods (both matched by name, Send/Recv* with tag second,
// Barrier with phase first) feed one pairing pool per package.
package tagflow

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "tagflow",
	Doc:  "fold tags to constants and check send/recv pairing, text-vs-value divergence, and branch-divergent barrier phases",
	Run:  run,
}

// governed mirrors chanproto: the packages whose traffic follows the
// simulator protocol, plus the transport backends by name.
var governed = []string{"machine", "collective", "ftengine", "ftparallel", "ftmatmul", "transport", "simnet", "wallnet"}

// comm maps method names to the argument index carrying the tag (or phase).
var comm = map[string]int{
	"Send":         1,
	"Recv":         1,
	"RecvInts":     1,
	"RecvDeadline": 1,
	"Barrier":      0,
}

// commRecv identifies the consuming side for the pairing checks.
var commRecv = map[string]bool{"Recv": true, "RecvInts": true, "RecvDeadline": true}

func run(pass *framework.Pass) error {
	inScope := false
	for _, seg := range governed {
		if framework.PathHasSegment(pass.Path, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}
	checkTagFolding(pass)
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		checkBarrierDivergence(pass, fd)
	})
	return nil
}

// commCall classifies a call as simulator communication and returns the
// method name and its tag/phase argument.
func commCall(pass *framework.Pass, call *ast.CallExpr) (name string, tagArg ast.Expr, ok bool) {
	recv := framework.RecvTypeName(pass.Info, call)
	if recv != "Proc" && recv != "Endpoint" {
		return "", nil, false
	}
	callee := framework.CalleeIdent(call)
	if callee == nil {
		return "", nil, false
	}
	idx, isComm := comm[callee.Name]
	if !isComm || idx >= len(call.Args) {
		return "", nil, false
	}
	return callee.Name, call.Args[idx], true
}

// fold resolves a tag expression to a canonical constant key when the type
// checker knows its value.
func fold(pass *framework.Pass, e ast.Expr) (string, bool) {
	tv, ok := pass.Info.Types[e]
	if !ok || tv.Value == nil {
		return "", false
	}
	return tv.Value.ExactString(), true
}

// checkTagFolding runs the two value-level pairing checks over the package.
func checkTagFolding(pass *framework.Pass) {
	type site struct {
		pos    token.Pos
		method string
		text   string
		val    string
		folded bool
	}
	var sends, recvs []site

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			name, tag, ok := commCall(pass, call)
			if !ok || name == "Barrier" {
				return true
			}
			s := site{pos: call.Pos(), method: name, text: types.ExprString(tag)}
			s.val, s.folded = fold(pass, tag)
			if name == "Send" {
				sends = append(sends, s)
			} else if commRecv[name] {
				recvs = append(recvs, s)
			}
			return true
		})
	}

	sendVals := map[string]bool{}
	allSendsFolded := true
	for _, s := range sends {
		if s.folded {
			sendVals[s.val] = true
		} else {
			allSendsFolded = false
		}
	}

	for _, r := range recvs {
		if !r.folded || sendVals[r.val] {
			continue // symbolic, or value-paired with some send
		}
		// Fold divergence: a textual twin on the send side with a different
		// constant value is the sharper diagnosis.
		diverged := false
		for _, s := range sends {
			if s.folded && s.text == r.text && s.val != r.val {
				pass.Reportf(r.pos, "Proc.%s tag %s folds to %s here but the identically-written send tag folds to %s: text pairing matches, the values never will", r.method, r.text, r.val, s.val)
				diverged = true
				break
			}
		}
		if diverged {
			continue
		}
		if len(sends) > 0 && allSendsFolded {
			pass.Reportf(r.pos, "Proc.%s waits for tag %s but no Send in package %s can produce it: the receive blocks until teardown", r.method, r.val, pass.Path)
		}
	}
}

// phaseSet collects the folded Barrier phases shallowly reachable in a
// branch. allFolded is false if any reachable phase is symbolic.
func phaseSet(pass *framework.Pass, branch ast.Node) (map[string]bool, bool) {
	phases := map[string]bool{}
	allFolded := true
	framework.InspectShallow(branch, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, phase, ok := commCall(pass, call)
		if !ok || name != "Barrier" {
			return true
		}
		if v, folded := fold(pass, phase); folded {
			phases[v] = true
		} else {
			allFolded = false
		}
		return true
	})
	return phases, allFolded
}

// checkBarrierDivergence flags if/else statements whose branches barrier on
// different folded phase sets.
func checkBarrierDivergence(pass *framework.Pass, fd *ast.FuncDecl) {
	framework.InspectShallow(fd.Body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok || ifs.Else == nil {
			return true
		}
		thenPhases, thenFolded := phaseSet(pass, ifs.Body)
		elsePhases, elseFolded := phaseSet(pass, ifs.Else)
		if !thenFolded || !elseFolded || len(thenPhases) == 0 || len(elsePhases) == 0 {
			return true
		}
		if !sameSet(thenPhases, elsePhases) {
			pass.Reportf(ifs.Pos(), "if/else branches synchronize on different barrier phases (%s vs %s): processes taking different sides deadlock", setString(thenPhases), setString(elsePhases))
		}
		return true
	})
}

func sameSet(a, b map[string]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

func setString(s map[string]bool) string {
	keys := make([]string, 0, len(s))
	for k := range s {
		keys = append(keys, k)
	}
	// Deterministic order for diagnostics and golden files.
	for i := 1; i < len(keys); i++ {
		for j := i; j > 0 && keys[j] < keys[j-1]; j-- {
			keys[j], keys[j-1] = keys[j-1], keys[j]
		}
	}
	out := "{"
	for i, k := range keys {
		if i > 0 {
			out += ", "
		}
		out += k
	}
	return out + "}"
}
