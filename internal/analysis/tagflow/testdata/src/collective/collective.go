// Fixture: one symbolic send tag makes the orphan-receive check go silent
// for the whole package — a send whose tag the checker cannot fold can
// produce any value, so no receive is provably orphaned. This package
// expects zero findings.
package collective

type Payload []float64

type Proc struct{}

func (p *Proc) Send(to int, tag string, payload Payload) error { return nil }
func (p *Proc) Recv(from int, tag string) (Payload, error)     { return nil, nil }

func relay(p *Proc, tag string) {
	_ = p.Send(1, tag+"/down", nil)
}

func await(p *Proc) {
	_, _ = p.Recv(0, "unmatched/anywhere") // symbolic send above could produce this
}
