// Fixture for tagflow: constant-folded tag pairing, text-vs-value
// divergence, and branch-divergent barrier phases. Stand-ins for Proc and
// Endpoint are matched by name, like the real machine package.
package machine

type Payload []float64

type Proc struct{}

func (p *Proc) Send(to int, tag string, payload Payload) error { return nil }
func (p *Proc) Recv(from int, tag string) (Payload, error)     { return nil, nil }
func (p *Proc) RecvInts(from int, tag string) ([]int, error)   { return nil, nil }
func (p *Proc) Barrier(phase string) ([]int, error)            { return nil, nil }

type Endpoint interface {
	Send(to int, tag string, payload Payload) error
	Recv(from int, tag string) (Payload, error)
	Barrier(phase string, local []int) ([]int, error)
}

const (
	tagUp   = "coeff/up"
	tagGone = "coeff/retired" // no send produces this value
)

// paired: send and recv fold to the same value, no finding on either.
func paired(p *Proc) {
	_ = p.Send(1, tagUp, nil)
	_, _ = p.Recv(0, tagUp)
}

// orphan: the folded tag matches no send in the package.
func orphan(p *Proc) {
	_, _ = p.Recv(0, tagGone) // want "waits for tag .* but no Send in package"
}

// sendShare and recvShare write the tag identically — the constant is even
// named the same — but the two scopes bind different values, so textual
// pairing lies.
func sendShare(p *Proc) {
	const tag = "phase/1"
	_ = p.Send(1, tag, nil)
}

func recvShare(p *Proc) {
	const tag = "phase/2"
	_, _ = p.Recv(0, tag) // want "folds to .* text pairing matches, the values never will"
}

// epOrphan: transport endpoints feed the same pairing pool.
func epOrphan(e Endpoint) {
	_, _ = e.Recv(0, "ep/retired") // want "waits for tag .* but no Send in package"
}

// balancedBarriers: both sides synchronize on the same phase — no finding.
func balancedBarriers(p *Proc, fast bool) error {
	if fast {
		if _, err := p.Barrier("phase/mul"); err != nil {
			return err
		}
	} else {
		if _, err := p.Barrier("phase/mul"); err != nil {
			return err
		}
	}
	return nil
}

// divergentBarriers: the two sides wait on different phases, so processes
// taking different branches deadlock.
func divergentBarriers(p *Proc, fast bool) error {
	if fast { // want "different barrier phases"
		if _, err := p.Barrier("phase/mul"); err != nil {
			return err
		}
	} else {
		if _, err := p.Barrier("phase/eval"); err != nil {
			return err
		}
	}
	return nil
}

// symbolicBarriers: a data-dependent phase makes no claim.
func symbolicBarriers(p *Proc, phase string, fast bool) error {
	if fast {
		if _, err := p.Barrier(phase); err != nil {
			return err
		}
	} else {
		if _, err := p.Barrier("phase/interp"); err != nil {
			return err
		}
	}
	return nil
}
