// Package arenasafe enforces the limb-arena ownership discipline of
// internal/bigint (see arena.go there):
//
//   - every arena rented with getArena must be returned with putArena in the
//     same function, and on every path — a non-deferred putArena with a
//     return statement between the rent and the return is flagged;
//   - every mark() result must feed a matching release(), and release() must
//     only ever be given a value produced by mark();
//   - ensure() may only run while the arena is empty, so it must precede any
//     alloc() on the same arena in the function;
//   - a slice produced by alloc() must not escape through a return — after
//     putArena the backing slab is reused by the next renter.
//
// Matching is by name (getArena/putArena, methods on a type named "arena"),
// so the analyzer works on the real tree and on import-free test fixtures
// alike. The checks are lexical within one function body: they catch the
// misuse patterns that matter (leaks on error paths, ensure-after-alloc,
// escaping scratch) without a full CFG.
package arenasafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "arenasafe",
	Doc:  "check getArena/putArena pairing, mark/release balance, ensure-before-alloc, and arena-slice escapes",
	Run:  run,
}

func run(pass *framework.Pass) error {
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		checkFunc(pass, fd)
	})
	return nil
}

type putCall struct {
	pos      token.Pos
	deferred bool
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	defers := framework.CollectDeferRanges(fd.Body)

	arenaGets := make(map[types.Object]token.Pos)  // var := getArena()
	arenaPuts := make(map[types.Object][]putCall)  // putArena(var)
	markVars := make(map[types.Object]token.Pos)   // m := ar.mark()
	released := make(map[types.Object]bool)        // m appeared in release(m)
	allocVars := make(map[types.Object]token.Pos)  // z := ar.alloc(n)
	firstAlloc := make(map[types.Object]token.Pos) // arena -> earliest alloc pos
	var returns []*ast.ReturnStmt

	recordDef := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		if callee := framework.CalleeIdent(call); callee != nil && callee.Name == "getArena" {
			arenaGets[obj] = call.Pos()
			return
		}
		if recv := framework.RecvTypeName(pass.Info, call); recv == "arena" {
			callee := framework.CalleeIdent(call)
			switch callee.Name {
			case "mark":
				markVars[obj] = call.Pos()
			case "alloc":
				allocVars[obj] = call.Pos()
			}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					recordDef(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.CallExpr:
			callee := framework.CalleeIdent(n)
			if callee == nil {
				return true
			}
			if callee.Name == "putArena" && len(n.Args) == 1 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						arenaPuts[obj] = append(arenaPuts[obj], putCall{
							pos:      n.Pos(),
							deferred: defers.Contains(n.Pos()),
						})
					}
				}
				return true
			}
			if framework.RecvTypeName(pass.Info, n) != "arena" {
				return true
			}
			recvObj := framework.ReceiverObject(pass.Info, n)
			switch callee.Name {
			case "alloc":
				if recvObj != nil {
					if first, ok := firstAlloc[recvObj]; !ok || n.Pos() < first {
						firstAlloc[recvObj] = n.Pos()
					}
				}
			case "ensure":
				if recvObj != nil {
					if first, ok := firstAlloc[recvObj]; ok && first < n.Pos() {
						pass.Reportf(n.Pos(), "ensure() called with outstanding allocations: alloc() on the same arena at %s precedes it (ensure must run on an empty arena)",
							pass.Fset.Position(first))
					}
				}
			case "release":
				if len(n.Args) == 1 {
					id, ok := ast.Unparen(n.Args[0]).(*ast.Ident)
					if !ok {
						pass.Reportf(n.Pos(), "release() argument does not come from mark()")
						return true
					}
					obj := pass.Info.Uses[id]
					if _, isMark := markVars[obj]; isMark {
						released[obj] = true
					} else {
						pass.Reportf(n.Pos(), "release() argument %q does not come from mark()", id.Name)
					}
				}
			}
		}
		return true
	})

	// ensure-after-alloc needs alloc positions before ensure positions; the
	// Inspect above visits in source order, so firstAlloc is already earliest
	// — but an ensure that precedes the alloc lexically was handled inline.

	for obj, getPos := range arenaGets {
		puts := arenaPuts[obj]
		if len(puts) == 0 {
			pass.Reportf(getPos, "arena %q obtained from getArena is never returned with putArena", obj.Name())
			continue
		}
		firstPut := puts[0]
		for _, p := range puts[1:] {
			if p.pos < firstPut.pos {
				firstPut = p
			}
		}
		anyDeferred := false
		for _, p := range puts {
			anyDeferred = anyDeferred || p.deferred
		}
		if anyDeferred {
			continue
		}
		for _, ret := range returns {
			if ret.Pos() > getPos && ret.Pos() < firstPut.pos {
				pass.Reportf(ret.Pos(), "return leaks arena %q: putArena is not deferred and has not run yet on this path", obj.Name())
			}
		}
	}

	for obj, markPos := range markVars {
		if !released[obj] {
			pass.Reportf(markPos, "mark() result %q has no matching release() in this function", obj.Name())
		}
	}

	for _, ret := range returns {
		for _, expr := range ret.Results {
			ast.Inspect(expr, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					return true
				}
				if _, isAlloc := allocVars[obj]; isAlloc {
					pass.Reportf(ret.Pos(), "arena-allocated slice %q escapes via return: the backing slab is recycled by putArena", id.Name)
				}
				return true
			})
		}
	}
}
