// Package arenasafe enforces the limb-arena ownership discipline of
// internal/bigint (see arena.go there):
//
//   - every arena rented with getArena must be returned with putArena in the
//     same function, on *every* control-flow path — a putArena hidden in one
//     branch, skipped by an early return, or never reached from a loop's
//     zero-iteration path is a rental leak;
//   - no arena method may run after putArena (the slab belongs to the next
//     renter), including uses reached over a loop back edge;
//   - every mark() result must feed a matching release() on every path, and
//     release() must only ever be given a value produced by mark();
//   - ensure() may only run while the arena is empty, so it must precede any
//     alloc() on the same arena in the function;
//   - a slice produced by alloc() must not escape through a return — after
//     putArena the backing slab is reused by the next renter.
//
// Since PR 3 the pairing checks are flow-sensitive: each arena's and each
// mark's lifecycle runs through the framework's CFG + dataflow protocol
// checker (framework/protocol.go), so release-in-one-branch and
// use-after-put-behind-a-loop are fixpoint facts rather than lexical
// position comparisons.
//
// Since PR 4 helper calls are classified through interprocedural summaries
// (framework/summary.go): a helper that provably returns the arena with
// putArena on every path counts as the release, a helper that only
// allocates from it leaves the obligation with the caller, and a helper
// that stores the arena (or code without a summary) ends local tracking.
// Deferred putArena is modeled as an armed protocol state instead of a
// blanket exemption, so a defer in one branch covers only the paths that
// execute it and an explicit putArena under an armed defer is a caught
// double-return. Matching stays by name (getArena/putArena, methods on a
// type named "arena"), so the analyzer works on the real tree and on
// import-free test fixtures alike.
package arenasafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "arenasafe",
	Doc:  "check getArena/putArena pairing and mark/release balance on all paths (through helper calls), ensure-before-alloc, and arena-slice escapes",
	Run:  run,
}

func run(pass *framework.Pass) error {
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		checkFunc(pass, fd)
	})
	return nil
}

// lifecycle tracks one protocol object's call sites within a function.
type lifecycle struct {
	acquirePos token.Pos // CallExpr position of getArena()/mark()
	events     map[token.Pos]framework.ProtoEvent
	hasRelease bool // some release exists (explicit, deferred, or via helper)
	escaped    bool // handed to unknown code; local tracking ends
}

func newLifecycle(pos token.Pos, acquireName string) *lifecycle {
	return &lifecycle{
		acquirePos: pos,
		events: map[token.Pos]framework.ProtoEvent{
			pos: {Kind: framework.ProtoAcquire, Name: acquireName},
		},
	}
}

// place routes one event into the stream, applying the defer and closure
// rules: a deferred release arms the protocol at its registration point, a
// deferred use runs after every observable point, and a reference inside a
// bare (non-deferred) closure ends tracking.
func (lc *lifecycle) place(defers framework.DeferRanges, closures framework.ClosureSpans, pos token.Pos, kind framework.ProtoEventKind, name string) {
	anchor, deferred := defers.CallAt(pos)
	switch {
	case kind == framework.ProtoRelease && deferred:
		lc.events[anchor] = framework.ProtoEvent{Kind: framework.ProtoDeferRelease, Name: name}
		lc.hasRelease = true
	case deferred:
		// Deferred use: runs at exit, nothing observable follows it.
	case closures.Contains(pos):
		lc.escaped = true
	case kind == framework.ProtoRelease:
		lc.events[pos] = framework.ProtoEvent{Kind: framework.ProtoRelease, Name: name}
		lc.hasRelease = true
	default:
		lc.events[pos] = framework.ProtoEvent{Kind: framework.ProtoUse, Name: name}
	}
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	defers := framework.CollectDeferRanges(fd.Body)
	closures := framework.CollectBareClosures(fd.Body)

	arenas := make(map[types.Object]*lifecycle)    // var := getArena()
	marks := make(map[types.Object]*lifecycle)     // m := ar.mark()
	allocVars := make(map[types.Object]token.Pos)  // z := ar.alloc(n)
	firstAlloc := make(map[types.Object]token.Pos) // arena -> earliest alloc pos

	recordDef := func(lhs ast.Expr, rhs ast.Expr) {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := pass.Info.Defs[id]
		if obj == nil {
			return
		}
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok {
			return
		}
		if callee := framework.CalleeIdent(call); callee != nil && callee.Name == "getArena" {
			arenas[obj] = newLifecycle(call.Pos(), "getArena")
			return
		}
		if recv := framework.RecvTypeName(pass.Info, call); recv == "arena" {
			callee := framework.CalleeIdent(call)
			switch callee.Name {
			case "mark":
				marks[obj] = newLifecycle(call.Pos(), "mark")
			case "alloc":
				allocVars[obj] = call.Pos()
			}
		}
	}

	var returns []*ast.ReturnStmt
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					recordDef(n.Lhs[i], n.Rhs[i])
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.FuncLit:
			// A bare closure capturing a tracked arena or mark may run at
			// any time (or never): any reference inside ends tracking.
			if !closures.Contains(n.Pos()) {
				return true
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					obj := pass.Info.Uses[id]
					if lc := arenas[obj]; lc != nil {
						lc.escaped = true
					}
					if lc := marks[obj]; lc != nil {
						lc.escaped = true
					}
				}
				return true
			})
		case *ast.CallExpr:
			callee := framework.CalleeIdent(n)
			if callee == nil {
				// A call through a func value: any tracked arena among the
				// arguments is out of local reach.
				for _, arg := range n.Args {
					if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
						if lc := arenas[pass.Info.Uses[id]]; lc != nil {
							lc.escaped = true
						}
					}
				}
				return true
			}
			if callee.Name == "putArena" && len(n.Args) == 1 {
				if id, ok := ast.Unparen(n.Args[0]).(*ast.Ident); ok {
					if lc := arenas[pass.Info.Uses[id]]; lc != nil {
						lc.place(defers, closures, n.Pos(), framework.ProtoRelease, "putArena")
					}
				}
				return true
			}
			if framework.RecvTypeName(pass.Info, n) != "arena" {
				// A tracked arena passed to a helper: the callee's summary
				// says whether the helper returns it (counts as the
				// putArena), merely allocates from it (a use — the caller
				// still owes the return), or stores it (tracking ends).
				for i, arg := range n.Args {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					lc := arenas[pass.Info.Uses[id]]
					if lc == nil {
						continue
					}
					switch pass.Summaries.ArgEffect(pass.Info, n, i) {
					case framework.ArgRelease:
						lc.place(defers, closures, n.Pos(), framework.ProtoRelease, callee.Name)
					case framework.ArgUse:
						lc.place(defers, closures, n.Pos(), framework.ProtoUse, callee.Name)
					default:
						lc.escaped = true
					}
				}
				return true
			}
			recvObj := framework.ReceiverObject(pass.Info, n)
			if lc := arenas[recvObj]; lc != nil {
				lc.place(defers, closures, n.Pos(), framework.ProtoUse, callee.Name)
			}
			switch callee.Name {
			case "alloc":
				if recvObj != nil {
					if first, ok := firstAlloc[recvObj]; !ok || n.Pos() < first {
						firstAlloc[recvObj] = n.Pos()
					}
				}
			case "ensure":
				if recvObj != nil {
					if first, ok := firstAlloc[recvObj]; ok && first < n.Pos() {
						pass.Reportf(n.Pos(), "ensure() called with outstanding allocations: alloc() on the same arena at %s precedes it (ensure must run on an empty arena)",
							pass.Fset.Position(first))
					}
				}
			case "release":
				if len(n.Args) == 1 {
					id, ok := ast.Unparen(n.Args[0]).(*ast.Ident)
					if !ok {
						pass.Reportf(n.Pos(), "release() argument does not come from mark()")
						return true
					}
					obj := pass.Info.Uses[id]
					if lc := marks[obj]; lc != nil {
						lc.place(defers, closures, n.Pos(), framework.ProtoRelease, "release")
					} else {
						pass.Reportf(n.Pos(), "release() argument %q does not come from mark()", id.Name)
					}
				}
			}
		}
		return true
	})

	if len(arenas)+len(marks) > 0 {
		cfg := framework.NewCFG(fd.Body)

		for obj, lc := range arenas {
			checkLifecycle(pass, cfg, fd, obj, lc, arenaMessages)
		}
		for obj, lc := range marks {
			checkLifecycle(pass, cfg, fd, obj, lc, markMessages)
		}
	}

	for _, ret := range returns {
		for _, expr := range ret.Results {
			ast.Inspect(expr, func(n ast.Node) bool {
				id, ok := n.(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.Info.Uses[id]
				if obj == nil {
					return true
				}
				if _, isAlloc := allocVars[obj]; isAlloc {
					pass.Reportf(ret.Pos(), "arena-allocated slice %q escapes via return: the backing slab is recycled by putArena", id.Name)
				}
				return true
			})
		}
	}
}

// lifecycleMessages renders protocol findings for one object family.
type lifecycleMessages struct {
	neverReleased string // format: obj name
	kinds         map[framework.ProtoFindingKind]string
}

var arenaMessages = lifecycleMessages{
	neverReleased: "arena %q obtained from getArena is never returned with putArena",
	kinds: map[framework.ProtoFindingKind]string{
		framework.LeakReturn:                "return leaks arena %q: putArena is not deferred and has not run yet on this path",
		framework.LeakReturnPartial:         "return leaks arena %q on some path: putArena does not run on every path reaching this return",
		framework.LeakExit:                  "function exit leaks arena %q: putArena never runs before falling off the end",
		framework.LeakExitPartial:           "arena %q is not returned with putArena on every path to the function exit",
		framework.UseAfterRelease:           "use of arena %q after putArena: the slab may already belong to the next renter",
		framework.UseAfterReleasePartial:    "use of arena %q after putArena on some path (a branch or previous loop iteration already returned it)",
		framework.DoubleRelease:             "arena %q returned twice with putArena: the pool now holds it twice",
		framework.DoubleReleasePartial:      "arena %q may be returned twice with putArena (a path reaches this putArena with the arena already returned)",
		framework.DeferDoubleRelease:        "arena %q exits already returned with `defer putArena` still armed: the defer returns it a second time",
		framework.DeferDoubleReleasePartial: "arena %q may exit already returned with `defer putArena` still armed (some path returns it explicitly before the defer fires)",
	},
}

var markMessages = lifecycleMessages{
	neverReleased: "mark() result %q has no matching release() in this function",
	kinds: map[framework.ProtoFindingKind]string{
		framework.LeakReturn:                "return leaves mark %q unreleased: release() has not run on this path",
		framework.LeakReturnPartial:         "return leaves mark %q unreleased on some path: release() does not run on every path reaching this return",
		framework.LeakExit:                  "function exit leaves mark %q unreleased",
		framework.LeakExitPartial:           "mark %q is not released on every path to the function exit",
		framework.UseAfterRelease:           "",
		framework.UseAfterReleasePartial:    "",
		framework.DoubleRelease:             "mark %q released twice: the second release() rewinds an arena that may have live allocations",
		framework.DoubleReleasePartial:      "mark %q may be released twice (a path reaches this release() with the mark already released)",
		framework.DeferDoubleRelease:        "mark %q exits already released with a deferred release() still armed: the defer rewinds it a second time",
		framework.DeferDoubleReleasePartial: "mark %q may exit already released with a deferred release() still armed (some path releases it explicitly before the defer fires)",
	},
}

func checkLifecycle(pass *framework.Pass, cfg *framework.CFG, fd *ast.FuncDecl, obj types.Object, lc *lifecycle, msgs lifecycleMessages) {
	if lc.escaped {
		return // handed off; the new owner is responsible
	}
	if !lc.hasRelease {
		pass.Reportf(lc.acquirePos, msgs.neverReleased, obj.Name())
		return
	}
	for _, f := range framework.CheckProtocol(cfg, lc.events, fd.Body.Rbrace) {
		if msg := msgs.kinds[f.Kind]; msg != "" {
			pass.Reportf(f.Pos, msg, obj.Name())
		}
	}
}
