// Fixture for the arenasafe analyzer: miniature stand-ins for the
// internal/bigint arena API, matched by name.
package arena

type nat []uint64

type arena struct {
	buf []uint64
	off int
}

func (a *arena) mark() int       { return a.off }
func (a *arena) release(m int)   { a.off = m }
func (a *arena) alloc(n int) nat { return make(nat, n) }
func (a *arena) ensure(n int)    {}

func getArena() *arena  { return new(arena) }
func putArena(a *arena) {}

// ok follows the full discipline: deferred put, balanced mark/release,
// ensure before any alloc, no escaping scratch.
func ok(n int) {
	ar := getArena()
	defer putArena(ar)
	ar.ensure(n)
	m := ar.mark()
	_ = ar.alloc(n)
	ar.release(m)
}

// okEager releases without defer but with no return in between.
func okEager(n int) {
	ar := getArena()
	_ = ar.alloc(n)
	putArena(ar)
}

func leak(n int) {
	ar := getArena() // want "never returned with putArena"
	_ = ar.alloc(n)
}

func earlyReturn(n int) nat {
	ar := getArena()
	z := make(nat, n)
	if n > 4 {
		return z // want "putArena is not deferred"
	}
	putArena(ar)
	return z
}

func unbalancedMark(n int) {
	ar := getArena()
	defer putArena(ar)
	m := ar.mark() // want "no matching release"
	_ = m
	_ = ar.alloc(n)
}

func badRelease(n int) {
	ar := getArena()
	defer putArena(ar)
	x := n
	ar.release(x) // want "does not come from mark"
}

func ensureLate(n int) {
	ar := getArena()
	defer putArena(ar)
	_ = ar.alloc(8)
	ar.ensure(n) // want "outstanding allocations"
}

func escape(n int) nat {
	ar := getArena()
	defer putArena(ar)
	z := ar.alloc(n)
	return z // want "escapes via return"
}

// branchPut returns the arena only in one branch: the other path leaks.
// The pre-PR-3 lexical checker saw "a putArena exists" and stayed silent.
func branchPut(n int) {
	ar := getArena()
	_ = ar.alloc(n)
	if n > 4 {
		putArena(ar)
	}
} // want "not returned with putArena on every path"

// loopPut returns the arena inside the loop body, so the next iteration
// allocates from a slab that may already belong to another renter.
func loopPut(ns []int) {
	ar := getArena()
	for _, n := range ns {
		_ = ar.alloc(n) // want "after putArena on some path"
		putArena(ar)    // want "may be returned twice"
	}
} // want "not returned with putArena on every path"

// branchMark releases the mark only when cond holds.
func branchMark(n int, cond bool) {
	ar := getArena()
	defer putArena(ar)
	m := ar.mark()
	_ = ar.alloc(n)
	if cond {
		ar.release(m)
	}
} // want "mark .m. is not released on every path"

// putViaHelper returns the arena through a helper whose summary proves it
// calls putArena on every path — the release-via-helper counts as the
// release (pre-PR-4 the analyzer recorded a plain use and reported a leak
// it could not prove either way).
func putViaHelper(n int) {
	ar := getArena()
	_ = ar.alloc(n)
	finish(ar)
}

func finish(a *arena) { putArena(a) }

// helperUseLeak is the shape the intraprocedural analyzer provably could
// not catch: the helper's summary shows it only allocates from the arena,
// so the caller still owes the putArena — and never pays it.
func helperUseLeak(n int) {
	ar := getArena() // want "never returned with putArena"
	scratch(ar, n)
}

func scratch(a *arena, n int) { _ = a.alloc(n) }

// helperThenPut splits the work correctly: the helper allocates, the
// caller returns the arena.
func helperThenPut(n int) {
	ar := getArena()
	scratch(ar, n)
	putArena(ar)
}

// helperAfterPut uses the arena through a helper after it was returned:
// the summary proves the helper touches the slab.
func helperAfterPut(n int) {
	ar := getArena()
	putArena(ar)
	scratch(ar, n) // want "after putArena"
}

// helperMaybePut hands the arena to a helper that returns it only on some
// paths: nothing can be proven either way, so tracking stands down.
func helperMaybePut(n int) {
	ar := getArena()
	maybeFinish(ar, n > 4)
}

func maybeFinish(a *arena, cond bool) {
	if cond {
		putArena(a)
	}
}

// helperEscape hands the arena to a helper that stores it; ownership
// genuinely transfers and the local checks stand down.
func helperEscape(n int) {
	ar := getArena()
	keep(ar)
}

var kept *arena

func keep(a *arena) { kept = a }

// deferThenExplicit returns the arena explicitly while `defer putArena` is
// still armed: the defer returns it a second time at exit (pre-PR-4 any
// deferred putArena made the analyzer stand down entirely).
func deferThenExplicit(n int) {
	ar := getArena()
	defer putArena(ar)
	_ = ar.alloc(n)
	putArena(ar)
} // want "the defer returns it a second time"

// conditionalDefer arms the return in one branch only; the other path
// falls off the end still rented.
func conditionalDefer(n int) {
	ar := getArena()
	if n > 4 {
		defer putArena(ar)
	}
	_ = ar.alloc(n)
} // want "not returned with putArena on every path"

// deferredClosurePut returns the arena from a deferred closure; the armed
// state is anchored at the defer and covers every exit.
func deferredClosurePut(n int) {
	ar := getArena()
	defer func() {
		putArena(ar)
	}()
	_ = ar.alloc(n)
}

// closureCapture hands the arena to a non-deferred closure: it may run at
// any time (or never), so local tracking ends — no finding.
func closureCapture(n int) func() {
	ar := getArena()
	_ = ar.alloc(n)
	return func() { putArena(ar) }
}

// escapeAllowed shows the audited escape hatch.
func escapeAllowed(n int) nat {
	ar := getArena()
	defer putArena(ar)
	z := ar.alloc(n)
	//ftlint:allow arenasafe fixture: copied by the caller before the arena is reused
	return z
}

// nttWorker models the NTT fan-out discipline (internal/bigint's
// nttWorkProduct): each pool task is a named function renting its own arena
// so concurrent workers never share a slab, with the rental closed on every
// path before the task ends.
func nttWorker(n int) {
	ar := getArena()
	defer putArena(ar)
	ar.ensure(4 * n)
	work := ar.alloc(n)
	butterfly(work)
}

// nttWorkerStageMarks rewinds per-stage scratch with a fresh mark each
// iteration — balanced inside the loop body, so every path through the back
// edge is clean.
func nttWorkerStageMarks(stages, n int) {
	ar := getArena()
	defer putArena(ar)
	for s := 0; s < stages; s++ {
		m := ar.mark()
		tw := ar.alloc(n)
		butterfly(tw)
		ar.release(m)
	}
}

// nttWorkerMarkBeforeLoop takes the mark once but releases it every
// iteration: the second pass rewinds a mark that was already released.
func nttWorkerMarkBeforeLoop(stages, n int) {
	ar := getArena()
	defer putArena(ar)
	m := ar.mark()
	for s := 0; s < stages; s++ {
		butterfly(ar.alloc(n))
		ar.release(m) // want "may be released twice"
	}
} // want "mark .m. is not released on every path"

// nttWorkerErrLeak bails out of the fan-out on a degenerate size without
// closing the rental — the leak hides on the early-return path.
func nttWorkerErrLeak(n int) bool {
	ar := getArena()
	if n == 0 {
		return false // want "putArena is not deferred"
	}
	butterfly(ar.alloc(n))
	putArena(ar)
	return true
}

func butterfly(a nat) {
	for i := range a {
		a[i]++
	}
}
