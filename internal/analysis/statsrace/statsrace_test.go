package statsrace_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statsrace"
)

func TestStatsRace(t *testing.T) {
	analysistest.Run(t, statsrace.Analyzer, "toom")
}
