package statsrace_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/statsrace"
)

func TestStatsRace(t *testing.T) {
	analysistest.Run(t, statsrace.Analyzer, "toom")
}

// The transport seam's accounting decorator names its counter struct Stats
// so this analyzer governs it; the fixture proves the coverage.
func TestStatsRaceCostAcct(t *testing.T) {
	analysistest.Run(t, statsrace.Analyzer, "costacct")
}
