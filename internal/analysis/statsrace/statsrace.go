// Package statsrace flags data races on cost counters: non-atomic mutation
// of a Stats value (machine.Stats F/BW/L counters, toom.Stats word-op
// counters) from inside a worker — a function literal spawned with `go` or
// handed to a worker pool's fork. The counters are plain int64 fields
// updated with `+=`, so two workers charging the same Stats concurrently
// lose updates and silently corrupt the paper's cost accounting (the race
// detector only catches this when a benchmark happens to overlap the
// writes; the analyzer catches it structurally).
//
// A mutation counts when the Stats base variable is captured from the
// enclosing function — a Stats declared inside the literal is worker-local
// and safe. Calls to chargeWords on a captured Stats are flagged too:
// chargeWords is a plain `+=` underneath. The sanctioned patterns are
// passing nil stats into concurrent leaves (as MulConcurrent does) or
// giving each worker its own Stats and merging after the join.
package statsrace

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "statsrace",
	Doc:  "flag non-atomic Stats counter mutations from pool-spawned or go-spawned workers",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
					checkWorker(pass, lit, "go-spawned")
				}
			case *ast.CallExpr:
				callee := framework.CalleeIdent(n)
				if callee == nil || callee.Name != "fork" {
					return true
				}
				for _, arg := range n.Args {
					if lit, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
						checkWorker(pass, lit, "pool-spawned")
					}
				}
			}
			return true
		})
	}
	return nil
}

// capturedStatsBase returns the identifier of expr's base variable if expr
// is a selector on a (pointer to) Stats whose variable is declared outside
// the literal, i.e. shared with the spawner and possibly with sibling
// workers.
func capturedStatsBase(pass *framework.Pass, lit *ast.FuncLit, expr ast.Expr) *ast.Ident {
	sel, ok := ast.Unparen(expr).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	base, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	tv, ok := pass.Info.Types[sel.X]
	if !ok || framework.NamedTypeName(tv.Type) != "Stats" {
		return nil
	}
	obj := pass.Info.Uses[base]
	if obj == nil || obj.Pos() == token.NoPos {
		return nil
	}
	if obj.Pos() >= lit.Pos() && obj.Pos() < lit.End() {
		return nil // declared inside the worker: worker-local, no race
	}
	return base
}

func checkWorker(pass *framework.Pass, lit *ast.FuncLit, how string) {
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if base := capturedStatsBase(pass, lit, lhs); base != nil {
					pass.Reportf(lhs.Pos(), "non-atomic write to shared Stats counter %s from a %s worker: concurrent charges lose updates (use a per-worker Stats and merge after the join, or pass nil)", types.ExprString(lhs), how)
				}
			}
		case *ast.IncDecStmt:
			if base := capturedStatsBase(pass, lit, n.X); base != nil {
				pass.Reportf(n.Pos(), "non-atomic update of shared Stats counter %s from a %s worker: concurrent charges lose updates (use a per-worker Stats and merge after the join, or pass nil)", types.ExprString(n.X), how)
			}
		case *ast.CallExpr:
			if callee := framework.CalleeIdent(n); callee != nil && callee.Name == "chargeWords" {
				if framework.RecvTypeName(pass.Info, n) == "Stats" {
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						if base, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
							if obj := pass.Info.Uses[base]; obj != nil &&
								(obj.Pos() < lit.Pos() || obj.Pos() >= lit.End()) {
								pass.Reportf(n.Pos(), "chargeWords on shared Stats %q from a %s worker races with sibling workers (chargeWords is a plain += underneath)", base.Name, how)
							}
						}
					}
				}
			}
		}
		return true
	})
}
