// Fixture named "costacct" after the transport-seam accounting decorator:
// its per-endpoint counters are a struct named Stats precisely so this
// unscoped analyzer governs them by name. Each endpoint owns its Stats and
// the machine merges after the join — sharing one across the per-processor
// goroutines is the race this fixture pins.
package costacct

type Stats struct {
	Flops     int64
	SentWords int64
}

type endpoint struct {
	st *Stats
}

// raceSharedEndpointStats: two processor goroutines charging one Stats.
func raceSharedEndpointStats(shared *Stats) {
	for rank := 0; rank < 2; rank++ {
		go func() {
			shared.Flops += 1 // want "non-atomic write to shared Stats counter"
		}()
	}
}

// okPerEndpoint: each goroutine gets its own endpoint and Stats; the host
// reads them only after the join.
func okPerEndpoint(out []*endpoint) {
	for rank := range out {
		rank := rank
		go func() {
			ep := &endpoint{st: &Stats{}}
			ep.st.Flops += 1
			ep.st.SentWords += 3
			out[rank] = ep
		}()
	}
}
