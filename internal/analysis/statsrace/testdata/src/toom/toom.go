// Fixture for the statsrace analyzer: miniature stand-ins for the
// internal/toom worker pool and Stats counters, matched by name.
package toom

type Stats struct {
	WordOps int64
	Flops   int64
}

func (s *Stats) chargeWords(n int64) {
	if s != nil {
		s.WordOps += n
	}
}

type pool struct{}

func (p *pool) fork(fn func()) { go fn() }

var leafPool pool

// raceAssign: the workers all charge the spawner's Stats with a plain +=.
func raceAssign(stats *Stats, work []int64) {
	for _, w := range work {
		w := w
		leafPool.fork(func() {
			stats.WordOps += w // want "non-atomic write to shared Stats counter"
		})
	}
}

// raceCharge: chargeWords is a plain += underneath, so calling it on a
// captured Stats races exactly like the direct write.
func raceCharge(stats *Stats, work []int64) {
	for _, w := range work {
		w := w
		leafPool.fork(func() {
			stats.chargeWords(w) // want "chargeWords on shared Stats"
		})
	}
}

// raceGo: go-spawned workers race the same way pool-spawned ones do.
func raceGo(stats *Stats) {
	go func() {
		stats.Flops++ // want "non-atomic update of shared Stats counter"
	}()
}

// okLocal: each worker owns its Stats and publishes into its own slot; the
// spawner merges after the join.
func okLocal(results []Stats, work []int64) {
	for i, w := range work {
		i, w := i, w
		leafPool.fork(func() {
			var local Stats
			local.chargeWords(w)
			local.WordOps += w
			results[i] = local
		})
	}
}

// okNil: the sanctioned concurrent pattern — no stats in the leaves at all
// (chargeWords tolerates nil), as MulConcurrent does.
func okNil(work []int64) {
	for _, w := range work {
		w := w
		leafPool.fork(func() {
			var s *Stats
			s.chargeWords(w)
		})
	}
}

// okHost: sequential charging outside any worker literal is fine.
func okHost(stats *Stats, w int64) {
	stats.WordOps += w
	stats.chargeWords(w)
}
