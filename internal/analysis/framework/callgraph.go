package framework

// callgraph.go builds the static call graph over a set of loaded packages.
// Interprocedural facts (summary.go) are computed bottom-up over its SCC
// condensation, so a caller's summary can consult its callees' summaries
// and mutual recursion is handled by iterating each component to a local
// fixpoint.
//
// Nodes are identified by FuncKey rather than by *types.Func identity: the
// loader type-checks each target package from source but satisfies its
// imports from export data, so the object a caller's Info resolves for
// `erasure.Decode` is a *different* types.Func than the one the erasure
// package's own type-check produced. The key — import path, receiver type
// name, function name — is computable identically from both, which is what
// lets a summary computed in the defining package be looked up from any
// call site.
//
// Edges cover static calls (plain and package-qualified identifiers) and
// method calls resolved through their concrete receiver type. Calls through
// func-typed variables and interface methods produce no edge; analyzers
// treat a missing summary conservatively. Calls inside function literals
// are attributed to the enclosing declared function: for the reachability
// facts the graph feeds (charging, goroutine spawning, recovery paths) a
// closure's effects belong to whoever constructed and ran it.

import (
	"go/ast"
	"go/types"
	"sort"
)

// FuncKey returns a stable cross-package identifier for a declared function
// or method: "pkgpath.Name" or "pkgpath.Recv.Name" with pointer receivers
// unwrapped. It agrees between the source-checked object of the defining
// package and the export-data object an importer sees.
func FuncKey(fn *types.Func) string {
	if fn == nil {
		return ""
	}
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		if recv := NamedTypeName(sig.Recv().Type()); recv != "" {
			return pkg + "." + recv + "." + fn.Name()
		}
	}
	return pkg + "." + fn.Name()
}

// CGNode is one declared function with a body.
type CGNode struct {
	Key  string
	Fn   *types.Func // the defining package's object
	Decl *ast.FuncDecl
	Pkg  *Package // package the declaration lives in
	// Calls holds the FuncKeys of statically resolved callees, including
	// keys with no corresponding node (stdlib, interface methods).
	Calls map[string]bool
}

// CallGraph is the static call graph over a package set.
type CallGraph struct {
	Nodes map[string]*CGNode
	// SCCs lists the strongly connected components in bottom-up order:
	// every component appears after all components it calls into.
	SCCs [][]*CGNode

	sccSize map[string]int // lazily built by SCCSize
}

// NewCallGraph builds the graph and its SCC condensation.
func NewCallGraph(pkgs []*Package) *CallGraph {
	g := &CallGraph{Nodes: make(map[string]*CGNode)}
	for _, pkg := range pkgs {
		FuncDecls(pkg.Files, func(fd *ast.FuncDecl) {
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				return
			}
			n := &CGNode{Key: FuncKey(fn), Fn: fn, Decl: fd, Pkg: pkg, Calls: map[string]bool{}}
			ast.Inspect(fd.Body, func(m ast.Node) bool {
				call, ok := m.(*ast.CallExpr)
				if !ok {
					return true
				}
				if callee := CalleeFunc(pkg.Info, call); callee != nil {
					n.Calls[FuncKey(callee)] = true
				}
				return true
			})
			g.Nodes[n.Key] = n
		})
	}
	g.condense()
	return g
}

// SCCSize returns the number of functions in the strongly connected
// component containing key — 1 for non-recursive functions, >1 for members
// of a mutual-recursion cycle (0 for keys outside the graph).
func (g *CallGraph) SCCSize(key string) int {
	if g.sccSize == nil {
		g.sccSize = make(map[string]int, len(g.Nodes))
		for _, comp := range g.SCCs {
			for _, n := range comp {
				g.sccSize[n.Key] = len(comp)
			}
		}
	}
	return g.sccSize[key]
}

// condense runs Tarjan's algorithm. Components are emitted callees-first,
// which is exactly the bottom-up summary order.
func (g *CallGraph) condense() {
	index := make(map[string]int, len(g.Nodes))
	low := make(map[string]int, len(g.Nodes))
	onStack := make(map[string]bool, len(g.Nodes))
	var stack []string
	next := 0

	// Iterative Tarjan: deep recursion chains exist in real trees.
	type frame struct {
		key   string
		succs []string
		i     int
	}
	succsOf := func(key string) []string {
		var out []string
		for c := range g.Nodes[key].Calls {
			if _, ok := g.Nodes[c]; ok {
				out = append(out, c)
			}
		}
		sort.Strings(out)
		return out
	}
	var visit func(root string)
	visit = func(root string) {
		frames := []frame{{key: root, succs: succsOf(root)}}
		index[root] = next
		low[root] = next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.i < len(f.succs) {
				s := f.succs[f.i]
				f.i++
				if _, seen := index[s]; !seen {
					index[s] = next
					low[s] = next
					next++
					stack = append(stack, s)
					onStack[s] = true
					frames = append(frames, frame{key: s, succs: succsOf(s)})
				} else if onStack[s] && index[s] < low[f.key] {
					low[f.key] = index[s]
				}
				continue
			}
			// f is done: pop its SCC if it is a root, then propagate low.
			if low[f.key] == index[f.key] {
				var comp []*CGNode
				for {
					k := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[k] = false
					comp = append(comp, g.Nodes[k])
					if k == f.key {
						break
					}
				}
				g.SCCs = append(g.SCCs, comp)
			}
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[f.key] < low[p.key] {
					low[p.key] = low[f.key]
				}
			}
		}
	}
	// Deterministic traversal order: packages then declaration order.
	for _, n := range g.declOrder() {
		if _, seen := index[n.Key]; !seen {
			visit(n.Key)
		}
	}
}

// declOrder returns nodes sorted by file position, giving deterministic SCC
// output across runs.
func (g *CallGraph) declOrder() []*CGNode {
	out := make([]*CGNode, 0, len(g.Nodes))
	for _, n := range g.Nodes {
		out = append(out, n)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Pkg.Path != out[j].Pkg.Path {
			return out[i].Pkg.Path < out[j].Pkg.Path
		}
		return out[i].Decl.Pos() < out[j].Decl.Pos()
	})
	return out
}
