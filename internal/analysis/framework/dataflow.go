package framework

// dataflow.go is the generic iterative fixpoint engine over the CFG of
// cfg.go. A FlowSpec describes one monotone dataflow problem: a join
// semilattice of facts (Bottom, Join, Equal) and a block transfer function.
// ForwardSolve propagates facts along edges from Entry, BackwardSolve
// against edges from Exit; both iterate a worklist until nothing changes,
// which terminates for any finite lattice with a monotone transfer.
//
// Unreachable blocks keep the Bottom fact, so analyzers can (and should)
// skip reporting in blocks whose input fact is Bottom — dead code has no
// executions to diagnose.

// FlowSpec describes one dataflow problem over facts of type F.
type FlowSpec[F any] struct {
	// Bottom is the identity of Join: the fact of an unreached block.
	Bottom func() F
	// Boundary is the fact entering the graph: at Entry for a forward
	// problem, at Exit for a backward one.
	Boundary func() F
	// Join combines facts along merging paths (must be commutative,
	// associative, idempotent, with Bottom as identity).
	Join func(a, b F) F
	// Equal detects the fixpoint.
	Equal func(a, b F) bool
	// Transfer computes the fact after executing block b given the fact
	// before it (for a backward problem: the fact before b given the fact
	// after it). It must be pure — report findings in a separate pass.
	Transfer func(b *Block, in F) F
	// EdgeTransfer, when non-nil, filters the fact flowing along the
	// from→to edge before it joins into to's input. A forward analysis that
	// understands branch conditions uses from.Branch/TrueSucc/FalseSucc to
	// refine the fact per edge (the interval engine's conditional-subtract
	// refinement); for a backward problem "from" is the flow-source block,
	// i.e. the CFG successor. Must be pure and monotone in f.
	EdgeTransfer func(from, to *Block, f F) F
}

// FlowResult holds the per-block fixpoint facts. For a forward problem In is
// the fact at block entry and Out at block exit; for a backward problem In
// is the fact *after* the block and Out the fact *before* it (i.e. Out =
// Transfer(b, In) in both directions).
type FlowResult[F any] struct {
	In  map[*Block]F
	Out map[*Block]F
}

// ForwardSolve computes the forward fixpoint of spec over g.
func ForwardSolve[F any](g *CFG, spec FlowSpec[F]) *FlowResult[F] {
	return solve(g, spec, g.Entry, func(b *Block) []*Block { return b.Preds }, func(b *Block) []*Block { return b.Succs })
}

// BackwardSolve computes the backward fixpoint of spec over g.
func BackwardSolve[F any](g *CFG, spec FlowSpec[F]) *FlowResult[F] {
	return solve(g, spec, g.Exit, func(b *Block) []*Block { return b.Succs }, func(b *Block) []*Block { return b.Preds })
}

func solve[F any](g *CFG, spec FlowSpec[F], boundary *Block, sources, sinks func(*Block) []*Block) *FlowResult[F] {
	res := &FlowResult[F]{In: make(map[*Block]F, len(g.Blocks)), Out: make(map[*Block]F, len(g.Blocks))}
	for _, b := range g.Blocks {
		res.In[b] = spec.Bottom()
		res.Out[b] = spec.Bottom()
	}

	queued := make([]bool, len(g.Blocks))
	var work []*Block
	push := func(b *Block) {
		if !queued[b.Index] {
			queued[b.Index] = true
			work = append(work, b)
		}
	}
	for _, b := range g.Blocks {
		push(b)
	}

	for len(work) > 0 {
		b := work[0]
		work = work[1:]
		queued[b.Index] = false

		in := spec.Bottom()
		if b == boundary {
			in = spec.Boundary()
		}
		for _, p := range sources(b) {
			f := res.Out[p]
			if spec.EdgeTransfer != nil {
				f = spec.EdgeTransfer(p, b, f)
			}
			in = spec.Join(in, f)
		}
		out := spec.Transfer(b, in)
		if spec.Equal(in, res.In[b]) && spec.Equal(out, res.Out[b]) {
			continue
		}
		res.In[b] = in
		res.Out[b] = out
		for _, s := range sinks(b) {
			push(s)
		}
	}
	return res
}
