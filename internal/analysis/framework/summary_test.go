package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// typeCheckPkg parses and type-checks one import-free source file into a
// loaded Package, mirroring what analysistest feeds the analyzers.
func typeCheckPkg(t *testing.T, path, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := NewInfo()
	tpkg, err := (&types.Config{}).Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}
	return &Package{Path: path, Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

const ownershipSrc = `package p

type Int struct{ w []uint }

type Acc struct{ dead bool }

func NewAcc() *Acc          { return &Acc{} }
func (a *Acc) Release()     { a.dead = true }
func (a *Acc) Add(x Int)    {}
func (a *Acc) Value() Int   { return Int{} }

var sink *Acc

func releaseHelper(a *Acc) { a.Release() }
func useHelper(a *Acc)     { a.Add(Int{}) }
func maybeRelease(a *Acc, c bool) {
	if c {
		a.Release()
	}
}
func escapeHelper(a *Acc)  { sink = a }
func deferHelper(a *Acc) {
	defer a.Release()
	a.Add(Int{})
}
func wrapRelease(a *Acc)   { releaseHelper(a) }
func wrapUnknown(a *Acc, f func(*Acc)) { f(a) }
func closureCapture(a *Acc) {
	f := func() { a.Release() }
	f()
}
`

func TestSummaryOwnershipEffects(t *testing.T) {
	pkg := typeCheckPkg(t, "p", ownershipSrc)
	sums := ComputeSummaries([]*Package{pkg})

	cases := []struct {
		fn   string
		want ParamEffect
	}{
		{"releaseHelper", EffTracked | EffReleasesAll},
		{"useHelper", EffTracked | EffUses},
		{"maybeRelease", EffTracked | EffReleasesMaybe},
		{"escapeHelper", EffTracked | EffEscapes},
		{"deferHelper", EffTracked | EffUses | EffReleasesAll},
		{"wrapRelease", EffTracked | EffReleasesAll},
	}
	for _, c := range cases {
		sum := sums.Lookup("p." + c.fn)
		if sum == nil {
			t.Fatalf("no summary for %s", c.fn)
		}
		if got := sum.Params[0]; got != c.want {
			t.Errorf("%s param effect = %b, want %b", c.fn, got, c.want)
		}
	}
	// Handing the Acc to a func value ends tracking.
	if eff := sums.Lookup("p.wrapUnknown").Params[0]; eff&EffEscapes == 0 {
		t.Errorf("wrapUnknown param effect = %b, want escape", eff)
	}
	// A non-deferred closure capturing the Acc ends tracking too.
	if eff := sums.Lookup("p.closureCapture").Params[0]; eff&EffEscapes == 0 {
		t.Errorf("closureCapture param effect = %b, want escape", eff)
	}
}

const chargeSrc = `package p

type Stats struct{ n int }

func (s *Stats) chargeWords(n int) { s.n += n }

func direct(s *Stats)   { s.chargeWords(1) }
func viaHelper(s *Stats) { direct(s) }
func ignores(s *Stats)  { _ = s.n }
`

func TestSummaryCharges(t *testing.T) {
	pkg := typeCheckPkg(t, "p", chargeSrc)
	sums := ComputeSummaries([]*Package{pkg})
	for fn, want := range map[string]bool{
		"direct": true, "viaHelper": true, "ignores": false,
	} {
		sum := sums.Lookup("p." + fn)
		if sum == nil {
			t.Fatalf("no summary for %s", fn)
		}
		if sum.Charges != want {
			t.Errorf("%s.Charges = %v, want %v", fn, sum.Charges, want)
		}
		if !sum.ChargeCarrier {
			t.Errorf("%s.ChargeCarrier = false, want true (takes *Stats)", fn)
		}
	}
}

const kernelSrc = `package p

type Word uint

func natAddTo(dst, x, y []Word) []Word { return dst }

func wrapper(dst, x []Word) { natAddTo(dst, dst, x) }
func outer(d, s []Word)     { wrapper(d, s) }
func slicing(dst, x []Word) { natAddTo(dst[1:], dst, x) }
`

func TestSummaryKernelForwarding(t *testing.T) {
	pkg := typeCheckPkg(t, "p", kernelSrc)
	sums := ComputeSummaries([]*Package{pkg})

	w := sums.Lookup("p.wrapper")
	if len(w.KernelCalls) != 1 {
		t.Fatalf("wrapper.KernelCalls = %v, want 1 entry", w.KernelCalls)
	}
	kc := w.KernelCalls[0]
	if kc.Kernel != "natAddTo" || kc.DstParam != 0 || len(kc.SrcParams) != 2 || kc.SrcParams[0] != 0 || kc.SrcParams[1] != 1 {
		t.Errorf("wrapper forwarding = %+v, want natAddTo dst=0 srcs=[0 1]", kc)
	}

	// outer -> wrapper -> natAddTo composes.
	o := sums.Lookup("p.outer")
	if len(o.KernelCalls) != 1 {
		t.Fatalf("outer.KernelCalls = %v, want 1 composed entry", o.KernelCalls)
	}
	kc = o.KernelCalls[0]
	if kc.DstParam != 0 || kc.SrcParams[0] != 0 || kc.SrcParams[1] != 1 {
		t.Errorf("outer composed forwarding = %+v, want dst=0 srcs=[0 1]", kc)
	}

	// A sliced dst is not identity forwarding: no entry.
	if s := sums.Lookup("p.slicing"); len(s.KernelCalls) != 0 {
		t.Errorf("slicing.KernelCalls = %v, want none (dst is re-sliced)", s.KernelCalls)
	}
}

const recoverySrc = `package ftparallel

type errImpl struct{}

func (errImpl) Error() string { return "" }

type Int struct{}
type Code struct{}
type FaultEvent struct{ Index int }

func (c *Code) Decode(m map[int][]Int) (map[int][]Int, error) { return m, nil }

func decodeVia(c *Code, m map[int][]Int) (map[int][]Int, error) { return c.Decode(m) }

func spawnHelper() { go func() {}() }

func handler(ev []FaultEvent) { spawnHelper() }

func plain() {}
`

func TestSummaryRecoveryAndSpawn(t *testing.T) {
	pkg := typeCheckPkg(t, "ftparallel", recoverySrc)
	sums := ComputeSummaries([]*Package{pkg})

	dec := sums.Lookup("ftparallel.Code.Decode")
	if dec == nil || !dec.RecoverySource || !dec.RecoveryErr {
		t.Fatalf("Code.Decode summary = %+v, want RecoverySource and RecoveryErr", dec)
	}
	via := sums.Lookup("ftparallel.decodeVia")
	if !via.ReachesRecovery || !via.RecoveryErr {
		t.Errorf("decodeVia = %+v, want transitive ReachesRecovery and RecoveryErr", via)
	}
	h := sums.Lookup("ftparallel.handler")
	if !h.HandlesFaults {
		t.Errorf("handler.HandlesFaults = false, want true ([]FaultEvent param)")
	}
	if !h.SpawnsGo {
		t.Errorf("handler.SpawnsGo = false, want true (via spawnHelper)")
	}
	if !h.FTReach {
		t.Errorf("handler.FTReach = false, want true (lives in ftparallel)")
	}
	if sums.Lookup("ftparallel.plain").SpawnsGo {
		t.Errorf("plain.SpawnsGo = true, want false")
	}
}

const sccSrc = `package p

func leaf() {}
func mid()  { leaf() }
func top()  { mid() }

func pingPong(n int) {
	if n > 0 {
		pongPing(n - 1)
	}
}
func pongPing(n int) {
	if n > 0 {
		pingPong(n - 1)
	}
}
`

func TestCallGraphSCCOrder(t *testing.T) {
	pkg := typeCheckPkg(t, "p", sccSrc)
	g := NewCallGraph([]*Package{pkg})

	order := map[string]int{}
	for i, scc := range g.SCCs {
		for _, n := range scc {
			order[n.Key] = i
		}
	}
	if !(order["p.leaf"] < order["p.mid"] && order["p.mid"] < order["p.top"]) {
		t.Errorf("SCC order not bottom-up: leaf=%d mid=%d top=%d",
			order["p.leaf"], order["p.mid"], order["p.top"])
	}
	if order["p.pingPong"] != order["p.pongPing"] {
		t.Errorf("mutual recursion split across SCCs: %d vs %d",
			order["p.pingPong"], order["p.pongPing"])
	}
	if !g.Nodes["p.top"].Calls["p.mid"] {
		t.Errorf("missing edge top -> mid")
	}
}

// Mutual recursion over a tracked parameter must converge (conservatively:
// the intra-SCC handoff is an escape, never a wrong release claim).
func TestSummaryRecursiveOwnershipConservative(t *testing.T) {
	pkg := typeCheckPkg(t, "p", `package p

type Acc struct{}

func (a *Acc) Release() {}

func spinA(a *Acc, n int) {
	if n == 0 {
		a.Release()
		return
	}
	spinB(a, n-1)
}
func spinB(a *Acc, n int) { spinA(a, n) }
`)
	sums := ComputeSummaries([]*Package{pkg})
	for _, fn := range []string{"spinA", "spinB"} {
		eff := sums.Lookup("p." + fn).Params[0]
		if eff&EffReleasesAll != 0 {
			t.Errorf("%s claims releases-on-all-paths through recursion: %b", fn, eff)
		}
	}
}
