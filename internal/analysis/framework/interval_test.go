package framework

import (
	"go/ast"
	"go/token"
	"testing"
)

// solveInterval type-checks src, builds the CFG of the function named fn,
// seeds the entry environment via seed (given the parameter objects by
// name), solves, and returns everything a test needs to poke at facts.
func solveInterval(t *testing.T, src, fn string, seed map[string]Interval, tune func(*IntervalEval)) (*Package, *ast.FuncDecl, *CFG, *IntervalAnalysis, *FlowResult[*IntervalEnv]) {
	t.Helper()
	pkg := typeCheckPkg(t, "p", src)

	var fd *ast.FuncDecl
	FuncDecls(pkg.Files, func(d *ast.FuncDecl) {
		if d.Name.Name == fn {
			fd = d
		}
	})
	if fd == nil {
		t.Fatalf("function %s not found", fn)
	}

	env := NewIntervalEnv()
	if fd.Type.Params != nil {
		for _, field := range fd.Type.Params.List {
			for _, name := range field.Names {
				if iv, ok := seed[name.Name]; ok {
					obj := pkg.Info.Defs[name]
					if obj == nil {
						t.Fatalf("no object for param %s", name.Name)
					}
					env.Set(KeyOf(obj), iv)
				}
			}
		}
	}

	ev := &IntervalEval{Info: pkg.Info}
	ev.BindRanges(fd.Body)
	if tune != nil {
		tune(ev)
	}
	ia := &IntervalAnalysis{Eval: ev}
	cfg := NewCFG(fd.Body)
	return pkg, fd, cfg, ia, ia.Solve(cfg, env)
}

// factAtReturn returns the block-exit environment of the block holding the
// function's first return statement (the exit fact sees the block's own
// assignments, which matters for straight-line bodies).
func factAtReturn(t *testing.T, cfg *CFG, res *FlowResult[*IntervalEnv]) *IntervalEnv {
	t.Helper()
	for _, b := range cfg.Blocks {
		if b.ReturnStmt() != nil {
			return res.Out[b]
		}
	}
	t.Fatal("no return block")
	return nil
}

// localInterval evaluates the interval of the variable named v at env.
func localInterval(t *testing.T, pkg *Package, fd *ast.FuncDecl, env *IntervalEnv, v string) Interval {
	t.Helper()
	var found Interval
	ok := false
	ast.Inspect(fd, func(n ast.Node) bool {
		id, isID := n.(*ast.Ident)
		if !isID || id.Name != v || ok {
			return true
		}
		o := pkg.Info.ObjectOf(id)
		if o == nil {
			return true
		}
		if iv, has := env.Get(KeyOf(o)); has {
			found, ok = iv, true
		} else {
			found, ok = FullInterval(), true
		}
		return true
	})
	if !ok {
		t.Fatalf("variable %s not found", v)
	}
	return found
}

func TestIntervalLattice(t *testing.T) {
	a := NewInterval(10, 20)
	b := NewInterval(15, 40)
	if j := a.Join(b); j != NewInterval(10, 40) {
		t.Errorf("join = %v", j)
	}
	if m := a.Meet(b); m != NewInterval(15, 20) {
		t.Errorf("meet = %v", m)
	}
	if m := a.Meet(NewInterval(30, 50)); !m.IsEmpty() {
		t.Errorf("disjoint meet = %v, want empty", m)
	}
	if j := EmptyInterval().Join(a); j != a {
		t.Errorf("bottom join = %v", j)
	}
	// Widening pushes only the unstable bound to the extreme.
	w := NewInterval(0, 10).Widen(NewInterval(0, 11))
	if w != NewInterval(0, maxUint64) {
		t.Errorf("widen ascending hi = %v", w)
	}
	w = NewInterval(5, 10).Widen(NewInterval(3, 10))
	if w != NewInterval(0, 10) {
		t.Errorf("widen descending lo = %v", w)
	}
	w = NewInterval(5, 10).Widen(NewInterval(6, 9))
	if w != NewInterval(5, 10) {
		t.Errorf("widen stable = %v", w)
	}
}

// TestIntervalConditionalSubtract is the butterfly shape: after
// `u := l + t; if u >= twoP { u -= twoP }` the value is back in [0, 2p).
func TestIntervalConditionalSubtract(t *testing.T) {
	src := `package p
func butterfly(l, t, twoP uint64) uint64 {
	u := l + t
	if u >= twoP {
		u -= twoP
	}
	return u
}`
	const twoP = 200
	pkg, fd, cfg, _, res := solveInterval(t, src, "butterfly", map[string]Interval{
		"l":    {0, twoP - 1},
		"t":    {0, twoP - 1},
		"twoP": PointInterval(twoP),
	}, nil)
	got := localInterval(t, pkg, fd, factAtReturn(t, cfg, res), "u")
	want := NewInterval(0, twoP-1)
	if got != want {
		t.Errorf("u at return = %v, want %v", got, want)
	}
}

// TestIntervalWideningTermination pins the loop-carried case: a counter
// incremented every iteration has no finite fixpoint, so only widening makes
// the solve terminate. The test failing mode is a hang, which `go test`
// turns into a timeout; the assertions also check the widened facts are the
// sound ones.
func TestIntervalWideningTermination(t *testing.T) {
	src := `package p
func count(n int) uint64 {
	var s uint64
	for i := 0; i < n; i++ {
		s += 3
	}
	return s
}`
	pkg, fd, cfg, _, res := solveInterval(t, src, "count", nil, nil)
	got := localInterval(t, pkg, fd, factAtReturn(t, cfg, res), "s")
	// s starts at 0 and only grows: the sound loop-exit fact is [0, max].
	if got.Lo != 0 || got.Hi != maxUint64 {
		t.Errorf("s at return = %v, want [0, 2^64-1]", got)
	}
}

// TestIntervalLoopRefinement: the trailing-reduction loop
// `for u >= p { u -= p }` converges without widening and the exit edge
// refines u below p.
func TestIntervalLoopRefinement(t *testing.T) {
	src := `package p
func reduce(u, p uint64) uint64 {
	for u >= p {
		u -= p
	}
	return u
}`
	const p = 97
	pkg, fd, cfg, _, res := solveInterval(t, src, "reduce", map[string]Interval{
		"p": PointInterval(p),
	}, nil)
	got := localInterval(t, pkg, fd, factAtReturn(t, cfg, res), "u")
	want := NewInterval(0, p-1)
	if got != want {
		t.Errorf("u at return = %v, want %v", got, want)
	}
}

// TestIntervalNestedLoopNarrowing: widening the inner accumulator loop to ⊤
// must not destroy the outer loop's exit-edge refinement — the reduction
// variable still leaves the nest provably below p while the accumulator
// soundly reports the full range.
func TestIntervalNestedLoopNarrowing(t *testing.T) {
	src := `package p
func nested(u, p uint64) uint64 {
	var s uint64
	for u >= p {
		u -= p
		for i := 0; i < 8; i++ {
			s += u
		}
	}
	return s + u
}`
	const p = 97
	pkg, fd, cfg, _, res := solveInterval(t, src, "nested", map[string]Interval{
		"p": PointInterval(p),
	}, nil)
	env := factAtReturn(t, cfg, res)
	gotS := localInterval(t, pkg, fd, env, "s")
	if gotS.Lo != 0 || gotS.Hi != maxUint64 {
		t.Errorf("inner accumulator s at return = %v, want widened [0, 2^64-1]", gotS)
	}
	gotU := localInterval(t, pkg, fd, env, "u")
	if want := NewInterval(0, p-1); gotU != want {
		t.Errorf("outer reduction u at return = %v, want narrowed %v", gotU, want)
	}
}

func TestIntervalBranchRefinement(t *testing.T) {
	src := `package p
func f(x, lim uint64) (uint64, uint64) {
	var a, b uint64
	if x < lim && x >= 10 {
		a = x
	} else {
		b = x
	}
	return a, b
}`
	const lim = 50
	pkg, fd, cfg, _, res := solveInterval(t, src, "f", map[string]Interval{
		"lim": PointInterval(lim),
	}, nil)

	var thenBlk, elseBlk *Block
	for _, b := range cfg.Blocks {
		switch b.Kind {
		case "if.then":
			thenBlk = b
		case "if.else":
			elseBlk = b
		}
	}
	if thenBlk == nil || elseBlk == nil {
		t.Fatal("missing branch blocks")
	}
	gotThen := localInterval(t, pkg, fd, res.In[thenBlk], "x")
	if want := NewInterval(10, lim-1); gotThen != want {
		t.Errorf("x in then = %v, want %v", gotThen, want)
	}
	// The false edge of `a && b` cannot be split: x stays unconstrained.
	gotElse := localInterval(t, pkg, fd, res.In[elseBlk], "x")
	if !gotElse.IsFull() {
		t.Errorf("x in else = %v, want full", gotElse)
	}
}

// TestIntervalSignedNoClaim: refinement must not manufacture a
// non-negativity claim for a signed variable it knows nothing about.
func TestIntervalSignedNoClaim(t *testing.T) {
	src := `package p
func f(i int) int {
	var r int
	if i >= 5 {
		r = i
	}
	return r
}`
	pkg, fd, cfg, _, res := solveInterval(t, src, "f", nil, nil)
	var thenBlk *Block
	for _, b := range cfg.Blocks {
		if b.Kind == "if.then" {
			thenBlk = b
		}
	}
	got := localInterval(t, pkg, fd, res.In[thenBlk], "i")
	if !got.IsFull() {
		t.Errorf("signed i refined to %v; a full (no-claim) interval is required", got)
	}
}

// TestIntervalBitsContracts checks the name-matched math/bits contracts.
func TestIntervalBitsContracts(t *testing.T) {
	src := `package p
func Mul64(a, b uint64) (uint64, uint64) { return 0, 0 }
func Add64(a, b, c uint64) (uint64, uint64) { return 0, 0 }
func f(a, b uint64) (uint64, uint64) {
	hi, _ := Mul64(a, b)
	s, carry := Add64(a, b, 0)
	_ = s
	return hi, carry
}`
	pkg, fd, cfg, _, res := solveInterval(t, src, "f", map[string]Interval{
		"a": {0, 1000},
		"b": {0, 1000},
	}, nil)
	env := factAtReturn(t, cfg, res)
	if hi := localInterval(t, pkg, fd, env, "hi"); hi != PointInterval(0) {
		t.Errorf("Mul64 hi = %v, want 0 (operands too small to overflow)", hi)
	}
	if c := localInterval(t, pkg, fd, env, "carry"); c != PointInterval(0) {
		t.Errorf("Add64 carry = %v, want 0", c)
	}
}

// TestIntervalWrapHook: the diagnostic pass reports possible unsigned
// wraparound, and only for arithmetic the facts cannot bound.
func TestIntervalWrapHook(t *testing.T) {
	src := `package p
func f(a, b, c uint64) uint64 {
	x := a + b // may wrap: a, b unconstrained
	y := c + 1 // cannot wrap: c is bounded below 2^32
	return x + y
}`
	var wraps []token.Pos
	pkg, fd, cfg, ia, res := solveInterval(t, src, "f", map[string]Interval{
		"c": {0, 1 << 32},
	}, func(ev *IntervalEval) {
		ev.OnWrap = func(site ast.Expr, op token.Token, definite bool) {
			wraps = append(wraps, site.Pos())
		}
	})
	_, _ = pkg, fd
	ia.Report(cfg, res)
	// a+b and x+y may wrap; c+1 must not be flagged.
	if len(wraps) != 2 {
		t.Fatalf("got %d wrap reports, want 2", len(wraps))
	}
}

// TestIntervalElemContractAndStore: loads through the Elem hook carry the
// client contract; stores surface through StoreElem during Report.
func TestIntervalElemContractAndStore(t *testing.T) {
	src := `package p
func f(a []uint64, twoP uint64) {
	u := a[0] + a[1]
	if u >= twoP {
		u -= twoP
	}
	a[0] = u
}`
	const twoP = 200
	type store struct {
		iv Interval
	}
	var stores []store
	_, _, cfg, ia, res := solveInterval(t, src, "f", map[string]Interval{
		"twoP": PointInterval(twoP),
	}, func(ev *IntervalEval) {
		ev.Elem = func(base ast.Expr, site *ast.IndexExpr) (Interval, bool) {
			return NewInterval(0, twoP-1), true
		}
		ev.StoreElem = func(site *ast.IndexExpr, v Interval, env *IntervalEnv) {
			stores = append(stores, store{v})
		}
	})
	ia.Report(cfg, res)
	if len(stores) != 1 {
		t.Fatalf("got %d element stores, want 1", len(stores))
	}
	if got, want := stores[0].iv, NewInterval(0, twoP-1); got != want {
		t.Errorf("stored interval = %v, want %v", got, want)
	}
}

// TestIntervalRangeBinding: `for _, v := range xs` binds v to the client's
// element contract and the key to a non-negative claim.
func TestIntervalRangeBinding(t *testing.T) {
	src := `package p
func f(xs []uint64) uint64 {
	var m uint64
	for i, v := range xs {
		_ = i
		m = v
	}
	return m
}`
	pkg, fd, cfg, _, res := solveInterval(t, src, "f", nil, func(ev *IntervalEval) {
		ev.Elem = func(base ast.Expr, site *ast.IndexExpr) (Interval, bool) {
			return NewInterval(0, 9), true
		}
	})
	got := localInterval(t, pkg, fd, factAtReturn(t, cfg, res), "m")
	if want := NewInterval(0, 9); got != want {
		t.Errorf("m at return = %v, want %v", got, want)
	}
}

// TestIntervalAliasAndFields: field paths through a `c := &global` alias
// resolve to the global's seeded facts.
func TestIntervalAliasAndFields(t *testing.T) {
	src := `package p
var crt struct{ inv uint64 }
func f() uint64 {
	c := &crt
	return c.inv
}`
	pkg := typeCheckPkg(t, "p", src)
	var fd *ast.FuncDecl
	FuncDecls(pkg.Files, func(d *ast.FuncDecl) {
		if d.Name.Name == "f" {
			fd = d
		}
	})
	env := NewIntervalEnv()
	for id, obj := range pkg.Info.Defs {
		if id.Name == "crt" && obj != nil {
			env.Set(KeyOf(obj).WithField("inv"), NewInterval(1, 7))
		}
	}
	ev := &IntervalEval{Info: pkg.Info}
	ia := &IntervalAnalysis{Eval: ev}
	cfg := NewCFG(fd.Body)
	res := ia.Solve(cfg, env)
	retBlk := factAtReturn(t, cfg, res)
	// Evaluate the return expression under the fact at the return block.
	var retExpr ast.Expr
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.ReturnStmt); ok && retExpr == nil {
			retExpr = r.Results[0]
		}
		return true
	})
	got := ev.Eval(retExpr, retBlk)
	if want := NewInterval(1, 7); got != want {
		t.Errorf("c.inv = %v, want %v", got, want)
	}
}

// TestSummaryReturnsBounds: constant-deriving helpers get a Returns bound,
// composed bottom-up; recursion stays unbounded.
func TestSummaryReturnsBounds(t *testing.T) {
	src := `package p
func lim() uint64 { return 1 << 10 }
func twice() uint64 { return lim() * 2 }
func deep() uint64 { return twice() + 1 }
func rec(n uint64) uint64 {
	if n == 0 {
		return 0
	}
	return rec(n-1) + 1
}
func open(n uint64) uint64 { return n }`
	pkg := typeCheckPkg(t, "p", src)
	sums := ComputeSummaries([]*Package{pkg})

	want := map[string]Interval{
		"lim":   PointInterval(1 << 10),
		"twice": PointInterval(1 << 11),
		"deep":  PointInterval(1<<11 + 1),
		"rec":   FullInterval(),
		"open":  FullInterval(),
	}
	found := 0
	for _, n := range sums.Graph.Nodes {
		w, ok := want[n.Fn.Name()]
		if !ok {
			continue
		}
		found++
		got := sums.Lookup(n.Key).Returns
		if !got.Equal(w) {
			t.Errorf("Returns(%s) = %v, want %v", n.Fn.Name(), got, w)
		}
	}
	if found != len(want) {
		t.Errorf("found %d of %d functions", found, len(want))
	}
}
