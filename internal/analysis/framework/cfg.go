package framework

// cfg.go builds an intraprocedural control-flow graph over go/ast statement
// lists. The analyzers that enforce lifecycle protocols (arenasafe's
// getArena/putArena, accown's NewAcc/Release, chanproto's no-Send-after-Run)
// need to know what *must* and what *may* have executed before a program
// point; a lexical position comparison cannot see that a Release inside one
// branch of an if does not cover the other branch, or that a loop back edge
// carries a released state into the next iteration's uses. The CFG plus the
// iterative solver in dataflow.go turns those questions into fixpoint facts.
//
// Granularity: a Block holds whole statements (and the condition/tag
// expressions of the control statements that end a block) in execution
// order. Function-literal bodies are *not* part of the enclosing function's
// graph — they execute whenever the closure is called, not where it is
// written — so analyzers walking block nodes should use InspectShallow.
//
// Defer is modeled structurally: the DeferStmt itself appears as a node (the
// registration point) and is also collected in CFG.Defers, since the
// deferred call runs at function exit on every path. Calls to the builtin
// panic terminate their path (no edge to Exit): a panicking path is not a
// "return" for leak-on-return purposes.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// Block is one basic block: straight-line nodes with a single entry at the
// top, branching only at the end (via Succs).
type Block struct {
	Index int
	Kind  string // diagnostic label: "entry", "if.then", "for.head", ...
	Nodes []ast.Node
	Succs []*Block
	Preds []*Block

	// Branch is the boolean condition this block ends on, when the block's
	// out-edges are condition-directed: the condition of an if statement or
	// of a for statement with a Cond clause. TrueSucc/FalseSucc name the
	// successor taken when Branch evaluates true/false. All three are nil
	// for blocks whose successors are not condition-directed (switch
	// headers, range heads, joins). Flow analyses that understand the
	// condition (the interval engine's FlowSpec.EdgeTransfer) use these to
	// refine the fact flowing along each edge.
	Branch    ast.Expr
	TrueSucc  *Block
	FalseSucc *Block
}

// String renders a compact description for tests and debugging.
func (b *Block) String() string {
	succs := make([]string, len(b.Succs))
	for i, s := range b.Succs {
		succs[i] = fmt.Sprintf("%d", s.Index)
	}
	return fmt.Sprintf("b%d(%s)->[%s]", b.Index, b.Kind, strings.Join(succs, " "))
}

// ReturnStmt returns the block's trailing return statement, or nil. A block
// ending in a return has Exit as its only successor; Exit predecessors that
// do not end in a return are fall-off-the-end paths.
func (b *Block) ReturnStmt() *ast.ReturnStmt {
	if len(b.Nodes) == 0 {
		return nil
	}
	r, _ := b.Nodes[len(b.Nodes)-1].(*ast.ReturnStmt)
	return r
}

// CFG is the control-flow graph of one function body. Entry and Exit are
// synthetic empty blocks; every return statement's block has an edge to
// Exit, as does the block that falls off the end of the body (when
// reachable).
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
	// Defers lists every defer statement in the body, in source order; the
	// deferred calls execute at every exit from the function.
	Defers []*ast.DeferStmt
}

// NewCFG builds the control-flow graph of a function body.
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{cfg: &CFG{}, labels: map[string]*Block{}}
	b.cfg.Entry = b.newBlock("entry")
	b.cfg.Exit = b.newBlock("exit")
	b.cur = b.newBlock("body")
	addEdge(b.cfg.Entry, b.cur)
	b.stmtList(body.List)
	if b.cur != nil {
		addEdge(b.cur, b.cfg.Exit)
	}
	return b.cfg
}

type loopCtx struct {
	label   string
	breakTo *Block
	contTo  *Block // nil for switch/select contexts
}

type cfgBuilder struct {
	cfg    *CFG
	cur    *Block // nil while flow is dead (after return/branch/panic)
	loops  []loopCtx
	labels map[string]*Block // label name -> target block (created on demand for goto)

	// pendingLabel is set by a LabeledStmt so the loop/switch it labels
	// registers its break/continue targets under that name.
	pendingLabel string
}

func (b *cfgBuilder) newBlock(kind string) *Block {
	blk := &Block{Index: len(b.cfg.Blocks), Kind: kind}
	b.cfg.Blocks = append(b.cfg.Blocks, blk)
	return blk
}

func addEdge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// add appends a node to the current block, resurrecting flow into a fresh
// unreachable block when the previous statement terminated the path (dead
// code keeps Bottom facts and is skipped by the analyzers).
func (b *cfgBuilder) add(n ast.Node) {
	if b.cur == nil {
		b.cur = b.newBlock("dead")
	}
	b.cur.Nodes = append(b.cur.Nodes, n)
}

// edgeFromCur links the current block to target when flow is alive.
func (b *cfgBuilder) edgeFromCur(target *Block) {
	if b.cur != nil {
		addEdge(b.cur, target)
	}
}

func (b *cfgBuilder) stmtList(stmts []ast.Stmt) {
	for _, s := range stmts {
		b.stmt(s)
	}
}

// takeLabel consumes the pending label for the statement that claims it.
func (b *cfgBuilder) takeLabel() string {
	l := b.pendingLabel
	b.pendingLabel = ""
	return l
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.LabeledStmt:
		// The label is both a goto target and (for loops/switches) the name
		// break/continue statements refer to.
		target := b.labels[s.Label.Name]
		if target == nil {
			target = b.newBlock("label." + s.Label.Name)
			b.labels[s.Label.Name] = target
		}
		b.edgeFromCur(target)
		b.cur = target
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.IfStmt:
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Cond)
		cond := b.cur
		join := b.newBlock("if.join")
		then := b.newBlock("if.then")
		if cond != nil {
			addEdge(cond, then)
			cond.Branch = s.Cond
			cond.TrueSucc = then
		}
		b.cur = then
		b.stmtList(s.Body.List)
		b.edgeFromCur(join)
		if s.Else != nil {
			els := b.newBlock("if.else")
			if cond != nil {
				addEdge(cond, els)
				cond.FalseSucc = els
			}
			b.cur = els
			b.stmt(s.Else)
			b.edgeFromCur(join)
		} else if cond != nil {
			addEdge(cond, join)
			cond.FalseSucc = join
		}
		b.cur = join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		head := b.newBlock("for.head")
		b.edgeFromCur(head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		done := b.newBlock("for.done")
		body := b.newBlock("for.body")
		addEdge(head, body)
		if s.Cond != nil {
			addEdge(head, done)
			head.Branch = s.Cond
			head.TrueSucc = body
			head.FalseSucc = done
		}
		// continue re-runs Post (when present) before looping to head.
		contTo := head
		var post *Block
		if s.Post != nil {
			post = b.newBlock("for.post")
			post.Nodes = append(post.Nodes, s.Post)
			addEdge(post, head)
			contTo = post
		}
		b.loops = append(b.loops, loopCtx{label: label, breakTo: done, contTo: contTo})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeFromCur(contTo)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = done

	case *ast.RangeStmt:
		label := b.takeLabel()
		b.add(s.X)
		head := b.newBlock("range.head")
		b.edgeFromCur(head)
		if s.Key != nil {
			head.Nodes = append(head.Nodes, s.Key)
		}
		if s.Value != nil {
			head.Nodes = append(head.Nodes, s.Value)
		}
		done := b.newBlock("range.done")
		body := b.newBlock("range.body")
		addEdge(head, body)
		addEdge(head, done)
		b.loops = append(b.loops, loopCtx{label: label, breakTo: done, contTo: head})
		b.cur = body
		b.stmtList(s.Body.List)
		b.edgeFromCur(head)
		b.loops = b.loops[:len(b.loops)-1]
		b.cur = done

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		if s.Tag != nil {
			b.add(s.Tag)
		}
		b.caseClauses(label, b.cur, s.Body.List, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			b.add(s.Init)
		}
		b.add(s.Assign)
		b.caseClauses(label, b.cur, s.Body.List, func(cc *ast.CaseClause, blk *Block) {
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
		})

	case *ast.SelectStmt:
		label := b.takeLabel()
		header := b.cur
		join := b.newBlock("select.join")
		b.loops = append(b.loops, loopCtx{label: label, breakTo: join})
		for _, clause := range s.Body.List {
			cc := clause.(*ast.CommClause)
			kind := "select.case"
			if cc.Comm == nil {
				kind = "select.default"
			}
			blk := b.newBlock(kind)
			if header != nil {
				addEdge(header, blk)
			}
			b.cur = blk
			if cc.Comm != nil {
				b.stmt(cc.Comm)
			}
			b.stmtList(cc.Body)
			b.edgeFromCur(join)
		}
		b.loops = b.loops[:len(b.loops)-1]
		// A select with no clauses blocks forever: join stays unreachable.
		b.cur = join

	case *ast.ReturnStmt:
		b.add(s)
		b.edgeFromCur(b.cfg.Exit)
		b.cur = nil

	case *ast.BranchStmt:
		b.branch(s)

	case *ast.DeferStmt:
		b.add(s)
		b.cfg.Defers = append(b.cfg.Defers, s)

	case *ast.ExprStmt:
		b.add(s)
		if isPanicCall(s.X) {
			b.cur = nil // a panicking path does not reach Exit normally
		}

	case nil:
		// tolerated: optional else / init slots handled by callers

	default:
		// AssignStmt, DeclStmt, IncDecStmt, SendStmt, GoStmt, EmptyStmt, ...
		b.add(s)
	}
}

// caseClauses wires the shared switch/type-switch shape: every case body
// branches from the header; a missing default adds a header->join edge;
// fallthrough falls into the next case's body.
func (b *cfgBuilder) caseClauses(label string, header *Block, clauses []ast.Stmt, guards func(*ast.CaseClause, *Block)) {
	join := b.newBlock("switch.join")
	bodies := make([]*Block, len(clauses))
	hasDefault := false
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		kind := "switch.case"
		if cc.List == nil {
			kind = "switch.default"
			hasDefault = true
		}
		bodies[i] = b.newBlock(kind)
		if header != nil {
			addEdge(header, bodies[i])
		}
		guards(cc, bodies[i])
	}
	if !hasDefault && header != nil {
		addEdge(header, join)
	}
	b.loops = append(b.loops, loopCtx{label: label, breakTo: join})
	for i, clause := range clauses {
		cc := clause.(*ast.CaseClause)
		b.cur = bodies[i]
		n := len(cc.Body)
		for j, st := range cc.Body {
			if br, ok := st.(*ast.BranchStmt); ok && br.Tok == token.FALLTHROUGH && j == n-1 {
				if i+1 < len(bodies) {
					b.edgeFromCur(bodies[i+1])
				}
				b.cur = nil
				continue
			}
			b.stmt(st)
		}
		b.edgeFromCur(join)
	}
	b.loops = b.loops[:len(b.loops)-1]
	b.cur = join
}

func (b *cfgBuilder) branch(s *ast.BranchStmt) {
	b.add(s)
	switch s.Tok {
	case token.BREAK:
		if t := b.findLoop(s.Label, false); t != nil {
			b.edgeFromCur(t.breakTo)
		}
	case token.CONTINUE:
		if t := b.findLoop(s.Label, true); t != nil {
			b.edgeFromCur(t.contTo)
		}
	case token.GOTO:
		target := b.labels[s.Label.Name]
		if target == nil {
			target = b.newBlock("label." + s.Label.Name)
			b.labels[s.Label.Name] = target
		}
		b.edgeFromCur(target)
	case token.FALLTHROUGH:
		// handled by caseClauses; a stray one terminates the path
	}
	b.cur = nil
}

// findLoop resolves a break/continue target, innermost first; continue only
// matches contexts that have a continue target (loops, not switch/select).
func (b *cfgBuilder) findLoop(label *ast.Ident, needCont bool) *loopCtx {
	for i := len(b.loops) - 1; i >= 0; i-- {
		c := &b.loops[i]
		if needCont && c.contTo == nil {
			continue
		}
		if label == nil || c.label == label.Name {
			return c
		}
	}
	return nil
}

// isPanicCall reports whether e is a call to the builtin panic.
func isPanicCall(e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	return ok && id.Name == "panic"
}
