// Fixture for the framework's allow audit: a used allow, a stale allow, an
// allow naming an unknown analyzer, and a func-doc allow covering several
// findings. Analyzed by TestAllowAudit with RunAll and the accown analyzer.
package stale

type Int struct{ v int }

type Acc struct{ v int }

func NewAcc() *Acc       { return new(Acc) }
func (a *Acc) Release()  {}
func (a *Acc) Add(x Int) {}
func (a *Acc) Take() Int { return Int{} }

// usedAllow really leaks: the allow suppresses a live finding and must not
// be reported by the audit.
func usedAllow(x Int) Int {
	//ftlint:allow accown fixture: accumulator ownership stays with the caller
	acc := NewAcc()
	acc.Add(x)
	return acc.Take()
}

// staleAllow is clean code under an allow that no longer suppresses
// anything — the classic leftover from a refactor.
func staleAllow(x Int) {
	//ftlint:allow accown fixture: leftover suppression
	acc := NewAcc()
	defer acc.Release()
	acc.Add(x)
}

// typoAllow names an analyzer that is not in the run set.
func typoAllow(x Int) {
	//ftlint:allow acccown fixture: typo in the analyzer name
	acc := NewAcc()
	defer acc.Release()
	acc.Add(x)
}

// docAllow's doc comment covers both leaks below; the audit must count the
// comment as used exactly once, not duplicate it into a stale line entry.
//
//ftlint:allow accown fixture: scratch accumulators owned by the test harness
func docAllow(x Int) {
	a := NewAcc()
	a.Add(x)
	b := NewAcc()
	b.Add(x)
}

// commaList's allow names two analyzers with a space after the comma. Both
// names must parse: the accown leak below stays suppressed, and the natalias
// entry — which suppresses nothing — must surface as stale instead of being
// swallowed into the rationale.
func commaList(x Int) Int {
	//ftlint:allow accown, natalias fixture: list with a space after the comma
	acc := NewAcc()
	acc.Add(x)
	return acc.Take()
}
