// Package framework is a dependency-free re-implementation of the slice of
// golang.org/x/tools/go/analysis that the ftlint analyzers need. The build
// environment bakes in only the standard library, so instead of importing
// x/tools we provide the same shape — an Analyzer with a Run func over a
// type-checked Pass that reports position-tagged Diagnostics — on top of
// go/ast, go/types, and `go list -export` (see load.go).
//
// Suppression is handled centrally: a finding is dropped when an
//
//	//ftlint:allow <analyzer>[,<analyzer>...] <rationale>
//
// comment sits on the reported line, on the line directly above it, or in
// the doc comment of the enclosing function declaration. The rationale text
// is free-form but expected — the escape hatch exists to make exceptions
// auditable, not silent.
//
// RunAll audits the escape hatches themselves: an allow that names an
// analyzer not in the run set, or that suppresses no finding of any
// analyzer that did run, is reported as an "allowaudit" finding. Stale
// allows are how suppressed invariants quietly rot — the comment outlives
// the exception it documented. Audit findings are not suppressible.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	Name string // short lower-case identifier, used in //ftlint:allow
	Doc  string // one-paragraph description of the enforced invariant
	Run  func(*Pass) error
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/toom", or fixture name)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	// Summaries is the interprocedural fact base over every package of the
	// run (Run computes it for the single package; RunAll for the whole
	// set, so cross-package helpers resolve).
	Summaries *Summaries

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
	// SuppressedBy holds the file:line of the //ftlint:allow comment that
	// suppressed this finding ("" for active findings). Only populated on
	// the suppressed list of RunAllDetail.
	SuppressedBy string
	// World names the model-checker world a protocol finding was proved in
	// (processor count, root, fault plan); empty for local analyses.
	World string
	// Trace is the counterexample interleaving exhibiting the violation,
	// one scheduler event per entry; nil for local analyses.
	Trace []string
	// Formula states a symbolic-cost divergence: the derived polynomial
	// versus the certified closed form ("derived ≠ expected"); empty for
	// non-cost analyses.
	Formula string
	// Witness is a concrete parameter assignment under which Formula's two
	// sides evaluate to different numbers; empty when Formula is.
	Witness string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// ReportTrace records a model-checker finding with its world and
// counterexample interleaving.
func (p *Pass) ReportTrace(pos token.Pos, world string, trace []string, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		World:    world,
		Trace:    trace,
	})
}

// ReportFormula records a symbolic-cost finding: the diverging polynomials
// and a concrete witness assignment separating them.
func (p *Pass) ReportFormula(pos token.Pos, formula, witness string, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
		Formula:  formula,
		Witness:  witness,
	})
}

// Run applies one analyzer to one package and returns its findings with
// //ftlint:allow suppressions already applied, sorted by position. Single-
// analyzer runs do not audit the allow comments (an allow aimed at another
// analyzer would always look unknown or stale); use RunAll for that.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	out, _, err := runFiltered(a, pkg, buildAllowIndex(pkg), ComputeSummaries([]*Package{pkg}))
	return out, err
}

// RunShared applies one analyzer to one package against caller-provided
// whole-program summaries, so interprocedural analyzers (protomc) can see
// across package boundaries without running the full registry. Suppressions
// apply; the allow comments are not audited (see Run).
func RunShared(a *Analyzer, pkg *Package, sums *Summaries) (active, suppressed []Diagnostic, err error) {
	return runFiltered(a, pkg, buildAllowIndex(pkg), sums)
}

func runFiltered(a *Analyzer, pkg *Package, allowed *allowIndex, sums *Summaries) ([]Diagnostic, []Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Path:      pkg.Path,
		Fset:      pkg.Fset,
		Files:     pkg.Files,
		Pkg:       pkg.Types,
		Info:      pkg.Info,
		Summaries: sums,
	}
	if err := a.Run(pass); err != nil {
		return nil, nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	var out, suppressed []Diagnostic
	for _, d := range pass.diags {
		if by, ok := allowed.suppresses(a.Name, d); ok {
			d.SuppressedBy = by
			suppressed = append(suppressed, d)
		} else {
			out = append(out, d)
		}
	}
	sortDiags(out)
	sortDiags(suppressed)
	return out, suppressed, nil
}

func sortDiags(ds []Diagnostic) {
	sort.Slice(ds, func(i, j int) bool {
		pi, pj := ds[i].Position, ds[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		if pi.Column != pj.Column {
			return pi.Column < pj.Column
		}
		// Position ties (several analyzers, or one analyzer firing twice on
		// a line) break deterministically so -json output is stable.
		if ds[i].Analyzer != ds[j].Analyzer {
			return ds[i].Analyzer < ds[j].Analyzer
		}
		return ds[i].Message < ds[j].Message
	})
}

// dedupeDiags drops exact duplicates (same file:line:col, analyzer, and
// message) from a sorted slice. Multi-package runs can analyze one file
// under several passes; the report should carry each finding once.
func dedupeDiags(ds []Diagnostic) []Diagnostic {
	out := ds[:0]
	for i, d := range ds {
		if i > 0 {
			p := out[len(out)-1]
			if p.Position.Filename == d.Position.Filename &&
				p.Position.Line == d.Position.Line &&
				p.Position.Column == d.Position.Column &&
				p.Analyzer == d.Analyzer && p.Message == d.Message {
				continue
			}
		}
		out = append(out, d)
	}
	return out
}

// RunAll applies every analyzer to every package, sharing one suppression
// index per package so that afterwards the allow comments themselves can be
// audited: every allow must name a known analyzer and suppress at least one
// finding of the full run.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	out, _, err := RunAllDetail(analyzers, pkgs)
	return out, err
}

// RunAllDetail is RunAll plus the suppressed findings, each tagged with the
// file:line of the allow comment that covered it — the payload of
// `ftlint -json`.
func RunAllDetail(analyzers []*Analyzer, pkgs []*Package) (active, suppressed []Diagnostic, err error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	sums := ComputeSummaries(pkgs)
	for _, pkg := range pkgs {
		idx := buildAllowIndex(pkg)
		for _, a := range analyzers {
			ds, sup, err := runFiltered(a, pkg, idx, sums)
			if err != nil {
				return nil, nil, err
			}
			active = append(active, ds...)
			suppressed = append(suppressed, sup...)
		}
		active = append(active, idx.audit(known)...)
	}
	sortDiags(active)
	sortDiags(suppressed)
	return dedupeDiags(active), dedupeDiags(suppressed), nil
}

// allowEntry is one analyzer name in one //ftlint:allow comment. Entries
// track whether they ever suppressed a finding, so RunAll can report the
// stale ones.
type allowEntry struct {
	name     string
	pos      token.Pos
	position token.Position // of the allow comment
	used     bool
}

// allowIndex records where //ftlint:allow comments take effect.
type allowIndex struct {
	// lines maps file -> line -> entries allowed at that line (the
	// comment's own line; a diagnostic on that line or the next is covered).
	lines map[string]map[int][]*allowEntry
	// funcRanges lists function bodies whose doc comment carries an allow:
	// every diagnostic inside is covered.
	funcRanges []allowRange
	// entries holds every entry once, in source order, for the audit.
	entries []*allowEntry
	fset    *token.FileSet
}

type allowRange struct {
	file       string
	start, end int // line range, inclusive
	entries    []*allowEntry
}

func buildAllowIndex(pkg *Package) *allowIndex {
	idx := &allowIndex{lines: make(map[string]map[int][]*allowEntry), fset: pkg.Fset}

	newEntries := func(c *ast.Comment) []*allowEntry {
		var es []*allowEntry
		for _, n := range parseAllow(c.Text) {
			e := &allowEntry{name: n, pos: c.Pos(), position: pkg.Fset.Position(c.Pos())}
			es = append(es, e)
			idx.entries = append(idx.entries, e)
		}
		return es
	}

	for _, f := range pkg.Files {
		// Function-doc allows cover the whole body. Their comments are
		// indexed here only, not in the line pass below: a second, line-
		// anchored entry for the same comment would never suppress anything
		// and show up as a false stale.
		inFuncDoc := make(map[*ast.Comment]bool)
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			var es []*allowEntry
			for _, c := range fd.Doc.List {
				if ne := newEntries(c); len(ne) > 0 {
					es = append(es, ne...)
					inFuncDoc[c] = true
				}
			}
			if len(es) == 0 {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			idx.funcRanges = append(idx.funcRanges, allowRange{
				file:    start.Filename,
				start:   start.Line,
				end:     end.Line,
				entries: es,
			})
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if inFuncDoc[c] {
					continue
				}
				es := newEntries(c)
				if len(es) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int][]*allowEntry)
					idx.lines[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], es...)
			}
		}
	}
	return idx
}

// parseAllow extracts analyzer names from an //ftlint:allow comment line.
// Syntax: "//ftlint:allow name[,name...] free-form rationale".
func parseAllow(text string) []string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "ftlint:allow") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "ftlint:allow"))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	// The name list may carry spaces after its commas ("allow accown,
	// natalias rationale"): keep consuming fields while the accumulated
	// list still ends in a comma, so the rationale proper starts at the
	// first field that completes the list.
	list := fields[0]
	for i := 1; i < len(fields) && strings.HasSuffix(list, ","); i++ {
		list += fields[i]
	}
	var names []string
	for _, n := range strings.Split(list, ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

// suppresses reports whether an allow covers d, marking every covering
// entry as used so the audit can tell live allows from stale ones. The
// returned string locates the (first) covering comment as file:line.
func (idx *allowIndex) suppresses(name string, d Diagnostic) (string, bool) {
	by := ""
	mark := func(e *allowEntry) {
		e.used = true
		if by == "" {
			by = fmt.Sprintf("%s:%d", e.position.Filename, e.position.Line)
		}
	}
	pos := d.Position
	if byLine := idx.lines[pos.Filename]; byLine != nil {
		for _, line := range []int{pos.Line, pos.Line - 1} {
			for _, e := range byLine[line] {
				if e.name == name {
					mark(e)
				}
			}
		}
	}
	for _, r := range idx.funcRanges {
		if r.file != pos.Filename || pos.Line < r.start || pos.Line > r.end {
			continue
		}
		for _, e := range r.entries {
			if e.name == name {
				mark(e)
			}
		}
	}
	return by, by != ""
}

// audit reports allow entries that name an analyzer outside the run set and
// entries that suppressed nothing across the whole run.
func (idx *allowIndex) audit(known map[string]bool) []Diagnostic {
	var out []Diagnostic
	report := func(e *allowEntry, format string, args ...any) {
		out = append(out, Diagnostic{
			Pos:      e.pos,
			Position: e.position,
			Analyzer: "allowaudit",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, e := range idx.entries {
		switch {
		case !known[e.name]:
			report(e, "ftlint:allow names unknown analyzer %q: the suppression can never take effect (typo, or the analyzer was removed)", e.name)
		case !e.used:
			report(e, "stale ftlint:allow for %q: it suppresses no finding — remove it, or the exception it documents has silently widened", e.name)
		}
	}
	sortDiags(out)
	return out
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
