// Package framework is a dependency-free re-implementation of the slice of
// golang.org/x/tools/go/analysis that the ftlint analyzers need. The build
// environment bakes in only the standard library, so instead of importing
// x/tools we provide the same shape — an Analyzer with a Run func over a
// type-checked Pass that reports position-tagged Diagnostics — on top of
// go/ast, go/types, and `go list -export` (see load.go).
//
// Suppression is handled centrally: a finding is dropped when an
//
//	//ftlint:allow <analyzer>[,<analyzer>...] <rationale>
//
// comment sits on the reported line, on the line directly above it, or in
// the doc comment of the enclosing function declaration. The rationale text
// is free-form but expected — the escape hatch exists to make exceptions
// auditable, not silent.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one invariant checker.
type Analyzer struct {
	Name string // short lower-case identifier, used in //ftlint:allow
	Doc  string // one-paragraph description of the enforced invariant
	Run  func(*Pass) error
}

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path  string // import path ("repro/internal/toom", or fixture name)
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Pass carries one analyzer's run over one package.
type Pass struct {
	Analyzer *Analyzer
	Path     string
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	diags []Diagnostic
}

// Diagnostic is one finding.
type Diagnostic struct {
	Pos      token.Pos
	Position token.Position
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Pos:      pos,
		Position: p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies one analyzer to one package and returns its findings with
// //ftlint:allow suppressions already applied, sorted by position.
func Run(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer: a,
		Path:     pkg.Path,
		Fset:     pkg.Fset,
		Files:    pkg.Files,
		Pkg:      pkg.Types,
		Info:     pkg.Info,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
	}
	allowed := buildAllowIndex(pkg)
	var out []Diagnostic
	for _, d := range pass.diags {
		if !allowed.suppresses(a.Name, d) {
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		pi, pj := out[i].Position, out[j].Position
		if pi.Filename != pj.Filename {
			return pi.Filename < pj.Filename
		}
		if pi.Line != pj.Line {
			return pi.Line < pj.Line
		}
		return pi.Column < pj.Column
	})
	return out, nil
}

// RunAll applies every analyzer to every package.
func RunAll(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var out []Diagnostic
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			ds, err := Run(a, pkg)
			if err != nil {
				return nil, err
			}
			out = append(out, ds...)
		}
	}
	return out, nil
}

// allowIndex records where //ftlint:allow comments take effect.
type allowIndex struct {
	// lines maps file -> line -> analyzer names allowed at that line (the
	// comment's own line; a diagnostic on that line or the next is covered).
	lines map[string]map[int]map[string]bool
	// funcRanges lists function bodies whose doc comment carries an allow:
	// every diagnostic inside is covered.
	funcRanges []allowRange
	fset       *token.FileSet
}

type allowRange struct {
	file       string
	start, end int // line range, inclusive
	names      map[string]bool
}

func buildAllowIndex(pkg *Package) *allowIndex {
	idx := &allowIndex{lines: make(map[string]map[int]map[string]bool), fset: pkg.Fset}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names := parseAllow(c.Text)
				if len(names) == 0 {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				byLine := idx.lines[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]map[string]bool)
					idx.lines[pos.Filename] = byLine
				}
				set := byLine[pos.Line]
				if set == nil {
					set = make(map[string]bool)
					byLine[pos.Line] = set
				}
				for _, n := range names {
					set[n] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil || fd.Body == nil {
				continue
			}
			names := make(map[string]bool)
			for _, c := range fd.Doc.List {
				for _, n := range parseAllow(c.Text) {
					names[n] = true
				}
			}
			if len(names) == 0 {
				continue
			}
			start := pkg.Fset.Position(fd.Pos())
			end := pkg.Fset.Position(fd.End())
			idx.funcRanges = append(idx.funcRanges, allowRange{
				file:  start.Filename,
				start: start.Line,
				end:   end.Line,
				names: names,
			})
		}
	}
	return idx
}

// parseAllow extracts analyzer names from an //ftlint:allow comment line.
// Syntax: "//ftlint:allow name[,name...] free-form rationale".
func parseAllow(text string) []string {
	text = strings.TrimPrefix(text, "//")
	text = strings.TrimSpace(text)
	if !strings.HasPrefix(text, "ftlint:allow") {
		return nil
	}
	rest := strings.TrimSpace(strings.TrimPrefix(text, "ftlint:allow"))
	fields := strings.Fields(rest)
	if len(fields) == 0 {
		return nil
	}
	var names []string
	for _, n := range strings.Split(fields[0], ",") {
		if n = strings.TrimSpace(n); n != "" {
			names = append(names, n)
		}
	}
	return names
}

func (idx *allowIndex) suppresses(name string, d Diagnostic) bool {
	pos := d.Position
	if byLine := idx.lines[pos.Filename]; byLine != nil {
		for _, line := range []int{pos.Line, pos.Line - 1} {
			if set := byLine[line]; set != nil && set[name] {
				return true
			}
		}
	}
	for _, r := range idx.funcRanges {
		if r.file == pos.Filename && pos.Line >= r.start && pos.Line <= r.end && r.names[name] {
			return true
		}
	}
	return false
}

// NewInfo returns a types.Info with every map the analyzers consult.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}
