package framework_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/accown"
	"repro/internal/analysis/arenasafe"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/natalias"
)

// TestLoadAndRun exercises the `go list -export` loader against the real
// tree: internal/bigint must load, type-check, and come out clean under the
// analyzers that police it (it is the package whose invariants they encode).
func TestLoadAndRun(t *testing.T) {
	pkgs, err := framework.LoadCached(".", "repro/internal/bigint")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/bigint" {
		t.Fatalf("Load returned %d packages, want exactly repro/internal/bigint", len(pkgs))
	}
	for _, a := range []*framework.Analyzer{arenasafe.Analyzer, natalias.Analyzer} {
		diags, err := framework.Run(a, pkgs[0])
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected finding in clean package: %s: %s", a.Name, d.Position, d.Message)
		}
	}
}

// loadStaleFixture type-checks the allow-audit fixture by hand (it is not a
// listable package, so the go list loader does not apply).
func loadStaleFixture(t *testing.T) *framework.Package {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filepath.Join("testdata", "src", "stale", "stale.go"), nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	info := framework.NewInfo()
	tpkg, err := (&types.Config{}).Check("stale", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return &framework.Package{Path: "stale", Fset: fset, Files: []*ast.File{f}, Types: tpkg, Info: info}
}

// TestAllowAudit: RunAll must flag the stale allow, the unknown-analyzer
// allow, and the unused half of the space-after-comma list (whose parsing
// must not truncate at the space), and leave the live allows alone.
func TestAllowAudit(t *testing.T) {
	pkg := loadStaleFixture(t)
	diags, err := framework.RunAll(
		[]*framework.Analyzer{accown.Analyzer, natalias.Analyzer},
		[]*framework.Package{pkg})
	if err != nil {
		t.Fatalf("RunAll: %v", err)
	}
	var stale, unknown, staleComma int
	for _, d := range diags {
		if d.Analyzer != "allowaudit" {
			t.Errorf("non-audit finding leaked through a live allow: %s: %s", d.Position, d.Message)
			continue
		}
		switch {
		case strings.Contains(d.Message, "unknown analyzer \"acccown\""):
			unknown++
		case strings.Contains(d.Message, "stale ftlint:allow for \"accown\""):
			stale++
		case strings.Contains(d.Message, "stale ftlint:allow for \"natalias\""):
			staleComma++
		default:
			t.Errorf("unexpected audit finding: %s: %s", d.Position, d.Message)
		}
	}
	if unknown != 1 || stale != 1 || staleComma != 1 {
		t.Errorf("audit found %d unknown-analyzer, %d stale accown, %d stale natalias allows, want 1 each (the natalias one requires parsing past the comma's space)",
			unknown, stale, staleComma)
	}
}

// TestSingleRunSkipsAudit: framework.Run must not audit (an allow aimed at
// an analyzer outside a single-analyzer run is not evidence of staleness).
func TestSingleRunSkipsAudit(t *testing.T) {
	pkg := loadStaleFixture(t)
	diags, err := framework.Run(accown.Analyzer, pkg)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected finding from single-analyzer run: %s: %s", d.Position, d.Message)
	}
}

func TestPathHasSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"repro/internal/toom", "toom", true},
		{"repro/internal/toomgraph", "toom", false},
		{"repro/internal/ftparallel", "parallel", false},
		{"repro/internal/parallel", "parallel", true},
		{"toom", "toom", true},
		{"", "toom", false},
	}
	for _, c := range cases {
		if got := framework.PathHasSegment(c.path, c.seg); got != c.want {
			t.Errorf("PathHasSegment(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}
