package framework_test

import (
	"testing"

	"repro/internal/analysis/arenasafe"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/natalias"
)

// TestLoadAndRun exercises the `go list -export` loader against the real
// tree: internal/bigint must load, type-check, and come out clean under the
// analyzers that police it (it is the package whose invariants they encode).
func TestLoadAndRun(t *testing.T) {
	pkgs, err := framework.Load(".", "repro/internal/bigint")
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(pkgs) != 1 || pkgs[0].Path != "repro/internal/bigint" {
		t.Fatalf("Load returned %d packages, want exactly repro/internal/bigint", len(pkgs))
	}
	for _, a := range []*framework.Analyzer{arenasafe.Analyzer, natalias.Analyzer} {
		diags, err := framework.Run(a, pkgs[0])
		if err != nil {
			t.Fatalf("%s: %v", a.Name, err)
		}
		for _, d := range diags {
			t.Errorf("%s: unexpected finding in clean package: %s: %s", a.Name, d.Position, d.Message)
		}
	}
}

func TestPathHasSegment(t *testing.T) {
	cases := []struct {
		path, seg string
		want      bool
	}{
		{"repro/internal/toom", "toom", true},
		{"repro/internal/toomgraph", "toom", false},
		{"repro/internal/ftparallel", "parallel", false},
		{"repro/internal/parallel", "parallel", true},
		{"toom", "toom", true},
		{"", "toom", false},
	}
	for _, c := range cases {
		if got := framework.PathHasSegment(c.path, c.seg); got != c.want {
			t.Errorf("PathHasSegment(%q, %q) = %v, want %v", c.path, c.seg, got, c.want)
		}
	}
}
