package framework

// skeleton.go extracts the communication skeleton of per-processor (SPMD)
// protocol functions: the Send/Recv/RecvDeadline/Barrier sites they contain,
// the loops those sites sit in (with trip bounds proved through the interval
// lattice where the bound expression is derivable from world parameters),
// and the constructs that make a function unmodelable for explicit-state
// checking (raw goroutines, select, channel operations, deferred
// communication, structurally unbounded communication loops).
//
// The skeleton is an *annotation layer over the real AST*, not a separate
// IR: the protomc model checker interprets the original function bodies and
// uses the skeleton only as a gate (is this call tree modelable?) and as an
// index (which call expressions are communication, where do counterexample
// traces anchor). Keeping the AST authoritative means the checker can never
// drift from the code it certifies.
//
// Communication is recognized the way tagflow recognizes it: a method call
// whose receiver's named type is Proc or Endpoint and whose name is one of
// the transport verbs. The name-based match lets the same extractor work on
// the real machine.Proc and on the miniature stand-ins the self-contained
// test fixtures declare.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// CommKind classifies a communication site.
type CommKind int

const (
	CommSend CommKind = iota
	CommRecv
	CommRecvDeadline
	CommBarrier
)

func (k CommKind) String() string {
	switch k {
	case CommSend:
		return "send"
	case CommRecv:
		return "recv"
	case CommRecvDeadline:
		return "recv-deadline"
	case CommBarrier:
		return "barrier"
	}
	return "?"
}

// commVerbs maps transport method names to their kind and the index of the
// tag (or phase) argument. Recv and RecvInts differ only in payload type.
var commVerbs = map[string]struct {
	kind   CommKind
	tagArg int
}{
	"Send":         {CommSend, 1},
	"Recv":         {CommRecv, 1},
	"RecvInts":     {CommRecv, 1},
	"RecvDeadline": {CommRecvDeadline, 1},
	"Barrier":      {CommBarrier, 0},
}

// CommSite is one communication operation in a function body.
type CommSite struct {
	Kind   CommKind
	Method string
	Call   *ast.CallExpr
	// Rank is the peer-rank expression (nil for barriers): the argument
	// protomc folds over concrete worlds — e.g. g[(dst+rootIdx)%n].
	Rank ast.Expr
	// Tag is the tag expression (the phase expression for barriers).
	Tag ast.Expr
}

// Blocker is a construct that makes a function unmodelable.
type Blocker struct {
	Pos    token.Pos
	Reason string
}

// CommLoop is a for/range statement containing communication, with the trip
// bound proved (or not) under the world axioms.
type CommLoop struct {
	Loop ast.Stmt
	// Bound is the interval of the loop's upper-bound expression under the
	// axioms; FullInterval when the loop is structurally bounded (monotone
	// counter against a loop-invariant limit) but the limit expression is
	// not derivable from world parameters.
	Bound Interval
	// Proved reports that the loop terminates under the axioms.
	Proved bool
}

// Skeleton is the extracted communication shape of one declared function.
type Skeleton struct {
	Key      string
	Node     *CGNode
	Sites    []CommSite
	Loops    []CommLoop
	Blockers []Blocker
	// Indirect lists call sites through func-typed values (hook fields,
	// callbacks). They are not hard blockers — a nil hook never runs — but
	// the checker must refuse any world in which one is actually invoked
	// with an unknown target.
	Indirect []token.Pos
}

// HasComm reports whether the function itself contains a comm site.
func (s *Skeleton) HasComm() bool { return len(s.Sites) > 0 }

// WorldAxioms bound the world parameters a skeleton is instantiated with,
// feeding the interval engine when it proves loop bounds: integer
// parameters (ranks, roots, counts) lie in [0, MaxRank]; slice parameters
// (groups, payload vectors) have length at most MaxLen.
type WorldAxioms struct {
	MaxRank uint64
	MaxLen  uint64
}

// DefaultWorldAxioms covers the worlds protomc instantiates (n <= 5 plus
// small fault-tolerant grids).
func DefaultWorldAxioms() WorldAxioms { return WorldAxioms{MaxRank: 64, MaxLen: 64} }

// SkeletonSet holds the skeletons of every declared function in a package
// set, with transitive comm-reachability and blocker queries over the call
// graph.
type SkeletonSet struct {
	ByKey  map[string]*Skeleton
	graph  *CallGraph
	reach  map[string]bool
	blocks map[string][]Blocker
}

// ExtractSkeletons builds the skeleton of every function in the summaries'
// call graph.
func ExtractSkeletons(sums *Summaries, ax WorldAxioms) *SkeletonSet {
	set := &SkeletonSet{
		ByKey:  make(map[string]*Skeleton),
		graph:  sums.Graph,
		reach:  make(map[string]bool),
		blocks: make(map[string][]Blocker),
	}
	for key, n := range sums.Graph.Nodes {
		set.ByKey[key] = extractOne(n, ax)
	}
	return set
}

// CommSiteAt returns the comm site for a call expression, if the call is
// communication ([ok] mirrors tagflow's commCall classification).
func CommSiteAt(info *types.Info, call *ast.CallExpr) (CommSite, bool) {
	recv := RecvTypeName(info, call)
	if recv != "Proc" && recv != "Endpoint" {
		return CommSite{}, false
	}
	id := CalleeIdent(call)
	if id == nil {
		return CommSite{}, false
	}
	verb, ok := commVerbs[id.Name]
	if !ok || len(call.Args) <= verb.tagArg {
		return CommSite{}, false
	}
	site := CommSite{Kind: verb.kind, Method: id.Name, Call: call, Tag: call.Args[verb.tagArg]}
	if verb.kind != CommBarrier {
		site.Rank = call.Args[0]
	}
	return site, true
}

// extractOne walks one function body.
func extractOne(n *CGNode, ax WorldAxioms) *Skeleton {
	sk := &Skeleton{Key: n.Key, Node: n}
	info := n.Pkg.Info

	// Pass 1: comm sites, hard blockers, indirect calls.
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.GoStmt:
			sk.Blockers = append(sk.Blockers, Blocker{s.Pos(), "go statement: unmodeled concurrency"})
		case *ast.SelectStmt:
			sk.Blockers = append(sk.Blockers, Blocker{s.Pos(), "select statement"})
		case *ast.SendStmt:
			sk.Blockers = append(sk.Blockers, Blocker{s.Pos(), "raw channel send"})
		case *ast.UnaryExpr:
			if s.Op == token.ARROW {
				sk.Blockers = append(sk.Blockers, Blocker{s.Pos(), "raw channel receive"})
			}
		case *ast.DeferStmt:
			if containsComm(info, s) {
				sk.Blockers = append(sk.Blockers, Blocker{s.Pos(), "deferred communication"})
			}
		case *ast.CallExpr:
			if site, ok := CommSiteAt(info, s); ok {
				sk.Sites = append(sk.Sites, site)
			} else if isIndirectCall(info, s) {
				sk.Indirect = append(sk.Indirect, s.Pos())
			}
		}
		return true
	})

	// Pass 2: bound every loop that contains communication (directly or via
	// a call — any call at all, conservatively: the callee may communicate).
	env := axiomEnv(n, ax)
	ev := &IntervalEval{Info: info}
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		switch loop := m.(type) {
		case *ast.RangeStmt:
			if !containsComm(info, loop.Body) && !containsCall(loop.Body) {
				return true
			}
			// Ranging over a slice/map/string/int is bounded by the
			// container's length; only channel ranges block.
			if t := info.Types[loop.X].Type; t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					sk.Blockers = append(sk.Blockers, Blocker{loop.Pos(), "range over channel in communication loop"})
					return true
				}
			}
			sk.Loops = append(sk.Loops, CommLoop{Loop: loop, Bound: NewInterval(0, ax.MaxLen), Proved: true})
		case *ast.ForStmt:
			if !containsComm(info, loop.Body) && !containsCall(loop.Body) {
				return true
			}
			cl := boundForLoop(ev, env, loop, ax)
			sk.Loops = append(sk.Loops, cl)
			if !cl.Proved {
				sk.Blockers = append(sk.Blockers, Blocker{loop.Pos(), "communication loop with no provable trip bound"})
			}
		}
		return true
	})
	return sk
}

// axiomEnv seeds an interval environment from the world axioms: integer
// parameters in [0, MaxRank]; locals initialized as len(param) in
// [0, MaxLen] (the `n := len(g)` idiom every collective opens with).
func axiomEnv(n *CGNode, ax WorldAxioms) *IntervalEnv {
	env := NewIntervalEnv()
	info := n.Pkg.Info
	params := map[types.Object]bool{}
	addField := func(f *ast.Field) {
		for _, name := range f.Names {
			obj := info.Defs[name]
			if obj == nil {
				continue
			}
			params[obj] = true
			if isIntegerType(obj.Type()) {
				env.Set(KeyOf(obj), NewInterval(0, ax.MaxRank))
			}
		}
	}
	if n.Decl.Recv != nil {
		for _, f := range n.Decl.Recv.List {
			addField(f)
		}
	}
	for _, f := range n.Decl.Type.Params.List {
		addField(f)
	}
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		as, ok := m.(*ast.AssignStmt)
		if !ok || as.Tok != token.DEFINE || len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return true
		}
		call, ok := as.Rhs[0].(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return true
		}
		id, isIdent := call.Fun.(*ast.Ident)
		if !isIdent || id.Name != "len" {
			return true
		}
		if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
			return true
		}
		arg, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
		if !ok || !params[info.Uses[arg]] {
			return true
		}
		if lhs, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := info.Defs[lhs]; obj != nil {
				env.Set(KeyOf(obj), NewInterval(0, ax.MaxLen))
			}
		}
		return true
	})
	return env
}

// boundForLoop proves a for-loop bounded: the condition must compare a
// counter against a limit (`x < E`, `x <= E`), the body/post must climb the
// counter (x++, x += c, x <<= c, or x += s for a loop-invariant stride),
// and E must be loop-invariant (no identifier of E assigned in the body).
// Conjunctive conditions `A && B` prove when either conjunct does: the loop
// exits as soon as any conjunct fails. The bound interval comes from
// evaluating E in the axiom environment; a monotone loop whose limit is not
// derivable still proves, with a Full bound.
func boundForLoop(ev *IntervalEval, env *IntervalEnv, loop *ast.ForStmt, ax WorldAxioms) CommLoop {
	cl := CommLoop{Loop: loop, Bound: FullInterval()}
	if loop.Cond == nil {
		return cl
	}
	if iv, ok := proveLoopCond(ev, env, ast.Unparen(loop.Cond), loop); ok {
		cl.Proved = true
		if !iv.IsEmpty() && !iv.IsFull() {
			cl.Bound = iv
		}
	}
	return cl
}

// proveLoopCond proves one (sub)condition bounds the loop, returning the
// limit's interval when derivable.
func proveLoopCond(ev *IntervalEval, env *IntervalEnv, e ast.Expr, loop *ast.ForStmt) (Interval, bool) {
	cond, ok := e.(*ast.BinaryExpr)
	if !ok {
		return FullInterval(), false
	}
	if cond.Op == token.LAND {
		if iv, ok := proveLoopCond(ev, env, ast.Unparen(cond.X), loop); ok {
			return iv, true
		}
		return proveLoopCond(ev, env, ast.Unparen(cond.Y), loop)
	}
	if cond.Op != token.LSS && cond.Op != token.LEQ {
		return FullInterval(), false
	}
	counter, ok := ast.Unparen(cond.X).(*ast.Ident)
	if !ok {
		return FullInterval(), false
	}
	if !strictlyIncreases(counter.Name, loop.Post, loop) && !strictlyIncreases(counter.Name, loop.Body, loop) {
		return FullInterval(), false
	}
	if assignsAnyIdent(loop.Body, identNames(cond.Y)) {
		return FullInterval(), false
	}
	return ev.Eval(cond.Y, env), true
}

// strictlyIncreases reports whether stmt (or some statement under it)
// climbs the named counter: x++, x += c (c > 0 constant), x <<= c / x *= c
// (doubling walks like binomial-tree rounds), or x += s for a
// loop-invariant identifier stride s (offset-class walks like
// `for u := c; u < len(v); u += cols`). The last form is monotone only when
// the concrete stride is positive, which the model checker's interpreter
// observes directly — a zero stride exhausts its step budget and is
// reported, never silently looped.
func strictlyIncreases(name string, stmt ast.Node, loop *ast.ForStmt) bool {
	if stmt == nil {
		return false
	}
	found := false
	ast.Inspect(stmt, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && id.Name == name && s.Tok == token.INC {
				found = true
			}
		case *ast.AssignStmt:
			if len(s.Lhs) != 1 {
				return true
			}
			id, ok := s.Lhs[0].(*ast.Ident)
			if !ok || id.Name != name {
				return true
			}
			switch s.Tok {
			case token.ADD_ASSIGN, token.SHL_ASSIGN, token.MUL_ASSIGN:
				if lit, ok := ast.Unparen(s.Rhs[0]).(*ast.BasicLit); ok && lit.Kind == token.INT && lit.Value != "0" {
					found = true
				}
				if s.Tok != token.ADD_ASSIGN {
					return true
				}
				if stride, ok := ast.Unparen(s.Rhs[0]).(*ast.Ident); ok &&
					!assignsAnyIdent(loop.Body, map[string]bool{stride.Name: true}) {
					found = true
				}
			}
		}
		return true
	})
	return found
}

func identNames(e ast.Expr) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(e, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok {
			out[id.Name] = true
		}
		return true
	})
	return out
}

func assignsAnyIdent(body ast.Node, names map[string]bool) bool {
	hit := false
	ast.Inspect(body, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				if id, ok := l.(*ast.Ident); ok && names[id.Name] {
					hit = true
				}
			}
		case *ast.IncDecStmt:
			if id, ok := s.X.(*ast.Ident); ok && names[id.Name] {
				hit = true
			}
		}
		return true
	})
	return hit
}

// containsComm reports whether any comm site sits under root.
func containsComm(info *types.Info, root ast.Node) bool {
	found := false
	ast.Inspect(root, func(m ast.Node) bool {
		if call, ok := m.(*ast.CallExpr); ok {
			if _, ok := CommSiteAt(info, call); ok {
				found = true
			}
		}
		return !found
	})
	return found
}

func containsCall(root ast.Node) bool {
	found := false
	ast.Inspect(root, func(m ast.Node) bool {
		if _, ok := m.(*ast.CallExpr); ok {
			found = true
		}
		return !found
	})
	return found
}

// isIndirectCall reports a call through a func-typed value: not a declared
// func/method, not a conversion, not a builtin, not a method value the
// type-checker resolves. These are soft blockers (see Skeleton.Indirect).
func isIndirectCall(info *types.Info, call *ast.CallExpr) bool {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj := info.Uses[fn]
		if obj == nil { // builtin (len, append, ...)
			return false
		}
		switch obj.(type) {
		case *types.Func, *types.TypeName, *types.Builtin:
			return false
		}
		_, isSig := obj.Type().Underlying().(*types.Signature)
		return isSig
	case *ast.SelectorExpr:
		obj := info.Uses[fn.Sel]
		switch obj.(type) {
		case *types.Func, *types.TypeName, nil:
			return false
		}
		_, isSig := obj.Type().Underlying().(*types.Signature)
		return isSig
	case *ast.FuncLit:
		return false // interpreted directly
	}
	// Conversions like machine.Ints(x) parse as CallExpr with other Fun
	// shapes (e.g. ArrayType); they are not calls at all.
	if _, isConv := info.Types[call.Fun]; isConv {
		return false
	}
	return false
}

// Modelable reports whether key's whole transitive call tree (within the
// graph) is blocker-free, and returns the blockers found otherwise. Calls
// that leave the graph (stdlib, other packages without source) are fine:
// the checker bridges or abstracts them; they cannot communicate on the
// model machine.
func (set *SkeletonSet) Modelable(key string) (bool, []Blocker) {
	bl := set.transitiveBlockers(key, map[string]bool{})
	return len(bl) == 0, bl
}

// CommReach reports whether key transitively contains a comm site.
func (set *SkeletonSet) CommReach(key string) bool {
	if v, ok := set.reach[key]; ok {
		return v
	}
	set.reach[key] = false // cycle guard
	sk := set.ByKey[key]
	if sk == nil {
		return false
	}
	v := sk.HasComm()
	if !v {
		for callee := range sk.Node.Calls {
			if set.CommReach(callee) {
				v = true
				break
			}
		}
	}
	set.reach[key] = v
	return v
}

// ModelBoundaryPkg reports packages whose internals the model checker
// never interprets: the machine/transport layer (its verbs are the model's
// primitives) and the arithmetic kernels it bridges natively or abstracts.
// Their goroutines and channels are below the protocol abstraction, so
// their blockers do not disqualify a caller.
func ModelBoundaryPkg(path string) bool {
	switch path[strings.LastIndex(path, "/")+1:] {
	case "machine", "transport", "simnet", "wallnet", "faultinject", "costacct",
		"bigint", "toom", "points", "erasure", "mat", "rat":
		return true
	}
	return false
}

func (set *SkeletonSet) transitiveBlockers(key string, seen map[string]bool) []Blocker {
	if seen[key] {
		return nil
	}
	seen[key] = true
	if bl, ok := set.blocks[key]; ok {
		return bl
	}
	sk := set.ByKey[key]
	if sk == nil {
		return nil
	}
	bl := append([]Blocker(nil), sk.Blockers...)
	for callee := range sk.Node.Calls {
		if n := set.ByKey[callee]; n != nil && ModelBoundaryPkg(n.Node.Pkg.Path) {
			continue
		}
		bl = append(bl, set.transitiveBlockers(callee, seen)...)
	}
	set.blocks[key] = bl
	return bl
}

// DescribeBlockers renders blockers for diagnostics.
func (set *SkeletonSet) DescribeBlockers(fset *token.FileSet, bl []Blocker) string {
	s := ""
	for i, b := range bl {
		if i > 0 {
			s += "; "
		}
		p := fset.Position(b.Pos)
		s += fmt.Sprintf("%s (%s:%d)", b.Reason, p.Filename, p.Line)
	}
	return s
}
