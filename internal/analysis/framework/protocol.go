package framework

// protocol.go is the shared acquire/release lifecycle checker built on the
// CFG and the dataflow solver. arenasafe (getArena/putArena, mark/release)
// and accown (NewAcc/Release) enforce the same shape of protocol: an object
// acquired at one call site must be released on every path out of the
// function, must not be used after its release, and must not be released
// twice. The checker runs one forward powerset-lattice analysis per object:
// the fact is the set of lifecycle states the object may be in at a program
// point, so "released on one branch only" shows up as {Live, Released} at
// the merge and a loop back edge carries {Released} into the next
// iteration's uses.

import (
	"go/ast"
	"go/token"
)

// ObjState is a set of lifecycle states (a powerset lattice element; join is
// set union).
type ObjState uint8

const (
	// StateNotYet: execution has not passed the acquire site (also the state
	// after a scope ends, e.g. a per-iteration acquire before its redefinition).
	StateNotYet ObjState = 1 << iota
	// StateLive: acquired and not yet released — the object owes a release.
	StateLive
	// StateReleased: released; further uses and releases are protocol errors.
	StateReleased
	// StateLiveArmed: live with a deferred release registered. Every exit
	// from the function is covered by the pending deferred call, so an exit
	// in this state is not a leak; an explicit release in this state will be
	// released a second time by the defer at exit.
	StateLiveArmed
	// StateReleasedArmed: explicitly released while a deferred release is
	// still armed — the deferred call will double-release at function exit.
	StateReleasedArmed
)

// releasedAny matches every state in which the object has already been
// released; liveAny matches every state in which it is currently live.
const (
	releasedAny = StateReleased | StateReleasedArmed
	liveAny     = StateLive | StateLiveArmed
)

// ProtoEventKind classifies how a call site affects the tracked object.
type ProtoEventKind int

const (
	// ProtoAcquire (re)initializes the object: NewAcc(), getArena(), mark().
	ProtoAcquire ProtoEventKind = iota
	// ProtoRelease ends the obligation: Release(), putArena(), release(m).
	ProtoRelease
	// ProtoUse is any other operation that requires the object to be live.
	ProtoUse
	// ProtoDeferRelease registers a deferred release at its defer statement:
	// the release itself runs at every function exit, so paths through the
	// registration are covered, while paths around it still owe a release.
	// Keyed at the deferred CallExpr (for `defer f(x)` the deferred call
	// itself; for `defer func() { ... }()` the closure invocation).
	ProtoDeferRelease
)

// ProtoEvent is one call site affecting the tracked object, keyed by the
// CallExpr's position (see CheckProtocol).
type ProtoEvent struct {
	Kind ProtoEventKind
	Name string // call name, echoed in findings
}

// ProtoFindingKind classifies a protocol violation. "Partial" means the
// violation happens on some but not all executions reaching the point (a
// branch or loop iteration); the non-partial variants hold on every path.
type ProtoFindingKind int

const (
	// LeakReturn: a return statement executes while the object is live.
	LeakReturn ProtoFindingKind = iota
	LeakReturnPartial
	// LeakExit: control falls off the end of the function while the object
	// is (or may be) live.
	LeakExit
	LeakExitPartial
	// UseAfterRelease: a ProtoUse runs with the object already released.
	UseAfterRelease
	UseAfterReleasePartial
	// DoubleRelease: a ProtoRelease runs with the object already released.
	DoubleRelease
	DoubleReleasePartial
	// DeferDoubleRelease: the function exits (return or fall-off) with the
	// object explicitly released while a deferred release is still armed:
	// the defer will release it a second time.
	DeferDoubleRelease
	DeferDoubleReleasePartial
)

// ProtoFinding is one protocol violation for the checked object.
type ProtoFinding struct {
	Pos  token.Pos
	Kind ProtoFindingKind
	Name string // the offending call's name ("" for leak findings)
}

// CheckProtocol runs the lifecycle analysis for one object over a function
// CFG. events maps CallExpr positions to their effect on the object; only
// *ast.CallExpr nodes are consulted, so positions shared with enclosing
// expressions are unambiguous. exitPos is where fall-off-the-end leaks are
// reported (the body's closing brace). A deferred release is modeled as a
// ProtoDeferRelease event at its registration point (the armed states above)
// rather than exempting the object: a defer inside one branch covers only
// the paths that execute it. Deferred *uses* must not appear in events —
// they run at exit, after every observable program point.
func CheckProtocol(g *CFG, events map[token.Pos]ProtoEvent, exitPos token.Pos) []ProtoFinding {
	spec := FlowSpec[ObjState]{
		Bottom:   func() ObjState { return 0 },
		Boundary: func() ObjState { return StateNotYet },
		Join:     func(a, b ObjState) ObjState { return a | b },
		Equal:    func(a, b ObjState) bool { return a == b },
		Transfer: func(b *Block, in ObjState) ObjState {
			return walkProtocol(b, in, events, nil)
		},
	}
	res := ForwardSolve(g, spec)

	var findings []ProtoFinding
	report := func(f ProtoFinding) { findings = append(findings, f) }
	for _, b := range g.Blocks {
		if res.In[b] == 0 {
			continue // unreachable: nothing executes here
		}
		walkProtocol(b, res.In[b], events, report)
	}

	// Fall-off-the-end: join the out-states of Exit predecessors that do not
	// end in a return (returns were diagnosed at their own statements).
	var fallOff ObjState
	for _, p := range g.Exit.Preds {
		if p.ReturnStmt() == nil {
			fallOff |= res.Out[p]
		}
	}
	if fallOff&StateLive != 0 {
		kind := LeakExitPartial
		if fallOff == StateLive {
			kind = LeakExit
		}
		report(ProtoFinding{Pos: exitPos, Kind: kind})
	}
	if fallOff&StateReleasedArmed != 0 {
		kind := DeferDoubleReleasePartial
		if fallOff == StateReleasedArmed {
			kind = DeferDoubleRelease
		}
		report(ProtoFinding{Pos: exitPos, Kind: kind})
	}
	return findings
}

// walkProtocol applies the block's events to st in execution order; with a
// non-nil report callback it also emits findings (the post-fixpoint
// diagnosis pass reuses the exact transfer the solver ran).
func walkProtocol(b *Block, st ObjState, events map[token.Pos]ProtoEvent, report func(ProtoFinding)) ObjState {
	for _, n := range b.Nodes {
		InspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			ev, ok := events[call.Pos()]
			if !ok {
				return true
			}
			switch ev.Kind {
			case ProtoAcquire:
				st = StateLive
			case ProtoRelease:
				if report != nil && st&releasedAny != 0 {
					kind := DoubleReleasePartial
					if st&^releasedAny == 0 {
						kind = DoubleRelease
					}
					report(ProtoFinding{Pos: call.Pos(), Kind: kind, Name: ev.Name})
				}
				// Per-state transition: an armed defer stays armed through
				// the explicit release — it will fire again at exit.
				var next ObjState
				if st&(StateNotYet|StateLive|StateReleased) != 0 {
					next |= StateReleased
				}
				if st&(StateLiveArmed|StateReleasedArmed) != 0 {
					next |= StateReleasedArmed
				}
				st = next
			case ProtoDeferRelease:
				var next ObjState
				if st&StateNotYet != 0 {
					next |= StateNotYet
				}
				if st&liveAny != 0 {
					next |= StateLiveArmed
				}
				if st&releasedAny != 0 {
					next |= StateReleasedArmed
				}
				st = next
			case ProtoUse:
				if report != nil && st&releasedAny != 0 {
					kind := UseAfterReleasePartial
					if st&^releasedAny == 0 {
						kind = UseAfterRelease
					}
					report(ProtoFinding{Pos: call.Pos(), Kind: kind, Name: ev.Name})
				}
			}
			return true
		})
		// The return's result expressions evaluate above; only then does the
		// statement leave the function with whatever is still live.
		if ret, ok := n.(*ast.ReturnStmt); ok && report != nil {
			if st&StateLive != 0 {
				kind := LeakReturnPartial
				if st == StateLive {
					kind = LeakReturn
				}
				report(ProtoFinding{Pos: ret.Pos(), Kind: kind})
			}
			if st&StateReleasedArmed != 0 {
				kind := DeferDoubleReleasePartial
				if st == StateReleasedArmed {
					kind = DeferDoubleRelease
				}
				report(ProtoFinding{Pos: ret.Pos(), Kind: kind})
			}
		}
	}
	return st
}
