package framework

// protocol.go is the shared acquire/release lifecycle checker built on the
// CFG and the dataflow solver. arenasafe (getArena/putArena, mark/release)
// and accown (NewAcc/Release) enforce the same shape of protocol: an object
// acquired at one call site must be released on every path out of the
// function, must not be used after its release, and must not be released
// twice. The checker runs one forward powerset-lattice analysis per object:
// the fact is the set of lifecycle states the object may be in at a program
// point, so "released on one branch only" shows up as {Live, Released} at
// the merge and a loop back edge carries {Released} into the next
// iteration's uses.

import (
	"go/ast"
	"go/token"
)

// ObjState is a set of lifecycle states (a powerset lattice element; join is
// set union).
type ObjState uint8

const (
	// StateNotYet: execution has not passed the acquire site (also the state
	// after a scope ends, e.g. a per-iteration acquire before its redefinition).
	StateNotYet ObjState = 1 << iota
	// StateLive: acquired and not yet released — the object owes a release.
	StateLive
	// StateReleased: released; further uses and releases are protocol errors.
	StateReleased
)

// ProtoEventKind classifies how a call site affects the tracked object.
type ProtoEventKind int

const (
	// ProtoAcquire (re)initializes the object: NewAcc(), getArena(), mark().
	ProtoAcquire ProtoEventKind = iota
	// ProtoRelease ends the obligation: Release(), putArena(), release(m).
	ProtoRelease
	// ProtoUse is any other operation that requires the object to be live.
	ProtoUse
)

// ProtoEvent is one call site affecting the tracked object, keyed by the
// CallExpr's position (see CheckProtocol).
type ProtoEvent struct {
	Kind ProtoEventKind
	Name string // call name, echoed in findings
}

// ProtoFindingKind classifies a protocol violation. "Partial" means the
// violation happens on some but not all executions reaching the point (a
// branch or loop iteration); the non-partial variants hold on every path.
type ProtoFindingKind int

const (
	// LeakReturn: a return statement executes while the object is live.
	LeakReturn ProtoFindingKind = iota
	LeakReturnPartial
	// LeakExit: control falls off the end of the function while the object
	// is (or may be) live.
	LeakExit
	LeakExitPartial
	// UseAfterRelease: a ProtoUse runs with the object already released.
	UseAfterRelease
	UseAfterReleasePartial
	// DoubleRelease: a ProtoRelease runs with the object already released.
	DoubleRelease
	DoubleReleasePartial
)

// ProtoFinding is one protocol violation for the checked object.
type ProtoFinding struct {
	Pos  token.Pos
	Kind ProtoFindingKind
	Name string // the offending call's name ("" for leak findings)
}

// CheckProtocol runs the lifecycle analysis for one object over a function
// CFG. events maps CallExpr positions to their effect on the object; only
// *ast.CallExpr nodes are consulted, so positions shared with enclosing
// expressions are unambiguous. exitPos is where fall-off-the-end leaks are
// reported (the body's closing brace). Deferred calls must not appear in
// events — a deferred release covers every path by construction, so callers
// exempt such objects before invoking the checker.
func CheckProtocol(g *CFG, events map[token.Pos]ProtoEvent, exitPos token.Pos) []ProtoFinding {
	spec := FlowSpec[ObjState]{
		Bottom:   func() ObjState { return 0 },
		Boundary: func() ObjState { return StateNotYet },
		Join:     func(a, b ObjState) ObjState { return a | b },
		Equal:    func(a, b ObjState) bool { return a == b },
		Transfer: func(b *Block, in ObjState) ObjState {
			return walkProtocol(b, in, events, nil)
		},
	}
	res := ForwardSolve(g, spec)

	var findings []ProtoFinding
	report := func(f ProtoFinding) { findings = append(findings, f) }
	for _, b := range g.Blocks {
		if res.In[b] == 0 {
			continue // unreachable: nothing executes here
		}
		walkProtocol(b, res.In[b], events, report)
	}

	// Fall-off-the-end: join the out-states of Exit predecessors that do not
	// end in a return (returns were diagnosed at their own statements).
	var fallOff ObjState
	for _, p := range g.Exit.Preds {
		if p.ReturnStmt() == nil {
			fallOff |= res.Out[p]
		}
	}
	if fallOff&StateLive != 0 {
		kind := LeakExitPartial
		if fallOff == StateLive {
			kind = LeakExit
		}
		report(ProtoFinding{Pos: exitPos, Kind: kind})
	}
	return findings
}

// walkProtocol applies the block's events to st in execution order; with a
// non-nil report callback it also emits findings (the post-fixpoint
// diagnosis pass reuses the exact transfer the solver ran).
func walkProtocol(b *Block, st ObjState, events map[token.Pos]ProtoEvent, report func(ProtoFinding)) ObjState {
	for _, n := range b.Nodes {
		InspectShallow(n, func(m ast.Node) bool {
			call, ok := m.(*ast.CallExpr)
			if !ok {
				return true
			}
			ev, ok := events[call.Pos()]
			if !ok {
				return true
			}
			switch ev.Kind {
			case ProtoAcquire:
				st = StateLive
			case ProtoRelease:
				if report != nil && st&StateReleased != 0 {
					kind := DoubleReleasePartial
					if st == StateReleased {
						kind = DoubleRelease
					}
					report(ProtoFinding{Pos: call.Pos(), Kind: kind, Name: ev.Name})
				}
				st = StateReleased
			case ProtoUse:
				if report != nil && st&StateReleased != 0 {
					kind := UseAfterReleasePartial
					if st == StateReleased {
						kind = UseAfterRelease
					}
					report(ProtoFinding{Pos: call.Pos(), Kind: kind, Name: ev.Name})
				}
			}
			return true
		})
		// The return's result expressions evaluate above; only then does the
		// statement leave the function with whatever is still live.
		if ret, ok := n.(*ast.ReturnStmt); ok && report != nil && st&StateLive != 0 {
			kind := LeakReturnPartial
			if st == StateLive {
				kind = LeakReturn
			}
			report(ProtoFinding{Pos: ret.Pos(), Kind: kind})
		}
	}
	return st
}
