package framework

// interval.go is the value-range abstract-interpretation layer: an interval
// lattice over unsigned 64-bit values, an abstract evaluator for Go
// expressions with go/constant folding and math/bits contracts, branch
// condition refinement (the `if x >= twoP { x -= twoP }` conditional-subtract
// idiom of the Harvey lazy NTT kernels), and a forward solver with widening
// and bounded narrowing on top of the generic worklist engine in dataflow.go.
//
// Semantics. An Interval [Lo, Hi] attached to an expression claims that every
// run-time value of that expression, as a mathematical integer, lies in
// [Lo, Hi]. For unsigned-typed expressions the full interval [0, 2^64-1] is a
// trivially true claim; for signed-typed expressions the full interval means
// "no claim" (the value may be negative), and signed expressions only ever
// carry a non-full interval when the analysis can prove the value
// non-negative (constants, len results, loop counters started at zero).
// Refinement and arithmetic are careful never to manufacture a claim from a
// signed no-claim operand.
//
// Arithmetic on unsigned operands tracks wraparound: when an add, subtract,
// or multiply may exceed the uint64 range the result degrades to the full
// interval and the client's OnWrap hook is told (possible vs. definite). A
// definite full-range wrap of a subtraction is still represented exactly —
// the wrapped image of a contiguous range is contiguous — because the
// `x - y + 2^64` pattern is well defined; clients decide whether it is a bug.
//
// The environment maps *paths* — a variable, a variable's field, or a
// constant index into a package-level table, e.g. `u`, `pr.p`,
// `nttPrimes[0].p` — to intervals, with strong updates on assignment. Slice
// and array element contents are deliberately not tracked: clients supply
// element contracts through the Elem hook and observe element stores through
// StoreElem, which is exactly the shape a lazy-buffer proof needs (loads
// assume the buffer invariant, stores must re-establish it).

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"math/bits"
	"strconv"
)

const maxUint64 = ^uint64(0)

// maxInt63 bounds values produced by len/cap and non-negative signed claims.
const maxInt63 = uint64(1)<<63 - 1

// Interval is a closed interval of mathematical integers representable in
// uint64. The empty interval (Lo > Hi) is the lattice bottom; [0, 2^64-1] is
// the top.
type Interval struct {
	Lo, Hi uint64
}

// EmptyInterval returns the bottom element.
func EmptyInterval() Interval { return Interval{1, 0} }

// FullInterval returns the top element [0, 2^64-1].
func FullInterval() Interval { return Interval{0, maxUint64} }

// PointInterval returns the singleton [v, v].
func PointInterval(v uint64) Interval { return Interval{v, v} }

// NewInterval returns [lo, hi]; lo > hi yields the empty interval.
func NewInterval(lo, hi uint64) Interval { return Interval{lo, hi} }

// IsEmpty reports whether the interval contains no values.
func (iv Interval) IsEmpty() bool { return iv.Lo > iv.Hi }

// IsFull reports whether the interval is [0, 2^64-1].
func (iv Interval) IsFull() bool { return iv.Lo == 0 && iv.Hi == maxUint64 }

// Single returns the interval's value when it is a singleton.
func (iv Interval) Single() (uint64, bool) { return iv.Lo, iv.Lo == iv.Hi }

// Contains reports whether v lies in the interval.
func (iv Interval) Contains(v uint64) bool { return iv.Lo <= v && v <= iv.Hi }

// Join is the lattice least upper bound (interval hull).
func (iv Interval) Join(o Interval) Interval {
	if iv.IsEmpty() {
		return o
	}
	if o.IsEmpty() {
		return iv
	}
	return Interval{min64(iv.Lo, o.Lo), max64(iv.Hi, o.Hi)}
}

// Meet is the lattice greatest lower bound (intersection).
func (iv Interval) Meet(o Interval) Interval {
	if iv.IsEmpty() || o.IsEmpty() {
		return EmptyInterval()
	}
	return Interval{max64(iv.Lo, o.Lo), min64(iv.Hi, o.Hi)}
}

// Widen extrapolates an unstable bound to the lattice extreme: a lower bound
// still descending goes to 0, an upper bound still ascending to 2^64-1. The
// receiver is the previous iterate, next the new one; each bound can move at
// most once, which is what makes loop-carried interval analysis terminate.
func (iv Interval) Widen(next Interval) Interval {
	if iv.IsEmpty() {
		return next
	}
	if next.IsEmpty() {
		return iv
	}
	w := iv
	if next.Lo < iv.Lo {
		w.Lo = 0
	}
	if next.Hi > iv.Hi {
		w.Hi = maxUint64
	}
	return w
}

// Equal reports lattice equality (all empty intervals are identified).
func (iv Interval) Equal(o Interval) bool {
	if iv.IsEmpty() && o.IsEmpty() {
		return true
	}
	return iv == o
}

// String renders the interval for diagnostics: "[lo, hi]", "⊥", or "⊤".
func (iv Interval) String() string {
	switch {
	case iv.IsEmpty():
		return "⊥"
	case iv.IsFull():
		return "⊤"
	case iv.Lo == iv.Hi:
		return strconv.FormatUint(iv.Lo, 10)
	default:
		return fmt.Sprintf("[%d, %d]", iv.Lo, iv.Hi)
	}
}

func min64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}

// ValKey names one tracked path: a variable, optionally narrowed to a
// constant element index and/or a single field. `u` is {Obj: u, Index: -1};
// `pr.p` is {Obj: pr, Index: -1, Field: "p"}; `nttPrimes[0].p` is
// {Obj: nttPrimes, Index: 0, Field: "p"}.
type ValKey struct {
	Obj   types.Object
	Index int // constant element index, -1 when absent
	Field string
}

// KeyOf returns the key of the bare variable obj.
func KeyOf(obj types.Object) ValKey { return ValKey{Obj: obj, Index: -1} }

// WithField narrows the key to one named field.
func (k ValKey) WithField(name string) ValKey { k.Field = name; return k }

// AtIndex narrows the key to one constant element index.
func (k ValKey) AtIndex(i int) ValKey { k.Index = i; return k }

// IntervalEnv maps tracked paths to intervals at one program point. A path
// absent from the map is unconstrained (top). The unreachable environment is
// the flow-lattice bottom: the fact of a program point no execution reaches.
type IntervalEnv struct {
	vals        map[ValKey]Interval
	aliases     map[types.Object]types.Object // p := &global: reads of p.f read global.f
	unreachable bool
}

// NewIntervalEnv returns an empty reachable environment.
func NewIntervalEnv() *IntervalEnv {
	return &IntervalEnv{vals: map[ValKey]Interval{}, aliases: map[types.Object]types.Object{}}
}

// UnreachableEnv returns the flow bottom.
func UnreachableEnv() *IntervalEnv { return &IntervalEnv{unreachable: true} }

// IsUnreachable reports whether no execution reaches this point.
func (e *IntervalEnv) IsUnreachable() bool { return e.unreachable }

// Get returns the interval of a tracked path, resolving the base variable
// through recorded pointer aliases.
func (e *IntervalEnv) Get(k ValKey) (Interval, bool) {
	if e.unreachable {
		return EmptyInterval(), true
	}
	if a, ok := e.aliases[k.Obj]; ok {
		k.Obj = a
	}
	iv, ok := e.vals[k]
	return iv, ok
}

// Set records the interval of a path (strong update). Setting the full
// interval removes the entry on unsigned paths — absent means top.
func (e *IntervalEnv) Set(k ValKey, iv Interval) {
	if e.unreachable {
		return
	}
	if a, ok := e.aliases[k.Obj]; ok {
		k.Obj = a
	}
	if iv.IsFull() {
		delete(e.vals, k)
		return
	}
	e.vals[k] = iv
}

// SetAlias records that reads and writes through from resolve to to, as
// established by `from := &to`.
func (e *IntervalEnv) SetAlias(from, to types.Object) {
	if e.unreachable {
		return
	}
	e.aliases[from] = to
}

// DropBase forgets every path rooted at obj — the havoc applied when a call
// may mutate obj through a pointer.
func (e *IntervalEnv) DropBase(obj types.Object) {
	if e.unreachable {
		return
	}
	if a, ok := e.aliases[obj]; ok {
		obj = a
	}
	for k := range e.vals {
		if k.Obj == obj {
			delete(e.vals, k)
		}
	}
}

// Clone returns an independent copy.
func (e *IntervalEnv) Clone() *IntervalEnv {
	if e.unreachable {
		return UnreachableEnv()
	}
	c := &IntervalEnv{
		vals:    make(map[ValKey]Interval, len(e.vals)),
		aliases: make(map[types.Object]types.Object, len(e.aliases)),
	}
	for k, v := range e.vals {
		c.vals[k] = v
	}
	for k, v := range e.aliases {
		c.aliases[k] = v
	}
	return c
}

// JoinEnv is the flow join: pointwise interval hull, keeping only paths
// constrained on both sides (absent = top is the identity direction) and
// aliases recorded identically on both.
func JoinEnv(a, b *IntervalEnv) *IntervalEnv {
	if a.unreachable {
		return b.Clone()
	}
	if b.unreachable {
		return a.Clone()
	}
	j := NewIntervalEnv()
	for k, av := range a.vals {
		if bv, ok := b.vals[k]; ok {
			iv := av.Join(bv)
			if !iv.IsFull() {
				j.vals[k] = iv
			}
		}
	}
	for k, at := range a.aliases {
		if bt, ok := b.aliases[k]; ok && at == bt {
			j.aliases[k] = at
		}
	}
	return j
}

// EqualEnv detects the flow fixpoint.
func EqualEnv(a, b *IntervalEnv) bool {
	if a.unreachable || b.unreachable {
		return a.unreachable == b.unreachable
	}
	if len(a.vals) != len(b.vals) || len(a.aliases) != len(b.aliases) {
		return false
	}
	for k, av := range a.vals {
		if bv, ok := b.vals[k]; !ok || !av.Equal(bv) {
			return false
		}
	}
	for k, at := range a.aliases {
		if bt, ok := b.aliases[k]; !ok || at != bt {
			return false
		}
	}
	return true
}

// WidenEnv extrapolates a's entries against the newer iterate b; paths
// constrained only on one side go to top (dropped).
func WidenEnv(a, b *IntervalEnv) *IntervalEnv {
	if a.unreachable {
		return b.Clone()
	}
	if b.unreachable {
		return a.Clone()
	}
	w := NewIntervalEnv()
	for k, av := range a.vals {
		if bv, ok := b.vals[k]; ok {
			iv := av.Widen(bv)
			if !iv.IsFull() {
				w.vals[k] = iv
			}
		}
	}
	for k, at := range a.aliases {
		if bt, ok := b.aliases[k]; ok && at == bt {
			w.aliases[k] = at
		}
	}
	return w
}

// IntervalEval evaluates expressions to intervals under an environment. The
// hooks let a client (an analyzer) supply domain contracts and observe the
// obligations the engine cannot discharge itself. All hooks may be nil.
type IntervalEval struct {
	Info *types.Info

	// Call supplies contracts for calls: given the call and the already
	// evaluated argument intervals it returns one interval per result and
	// handled=true. Unhandled calls fall back to builtin and math/bits
	// contracts, then to interprocedural summary return bounds, then top.
	// The hook runs during both solving and reporting — use Reporting to
	// emit diagnostics only once.
	Call func(call *ast.CallExpr, args []Interval, env *IntervalEnv) (results []Interval, handled bool)

	// Elem supplies the element contract of a slice/array-valued expression,
	// consulted for index loads the environment cannot key and for
	// range-statement value bindings. site is the loading IndexExpr, or nil
	// for a range binding.
	Elem func(base ast.Expr, site *ast.IndexExpr) (Interval, bool)

	// StoreElem observes a store through an index expression the
	// environment cannot key, with the stored value's interval. Called only
	// while Reporting.
	StoreElem func(site *ast.IndexExpr, v Interval, env *IntervalEnv)

	// StoreKey observes every keyed store (locals, fields, constant-indexed
	// globals). Called only while Reporting.
	StoreKey func(site ast.Expr, key ValKey, v Interval, env *IntervalEnv)

	// OnWrap observes an unsigned add/sub/mul whose result may (or
	// definitely does) leave the uint64 range. Called only while Reporting.
	OnWrap func(site ast.Expr, op token.Token, definite bool)

	// Summaries, when set, supplies interprocedural return bounds for calls
	// no other contract covers.
	Summaries *Summaries

	// rangeBind maps the Key/Value ident nodes of range statements (the
	// nodes a range.head CFG block carries) to the ranged-over expression.
	rangeBind map[ast.Node]rangeRole

	reporting bool
}

type rangeRole struct {
	x     ast.Expr // the ranged-over expression
	isKey bool
}

// Reporting reports whether the engine is in its diagnostic pass; hooks that
// emit findings should stay silent while it is false (the solver calls them
// repeatedly on the way to the fixpoint).
func (ev *IntervalEval) Reporting() bool { return ev.reporting }

// BindRanges records the range statements of body so the solver can bind
// their key/value idents when it reaches a range head. Call once per solved
// body (function or function literal); nested literals need their own call.
func (ev *IntervalEval) BindRanges(body ast.Node) {
	if ev.rangeBind == nil {
		ev.rangeBind = map[ast.Node]rangeRole{}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if rs, ok := n.(*ast.RangeStmt); ok {
			if rs.Key != nil {
				ev.rangeBind[rs.Key] = rangeRole{x: rs.X, isKey: true}
			}
			if rs.Value != nil {
				ev.rangeBind[rs.Value] = rangeRole{x: rs.X}
			}
		}
		return true
	})
}

func (ev *IntervalEval) typeOf(e ast.Expr) types.Type {
	if tv, ok := ev.Info.Types[e]; ok {
		return tv.Type
	}
	return nil
}

func isUnsignedType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsUnsigned != 0
}

func isPackageLevel(obj types.Object) bool {
	return obj != nil && obj.Pkg() != nil && obj.Parent() == obj.Pkg().Scope()
}

func isIntegerType(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0
}

// ConstUint folds a go/constant value to uint64 when it is a non-negative
// integer representable in 64 bits. Analyzers use it to fold constants
// outside the interval engine proper (prime-table collection, tag pairing).
func ConstUint(v constant.Value) (uint64, bool) {
	iv, ok := constInterval(v)
	if !ok {
		return 0, false
	}
	return iv.Lo, true
}

// constInterval converts a constant value to a singleton interval when it is
// a non-negative integer representable in uint64.
func constInterval(v constant.Value) (Interval, bool) {
	if v == nil {
		return FullInterval(), false
	}
	v = constant.ToInt(v)
	if v.Kind() != constant.Int || constant.Sign(v) < 0 {
		return FullInterval(), false
	}
	u, ok := constant.Uint64Val(v)
	if !ok {
		return FullInterval(), false
	}
	return PointInterval(u), true
}

// Key resolves an lvalue-ish expression to its tracked path, when it has
// one: an identifier, a single-level field selection, a constant index, or a
// pointer dereference of any of those.
func (ev *IntervalEval) Key(e ast.Expr, env *IntervalEnv) (ValKey, bool) {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		obj := ev.Info.ObjectOf(e)
		if obj == nil {
			return ValKey{}, false
		}
		if _, isVar := obj.(*types.Var); !isVar {
			return ValKey{}, false
		}
		return KeyOf(obj), true
	case *ast.StarExpr:
		return ev.Key(e.X, env)
	case *ast.SelectorExpr:
		base, ok := ev.Key(e.X, env)
		if !ok || base.Field != "" {
			return ValKey{}, false
		}
		return base.WithField(e.Sel.Name), true
	case *ast.IndexExpr:
		// Constant indices are tracked only into package-level tables
		// (nttPrimes[0].p): local slices and arrays stay element-contract
		// territory, so stores to them reach the StoreElem obligation hook
		// instead of silently becoming strong updates.
		base, ok := ev.Key(e.X, env)
		if !ok || base.Field != "" || base.Index != -1 || !isPackageLevel(base.Obj) {
			return ValKey{}, false
		}
		tv, ok := ev.Info.Types[e.Index]
		if !ok || tv.Value == nil {
			return ValKey{}, false
		}
		iv, ok := constInterval(tv.Value)
		if !ok || iv.Lo > uint64(1)<<31 {
			return ValKey{}, false
		}
		return base.AtIndex(int(iv.Lo)), true
	}
	return ValKey{}, false
}

// Eval computes the interval of e under env. The result is a genuine claim
// for unsigned-typed expressions; for signed-typed expressions a full
// interval means "no claim" (see the package comment).
func (ev *IntervalEval) Eval(e ast.Expr, env *IntervalEnv) Interval {
	e = ast.Unparen(e)
	if tv, ok := ev.Info.Types[e]; ok && tv.Value != nil {
		if iv, ok := constInterval(tv.Value); ok {
			return iv
		}
		return FullInterval()
	}

	switch e := e.(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr:
		if k, ok := ev.Key(e, env); ok {
			if iv, ok := env.Get(k); ok {
				return iv
			}
		}
		return FullInterval()

	case *ast.IndexExpr:
		if k, ok := ev.Key(e, env); ok {
			if iv, ok := env.Get(k); ok {
				return iv
			}
		}
		ev.Eval(e.Index, env)
		if ev.Elem != nil {
			if iv, ok := ev.Elem(e.X, e); ok {
				return iv
			}
		}
		return FullInterval()

	case *ast.BinaryExpr:
		return ev.evalBinary(e, env)

	case *ast.UnaryExpr:
		x := ev.Eval(e.X, env)
		switch e.Op {
		case token.ADD:
			return x
		case token.SUB:
			// 0 - x on unsigned wraps unless x == 0.
			if isUnsignedType(ev.typeOf(e)) {
				if v, ok := x.Single(); ok && v == 0 {
					return PointInterval(0)
				}
				ev.wrap(e, token.SUB, x.Lo > 0)
			}
			return FullInterval()
		default:
			// ^x, &x, <-ch: no numeric claim.
			return FullInterval()
		}

	case *ast.CallExpr:
		res := ev.EvalCall(e, env)
		if len(res) == 1 {
			return res[0]
		}
		return FullInterval()
	}
	return FullInterval()
}

func (ev *IntervalEval) wrap(e ast.Expr, op token.Token, definite bool) {
	if ev.reporting && ev.OnWrap != nil {
		ev.OnWrap(e, op, definite)
	}
}

func (ev *IntervalEval) evalBinary(e *ast.BinaryExpr, env *IntervalEnv) Interval {
	x := ev.Eval(e.X, env)
	y := ev.Eval(e.Y, env)
	t := ev.typeOf(e)

	if !isIntegerType(t) {
		return FullInterval()
	}
	unsigned := isUnsignedType(t)

	switch e.Op {
	case token.ADD:
		if unsigned {
			hi, hiOver := addOver(x.Hi, y.Hi)
			lo, loOver := addOver(x.Lo, y.Lo)
			switch {
			case !hiOver:
				return Interval{lo, hi}
			case loOver:
				ev.wrap(e, token.ADD, true)
				return Interval{lo, hi} // both ends wrapped: contiguous image
			default:
				ev.wrap(e, token.ADD, false)
				return FullInterval()
			}
		}
		// Signed: only claim when both operands claim and the sum fits the
		// non-negative half.
		if !x.IsFull() && !y.IsFull() && x.Hi <= maxInt63 && y.Hi <= maxInt63-x.Hi {
			return Interval{x.Lo + y.Lo, x.Hi + y.Hi}
		}
		return FullInterval()

	case token.SUB:
		switch {
		case x.Lo >= y.Hi:
			return Interval{x.Lo - y.Hi, x.Hi - y.Lo}
		case unsigned && x.Hi < y.Lo:
			ev.wrap(e, token.SUB, true)
			return Interval{x.Lo - y.Hi, x.Hi - y.Lo} // both ends wrapped
		case unsigned:
			ev.wrap(e, token.SUB, false)
			return FullInterval()
		default:
			return FullInterval() // signed difference may be negative: no claim
		}

	case token.MUL:
		hiHi, hiLo := bits.Mul64(x.Hi, y.Hi)
		if unsigned {
			if hiHi == 0 {
				return Interval{x.Lo * y.Lo, hiLo}
			}
			loHi, _ := bits.Mul64(x.Lo, y.Lo)
			ev.wrap(e, token.MUL, loHi != 0)
			return FullInterval()
		}
		if !x.IsFull() && !y.IsFull() && hiHi == 0 && hiLo <= maxInt63 {
			return Interval{x.Lo * y.Lo, hiLo}
		}
		return FullInterval()

	case token.QUO:
		yLo := max64(y.Lo, 1) // y == 0 panics; surviving executions have y >= 1
		if y.Hi == 0 {
			return FullInterval()
		}
		if unsigned || !x.IsFull() {
			return Interval{x.Lo / y.Hi, x.Hi / yLo}
		}
		return FullInterval()

	case token.REM:
		if y.Hi == 0 {
			return FullInterval()
		}
		if unsigned || !x.IsFull() {
			if x.Hi < max64(y.Lo, 1) {
				return x // dividend already below every divisor
			}
			return Interval{0, y.Hi - 1}
		}
		return FullInterval()

	case token.AND:
		if unsigned || (!x.IsFull() && !y.IsFull()) {
			return Interval{0, min64(x.Hi, y.Hi)}
		}
		return FullInterval()

	case token.OR, token.XOR:
		if unsigned || (!x.IsFull() && !y.IsFull()) {
			n := bits.Len64(x.Hi | y.Hi)
			if n >= 64 {
				return FullInterval()
			}
			return Interval{0, uint64(1)<<n - 1}
		}
		return FullInterval()

	case token.SHL:
		if s, ok := y.Single(); ok && s < 64 {
			if claim := unsigned || !x.IsFull(); claim && x.Hi <= maxUint64>>s {
				return Interval{x.Lo << s, x.Hi << s}
			}
		}
		return FullInterval()

	case token.SHR:
		if unsigned || !x.IsFull() {
			sLo, sHi := y.Lo, min64(y.Hi, 63)
			if y.Lo > 63 {
				return PointInterval(0)
			}
			return Interval{x.Lo >> sHi, x.Hi >> sLo}
		}
		return FullInterval()
	}
	return FullInterval()
}

func addOver(a, b uint64) (uint64, bool) {
	s, c := bits.Add64(a, b, 0)
	return s, c != 0
}

// EvalCall evaluates a call (or conversion) to one interval per result.
func (ev *IntervalEval) EvalCall(call *ast.CallExpr, env *IntervalEnv) []Interval {
	// Conversion: T(x) keeps x's claim when it provably fits T.
	if tv, ok := ev.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			return []Interval{FullInterval()}
		}
		x := ev.Eval(call.Args[0], env)
		return []Interval{convertInterval(x, ev.typeOf(call.Args[0]), tv.Type)}
	}

	args := make([]Interval, len(call.Args))
	for i, a := range call.Args {
		args[i] = ev.Eval(a, env)
	}

	if ev.Call != nil {
		if res, handled := ev.Call(call, args, env); handled {
			return res
		}
	}

	if res, ok := ev.stdCall(call, args); ok {
		return res
	}

	if ev.Summaries != nil {
		if sum := ev.Summaries.Callee(ev.Info, call); sum != nil && !sum.Returns.IsFull() && !sum.Returns.IsEmpty() {
			return []Interval{sum.Returns}
		}
	}

	return ev.topResults(call)
}

func (ev *IntervalEval) topResults(call *ast.CallExpr) []Interval {
	if t := ev.typeOf(call); t != nil {
		if tup, ok := t.(*types.Tuple); ok {
			res := make([]Interval, tup.Len())
			for i := range res {
				res[i] = FullInterval()
			}
			return res
		}
	}
	return []Interval{FullInterval()}
}

func convertInterval(x Interval, from, to types.Type) Interval {
	if x.IsEmpty() {
		return x
	}
	b, ok := to.Underlying().(*types.Basic)
	if !ok || b.Info()&types.IsInteger == 0 || !isIntegerType(from) {
		return FullInterval()
	}
	// A signed source with no claim may be negative: its conversion image is
	// unknown.
	if !isUnsignedType(from) && x.IsFull() {
		return FullInterval()
	}
	if b.Info()&types.IsUnsigned != 0 {
		var width uint
		switch b.Kind() {
		case types.Uint8:
			width = 8
		case types.Uint16:
			width = 16
		case types.Uint32:
			width = 32
		case types.Uint:
			width = 32 // sound on both 32- and 64-bit targets
		default: // Uint64, Uintptr
			width = 64
		}
		if width == 64 || x.Hi < uint64(1)<<width {
			return x
		}
		return FullInterval()
	}
	// Signed target: the claim survives when the value fits the
	// non-negative half.
	if x.Hi <= maxInt63 {
		return x
	}
	return FullInterval()
}

// stdCall covers the builtins and the math/bits multi-precision primitives
// the NTT kernels lean on. Like the rest of ftlint, matching is by bare
// callee name so import-free fixtures get the same contracts.
func (ev *IntervalEval) stdCall(call *ast.CallExpr, args []Interval) ([]Interval, bool) {
	id := CalleeIdent(call)
	if id == nil {
		return nil, false
	}
	switch id.Name {
	case "len", "cap":
		return []Interval{{0, maxInt63}}, true
	case "min":
		if len(args) > 0 {
			iv := args[0]
			for _, a := range args[1:] {
				iv = Interval{min64(iv.Lo, a.Lo), min64(iv.Hi, a.Hi)}
			}
			return []Interval{iv}, true
		}
	case "max":
		if len(args) > 0 {
			iv := args[0]
			for _, a := range args[1:] {
				iv = Interval{max64(iv.Lo, a.Lo), max64(iv.Hi, a.Hi)}
			}
			return []Interval{iv}, true
		}
	case "Mul64":
		if len(args) == 2 {
			hiLo, loLo := bits.Mul64(args[0].Lo, args[1].Lo)
			hiHi, _ := bits.Mul64(args[0].Hi, args[1].Hi)
			lo := FullInterval()
			_, aPt := args[0].Single()
			_, bPt := args[1].Single()
			if aPt && bPt {
				// Point operands: the full 128-bit product is known exactly.
				lo = PointInterval(loLo)
			}
			return []Interval{{hiLo, hiHi}, lo}, true
		}
	case "Add64":
		if len(args) == 3 {
			carryIn := min64(args[2].Hi, 1)
			lo, loOver := addOver(args[0].Lo, args[1].Lo)
			hi, hiOver := addOver(args[0].Hi, args[1].Hi)
			hi, hiOver2 := addOver(hi, carryIn)
			switch {
			case !hiOver && !hiOver2:
				return []Interval{{lo, hi}, PointInterval(0)}, true
			case loOver:
				return []Interval{{lo, hi}, PointInterval(1)}, true
			default:
				return []Interval{FullInterval(), {0, 1}}, true
			}
		}
	case "Sub64":
		if len(args) == 3 {
			if args[2].Hi == 0 && args[0].Lo >= args[1].Hi {
				return []Interval{{args[0].Lo - args[1].Hi, args[0].Hi - args[1].Lo}, PointInterval(0)}, true
			}
			return []Interval{FullInterval(), {0, 1}}, true
		}
	case "Div64":
		if len(args) == 3 {
			rem := FullInterval()
			if args[2].Hi > 0 {
				rem = Interval{0, args[2].Hi - 1}
			}
			return []Interval{FullInterval(), rem}, true
		}
	case "TrailingZeros64", "LeadingZeros64", "Len64", "OnesCount64":
		return []Interval{{0, 64}}, true
	}
	return nil, false
}

// Refine narrows env under the assumption that cond evaluates to truth,
// returning a fresh environment. It understands comparisons over tracked
// paths, negation, `a && b` (true side), and `a || b` (false side); an
// infeasible assumption yields the unreachable environment.
func (ev *IntervalEval) Refine(cond ast.Expr, truth bool, env *IntervalEnv) *IntervalEnv {
	if env.IsUnreachable() {
		return env
	}
	cond = ast.Unparen(cond)
	switch c := cond.(type) {
	case *ast.UnaryExpr:
		if c.Op == token.NOT {
			return ev.Refine(c.X, !truth, env)
		}
	case *ast.BinaryExpr:
		switch c.Op {
		case token.LAND:
			if truth {
				return ev.Refine(c.Y, true, ev.Refine(c.X, true, env))
			}
		case token.LOR:
			if !truth {
				return ev.Refine(c.Y, false, ev.Refine(c.X, false, env))
			}
		case token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
			op := c.Op
			if !truth {
				op = negateCmp(op)
			}
			return ev.refineCmp(c.X, op, c.Y, env)
		}
	}
	return env
}

func negateCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GEQ
	case token.LEQ:
		return token.GTR
	case token.GTR:
		return token.LEQ
	case token.GEQ:
		return token.LSS
	case token.EQL:
		return token.NEQ
	default:
		return token.EQL
	}
}

// refineCmp narrows the environment under the assumption `x op y`. Each side
// is narrowed only when the *other* side's interval is a usable claim — for
// signed expressions a full interval claims nothing, and a signed target is
// never narrowed from no-claim to claim (that would assert non-negativity
// the program never proved).
func (ev *IntervalEval) refineCmp(x ast.Expr, op token.Token, y ast.Expr, env *IntervalEnv) *IntervalEnv {
	out := env.Clone()
	ev.refineSide(x, op, y, out)
	ev.refineSide(y, flipCmp(op), x, out)
	return out
}

func flipCmp(op token.Token) token.Token {
	switch op {
	case token.LSS:
		return token.GTR
	case token.LEQ:
		return token.GEQ
	case token.GTR:
		return token.LSS
	case token.GEQ:
		return token.LEQ
	default:
		return op // EQL, NEQ are symmetric
	}
}

// refineSide narrows x's entry in env under `x op bound`, mutating env (and
// downgrading it to unreachable when the assumption is infeasible).
func (ev *IntervalEval) refineSide(x ast.Expr, op token.Token, bound ast.Expr, env *IntervalEnv) {
	if env.IsUnreachable() {
		return
	}
	k, ok := ev.Key(x, env)
	if !ok {
		return
	}
	bv := ev.Eval(bound, env)
	if bv.IsEmpty() {
		return
	}
	// A signed bound with no claim tells us nothing; an unsigned bound's
	// full interval is still the true claim [0, 2^64-1].
	if !isUnsignedType(ev.typeOf(bound)) && bv.IsFull() {
		return
	}
	xv := ev.Eval(x, env)
	signedTarget := !isUnsignedType(ev.typeOf(x))
	if signedTarget && xv.IsFull() {
		return // cannot conjure non-negativity for a signed unknown
	}

	var narrowed Interval
	switch op {
	case token.LSS:
		if bv.Hi == 0 {
			narrowed = EmptyInterval()
		} else {
			narrowed = xv.Meet(Interval{0, bv.Hi - 1})
		}
	case token.LEQ:
		narrowed = xv.Meet(Interval{0, bv.Hi})
	case token.GTR:
		if bv.Lo == maxUint64 {
			narrowed = EmptyInterval()
		} else {
			narrowed = xv.Meet(Interval{bv.Lo + 1, maxUint64})
		}
	case token.GEQ:
		narrowed = xv.Meet(Interval{bv.Lo, maxUint64})
	case token.EQL:
		narrowed = xv.Meet(bv)
	case token.NEQ:
		narrowed = xv
		if v, ok := bv.Single(); ok && !xv.IsEmpty() {
			switch {
			case xv.Lo == v && xv.Hi == v:
				narrowed = EmptyInterval()
			case xv.Lo == v:
				narrowed = Interval{v + 1, xv.Hi}
			case xv.Hi == v:
				narrowed = Interval{xv.Lo, v - 1}
			}
		}
	default:
		return
	}
	if narrowed.IsEmpty() {
		*env = *UnreachableEnv()
		return
	}
	env.Set(k, narrowed)
}

// IntervalAnalysis solves the interval dataflow problem of one function body
// on the generic worklist engine, with per-block widening after WidenAfter
// visits and a bounded narrowing sweep to claw back precision the widening
// gave up where branch conditions re-bound it.
type IntervalAnalysis struct {
	Eval *IntervalEval
	// WidenAfter is the visit count at which a block's input starts being
	// widened; 0 means the default (4).
	WidenAfter int
	// NarrowPasses bounds the post-fixpoint narrowing sweeps; 0 means the
	// default (2).
	NarrowPasses int
}

func (ia *IntervalAnalysis) widenAfter() int {
	if ia.WidenAfter > 0 {
		return ia.WidenAfter
	}
	return 4
}

func (ia *IntervalAnalysis) narrowPasses() int {
	if ia.NarrowPasses > 0 {
		return ia.NarrowPasses
	}
	return 2
}

// edgeTransfer refines the fact along condition-directed edges.
func (ia *IntervalAnalysis) edgeTransfer(from, to *Block, f *IntervalEnv) *IntervalEnv {
	if from.Branch == nil || f.IsUnreachable() || from.TrueSucc == from.FalseSucc {
		return f
	}
	switch to {
	case from.TrueSucc:
		return ia.Eval.Refine(from.Branch, true, f)
	case from.FalseSucc:
		return ia.Eval.Refine(from.Branch, false, f)
	}
	return f
}

// Solve runs the interval analysis over cfg with the entry environment seed
// (parameter and receiver contracts). The returned facts are block-entry and
// block-exit environments.
func (ia *IntervalAnalysis) Solve(cfg *CFG, seed *IntervalEnv) *FlowResult[*IntervalEnv] {
	visits := make(map[*Block]int, len(cfg.Blocks))
	prevIn := make(map[*Block]*IntervalEnv, len(cfg.Blocks))

	res := ForwardSolve(cfg, FlowSpec[*IntervalEnv]{
		Bottom:   func() *IntervalEnv { return UnreachableEnv() },
		Boundary: func() *IntervalEnv { return seed.Clone() },
		Join:     JoinEnv,
		Equal:    EqualEnv,
		Transfer: func(b *Block, in *IntervalEnv) *IntervalEnv {
			visits[b]++
			if visits[b] > ia.widenAfter() {
				if p := prevIn[b]; p != nil {
					in = WidenEnv(p, in)
				}
			}
			prevIn[b] = in
			return ia.transfer(b, in)
		},
		EdgeTransfer: ia.edgeTransfer,
	})

	// Narrowing: recompute inputs from the solved outputs without widening,
	// a bounded number of times. Each recomputed input is a sound fact (it
	// is the refined join of sound outputs), so stopping early is safe.
	for pass := 0; pass < ia.narrowPasses(); pass++ {
		changed := false
		for _, b := range cfg.Blocks {
			in := UnreachableEnv()
			if b == cfg.Entry {
				in = seed.Clone()
			}
			for _, p := range b.Preds {
				in = JoinEnv(in, ia.edgeTransfer(p, b, res.Out[p]))
			}
			out := ia.transfer(b, in)
			if !EqualEnv(in, res.In[b]) || !EqualEnv(out, res.Out[b]) {
				res.In[b] = in
				res.Out[b] = out
				changed = true
			}
		}
		if !changed {
			break
		}
	}
	return res
}

// Report replays every reachable block's transfer with the diagnostic hooks
// armed, using the solved entry facts.
func (ia *IntervalAnalysis) Report(cfg *CFG, res *FlowResult[*IntervalEnv]) {
	ia.Eval.reporting = true
	defer func() { ia.Eval.reporting = false }()
	for _, b := range cfg.Blocks {
		if b != cfg.Entry && len(b.Preds) == 0 {
			continue // dead code has no executions to diagnose
		}
		if res.In[b].IsUnreachable() {
			continue
		}
		ia.transfer(b, res.In[b])
	}
}

// transfer interprets one basic block.
func (ia *IntervalAnalysis) transfer(b *Block, in *IntervalEnv) *IntervalEnv {
	if in.IsUnreachable() {
		return in
	}
	env := in.Clone()
	for _, node := range b.Nodes {
		ia.node(node, env)
	}
	return env
}

func (ia *IntervalAnalysis) node(node ast.Node, env *IntervalEnv) {
	ev := ia.Eval
	switch n := node.(type) {
	case *ast.AssignStmt:
		ia.assignStmt(n, env)

	case *ast.DeclStmt:
		gd, ok := n.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			return
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				var iv Interval
				if i < len(vs.Values) {
					iv = ev.Eval(vs.Values[i], env)
				} else if obj := ev.Info.ObjectOf(name); obj != nil && isIntegerType(obj.Type()) {
					iv = PointInterval(0) // zero value
				} else {
					iv = FullInterval()
				}
				ia.assignTo(name, iv, nil, env)
			}
		}

	case *ast.IncDecStmt:
		x := ev.Eval(n.X, env)
		op := token.ADD
		if n.Tok == token.DEC {
			op = token.SUB
		}
		ia.assignTo(n.X, ia.arith(n.X, op, x, PointInterval(1)), nil, env)

	case *ast.ExprStmt:
		ia.evalForEffect(n.X, env)

	case *ast.ReturnStmt:
		for _, r := range n.Results {
			ev.Eval(r, env)
		}

	case *ast.SendStmt:
		ev.Eval(n.Value, env)

	case *ast.GoStmt:
		ia.havocCallArgs(n.Call, env)

	case *ast.DeferStmt:
		ia.evalForEffect(n.Call, env)

	case ast.Expr:
		// Condition expressions and range key/value binding idents.
		if role, ok := ev.rangeBind[n]; ok {
			iv := FullInterval()
			if role.isKey {
				iv = Interval{0, maxInt63} // indices are non-negative
			} else if ev.Elem != nil {
				if e, ok := ev.Elem(role.x, nil); ok {
					iv = e
				}
			}
			ia.assignTo(n, iv, nil, env)
			return
		}
		ev.Eval(n, env)
	}
}

// evalForEffect evaluates an expression statement, applying call havoc for
// calls no contract covers.
func (ia *IntervalAnalysis) evalForEffect(e ast.Expr, env *IntervalEnv) {
	if call, ok := ast.Unparen(e).(*ast.CallExpr); ok {
		args := make([]Interval, len(call.Args))
		for i, a := range call.Args {
			args[i] = ia.Eval.Eval(a, env)
		}
		if ia.Eval.Call != nil {
			if _, handled := ia.Eval.Call(call, args, env); handled {
				return // contract vouches the call leaves tracked paths alone
			}
		}
		ia.havocPointers(call, env)
		return
	}
	ia.Eval.Eval(e, env)
}

// havocCallArgs evaluates a call's arguments (so nested obligations are
// seen) and havocs pointer escapes, without consulting contracts — used for
// `go` statements whose call runs later.
func (ia *IntervalAnalysis) havocCallArgs(call *ast.CallExpr, env *IntervalEnv) {
	for _, a := range call.Args {
		ia.Eval.Eval(a, env)
	}
	ia.havocPointers(call, env)
}

// havocPointers forgets paths a call may mutate: any `&x` argument's base.
func (ia *IntervalAnalysis) havocPointers(call *ast.CallExpr, env *IntervalEnv) {
	for _, a := range call.Args {
		if u, ok := ast.Unparen(a).(*ast.UnaryExpr); ok && u.Op == token.AND {
			if k, ok := ia.Eval.Key(u.X, env); ok {
				env.DropBase(k.Obj)
			}
		}
	}
}

func (ia *IntervalAnalysis) assignStmt(n *ast.AssignStmt, env *IntervalEnv) {
	ev := ia.Eval
	switch {
	case n.Tok == token.DEFINE || n.Tok == token.ASSIGN:
		if len(n.Lhs) == len(n.Rhs) {
			// Evaluate all RHS first (tuple semantics), then assign.
			vals := make([]Interval, len(n.Rhs))
			for i, r := range n.Rhs {
				vals[i] = ev.Eval(r, env)
			}
			for i := range n.Lhs {
				ia.assignTo(n.Lhs[i], vals[i], n.Rhs[i], env)
			}
			return
		}
		if len(n.Rhs) == 1 {
			var vals []Interval
			if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
				vals = ev.EvalCall(call, env)
			}
			for i := range n.Lhs {
				iv := FullInterval()
				if i < len(vals) {
					iv = vals[i]
				}
				ia.assignTo(n.Lhs[i], iv, nil, env)
			}
		}
	default:
		// Compound assignment x op= e desugars to x = x op e.
		if len(n.Lhs) != 1 || len(n.Rhs) != 1 {
			return
		}
		op := compoundOp(n.Tok)
		x := ev.Eval(n.Lhs[0], env)
		y := ev.Eval(n.Rhs[0], env)
		ia.assignTo(n.Lhs[0], ia.arith(n.Lhs[0], op, x, y), nil, env)
	}
}

// arith applies a desugared binary op for compound assignment and inc/dec,
// reporting wraps against the mutated lvalue expression.
func (ia *IntervalAnalysis) arith(typed ast.Expr, op token.Token, x, y Interval) Interval {
	ev := ia.Eval
	unsigned := isUnsignedType(ev.typeOf(typed))
	switch op {
	case token.ADD:
		hi, hiOver := addOver(x.Hi, y.Hi)
		lo, loOver := addOver(x.Lo, y.Lo)
		if unsigned {
			switch {
			case !hiOver:
				return Interval{lo, hi}
			case loOver:
				ev.wrap(typed, token.ADD, true)
				return Interval{lo, hi}
			default:
				ev.wrap(typed, token.ADD, false)
				return FullInterval()
			}
		}
		if !x.IsFull() && !y.IsFull() && !hiOver && hi <= maxInt63 {
			return Interval{lo, hi}
		}
		return FullInterval()
	case token.SUB:
		if x.Lo >= y.Hi {
			return Interval{x.Lo - y.Hi, x.Hi - y.Lo}
		}
		if unsigned {
			if x.Hi < y.Lo {
				ev.wrap(typed, token.SUB, true)
				return Interval{x.Lo - y.Hi, x.Hi - y.Lo}
			}
			ev.wrap(typed, token.SUB, false)
		}
		return FullInterval()
	default:
		// Rarer compound ops (*=, <<=, ...) fall back to no claim.
		return FullInterval()
	}
}

func compoundOp(tok token.Token) token.Token {
	switch tok {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	}
	return token.ILLEGAL
}

// assignTo stores v into the lvalue lhs: keyed paths get a strong update
// (and the StoreKey hook), unkeyable index stores go to the StoreElem hook,
// and `p := &global` records an alias. rhs is the source expression when the
// assignment came from a plain pair (used for alias detection); nil
// otherwise.
func (ia *IntervalAnalysis) assignTo(lhs ast.Expr, v Interval, rhs ast.Expr, env *IntervalEnv) {
	ev := ia.Eval
	lhs = ast.Unparen(lhs)
	if id, ok := lhs.(*ast.Ident); ok && id.Name == "_" {
		return
	}

	// Alias: c := &nttCRT (or c = &nttCRT) lets later c.f reads and writes
	// resolve to nttCRT's paths.
	if rhs != nil {
		if u, ok := ast.Unparen(rhs).(*ast.UnaryExpr); ok && u.Op == token.AND {
			if target, ok := ast.Unparen(u.X).(*ast.Ident); ok {
				if lhsID, ok := lhs.(*ast.Ident); ok {
					from := ev.Info.ObjectOf(lhsID)
					to := ev.Info.ObjectOf(target)
					if from != nil && to != nil {
						env.SetAlias(from, to)
						return
					}
				}
			}
		}
	}

	if k, ok := ev.Key(lhs, env); ok {
		if ev.reporting && ev.StoreKey != nil {
			ev.StoreKey(lhs, k, v, env)
		}
		env.Set(k, v)
		return
	}
	if idx, ok := lhs.(*ast.IndexExpr); ok {
		ev.Eval(idx.Index, env)
		if ev.reporting && ev.StoreElem != nil {
			ev.StoreElem(idx, v, env)
		}
	}
}
