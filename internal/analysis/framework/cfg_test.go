package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// parseFunc parses src (a full file starting with "package p") and builds
// the CFG of its first function declaration.
func parseFunc(t *testing.T, src string) (*token.FileSet, *CFG) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "t.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
			return fset, NewCFG(fd.Body)
		}
	}
	t.Fatal("no function in source")
	return nil, nil
}

// blockAtLine returns the first block holding a node that starts on line.
func blockAtLine(fset *token.FileSet, g *CFG, line int) *Block {
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if fset.Position(n.Pos()).Line == line {
				return b
			}
		}
	}
	return nil
}

// reaches reports whether to is reachable from from along Succs edges.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	stack := []*Block{from}
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == to {
			return true
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	return false
}

func TestCFGIfElseJoin(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(c bool) {
	a()
	if c {
		b1()
	} else {
		b2()
	}
	d()
}
func a(){}; func b1(){}; func b2(){}; func d(){}`)

	b1 := blockAtLine(fset, g, 5)
	b2 := blockAtLine(fset, g, 7)
	d := blockAtLine(fset, g, 9)
	if b1 == nil || b2 == nil || d == nil {
		t.Fatalf("missing blocks: then=%v else=%v join=%v", b1, b2, d)
	}
	if b1 == b2 {
		t.Fatal("then and else share a block")
	}
	for _, br := range []*Block{b1, b2} {
		if !reaches(br, d) {
			t.Errorf("branch %s does not reach the join statement", br)
		}
	}
	cond := blockAtLine(fset, g, 3) // a() and the condition share the pre-branch block
	if len(cond.Succs) != 2 {
		t.Errorf("condition block %s should have 2 successors", cond)
	}
}

func TestCFGIfWithoutElseSkipEdge(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(c bool) {
	if c {
		b1()
	}
	d()
}
func b1(){}; func d(){}`)

	cond := g.Entry.Succs[0]
	d := blockAtLine(fset, g, 6)
	b1 := blockAtLine(fset, g, 4)
	if b1 == nil || d == nil {
		t.Fatal("missing blocks")
	}
	if b1 == d {
		t.Fatal("then body merged into join block")
	}
	// The skip path must reach d without passing through the then-branch.
	seen := map[*Block]bool{b1: true}
	stack := []*Block{cond}
	found := false
	for len(stack) > 0 {
		b := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if b == d {
			found = true
			break
		}
		if seen[b] {
			continue
		}
		seen[b] = true
		stack = append(stack, b.Succs...)
	}
	if !found {
		t.Error("if-without-else has no skip edge around the then-branch")
	}
}

func TestCFGForLoopBackEdgeAndExit(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		body()
	}
	after()
}
func body(){}; func after(){}`)

	body := blockAtLine(fset, g, 4)
	after := blockAtLine(fset, g, 6)
	if body == nil || after == nil {
		t.Fatal("missing loop body or after block")
	}
	if !reaches(body, body) {
		t.Error("no back edge: loop body cannot reach itself")
	}
	if !reaches(body, after) {
		t.Error("loop body cannot reach the loop exit")
	}
	if !reaches(g.Entry, after) {
		t.Error("zero-iteration path missing: after() unreachable from entry")
	}
}

func TestCFGRangeBackEdge(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(xs []int) {
	for _, x := range xs {
		use(x)
	}
	after()
}
func use(int){}; func after(){}`)

	body := blockAtLine(fset, g, 4)
	after := blockAtLine(fset, g, 6)
	if !reaches(body, body) {
		t.Error("range body has no back edge")
	}
	if !reaches(g.Entry, after) || !reaches(body, after) {
		t.Error("range exit edges missing")
	}
}

func TestCFGEarlyReturn(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(c bool) int {
	if c {
		return 1
	}
	tail()
	return 2
}
func tail(){}`)

	ret1 := blockAtLine(fset, g, 4)
	tail := blockAtLine(fset, g, 6)
	if ret1 == nil || tail == nil {
		t.Fatal("missing blocks")
	}
	if len(ret1.Succs) != 1 || ret1.Succs[0] != g.Exit {
		t.Errorf("return block %s must link only to Exit", ret1)
	}
	if ret1.ReturnStmt() == nil {
		t.Error("ReturnStmt() nil for a return block")
	}
	if reaches(ret1, tail) {
		t.Error("flow continues past return")
	}
}

func TestCFGUnreachableAfterReturn(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f() {
	return
	dead()
}
func dead(){}`)

	dead := blockAtLine(fset, g, 4)
	if dead == nil {
		t.Fatal("dead statement not placed in any block")
	}
	if reaches(g.Entry, dead) {
		t.Error("statement after return is reachable from entry")
	}
}

func TestCFGSwitchFallthroughAndDefault(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(x int) {
	switch x {
	case 1:
		one()
		fallthrough
	case 2:
		two()
	default:
		other()
	}
	after()
}
func one(){}; func two(){}; func other(){}; func after(){}`)

	one := blockAtLine(fset, g, 5)
	two := blockAtLine(fset, g, 8)
	other := blockAtLine(fset, g, 10)
	after := blockAtLine(fset, g, 12)
	if one == nil || two == nil || other == nil || after == nil {
		t.Fatal("missing case blocks")
	}
	if !reaches(one, two) {
		t.Error("fallthrough edge from case 1 to case 2 missing")
	}
	for _, c := range []*Block{two, other} {
		if !reaches(c, after) {
			t.Errorf("case block %s does not reach the join", c)
		}
	}
	if reaches(two, one) {
		t.Error("backwards edge between cases")
	}
}

func TestCFGSwitchNoDefaultSkips(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(x int) {
	pre()
	switch x {
	case 1:
		one()
	}
	after()
}
func pre(){}; func one(){}; func after(){}`)

	pre := blockAtLine(fset, g, 3)
	one := blockAtLine(fset, g, 6)
	after := blockAtLine(fset, g, 8)
	if !reaches(pre, after) {
		t.Error("no-default switch lost its skip path")
	}
	if !reaches(one, after) {
		t.Error("case body does not reach the join")
	}
}

func TestCFGSelectClauses(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(a, b chan int) {
	select {
	case v := <-a:
		use(v)
	case b <- 1:
		sent()
	default:
		idle()
	}
	after()
}
func use(int){}; func sent(){}; func idle(){}; func after(){}`)

	for _, line := range []int{5, 7, 9} {
		blk := blockAtLine(fset, g, line)
		if blk == nil {
			t.Fatalf("missing select clause block for line %d", line)
		}
		if !reaches(g.Entry, blk) {
			t.Errorf("select clause at line %d unreachable", line)
		}
		if !reaches(blk, blockAtLine(fset, g, 11)) {
			t.Errorf("select clause at line %d does not reach the join", line)
		}
	}
}

func TestCFGDefersCollected(t *testing.T) {
	_, g := parseFunc(t, `package p
func f() {
	defer a()
	if cond() {
		defer b()
	}
}
func a(){}; func b(){}; func cond() bool { return false }`)

	if len(g.Defers) != 2 {
		t.Fatalf("collected %d defers, want 2", len(g.Defers))
	}
}

func TestCFGPanicTerminatesPath(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(c bool) {
	if c {
		panic("boom")
	}
	after()
}
func after(){}`)

	after := blockAtLine(fset, g, 6)
	pan := blockAtLine(fset, g, 4)
	if reaches(pan, after) {
		t.Error("flow continues past panic within its branch")
	}
	// The panic path must not register as a normal exit predecessor.
	for _, p := range g.Exit.Preds {
		if p == pan {
			t.Error("panicking block linked to Exit")
		}
	}
	if !reaches(g.Entry, after) {
		t.Error("non-panicking path lost")
	}
}

func TestCFGBreakContinue(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		if i == 1 {
			continue
		}
		if i == 2 {
			break
		}
		body()
	}
	after()
}
func body(){}; func after(){}`)

	brk := blockAtLine(fset, g, 8)
	after := blockAtLine(fset, g, 12)
	body := blockAtLine(fset, g, 10)
	if !reaches(brk, after) {
		t.Error("break does not reach loop exit")
	}
	if reaches(brk, body) {
		t.Error("break falls through into the loop body")
	}
	cont := blockAtLine(fset, g, 5)
	if !reaches(cont, body) {
		t.Error("continue cannot re-enter the loop body via the back edge")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(n int) {
outer:
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if j == 1 {
				break outer
			}
			inner()
		}
	}
	after()
}
func inner(){}; func after(){}`)

	brk := blockAtLine(fset, g, 7)
	inner := blockAtLine(fset, g, 9)
	after := blockAtLine(fset, g, 12)
	if !reaches(brk, after) {
		t.Error("labeled break does not reach the outer loop's exit")
	}
	if reaches(brk, inner) {
		t.Error("labeled break re-enters the inner loop")
	}
}

func TestCFGStringAndFuncLitSkipped(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f() {
	g := func() {
		inLit()
	}
	g()
}
func inLit(){}`)

	// The literal body's statements must not be scheduled in this CFG.
	if blk := blockAtLine(fset, g, 4); blk != nil {
		t.Errorf("closure body statement landed in enclosing CFG block %s", blk)
	}
	for _, b := range g.Blocks {
		if strings.Contains(b.String(), "->") {
			continue // smoke: String() renders
		}
	}
}
