package framework

// summary.go computes per-function interprocedural summaries, bottom-up
// over the call graph's SCC condensation (callgraph.go). A summary answers,
// for one declared function, the questions the ftlint analyzers previously
// had to assume an answer to at every call boundary:
//
//   - ownership: what does the callee do to an arena/Acc-typed parameter —
//     use it, release it (on every path? some?), or let it escape? accown
//     and arenasafe turn "release via helper" from a stand-down into a
//     checked protocol event, and "helper only uses it" from a stand-down
//     into a live obligation the caller still owes.
//   - cost charging: does any path through the callee reach a Stats/Proc
//     charge? costcharge stops trusting a *Stats parameter that the callee
//     provably ignores.
//   - kernel aliasing: does the callee forward its parameters into the
//     dst/src positions of a destination-reuse nat kernel? natalias checks
//     aliasing through such wrappers.
//   - recovery paths: can the callee return an erasure/softfault error or
//     erasure-index result (erasure.Decode, softfault.Correct/Verify,
//     transitively), does it handle fault events, does it spawn raw
//     goroutines or allocate from a caller-held arena? recoverpath composes
//     these into the Section-4 recovery invariants.
//
// Ownership effects are computed by running the existing CFG + dataflow
// protocol machinery once per tracked parameter with the boundary state
// Live (the object arrives owned by the caller); deferred releases use the
// armed states of protocol.go. Within an SCC the members are iterated to a
// local fixpoint; a parameter handed to a not-yet-analyzed mutual-recursion
// partner is conservatively treated as escaping.
//
// Everything matches by name (type names "arena"/"Acc"/"Stats"/"Proc"/
// "Machine"/"Code"/"Corrector"/"FaultEvent", kernel names), like the rest
// of the framework, so the same summaries work on the real tree and on
// import-free fixtures.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// ParamEffect is a bitset describing a callee's effect on one tracked
// (arena/Acc-typed) parameter.
type ParamEffect uint8

const (
	// EffTracked: the parameter has a tracked type and was analyzed.
	EffTracked ParamEffect = 1 << iota
	// EffUses: the callee operates on the object (it must arrive live).
	EffUses
	// EffReleasesAll: the callee releases the object on every path
	// (including via a deferred release).
	EffReleasesAll
	// EffReleasesMaybe: the callee releases the object on some but not all
	// paths — callers cannot prove anything and should stand down.
	EffReleasesMaybe
	// EffEscapes: the object is stored, returned, captured by a closure, or
	// passed to code without a summary; local ownership tracking ends.
	EffEscapes
)

// KernelCall records that a function forwards some of its parameters, as
// plain unsliced identifiers, into a destination-reuse nat kernel call
// (directly or through another wrapper). Indices are the wrapper's own
// parameter positions; -1 marks a kernel operand that is not a plain
// parameter of the wrapper.
type KernelCall struct {
	Kernel    string
	DstParam  int
	SrcParams []int
}

// NatKernels maps the destination-reuse nat kernels to the argument indices
// of their source operands (index 0 is always dst). Shared source of truth
// for natalias and for the wrapper-forwarding summaries.
var NatKernels = map[string][]int{
	"natAddTo":     {1, 2},
	"natSubTo":     {1, 2},
	"natMulWordTo": {1},
	"natShlTo":     {1},
	"natDivWordTo": {1},
}

// trackedOwnershipTypes are the type names whose values follow an
// acquire/release ownership protocol.
var trackedOwnershipTypes = map[string]bool{"arena": true, "Acc": true}

// chargePrimitives lists the methods that ARE the cost model, per receiver
// type name: reaching one of these is what "can charge" means.
var chargePrimitives = map[string]map[string]bool{
	"Stats": {"chargeWords": true},
	"Proc": {
		"Work": true, "Send": true, "Recv": true,
		"RecvInts": true, "RecvDeadline": true, "Barrier": true,
	},
	// Endpoint is the transport-seam carrier (costacct.Endpoint): the layer
	// machine.Proc charges through, with the same primitive set.
	"Endpoint": {
		"Work": true, "Send": true, "Recv": true,
		"RecvDeadline": true, "Barrier": true,
	},
}

// chargeCarrierTypes are the cost-model carrier types of a signature.
var chargeCarrierTypes = map[string]bool{"Stats": true, "Proc": true, "Machine": true, "Endpoint": true}

// recoverySources lists the decode/verify entry points of the fault
// recovery machinery, per receiver type name.
var recoverySources = map[string]map[string]bool{
	"Code":      {"Decode": true},
	"Corrector": {"Correct": true, "Verify": true},
}

// Summary is one function's interprocedural summary.
type Summary struct {
	Key     string
	Name    string
	PkgPath string

	// Params holds the ownership effect per parameter (EffTracked unset for
	// parameters of untracked types). Variadic reports a trailing ...T.
	Params   []ParamEffect
	Variadic bool

	// Charges: some path reaches a Stats/Proc charge primitive,
	// transitively. ChargeCarrier: the signature itself carries a
	// Stats/Proc/Machine receiver or parameter (the pre-summary witness).
	Charges       bool
	ChargeCarrier bool

	// RecoverySource: the function is one of the decode/verify entry points
	// (erasure.Decode, softfault.Correct/Verify) by name. RecoveryErr: the
	// function has an error result and reaches a recovery source, so its
	// error may report an undecodable erasure. ReachesRecovery: some call
	// path reaches a recovery source. HandlesFaults: a parameter carries
	// fault events (type name FaultEvent), marking the recovery handlers.
	RecoverySource  bool
	RecoveryErr     bool
	ReachesRecovery bool
	HandlesFaults   bool

	// SpawnsGo: the function contains an unsanctioned raw go statement,
	// transitively. A spawn covered by an `//ftlint:allow poolspawn`
	// comment — the bounded pool's own audited worker launch — is the
	// sanctioned concurrency the recovery rules point callers to, so it
	// does not set this bit (otherwise every kernel that fans out through
	// the pool would poison the recovery handlers above it).
	// AllocsArenaParam: it allocates from an arena-typed parameter (its
	// caller may still hold allocations on that arena), transitively.
	SpawnsGo         bool
	AllocsArenaParam bool

	// FTReach: reachable from (or in) a package with path segment
	// "ftparallel" — the scope of the recovery-handler rules.
	FTReach bool

	// KernelCalls records nat-kernel operand forwarding for natalias.
	KernelCalls []KernelCall

	// Returns bounds the function's single unsigned-integer result, derived
	// bottom-up over the condensation by abstractly evaluating every return
	// expression with unconstrained parameters. The full interval means "no
	// bound". Recursive functions (any member of a non-trivial SCC, or a
	// self-caller) keep the full interval: the bounded SCC iteration may
	// stop before a cyclic Returns chain converges, and an unconverged
	// bound would be a false claim. The interval engine (interval.go) uses
	// Returns as its call fallback, which is how constant-deriving helpers
	// flow through modbound without per-function axioms.
	Returns Interval

	node *CGNode
}

// Summaries is the interprocedural fact base for one analysis run.
type Summaries struct {
	byKey map[string]*Summary
	Graph *CallGraph
}

// Lookup returns the summary for a FuncKey (nil when the function is not in
// the analyzed set — stdlib, interface method, func value).
func (s *Summaries) Lookup(key string) *Summary {
	if s == nil {
		return nil
	}
	return s.byKey[key]
}

// OfFunc returns the summary for a resolved function object.
func (s *Summaries) OfFunc(fn *types.Func) *Summary {
	if fn == nil {
		return nil
	}
	return s.Lookup(FuncKey(fn))
}

// Callee resolves a call expression to its callee's summary (nil for calls
// through func values or into code outside the analyzed set).
func (s *Summaries) Callee(info *types.Info, call *ast.CallExpr) *Summary {
	return s.OfFunc(CalleeFunc(info, call))
}

// ArgEffect classifies what a call does to a tracked object passed as
// argument argIdx.
type ArgEffect int

const (
	// ArgEscape: unknown callee or the callee lets the object escape (or
	// releases it only on some paths) — local tracking must stand down.
	ArgEscape ArgEffect = iota
	// ArgUse: the callee uses the object and hands it back still owned.
	ArgUse
	// ArgRelease: the callee releases the object on every path.
	ArgRelease
)

// ArgEffect returns the effect of passing a tracked object as argument
// argIdx of call, per the callee's summary.
func (s *Summaries) ArgEffect(info *types.Info, call *ast.CallExpr, argIdx int) ArgEffect {
	sum := s.Callee(info, call)
	if sum == nil {
		return ArgEscape
	}
	i := sum.paramIndex(call, argIdx)
	if i < 0 {
		return ArgEscape
	}
	eff := sum.Params[i]
	switch {
	case eff&EffTracked == 0 || eff&EffEscapes != 0 || eff&EffReleasesMaybe != 0:
		return ArgEscape
	case eff&EffReleasesAll != 0:
		return ArgRelease
	default:
		return ArgUse
	}
}

// paramIndex maps call argument i to the callee's parameter index, or -1
// when the mapping is not positional (variadic tail, f(g()) forwarding,
// arity mismatch).
func (sum *Summary) paramIndex(call *ast.CallExpr, i int) int {
	n := len(sum.Params)
	if sum.Variadic {
		if len(call.Args) < n-1 || i >= n-1 {
			return -1 // variadic tail: no per-position effect
		}
		return i
	}
	if len(call.Args) != n || i >= n {
		return -1
	}
	return i
}

// ComputeSummaries builds the call graph over pkgs and computes every
// function's summary bottom-up.
func ComputeSummaries(pkgs []*Package) *Summaries {
	g := NewCallGraph(pkgs)
	s := &Summaries{byKey: make(map[string]*Summary, len(g.Nodes)), Graph: g}
	for _, n := range g.Nodes {
		s.byKey[n.Key] = newSummary(n)
	}
	for _, scc := range g.SCCs {
		// Iterate each component to a local fixpoint: boolean facts only
		// grow, ownership effects stabilize because escape is terminal.
		for iter := 0; iter < 2*len(scc)+2; iter++ {
			changed := false
			for _, n := range scc {
				if s.compute(n) {
					changed = true
				}
			}
			if !changed {
				break
			}
		}
	}
	s.markFTReach()
	return s
}

// newSummary seeds a summary with the facts derivable from the signature
// alone, before any body analysis.
func newSummary(n *CGNode) *Summary {
	sum := &Summary{
		Key:     n.Key,
		Name:    n.Fn.Name(),
		PkgPath: n.Pkg.Path,
		Returns: FullInterval(),
		node:    n,
	}
	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil {
		return sum
	}
	sum.Variadic = sig.Variadic()
	if recv := sig.Recv(); recv != nil {
		recvName := NamedTypeName(recv.Type())
		if chargeCarrierTypes[recvName] {
			sum.ChargeCarrier = true
		}
		if set := chargePrimitives[recvName]; set != nil && set[sum.Name] {
			sum.Charges = true
		}
		if set := recoverySources[recvName]; set != nil && set[sum.Name] {
			sum.RecoverySource = true
			sum.ReachesRecovery = true
		}
	}
	params := sig.Params()
	sum.Params = make([]ParamEffect, params.Len())
	for i := 0; i < params.Len(); i++ {
		t := params.At(i).Type()
		if chargeCarrierTypes[NamedTypeName(t)] {
			sum.ChargeCarrier = true
		}
		if isFaultEventCarrier(t) {
			sum.HandlesFaults = true
		}
	}
	return sum
}

// isFaultEventCarrier reports whether t is (a slice of) a type named
// FaultEvent — the signature marker of a fault-recovery handler.
func isFaultEventCarrier(t types.Type) bool {
	if sl, ok := t.Underlying().(*types.Slice); ok {
		t = sl.Elem()
	}
	return NamedTypeName(t) == "FaultEvent"
}

// hasErrorResult reports whether the signature's last result is an error.
func hasErrorResult(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	return NamedTypeName(res.At(res.Len()-1).Type()) == "error"
}

// compute (re)derives n's summary from its body and the current state of
// its callees' summaries. It reports whether anything changed.
func (s *Summaries) compute(n *CGNode) bool {
	sum := s.byKey[n.Key]
	old := *sum
	oldParams := append([]ParamEffect(nil), sum.Params...)
	oldKernels := len(sum.KernelCalls)

	sig, _ := n.Fn.Type().(*types.Signature)
	if sig == nil || n.Decl.Body == nil {
		return false
	}

	// Transitive boolean facts from direct statements and call edges.
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		if g, ok := m.(*ast.GoStmt); ok && !sanctionedSpawn(n.Pkg, n.Decl, g.Pos()) {
			sum.SpawnsGo = true
		}
		return true
	})
	for key := range n.Calls {
		c := s.byKey[key]
		if c == nil {
			continue
		}
		if c.Charges {
			sum.Charges = true
		}
		if c.ReachesRecovery {
			sum.ReachesRecovery = true
		}
		if c.SpawnsGo {
			sum.SpawnsGo = true
		}
	}
	if hasErrorResult(sig) && sum.ReachesRecovery {
		sum.RecoveryErr = true
	}

	s.computeOwnership(n, sum, sig)
	s.computeKernelForwarding(n, sum, sig)
	sum.Returns = s.computeReturns(n, sig)

	if len(sum.Params) != len(oldParams) {
		return true
	}
	for i := range sum.Params {
		if sum.Params[i] != oldParams[i] {
			return true
		}
	}
	return sum.Charges != old.Charges ||
		sum.ReachesRecovery != old.ReachesRecovery ||
		sum.RecoveryErr != old.RecoveryErr ||
		sum.SpawnsGo != old.SpawnsGo ||
		sum.AllocsArenaParam != old.AllocsArenaParam ||
		!sum.Returns.Equal(old.Returns) ||
		len(sum.KernelCalls) != oldKernels
}

// computeReturns derives the Returns bound: the join of the abstract values
// of every top-level return expression, evaluated under an empty environment
// (parameters unconstrained) with callee bounds taken from the summaries
// computed so far. Only single-result functions of unsigned integer type get
// a bound; recursion keeps the full interval (see the field comment).
func (s *Summaries) computeReturns(n *CGNode, sig *types.Signature) Interval {
	if sig.Results().Len() != 1 || !isUnsignedType(sig.Results().At(0).Type()) {
		return FullInterval()
	}
	if n.Calls[n.Key] || s.Graph.SCCSize(n.Key) > 1 {
		return FullInterval() // recursion: the bounded iteration may not converge
	}
	ev := &IntervalEval{Info: n.Pkg.Info, Summaries: s}
	env := NewIntervalEnv()
	out := EmptyInterval()
	sawReturn := false
	InspectShallow(n.Decl.Body, func(m ast.Node) bool {
		ret, ok := m.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		sawReturn = true
		if len(ret.Results) != 1 {
			out = FullInterval() // naked return: named result untracked
			return true
		}
		out = out.Join(ev.Eval(ret.Results[0], env))
		return true
	})
	if !sawReturn {
		return FullInterval() // panics or infinite loop: no value to bound
	}
	return out
}

// paramObjects maps each tracked parameter's types.Object to its index.
func paramObjects(n *CGNode, sig *types.Signature) map[types.Object]int {
	out := map[types.Object]int{}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		p := params.At(i)
		if trackedOwnershipTypes[NamedTypeName(p.Type())] && p.Name() != "" && p.Name() != "_" {
			out[p] = i
		}
	}
	return out
}

// computeOwnership derives the per-parameter ownership effects by building
// the protocol event stream for each tracked parameter and solving its
// lifecycle over the CFG with boundary state Live.
func (s *Summaries) computeOwnership(n *CGNode, sum *Summary, sig *types.Signature) {
	tracked := paramObjects(n, sig)
	if len(tracked) == 0 {
		return
	}
	info := n.Pkg.Info
	defers := CollectDeferRanges(n.Decl.Body)
	closures := CollectBareClosures(n.Decl.Body)

	type state struct {
		events  map[token.Pos]ProtoEvent
		escaped bool
		used    bool
		// consumed records ident positions already classified through a
		// call context; any other reference to the object is an escape.
		consumed map[token.Pos]bool
	}
	st := make(map[types.Object]*state, len(tracked))
	for obj := range tracked {
		st[obj] = &state{events: map[token.Pos]ProtoEvent{}, consumed: map[token.Pos]bool{}}
	}

	place := func(ps *state, pos token.Pos, kind ProtoEventKind, name string) {
		deferredAnchor, deferred := defers.CallAt(pos)
		inClosure := closures.Contains(pos)
		switch {
		case kind == ProtoRelease && deferred:
			ps.events[deferredAnchor] = ProtoEvent{Kind: ProtoDeferRelease, Name: name}
		case deferred:
			// Deferred use: runs at exit, after every observable point.
		case inClosure:
			// The closure may run at any time (or never): ownership facts
			// for the enclosing function end here.
			ps.escaped = true
		case kind == ProtoRelease:
			ps.events[pos] = ProtoEvent{Kind: ProtoRelease, Name: name}
		default:
			ps.events[pos] = ProtoEvent{Kind: ProtoUse, Name: name}
			ps.used = true
		}
	}

	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := CalleeIdent(call)
		// Method call on a tracked parameter: Release on an Acc releases;
		// alloc on an arena parameter additionally marks the caller-held-
		// arena allocation fact; everything else is a use.
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && callee != nil {
			if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, isTracked := tracked[obj]; isTracked {
						ps := st[obj]
						ps.consumed[id.Pos()] = true
						kind := ProtoUse
						if callee.Name == "Release" && NamedTypeName(obj.Type()) == "Acc" {
							kind = ProtoRelease
						}
						if callee.Name == "alloc" && NamedTypeName(obj.Type()) == "arena" {
							sum.AllocsArenaParam = true
						}
						place(ps, call.Pos(), kind, callee.Name)
					}
				}
			}
		}
		// putArena(p) releases an arena parameter.
		if callee != nil && callee.Name == "putArena" && len(call.Args) == 1 {
			if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
				if obj := info.Uses[id]; obj != nil {
					if _, isTracked := tracked[obj]; isTracked {
						ps := st[obj]
						ps.consumed[id.Pos()] = true
						place(ps, call.Pos(), ProtoRelease, "putArena")
						return true
					}
				}
			}
		}
		// Tracked parameter passed on as an argument: classify through the
		// callee's summary.
		for i, arg := range call.Args {
			id, ok := ast.Unparen(arg).(*ast.Ident)
			if !ok {
				continue
			}
			obj := info.Uses[id]
			if obj == nil {
				continue
			}
			_, isTracked := tracked[obj]
			if !isTracked {
				continue
			}
			ps := st[obj]
			ps.consumed[id.Pos()] = true
			switch s.ArgEffect(info, call, i) {
			case ArgRelease:
				place(ps, call.Pos(), ProtoRelease, calleeName(callee))
			case ArgUse:
				place(ps, call.Pos(), ProtoUse, calleeName(callee))
				if cs := s.Callee(info, call); cs != nil {
					ci := cs.paramIndex(call, i)
					if ci >= 0 && cs.Params[ci]&EffTracked != 0 && NamedTypeName(obj.Type()) == "arena" && cs.AllocsArenaParam {
						sum.AllocsArenaParam = true
					}
				}
			default:
				ps.escaped = true
			}
		}
		return true
	})

	// Any reference outside the classified call contexts — returned,
	// assigned, address-taken, stored in a composite — is an escape.
	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		id, ok := m.(*ast.Ident)
		if !ok {
			return true
		}
		obj := info.Uses[id]
		if obj == nil {
			return true
		}
		if ps, isTracked := st[obj]; isTracked && !ps.consumed[id.Pos()] {
			ps.escaped = true
		}
		return true
	})

	cfgOnce := (*CFG)(nil)
	for obj, idx := range tracked {
		ps := st[obj]
		eff := EffTracked
		if ps.used {
			eff |= EffUses
		}
		if ps.escaped {
			sum.Params[idx] = eff | EffEscapes
			continue
		}
		if cfgOnce == nil {
			cfgOnce = NewCFG(n.Decl.Body)
		}
		exit := solveParamExit(cfgOnce, ps.events)
		switch {
		case exit == 0:
			// No path reaches the exit (infinite loop / always panics):
			// make no release claim.
		case exit&(StateLive|StateNotYet) == 0:
			eff |= EffReleasesAll
		case exit&(StateReleased|StateReleasedArmed|StateLiveArmed) != 0:
			eff |= EffReleasesMaybe
		}
		sum.Params[idx] = eff
	}
}

func calleeName(id *ast.Ident) string {
	if id == nil {
		return "call"
	}
	return id.Name
}

// solveParamExit runs the lifecycle dataflow for one parameter arriving
// Live and returns the joined state over every path into Exit.
func solveParamExit(g *CFG, events map[token.Pos]ProtoEvent) ObjState {
	spec := FlowSpec[ObjState]{
		Bottom:   func() ObjState { return 0 },
		Boundary: func() ObjState { return StateLive },
		Join:     func(a, b ObjState) ObjState { return a | b },
		Equal:    func(a, b ObjState) bool { return a == b },
		Transfer: func(b *Block, in ObjState) ObjState {
			return walkProtocol(b, in, events, nil)
		},
	}
	res := ForwardSolve(g, spec)
	var exit ObjState
	for _, p := range g.Exit.Preds {
		exit |= res.Out[p]
	}
	return exit
}

// computeKernelForwarding records which parameters flow, unmodified, into
// nat-kernel operand positions — directly or through another wrapper.
func (s *Summaries) computeKernelForwarding(n *CGNode, sum *Summary, sig *types.Signature) {
	info := n.Pkg.Info
	params := sig.Params()
	paramIdx := map[types.Object]int{}
	for i := 0; i < params.Len(); i++ {
		if p := params.At(i); p.Name() != "" && p.Name() != "_" {
			paramIdx[p] = i
		}
	}
	asParam := func(e ast.Expr) int {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return -1
		}
		if obj := info.Uses[id]; obj != nil {
			if i, ok := paramIdx[obj]; ok {
				return i
			}
		}
		return -1
	}

	sum.KernelCalls = sum.KernelCalls[:0]
	seen := map[string]bool{}
	record := func(kc KernelCall) {
		if kc.DstParam < 0 {
			return
		}
		srcOK := false
		for _, si := range kc.SrcParams {
			if si >= 0 {
				srcOK = true
			}
		}
		if !srcOK {
			return
		}
		sig := kernelCallKey(kc)
		if !seen[sig] {
			seen[sig] = true
			sum.KernelCalls = append(sum.KernelCalls, kc)
		}
	}

	ast.Inspect(n.Decl.Body, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		callee := CalleeIdent(call)
		if callee == nil {
			return true
		}
		if srcIdxs, isKernel := NatKernels[callee.Name]; isKernel && len(call.Args) > srcIdxs[len(srcIdxs)-1] {
			kc := KernelCall{Kernel: callee.Name, DstParam: asParam(call.Args[0])}
			for _, si := range srcIdxs {
				kc.SrcParams = append(kc.SrcParams, asParam(call.Args[si]))
			}
			record(kc)
			return true
		}
		// Wrapper-of-wrapper: compose the callee's forwarding.
		if cs := s.Callee(info, call); cs != nil && len(cs.KernelCalls) > 0 {
			for _, inner := range cs.KernelCalls {
				kc := KernelCall{Kernel: inner.Kernel, DstParam: -1}
				if inner.DstParam >= 0 && inner.DstParam < len(call.Args) && !cs.Variadic {
					kc.DstParam = asParam(call.Args[inner.DstParam])
				}
				for _, si := range inner.SrcParams {
					mapped := -1
					if si >= 0 && si < len(call.Args) && !cs.Variadic {
						mapped = asParam(call.Args[si])
					}
					kc.SrcParams = append(kc.SrcParams, mapped)
				}
				record(kc)
			}
		}
		return true
	})
}

func kernelCallKey(kc KernelCall) string {
	key := kc.Kernel + ":" + strconv.Itoa(kc.DstParam)
	for _, s := range kc.SrcParams {
		key += "," + strconv.Itoa(s)
	}
	return key
}

// markFTReach flags every summary reachable from a function living in a
// package with path segment "ftparallel" (the roots included).
func (s *Summaries) markFTReach() {
	var stack []*Summary
	for _, sum := range s.byKey {
		if (PathHasSegment(sum.PkgPath, "ftparallel") || PathHasSegment(sum.PkgPath, "ftengine") || PathHasSegment(sum.PkgPath, "ftmatmul")) && !sum.FTReach {
			sum.FTReach = true
			stack = append(stack, sum)
		}
	}
	for len(stack) > 0 {
		sum := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if sum.node == nil {
			continue
		}
		for key := range sum.node.Calls {
			if c := s.byKey[key]; c != nil && !c.FTReach {
				c.FTReach = true
				stack = append(stack, c)
			}
		}
	}
}

// ClosureSpans are the spans of function literals that are not the
// immediate body of a defer statement (a `defer func(){...}()` closure is
// handled by the defer rules instead). A tracked object referenced inside
// one is captured by code that may run at any time — or never — so local
// ownership tracking must end there.
type ClosureSpans [][2]token.Pos

// Contains reports whether pos falls inside a bare (non-deferred) closure.
func (c ClosureSpans) Contains(pos token.Pos) bool {
	for _, s := range c {
		if pos >= s[0] && pos < s[1] {
			return true
		}
	}
	return false
}

// CollectBareClosures gathers the spans of every function literal under
// root except those immediately invoked by a defer statement.
func CollectBareClosures(root ast.Node) ClosureSpans {
	deferred := map[*ast.FuncLit]bool{}
	ast.Inspect(root, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			if fl, ok := ast.Unparen(d.Call.Fun).(*ast.FuncLit); ok {
				deferred[fl] = true
			}
		}
		return true
	})
	var spans ClosureSpans
	ast.Inspect(root, func(n ast.Node) bool {
		if fl, ok := n.(*ast.FuncLit); ok && !deferred[fl] {
			spans = append(spans, [2]token.Pos{fl.Pos(), fl.End()})
		}
		return true
	})
	return spans
}

// sanctionedSpawn reports whether the go statement at pos is covered by an
// `//ftlint:allow poolspawn` comment — on its own line, the line above, or
// in the enclosing function's doc comment, mirroring the suppression scopes
// of the allow index. Such a spawn is the bounded pool's audited worker
// launch, so it does not count as a raw spawn in SpawnsGo summaries.
func sanctionedSpawn(pkg *Package, fd *ast.FuncDecl, pos token.Pos) bool {
	allowsPoolspawn := func(c *ast.Comment) bool {
		for _, name := range parseAllow(c.Text) {
			if name == "poolspawn" {
				return true
			}
		}
		return false
	}
	if fd.Doc != nil {
		for _, c := range fd.Doc.List {
			if allowsPoolspawn(c) {
				return true
			}
		}
	}
	p := pkg.Fset.Position(pos)
	for _, f := range pkg.Files {
		if f.Pos() > pos || pos > f.End() {
			continue
		}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !allowsPoolspawn(c) {
					continue
				}
				cp := pkg.Fset.Position(c.Pos())
				if cp.Filename == p.Filename && (cp.Line == p.Line || cp.Line == p.Line-1) {
					return true
				}
			}
		}
		break
	}
	return false
}
