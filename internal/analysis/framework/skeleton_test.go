package framework

import (
	"strings"
	"testing"
)

const skeletonSrc = `package p

type Ints []int64
type Group []int

type Proc struct{ id int }

func (p *Proc) ID() int                                                      { return p.id }
func (p *Proc) Send(to int, tag string, v Ints) error                        { return nil }
func (p *Proc) Recv(from int, tag string) (Ints, error)                      { return nil, nil }
func (p *Proc) RecvInts(from int, tag string) (Ints, error)                  { return nil, nil }
func (p *Proc) RecvDeadline(from int, tag string, d int) (Ints, bool, error) { return nil, false, nil }
func (p *Proc) Barrier(phase string) error                                   { return nil }

func verbs(p *Proc, g Group, tag string, v Ints) {
	p.Send(g[0], tag, v)
	p.Recv(g[1], tag)
	p.RecvInts(g[1], tag)
	p.RecvDeadline(g[1], tag, 5)
	p.Barrier(tag)
}

func boundedLen(p *Proc, g Group, tag string, v Ints) {
	n := len(g)
	for i := 0; i < n; i++ {
		p.Send(g[i], tag, v)
	}
}

func conjunctionBound(p *Proc, g Group, quota int, tag string, v Ints) {
	n := len(g)
	got := 0
	for i := 0; i < n && got < quota; i++ {
		p.Send(g[i], tag, v)
		got += 2
	}
}

func strideBound(p *Proc, g Group, cols int, tag string, v Ints) {
	for u := 1; u < len(g); u += cols {
		p.Send(g[u], tag, v)
	}
}

func downward(p *Proc, g Group, tag string) {
	for i := len(g); i > 0; i-- {
		p.Recv(g[0], tag)
	}
}

func mutatedLimit(p *Proc, g Group, tag string, v Ints) {
	n := len(g)
	for i := 0; i < n; i++ {
		n++
		p.Send(g[0], tag, v)
	}
}

func rangeLoop(p *Proc, g Group, tag string, v Ints) {
	for _, r := range g {
		p.Send(r, tag, v)
	}
}

func quiet(g Group) int {
	s := 0
	for i := 0; i < len(g); i++ {
		s += g[i]
	}
	return s
}

func blocked(p *Proc, tag string, v Ints, c chan int) {
	go p.Barrier(tag)
	select {}
	c <- 1
	<-c
	defer p.Barrier(tag)
	for x := range c {
		p.Send(x, tag, v)
	}
}

func callsBlocked(p *Proc, tag string, v Ints, c chan int) { blocked(p, tag, v, c) }

type hooks struct{ sync func(string) }

func indirect(p *Proc, h hooks, tag string) {
	if h.sync != nil {
		h.sync(tag)
	}
	p.Barrier(tag)
}

func leaf(p *Proc, tag string) { p.Barrier(tag) }
func mid(p *Proc, tag string)  { leaf(p, tag) }
func silent(x int) int         { return x + 1 }
`

func skeletonsFor(t *testing.T) *SkeletonSet {
	t.Helper()
	pkg := typeCheckPkg(t, "p", skeletonSrc)
	sums := ComputeSummaries([]*Package{pkg})
	return ExtractSkeletons(sums, DefaultWorldAxioms())
}

func skel(t *testing.T, set *SkeletonSet, key string) *Skeleton {
	t.Helper()
	sk := set.ByKey[key]
	if sk == nil {
		t.Fatalf("no skeleton for %s", key)
	}
	return sk
}

// TestSkeletonCommSites pins verb classification: each transport verb maps
// to its kind, the tag expression sits at the verb's tag index, and every
// point-to-point site carries its peer-rank expression (barriers do not).
func TestSkeletonCommSites(t *testing.T) {
	set := skeletonsFor(t)
	sk := skel(t, set, "p.verbs")
	if !sk.HasComm() {
		t.Fatal("p.verbs has no comm sites")
	}
	wantKinds := []CommKind{CommSend, CommRecv, CommRecv, CommRecvDeadline, CommBarrier}
	if len(sk.Sites) != len(wantKinds) {
		t.Fatalf("p.verbs has %d sites, want %d", len(sk.Sites), len(wantKinds))
	}
	for i, site := range sk.Sites {
		if site.Kind != wantKinds[i] {
			t.Errorf("site %d kind = %v, want %v", i, site.Kind, wantKinds[i])
		}
		if site.Tag == nil {
			t.Errorf("site %d (%s) has no tag expression", i, site.Method)
		}
		if (site.Kind == CommBarrier) != (site.Rank == nil) {
			t.Errorf("site %d (%s): rank expression presence is wrong", i, site.Method)
		}
	}
	if len(sk.Blockers) != 0 {
		t.Errorf("p.verbs has blockers: %v", sk.Blockers)
	}
}

// TestSkeletonLoopBounds pins the trip-bound prover across the shapes the
// real collectives use: a counter against n := len(g) (bounded by the world
// axioms), a conjunctive condition that proves through either conjunct, a
// loop-invariant identifier stride (offset-class column walks), a bounded
// range over a slice, and the two unprovable shapes (decreasing walk,
// limit mutated in the body) that must surface as blockers.
func TestSkeletonLoopBounds(t *testing.T) {
	set := skeletonsFor(t)
	ax := DefaultWorldAxioms()

	oneLoop := func(key string) CommLoop {
		t.Helper()
		sk := skel(t, set, key)
		if len(sk.Loops) != 1 {
			t.Fatalf("%s has %d comm loops, want 1", key, len(sk.Loops))
		}
		return sk.Loops[0]
	}

	if cl := oneLoop("p.boundedLen"); !cl.Proved || cl.Bound != NewInterval(0, ax.MaxLen) {
		t.Errorf("boundedLen: proved=%v bound=%v, want proved with [0,%d]", cl.Proved, cl.Bound, ax.MaxLen)
	}
	if cl := oneLoop("p.conjunctionBound"); !cl.Proved {
		t.Error("conjunctionBound: a conjunctive condition with one provable conjunct must prove")
	}
	if cl := oneLoop("p.strideBound"); !cl.Proved {
		t.Error("strideBound: a loop-invariant identifier stride must prove")
	}
	if cl := oneLoop("p.rangeLoop"); !cl.Proved || cl.Bound != NewInterval(0, ax.MaxLen) {
		t.Errorf("rangeLoop: proved=%v bound=%v, want proved with [0,%d]", cl.Proved, cl.Bound, ax.MaxLen)
	}
	for _, key := range []string{"p.downward", "p.mutatedLimit"} {
		if cl := oneLoop(key); cl.Proved {
			t.Errorf("%s: proved an unbounded communication loop", key)
		}
		sk := skel(t, set, key)
		if len(sk.Blockers) != 1 || !strings.Contains(sk.Blockers[0].Reason, "no provable trip bound") {
			t.Errorf("%s blockers = %v, want one unbounded-loop blocker", key, sk.Blockers)
		}
	}
	// A loop with neither comm nor calls is not a communication loop.
	if sk := skel(t, set, "p.quiet"); len(sk.Loops) != 0 {
		t.Errorf("quiet: %d comm loops recorded for a pure loop", len(sk.Loops))
	}
}

// TestSkeletonBlockers pins the hard-blocker inventory: raw concurrency and
// channel constructs, deferred communication, and range-over-channel loops
// all disqualify a function from model checking.
func TestSkeletonBlockers(t *testing.T) {
	set := skeletonsFor(t)
	sk := skel(t, set, "p.blocked")
	want := []string{
		"go statement",
		"select statement",
		"raw channel send",
		"raw channel receive",
		"deferred communication",
		"range over channel",
	}
	for _, w := range want {
		found := false
		for _, b := range sk.Blockers {
			if strings.Contains(b.Reason, w) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("p.blocked lacks a %q blocker; got %v", w, sk.Blockers)
		}
	}
	if ok, _ := set.Modelable("p.blocked"); ok {
		t.Error("p.blocked is reported modelable")
	}
	// Blockers propagate through the call graph to callers...
	if ok, bl := set.Modelable("p.callsBlocked"); ok || len(bl) == 0 {
		t.Error("p.callsBlocked inherits no blockers from its callee")
	} else if desc := set.DescribeBlockers(skel(t, set, "p.blocked").Node.Pkg.Fset, bl); !strings.Contains(desc, "go statement") {
		t.Errorf("DescribeBlockers output %q lacks the blocker reason", desc)
	}
	// ...and a clean function stays modelable.
	if ok, bl := set.Modelable("p.verbs"); !ok {
		t.Errorf("p.verbs not modelable: %v", bl)
	}
}

// TestSkeletonIndirectAndReach pins the soft-blocker and reachability
// queries: func-typed hook calls are recorded (not hard blockers), and
// comm-reachability follows call edges.
func TestSkeletonIndirectAndReach(t *testing.T) {
	set := skeletonsFor(t)
	sk := skel(t, set, "p.indirect")
	if len(sk.Indirect) != 1 {
		t.Errorf("p.indirect records %d indirect calls, want 1", len(sk.Indirect))
	}
	if ok, bl := set.Modelable("p.indirect"); !ok {
		t.Errorf("an indirect call must not hard-block: %v", bl)
	}
	for key, want := range map[string]bool{
		"p.leaf":   true,
		"p.mid":    true, // via the call edge to leaf
		"p.silent": false,
		"p.quiet":  false,
	} {
		if got := set.CommReach(key); got != want {
			t.Errorf("CommReach(%s) = %v, want %v", key, got, want)
		}
	}
}

// TestModelBoundaryPkg pins the interpretation boundary: transport and
// arithmetic packages are primitives/bridged, protocol packages are not.
func TestModelBoundaryPkg(t *testing.T) {
	for path, want := range map[string]bool{
		"repro/internal/machine":           true,
		"repro/internal/machine/transport": true,
		"repro/internal/machine/simnet":    true,
		"repro/internal/toom":              true,
		"repro/internal/erasure":           true,
		"repro/internal/collective":        false,
		"repro/internal/ftparallel":        false,
		"p":                                false,
	} {
		if got := ModelBoundaryPkg(path); got != want {
			t.Errorf("ModelBoundaryPkg(%q) = %v, want %v", path, got, want)
		}
	}
}
