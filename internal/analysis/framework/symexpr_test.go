package framework

import "testing"

func TestSymExprNormalization(t *testing.T) {
	g, w := SymVar("g"), SymVar("W")
	// (g + W)·(g − W) normalizes to g² − W² with the cross terms cancelled.
	e := g.Add(w).Mul(g.Sub(w))
	if got := e.String(); got != "-W*W + g*g" {
		t.Errorf("(g+W)(g-W) = %q", got)
	}
	// Addition is order-insensitive after normalization.
	if a, b := w.Add(g), g.Add(w); !a.Equal(b) {
		t.Errorf("g+W %q != W+g %q", b, a)
	}
	// Scaling to zero erases terms entirely.
	if !g.Scale(0).IsZero() {
		t.Errorf("0·g should be zero")
	}
	if c, ok := SymConst(7).Add(SymConst(-7)).IsConst(); !ok || c != 0 {
		t.Errorf("7-7 = %v %v", c, ok)
	}
}

func TestSymExprLogAndCeilDiv(t *testing.T) {
	g := SymVar("g")
	// Constants fold: ⌈log₂ 5⌉ = 3, ⌈log₂ 1⌉ = 0.
	if c, ok := SymLog2Ceil(SymConst(5)).IsConst(); !ok || c != 3 {
		t.Errorf("log2c(5) = %v %v", c, ok)
	}
	if !SymLog2Ceil(SymConst(1)).IsZero() {
		t.Errorf("log2c(1) should be 0")
	}
	// Symbolic logs render canonically and evaluate.
	lg := SymLog2Ceil(g)
	if got := lg.String(); got != "log2c(g)" {
		t.Errorf("log2c(g) renders %q", got)
	}
	v, err := lg.Eval(map[string]int64{"g": 9})
	if err != nil || v != 4 {
		t.Errorf("log2c(9) = %d, %v", v, err)
	}
	// Exact coefficient division stays polynomial; inexact stays symbolic.
	if got := SymCeilDiv(g.Scale(6), SymConst(3)).String(); got != "2*g" {
		t.Errorf("6g/3 = %q", got)
	}
	cd := SymCeilDiv(g, SymConst(2))
	if got := cd.String(); got != "ceildiv(g,2)" {
		t.Errorf("⌈g/2⌉ renders %q", got)
	}
	v, err = cd.Eval(map[string]int64{"g": 5})
	if err != nil || v != 3 {
		t.Errorf("⌈5/2⌉ = %d, %v", v, err)
	}
}

func TestSymExprMaxAndDomination(t *testing.T) {
	g, w := SymVar("g"), SymVar("W")
	// Coefficient-wise domination collapses the max.
	if got := SymMax(g.Scale(2), g); !got.Equal(g.Scale(2)) {
		t.Errorf("max(2g, g) = %q", got)
	}
	// Incomparable arguments keep a canonical (sorted) max atom.
	m := SymMax(w, g)
	if got := m.String(); got != "max(W,g)" {
		t.Errorf("max(W,g) renders %q", got)
	}
	if !m.Equal(SymMax(g, w)) {
		t.Errorf("max should be commutative after canonicalization")
	}
	v, err := m.Eval(map[string]int64{"g": 3, "W": 8})
	if err != nil || v != 8 {
		t.Errorf("max(8,3) = %d, %v", v, err)
	}
	// The ≥1 basis shift proves W ≥ 1 and hence max(W, 1) = W, which the
	// plain non-negative test cannot (W could be 0 there).
	if SymMax(w, SymConst(1)).Equal(w) {
		t.Errorf("plain max must not assume W >= 1")
	}
	if got := SymMaxMin1(w, SymConst(1)); !got.Equal(w) {
		t.Errorf("max(W,1) under W>=1 = %q", got)
	}
	if !GEMin1(w.Mul(g), w) || GEMin1(w, w.Mul(g)) {
		t.Errorf("W·g >= W should hold (and not conversely) for g >= 1")
	}
}

func TestSymExprVarsAndUnbound(t *testing.T) {
	g, w := SymVar("g"), SymVar("W")
	e := w.Mul(SymLog2Ceil(g)).Add(SymConst(4))
	if got := e.Vars(); len(got) != 2 || got[0] != "W" || got[1] != "g" {
		t.Errorf("Vars = %v", got)
	}
	if _, err := e.Eval(map[string]int64{"W": 1}); err == nil {
		t.Errorf("expected unbound-variable error for g")
	}
}
