package framework

import (
	"go/ast"
	"go/token"
	"testing"
)

// callsIn reports whether block b contains a call to a function named name
// (shallow: closure bodies excluded).
func callsIn(b *Block, name string) bool {
	found := false
	for _, n := range b.Nodes {
		InspectShallow(n, func(m ast.Node) bool {
			if call, ok := m.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == name {
					found = true
				}
			}
			return true
		})
	}
	return found
}

// boolSpec is a may-analysis over bool facts: Join is OR, and a block's
// transfer sets the fact once it contains a call to trigger.
func boolSpec(trigger string) FlowSpec[bool] {
	return FlowSpec[bool]{
		Bottom:   func() bool { return false },
		Boundary: func() bool { return false },
		Join:     func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
		Transfer: func(b *Block, in bool) bool { return in || callsIn(b, "mark") },
	}
}

func TestForwardSolveBranch(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(c bool) {
	if c {
		mark()
	}
	after()
	mark2()
}
func mark(){}; func after(){}; func mark2(){}`)

	res := ForwardSolve(g, boolSpec("mark"))
	after := blockAtLine(fset, g, 6)
	if !res.In[after] {
		t.Error("fact from one branch should survive the join in a may-analysis")
	}
	markBlk := blockAtLine(fset, g, 4)
	if res.In[markBlk] {
		t.Error("fact set before the marking block executes")
	}
	if !res.Out[markBlk] {
		t.Error("transfer did not set the fact in the marking block")
	}
}

func TestForwardSolveLoopFixpoint(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f(n int) {
	for i := 0; i < n; i++ {
		head()
		mark()
	}
	after()
}
func head(){}; func mark(){}; func after(){}`)

	res := ForwardSolve(g, boolSpec("mark"))
	// The back edge must carry the fact into the next iteration's first
	// statement: head() is reached both marked (iteration ≥ 2) and unmarked
	// (iteration 1), and a may-analysis keeps the marked state.
	head := blockAtLine(fset, g, 4)
	if !res.In[head] {
		t.Error("loop back edge did not propagate the fact to the body head")
	}
	if !res.In[blockAtLine(fset, g, 7)] {
		t.Error("fact lost after the loop")
	}
}

func TestForwardSolveUnreachableStaysBottom(t *testing.T) {
	fset, g := parseFunc(t, `package p
func f() {
	mark()
	return
	dead()
}
func mark(){}; func dead(){}`)

	res := ForwardSolve(g, boolSpec("mark"))
	dead := blockAtLine(fset, g, 5)
	if res.In[dead] || res.Out[dead] {
		t.Error("unreachable block acquired a non-Bottom fact")
	}
}

func TestBackwardSolveLiveness(t *testing.T) {
	// Backward may-analysis: "a call to mark() still lies ahead".
	spec := FlowSpec[bool]{
		Bottom:   func() bool { return false },
		Boundary: func() bool { return false },
		Join:     func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
		Transfer: func(b *Block, after bool) bool { return after || callsIn(b, "mark") },
	}
	fset, g := parseFunc(t, `package p
func f(c bool) {
	early()
	if c {
		return
	}
	mark()
}
func early(){}; func mark(){}`)

	res := BackwardSolve(g, spec)
	early := blockAtLine(fset, g, 3)
	if !res.Out[early] {
		t.Error("backward fact did not reach the entry-side block (mark lies ahead on the else path)")
	}
	ret := blockAtLine(fset, g, 5)
	if res.In[ret] {
		t.Error("the return path has no mark ahead, yet the after-fact is set")
	}
	if res.Out[ret] {
		t.Error("the return block itself cannot reach mark")
	}
}

func TestCheckProtocolBranchAndLoop(t *testing.T) {
	// Direct engine-level check of the protocol lattice: release in one
	// branch only → partial leak at exit; loop back edge → partial
	// use-after-release and partial double release.
	fset, g := parseFunc(t, `package p
func f(c bool, xs []int) {
	acquire()
	for range xs {
		use()
		release()
	}
}
func acquire(){}; func use(){}; func release(){}`)

	byName := map[string]ProtoEvent{
		"acquire": {Kind: ProtoAcquire, Name: "acquire"},
		"use":     {Kind: ProtoUse, Name: "use"},
		"release": {Kind: ProtoRelease, Name: "release"},
	}
	events := make(map[token.Pos]ProtoEvent)
	var exitPos token.Pos
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if n.End() > exitPos {
				exitPos = n.End()
			}
			InspectShallow(n, func(m ast.Node) bool {
				if call, ok := m.(*ast.CallExpr); ok {
					if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
						if ev, ok := byName[id.Name]; ok {
							events[call.Pos()] = ev
						}
					}
				}
				return true
			})
		}
	}

	findings := CheckProtocol(g, events, exitPos)
	kinds := map[ProtoFindingKind]int{}
	for _, f := range findings {
		kinds[f.Kind]++
		if f.Pos == token.NoPos {
			t.Errorf("finding %v has no position", f.Kind)
		} else {
			_ = fset.Position(f.Pos) // must resolve
		}
	}
	if kinds[UseAfterReleasePartial] != 1 {
		t.Errorf("want one partial use-after-release (loop back edge), got %v", kinds)
	}
	if kinds[DoubleReleasePartial] != 1 {
		t.Errorf("want one partial double release (loop back edge), got %v", kinds)
	}
	if kinds[LeakExitPartial] != 1 {
		t.Errorf("want one partial leak at exit (zero-iteration path), got %v", kinds)
	}
	if len(findings) != 3 {
		t.Errorf("unexpected extra findings: %v", kinds)
	}
}
