package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"sync"
)

// listPackage is the subset of `go list -json` output the loader consumes.
type listPackage struct {
	Dir        string
	ImportPath string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load resolves the given `go list` patterns (e.g. "./...") to type-checked
// packages ready for analysis. It shells out to `go list -export -deps` so
// the go toolchain does dependency resolution and produces export data for
// every import; the target packages themselves are parsed and type-checked
// from source (the analyzers need their ASTs), with imports satisfied from
// the export data. No code outside the standard library is required.
func Load(dir string, patterns ...string) ([]*Package, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	args := append([]string{"list", "-e", "-export", "-deps", "-json"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list: %v\n%s", err, stderr.String())
	}
	return loadList(out)
}

var loadCache = struct {
	sync.Mutex
	pkgs map[string][]*Package
	hits int
}{pkgs: map[string][]*Package{}}

// LoadCached is Load memoized on (absolute dir, sorted patterns). Analyzer
// test suites in one test binary all load the same module root; go list +
// type-checking dominates their runtime, and the loaded packages are
// read-only for analysis, so one shared load serves every suite.
func LoadCached(dir string, patterns ...string) ([]*Package, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	sorted := append([]string(nil), patterns...)
	sort.Strings(sorted)
	key := abs + "\x00" + strings.Join(sorted, "\x00")

	loadCache.Lock()
	defer loadCache.Unlock()
	if pkgs, ok := loadCache.pkgs[key]; ok {
		loadCache.hits++
		return pkgs, nil
	}
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return nil, err // errors are not cached: a fixed tree should reload
	}
	loadCache.pkgs[key] = pkgs
	return pkgs, nil
}

// loadCacheHits reports how many LoadCached calls were served from cache
// (test observability).
func loadCacheHits() int {
	loadCache.Lock()
	defer loadCache.Unlock()
	return loadCache.hits
}

// loadList turns raw `go list -e -export -deps -json` output into parsed,
// type-checked packages. Split from Load so the decoding and type-checking
// error paths are testable without a real toolchain invocation.
func loadList(out []byte) ([]*Package, error) {
	exports := make(map[string]string)
	var targets []listPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for dec.More() {
		var p listPackage
		if err := dec.Decode(&p); err != nil {
			return nil, fmt.Errorf("go list: decoding output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})

	var pkgs []*Package
	for _, t := range targets {
		if len(t.GoFiles) == 0 {
			continue
		}
		var files []*ast.File
		for _, name := range t.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(t.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %v", name, err)
			}
			files = append(files, f)
		}
		info := NewInfo()
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(t.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %v", t.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			Path:  t.ImportPath,
			Fset:  fset,
			Files: files,
			Types: tpkg,
			Info:  info,
		})
	}
	return pkgs, nil
}
