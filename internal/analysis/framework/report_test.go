package framework

import (
	"go/token"
	"reflect"
	"testing"
)

func diag(file string, line, col int, analyzer, msg string) Diagnostic {
	return Diagnostic{
		Position: token.Position{Filename: file, Line: line, Column: col},
		Analyzer: analyzer,
		Message:  msg,
	}
}

// TestSortDiagsTieBreaks pins the total order behind the -json report:
// file, line, column, then analyzer and message so position ties (several
// analyzers firing on one line) come out deterministically.
func TestSortDiagsTieBreaks(t *testing.T) {
	ds := []Diagnostic{
		diag("b.go", 1, 1, "accown", "x"),
		diag("a.go", 2, 1, "tagflow", "z"),
		diag("a.go", 2, 1, "protomc", "z"),
		diag("a.go", 2, 1, "protomc", "a"),
		diag("a.go", 1, 9, "accown", "x"),
		diag("a.go", 1, 2, "accown", "x"),
	}
	sortDiags(ds)
	want := []Diagnostic{
		diag("a.go", 1, 2, "accown", "x"),
		diag("a.go", 1, 9, "accown", "x"),
		diag("a.go", 2, 1, "protomc", "a"),
		diag("a.go", 2, 1, "protomc", "z"),
		diag("a.go", 2, 1, "tagflow", "z"),
		diag("b.go", 1, 1, "accown", "x"),
	}
	if !reflect.DeepEqual(ds, want) {
		t.Errorf("sortDiags order:\n got %v\nwant %v", ds, want)
	}
}

// TestDedupeDiags pins the duplicate-collapse rule: exact (position,
// analyzer, message) repeats collapse to one entry, while a difference in
// any of those fields survives.
func TestDedupeDiags(t *testing.T) {
	ds := []Diagnostic{
		diag("a.go", 1, 1, "accown", "x"),
		diag("a.go", 1, 1, "accown", "x"),  // exact duplicate: dropped
		diag("a.go", 1, 1, "accown", "y"),  // message differs: kept
		diag("a.go", 1, 1, "tagflow", "y"), // analyzer differs: kept
		diag("a.go", 1, 2, "tagflow", "y"), // column differs: kept
	}
	got := dedupeDiags(ds)
	want := []Diagnostic{
		diag("a.go", 1, 1, "accown", "x"),
		diag("a.go", 1, 1, "accown", "y"),
		diag("a.go", 1, 1, "tagflow", "y"),
		diag("a.go", 1, 2, "tagflow", "y"),
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("dedupeDiags:\n got %v\nwant %v", got, want)
	}
	if len(dedupeDiags(nil)) != 0 {
		t.Error("dedupeDiags(nil) is non-empty")
	}
}
