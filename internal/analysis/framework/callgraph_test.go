package framework

import "testing"

const callgraphSrc = `package p

type W struct{ n int }

func (w *W) Ping() { w.n++ }
func (w W) Pong()  {}
func helper()      {}
func deeper()      {}

func direct(w *W) {
	w.Ping()
	w.Pong()
}

func immediateValue(w *W) {
	(w.Ping)()
}

func boundValue(w *W) {
	f := w.Ping
	f()
}

func deferredLit(w *W) {
	defer func() {
		helper()
		w.Ping()
	}()
}

func nestedLit() {
	go func() {
		func() {
			deeper()
		}()
	}()
}
`

func callgraphFor(t *testing.T) *CallGraph {
	t.Helper()
	pkg := typeCheckPkg(t, "p", callgraphSrc)
	return NewCallGraph([]*Package{pkg})
}

func wantEdge(t *testing.T, g *CallGraph, from, to string) {
	t.Helper()
	n := g.Nodes[from]
	if n == nil {
		t.Fatalf("no node for %s", from)
	}
	if !n.Calls[to] {
		t.Errorf("%s has no edge to %s; edges: %v", from, to, n.Calls)
	}
}

// TestCallGraphMethodValueEdges pins edge resolution through concrete
// receivers: plain method calls and an immediately invoked (parenthesized)
// method value both resolve to pkg.Recv.Name keys, while a method value
// bound to a variable first is a func-typed call and produces no edge —
// analyzers must treat that callee conservatively.
func TestCallGraphMethodValueEdges(t *testing.T) {
	g := callgraphFor(t)
	wantEdge(t, g, "p.direct", "p.W.Ping")
	wantEdge(t, g, "p.direct", "p.W.Pong")
	wantEdge(t, g, "p.immediateValue", "p.W.Ping")
	if n := g.Nodes["p.boundValue"]; n == nil {
		t.Fatal("no node for p.boundValue")
	} else if n.Calls["p.W.Ping"] {
		t.Error("p.boundValue gained an edge through a func-typed variable; the graph documents that as unresolved")
	}
}

// TestCallGraphDeferredFuncLitEdges pins closure attribution: calls inside
// a deferred function literal — and inside literals nested under a go
// statement — belong to the enclosing declared function, which is what the
// reachability facts (charging, spawning, recovery) need.
func TestCallGraphDeferredFuncLitEdges(t *testing.T) {
	g := callgraphFor(t)
	wantEdge(t, g, "p.deferredLit", "p.helper")
	wantEdge(t, g, "p.deferredLit", "p.W.Ping")
	wantEdge(t, g, "p.nestedLit", "p.deeper")
	// The literals themselves are not declared functions: no spurious nodes.
	for key := range g.Nodes {
		switch key {
		case "p.W.Ping", "p.W.Pong", "p.helper", "p.deeper",
			"p.direct", "p.immediateValue", "p.boundValue",
			"p.deferredLit", "p.nestedLit":
		default:
			t.Errorf("unexpected call-graph node %q", key)
		}
	}
}
