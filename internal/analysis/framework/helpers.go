package framework

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Shared syntactic/semantic helpers for the ftlint analyzers. Everything
// here matches by *name* (function name, named-type name) rather than by
// package identity: the same analyzer then works both on the real tree and
// on the self-contained testdata fixtures, which declare miniature stand-ins
// for arena/Acc/Int/Stats/Proc instead of importing repro packages.

// CalleeIdent returns the rightmost identifier of a call's function
// expression: f(...) -> f, pkg.F(...) -> F, x.m(...) -> m. Nil when the
// callee is not a plain (possibly selected) identifier.
func CalleeIdent(call *ast.CallExpr) *ast.Ident {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fn
	case *ast.SelectorExpr:
		return fn.Sel
	}
	return nil
}

// CalleeFunc resolves the called function or method object, when the callee
// is a declared func (not a func-typed variable or a conversion).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	id := CalleeIdent(call)
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// NamedTypeName unwraps pointers and returns the name of the underlying
// named type ("" for unnamed types).
func NamedTypeName(t types.Type) string {
	for {
		p, ok := t.(*types.Pointer)
		if !ok {
			break
		}
		t = p.Elem()
	}
	type hasObj interface{ Obj() *types.TypeName }
	if n, ok := t.(hasObj); ok { // *types.Named and *types.Alias both qualify
		return n.Obj().Name()
	}
	return ""
}

// RecvTypeName returns the receiver type name of a method call expression
// ("" when the call is not a method call).
func RecvTypeName(info *types.Info, call *ast.CallExpr) string {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	if s := info.Selections[sel]; s != nil && s.Kind() == types.MethodVal {
		return NamedTypeName(s.Recv())
	}
	// Method expression or package-qualified function.
	if fn, ok := info.Uses[sel.Sel].(*types.Func); ok {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			return NamedTypeName(sig.Recv().Type())
		}
	}
	return ""
}

// ReceiverObject resolves the object of a method call's receiver when the
// receiver expression is a plain identifier (nil otherwise).
func ReceiverObject(info *types.Info, call *ast.CallExpr) types.Object {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	id, ok := ast.Unparen(sel.X).(*ast.Ident)
	if !ok {
		return nil
	}
	return info.Uses[id]
}

// DeferSpan is the position span of one defer statement plus the position
// of its deferred CallExpr (the anchor for protocol events: for
// `defer f(x)` that is f's call, for `defer func() { ... }()` the closure
// invocation — the node a CFG walk actually visits).
type DeferSpan struct {
	Start, End token.Pos
	CallPos    token.Pos
}

// DeferRanges records every defer statement in a function body, so analyzers
// can ask whether a call runs deferred (either `defer f(x)` directly or
// inside a deferred closure) and where the registration is anchored.
type DeferRanges []DeferSpan

// CollectDeferRanges gathers the spans of all DeferStmts under root.
func CollectDeferRanges(root ast.Node) DeferRanges {
	var spans DeferRanges
	ast.Inspect(root, func(n ast.Node) bool {
		if d, ok := n.(*ast.DeferStmt); ok {
			spans = append(spans, DeferSpan{Start: d.Pos(), End: d.End(), CallPos: d.Call.Pos()})
		}
		return true
	})
	return spans
}

// Contains reports whether pos falls inside any defer statement.
func (r DeferRanges) Contains(pos token.Pos) bool {
	_, ok := r.CallAt(pos)
	return ok
}

// CallAt returns the deferred CallExpr position of the innermost defer
// statement containing pos (false when pos is not deferred).
func (r DeferRanges) CallAt(pos token.Pos) (token.Pos, bool) {
	best := -1
	for i, s := range r {
		if pos < s.Start || pos >= s.End {
			continue
		}
		if best < 0 || s.Start >= r[best].Start {
			best = i // innermost: latest start among containing spans
		}
	}
	if best < 0 {
		return token.NoPos, false
	}
	return r[best].CallPos, true
}

// PathHasSegment reports whether an import path contains seg as a complete
// path segment ("repro/internal/toom" has segment "toom" but not "too").
func PathHasSegment(path, seg string) bool {
	for len(path) > 0 {
		i := 0
		for i < len(path) && path[i] != '/' {
			i++
		}
		if path[:i] == seg {
			return true
		}
		if i == len(path) {
			break
		}
		path = path[i+1:]
	}
	return false
}

// InspectShallow walks the AST rooted at n like ast.Inspect but does not
// descend into function literals: a closure's body executes when the closure
// is *called*, not where it is written, so flow-sensitive analyzers walking
// CFG block nodes must not attribute its effects to the enclosing function's
// program point. The literal node itself is still visited.
func InspectShallow(n ast.Node, f func(ast.Node) bool) {
	ast.Inspect(n, func(m ast.Node) bool {
		if m == nil {
			return true
		}
		if _, ok := m.(*ast.FuncLit); ok {
			f(m)
			return false
		}
		return f(m)
	})
}

// FuncDecls calls fn for every function declaration with a body.
func FuncDecls(files []*ast.File, fn func(*ast.FuncDecl)) {
	for _, f := range files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				fn(fd)
			}
		}
	}
}
