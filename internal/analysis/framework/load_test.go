package framework

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// pkgJSON renders one go-list JSON object for loadList.
func pkgJSON(t *testing.T, p map[string]any) []byte {
	t.Helper()
	b, err := json.Marshal(p)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// writeFixture drops a single-file package into a temp dir and returns it.
func writeFixture(t *testing.T, name, src string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
		t.Fatalf("writing fixture: %v", err)
	}
	return dir
}

func wantLoadError(t *testing.T, out []byte, substr string) {
	t.Helper()
	pkgs, err := loadList(out)
	if err == nil {
		t.Fatalf("loadList succeeded with %d packages, want error containing %q", len(pkgs), substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Errorf("error %q does not mention %q", err, substr)
	}
}

func TestLoadListMalformedJSON(t *testing.T) {
	wantLoadError(t, []byte(`{"ImportPath": "x", `), "decoding output")
}

func TestLoadListReportsListError(t *testing.T) {
	out := pkgJSON(t, map[string]any{
		"ImportPath": "broken/pkg",
		"Error":      map[string]any{"Err": "no Go files in broken/pkg"},
	})
	wantLoadError(t, out, "no Go files in broken/pkg")
}

func TestLoadListParseError(t *testing.T) {
	dir := writeFixture(t, "bad.go", "package p\nfunc {\n")
	out := pkgJSON(t, map[string]any{
		"Dir":        dir,
		"ImportPath": "tmp/bad",
		"GoFiles":    []string{"bad.go"},
	})
	wantLoadError(t, out, "parsing bad.go")
}

func TestLoadListTypeCheckError(t *testing.T) {
	dir := writeFixture(t, "ill.go", "package p\nvar x = undefinedSymbol\n")
	out := pkgJSON(t, map[string]any{
		"Dir":        dir,
		"ImportPath": "tmp/ill",
		"GoFiles":    []string{"ill.go"},
	})
	wantLoadError(t, out, "type-checking tmp/ill")
}

func TestLoadListMissingExportData(t *testing.T) {
	dir := writeFixture(t, "imp.go", "package p\nimport _ \"fake/dep\"\n")
	out := pkgJSON(t, map[string]any{
		"Dir":        dir,
		"ImportPath": "tmp/imp",
		"GoFiles":    []string{"imp.go"},
	})
	// No deps in the list output, so the importer has no export data for
	// fake/dep and type-checking must surface that.
	wantLoadError(t, out, `no export data for "fake/dep"`)
}

func TestLoadBadPattern(t *testing.T) {
	pkgs, err := Load(".", "./no-such-dir")
	if err == nil {
		t.Fatalf("Load succeeded with %d packages for a nonexistent pattern", len(pkgs))
	}
}

// TestLoadCachedMemoizes pins the memoization contract: a second LoadCached
// call with the same target — even spelled with a different relative dir —
// is served from cache (observable via loadCacheHits) and returns the very
// same packages, so fixture suites sharing one test binary pay for `go list
// -export` once.
func TestLoadCachedMemoizes(t *testing.T) {
	root, err := filepath.Abs("../../..")
	if err != nil {
		t.Fatal(err)
	}
	first, err := LoadCached(root, "./internal/bigint")
	if err != nil {
		t.Fatalf("LoadCached (cold): %v", err)
	}
	if len(first) == 0 {
		t.Fatal("LoadCached returned no packages for ./internal/bigint")
	}
	before := loadCacheHits()
	// A relative dir spelling the same directory must normalize to the
	// same cache key.
	second, err := LoadCached("../../..", "./internal/bigint")
	if err != nil {
		t.Fatalf("LoadCached (warm): %v", err)
	}
	if got := loadCacheHits(); got != before+1 {
		t.Errorf("cache hits went %d -> %d across a repeat load, want exactly one new hit", before, got)
	}
	if len(second) != len(first) || second[0] != first[0] {
		t.Errorf("warm load returned different packages: %p vs %p", second[0], first[0])
	}
	// Errors must not be cached: a bad pattern fails on every call rather
	// than poisoning the cache, and does not count as a hit.
	before = loadCacheHits()
	if _, err := LoadCached(root, "./no-such-dir"); err == nil {
		t.Error("LoadCached succeeded for a nonexistent pattern")
	}
	if _, err := LoadCached(root, "./no-such-dir"); err == nil {
		t.Error("LoadCached (repeat) succeeded for a nonexistent pattern")
	}
	if got := loadCacheHits(); got != before {
		t.Errorf("failed loads counted as cache hits: %d -> %d", before, got)
	}
}

func TestLoadListSkipsEmptyTargets(t *testing.T) {
	out := pkgJSON(t, map[string]any{
		"ImportPath": "tmp/empty",
		"GoFiles":    []string{},
	})
	pkgs, err := loadList(out)
	if err != nil {
		t.Fatalf("loadList: %v", err)
	}
	if len(pkgs) != 0 {
		t.Errorf("loadList produced %d packages from a file-less target, want 0", len(pkgs))
	}
}
