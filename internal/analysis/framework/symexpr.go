// symexpr.go is the symbolic-expression layer under the costbound analyzer:
// multivariate polynomials over non-negative symbolic parameters (group size
// g, payload words W, processor count P, split number k, ...) extended with
// the three shapes the paper's cost formulas need beyond polynomials —
// ceiling logarithms (binomial-tree depths), ceiling divisions (grid block
// sizes), and maxima (per-counter worst case over branch alternatives).
//
// Expressions are kept normalized as a sum of terms, each an integer
// coefficient times a sorted product of atoms; an atom is a named variable
// or a composite (log2c/ceildiv/max) over child expressions, identified by
// its canonical rendering. Normalization makes Equal a structural check and
// String stable, so derived cost polynomials can be compared and reported
// deterministically.
//
// All variables are assumed non-negative (they are counts); that assumption
// powers the Max simplification: max(a, b) collapses to a when every
// coefficient of a-b is non-negative.
package framework

import (
	"fmt"
	"sort"
	"strings"
)

// SymExpr is a normalized symbolic expression: Σ coeff·Π atoms. The zero
// value is the constant 0.
type SymExpr struct {
	terms []symTerm // sorted by product key; no zero coefficients
}

type symTerm struct {
	coeff int64
	atoms []symAtom // sorted by key; products of repeated atoms allowed
}

type atomKind int

const (
	atomVar atomKind = iota
	atomLog2c
	atomCeilDiv
	atomMax
)

type symAtom struct {
	kind atomKind
	name string    // atomVar
	args []SymExpr // composite children
	key  string    // canonical rendering, cached
}

func (a symAtom) render() string {
	switch a.kind {
	case atomVar:
		return a.name
	case atomLog2c:
		return "log2c(" + a.args[0].String() + ")"
	case atomCeilDiv:
		return "ceildiv(" + a.args[0].String() + "," + a.args[1].String() + ")"
	case atomMax:
		parts := make([]string, len(a.args))
		for i, e := range a.args {
			parts[i] = e.String()
		}
		return "max(" + strings.Join(parts, ",") + ")"
	}
	return "?"
}

func newAtom(kind atomKind, name string, args ...SymExpr) symAtom {
	a := symAtom{kind: kind, name: name, args: args}
	a.key = a.render()
	return a
}

// termKey is the canonical product identity of a term (atoms only).
func termKey(atoms []symAtom) string {
	keys := make([]string, len(atoms))
	for i, a := range atoms {
		keys[i] = a.key
	}
	return strings.Join(keys, "*")
}

// normalize sorts and merges raw terms into canonical form.
func normalize(raw []symTerm) SymExpr {
	merged := map[string]*symTerm{}
	var order []string
	for _, t := range raw {
		if t.coeff == 0 {
			continue
		}
		atoms := append([]symAtom(nil), t.atoms...)
		sort.Slice(atoms, func(i, j int) bool { return atoms[i].key < atoms[j].key })
		k := termKey(atoms)
		if m, ok := merged[k]; ok {
			m.coeff += t.coeff
		} else {
			merged[k] = &symTerm{coeff: t.coeff, atoms: atoms}
			order = append(order, k)
		}
	}
	sort.Strings(order)
	var out []symTerm
	for _, k := range order {
		if merged[k].coeff != 0 {
			out = append(out, *merged[k])
		}
	}
	return SymExpr{terms: out}
}

// SymConst returns the constant expression c.
func SymConst(c int64) SymExpr {
	if c == 0 {
		return SymExpr{}
	}
	return SymExpr{terms: []symTerm{{coeff: c}}}
}

// SymVar returns the variable expression named name.
func SymVar(name string) SymExpr {
	return SymExpr{terms: []symTerm{{coeff: 1, atoms: []symAtom{newAtom(atomVar, name)}}}}
}

// IsConst reports whether e is a constant, returning its value.
func (e SymExpr) IsConst() (int64, bool) {
	if len(e.terms) == 0 {
		return 0, true
	}
	if len(e.terms) == 1 && len(e.terms[0].atoms) == 0 {
		return e.terms[0].coeff, true
	}
	return 0, false
}

// IsZero reports whether e is the constant 0.
func (e SymExpr) IsZero() bool { return len(e.terms) == 0 }

// Add returns e + f.
func (e SymExpr) Add(f SymExpr) SymExpr {
	return normalize(append(append([]symTerm(nil), e.terms...), f.terms...))
}

// Sub returns e − f.
func (e SymExpr) Sub(f SymExpr) SymExpr { return e.Add(f.Scale(-1)) }

// Scale returns c·e.
func (e SymExpr) Scale(c int64) SymExpr {
	out := make([]symTerm, 0, len(e.terms))
	for _, t := range e.terms {
		out = append(out, symTerm{coeff: t.coeff * c, atoms: t.atoms})
	}
	return normalize(out)
}

// Mul returns e·f (polynomial product).
func (e SymExpr) Mul(f SymExpr) SymExpr {
	var out []symTerm
	for _, a := range e.terms {
		for _, b := range f.terms {
			out = append(out, symTerm{
				coeff: a.coeff * b.coeff,
				atoms: append(append([]symAtom(nil), a.atoms...), b.atoms...),
			})
		}
	}
	return normalize(out)
}

// SymLog2Ceil returns ⌈log₂ e⌉ (0 for e ≤ 1), folding constants.
func SymLog2Ceil(e SymExpr) SymExpr {
	if c, ok := e.IsConst(); ok {
		return SymConst(log2ceil64(c))
	}
	return SymExpr{terms: []symTerm{{coeff: 1, atoms: []symAtom{newAtom(atomLog2c, "", e)}}}}
}

// SymCeilDiv returns ⌈a/b⌉, folding constants and exact monomial divisions.
func SymCeilDiv(a, b SymExpr) SymExpr {
	if a.IsZero() {
		return SymExpr{}
	}
	if bc, ok := b.IsConst(); ok {
		if bc == 1 {
			return a
		}
		if ac, aok := a.IsConst(); aok && bc > 0 {
			return SymConst((ac + bc - 1) / bc)
		}
		// Exact coefficient division keeps the polynomial closed.
		if bc > 0 {
			exact := true
			for _, t := range a.terms {
				if t.coeff%bc != 0 {
					exact = false
					break
				}
			}
			if exact {
				out := make([]symTerm, 0, len(a.terms))
				for _, t := range a.terms {
					out = append(out, symTerm{coeff: t.coeff / bc, atoms: t.atoms})
				}
				return normalize(out)
			}
		}
	}
	return SymExpr{terms: []symTerm{{coeff: 1, atoms: []symAtom{newAtom(atomCeilDiv, "", a, b)}}}}
}

// GE reports whether e ≥ f holds for every non-negative assignment — true
// only when every coefficient of e−f is non-negative (a sound, incomplete
// test).
func (e SymExpr) GE(f SymExpr) bool {
	d := e.Sub(f)
	for _, t := range d.terms {
		if t.coeff < 0 {
			return false
		}
	}
	return true
}

// shiftVarsMin1 substitutes every variable v by v'+1, the change of basis
// for domination tests under the assumption that all parameters are at
// least 1 (they are counts: group sizes, word counts, processor counts).
// Composite atoms are left in place — they are non-negative and cancel
// between the two sides of a comparison only when structurally identical,
// which is sound.
func (e SymExpr) shiftVarsMin1() SymExpr {
	out := SymConst(0)
	for _, t := range e.terms {
		f := SymConst(t.coeff)
		for _, a := range t.atoms {
			if a.kind == atomVar {
				f = f.Mul(SymVar(a.name).Add(SymConst(1)))
			} else {
				f = f.Mul(SymExpr{terms: []symTerm{{coeff: 1, atoms: []symAtom{a}}}})
			}
		}
		out = out.Add(f)
	}
	return out
}

// GEMin1 reports whether e ≥ f holds for every assignment with all
// variables ≥ 1 (sound, incomplete).
func GEMin1(e, f SymExpr) bool {
	d := e.Sub(f).shiftVarsMin1()
	for _, t := range d.terms {
		if t.coeff < 0 {
			return false
		}
	}
	return true
}

// SymMaxMin1 is SymMax under the all-variables-≥-1 assumption, collapsing
// strictly more maxima (e.g. max(W, 1) = W).
func SymMaxMin1(e, f SymExpr) SymExpr {
	if GEMin1(e, f) {
		return e
	}
	if GEMin1(f, e) {
		return f
	}
	return SymMax(e, f)
}

// SymMax returns max(e, f), collapsing when one side dominates.
func SymMax(e, f SymExpr) SymExpr {
	if e.GE(f) {
		return e
	}
	if f.GE(e) {
		return f
	}
	// Flatten nested maxima for a canonical argument list.
	var args []SymExpr
	for _, x := range []SymExpr{e, f} {
		if len(x.terms) == 1 && x.terms[0].coeff == 1 && len(x.terms[0].atoms) == 1 && x.terms[0].atoms[0].kind == atomMax {
			args = append(args, x.terms[0].atoms[0].args...)
		} else {
			args = append(args, x)
		}
	}
	sort.Slice(args, func(i, j int) bool { return args[i].String() < args[j].String() })
	return SymExpr{terms: []symTerm{{coeff: 1, atoms: []symAtom{newAtom(atomMax, "", args...)}}}}
}

// Equal reports structural equality of the normalized forms.
func (e SymExpr) Equal(f SymExpr) bool { return e.String() == f.String() }

// String renders the canonical form ("2*W*log2c(g) + W"; "0" when zero).
func (e SymExpr) String() string {
	if len(e.terms) == 0 {
		return "0"
	}
	parts := make([]string, 0, len(e.terms))
	for _, t := range e.terms {
		var b strings.Builder
		if len(t.atoms) == 0 {
			fmt.Fprintf(&b, "%d", t.coeff)
		} else {
			if t.coeff == -1 {
				b.WriteString("-")
			} else if t.coeff != 1 {
				fmt.Fprintf(&b, "%d*", t.coeff)
			}
			for i, a := range t.atoms {
				if i > 0 {
					b.WriteString("*")
				}
				b.WriteString(a.key)
			}
		}
		parts = append(parts, b.String())
	}
	return strings.Join(parts, " + ")
}

// Vars returns the sorted set of variable names appearing in e.
func (e SymExpr) Vars() []string {
	seen := map[string]bool{}
	var walk func(SymExpr)
	walk = func(x SymExpr) {
		for _, t := range x.terms {
			for _, a := range t.atoms {
				if a.kind == atomVar {
					seen[a.name] = true
					continue
				}
				for _, c := range a.args {
					walk(c)
				}
			}
		}
	}
	walk(e)
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Eval evaluates e under the assignment env; every variable must be bound.
func (e SymExpr) Eval(env map[string]int64) (int64, error) {
	var total int64
	for _, t := range e.terms {
		v := t.coeff
		for _, a := range t.atoms {
			av, err := a.eval(env)
			if err != nil {
				return 0, err
			}
			v *= av
		}
		total += v
	}
	return total, nil
}

func (a symAtom) eval(env map[string]int64) (int64, error) {
	switch a.kind {
	case atomVar:
		v, ok := env[a.name]
		if !ok {
			return 0, fmt.Errorf("symexpr: unbound variable %q", a.name)
		}
		return v, nil
	case atomLog2c:
		v, err := a.args[0].Eval(env)
		if err != nil {
			return 0, err
		}
		return log2ceil64(v), nil
	case atomCeilDiv:
		x, err := a.args[0].Eval(env)
		if err != nil {
			return 0, err
		}
		y, err := a.args[1].Eval(env)
		if err != nil {
			return 0, err
		}
		if y <= 0 {
			return 0, fmt.Errorf("symexpr: ceildiv by %d", y)
		}
		return (x + y - 1) / y, nil
	case atomMax:
		best := int64(0)
		for i, c := range a.args {
			v, err := c.Eval(env)
			if err != nil {
				return 0, err
			}
			if i == 0 || v > best {
				best = v
			}
		}
		return best, nil
	}
	return 0, fmt.Errorf("symexpr: unknown atom")
}

// log2ceil64 is ⌈log₂ v⌉ for v ≥ 2, and 0 for v ≤ 1 (the empty binomial
// tree: a group of one communicates with nobody).
func log2ceil64(v int64) int64 {
	if v <= 1 {
		return 0
	}
	var l int64
	for x := int64(1); x < v; x <<= 1 {
		l++
	}
	return l
}
