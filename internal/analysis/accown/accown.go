// Package accown enforces the pooled-accumulator ownership protocol of
// bigint.Acc:
//
//   - every Acc obtained from NewAcc() must reach Release() in the same
//     function (typically `defer acc.Release()`), on *every* control-flow
//     path — a release hidden in one branch of an if, or skipped by an early
//     return, is a pool leak;
//   - no method may be called on an Acc after Release: the accumulator is
//     back in the pool and may already belong to someone else. This includes
//     uses that only happen on the *next* loop iteration after a release in
//     the loop body;
//   - Release must run at most once per acquisition — a double Release
//     corrupts the pool, including the release a still-armed `defer
//     acc.Release()` will run at exit after an explicit Release already ran.
//
// Since PR 3 the checks are flow-sensitive: each Acc's lifecycle runs
// through the framework's CFG + dataflow protocol checker (see
// framework/protocol.go), so branch-only releases and loop-carried
// released states are real fixpoint facts, not lexical approximations.
//
// Since PR 4 the checks are also interprocedural: an Acc passed to another
// declared function is classified through that callee's summary
// (framework/summary.go) — a helper that releases it on every path counts
// as the release, a helper that only uses it leaves the obligation with the
// caller, and only helpers that store it (or code without a summary)
// transfer ownership and end local tracking. Deferred releases are modeled
// as armed protocol states rather than exempting the object, so a deferred
// release in one branch covers only the paths that execute it, and an Acc
// captured by a non-deferred closure escapes.
//
// Take() hands off the accumulated *value* (the Acc stays usable and still
// owes a Release); an Acc that is returned or stored transfers ownership
// and is exempted from the local checks. Matching is by name (NewAcc,
// methods on a type named "Acc"), so the analyzer covers both the real tree
// and import-free fixtures.
package accown

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "accown",
	Doc:  "check that every NewAcc reaches Release on all paths (flow-sensitive, through helper calls) and that no Acc is used after Release",
	Run:  run,
}

func run(pass *framework.Pass) error {
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		checkFunc(pass, fd)
	})
	return nil
}

// accState is the event stream being assembled for one NewAcc acquisition.
type accState struct {
	newPos     token.Pos
	events     map[token.Pos]framework.ProtoEvent
	escaped    bool
	hasRelease bool // some release exists (explicit, deferred, or via helper)
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	defers := framework.CollectDeferRanges(fd.Body)
	closures := framework.CollectBareClosures(fd.Body)

	accs := make(map[types.Object]*accState)

	// place routes one release/use of a tracked Acc into its event stream,
	// applying the defer and closure rules: a deferred release arms the
	// protocol at its registration point, a deferred use runs after every
	// observable point, and a bare closure ends tracking.
	place := func(st *accState, pos token.Pos, kind framework.ProtoEventKind, name string) {
		anchor, deferred := defers.CallAt(pos)
		switch {
		case kind == framework.ProtoRelease && deferred:
			st.events[anchor] = framework.ProtoEvent{Kind: framework.ProtoDeferRelease, Name: name}
			st.hasRelease = true
		case deferred:
			// Deferred use: runs at exit, nothing observable follows it.
		case closures.Contains(pos):
			st.escaped = true
		case kind == framework.ProtoRelease:
			st.events[pos] = framework.ProtoEvent{Kind: framework.ProtoRelease, Name: name}
			st.hasRelease = true
		default:
			st.events[pos] = framework.ProtoEvent{Kind: framework.ProtoUse, Name: name}
		}
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
					if !ok {
						continue
					}
					if callee := framework.CalleeIdent(call); callee != nil && callee.Name == "NewAcc" {
						if obj := pass.Info.Defs[id]; obj != nil {
							accs[obj] = &accState{
								newPos: call.Pos(),
								events: map[token.Pos]framework.ProtoEvent{
									call.Pos(): {Kind: framework.ProtoAcquire, Name: "NewAcc"},
								},
							}
						}
					}
				}
			}
		case *ast.ReturnStmt:
			// An Acc returned escapes local ownership.
			for _, expr := range n.Results {
				if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
					if st := accs[pass.Info.Uses[id]]; st != nil {
						st.escaped = true
					}
				}
			}
		case *ast.CallExpr:
			// Method call on a tracked Acc variable.
			if framework.RecvTypeName(pass.Info, n) == "Acc" {
				if st := accs[framework.ReceiverObject(pass.Info, n)]; st != nil {
					if callee := framework.CalleeIdent(n); callee != nil {
						kind := framework.ProtoUse
						if callee.Name == "Release" {
							kind = framework.ProtoRelease
						}
						place(st, n.Pos(), kind, callee.Name)
					}
				}
			}
			// An Acc passed as a plain argument: consult the callee's summary
			// instead of assuming an ownership transfer.
			for i, arg := range n.Args {
				id, ok := ast.Unparen(arg).(*ast.Ident)
				if !ok {
					continue
				}
				st := accs[pass.Info.Uses[id]]
				if st == nil {
					continue
				}
				name := "call"
				if callee := framework.CalleeIdent(n); callee != nil {
					name = callee.Name
				}
				switch pass.Summaries.ArgEffect(pass.Info, n, i) {
				case framework.ArgRelease:
					place(st, n.Pos(), framework.ProtoRelease, name)
				case framework.ArgUse:
					place(st, n.Pos(), framework.ProtoUse, name)
				default:
					st.escaped = true
				}
			}
		case *ast.FuncLit:
			// A bare closure capturing the Acc may run at any time (or
			// never): any reference inside ends local tracking. Deferred
			// closures are handled by the defer rules in place().
			if !closures.Contains(n.Pos()) {
				return true
			}
			ast.Inspect(n.Body, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					if st := accs[pass.Info.Uses[id]]; st != nil {
						st.escaped = true
					}
				}
				return true
			})
		}
		return true
	})

	if len(accs) == 0 {
		return
	}
	cfg := framework.NewCFG(fd.Body)

	for obj, st := range accs {
		if st.escaped {
			continue // ownership handed off; the new owner is responsible
		}
		if !st.hasRelease {
			pass.Reportf(st.newPos, "Acc %q from NewAcc is never released back to the pool (add `defer %s.Release()`)", obj.Name(), obj.Name())
			continue
		}

		for _, f := range framework.CheckProtocol(cfg, st.events, fd.Body.Rbrace) {
			switch f.Kind {
			case framework.LeakReturn:
				pass.Reportf(f.Pos, "return leaks Acc %q: Release is not deferred and has not run yet on this path", obj.Name())
			case framework.LeakReturnPartial:
				pass.Reportf(f.Pos, "return leaks Acc %q on some path: Release does not run on every path reaching this return", obj.Name())
			case framework.LeakExit:
				pass.Reportf(f.Pos, "function exit leaks Acc %q: Release never runs before falling off the end", obj.Name())
			case framework.LeakExitPartial:
				pass.Reportf(f.Pos, "Acc %q is not released on every path to the function exit (Release runs in a branch or loop that may be skipped)", obj.Name())
			case framework.UseAfterRelease:
				pass.Reportf(f.Pos, "use of Acc %q after Release: the accumulator is back in the pool", obj.Name())
			case framework.UseAfterReleasePartial:
				pass.Reportf(f.Pos, "use of Acc %q after Release on some path (a branch or previous loop iteration already released it)", obj.Name())
			case framework.DoubleRelease:
				pass.Reportf(f.Pos, "Acc %q released twice: the second Release corrupts the pool", obj.Name())
			case framework.DoubleReleasePartial:
				pass.Reportf(f.Pos, "Acc %q may be released twice (a path reaches this Release with the Acc already released)", obj.Name())
			case framework.DeferDoubleRelease:
				pass.Reportf(f.Pos, "Acc %q exits already released with `defer Release` still armed: the defer releases it a second time", obj.Name())
			case framework.DeferDoubleReleasePartial:
				pass.Reportf(f.Pos, "Acc %q may exit already released with `defer Release` still armed (some path releases it explicitly before the defer fires)", obj.Name())
			}
		}
	}
}
