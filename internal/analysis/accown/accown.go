// Package accown enforces the pooled-accumulator ownership protocol of
// bigint.Acc:
//
//   - every Acc obtained from NewAcc() must reach Release() in the same
//     function (typically `defer acc.Release()`), on every path — a
//     non-deferred Release with a return statement between NewAcc and the
//     Release is flagged as a leak;
//   - no method may be called on an Acc after a non-deferred Release: the
//     accumulator is back in the pool and may already belong to someone else;
//   - Release must run at most once — a double Release corrupts the pool.
//
// Take() hands off the accumulated *value* (the Acc stays usable and still
// owes a Release); an Acc that is passed to another function, stored, or
// returned transfers ownership and is exempted from the local checks.
// Matching is by name (NewAcc, methods on a type named "Acc"), so the
// analyzer covers both the real tree and import-free fixtures.
package accown

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "accown",
	Doc:  "check that every NewAcc reaches Release on all paths and that no Acc is used after Release",
	Run:  run,
}

func run(pass *framework.Pass) error {
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		checkFunc(pass, fd)
	})
	return nil
}

type methodUse struct {
	name     string
	pos      token.Pos
	deferred bool
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	defers := framework.CollectDeferRanges(fd.Body)

	accVars := make(map[types.Object]token.Pos) // acc := NewAcc()
	uses := make(map[types.Object][]methodUse)  // method calls on acc
	escaped := make(map[types.Object]bool)      // acc handed off (arg/return/assign)
	var returns []*ast.ReturnStmt

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
					if !ok {
						continue
					}
					if callee := framework.CalleeIdent(call); callee != nil && callee.Name == "NewAcc" {
						if obj := pass.Info.Defs[id]; obj != nil {
							accVars[obj] = call.Pos()
						}
					}
				}
			}
		case *ast.ReturnStmt:
			returns = append(returns, n)
		case *ast.CallExpr:
			// Method call on a tracked Acc variable?
			if framework.RecvTypeName(pass.Info, n) == "Acc" {
				if obj := framework.ReceiverObject(pass.Info, n); obj != nil {
					if callee := framework.CalleeIdent(n); callee != nil {
						uses[obj] = append(uses[obj], methodUse{
							name:     callee.Name,
							pos:      n.Pos(),
							deferred: defers.Contains(n.Pos()),
						})
					}
				}
			}
			// An Acc passed as a plain argument transfers ownership.
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		}
		return true
	})

	// An Acc returned or assigned away also escapes local ownership.
	for _, ret := range returns {
		for _, expr := range ret.Results {
			if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
				if obj := pass.Info.Uses[id]; obj != nil {
					escaped[obj] = true
				}
			}
		}
	}

	for obj, newPos := range accVars {
		if escaped[obj] {
			continue // ownership handed off; the new owner is responsible
		}
		us := uses[obj]
		sort.Slice(us, func(i, j int) bool { return us[i].pos < us[j].pos })

		var release *methodUse
		for i := range us {
			if us[i].name == "Release" {
				release = &us[i]
				break
			}
		}
		if release == nil {
			pass.Reportf(newPos, "Acc %q from NewAcc is never released back to the pool (add `defer %s.Release()`)", obj.Name(), obj.Name())
			continue
		}
		if release.deferred {
			continue // runs at function exit: covers every path, nothing can follow it
		}
		for _, ret := range returns {
			if ret.Pos() > newPos && ret.Pos() < release.pos {
				pass.Reportf(ret.Pos(), "return leaks Acc %q: Release is not deferred and has not run yet on this path", obj.Name())
			}
		}
		for _, u := range us {
			if u.pos <= release.pos || u.deferred {
				continue
			}
			if u.name == "Release" {
				pass.Reportf(u.pos, "Acc %q released twice: the second Release corrupts the pool", obj.Name())
			} else {
				pass.Reportf(u.pos, "use of Acc %q after Release: the accumulator is back in the pool", obj.Name())
			}
		}
	}
}
