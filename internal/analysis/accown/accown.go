// Package accown enforces the pooled-accumulator ownership protocol of
// bigint.Acc:
//
//   - every Acc obtained from NewAcc() must reach Release() in the same
//     function (typically `defer acc.Release()`), on *every* control-flow
//     path — a release hidden in one branch of an if, or skipped by an early
//     return, is a pool leak;
//   - no method may be called on an Acc after Release: the accumulator is
//     back in the pool and may already belong to someone else. This includes
//     uses that only happen on the *next* loop iteration after a release in
//     the loop body;
//   - Release must run at most once per acquisition — a double Release
//     corrupts the pool.
//
// Since PR 3 the checks are flow-sensitive: each Acc's lifecycle runs
// through the framework's CFG + dataflow protocol checker (see
// framework/protocol.go), so branch-only releases and loop-carried
// released states are real fixpoint facts, not lexical approximations.
//
// Take() hands off the accumulated *value* (the Acc stays usable and still
// owes a Release); an Acc that is passed to another function, stored, or
// returned transfers ownership and is exempted from the local checks.
// Matching is by name (NewAcc, methods on a type named "Acc"), so the
// analyzer covers both the real tree and import-free fixtures.
package accown

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "accown",
	Doc:  "check that every NewAcc reaches Release on all paths (flow-sensitive) and that no Acc is used after Release",
	Run:  run,
}

func run(pass *framework.Pass) error {
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		checkFunc(pass, fd)
	})
	return nil
}

type methodUse struct {
	name     string
	pos      token.Pos
	deferred bool
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	defers := framework.CollectDeferRanges(fd.Body)

	accVars := make(map[types.Object]token.Pos) // acc := NewAcc() (CallExpr pos)
	uses := make(map[types.Object][]methodUse)  // method calls on acc
	escaped := make(map[types.Object]bool)      // acc handed off (arg/return/assign)

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE && len(n.Lhs) == len(n.Rhs) {
				for i := range n.Lhs {
					id, ok := n.Lhs[i].(*ast.Ident)
					if !ok || id.Name == "_" {
						continue
					}
					call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
					if !ok {
						continue
					}
					if callee := framework.CalleeIdent(call); callee != nil && callee.Name == "NewAcc" {
						if obj := pass.Info.Defs[id]; obj != nil {
							accVars[obj] = call.Pos()
						}
					}
				}
			}
		case *ast.ReturnStmt:
			// An Acc returned escapes local ownership.
			for _, expr := range n.Results {
				if id, ok := ast.Unparen(expr).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		case *ast.CallExpr:
			// Method call on a tracked Acc variable?
			if framework.RecvTypeName(pass.Info, n) == "Acc" {
				if obj := framework.ReceiverObject(pass.Info, n); obj != nil {
					if callee := framework.CalleeIdent(n); callee != nil {
						uses[obj] = append(uses[obj], methodUse{
							name:     callee.Name,
							pos:      n.Pos(),
							deferred: defers.Contains(n.Pos()),
						})
					}
				}
			}
			// An Acc passed as a plain argument transfers ownership.
			for _, arg := range n.Args {
				if id, ok := ast.Unparen(arg).(*ast.Ident); ok {
					if obj := pass.Info.Uses[id]; obj != nil {
						escaped[obj] = true
					}
				}
			}
		}
		return true
	})

	if len(accVars) == 0 {
		return
	}
	cfg := framework.NewCFG(fd.Body)

	for obj, newPos := range accVars {
		if escaped[obj] {
			continue // ownership handed off; the new owner is responsible
		}
		releases, deferredRelease := 0, false
		for _, u := range uses[obj] {
			if u.name == "Release" {
				if u.deferred {
					deferredRelease = true
				} else {
					releases++
				}
			}
		}
		if deferredRelease {
			continue // runs at function exit: covers every path, nothing can follow it
		}
		if releases == 0 {
			pass.Reportf(newPos, "Acc %q from NewAcc is never released back to the pool (add `defer %s.Release()`)", obj.Name(), obj.Name())
			continue
		}

		events := map[token.Pos]framework.ProtoEvent{
			newPos: {Kind: framework.ProtoAcquire, Name: "NewAcc"},
		}
		for _, u := range uses[obj] {
			if u.deferred {
				continue // runs at exit; nothing observable follows it
			}
			kind := framework.ProtoUse
			if u.name == "Release" {
				kind = framework.ProtoRelease
			}
			events[u.pos] = framework.ProtoEvent{Kind: kind, Name: u.name}
		}

		for _, f := range framework.CheckProtocol(cfg, events, fd.Body.Rbrace) {
			switch f.Kind {
			case framework.LeakReturn:
				pass.Reportf(f.Pos, "return leaks Acc %q: Release is not deferred and has not run yet on this path", obj.Name())
			case framework.LeakReturnPartial:
				pass.Reportf(f.Pos, "return leaks Acc %q on some path: Release does not run on every path reaching this return", obj.Name())
			case framework.LeakExit:
				pass.Reportf(f.Pos, "function exit leaks Acc %q: Release never runs before falling off the end", obj.Name())
			case framework.LeakExitPartial:
				pass.Reportf(f.Pos, "Acc %q is not released on every path to the function exit (Release runs in a branch or loop that may be skipped)", obj.Name())
			case framework.UseAfterRelease:
				pass.Reportf(f.Pos, "use of Acc %q after Release: the accumulator is back in the pool", obj.Name())
			case framework.UseAfterReleasePartial:
				pass.Reportf(f.Pos, "use of Acc %q after Release on some path (a branch or previous loop iteration already released it)", obj.Name())
			case framework.DoubleRelease:
				pass.Reportf(f.Pos, "Acc %q released twice: the second Release corrupts the pool", obj.Name())
			case framework.DoubleReleasePartial:
				pass.Reportf(f.Pos, "Acc %q may be released twice (a path reaches this Release with the Acc already released)", obj.Name())
			}
		}
	}
}
