package accown_test

import (
	"testing"

	"repro/internal/analysis/accown"
	"repro/internal/analysis/analysistest"
)

func TestAccOwn(t *testing.T) {
	analysistest.Run(t, accown.Analyzer, "acc")
}
