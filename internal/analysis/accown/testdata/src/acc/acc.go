// Fixture for the accown analyzer: miniature stand-ins for the
// internal/bigint Acc API, matched by name.
package acc

type Int struct{ v int }

type Acc struct{ v int }

func NewAcc() *Acc                   { return new(Acc) }
func (a *Acc) Release()              {}
func (a *Acc) Reset()                {}
func (a *Acc) Add(x Int)             {}
func (a *Acc) AddMul(x Int, c int64) {}
func (a *Acc) Take() Int             { return Int{} }

// ok is the canonical pattern: deferred Release, Take mid-stream is fine.
func ok(xs []Int) Int {
	acc := NewAcc()
	defer acc.Release()
	for _, x := range xs {
		acc.Add(x)
	}
	v := acc.Take()
	acc.Add(v) // Take hands off the value; the Acc itself stays usable
	return acc.Take()
}

// okEager releases without defer, after the last use, with no return before.
func okEager(x Int) Int {
	acc := NewAcc()
	acc.Add(x)
	v := acc.Take()
	acc.Release()
	return v
}

func leak(xs []Int) Int {
	acc := NewAcc() // want "never released back to the pool"
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Take()
}

func earlyReturn(x Int, cond bool) Int {
	acc := NewAcc()
	acc.Add(x)
	if cond {
		return Int{} // want "Release is not deferred"
	}
	v := acc.Take()
	acc.Release()
	return v
}

func useAfterRelease(x Int) Int {
	acc := NewAcc()
	acc.Add(x)
	acc.Release()
	acc.Add(x)        // want "after Release"
	return acc.Take() // want "after Release"
}

func doubleRelease(x Int) {
	acc := NewAcc()
	acc.Add(x)
	acc.Release()
	acc.Release() // want "released twice"
}

// handoff passes the Acc to a helper whose summary proves it releases on
// every path — the release-via-helper counts as the release, verified
// rather than assumed (pre-PR-4 the analyzer stood down on any handoff).
func handoff(x Int) {
	acc := NewAcc()
	acc.Add(x)
	finish(acc)
}

func finish(a *Acc) {
	defer a.Release()
	_ = a.Take()
}

// helperUseLeak is the shape the intraprocedural analyzer provably could
// not catch: the helper's summary shows it only *uses* the Acc, so the
// caller still owes the release — and never pays it.
func helperUseLeak(x Int) {
	acc := NewAcc() // want "never released back to the pool"
	accumulate(acc, x)
}

func accumulate(a *Acc, x Int) {
	a.Add(x)
	a.AddMul(x, 2)
}

// helperUseThenRelease: a use-only helper followed by the caller's own
// release is the correct split of responsibilities.
func helperUseThenRelease(x Int) Int {
	acc := NewAcc()
	accumulate(acc, x)
	v := acc.Take()
	acc.Release()
	return v
}

// helperMaybeRelease hands the Acc to a helper that releases it only on
// some paths: nothing can be proven either way, so tracking stands down.
func helperMaybeRelease(x Int, cond bool) {
	acc := NewAcc()
	acc.Add(x)
	maybeFinish(acc, cond)
}

func maybeFinish(a *Acc, cond bool) {
	if cond {
		a.Release()
	}
}

// helperEscape hands the Acc to a helper that stores it; ownership
// genuinely transfers and the local checks stand down.
func helperEscape(x Int) {
	acc := NewAcc()
	acc.Add(x)
	stash(acc)
}

var stashed *Acc

func stash(a *Acc) { stashed = a }

// deferThenExplicit releases explicitly while `defer Release` is still
// armed: the defer fires a second time at exit (pre-PR-4 any deferred
// Release made the analyzer stand down entirely).
func deferThenExplicit(x Int) {
	acc := NewAcc()
	defer acc.Release()
	acc.Add(x)
	acc.Release()
} // want "defer releases it a second time"

// conditionalDefer arms the release in one branch only; the other path
// falls off the end still live.
func conditionalDefer(x Int, cond bool) {
	acc := NewAcc()
	if cond {
		defer acc.Release()
	}
	acc.Add(x)
} // want "not released on every path"

// deferredClosureRelease releases through a deferred closure; the armed
// state is anchored at the defer and covers every exit.
func deferredClosureRelease(x Int) Int {
	acc := NewAcc()
	defer func() {
		acc.Release()
	}()
	acc.Add(x)
	return acc.Take()
}

// closureCapture hands the Acc to a non-deferred closure: it may run at
// any time (or never), so local tracking ends — no finding, even though
// no release is visible on the straight-line path.
func closureCapture(x Int) func() {
	acc := NewAcc()
	acc.Add(x)
	return func() { acc.Release() }
}

// branchLeak releases only when cond holds; the fall-through path leaks.
// The pre-PR-3 lexical checker saw "a Release exists" and stayed silent.
func branchLeak(x Int, cond bool) {
	acc := NewAcc()
	acc.Add(x)
	if cond {
		acc.Release()
	}
} // want "not released on every path"

// branchUseAfterRelease merges a released and a live state before the Take.
func branchUseAfterRelease(x Int, cond bool) Int {
	acc := NewAcc()
	acc.Add(x)
	if cond {
		acc.Release()
	}
	return acc.Take() // want "after Release on some path" "leaks Acc .acc. on some path"
}

// loopUseAfterRelease: the Release flows over the loop back edge into the
// next iteration's Add, and the zero-iteration path leaks entirely.
func loopUseAfterRelease(xs []Int) {
	acc := NewAcc()
	for _, x := range xs {
		acc.Add(x)    // want "after Release on some path"
		acc.Release() // want "may be released twice"
	}
} // want "not released on every path"

// leakAllowed shows the audited escape hatch.
func leakAllowed(x Int) Int {
	//ftlint:allow accown fixture: long-lived accumulator owned by the caller's loop
	acc := NewAcc()
	acc.Add(x)
	return acc.Take()
}
