// Fixture for the accown analyzer: miniature stand-ins for the
// internal/bigint Acc API, matched by name.
package acc

type Int struct{ v int }

type Acc struct{ v int }

func NewAcc() *Acc                   { return new(Acc) }
func (a *Acc) Release()              {}
func (a *Acc) Reset()                {}
func (a *Acc) Add(x Int)             {}
func (a *Acc) AddMul(x Int, c int64) {}
func (a *Acc) Take() Int             { return Int{} }

// ok is the canonical pattern: deferred Release, Take mid-stream is fine.
func ok(xs []Int) Int {
	acc := NewAcc()
	defer acc.Release()
	for _, x := range xs {
		acc.Add(x)
	}
	v := acc.Take()
	acc.Add(v) // Take hands off the value; the Acc itself stays usable
	return acc.Take()
}

// okEager releases without defer, after the last use, with no return before.
func okEager(x Int) Int {
	acc := NewAcc()
	acc.Add(x)
	v := acc.Take()
	acc.Release()
	return v
}

func leak(xs []Int) Int {
	acc := NewAcc() // want "never released back to the pool"
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Take()
}

func earlyReturn(x Int, cond bool) Int {
	acc := NewAcc()
	acc.Add(x)
	if cond {
		return Int{} // want "Release is not deferred"
	}
	v := acc.Take()
	acc.Release()
	return v
}

func useAfterRelease(x Int) Int {
	acc := NewAcc()
	acc.Add(x)
	acc.Release()
	acc.Add(x)        // want "after Release"
	return acc.Take() // want "after Release"
}

func doubleRelease(x Int) {
	acc := NewAcc()
	acc.Add(x)
	acc.Release()
	acc.Release() // want "released twice"
}

// handoff transfers ownership to a callee; the local checks stand down.
func handoff(x Int) {
	acc := NewAcc()
	acc.Add(x)
	finish(acc)
}

func finish(a *Acc) {
	defer a.Release()
	_ = a.Take()
}

// branchLeak releases only when cond holds; the fall-through path leaks.
// The pre-PR-3 lexical checker saw "a Release exists" and stayed silent.
func branchLeak(x Int, cond bool) {
	acc := NewAcc()
	acc.Add(x)
	if cond {
		acc.Release()
	}
} // want "not released on every path"

// branchUseAfterRelease merges a released and a live state before the Take.
func branchUseAfterRelease(x Int, cond bool) Int {
	acc := NewAcc()
	acc.Add(x)
	if cond {
		acc.Release()
	}
	return acc.Take() // want "after Release on some path" "leaks Acc .acc. on some path"
}

// loopUseAfterRelease: the Release flows over the loop back edge into the
// next iteration's Add, and the zero-iteration path leaks entirely.
func loopUseAfterRelease(xs []Int) {
	acc := NewAcc()
	for _, x := range xs {
		acc.Add(x)    // want "after Release on some path"
		acc.Release() // want "may be released twice"
	}
} // want "not released on every path"

// leakAllowed shows the audited escape hatch.
func leakAllowed(x Int) Int {
	//ftlint:allow accown fixture: long-lived accumulator owned by the caller's loop
	acc := NewAcc()
	acc.Add(x)
	return acc.Take()
}
