package chanproto_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chanproto"
)

func TestChanProto(t *testing.T) {
	analysistest.Run(t, chanproto.Analyzer, "machine")
}

// The transport backends move messages over raw channels; the host-send
// discipline must apply to them under their own package names.
func TestChanProtoTransportBackend(t *testing.T) {
	analysistest.Run(t, chanproto.Analyzer, "wallnet")
}
