package chanproto_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/chanproto"
)

func TestChanProto(t *testing.T) {
	analysistest.Run(t, chanproto.Analyzer, "machine")
}
