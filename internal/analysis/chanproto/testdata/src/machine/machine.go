// Fixture for the chanproto analyzer: miniature stand-ins for the
// internal/machine simulator API, matched by name. The fixture's import
// path is "machine", so the analyzer's path scoping applies.
package machine

type Payload interface{ payload() }

type Ints []uint64

func (Ints) payload() {}

type Proc struct{ id int }

func (p *Proc) Send(to int, tag string, payload Payload) error { return nil }
func (p *Proc) Recv(from int, tag string) (Payload, error)     { return nil, nil }
func (p *Proc) RecvInts(from int, tag string) (Ints, error)    { return nil, nil }
func (p *Proc) RecvDeadline(from int, tag string, deadline float64) (Payload, bool, error) {
	return nil, false, nil
}
func (p *Proc) Barrier(phase string) {}

type Machine struct{}

func (m *Machine) Run(body func(p *Proc) error) (int, error) { return 0, nil }

// okPaired: the send tag reappears in a receive, so the pair is consumed.
// Derived tags pair by expression text, as in the real ftparallel tree.
func okPaired(p *Proc, x Ints, tag string) error {
	if err := p.Send(1, tag+"/up", x); err != nil {
		return err
	}
	_, err := p.RecvInts(0, tag+"/up")
	return err
}

func orphanSend(p *Proc, x Ints) {
	_ = p.Send(1, "orphan/tag", x) // want "no matching Recv"
}

// shadowedSend/shadowedRecv: the tag constants read identically — same
// name, same expression text — but bind different values in their scopes.
// Textual pairing called these matched; value folding proves they never
// are.
func shadowedSend(p *Proc, x Ints) {
	const tag = "shadow/a"
	_ = p.Send(1, tag, x) // want "no matching Recv"
}

func shadowedRecv(p *Proc) {
	const tag = "shadow/b"
	_, _ = p.RecvInts(0, tag)
}

// crossNamed: a literal send tag pairs with a receive naming it through a
// constant — value folding sees through the different spellings, where
// text pairing would have reported a false orphan.
const crossTag = "cross/named"

func crossNamedSend(p *Proc, x Ints) {
	_ = p.Send(1, "cross/named", x)
}

func crossNamedRecv(p *Proc) {
	_, _ = p.RecvInts(0, crossTag)
}

// sendAfterRun: once Run returns the machine is torn down. The send inside
// the worker closure is fine (it runs during the simulation); the host-level
// send after Run can never complete.
func sendAfterRun(m *Machine, p *Proc, x Ints) {
	_, _ = m.Run(func(q *Proc) error {
		return q.Send(1, "run/x", x)
	})
	_ = p.Send(1, "run/x", x) // want "after Machine.Run"
}

// condShutdown: Run in one branch taints the merge point — the machine may
// already be shut down when the receive runs.
func condShutdown(m *Machine, p *Proc, c bool) {
	if c {
		_, _ = m.Run(nil)
	}
	_, _ = p.RecvInts(0, "run/x") // want "after Machine.Run"
}

// okRunThenLocal: non-Proc work after Run is fine.
func okRunThenLocal(m *Machine, p *Proc) int {
	_, _ = m.Run(nil)
	return p.id
}

func hostSendBlocking(ch chan int) {
	ch <- 1 // want "unbuffered channel send"
}

func hostSendUnbufferedMake() {
	ch := make(chan struct{})
	ch <- struct{}{} // want "unbuffered channel send"
}

// hostSendBuffered: a visible non-zero buffer cannot block on the first send.
func hostSendBuffered() {
	ch := make(chan int, 4)
	ch <- 1
}

// hostSendSelect: a select clause with a default never blocks.
func hostSendSelect(ch chan int) {
	select {
	case ch <- 1:
	default:
	}
}

// workerSend: the literal runs on its own goroutine, not the host's.
func workerSend(ch chan int) {
	go func() { ch <- 1 }()
}
