// Fixture for the chanproto analyzer, named "wallnet" so its synthetic
// import path matches the transport-backend entry in the governed list.
// The backends move messages over raw Go channels, so the rule that
// matters here is the host-send discipline: every send must be visibly
// non-blocking (select clause, buffered channel, or worker goroutine).
package wallnet

type message struct{ words int64 }

// deliverBare is the bug the rule exists for: a bare send on a channel of
// unknown buffering can deadlock the whole machine if the peer is gone.
func deliverBare(ch chan message, m message) {
	ch <- m // want "unbuffered channel send"
}

// deliverSelect is how the real backends send: a select clause can carry a
// default (simulator: protocol error on full buffer) or a ctx.Done case
// (wall clock: backpressure with cancellation), and never wedges the host.
func deliverSelect(ch chan message, m message, done chan struct{}) bool {
	select {
	case ch <- m:
		return true
	case <-done:
		return false
	}
}

// deliverBuffered: a visibly buffered channel cannot block the first send.
func deliverBuffered(m message) chan message {
	ch := make(chan message, 128)
	ch <- m
	return ch
}
