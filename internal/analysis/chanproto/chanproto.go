// Package chanproto checks the message-passing discipline of the machine
// simulator and its clients (internal/machine, internal/collective,
// internal/ftparallel):
//
//   - every Proc.Send must have a matching receive somewhere in the same
//     package: a Send whose tag no Recv/RecvInts/RecvDeadline call can name
//     produces a message nothing will ever consume (it sits in the per-pair
//     buffer until the run ends and the cost model silently under-charges
//     the receive side). Tags are compared by constant-folded value when
//     the type checker knows both sides (so a literal pairs with the
//     constant naming it, and two same-named constants with different
//     values do NOT pair), falling back to expression text when either
//     side is symbolic, so `tag+"/down"` still pairs with `tag+"/down"`
//     and fmt.Sprintf patterns with their textual twins;
//   - no Proc communication may be reachable after Machine.Run has returned
//     in the same function — Run tears the machine down, so a later
//     Send/Recv can never complete. This is a forward dataflow fact over the
//     function's CFG, so a Run inside one branch taints the code after the
//     merge (the shutdown *may* have happened);
//   - the host goroutine must not perform a raw channel send that is not
//     visibly non-blocking: a bare `ch <- v` outside a select clause, on a
//     channel not created with a non-zero buffer in the same function, can
//     deadlock the simulator. Sends inside `go func(){...}` bodies run on
//     worker goroutines and are exempt.
//
// Like the other ftlint analyzers, matching is by name (methods on types
// named Proc and Machine), so the checks work on the real tree and on
// import-free fixtures alike.
package chanproto

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "chanproto",
	Doc:  "check Send/Recv tag pairing, no Proc traffic after Machine.Run, and no blocking raw sends on the host goroutine",
	Run:  run,
}

// governed lists the package path segments whose channel traffic follows the
// simulator protocol. "machine" covers the transport subpackages
// (internal/machine/{transport,simnet,wallnet,costacct,faultinject}); the
// backends are also listed by name so single-segment fixture packages fall
// in scope.
var governed = []string{"machine", "collective", "ftengine", "ftparallel", "ftmatmul", "transport", "simnet", "wallnet"}

// procComm maps Proc method names to the argument index of their tag, for
// the methods that move messages. The tag is always the second argument.
var procComm = map[string]bool{
	"Send":         true,
	"Recv":         true,
	"RecvInts":     true,
	"RecvDeadline": true,
}

func run(pass *framework.Pass) error {
	inScope := false
	for _, seg := range governed {
		if framework.PathHasSegment(pass.Path, seg) {
			inScope = true
			break
		}
	}
	if !inScope {
		return nil
	}

	checkTagPairing(pass)
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		checkShutdownOrder(pass, fd)
		checkHostSends(pass, fd)
	})
	return nil
}

// tagSite is one communication call's tag: its rendered text always, and
// its constant-folded value when the type checker knows one.
type tagSite struct {
	pos    token.Pos
	text   string
	val    string
	folded bool
}

// tagOf captures the tag argument of a communication call.
func tagOf(pass *framework.Pass, call *ast.CallExpr) (tagSite, bool) {
	if len(call.Args) < 2 {
		return tagSite{}, false
	}
	arg := call.Args[1]
	s := tagSite{pos: call.Pos(), text: types.ExprString(arg)}
	if tv, ok := pass.Info.Types[arg]; ok && tv.Value != nil {
		s.val, s.folded = tv.Value.ExactString(), true
	}
	return s, true
}

// checkTagPairing collects every Proc.Send tag in the package and reports the
// ones no Recv variant can consume. Folded tags pair by value; a pair where
// either side is symbolic falls back to text equality. Two sides that both
// fold to different values never pair, however identical they read.
func checkTagPairing(pass *framework.Pass) {
	var sends, recvs []tagSite

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || framework.RecvTypeName(pass.Info, call) != "Proc" {
				return true
			}
			callee := framework.CalleeIdent(call)
			if callee == nil || !procComm[callee.Name] {
				return true
			}
			tag, ok := tagOf(pass, call)
			if !ok {
				return true
			}
			if callee.Name == "Send" {
				sends = append(sends, tag)
			} else {
				recvs = append(recvs, tag)
			}
			return true
		})
	}

	recvVals := make(map[string]bool)
	// recvTextSym holds texts of receives the folder could not evaluate: a
	// symbolic receive can consume whatever its textual twin sends.
	recvTextSym := make(map[string]bool)
	recvTexts := make(map[string]bool)
	for _, r := range recvs {
		recvTexts[r.text] = true
		if r.folded {
			recvVals[r.val] = true
		} else {
			recvTextSym[r.text] = true
		}
	}

	for _, s := range sends {
		switch {
		case s.folded && recvVals[s.val]:
			continue // value-paired
		case recvTextSym[s.text]:
			continue // symbolic receive, textual twin
		case !s.folded && recvTexts[s.text]:
			continue // symbolic send, textual twin
		}
		pass.Reportf(s.pos, "Proc.Send with tag %s has no matching Recv in package %s: the message can never be consumed", s.text, pass.Path)
	}
}

// checkShutdownOrder flags Proc communication reachable after a call to
// Machine.Run has returned in the same function body. FuncLit bodies (the
// worker closures handed *to* Run) are excluded by the shallow walks.
func checkShutdownOrder(pass *framework.Pass, fd *ast.FuncDecl) {
	callsRun := false
	framework.InspectShallow(fd.Body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if framework.RecvTypeName(pass.Info, call) == "Machine" {
				if callee := framework.CalleeIdent(call); callee != nil && callee.Name == "Run" {
					callsRun = true
				}
			}
		}
		return true
	})
	if !callsRun {
		return
	}

	cfg := framework.NewCFG(fd.Body)
	// walk applies the block's calls in order to the "machine shut down"
	// fact; when report is true it flags Proc traffic seen while the fact
	// holds. Checking precedes updating, so `m.Run(...)` itself is clean.
	walk := func(b *framework.Block, in bool, report bool) bool {
		down := in
		for _, node := range b.Nodes {
			framework.InspectShallow(node, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := framework.CalleeIdent(call)
				if callee == nil {
					return true
				}
				switch framework.RecvTypeName(pass.Info, call) {
				case "Proc":
					if down && report && (procComm[callee.Name] || callee.Name == "Barrier") {
						pass.Reportf(call.Pos(), "Proc.%s reachable after Machine.Run has returned: the machine is shut down and the call can never complete", callee.Name)
					}
				case "Machine":
					if callee.Name == "Run" {
						down = true
					}
				}
				return true
			})
		}
		return down
	}

	res := framework.ForwardSolve(cfg, framework.FlowSpec[bool]{
		Bottom:   func() bool { return false },
		Boundary: func() bool { return false },
		Join:     func(a, b bool) bool { return a || b },
		Equal:    func(a, b bool) bool { return a == b },
		Transfer: func(b *framework.Block, in bool) bool { return walk(b, in, false) },
	})
	for _, b := range cfg.Blocks {
		if b == cfg.Entry || len(b.Preds) > 0 {
			walk(b, res.In[b], true)
		}
	}
}

// checkHostSends flags raw channel sends on the host goroutine that are not
// visibly non-blocking. Sends inside function literals are exempt: a
// literal's execution context (worker goroutine, Run closure, deferred
// callback) is not the host's, and the shallow walks below never enter one.
func checkHostSends(pass *framework.Pass, fd *ast.FuncDecl) {
	// Channels made with a non-zero (or non-constant) buffer in this
	// function are considered safe to send on.
	buffered := make(map[types.Object]bool)
	// Sends that are select comm clauses never block the select.
	inSelect := make(map[*ast.SendStmt]bool)

	framework.InspectShallow(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				id, ok := n.Lhs[i].(*ast.Ident)
				if !ok {
					continue
				}
				call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
				if !ok {
					continue
				}
				if callee, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || callee.Name != "make" {
					continue
				}
				if len(call.Args) != 2 {
					continue // make(chan T): definitely unbuffered
				}
				if _, isChan := call.Args[0].(*ast.ChanType); !isChan {
					continue
				}
				if lit, ok := ast.Unparen(call.Args[1]).(*ast.BasicLit); ok && lit.Value == "0" {
					continue
				}
				if obj := pass.Info.Defs[id]; obj != nil {
					buffered[obj] = true
				}
			}
		case *ast.SelectStmt:
			for _, clause := range n.Body.List {
				cc, ok := clause.(*ast.CommClause)
				if !ok {
					continue
				}
				if send, ok := cc.Comm.(*ast.SendStmt); ok {
					inSelect[send] = true
				}
			}
		}
		return true
	})

	framework.InspectShallow(fd.Body, func(n ast.Node) bool {
		send, ok := n.(*ast.SendStmt)
		if !ok || inSelect[send] {
			return true
		}
		if id, ok := ast.Unparen(send.Chan).(*ast.Ident); ok {
			if buffered[pass.Info.Uses[id]] {
				return true
			}
		}
		pass.Reportf(send.Pos(), "unbuffered channel send from the host goroutine can block the simulator: use a select with default, a buffered channel, or send from a worker goroutine")
		return true
	})
}
