package protomc

// worlds.go instantiates concrete model worlds. Two families exist:
//
//   - generic collective worlds: every package-level function whose first
//     parameter is a *Proc and that transitively communicates is
//     instantiated for n in [2,5] processors, with every legal root when a
//     root parameter exists. Groups become the identity group [0..n),
//     payload vectors become small opaque vectors, tags become "t".
//
//   - engine worlds: the fault-tolerant multiplication engine is
//     instantiated exactly the way ftparallel.Multiply builds it (P=3, k=2,
//     F=1: a 1x3 worker grid, one linear-code row, one polynomial-code
//     processor — 7 ranks), for ldfs 0 and 1, plus the straggler-dropping
//     variant. Construction runs through the host interpreter (NewLayout,
//     computeDenLCM) and the native arithmetic bridge so the instantiated
//     engine matches the real constructor bit for bit.
//
// Fault plans are not chosen here: the checker's first (fault-free) run
// records every (proc, phase, hit) barrier crossing, and the analyzer
// re-explores the world once per crossing with that single fail-stop
// injected — exactly the space machine/faultinject can express for one
// fault, which is what a layout with F=1 must tolerate.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"strings"
	"sync/atomic"

	"repro/internal/analysis/framework"
	"repro/internal/erasure"
	"repro/internal/points"
	"repro/internal/toom"
)

// worldNs are the processor counts generic collective worlds run at.
var worldNs = []int{2, 3, 4, 5}

// hostCall interprets a declared function outside any model processor:
// world construction evaluates the real constructors so instantiated state
// matches what the production wrappers build. The recovered error carries
// the interpreter's failure message.
func hostCall(sums *framework.Summaries, skels *framework.SkeletonSet, key string, recv Value, args []Value) (out []Value, err error) {
	node := sums.Graph.Nodes[key]
	if node == nil {
		return nil, fmt.Errorf("no declared function %s in the analyzed set", key)
	}
	var fuel atomic.Int64
	fuel.Store(defaultFuel)
	in := &interp{sums: sums, skels: skels, fuel: &fuel}
	defer func() {
		if r := recover(); r != nil {
			me, ok := r.(modelErr)
			if !ok {
				panic(r)
			}
			out, err = nil, fmt.Errorf("interpreting %s: %s", key, me.Msg)
		}
	}()
	return in.callDecl(node, recv, args, node.Decl.Pos()), nil
}

// hostErr extracts a trailing error result of a host call ("" when nil).
func hostErr(out []Value) string {
	if len(out) == 0 {
		return ""
	}
	if ev, ok := out[len(out)-1].(ErrVal); ok {
		return ev.Msg
	}
	return ""
}

// shortKey trims the import-path directory from a FuncKey:
// "repro/internal/collective.Broadcast" -> "collective.Broadcast".
func shortKey(key string) string {
	return key[strings.LastIndex(key, "/")+1:]
}

// instError reports a function the analyzer wanted to world-ify but could
// not — surfaced as a diagnostic, never silently skipped (vacuity guard).
type instError struct {
	key string
	pos token.Pos
	msg string
}

// collectiveWorlds builds the generic worlds for every communicating
// package-level Proc-first function declared in the pass's package, in
// source order. Functions with unmodelable call trees are the analyzer's
// job to report; they are not returned here.
func collectiveWorlds(pass *framework.Pass, sums *framework.Summaries, skels *framework.SkeletonSet) ([]*world, []instError) {
	var worlds []*world
	var errs []instError
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		if fd.Recv != nil {
			return
		}
		fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
		if fn == nil {
			return
		}
		sig, _ := fn.Type().(*types.Signature)
		if sig == nil || sig.Params().Len() == 0 {
			return
		}
		if framework.NamedTypeName(sig.Params().At(0).Type()) != "Proc" {
			return
		}
		key := framework.FuncKey(fn)
		if !skels.CommReach(key) {
			return
		}
		if ok, bl := skels.Modelable(key); !ok {
			errs = append(errs, instError{key: key, pos: fd.Pos(),
				msg: "cannot model communication skeleton: " + skels.DescribeBlockers(pass.Fset, bl)})
			return
		}
		node := sums.Graph.Nodes[key]
		if node == nil {
			return
		}
		ws, ie := funcWorlds(node, sig)
		worlds = append(worlds, ws...)
		if ie != nil {
			errs = append(errs, *ie)
		}
	})
	return worlds, errs
}

// funcWorlds instantiates one Proc-first function over every world size and
// every legal root.
func funcWorlds(node *framework.CGNode, sig *types.Signature) ([]*world, *instError) {
	key := node.Key
	pos := node.Decl.Pos()

	// Probe instantiability once (n=2, root=0): a parameter with no world
	// value is a finding, not a silent skip.
	if _, err := worldArgs(sig, 2, 0); err != nil {
		return nil, &instError{key: key, pos: pos, msg: err.Error()}
	}
	hasRoot := false
	params := sig.Params()
	for i := 1; i < params.Len(); i++ {
		if isRootParam(params.At(i)) {
			hasRoot = true
		}
	}

	var worlds []*world
	for _, n := range worldNs {
		roots := []int{0}
		if hasRoot {
			roots = roots[:0]
			for r := 0; r < n; r++ {
				roots = append(roots, r)
			}
		}
		for _, root := range roots {
			n, root := n, root
			name := fmt.Sprintf("%s n=%d", shortKey(key), n)
			if hasRoot {
				name = fmt.Sprintf("%s root=%d", name, root)
			}
			worlds = append(worlds, &world{
				name:          name,
				n:             n,
				pos:           pos,
				faultTolerant: true,
				run: func(in *interp, mp *modelProc) Value {
					args, err := worldArgs(sig, n, root)
					if err != nil {
						fail(pos, "%s", err.Error())
					}
					out := in.callDecl(node, nil, append([]Value{ProcVal{mp: mp}}, args...), pos)
					if len(out) == 0 {
						return NilVal{}
					}
					return out[len(out)-1]
				},
			})
		}
	}
	return worlds, nil
}

func isRootParam(p *types.Var) bool {
	b, ok := p.Type().Underlying().(*types.Basic)
	return ok && b.Info()&types.IsInteger != 0 &&
		strings.Contains(strings.ToLower(p.Name()), "root")
}

// worldArgs builds the arguments after the leading *Proc, fresh per
// processor (each rank owns its locals, exactly as on the machine).
func worldArgs(sig *types.Signature, n, root int) ([]Value, error) {
	params := sig.Params()
	out := make([]Value, 0, params.Len()-1)
	for i := 1; i < params.Len(); i++ {
		v, err := worldArg(params.At(i), n, root)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

// worldArg picks the concrete world value for one parameter. The rules
// mirror how the production wrappers call the collectives: identity groups,
// parameter-named roots, small payload vectors, and one vector per
// destination for the multi-collectives (contribs may round-robin past n,
// so it gets n+1).
func worldArg(p *types.Var, n, root int) (Value, error) {
	name := strings.ToLower(p.Name())
	t := p.Type()
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		switch {
		case info&types.IsInteger != 0:
			if strings.Contains(name, "root") {
				return knownInt(int64(root)), nil
			}
			if strings.Contains(name, "weight") {
				return knownInt(2), nil
			}
			return knownInt(1), nil
		case info&types.IsString != 0:
			return knownStr("t"), nil
		case info&types.IsFloat != 0:
			return FloatVal{Known: true, V: 5}, nil
		case info&types.IsBoolean != 0:
			return knownBool(false), nil
		}
	case *types.Slice:
		if framework.NamedTypeName(t) == "Group" {
			return groupValue(n), nil
		}
		if _, deep := u.Elem().Underlying().(*types.Slice); deep {
			count := n
			if name == "contribs" {
				count = n + 1
			}
			vecs := make([]Value, count)
			for i := range vecs {
				vecs[i] = payloadVec(2)
			}
			return &SliceVal{Elems: vecs}, nil
		}
		return payloadVec(2), nil
	}
	return nil, fmt.Errorf("parameter %s %v has no world instantiation", p.Name(), t)
}

// groupValue is the identity group [0..n).
func groupValue(n int) *SliceVal {
	elems := make([]Value, n)
	for i := range elems {
		elems[i] = knownInt(int64(i))
	}
	return &SliceVal{Elems: elems}
}

// payloadVec is a vector of opaque payload scalars.
func payloadVec(n int) *SliceVal {
	elems := make([]Value, n)
	for i := range elems {
		elems[i] = opaque()
	}
	return &SliceVal{Elems: elems}
}

// engineVariant selects one fault-tolerant engine configuration.
type engineVariant struct {
	ldfs      int
	straggler bool
}

// engineVariants covers both BFS/DFS schedules and the straggler-dropping
// decision protocol. P=9 (a 3x3 grid) is within the checker's semantics but
// outside its time budget; the P=3 grid already exercises every protocol
// role (worker, linear-code row, polynomial-code column).
var engineVariants = []engineVariant{
	{ldfs: 0},
	{ldfs: 1},
	{ldfs: 0, straggler: true},
}

// engineWorlds instantiates the generic engine's SPMD body, loaded with the
// Toom workload exactly as ftparallel.Multiply builds it, for each variant.
// Returns nothing when the pass's package is not the engine's (the key
// gate below fails for fixtures and for the collective package).
func engineWorlds(pass *framework.Pass, sums *framework.Summaries, skels *framework.SkeletonSet) ([]*world, []instError) {
	runKey := pass.Path + ".exec.runRank"
	runNode := sums.Graph.Nodes[runKey]
	if runNode == nil || runNode.Pkg.Path != pass.Path {
		return nil, nil
	}
	if ok, bl := skels.Modelable(runKey); !ok {
		return nil, []instError{{key: runKey, pos: runNode.Decl.Pos(),
			msg: "cannot model communication skeleton: " + skels.DescribeBlockers(pass.Fset, bl)}}
	}
	var worlds []*world
	var errs []instError
	for _, v := range engineVariants {
		w, err := buildEngineWorld(pass.Path, sums, skels, runNode, v)
		if err != nil {
			errs = append(errs, instError{key: runKey, pos: runNode.Decl.Pos(), msg: err.Error()})
			continue
		}
		worlds = append(worlds, w)
	}
	return worlds, errs
}

// toomPkg is the package whose Workload instantiation loads the engine
// worlds: the engine itself lives in pkg (ftengine), the workload methods
// and the denominator-LCM constructor in the Toom tier.
const toomPkg = "repro/internal/ftparallel"

// buildEngineWorld mirrors ftparallel.Multiply's construction for
// P=3, k=2, F=1 and the variant's DFS depth: layout and denominator LCM via
// the host interpreter, algorithm/points/matrices/code via the native
// bridge, operand digit shares as opaque vectors in the plan's cyclic
// layout. The entry is the generic engine's per-rank body with the Toom
// workload behind its Workload interface — the same seam the production
// Run crosses — so the model exercises the devirtualized dispatch too.
func buildEngineWorld(pkg string, sums *framework.Summaries, skels *framework.SkeletonSet, runNode *framework.CGNode, v engineVariant) (*world, error) {
	const (
		p, k, f = 3, 2, 1
		lbfs    = 1 // log_{2k-1}(P) = log_3(3)
		shift   = 8 // any positive digit width: payloads are opaque
	)
	layOut, err := hostCall(sums, skels, pkg+".NewLayout", nil,
		[]Value{knownInt(p), knownInt(k), knownInt(f)})
	if err != nil {
		return nil, err
	}
	if msg := hostErr(layOut); msg != "" {
		return nil, fmt.Errorf("NewLayout: %s", msg)
	}
	lay, ok := layOut[0].(*StructVal)
	if !ok {
		return nil, fmt.Errorf("NewLayout returned %T, not a layout", layOut[0])
	}
	totOut, err := hostCall(sums, skels, pkg+".Layout.Total", lay, nil)
	if err != nil {
		return nil, err
	}
	total, ok := totOut[0].(IntVal)
	if !ok || !total.Known {
		return nil, fmt.Errorf("Layout.Total did not fold to a known rank count")
	}
	gp, ok := lay.Fields["GPrime"].(IntVal)
	if !ok || !gp.Known {
		return nil, fmt.Errorf("layout GPrime is not concrete")
	}

	alg, err := toom.New(k)
	if err != nil {
		return nil, err
	}
	pts := points.StandardWithRedundancy(k, f)
	if err := points.Valid(pts, 2*k-1); err != nil {
		return nil, err
	}
	uExt, err := toom.IntRows(points.EvalMatrix(pts, k))
	if err != nil {
		return nil, err
	}
	code, err := erasure.New(int(gp.V), f)
	if err != nil {
		return nil, err
	}

	levels := lbfs + v.ldfs
	digits := p
	for i := 0; i < levels; i++ {
		digits *= k
	}
	per := digits / p

	shares := func() Value {
		qs := make([]Value, p)
		for q := range qs {
			qs[q] = payloadVec(per)
		}
		return &SliceVal{Elems: qs}
	}
	plan := &StructVal{Type: "Plan", PkgPath: "repro/internal/parallel", Fields: map[string]Value{
		"alg":     NativeVal{V: alg},
		"k":       knownInt(k),
		"p":       knownInt(p),
		"lbfs":    knownInt(lbfs),
		"ldfs":    knownInt(int64(v.ldfs)),
		"levels":  knownInt(int64(levels)),
		"digits":  knownInt(int64(digits)),
		"shift":   knownInt(shift),
		"neg":     knownBool(false),
		"track":   knownBool(false),
		"hooks":   &StructVal{Type: "Hooks", Fields: map[string]Value{"Sync": NilVal{}}},
		"sharesA": shares(),
		"sharesB": shares(),
	}}
	eng := &StructVal{Type: "engine", PkgPath: toomPkg, Fields: map[string]Value{
		"lay":            lay,
		"plan":           plan,
		"alg":            NativeVal{V: alg},
		"pts":            fromNative(reflect.ValueOf(pts), runNode.Decl.Pos()),
		"uExt":           fromNative(reflect.ValueOf(uExt), runNode.Decl.Pos()),
		"ldfs":           knownInt(int64(v.ldfs)),
		"levels":         knownInt(int64(levels)),
		"shift":          knownInt(shift),
		"digits":         knownInt(int64(digits)),
		"dropStragglers": knownBool(v.straggler),
		"slack":          FloatVal{Known: true, V: 5},
		"wCache":         newMap(),
		"denLCM":         knownInt(0),
	}}
	lcmOut, err := hostCall(sums, skels, toomPkg+".engine.computeDenLCM", eng, nil)
	if err != nil {
		return nil, err
	}
	if msg := hostErr(lcmOut); msg != "" {
		return nil, fmt.Errorf("computeDenLCM: %s", msg)
	}

	// The Coder and exec mirror what NewCoder and Run build: the per-worker
	// coded vector length and the per-processor product share length follow
	// inputVecLen/productShareLen on the instantiated shape.
	kPow := 1
	for i := 0; i < v.ldfs; i++ {
		kPow *= k
	}
	coder := &StructVal{Type: "Coder", PkgPath: pkg, Fields: map[string]Value{
		"lay":     lay,
		"code":    NativeVal{V: code},
		"dataLen": knownInt(int64(2 * digits / p)),
		"prodLen": knownInt(int64(2 * (digits / kPow) / (k * int(gp.V)))),
	}}
	ex := &StructVal{Type: "exec", PkgPath: pkg, Fields: map[string]Value{
		"wl":             eng,
		"lay":            lay,
		"coder":          coder,
		"dropStragglers": knownBool(v.straggler),
	}}

	name := fmt.Sprintf("ftparallel.Multiply P=%d k=%d F=%d ldfs=%d", p, k, f, v.ldfs)
	if v.straggler {
		name += " straggler"
	}
	// The engine (and its warmed interpolation cache) is shared by all
	// ranks and runs: the scheduler executes one processor at a time, and
	// the real engine is likewise shared read-only across goroutines.
	return &world{
		name: name,
		n:    int(total.V),
		pos:  runNode.Decl.Pos(),
		// The straggler protocol aborts collectively when too few columns
		// answer on time — a legitimate exit, not a finding.
		faultTolerant: !v.straggler,
		run: func(in *interp, mp *modelProc) Value {
			out := in.callDecl(runNode, ex, []Value{ProcVal{mp: mp}}, runNode.Decl.Pos())
			if len(out) == 0 {
				return NilVal{}
			}
			return out[len(out)-1]
		},
	}, nil
}
