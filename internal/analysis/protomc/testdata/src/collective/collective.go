// Clean fixture: linear-root collective protocols that protomc must prove
// deadlock-free for every world size n in [2,5] and every root, with no
// orphan messages and fault-plan-tolerant barriers. Any finding in this
// package is an analyzer bug. (There are deliberately no want comments.)
package collective

type Ints []int64

type Group []int

type FaultEvent struct {
	Proc  int
	Phase string
}

// Proc is the fixture stand-in for machine.Proc; protomc serves its methods
// from the model transport, so the stub bodies never run.
type Proc struct{}

func (p *Proc) ID() int                                    { return 0 }
func (p *Proc) P() int                                     { return 1 }
func (p *Proc) Send(to int, tag string, v Ints) error      { return nil }
func (p *Proc) Recv(from int, tag string) (Ints, error)    { return nil, nil }
func (p *Proc) Barrier(phase string) ([]FaultEvent, error) { return nil, nil }

func index(g Group, id int) int {
	for i := 0; i < len(g); i++ {
		if g[i] == id {
			return i
		}
	}
	return -1
}

func add(a, b Ints) Ints {
	out := make(Ints, len(a))
	for i := 0; i < len(a); i++ {
		out[i] = a[i]
	}
	for i := 0; i < len(b); i++ {
		out[i] = out[i] + b[i]
	}
	return out
}

// Broadcast sends root's vector to every other group member.
func Broadcast(p *Proc, g Group, root int, tag string, v Ints) (Ints, error) {
	me := index(g, p.ID())
	if me == root {
		for i := 0; i < len(g); i++ {
			if i == root {
				continue
			}
			if err := p.Send(g[i], tag, v); err != nil {
				return nil, err
			}
		}
		return v, nil
	}
	return p.Recv(g[root], tag)
}

// Reduce accumulates every member's vector at root.
func Reduce(p *Proc, g Group, root int, tag string, mine Ints) (Ints, error) {
	me := index(g, p.ID())
	if me != root {
		return nil, p.Send(g[root], tag, mine)
	}
	acc := mine
	for i := 0; i < len(g); i++ {
		if i == root {
			continue
		}
		v, err := p.Recv(g[i], tag)
		if err != nil {
			return nil, err
		}
		acc = add(acc, v)
	}
	return acc, nil
}

// AllReduce reduces at rank 0, then broadcasts the result.
func AllReduce(p *Proc, g Group, tag string, mine Ints) (Ints, error) {
	acc, err := Reduce(p, g, 0, tag, mine)
	if err != nil {
		return nil, err
	}
	return Broadcast(p, g, 0, tag+"/bc", acc)
}

// Sync crosses one barrier. The checker injects a fail-stop at every
// crossing; the protocol holds no cross-barrier state, so every plan must
// complete cleanly.
func Sync(p *Proc, g Group, tag string) error {
	if _, err := p.Barrier(tag); err != nil {
		return err
	}
	return nil
}
