// Dirty fixture: a checkpoint protocol that sends before a barrier and
// receives after it. Fault-free it is clean — but when the checker injects
// a fail-stop at the barrier on the receiving rank, the replacement (with
// wiped state) consumes a message addressed to its failed predecessor,
// which protomc must flag as stale cross-fault delivery.
package badrecover

type Ints []int64

type Group []int

type FaultEvent struct {
	Proc  int
	Phase string
}

type Proc struct{}

func (p *Proc) ID() int                                    { return 0 }
func (p *Proc) Send(to int, tag string, v Ints) error      { return nil }
func (p *Proc) Recv(from int, tag string) (Ints, error)    { return nil, nil }
func (p *Proc) Barrier(phase string) ([]FaultEvent, error) { return nil, nil }

func index(g Group, id int) int {
	for i := 0; i < len(g); i++ {
		if g[i] == id {
			return i
		}
	}
	return -1
}

func Checkpoint(p *Proc, g Group, tag string) error {
	if me := index(g, p.ID()); me == 0 {
		// BUG: crosses the recovery barrier with a message in flight.
		if err := p.Send(g[1], tag, Ints{1}); err != nil { // want "sent to its predecessor"
			return err
		}
	}
	if _, err := p.Barrier(tag + "/sync"); err != nil {
		return err
	}
	if me := index(g, p.ID()); me == 1 {
		if _, err := p.Recv(g[0], tag); err != nil {
			return err
		}
	}
	return nil
}
