// Dirty fixture: a broadcast whose fan-out loop stops one rank short. In
// every world whose root is not the last rank, that rank waits forever —
// protomc must report the deadlock with a counterexample interleaving.
package badbcast

type Ints []int64

type Group []int

type Proc struct{}

func (p *Proc) ID() int                                 { return 0 }
func (p *Proc) Send(to int, tag string, v Ints) error   { return nil }
func (p *Proc) Recv(from int, tag string) (Ints, error) { return nil, nil }

func index(g Group, id int) int {
	for i := 0; i < len(g); i++ {
		if g[i] == id {
			return i
		}
	}
	return -1
}

func Broadcast(p *Proc, g Group, root int, tag string, v Ints) (Ints, error) {
	me := index(g, p.ID())
	if me == root {
		for i := 0; i < len(g)-1; i++ { // BUG: drops the last rank
			if i == root {
				continue
			}
			if err := p.Send(g[i], tag, v); err != nil {
				return nil, err
			}
		}
		return v, nil
	}
	return p.Recv(g[root], tag) // want "deadlock: p. waits for tag"
}
