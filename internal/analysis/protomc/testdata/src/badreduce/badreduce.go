// Dirty fixture: a barrier-synchronized reduce whose fan-in loop never
// drains the last contributor. The barrier forces every send to land before
// the root exits, so the mismatch shows up as an orphan message left queued
// at termination.
package badreduce

type Ints []int64

type Group []int

type FaultEvent struct {
	Proc  int
	Phase string
}

type Proc struct{}

func (p *Proc) ID() int                                    { return 0 }
func (p *Proc) Send(to int, tag string, v Ints) error      { return nil }
func (p *Proc) Recv(from int, tag string) (Ints, error)    { return nil, nil }
func (p *Proc) Barrier(phase string) ([]FaultEvent, error) { return nil, nil }

func index(g Group, id int) int {
	for i := 0; i < len(g); i++ {
		if g[i] == id {
			return i
		}
	}
	return -1
}

func add(a, b Ints) Ints {
	out := make(Ints, len(a))
	for i := 0; i < len(a); i++ {
		out[i] = a[i]
	}
	for i := 0; i < len(b); i++ {
		out[i] = out[i] + b[i]
	}
	return out
}

func Reduce(p *Proc, g Group, root int, tag string, mine Ints) (Ints, error) {
	me := index(g, p.ID())
	if me != root {
		if err := p.Send(g[root], tag, mine); err != nil { // want "is never received"
			return nil, err
		}
	}
	if _, err := p.Barrier(tag + "/done"); err != nil {
		return nil, err
	}
	if me != root {
		return nil, nil
	}
	acc := mine
	for i := 0; i < len(g)-1; i++ { // BUG: the last contributor is never drained
		if i == root {
			continue
		}
		v, err := p.Recv(g[i], tag)
		if err != nil {
			return nil, err
		}
		acc = add(acc, v)
	}
	return acc, nil
}
