package protomc

// checker.go is the explicit-state model checker. Each model processor runs
// the interpreted SPMD body on its own goroutine; transport verbs park the
// goroutine and hand an op to the scheduler. The scheduler executes a
// run-to-block schedule: message queues are keyed (src, dst, tag), so
// execution is a Kahn network and one deterministic schedule per
// nondeterminism vector is sound for deadlock and matching properties. The
// remaining nondeterminism — receive-deadline timing and (for
// cross-validation) scheduling order — is explored exhaustively by DFS over
// explicit choice vectors, and fail-stop faults are injected at barrier
// crossings exactly as machine/faultinject does: the victim's store is
// wiped and its replacement continues at the same rank.

import (
	"fmt"
	"go/token"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/analysis/framework"
)

// Finding is one protocol property violation with its counterexample.
type Finding struct {
	Pos   token.Pos // anchor: the offending comm site, or the world's entry
	World string    // world description including the fault plan
	Msg   string
	Trace []string // the interleaving that exhibits the violation
}

// faultSpec schedules one fail-stop fault: proc dies the hit-th time it
// crosses the named barrier phase (mirroring faultinject.Fault).
type faultSpec struct {
	Proc  int
	Phase string
	Hit   int
}

func (f faultSpec) String() string {
	return fmt.Sprintf("p%d fails at barrier %q crossing %d", f.Proc, f.Phase, f.Hit)
}

// world is one concrete model instantiation.
type world struct {
	name string // human description, e.g. `collective.Broadcast n=3 root=1`
	n    int    // processor count
	pos  token.Pos
	plan []faultSpec
	// run executes the SPMD body for one processor and returns its error
	// result (NilVal for clean exit).
	run func(in *interp, mp *modelProc) Value
	// faultTolerant worlds must complete cleanly under their fault plan:
	// an error exit is itself a finding. Worlds whose protocol has a
	// legitimate abort-fast path (straggler decisions) leave this false.
	faultTolerant bool
	// exhaustive additionally explores scheduling order (cross-validation
	// of the run-to-block confluence argument; exponential, fixtures only).
	exhaustive bool
	fuel       int64 // interpreter step budget per run
	maxRuns    int   // cap on explored choice vectors (0 = default)
}

type procState int

const (
	stReady procState = iota
	stBlockedRecv
	stBlockedDeadline
	stAtBarrier
	stExited  // clean exit (nil error)
	stErrored // exited with a non-nil error value
	stFailed  // interpretation failed (modelErr)
)

// modelProc is one model processor. The interpreter (running on the proc's
// own goroutine) calls the op* verbs; everything else belongs to the
// scheduler and is only touched while the goroutine is parked.
type modelProc struct {
	id         int
	ck         *checker
	store      map[string]Value
	faultCount int
	epoch      int // bumped on each fail-stop replacement
	hits       map[string]int

	resC   chan opResult
	state  procState
	resume opResult // delivered on next step
	// park context (for quiescence diagnostics):
	waitSrc   int
	waitTag   string
	waitPos   token.Pos
	barPhase  string
	barPos    token.Pos
	exitErr   string
	failedMsg string
	failedPos token.Pos
}

type opKind int

const (
	kSend opKind = iota
	kRecv
	kRecvDeadline
	kBarrier
	kExit
	kFail
)

type op struct {
	proc    int
	kind    opKind
	peer    int
	tag     string
	payload Value
	pos     token.Pos
	errMsg  string
	isErr   bool // kExit: error result was non-nil
}

type opResult struct {
	kill    bool
	payload Value
	onTime  bool
}

type qkey struct {
	src, dst int
	tag      string
}

type message struct {
	payload  Value
	dstEpoch int
	pos      token.Pos
}

// checker explores one world.
type checker struct {
	sums  *framework.Summaries
	skels *framework.SkeletonSet
	w     *world

	procs     []*modelProc
	queues    map[qkey][]message
	abandoned map[qkey]bool // late-resolved deadline queues: orphans exempt
	opC       chan op
	wg        sync.WaitGroup
	fuel      atomic.Int64

	choices   []int
	arities   []int
	choiceIdx int

	trace     []string
	truncated bool
	findings  []Finding
	seen      map[string]bool
	aborted   bool

	// crossings records (proc, phase, hit) barrier crossings of the first
	// run — the fault-plan enumeration domain for this world.
	crossings []faultSpec
}

const (
	defaultFuel  = 4_000_000
	defaultRuns  = 4096
	maxTraceLen  = 400
	maxWorldRuns = 1 << 16
)

// explore runs the DFS over choice vectors and returns all distinct
// findings plus the barrier-crossing census of the world's first run.
func explore(sums *framework.Summaries, skels *framework.SkeletonSet, w *world) ([]Finding, []faultSpec) {
	ck := &checker{sums: sums, skels: skels, w: w, seen: map[string]bool{}}
	maxRuns := w.maxRuns
	if maxRuns <= 0 {
		maxRuns = defaultRuns
	}
	if maxRuns > maxWorldRuns {
		maxRuns = maxWorldRuns
	}
	var crossings []faultSpec
	choices := []int{}
	for run := 0; ; run++ {
		if run >= maxRuns {
			ck.report(w.pos, fmt.Sprintf("exploration budget exhausted after %d runs (nondeterminism too deep to enumerate)", run), nil)
			break
		}
		arities := ck.runOnce(choices)
		if run == 0 {
			crossings = ck.crossings
		}
		// Advance the choice vector: increment the deepest choice that
		// still has untried alternatives, truncating everything after it.
		i := len(arities) - 1
		for i >= 0 && choices2(choices, i)+1 >= arities[i] {
			i--
		}
		if i < 0 {
			break
		}
		next := make([]int, i+1)
		copy(next, choices)
		next[i] = choices2(choices, i) + 1
		choices = next
	}
	return ck.findings, crossings
}

func choices2(choices []int, i int) int {
	if i < len(choices) {
		return choices[i]
	}
	return 0
}

// runOnce executes one complete schedule for the given choice prefix and
// returns the arity of every choice point consumed.
func (ck *checker) runOnce(choices []int) []int {
	w := ck.w
	ck.procs = make([]*modelProc, w.n)
	ck.queues = map[qkey][]message{}
	ck.abandoned = map[qkey]bool{}
	ck.opC = make(chan op)
	ck.choices = choices
	ck.arities = nil
	ck.choiceIdx = 0
	ck.trace = nil
	ck.truncated = false
	ck.aborted = false
	ck.crossings = nil
	fuel := w.fuel
	if fuel <= 0 {
		fuel = defaultFuel
	}
	ck.fuel.Store(fuel)

	for i := 0; i < w.n; i++ {
		mp := &modelProc{
			id:    i,
			ck:    ck,
			store: map[string]Value{},
			hits:  map[string]int{},
			resC:  make(chan opResult),
		}
		ck.procs[i] = mp
		ck.wg.Add(1)
		go ck.procMain(mp)
	}

	for !ck.aborted {
		pid := ck.pickReady()
		if pid >= 0 {
			ck.stepProc(pid)
			continue
		}
		if ck.tryBarrier() {
			continue
		}
		if ck.resolveLateWaiter() {
			continue
		}
		break
	}
	if !ck.aborted {
		ck.terminalChecks()
	}
	ck.teardown()
	return ck.arities
}

// choose consumes one nondeterministic choice of the given arity.
func (ck *checker) choose(n int) int {
	ck.arities = append(ck.arities, n)
	v := 0
	if ck.choiceIdx < len(ck.choices) {
		v = ck.choices[ck.choiceIdx]
	}
	ck.choiceIdx++
	if v >= n {
		v = n - 1
	}
	return v
}

func (ck *checker) pickReady() int {
	var ready []int
	for _, mp := range ck.procs {
		if mp.state == stReady {
			ready = append(ready, mp.id)
		}
	}
	if len(ready) == 0 {
		return -1
	}
	if ck.w.exhaustive && len(ready) > 1 {
		return ready[ck.choose(len(ready))]
	}
	return ready[0]
}

// stepProc resumes a parked processor and consumes its next op.
func (ck *checker) stepProc(pid int) {
	mp := ck.procs[pid]
	res := mp.resume
	mp.resume = opResult{}
	mp.resC <- res
	ck.handleOp(<-ck.opC)
}

func (ck *checker) handleOp(o op) {
	mp := ck.procs[o.proc]
	switch o.kind {
	case kSend:
		ck.handleSend(mp, o)
	case kRecv:
		ck.handleRecv(mp, o)
	case kRecvDeadline:
		ck.handleRecvDeadline(mp, o)
	case kBarrier:
		mp.state = stAtBarrier
		mp.barPhase = o.tag
		mp.barPos = o.pos
		ck.event("p%d at barrier %q", mp.id, o.tag)
	case kExit:
		if o.isErr {
			mp.state = stErrored
			mp.exitErr = o.errMsg
			ck.event("p%d exits with error: %s", mp.id, o.errMsg)
		} else {
			mp.state = stExited
			ck.event("p%d exits cleanly", mp.id)
		}
	case kFail:
		mp.state = stFailed
		mp.failedMsg = o.errMsg
		mp.failedPos = o.pos
		ck.event("p%d: interpretation failed: %s", mp.id, o.errMsg)
		ck.report(o.pos, fmt.Sprintf("p%d: cannot soundly model this execution: %s", mp.id, o.errMsg), ck.snapshotTrace())
		ck.aborted = true
	}
}

func (ck *checker) handleSend(mp *modelProc, o op) {
	if o.peer < 0 || o.peer >= len(ck.procs) {
		ck.event("p%d sends tag %q to out-of-world rank %d", mp.id, o.tag, o.peer)
		ck.report(o.pos, fmt.Sprintf("p%d sends tag %q to rank %d, outside the world [0,%d)", mp.id, o.tag, o.peer, len(ck.procs)), ck.snapshotTrace())
		ck.aborted = true
		return
	}
	// Sends are fire-and-forget, exactly like the machine transport: a send
	// to a rank that has already terminated enqueues normally (late
	// straggler reports legitimately land in abandoned queues). If nothing
	// ever legitimizes the message, the terminal orphan check reports it.
	dst := ck.procs[o.peer]
	k := qkey{src: mp.id, dst: o.peer, tag: o.tag}
	ck.queues[k] = append(ck.queues[k], message{payload: o.payload, dstEpoch: dst.epoch, pos: o.pos})
	ck.event("p%d sends tag %q to p%d", mp.id, o.tag, o.peer)
	mp.state = stReady
	mp.resume = opResult{payload: NilVal{}}
	// A parked matching receiver becomes deliverable.
	ck.wakeMatching(k)
}

func (ck *checker) wakeMatching(k qkey) {
	dst := ck.procs[k.dst]
	if (dst.state == stBlockedRecv || dst.state == stBlockedDeadline) &&
		dst.waitSrc == k.src && dst.waitTag == k.tag {
		ck.deliver(dst)
	}
}

// deliver pops the head message for a parked receiver and readies it.
func (ck *checker) deliver(dst *modelProc) {
	k := qkey{src: dst.waitSrc, dst: dst.id, tag: dst.waitTag}
	q := ck.queues[k]
	m := q[0]
	if len(q) == 1 {
		delete(ck.queues, k)
	} else {
		ck.queues[k] = q[1:]
	}
	if m.dstEpoch != dst.epoch {
		ck.event("p%d receives stale tag %q from p%d (sent before p%d's replacement)", dst.id, k.tag, k.src, dst.id)
		ck.report(m.pos, fmt.Sprintf("replacement of failed rank %d consumes tag %q sent to its predecessor by p%d (stale cross-fault delivery)", dst.id, k.tag, k.src), ck.snapshotTrace())
		ck.aborted = true
		return
	}
	onTime := dst.state == stBlockedDeadline
	ck.event("p%d receives tag %q from p%d", dst.id, k.tag, k.src)
	dst.state = stReady
	dst.resume = opResult{payload: m.payload, onTime: onTime}
}

func (ck *checker) handleRecv(mp *modelProc, o op) {
	if o.peer < 0 || o.peer >= len(ck.procs) {
		ck.report(o.pos, fmt.Sprintf("p%d receives tag %q from rank %d, outside the world [0,%d)", mp.id, o.tag, o.peer, len(ck.procs)), ck.snapshotTrace())
		ck.aborted = true
		return
	}
	mp.state = stBlockedRecv
	mp.waitSrc = o.peer
	mp.waitTag = o.tag
	mp.waitPos = o.pos
	k := qkey{src: o.peer, dst: mp.id, tag: o.tag}
	if len(ck.queues[k]) > 0 {
		ck.deliver(mp)
		return
	}
	ck.event("p%d waits for tag %q from p%d", mp.id, o.tag, o.peer)
}

// handleRecvDeadline resolves the timing nondeterminism of a deadline
// receive with an explicit binary choice: on-time (wait for the message,
// consume it) or late (return immediately; the message, present or future,
// is abandoned in its queue).
func (ck *checker) handleRecvDeadline(mp *modelProc, o op) {
	if o.peer < 0 || o.peer >= len(ck.procs) {
		ck.report(o.pos, fmt.Sprintf("p%d deadline-receives tag %q from rank %d, outside the world [0,%d)", mp.id, o.tag, o.peer, len(ck.procs)), ck.snapshotTrace())
		ck.aborted = true
		return
	}
	k := qkey{src: o.peer, dst: mp.id, tag: o.tag}
	if ck.choose(2) == 1 {
		ck.event("p%d deadline-receive of tag %q from p%d times out", mp.id, o.tag, o.peer)
		ck.abandoned[k] = true
		mp.state = stReady
		mp.resume = opResult{payload: NilVal{}, onTime: false}
		return
	}
	mp.state = stBlockedDeadline
	mp.waitSrc = o.peer
	mp.waitTag = o.tag
	mp.waitPos = o.pos
	if len(ck.queues[k]) > 0 {
		ck.deliver(mp)
		return
	}
	ck.event("p%d waits (with deadline) for tag %q from p%d", mp.id, o.tag, o.peer)
}

// tryBarrier completes a barrier rendezvous when every still-active
// processor has arrived, injecting any scheduled fail-stop faults.
func (ck *checker) tryBarrier() bool {
	var waiting []*modelProc
	for _, mp := range ck.procs {
		switch mp.state {
		case stAtBarrier:
			waiting = append(waiting, mp)
		case stExited, stErrored, stFailed:
		default:
			return false // someone active is not at the barrier
		}
	}
	if len(waiting) == 0 {
		return false
	}
	phase := waiting[0].barPhase
	for _, mp := range waiting[1:] {
		if mp.barPhase != phase {
			ck.report(mp.barPos, fmt.Sprintf("barrier phase mismatch: p%d at %q while p%d is at %q", waiting[0].id, phase, mp.id, mp.barPhase), ck.snapshotTrace())
			ck.aborted = true
			return true
		}
	}

	// Per-endpoint, phase-keyed hit counting, exactly as faultinject does.
	var events []Value
	var victims []int
	for _, mp := range waiting {
		hit := mp.hits[phase]
		mp.hits[phase] = hit + 1
		ck.crossings = append(ck.crossings, faultSpec{Proc: mp.id, Phase: phase, Hit: hit})
		for _, f := range ck.w.plan {
			if f.Proc == mp.id && f.Phase == phase && f.Hit == hit {
				victims = append(victims, mp.id)
			}
		}
	}
	sort.Ints(victims)
	for _, v := range victims {
		mp := ck.procs[v]
		mp.store = map[string]Value{}
		mp.faultCount++
		mp.epoch++
		events = append(events, &StructVal{Type: "FaultEvent", Fields: map[string]Value{
			"Proc":  knownInt(int64(v)),
			"Phase": knownStr(phase),
		}})
		ck.event("barrier %q: p%d fail-stops; its replacement continues with wiped state", phase, v)
		// Fail-stop wipes the rank's state; anything already in flight to
		// it will be consumed by the unsuspecting replacement (flagged at
		// delivery as stale cross-fault traffic).
	}
	ck.event("barrier %q completes (%d participants)", phase, len(waiting))
	for _, mp := range waiting {
		mp.state = stReady
		mp.resume = opResult{payload: copyPayload(&SliceVal{Elems: events})}
	}
	return true
}

// resolveLateWaiter force-resolves one parked deadline receive as late:
// once the system is otherwise quiescent no message can arrive in time.
func (ck *checker) resolveLateWaiter() bool {
	for _, mp := range ck.procs {
		if mp.state == stBlockedDeadline {
			k := qkey{src: mp.waitSrc, dst: mp.id, tag: mp.waitTag}
			ck.abandoned[k] = true
			ck.event("p%d deadline-receive of tag %q from p%d can never complete; times out", mp.id, mp.waitTag, mp.waitSrc)
			mp.state = stReady
			mp.resume = opResult{payload: NilVal{}, onTime: false}
			return true
		}
	}
	return false
}

// terminalChecks classifies the quiescent state: clean termination with
// empty queues, collective abort, or deadlock.
func (ck *checker) terminalChecks() {
	var blocked, errored []*modelProc
	for _, mp := range ck.procs {
		switch mp.state {
		case stBlockedRecv, stAtBarrier, stReady, stBlockedDeadline:
			blocked = append(blocked, mp)
		case stErrored, stFailed:
			errored = append(errored, mp)
		}
	}

	if len(blocked) > 0 {
		if len(errored) == 0 {
			// True deadlock: no processor errored, yet the world cannot
			// make progress.
			desc := make([]string, len(blocked))
			pos := ck.w.pos
			for i, mp := range blocked {
				switch mp.state {
				case stBlockedRecv:
					desc[i] = fmt.Sprintf("p%d waits for tag %q from p%d", mp.id, mp.waitTag, mp.waitSrc)
					pos = mp.waitPos
				case stAtBarrier:
					desc[i] = fmt.Sprintf("p%d waits at barrier %q", mp.id, mp.barPhase)
					pos = mp.barPos
				default:
					desc[i] = fmt.Sprintf("p%d blocked", mp.id)
				}
			}
			ck.report(pos, "deadlock: "+joinAnd(desc)+", and no processor can make progress", ck.snapshotTrace())
		}
		// With an error exit the real machine cancels the run (collective
		// abort): blocked survivors are not a deadlock. The error exit
		// itself is judged below.
		return
	}

	if ck.w.faultTolerant {
		for _, mp := range errored {
			if mp.state == stErrored {
				ck.report(ck.w.pos, fmt.Sprintf("p%d aborts with %q under a fault plan the layout tolerates", mp.id, mp.exitErr), ck.snapshotTrace())
			}
		}
	}

	// Orphan messages: every queue must drain, except those a deadline
	// receive deliberately abandoned.
	keys := make([]qkey, 0, len(ck.queues))
	for k := range ck.queues {
		if !ck.abandoned[k] && len(ck.queues[k]) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.src != b.src {
			return a.src < b.src
		}
		if a.dst != b.dst {
			return a.dst < b.dst
		}
		return a.tag < b.tag
	})
	for _, k := range keys {
		m := ck.queues[k][0]
		ck.report(m.pos, fmt.Sprintf("message tag %q from p%d to p%d is never received (%d left queued at termination)", k.tag, k.src, k.dst, len(ck.queues[k])), ck.snapshotTrace())
	}
}

// teardown kills every parked goroutine and waits for all of them.
func (ck *checker) teardown() {
	for _, mp := range ck.procs {
		switch mp.state {
		case stExited, stErrored, stFailed:
		default:
			mp.resC <- opResult{kill: true}
		}
	}
	ck.wg.Wait()
}

// procMain is a model processor's goroutine: run the interpreted body,
// reporting exit or interpretation failure as a final op.
func (ck *checker) procMain(mp *modelProc) {
	defer ck.wg.Done()
	defer func() {
		switch e := recover().(type) {
		case nil:
		case killSignal:
		case modelErr:
			ck.opC <- op{proc: mp.id, kind: kFail, pos: e.Pos, errMsg: e.Msg}
		default:
			panic(e)
		}
	}()
	mp.await() // parked until the scheduler starts this processor
	in := &interp{sums: ck.sums, skels: ck.skels, mp: mp, fuel: &ck.fuel}
	errv := ck.w.run(in, mp)
	o := op{proc: mp.id, kind: kExit}
	if ev, ok := errv.(ErrVal); ok {
		o.isErr = true
		o.errMsg = ev.Msg
	}
	ck.opC <- o
}

// await parks the proc goroutine until the scheduler resumes (or kills) it.
func (mp *modelProc) await() opResult {
	res := <-mp.resC
	if res.kill {
		panic(killSignal{})
	}
	return res
}

// --- transport verbs (called from the proc goroutine via the interpreter) ---

func (mp *modelProc) opSend(to int, tag string, payload Value, pos token.Pos) Value {
	mp.ck.opC <- op{proc: mp.id, kind: kSend, peer: to, tag: tag, payload: payload, pos: pos}
	return mp.await().payload
}

func (mp *modelProc) opRecv(from int, tag string, pos token.Pos) Value {
	mp.ck.opC <- op{proc: mp.id, kind: kRecv, peer: from, tag: tag, pos: pos}
	return mp.await().payload
}

func (mp *modelProc) opRecvDeadline(from int, tag string, pos token.Pos) (Value, bool) {
	mp.ck.opC <- op{proc: mp.id, kind: kRecvDeadline, peer: from, tag: tag, pos: pos}
	res := mp.await()
	return res.payload, res.onTime
}

func (mp *modelProc) opBarrier(phase string, pos token.Pos) Value {
	mp.ck.opC <- op{proc: mp.id, kind: kBarrier, tag: phase, pos: pos}
	return mp.await().payload
}

// --- trace and findings ---

func (ck *checker) event(format string, args ...any) {
	if len(ck.trace) >= maxTraceLen {
		ck.trace = ck.trace[1:]
		ck.truncated = true
	}
	ck.trace = append(ck.trace, fmt.Sprintf(format, args...))
}

func (ck *checker) snapshotTrace() []string {
	out := make([]string, 0, len(ck.trace)+1)
	if ck.truncated {
		out = append(out, fmt.Sprintf("... (earlier events truncated, last %d shown)", maxTraceLen))
	}
	return append(out, ck.trace...)
}

// report records a finding, deduplicated by message across choice vectors
// (the same violation typically recurs under many interleavings; the first
// counterexample trace is kept).
func (ck *checker) report(pos token.Pos, msg string, trace []string) {
	if ck.seen[msg] {
		return
	}
	ck.seen[msg] = true
	ck.findings = append(ck.findings, Finding{Pos: pos, World: ck.w.name, Msg: msg, Trace: trace})
}

func joinAnd(parts []string) string {
	switch len(parts) {
	case 0:
		return ""
	case 1:
		return parts[0]
	}
	out := ""
	for i, p := range parts {
		if i > 0 {
			if i == len(parts)-1 {
				out += " and "
			} else {
				out += ", "
			}
		}
		out += p
	}
	return out
}
