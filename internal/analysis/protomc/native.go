package protomc

// native.go bridges the interpreter to the real arithmetic packages. The
// protocol layers (collective, ftparallel, parallel) are interpreted; the
// numeric kernels they call (bigint, toom, points, mat, rat, erasure) run
// natively via reflection so that protocol-relevant outputs — interpolation
// matrices, Vandermonde rows, evaluation point sets — are bit-exact. Calls
// whose arguments are opaque payload data cannot run natively; they fall
// back to a result-typed abstraction (big integers stay opaque, error
// results are assumed nil under the local-failure-free assumption).

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strings"

	"repro/internal/bigint"
	"repro/internal/erasure"
	"repro/internal/mat"
	"repro/internal/points"
	"repro/internal/rat"
	"repro/internal/toom"
)

// nativeBridgedPkg reports whether a package's declared functions are
// executed natively rather than interpreted.
func nativeBridgedPkg(path string) bool {
	switch path[strings.LastIndex(path, "/")+1:] {
	case "bigint", "toom", "points", "erasure", "mat", "rat":
		return true
	}
	return false
}

// nativeRegistry maps FuncKeys of package-level bridged functions to the
// real implementations. Only functions whose arguments are protocol-concrete
// (ranks, sizes, survivor sets, point lists) need to be here; everything
// else resolves through the result-typed fallback.
var nativeRegistry = map[string]any{
	"repro/internal/erasure.New":                   erasure.New,
	"repro/internal/mat.New":                       mat.New,
	"repro/internal/points.EvalMatrix":             points.EvalMatrix,
	"repro/internal/points.Finite":                 points.Finite,
	"repro/internal/points.FiniteInt64":            points.FiniteInt64,
	"repro/internal/points.Infinity":               points.Infinity,
	"repro/internal/points.Interpolation":          points.Interpolation,
	"repro/internal/points.Standard":               points.Standard,
	"repro/internal/points.StandardWithRedundancy": points.StandardWithRedundancy,
	"repro/internal/points.Valid":                  points.Valid,
	"repro/internal/rat.FromInt64":                 rat.FromInt64,
	"repro/internal/rat.One":                       rat.One,
	"repro/internal/rat.Zero":                      rat.Zero,
	"repro/internal/toom.IntRows":                  toom.IntRows,
	"repro/internal/toom.MustNew":                  toom.MustNew,
	"repro/internal/toom.New":                      toom.New,
	"repro/internal/toom.NewWithPoints":            toom.NewWithPoints,
	"repro/internal/toom.ScaledRows":               toom.ScaledRows,
}

var bigintType = reflect.TypeOf(bigint.Int{})

// nativeCall executes a natively bridged call: stdlib specials, opaque
// big-integer method abstractions, registry functions, and reflective
// method dispatch on concrete native values.
func (in *interp) nativeCall(fr *frame, key string, recv Value, call *ast.CallExpr) []Value {
	in.step(call.Pos())
	pos := call.Pos()

	switch key {
	case "fmt.Sprintf":
		args := in.evalArgs(fr, call)
		return []Value{in.sprintf(args, pos)}
	case "fmt.Sprint":
		args := in.evalArgs(fr, call)
		return []Value{in.sprint(args)}
	case "fmt.Errorf":
		args := in.evalArgs(fr, call)
		s := in.sprintf(args, pos)
		msg := "error"
		if sv, ok := s.(StrVal); ok && sv.Known {
			msg = sv.V
		}
		return []Value{ErrVal{Msg: msg}}
	case "errors.New":
		args := in.evalArgs(fr, call)
		msg := "error"
		if sv, ok := args[0].(StrVal); ok && sv.Known {
			msg = sv.V
		}
		return []Value{ErrVal{Msg: msg}}
	case "sort.Ints":
		in.sortInts(in.evalArgs(fr, call), pos)
		return nil
	case "sort.Strings":
		in.sortStrings(in.evalArgs(fr, call), pos)
		return nil
	case "sort.Slice":
		in.sortSlice(fr, call)
		return nil
	}

	// Methods on an opaque big scalar (bigint.Int or rat.Rat payload data):
	// the zero-test/decode round trips the straggler protocol relies on are
	// tracked; everything else is data-only and stays opaque.
	if ov, ok := recv.(*OpaqueVal); ok {
		return in.opaqueMethod(fr, ov, key, call)
	}

	if nv, ok := recv.(NativeVal); ok {
		return in.nativeMethod(fr, nv, key, call)
	}

	if fn, ok := nativeRegistry[key]; ok {
		if out, ok := in.tryInvoke(fr, reflect.ValueOf(fn), nil, call); ok {
			return out
		}
		return in.fallbackResults(fr, key, call)
	}

	// Special-cased constructors for opaque integers.
	switch key {
	case "repro/internal/bigint.Zero":
		return []Value{opaqueOf(0)}
	case "repro/internal/bigint.One":
		return []Value{opaqueOf(1)}
	case "repro/internal/bigint.FromInt64", "repro/internal/bigint.FromUint64":
		args := in.evalArgs(fr, call)
		if iv, ok := args[0].(IntVal); ok && iv.Known {
			return []Value{opaqueOf(iv.V)}
		}
		return []Value{opaque()}
	}

	return in.fallbackResults(fr, key, call)
}

func methodName(key string) string { return key[strings.LastIndex(key, ".")+1:] }

// opaqueMethod abstracts a method call on an opaque payload scalar.
func (in *interp) opaqueMethod(fr *frame, ov *OpaqueVal, key string, call *ast.CallExpr) []Value {
	switch methodName(key) {
	case "Int64":
		// bigint.Int.Int64 decodes a FromInt64-encoded value: the straggler
		// decision protocol's column indices make this round trip exact.
		if ov.Known != nil {
			return []Value{knownInt(*ov.Known), knownBool(true)}
		}
		return []Value{unknownInt(), BoolVal{}}
	case "IsZero":
		if ov.Known != nil {
			return []Value{knownBool(*ov.Known == 0)}
		}
		return []Value{BoolVal{}}
	case "Sign":
		if ov.Known != nil {
			s := int64(0)
			if *ov.Known > 0 {
				s = 1
			} else if *ov.Known < 0 {
				s = -1
			}
			return []Value{knownInt(s)}
		}
		return []Value{unknownInt()}
	}
	return in.fallbackResults(fr, key, call)
}

// nativeMethod dispatches a method on a concrete native value, falling back
// to the result-typed abstraction when an argument is opaque.
func (in *interp) nativeMethod(fr *frame, nv NativeVal, key string, call *ast.CallExpr) []Value {
	rv := reflect.ValueOf(nv.V)
	m := rv.MethodByName(methodName(key))
	if !m.IsValid() && rv.Kind() != reflect.Pointer && rv.CanAddr() {
		m = rv.Addr().MethodByName(methodName(key))
	}
	if !m.IsValid() && rv.Kind() != reflect.Pointer {
		// Pointer-receiver method on an addressable copy.
		pv := reflect.New(rv.Type())
		pv.Elem().Set(rv)
		m = pv.MethodByName(methodName(key))
	}
	if !m.IsValid() {
		fail(call.Pos(), "native method %s is not available", key)
	}
	if out, ok := in.tryInvoke(fr, m, nil, call); ok {
		return out
	}
	return in.fallbackResults(fr, key, call)
}

// tryInvoke calls fn natively when every argument is concretely
// materializable; ok is false when any argument is opaque.
func (in *interp) tryInvoke(fr *frame, fn reflect.Value, pre []reflect.Value, call *ast.CallExpr) (out []Value, ok bool) {
	ft := fn.Type()
	if ft.IsVariadic() {
		return nil, false
	}
	args := in.evalArgs(fr, call)
	if len(pre)+len(args) != ft.NumIn() {
		return nil, false
	}
	rargs := append([]reflect.Value(nil), pre...)
	for i, a := range args {
		na, okA := toNative(a, ft.In(len(pre)+i))
		if !okA {
			return nil, false
		}
		rargs = append(rargs, na)
	}
	pos := call.Pos()
	defer func() {
		if r := recover(); r != nil {
			fail(pos, "native call panicked: %v", r)
		}
	}()
	res := fn.Call(rargs)
	out = make([]Value, len(res))
	for i, r := range res {
		out[i] = fromNative(r, pos)
	}
	return out, true
}

// toNative materializes an interpreter value as a reflect value of type t.
func toNative(v Value, t reflect.Type) (reflect.Value, bool) {
	switch x := v.(type) {
	case NativeVal:
		rv := reflect.ValueOf(x.V)
		if rv.Type().AssignableTo(t) {
			return rv, true
		}
		if rv.Type().ConvertibleTo(t) && rv.Kind() == t.Kind() {
			return rv.Convert(t), true
		}
		return reflect.Value{}, false
	case IntVal:
		if !x.Known {
			return reflect.Value{}, false
		}
		switch t.Kind() {
		case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
			return reflect.ValueOf(x.V).Convert(t), true
		case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
			if x.V < 0 {
				return reflect.Value{}, false
			}
			return reflect.ValueOf(x.V).Convert(t), true
		case reflect.Float32, reflect.Float64:
			return reflect.ValueOf(x.V).Convert(t), true
		}
		return reflect.Value{}, false
	case FloatVal:
		if !x.Known || (t.Kind() != reflect.Float64 && t.Kind() != reflect.Float32) {
			return reflect.Value{}, false
		}
		return reflect.ValueOf(x.V).Convert(t), true
	case BoolVal:
		if !x.Known || t.Kind() != reflect.Bool {
			return reflect.Value{}, false
		}
		return reflect.ValueOf(x.V), true
	case StrVal:
		if !x.Known || t.Kind() != reflect.String {
			return reflect.Value{}, false
		}
		return reflect.ValueOf(x.V).Convert(t), true
	case *OpaqueVal:
		if x.Known != nil && t == bigintType {
			return reflect.ValueOf(bigint.FromInt64(*x.Known)), true
		}
		return reflect.Value{}, false
	case NilVal:
		switch t.Kind() {
		case reflect.Pointer, reflect.Slice, reflect.Map, reflect.Interface, reflect.Func, reflect.Chan:
			return reflect.Zero(t), true
		}
		return reflect.Value{}, false
	case *SliceVal:
		if t.Kind() != reflect.Slice {
			return reflect.Value{}, false
		}
		out := reflect.MakeSlice(t, len(x.Elems), len(x.Elems))
		for i, e := range x.Elems {
			ev, ok := toNative(e, t.Elem())
			if !ok {
				return reflect.Value{}, false
			}
			out.Index(i).Set(ev)
		}
		return out, true
	}
	return reflect.Value{}, false
}

var errorType = reflect.TypeOf((*error)(nil)).Elem()

// fromNative abstracts a native result back into the value domain. Big
// integers become opaque scalars; structured numeric values (points,
// rationals, matrices, codes, algorithms) stay native so later concrete
// calls remain exact.
func fromNative(rv reflect.Value, pos token.Pos) Value {
	if !rv.IsValid() {
		return NilVal{}
	}
	if rv.Type() == errorType || (rv.Kind() == reflect.Interface && rv.Type().Implements(errorType)) {
		if rv.IsNil() {
			return NilVal{}
		}
		return ErrVal{Msg: rv.Interface().(error).Error()}
	}
	if rv.Kind() == reflect.Interface {
		if rv.IsNil() {
			return NilVal{}
		}
		rv = rv.Elem()
	}
	if rv.Type() == bigintType {
		return opaque()
	}
	switch rv.Kind() {
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return knownInt(rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64:
		return knownInt(int64(rv.Uint()))
	case reflect.Bool:
		return knownBool(rv.Bool())
	case reflect.String:
		return knownStr(rv.String())
	case reflect.Float32, reflect.Float64:
		return FloatVal{Known: true, V: rv.Float()}
	case reflect.Slice:
		out := make([]Value, rv.Len())
		for i := range out {
			out[i] = fromNative(rv.Index(i), pos)
		}
		return &SliceVal{Elems: out}
	case reflect.Pointer:
		if rv.IsNil() {
			return NilVal{}
		}
		return NativeVal{V: rv.Interface()}
	case reflect.Struct:
		return NativeVal{V: rv.Interface()}
	}
	fail(pos, "native result kind %v is not modeled", rv.Kind())
	return nil
}

// nativeField reads an exported struct field of a native value.
func nativeField(nv NativeVal, name string, pos token.Pos) Value {
	rv := reflect.ValueOf(nv.V)
	if rv.Kind() == reflect.Pointer {
		rv = rv.Elem()
	}
	if rv.Kind() != reflect.Struct {
		fail(pos, "field %s of native %T", name, nv.V)
	}
	f := rv.FieldByName(name)
	if !f.IsValid() {
		fail(pos, "native %T has no field %s", nv.V, name)
	}
	return fromNative(f, pos)
}

// fallbackResults abstracts a native call whose arguments carry opaque
// payload data: each result is typed from the call expression. Error
// results are assumed nil — native numeric kernels failing on valid data is
// an arithmetic property, checked by tests and other analyzers, not a
// protocol property.
func (in *interp) fallbackResults(fr *frame, key string, call *ast.CallExpr) []Value {
	tv, ok := fr.pkg.Info.Types[ast.Expr(call)]
	if !ok {
		fail(call.Pos(), "native %s: no result type", key)
	}
	if tup, ok := tv.Type.(*types.Tuple); ok {
		out := make([]Value, tup.Len())
		for i := 0; i < tup.Len(); i++ {
			out[i] = in.fallbackOne(tup.At(i).Type(), key, call.Pos())
		}
		return out
	}
	if tv.Type == nil || tv.IsVoid() {
		return nil
	}
	return []Value{in.fallbackOne(tv.Type, key, call.Pos())}
}

func (in *interp) fallbackOne(t types.Type, key string, pos token.Pos) Value {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		switch {
		case info&types.IsInteger != 0:
			return unknownInt()
		case info&types.IsBoolean != 0:
			return BoolVal{}
		case info&types.IsString != 0:
			return StrVal{}
		case info&types.IsFloat != 0:
			return FloatVal{}
		}
	case *types.Interface:
		if isErrorType(t) {
			return NilVal{}
		}
	case *types.Struct, *types.Pointer:
		// Opaque numeric scalar (bigint.Int, rat.Rat, partially-known
		// matrix). Anything protocol-shaped would need concrete structure,
		// and concrete calls never reach this fallback.
		return opaque()
	}
	fail(pos, "native %s: opaque arguments and result type %v (protocol shape would be lost)", key, t)
	return nil
}

// sprintf renders a fmt format string; unknown when any interpolated
// argument is not concretely printable (such a string can never soundly be
// used as a message tag — strOf turns it into a visible finding).
func (in *interp) sprintf(args []Value, pos token.Pos) Value {
	f, ok := args[0].(StrVal)
	if !ok || !f.Known {
		return StrVal{}
	}
	var b strings.Builder
	next := 1
	s := f.V
	for i := 0; i < len(s); i++ {
		if s[i] != '%' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i < len(s) && s[i] == '%' {
			b.WriteByte('%')
			continue
		}
		// Skip flags/width/precision, then consume the verb.
		for i < len(s) && strings.IndexByte("+-# 0123456789.", s[i]) >= 0 {
			i++
		}
		if i >= len(s) || next >= len(args) {
			return StrVal{}
		}
		rendered, okR := formatValue(args[next])
		if !okR {
			return StrVal{}
		}
		if s[i] == 'q' {
			rendered = fmt.Sprintf("%q", rendered)
		}
		b.WriteString(rendered)
		next++
	}
	return knownStr(b.String())
}

// sprint renders fmt.Sprint: spaces between operands when neither is a
// string (the only modeled use is Sprint of one []int survivor set).
func (in *interp) sprint(args []Value) Value {
	parts := make([]string, len(args))
	for i, a := range args {
		s, ok := formatValue(a)
		if !ok {
			return StrVal{}
		}
		parts[i] = s
	}
	if len(parts) == 1 {
		return knownStr(parts[0])
	}
	out := ""
	for i, p := range parts {
		_, prevStr := args[max(i-1, 0)].(StrVal)
		_, curStr := args[i].(StrVal)
		if i > 0 && !prevStr && !curStr {
			out += " "
		}
		out += p
	}
	return knownStr(out)
}

func (in *interp) sortInts(args []Value, pos token.Pos) {
	sl, ok := args[0].(*SliceVal)
	if !ok {
		if _, isNil := args[0].(NilVal); isNil {
			return
		}
		fail(pos, "sort.Ints of %T", args[0])
	}
	vals := make([]int64, len(sl.Elems))
	for i, e := range sl.Elems {
		iv, ok := e.(IntVal)
		if !ok || !iv.Known {
			fail(pos, "sort.Ints over non-concrete elements")
		}
		vals[i] = iv.V
	}
	sort.Slice(vals, func(a, b int) bool { return vals[a] < vals[b] })
	for i, v := range vals {
		sl.Elems[i] = knownInt(v)
	}
}

func (in *interp) sortStrings(args []Value, pos token.Pos) {
	sl, ok := args[0].(*SliceVal)
	if !ok {
		return
	}
	vals := make([]string, len(sl.Elems))
	for i, e := range sl.Elems {
		sv, ok := e.(StrVal)
		if !ok || !sv.Known {
			fail(pos, "sort.Strings over non-concrete elements")
		}
		vals[i] = sv.V
	}
	sort.Strings(vals)
	for i, v := range vals {
		sl.Elems[i] = knownStr(v)
	}
}

// sortSlice runs sort.Slice with the interpreted less closure (insertion
// sort: deterministic, stable enough for the modeled comparators, and the
// slices involved are tiny).
func (in *interp) sortSlice(fr *frame, call *ast.CallExpr) {
	pos := call.Pos()
	args := in.evalArgs(fr, call)
	sl, ok := args[0].(*SliceVal)
	if !ok {
		fail(pos, "sort.Slice of %T", args[0])
	}
	less := func(i, j int) bool {
		var out []Value
		switch f := args[1].(type) {
		case *ClosureVal:
			out = in.callClosure(f, []Value{knownInt(int64(i)), knownInt(int64(j))}, pos)
		default:
			fail(pos, "sort.Slice comparator %T", args[1])
		}
		if len(out) != 1 {
			fail(pos, "sort.Slice comparator arity")
		}
		b, ok := out[0].(BoolVal)
		if !ok || !b.Known {
			fail(pos, "sort.Slice comparator is not concrete")
		}
		return b.V
	}
	for i := 1; i < len(sl.Elems); i++ {
		for j := i; j > 0 && less(j, j-1); j-- {
			sl.Elems[j], sl.Elems[j-1] = sl.Elems[j-1], sl.Elems[j]
		}
	}
}
