package protomc

// call.go dispatches call expressions: type conversions, builtins, the
// model transport verbs (served by checker.go), interpreted declared
// functions/methods/closures, and natively bridged arithmetic calls.

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

func (in *interp) evalCall(fr *frame, call *ast.CallExpr) []Value {
	info := fr.pkg.Info

	// Type conversion: machine.Ints(v), []bigint.Int(got), int64(c), ...
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		v := in.evalExpr(fr, call.Args[0])
		return []Value{in.convert(v, tv.Type, call.Pos())}
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := info.Uses[id].(*types.Builtin); isBuiltin {
			return in.evalBuiltin(fr, call, id.Name)
		}
	}

	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		// Package-qualified call: fmt.Sprintf, collective.Broadcast, ...
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				return in.callNamed(fr, call, nil)
			}
		}
		recv := in.evalExpr(fr, sel.X)
		// Transport verbs and the rest of the Proc surface.
		if pv, ok := recv.(ProcVal); ok {
			return in.procMethod(pv.mp, sel.Sel.Name, in.evalArgs(fr, call), call)
		}
		return in.callNamed(fr, call, recv)
	}

	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isFn := info.Uses[id].(*types.Func); isFn {
			return in.callNamed(fr, call, nil)
		}
	}

	// Func-valued expression: closure variable, hook field, func literal.
	return in.callValue(fr, in.evalExpr(fr, call.Fun), call)
}

func (in *interp) evalArgs(fr *frame, call *ast.CallExpr) []Value {
	args := make([]Value, 0, len(call.Args))
	for _, a := range call.Args {
		args = append(args, in.evalExpr(fr, a))
	}
	if call.Ellipsis.IsValid() && len(args) > 0 {
		last, ok := args[len(args)-1].(*SliceVal)
		if !ok {
			if _, isNil := args[len(args)-1].(NilVal); isNil {
				return args[:len(args)-1]
			}
			fail(call.Ellipsis, "... spread of %T", args[len(args)-1])
		}
		args = append(args[:len(args)-1], last.Elems...)
	}
	return args
}

// callNamed dispatches a statically resolved function or method: protocol
// packages are interpreted, arithmetic packages and the stdlib are bridged.
func (in *interp) callNamed(fr *frame, call *ast.CallExpr, recv Value) []Value {
	key := in.callKey(fr.pkg.Info, call)
	if key == "" {
		fail(call.Pos(), "cannot resolve callee")
	}
	if node := in.interpretedCallee(fr, call); node != nil {
		return in.callDecl(node, recv, in.evalArgs(fr, call), call.Pos())
	}
	// Interface method: devirtualize against the dynamic struct value's
	// declared method set (the engine's Workload seam). The StructVal records
	// its named type's package, so the concrete method node is recoverable
	// without a points-to analysis.
	if fn := framework.CalleeFunc(fr.pkg.Info, call); fn != nil {
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil && types.IsInterface(sig.Recv().Type()) {
			if sv, ok := recv.(*StructVal); ok && sv.PkgPath != "" {
				dkey := sv.PkgPath + "." + sv.Type + "." + fn.Name()
				if node := in.sums.Graph.Nodes[dkey]; node != nil && !nativeBridgedPkg(node.Pkg.Path) {
					return in.callDecl(node, recv, in.evalArgs(fr, call), call.Pos())
				}
			}
		}
	}
	return in.nativeCall(fr, key, recv, call)
}

func (in *interp) callValue(fr *frame, fn Value, call *ast.CallExpr) []Value {
	switch f := fn.(type) {
	case *ClosureVal:
		return in.callClosure(f, in.evalArgs(fr, call), call.Pos())
	case FuncRef:
		if node := in.sums.Graph.Nodes[f.Key]; node != nil && !nativeBridgedPkg(node.Pkg.Path) {
			return in.callDecl(node, nil, in.evalArgs(fr, call), call.Pos())
		}
		return in.nativeCall(fr, f.Key, nil, call)
	case NilVal:
		fail(call.Pos(), "call through nil func value (unguarded hook?)")
	}
	fail(call.Pos(), "call through %T is not modeled", fn)
	return nil
}

// procMethod serves the machine.Proc surface (and the miniature fixture
// stand-ins matched by name) against the model checker.
func (in *interp) procMethod(mp *modelProc, name string, args []Value, call *ast.CallExpr) []Value {
	pos := call.Pos()
	if mp == nil {
		fail(pos, "transport verb %s outside a model processor", name)
	}
	switch name {
	case "Send":
		to := in.intOf(args[0], pos, "send destination rank")
		tag := in.strOf(args[1], pos, "send tag")
		var payload Value = NilVal{}
		if len(args) > 2 {
			payload = copyPayload(args[2])
		}
		return []Value{mp.opSend(int(to), tag, payload, pos)}
	case "Recv", "RecvInts":
		from := in.intOf(args[0], pos, "recv source rank")
		tag := in.strOf(args[1], pos, "recv tag")
		return []Value{mp.opRecv(int(from), tag, pos), NilVal{}}
	case "RecvDeadline":
		from := in.intOf(args[0], pos, "recv source rank")
		tag := in.strOf(args[1], pos, "recv tag")
		payload, onTime := mp.opRecvDeadline(int(from), tag, pos)
		return []Value{payload, knownBool(onTime), NilVal{}}
	case "Barrier":
		phase := in.strOf(args[0], pos, "barrier phase")
		return []Value{mp.opBarrier(phase, pos), NilVal{}}
	case "ID":
		return []Value{knownInt(int64(mp.id))}
	case "P":
		return []Value{knownInt(int64(len(mp.ck.procs)))}
	case "Clock":
		return []Value{FloatVal{Known: true, V: 0}}
	case "FaultCount":
		return []Value{knownInt(int64(mp.faultCount))}
	case "Work", "Mark", "Elapse":
		return nil
	case "Store":
		key := in.strOf(args[0], pos, "store key")
		mp.store[key] = copyPayload(args[1])
		return []Value{NilVal{}}
	case "Load":
		key := in.strOf(args[0], pos, "load key")
		v, ok := mp.store[key]
		if !ok {
			v = NilVal{}
		}
		return []Value{v, knownBool(ok)}
	case "LoadInts":
		key := in.strOf(args[0], pos, "load key")
		v, ok := mp.store[key]
		if !ok {
			return []Value{NilVal{}, ErrVal{Msg: "no such key: " + key}}
		}
		return []Value{v, NilVal{}}
	case "Free":
		delete(mp.store, in.strOf(args[0], pos, "free key"))
		return nil
	case "Keys":
		keys := sortedKeys(mp.store)
		out := make([]Value, len(keys))
		for i, k := range keys {
			out[i] = knownStr(k)
		}
		return []Value{&SliceVal{Elems: out}}
	case "MemoryWords":
		return []Value{IntVal{}}
	}
	fail(pos, "Proc method %s is not modeled", name)
	return nil
}

func (in *interp) evalBuiltin(fr *frame, call *ast.CallExpr, name string) []Value {
	pos := call.Pos()
	switch name {
	case "len", "cap":
		v := in.evalExpr(fr, call.Args[0])
		switch c := v.(type) {
		case *SliceVal:
			return []Value{knownInt(int64(len(c.Elems)))}
		case *MapVal:
			return []Value{knownInt(int64(c.len()))}
		case StrVal:
			if !c.Known {
				return []Value{IntVal{}}
			}
			return []Value{knownInt(int64(len(c.V)))}
		case NilVal:
			return []Value{knownInt(0)}
		}
		fail(pos, "%s of %T is not modeled", name, v)

	case "append":
		args := in.evalArgs(fr, call)
		var base []Value
		switch b := args[0].(type) {
		case *SliceVal:
			base = b.Elems
		case NilVal:
		default:
			fail(pos, "append to %T", args[0])
		}
		out := make([]Value, 0, len(base)+len(args)-1)
		out = append(out, base...)
		out = append(out, args[1:]...)
		return []Value{&SliceVal{Elems: out}}

	case "make":
		t := fr.pkg.Info.Types[call.Args[0]].Type
		switch u := t.Underlying().(type) {
		case *types.Slice:
			n := int64(0)
			if len(call.Args) > 1 {
				n = in.intOf(in.evalExpr(fr, call.Args[1]), pos, "make length")
			}
			if n < 0 || n > 1<<20 {
				fail(pos, "make length %d out of model range", n)
			}
			elems := make([]Value, n)
			for i := range elems {
				elems[i] = in.zeroValue(u.Elem(), pos)
			}
			return []Value{&SliceVal{Elems: elems}}
		case *types.Map:
			return []Value{newMap()}
		}
		fail(pos, "make of %v is not modeled", t)

	case "copy":
		dst, okD := in.evalExpr(fr, call.Args[0]).(*SliceVal)
		src, okS := in.evalExpr(fr, call.Args[1]).(*SliceVal)
		if !okD || !okS {
			return []Value{knownInt(0)}
		}
		n := copy(dst.Elems, src.Elems)
		return []Value{knownInt(int64(n))}

	case "delete":
		m, ok := in.evalExpr(fr, call.Args[0]).(*MapVal)
		if !ok {
			return nil
		}
		k := keyString(in.evalExpr(fr, call.Args[1]))
		if _, present := m.vals[k]; present {
			delete(m.vals, k)
			for i, s := range m.keys {
				if s == k {
					m.keys = append(m.keys[:i], m.keys[i+1:]...)
					break
				}
			}
		}
		return nil

	case "min", "max":
		args := in.evalArgs(fr, call)
		best, ok := args[0].(IntVal)
		if !ok || !best.Known {
			return []Value{IntVal{}}
		}
		for _, a := range args[1:] {
			iv, ok := a.(IntVal)
			if !ok || !iv.Known {
				return []Value{IntVal{}}
			}
			if (name == "min" && iv.V < best.V) || (name == "max" && iv.V > best.V) {
				best = iv
			}
		}
		return []Value{best}

	case "panic":
		args := in.evalArgs(fr, call)
		msg := "panic"
		if len(args) > 0 {
			if s, ok := formatValue(args[0]); ok {
				msg = "panic: " + s
			}
		}
		fail(pos, "%s", msg)
	}
	fail(pos, "builtin %s is not modeled", name)
	return nil
}

func (in *interp) convert(v Value, t types.Type, pos token.Pos) Value {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		switch {
		case info&types.IsInteger != 0:
			switch x := v.(type) {
			case IntVal:
				return x
			case FloatVal:
				if !x.Known {
					return IntVal{}
				}
				return knownInt(int64(x.V))
			}
		case info&types.IsFloat != 0:
			switch x := v.(type) {
			case FloatVal:
				return x
			case IntVal:
				if !x.Known {
					return FloatVal{}
				}
				return FloatVal{Known: true, V: float64(x.V)}
			}
		case info&types.IsString != 0:
			if x, ok := v.(StrVal); ok {
				return x
			}
		}
	case *types.Slice, *types.Map, *types.Struct, *types.Interface, *types.Pointer, *types.Signature:
		// Named-type re-tag only: machine.Ints(v), []bigint.Int(got), Group(ids).
		return v
	}
	fail(pos, "conversion of %T to %v is not modeled", v, t)
	return nil
}
