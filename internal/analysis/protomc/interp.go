package protomc

// interp.go is an abstract interpreter for the per-processor protocol
// functions: it executes the real AST bodies, keeping everything that shapes
// communication (ranks, group arithmetic, loop counters, tags, lengths)
// exact, and payload data (big integers, rationals) opaque. Transport verbs
// are served by the model checker (checker.go); calls into the arithmetic
// packages are bridged to the real implementations by reflection
// (native.go) or degraded to opaque results typed from go/types.
//
// Branches whose condition is unknown (a predicate on opaque data) follow
// two sound policies:
//
//   - an arm that terminates in a non-nil error return is assumed not taken
//     (the local-failure-free assumption: data-level invariants are the
//     arithmetic analyzers' job, protocol shape is ours);
//   - when both arms are communication-free the branch is skipped entirely
//     and every variable either arm assigns is smeared to unknown — a
//     comm-free arm cannot change the communication shape.
//
// Anything else (an unknown condition guarding communication, an unbounded
// construct the skeleton gate missed) aborts the run with a modelErr, which
// the checker surfaces as a visible diagnostic rather than silently
// assuming the tree clean.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"sync/atomic"

	"repro/internal/analysis/framework"
)

// modelErr aborts a model run; the checker reports it as a finding.
type modelErr struct {
	Pos token.Pos
	Msg string
}

func (e modelErr) Error() string { return e.Msg }

// killSignal tears down a parked proc goroutine at end of run.
type killSignal struct{}

func fail(pos token.Pos, format string, args ...any) {
	panic(modelErr{Pos: pos, Msg: fmt.Sprintf(format, args...)})
}

// interp executes interpreted function bodies for one model processor.
type interp struct {
	sums  *framework.Summaries
	skels *framework.SkeletonSet
	mp    *modelProc    // nil during host-side (world setup) evaluation
	fuel  *atomic.Int64 // shared step budget for the whole run
}

func (in *interp) step(pos token.Pos) {
	if in.fuel.Add(-1) < 0 {
		fail(pos, "model step budget exhausted (interpretation diverged?)")
	}
}

// cell is one variable binding; closures share cells with their creator.
type cell struct{ v Value }

// frame is one activation record. Cells are keyed by types.Object, so
// shadowing and block scope come for free from the type-checker.
type frame struct {
	pkg    *framework.Package
	sig    *types.Signature
	cells  map[types.Object]*cell
	parent *frame // lexical parent (closures); nil for function frames
	defers []func()
}

func newFrame(pkg *framework.Package, sig *types.Signature, parent *frame) *frame {
	return &frame{pkg: pkg, sig: sig, cells: map[types.Object]*cell{}, parent: parent}
}

func (f *frame) lookup(obj types.Object) *cell {
	for fr := f; fr != nil; fr = fr.parent {
		if c, ok := fr.cells[obj]; ok {
			return c
		}
	}
	return nil
}

func (f *frame) bind(obj types.Object, v Value) {
	f.cells[obj] = &cell{v: v}
}

// ctl is statement-level control flow.
type ctlKind int

const (
	ctlNone ctlKind = iota
	ctlBreak
	ctlContinue
	ctlReturn
)

type ctl struct {
	kind ctlKind
	ret  []Value
}

var ctlNoneV = ctl{}

// callKey resolves the FuncKey of a call's static callee ("" if none).
func (in *interp) callKey(info *types.Info, call *ast.CallExpr) string {
	return framework.FuncKey(framework.CalleeFunc(info, call))
}

// interpretedCallee returns the graph node for a call when the callee's
// body should be interpreted (protocol packages and fixture packages), as
// opposed to bridged natively (arithmetic packages, stdlib).
func (in *interp) interpretedCallee(fr *frame, call *ast.CallExpr) *framework.CGNode {
	key := in.callKey(fr.pkg.Info, call)
	if key == "" {
		return nil
	}
	node := in.sums.Graph.Nodes[key]
	if node == nil {
		return nil
	}
	if nativeBridgedPkg(node.Pkg.Path) {
		return nil
	}
	return node
}

// callDecl invokes a declared function/method body. recv is nil for plain
// functions.
func (in *interp) callDecl(node *framework.CGNode, recv Value, args []Value, pos token.Pos) []Value {
	in.step(pos)
	sig, _ := node.Fn.Type().(*types.Signature)
	if sig == nil {
		fail(pos, "call of %s: no signature", node.Key)
	}
	fr := newFrame(node.Pkg, sig, nil)
	info := node.Pkg.Info

	bindField := func(f *ast.Field, v Value) {
		for _, name := range f.Names {
			if name.Name == "_" {
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				fr.bind(obj, v)
			}
		}
	}
	if node.Decl.Recv != nil && len(node.Decl.Recv.List) > 0 {
		bindField(node.Decl.Recv.List[0], recv)
	}

	// Bind parameters name by name; a variadic final parameter packs the
	// remaining arguments into a slice.
	idx := 0
	params := node.Decl.Type.Params.List
	for pi, f := range params {
		_, variadic := f.Type.(*ast.Ellipsis)
		last := pi == len(params)-1
		if len(f.Names) == 0 {
			// Unnamed parameter still consumes its argument.
			if variadic && last {
				idx = len(args)
			} else {
				idx++
			}
			continue
		}
		for _, name := range f.Names {
			var v Value
			if variadic && last {
				rest := append([]Value(nil), args[idx:]...)
				idx = len(args)
				v = &SliceVal{Elems: rest}
			} else {
				if idx >= len(args) {
					fail(pos, "call of %s: missing argument %d", node.Key, idx)
				}
				v = args[idx]
				idx++
			}
			if name.Name == "_" {
				continue
			}
			if obj := info.Defs[name]; obj != nil {
				fr.bind(obj, v)
			}
		}
	}

	// Named results start at their zero values; a bare return reads them.
	var namedResults []types.Object
	if node.Decl.Type.Results != nil {
		for _, f := range node.Decl.Type.Results.List {
			for _, name := range f.Names {
				if name.Name == "_" {
					namedResults = append(namedResults, nil)
					continue
				}
				obj := info.Defs[name]
				if obj != nil {
					fr.bind(obj, in.zeroValue(obj.Type(), pos))
				}
				namedResults = append(namedResults, obj)
			}
		}
	}

	c := in.execStmt(fr, node.Decl.Body)
	in.runDefers(fr)
	if c.kind == ctlReturn {
		if len(c.ret) == 0 && len(namedResults) > 0 {
			out := make([]Value, len(namedResults))
			for i, obj := range namedResults {
				if obj == nil {
					out[i] = NilVal{}
					continue
				}
				out[i] = fr.lookup(obj).v
			}
			return out
		}
		return c.ret
	}
	return nil
}

// callClosure invokes a function literal with its captured frame.
func (in *interp) callClosure(cl *ClosureVal, args []Value, pos token.Pos) []Value {
	in.step(pos)
	info := cl.Pkg.Info
	sig, _ := info.Types[cl.Lit].Type.(*types.Signature)
	fr := newFrame(cl.Pkg, sig, cl.Fr)
	idx := 0
	for _, f := range cl.Lit.Type.Params.List {
		for _, name := range f.Names {
			if idx >= len(args) {
				fail(pos, "closure call: missing argument %d", idx)
			}
			if name.Name != "_" {
				if obj := info.Defs[name]; obj != nil {
					fr.bind(obj, args[idx])
				}
			}
			idx++
		}
	}
	c := in.execStmt(fr, cl.Lit.Body)
	in.runDefers(fr)
	if c.kind == ctlReturn {
		return c.ret
	}
	return nil
}

func (in *interp) runDefers(fr *frame) {
	for i := len(fr.defers) - 1; i >= 0; i-- {
		fr.defers[i]()
	}
	fr.defers = nil
}

// ---- statements ----

func (in *interp) execStmt(fr *frame, s ast.Stmt) ctl {
	if s == nil {
		return ctlNoneV
	}
	in.step(s.Pos())
	switch st := s.(type) {
	case *ast.BlockStmt:
		for _, sub := range st.List {
			if c := in.execStmt(fr, sub); c.kind != ctlNone {
				return c
			}
		}
		return ctlNoneV

	case *ast.ExprStmt:
		in.evalMulti(fr, st.X)
		return ctlNoneV

	case *ast.AssignStmt:
		in.execAssign(fr, st)
		return ctlNoneV

	case *ast.IncDecStmt:
		one := knownInt(1)
		op := token.ADD
		if st.Tok == token.DEC {
			op = token.SUB
		}
		cur := in.evalExpr(fr, st.X)
		in.assignTo(fr, st.X, in.binop(cur, op, one, st.Pos()))
		return ctlNoneV

	case *ast.IfStmt:
		if st.Init != nil {
			in.execStmt(fr, st.Init)
		}
		return in.execIf(fr, st)

	case *ast.ForStmt:
		return in.execFor(fr, st)

	case *ast.RangeStmt:
		return in.execRange(fr, st)

	case *ast.ReturnStmt:
		if len(st.Results) == 0 {
			return ctl{kind: ctlReturn}
		}
		if len(st.Results) == 1 {
			return ctl{kind: ctlReturn, ret: in.evalMulti(fr, st.Results[0])}
		}
		out := make([]Value, len(st.Results))
		for i, e := range st.Results {
			out[i] = in.evalExpr(fr, e)
		}
		return ctl{kind: ctlReturn, ret: out}

	case *ast.BranchStmt:
		if st.Label != nil {
			fail(st.Pos(), "labeled %s is not modeled", st.Tok)
		}
		switch st.Tok {
		case token.BREAK:
			return ctl{kind: ctlBreak}
		case token.CONTINUE:
			return ctl{kind: ctlContinue}
		}
		fail(st.Pos(), "%s is not modeled", st.Tok)

	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok {
			return ctlNoneV
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for i, name := range vs.Names {
				if name.Name == "_" {
					continue
				}
				obj := fr.pkg.Info.Defs[name]
				if obj == nil {
					continue
				}
				var v Value
				if i < len(vs.Values) {
					v = in.evalExpr(fr, vs.Values[i])
				} else {
					v = in.zeroValue(obj.Type(), name.Pos())
				}
				fr.bind(obj, v)
			}
		}
		return ctlNoneV

	case *ast.SwitchStmt:
		return in.execSwitch(fr, st)

	case *ast.DeferStmt:
		in.execDefer(fr, st)
		return ctlNoneV

	case *ast.EmptyStmt:
		return ctlNoneV
	}
	fail(s.Pos(), "statement %T is not modeled", s)
	return ctlNoneV
}

func (in *interp) execAssign(fr *frame, st *ast.AssignStmt) {
	info := fr.pkg.Info

	// Compound assignment (x += e, mask <<= 1, ...).
	if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
		op, ok := assignOps[st.Tok]
		if !ok {
			fail(st.Pos(), "assignment %s is not modeled", st.Tok)
		}
		cur := in.evalExpr(fr, st.Lhs[0])
		rhs := in.evalExpr(fr, st.Rhs[0])
		in.assignTo(fr, st.Lhs[0], in.binop(cur, op, rhs, st.Pos()))
		return
	}

	var vals []Value
	if len(st.Rhs) == 1 && len(st.Lhs) > 1 {
		// Tuple spread: multi-return call, comma-ok map read.
		if ix, ok := ast.Unparen(st.Rhs[0]).(*ast.IndexExpr); ok && len(st.Lhs) == 2 {
			if m, isMap := in.evalExpr(fr, ix.X).(*MapVal); isMap {
				k := in.evalExpr(fr, ix.Index)
				v, found := m.get(k)
				if !found {
					// A comma-ok read records the tuple (elem, bool); the
					// zero is of the element type.
					t := info.Types[st.Rhs[0]].Type
					if tup, isTup := t.(*types.Tuple); isTup {
						t = tup.At(0).Type()
					}
					v = in.zeroValue(t, st.Pos())
				}
				vals = []Value{v, knownBool(found)}
			}
		}
		if vals == nil {
			vals = in.evalMulti(fr, st.Rhs[0])
		}
		if len(vals) != len(st.Lhs) {
			fail(st.Pos(), "assignment arity mismatch: %d values for %d targets", len(vals), len(st.Lhs))
		}
	} else {
		vals = make([]Value, len(st.Rhs))
		for i, e := range st.Rhs {
			vals[i] = in.evalExpr(fr, e)
		}
	}

	if st.Tok == token.DEFINE {
		for i, l := range st.Lhs {
			id, ok := l.(*ast.Ident)
			if !ok {
				fail(l.Pos(), ":= target must be an identifier")
			}
			if id.Name == "_" {
				continue
			}
			// := may redeclare: Defs for new variables, Uses for existing.
			if obj := info.Defs[id]; obj != nil {
				fr.bind(obj, vals[i])
			} else if obj := info.Uses[id]; obj != nil {
				in.assignObj(fr, id, obj, vals[i])
			}
		}
		return
	}
	for i, l := range st.Lhs {
		in.assignTo(fr, l, vals[i])
	}
}

var assignOps = map[token.Token]token.Token{
	token.ADD_ASSIGN: token.ADD, token.SUB_ASSIGN: token.SUB,
	token.MUL_ASSIGN: token.MUL, token.QUO_ASSIGN: token.QUO,
	token.REM_ASSIGN: token.REM, token.SHL_ASSIGN: token.SHL,
	token.SHR_ASSIGN: token.SHR, token.AND_ASSIGN: token.AND,
	token.OR_ASSIGN: token.OR, token.XOR_ASSIGN: token.XOR,
}

func (in *interp) assignObj(fr *frame, id *ast.Ident, obj types.Object, v Value) {
	c := fr.lookup(obj)
	if c == nil {
		fail(id.Pos(), "assignment to unbound variable %s (package-level state is not modeled)", id.Name)
	}
	c.v = v
}

// assignTo writes v through an assignable expression.
func (in *interp) assignTo(fr *frame, lhs ast.Expr, v Value) {
	switch l := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		if l.Name == "_" {
			return
		}
		obj := fr.pkg.Info.Uses[l]
		if obj == nil {
			obj = fr.pkg.Info.Defs[l]
		}
		if obj == nil {
			fail(l.Pos(), "cannot resolve assignment target %s", l.Name)
		}
		in.assignObj(fr, l, obj, v)

	case *ast.IndexExpr:
		cont := in.evalExpr(fr, l.X)
		switch c := cont.(type) {
		case *SliceVal:
			i := in.intOf(in.evalExpr(fr, l.Index), l.Index.Pos(), "index")
			if i < 0 || int(i) >= len(c.Elems) {
				fail(l.Pos(), "index %d out of range (len %d)", i, len(c.Elems))
			}
			c.Elems[i] = v
		case *MapVal:
			c.set(in.evalExpr(fr, l.Index), v)
		case NilVal:
			fail(l.Pos(), "assignment into nil map/slice")
		default:
			fail(l.Pos(), "index assignment into %T is not modeled", cont)
		}

	case *ast.SelectorExpr:
		x := in.evalExpr(fr, l.X)
		sv, ok := x.(*StructVal)
		if !ok {
			fail(l.Pos(), "field assignment into %T is not modeled", x)
		}
		sv.Fields[l.Sel.Name] = v

	case *ast.StarExpr:
		x := in.evalExpr(fr, l.X)
		if _, ok := x.(*StructVal); ok {
			fail(l.Pos(), "whole-struct pointer assignment is not modeled")
		}
		fail(l.Pos(), "pointer assignment into %T is not modeled", x)

	default:
		fail(lhs.Pos(), "assignment target %T is not modeled", lhs)
	}
}

// execIf resolves the branch condition, falling back to the two unknown-
// condition policies documented at the top of the file.
func (in *interp) execIf(fr *frame, st *ast.IfStmt) ctl {
	cond := in.evalExpr(fr, st.Cond)
	b, ok := cond.(BoolVal)
	if !ok {
		fail(st.Cond.Pos(), "branch condition is %T, not bool", cond)
	}
	if b.Known {
		if b.V {
			return in.execStmt(fr, st.Body)
		}
		return in.execStmt(fr, st.Else)
	}

	// Policy 1: error arms are assumed not taken.
	if in.errorArm(fr, st.Body) {
		return in.execStmt(fr, st.Else)
	}
	if st.Else != nil && in.errorArm(fr, st.Else) {
		return in.execStmt(fr, st.Body)
	}
	// Policy 2: comm-free branches are skipped with assigned vars smeared.
	if in.commFree(fr, st.Body) && (st.Else == nil || in.commFree(fr, st.Else)) {
		in.smearAssigned(fr, st.Body)
		if st.Else != nil {
			in.smearAssigned(fr, st.Else)
		}
		return ctlNoneV
	}
	fail(st.Cond.Pos(), "branch on opaque data guards communication (cannot soundly skip)")
	return ctlNoneV
}

// errorArm reports whether stmt is a block whose final statement returns a
// non-nil value in the enclosing function's trailing error result.
func (in *interp) errorArm(fr *frame, stmt ast.Stmt) bool {
	blk, ok := stmt.(*ast.BlockStmt)
	if !ok || len(blk.List) == 0 {
		return false
	}
	ret, ok := blk.List[len(blk.List)-1].(*ast.ReturnStmt)
	if !ok || len(ret.Results) == 0 {
		return false
	}
	if fr.sig == nil || fr.sig.Results().Len() == 0 {
		return false
	}
	last := fr.sig.Results().At(fr.sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return false
	}
	lastExpr := ast.Unparen(ret.Results[len(ret.Results)-1])
	if id, ok := lastExpr.(*ast.Ident); ok && id.Name == "nil" {
		return false
	}
	// The arm must not communicate on its way out.
	return in.commFree(fr, blk)
}

func isErrorType(t types.Type) bool {
	n, ok := t.(*types.Named)
	return ok && n.Obj().Name() == "error" && n.Obj().Pkg() == nil
}

// commFree reports that no communication can happen under stmt, directly or
// through any statically resolved callee.
func (in *interp) commFree(fr *frame, stmt ast.Stmt) bool {
	if stmt == nil {
		return true
	}
	free := true
	ast.Inspect(stmt, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return free
		}
		if _, isComm := framework.CommSiteAt(fr.pkg.Info, call); isComm {
			free = false
			return false
		}
		if key := in.callKey(fr.pkg.Info, call); key != "" && in.skels.CommReach(key) {
			free = false
			return false
		}
		return free
	})
	return free
}

// smearAssigned sets every identifier a skipped arm assigns to the unknown
// variant of its current value.
func (in *interp) smearAssigned(fr *frame, stmt ast.Stmt) {
	smear := func(e ast.Expr) {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok || id.Name == "_" {
			return
		}
		obj := fr.pkg.Info.Uses[id]
		if obj == nil {
			obj = fr.pkg.Info.Defs[id]
		}
		if obj == nil {
			return
		}
		if c := fr.lookup(obj); c != nil {
			c.v = unknownVariant(c.v)
		}
	}
	ast.Inspect(stmt, func(m ast.Node) bool {
		switch s := m.(type) {
		case *ast.AssignStmt:
			for _, l := range s.Lhs {
				smear(l)
			}
		case *ast.IncDecStmt:
			smear(s.X)
		}
		return true
	})
}

func unknownVariant(v Value) Value {
	switch v.(type) {
	case IntVal:
		return IntVal{}
	case BoolVal:
		return BoolVal{}
	case StrVal:
		return StrVal{}
	case FloatVal:
		return FloatVal{}
	case *OpaqueVal:
		return opaque()
	}
	return v
}

func (in *interp) execFor(fr *frame, st *ast.ForStmt) ctl {
	if st.Init != nil {
		in.execStmt(fr, st.Init)
	}
	for {
		in.step(st.Pos())
		if st.Cond != nil {
			cond := in.evalExpr(fr, st.Cond)
			b, ok := cond.(BoolVal)
			if !ok || !b.Known {
				fail(st.Cond.Pos(), "loop condition not concretely decidable")
			}
			if !b.V {
				return ctlNoneV
			}
		}
		c := in.execStmt(fr, st.Body)
		switch c.kind {
		case ctlBreak:
			return ctlNoneV
		case ctlReturn:
			return c
		}
		if st.Post != nil {
			in.execStmt(fr, st.Post)
		}
	}
}

func (in *interp) execRange(fr *frame, st *ast.RangeStmt) ctl {
	info := fr.pkg.Info
	assignKV := func(k, v Value) {
		set := func(e ast.Expr, val Value) {
			if e == nil {
				return
			}
			if id, ok := e.(*ast.Ident); ok && id.Name == "_" {
				return
			}
			if st.Tok == token.DEFINE {
				id := e.(*ast.Ident)
				if obj := info.Defs[id]; obj != nil {
					fr.bind(obj, val)
					return
				}
			}
			in.assignTo(fr, e, val)
		}
		set(st.Key, k)
		set(st.Value, v)
	}

	runBody := func() ctl {
		in.step(st.Pos())
		c := in.execStmt(fr, st.Body)
		if c.kind == ctlBreak {
			return ctl{kind: ctlNone}
		}
		return c
	}

	x := in.evalExpr(fr, st.X)
	switch xs := x.(type) {
	case *SliceVal:
		for i := 0; i < len(xs.Elems); i++ {
			assignKV(knownInt(int64(i)), xs.Elems[i])
			if c := runBody(); c.kind != ctlNone {
				if c.kind == ctlContinue {
					continue
				}
				return c
			}
		}
	case *MapVal:
		// Insertion order: deterministic for the model; the real code sorts
		// whenever map order matters.
		done := false
		var out ctl
		xs.each(func(k, v Value) bool {
			assignKV(k, v)
			c := runBody()
			if c.kind == ctlReturn || c.kind == ctlBreak {
				out, done = c, true
				return false
			}
			return true
		})
		if done && out.kind == ctlReturn {
			return out
		}
	case IntVal:
		if !xs.Known {
			fail(st.X.Pos(), "range over unknown integer")
		}
		for i := int64(0); i < xs.V; i++ {
			assignKV(knownInt(i), nil)
			if c := runBody(); c.kind != ctlNone {
				if c.kind == ctlContinue {
					continue
				}
				return c
			}
		}
	case NilVal:
		// ranging over a nil slice/map: zero iterations
	default:
		fail(st.X.Pos(), "range over %T is not modeled", x)
	}
	return ctlNoneV
}

func (in *interp) execSwitch(fr *frame, st *ast.SwitchStmt) ctl {
	if st.Init != nil {
		in.execStmt(fr, st.Init)
	}
	var tag Value = knownBool(true)
	if st.Tag != nil {
		tag = in.evalExpr(fr, st.Tag)
	}
	var deflt *ast.CaseClause
	for _, c := range st.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			deflt = cc
			continue
		}
		for _, e := range cc.List {
			v := in.evalExpr(fr, e)
			eq, known := valueEq(tag, v)
			if !known {
				fail(e.Pos(), "switch case on opaque value")
			}
			if eq {
				return in.execCaseBody(fr, cc)
			}
		}
	}
	if deflt != nil {
		return in.execCaseBody(fr, deflt)
	}
	return ctlNoneV
}

func (in *interp) execCaseBody(fr *frame, cc *ast.CaseClause) ctl {
	for _, s := range cc.Body {
		if c := in.execStmt(fr, s); c.kind != ctlNone {
			if c.kind == ctlBreak {
				return ctlNoneV
			}
			return c
		}
	}
	return ctlNoneV
}

func (in *interp) execDefer(fr *frame, st *ast.DeferStmt) {
	// Arguments evaluate at defer time, the call runs at function exit.
	call := st.Call
	args := make([]Value, 0, len(call.Args))
	for _, a := range call.Args {
		args = append(args, in.evalExpr(fr, a))
	}
	fr.defers = append(fr.defers, func() {
		in.applyCallPrepared(fr, call, args)
	})
}

// applyCallPrepared re-dispatches a call whose arguments were already
// evaluated (defers). Only the shapes the modeled code defers are handled.
func (in *interp) applyCallPrepared(fr *frame, call *ast.CallExpr, args []Value) {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		recv := in.evalExpr(fr, sel.X)
		if pv, ok := recv.(ProcVal); ok {
			in.procMethod(pv.mp, sel.Sel.Name, args, call)
			return
		}
	}
	if node := in.interpretedCallee(fr, call); node != nil && node.Decl.Recv == nil {
		in.callDecl(node, nil, args, call.Pos())
		return
	}
	fail(call.Pos(), "deferred call shape is not modeled")
}

// ---- expressions ----

// evalExpr evaluates to exactly one value.
func (in *interp) evalExpr(fr *frame, e ast.Expr) Value {
	vs := in.evalMulti(fr, e)
	if len(vs) != 1 {
		fail(e.Pos(), "expected single value, got %d", len(vs))
	}
	return vs[0]
}

// evalMulti evaluates an expression that may produce a tuple (calls).
func (in *interp) evalMulti(fr *frame, e ast.Expr) []Value {
	in.step(e.Pos())
	info := fr.pkg.Info

	// Constants fold first — untyped literals, named consts (PhaseEval),
	// cross-package consts, iota chains all come straight from go/types.
	if tv, ok := info.Types[e]; ok {
		if tv.Value != nil {
			return []Value{constValue(tv.Value, e.Pos())}
		}
		if tv.IsNil() {
			return []Value{NilVal{}}
		}
	}

	switch x := e.(type) {
	case *ast.ParenExpr:
		return in.evalMulti(fr, x.X)

	case *ast.Ident:
		obj := info.Uses[x]
		if obj == nil {
			obj = info.Defs[x]
		}
		if obj == nil {
			fail(x.Pos(), "cannot resolve identifier %s", x.Name)
		}
		if fn, ok := obj.(*types.Func); ok {
			return []Value{FuncRef{Key: framework.FuncKey(fn)}}
		}
		if c := fr.lookup(obj); c != nil {
			return []Value{c.v}
		}
		fail(x.Pos(), "unbound identifier %s (package-level state is not modeled)", x.Name)

	case *ast.SelectorExpr:
		// Package-qualified reference (pkg.F as a value).
		if id, ok := ast.Unparen(x.X).(*ast.Ident); ok {
			if _, isPkg := info.Uses[id].(*types.PkgName); isPkg {
				if fn, ok := info.Uses[x.Sel].(*types.Func); ok {
					return []Value{FuncRef{Key: framework.FuncKey(fn)}}
				}
				fail(x.Pos(), "package-level reference %s.%s is not modeled", id.Name, x.Sel.Name)
			}
		}
		recv := in.evalExpr(fr, x.X)
		return []Value{in.fieldRead(fr, recv, x)}

	case *ast.BinaryExpr:
		return []Value{in.evalBinary(fr, x)}

	case *ast.UnaryExpr:
		return []Value{in.evalUnary(fr, x)}

	case *ast.CallExpr:
		return in.evalCall(fr, x)

	case *ast.IndexExpr:
		cont := in.evalExpr(fr, x.X)
		switch c := cont.(type) {
		case *SliceVal:
			i := in.intOf(in.evalExpr(fr, x.Index), x.Index.Pos(), "index")
			if i < 0 || int(i) >= len(c.Elems) {
				fail(x.Pos(), "index %d out of range (len %d)", i, len(c.Elems))
			}
			return []Value{c.Elems[i]}
		case *MapVal:
			v, ok := c.get(in.evalExpr(fr, x.Index))
			if !ok {
				v = in.zeroValue(info.Types[e].Type, x.Pos())
			}
			return []Value{v}
		case NilVal:
			if _, isMap := info.Types[x.X].Type.Underlying().(*types.Map); isMap {
				return []Value{in.zeroValue(info.Types[e].Type, x.Pos())}
			}
			fail(x.Pos(), "index into nil slice")
		}
		fail(x.Pos(), "index into %T is not modeled", cont)

	case *ast.SliceExpr:
		sv, ok := in.evalExpr(fr, x.X).(*SliceVal)
		if !ok {
			fail(x.Pos(), "slice of non-slice value")
		}
		lo, hi := int64(0), int64(len(sv.Elems))
		if x.Low != nil {
			lo = in.intOf(in.evalExpr(fr, x.Low), x.Low.Pos(), "slice low bound")
		}
		if x.High != nil {
			hi = in.intOf(in.evalExpr(fr, x.High), x.High.Pos(), "slice high bound")
		}
		if lo < 0 || hi < lo || int(hi) > len(sv.Elems) {
			fail(x.Pos(), "slice bounds [%d:%d] out of range (len %d)", lo, hi, len(sv.Elems))
		}
		out := make([]Value, hi-lo)
		copy(out, sv.Elems[lo:hi])
		return []Value{&SliceVal{Elems: out}}

	case *ast.StarExpr:
		v := in.evalExpr(fr, x.X)
		if _, ok := v.(*StructVal); ok {
			return []Value{v} // structs already have reference semantics
		}
		fail(x.Pos(), "dereference of %T is not modeled", v)

	case *ast.CompositeLit:
		return []Value{in.evalComposite(fr, x)}

	case *ast.FuncLit:
		return []Value{&ClosureVal{Lit: x, Fr: fr, Pkg: fr.pkg}}
	}
	fail(e.Pos(), "expression %T is not modeled", e)
	return nil
}

func constValue(v constant.Value, pos token.Pos) Value {
	switch v.Kind() {
	case constant.Int:
		i, ok := constant.Int64Val(v)
		if !ok {
			fail(pos, "constant overflows int64")
		}
		return knownInt(i)
	case constant.String:
		return knownStr(constant.StringVal(v))
	case constant.Bool:
		return knownBool(constant.BoolVal(v))
	case constant.Float:
		f, _ := constant.Float64Val(v)
		return FloatVal{Known: true, V: f}
	}
	fail(pos, "constant kind %v is not modeled", v.Kind())
	return nil
}

// fieldRead reads a struct field (with typed zero for fields never written).
func (in *interp) fieldRead(fr *frame, recv Value, sel *ast.SelectorExpr) Value {
	switch r := recv.(type) {
	case *StructVal:
		if v, ok := r.Fields[sel.Sel.Name]; ok {
			return v
		}
		t := fr.pkg.Info.Types[sel].Type
		return in.zeroValue(t, sel.Pos())
	case NativeVal:
		return nativeField(r, sel.Sel.Name, sel.Pos())
	}
	fail(sel.Pos(), "field %s of %T is not modeled", sel.Sel.Name, recv)
	return nil
}

func (in *interp) evalBinary(fr *frame, x *ast.BinaryExpr) Value {
	// Short-circuit logic with three-valued unknowns.
	if x.Op == token.LAND || x.Op == token.LOR {
		l := in.boolOf(in.evalExpr(fr, x.X), x.X.Pos())
		if l.Known {
			if x.Op == token.LAND && !l.V {
				return knownBool(false)
			}
			if x.Op == token.LOR && l.V {
				return knownBool(true)
			}
			return in.boolOf(in.evalExpr(fr, x.Y), x.Y.Pos())
		}
		r := in.boolOf(in.evalExpr(fr, x.Y), x.Y.Pos())
		if r.Known {
			if x.Op == token.LAND && !r.V {
				return knownBool(false)
			}
			if x.Op == token.LOR && r.V {
				return knownBool(true)
			}
		}
		return BoolVal{}
	}
	l := in.evalExpr(fr, x.X)
	r := in.evalExpr(fr, x.Y)
	return in.binop(l, x.Op, r, x.Pos())
}

func (in *interp) binop(l Value, op token.Token, r Value, pos token.Pos) Value {
	switch op {
	case token.EQL, token.NEQ:
		eq, known := valueEq(l, r)
		if !known {
			return BoolVal{}
		}
		return knownBool(eq == (op == token.EQL))
	}

	// Opaque payload scalars (model digits, Ints elements) are closed under
	// arithmetic — the result is another opaque scalar — and undecidable
	// under ordering. Payload values never steer communication (branching
	// on an opaque bool fails elsewhere), so this is sound for protocol
	// properties.
	_, lo := l.(*OpaqueVal)
	_, ro := r.(*OpaqueVal)
	if (lo || ro) && isArithOperand(l) && isArithOperand(r) {
		switch op {
		case token.LSS, token.LEQ, token.GTR, token.GEQ:
			return BoolVal{}
		case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
			token.SHL, token.SHR, token.AND, token.OR, token.XOR, token.AND_NOT:
			return opaque()
		}
	}

	switch lv := l.(type) {
	case IntVal:
		rv, ok := r.(IntVal)
		if !ok {
			fail(pos, "integer op %s against %T", op, r)
		}
		if !lv.Known || !rv.Known {
			switch op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				return BoolVal{}
			}
			return IntVal{}
		}
		return intOp(lv.V, op, rv.V, pos)
	case StrVal:
		rv, ok := r.(StrVal)
		if !ok {
			fail(pos, "string op %s against %T", op, r)
		}
		if !lv.Known || !rv.Known {
			if op == token.ADD {
				return StrVal{}
			}
			return BoolVal{}
		}
		switch op {
		case token.ADD:
			return knownStr(lv.V + rv.V)
		case token.LSS:
			return knownBool(lv.V < rv.V)
		case token.LEQ:
			return knownBool(lv.V <= rv.V)
		case token.GTR:
			return knownBool(lv.V > rv.V)
		case token.GEQ:
			return knownBool(lv.V >= rv.V)
		}
	case FloatVal:
		rv, okF := r.(FloatVal)
		if !okF {
			if ri, okI := r.(IntVal); okI {
				rv = FloatVal{Known: ri.Known, V: float64(ri.V)}
			} else {
				fail(pos, "float op %s against %T", op, r)
			}
		}
		if !lv.Known || !rv.Known {
			switch op {
			case token.LSS, token.LEQ, token.GTR, token.GEQ:
				return BoolVal{}
			}
			return FloatVal{}
		}
		switch op {
		case token.ADD:
			return FloatVal{Known: true, V: lv.V + rv.V}
		case token.SUB:
			return FloatVal{Known: true, V: lv.V - rv.V}
		case token.MUL:
			return FloatVal{Known: true, V: lv.V * rv.V}
		case token.QUO:
			return FloatVal{Known: true, V: lv.V / rv.V}
		case token.LSS:
			return knownBool(lv.V < rv.V)
		case token.LEQ:
			return knownBool(lv.V <= rv.V)
		case token.GTR:
			return knownBool(lv.V > rv.V)
		case token.GEQ:
			return knownBool(lv.V >= rv.V)
		}
	}
	fail(pos, "binary op %s on %T is not modeled", op, l)
	return nil
}

// isArithOperand reports values opaque arithmetic may combine with.
func isArithOperand(v Value) bool {
	switch v.(type) {
	case *OpaqueVal, IntVal:
		return true
	}
	return false
}

func intOp(a int64, op token.Token, b int64, pos token.Pos) Value {
	switch op {
	case token.ADD:
		return knownInt(a + b)
	case token.SUB:
		return knownInt(a - b)
	case token.MUL:
		return knownInt(a * b)
	case token.QUO:
		if b == 0 {
			fail(pos, "integer division by zero")
		}
		return knownInt(a / b)
	case token.REM:
		if b == 0 {
			fail(pos, "integer modulo by zero")
		}
		return knownInt(a % b)
	case token.SHL:
		return knownInt(a << uint(b))
	case token.SHR:
		return knownInt(a >> uint(b))
	case token.AND:
		return knownInt(a & b)
	case token.OR:
		return knownInt(a | b)
	case token.XOR:
		return knownInt(a ^ b)
	case token.AND_NOT:
		return knownInt(a &^ b)
	case token.LSS:
		return knownBool(a < b)
	case token.LEQ:
		return knownBool(a <= b)
	case token.GTR:
		return knownBool(a > b)
	case token.GEQ:
		return knownBool(a >= b)
	}
	fail(pos, "integer op %s is not modeled", op)
	return nil
}

// valueEq compares two values for ==; known=false when undecidable.
func valueEq(l, r Value) (eq, known bool) {
	switch lv := l.(type) {
	case IntVal:
		if rv, ok := r.(IntVal); ok {
			if lv.Known && rv.Known {
				return lv.V == rv.V, true
			}
			return false, false
		}
	case StrVal:
		if rv, ok := r.(StrVal); ok {
			if lv.Known && rv.Known {
				return lv.V == rv.V, true
			}
			return false, false
		}
	case BoolVal:
		if rv, ok := r.(BoolVal); ok {
			if lv.Known && rv.Known {
				return lv.V == rv.V, true
			}
			return false, false
		}
	case FloatVal:
		if rv, ok := r.(FloatVal); ok {
			if lv.Known && rv.Known {
				return lv.V == rv.V, true
			}
			return false, false
		}
	case NilVal:
		switch r.(type) {
		case NilVal:
			return true, true
		case ErrVal, *SliceVal, *MapVal, *StructVal, *ClosureVal, FuncRef, NativeVal, ProcVal:
			return false, true
		}
	case ErrVal, *SliceVal, *MapVal, *ClosureVal, FuncRef:
		if _, ok := r.(NilVal); ok {
			return false, true
		}
	case *StructVal:
		if _, ok := r.(NilVal); ok {
			return false, true
		}
		if rv, ok := r.(*StructVal); ok {
			return lv == rv, true
		}
	case ProcVal:
		if rv, ok := r.(ProcVal); ok {
			return lv.mp == rv.mp, true
		}
	case *OpaqueVal:
		return false, false
	}
	if _, ok := r.(*OpaqueVal); ok {
		return false, false
	}
	return false, false
}

func (in *interp) evalUnary(fr *frame, x *ast.UnaryExpr) Value {
	switch x.Op {
	case token.AND: // &composite, &localVar of struct type
		v := in.evalExpr(fr, x.X)
		if _, ok := v.(*StructVal); ok {
			return v
		}
		if _, ok := v.(NativeVal); ok {
			return v
		}
		fail(x.Pos(), "address of %T is not modeled", v)
	case token.NOT:
		b := in.boolOf(in.evalExpr(fr, x.X), x.Pos())
		if !b.Known {
			return BoolVal{}
		}
		return knownBool(!b.V)
	case token.SUB:
		switch v := in.evalExpr(fr, x.X).(type) {
		case IntVal:
			if !v.Known {
				return IntVal{}
			}
			return knownInt(-v.V)
		case FloatVal:
			if !v.Known {
				return FloatVal{}
			}
			return FloatVal{Known: true, V: -v.V}
		}
	case token.ADD:
		return in.evalExpr(fr, x.X)
	}
	fail(x.Pos(), "unary op %s is not modeled", x.Op)
	return nil
}

func (in *interp) evalComposite(fr *frame, x *ast.CompositeLit) Value {
	info := fr.pkg.Info
	t := info.Types[x].Type
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array:
		var n int
		if arr, ok := u.(*types.Array); ok {
			n = int(arr.Len())
		}
		elems := make([]Value, 0, len(x.Elts))
		for _, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				i := in.intOf(in.evalExpr(fr, kv.Key), kv.Pos(), "array index")
				for int(i) >= len(elems) {
					elems = append(elems, NilVal{})
				}
				elems[i] = in.evalExpr(fr, kv.Value)
				continue
			}
			elems = append(elems, in.evalExpr(fr, el))
		}
		for len(elems) < n {
			var et types.Type
			if arr, ok := u.(*types.Array); ok {
				et = arr.Elem()
			}
			elems = append(elems, in.zeroValue(et, x.Pos()))
		}
		return &SliceVal{Elems: elems}

	case *types.Map:
		m := newMap()
		for _, el := range x.Elts {
			kv := el.(*ast.KeyValueExpr)
			m.set(in.evalExpr(fr, kv.Key), in.evalExpr(fr, kv.Value))
		}
		return m

	case *types.Struct:
		sv := &StructVal{Type: framework.NamedTypeName(t), PkgPath: namedTypePkgPath(t), Fields: map[string]Value{}}
		for i, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				sv.Fields[kv.Key.(*ast.Ident).Name] = in.evalExpr(fr, kv.Value)
				continue
			}
			sv.Fields[u.Field(i).Name()] = in.evalExpr(fr, el)
		}
		return sv
	}
	fail(x.Pos(), "composite literal of %v is not modeled", t)
	return nil
}

// ---- typed zeros and coercions ----

// namedTypePkgPath reports the package path behind a (possibly pointer-to)
// named type, enabling interface-method devirtualization on StructVals.
// Unnamed and universe types yield the empty string.
func namedTypePkgPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

func (in *interp) zeroValue(t types.Type, pos token.Pos) Value {
	if t == nil {
		return NilVal{}
	}
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		switch {
		case info&types.IsBoolean != 0:
			return knownBool(false)
		case info&types.IsInteger != 0:
			return knownInt(0)
		case info&types.IsString != 0:
			return knownStr("")
		case info&types.IsFloat != 0:
			return FloatVal{Known: true, V: 0}
		}
	case *types.Slice, *types.Map, *types.Pointer, *types.Signature, *types.Chan, *types.Interface:
		return NilVal{}
	case *types.Struct:
		// The zero bigint.Int (and fixture stand-ins named Int) is the
		// known integer 0 — IsZero on it must stay decidable.
		if framework.NamedTypeName(t) == "Int" {
			return opaqueOf(0)
		}
		sv := &StructVal{Type: framework.NamedTypeName(t), PkgPath: namedTypePkgPath(t), Fields: map[string]Value{}}
		for i := 0; i < u.NumFields(); i++ {
			sv.Fields[u.Field(i).Name()] = in.zeroValue(u.Field(i).Type(), pos)
		}
		return sv
	case *types.Array:
		n := int(u.Len())
		elems := make([]Value, n)
		for i := range elems {
			elems[i] = in.zeroValue(u.Elem(), pos)
		}
		return &SliceVal{Elems: elems}
	}
	fail(pos, "zero value of %v is not modeled", t)
	return nil
}

func (in *interp) intOf(v Value, pos token.Pos, what string) int64 {
	iv, ok := v.(IntVal)
	if !ok {
		fail(pos, "%s is %T, not an integer", what, v)
	}
	if !iv.Known {
		fail(pos, "%s depends on opaque data", what)
	}
	return iv.V
}

func (in *interp) strOf(v Value, pos token.Pos, what string) string {
	sv, ok := v.(StrVal)
	if !ok {
		fail(pos, "%s is %T, not a string", what, v)
	}
	if !sv.Known {
		fail(pos, "%s depends on opaque data", what)
	}
	return sv.V
}

func (in *interp) boolOf(v Value, pos token.Pos) BoolVal {
	b, ok := v.(BoolVal)
	if !ok {
		fail(pos, "expected bool, got %T", v)
	}
	return b
}

// sortedKeys returns a proc store's keys, sorted.
func sortedKeys(m map[string]Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
