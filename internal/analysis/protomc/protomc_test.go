package protomc

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
)

func TestCleanCollectiveFixture(t *testing.T) { analysistest.Run(t, Analyzer, "collective") }
func TestBadBroadcastFixture(t *testing.T)    { analysistest.Run(t, Analyzer, "badbcast") }
func TestBadReduceFixture(t *testing.T)       { analysistest.Run(t, Analyzer, "badreduce") }
func TestBadRecoverFixture(t *testing.T)      { analysistest.Run(t, Analyzer, "badrecover") }

// TestRealTreeClean is the headline guarantee: the production collectives
// and the fault-tolerant engine are deadlock-free and orphan-free for every
// world size in [2,5], every legal root, and every single fail-stop fault
// plan the F=1 layout tolerates — with zero suppressions.
func TestRealTreeClean(t *testing.T) {
	pkgs, err := framework.LoadCached("../../..",
		"./internal/collective", "./internal/ftparallel", "./internal/parallel",
		"./internal/ftengine")
	if err != nil {
		t.Fatalf("loading real tree: %v", err)
	}
	sums := framework.ComputeSummaries(pkgs)
	var active, suppressed []framework.Diagnostic
	for _, pkg := range pkgs {
		a, s, err := framework.RunShared(Analyzer, pkg, sums)
		if err != nil {
			t.Fatalf("running protomc on %s: %v", pkg.Path, err)
		}
		active = append(active, a...)
		suppressed = append(suppressed, s...)
	}
	for _, d := range active {
		t.Errorf("%s:%d: [%s] %s", d.Position.Filename, d.Position.Line, d.World, d.Message)
		for _, ev := range d.Trace {
			t.Logf("  trace: %s", ev)
		}
	}
	if len(suppressed) != 0 {
		t.Errorf("real tree must hold with zero ftlint:allow suppressions, found %d", len(suppressed))
	}
}

// loadFixtureSource type-checks mutated fixture source the same way
// analysistest does, so tests can probe the analyzer against programs that
// exist only in memory.
func runOnSource(t *testing.T, pkgName, src string) []framework.Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, pkgName+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing mutated fixture: %v", err)
	}
	info := framework.NewInfo()
	conf := types.Config{Importer: failImporter{}}
	tpkg, err := conf.Check(pkgName, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("type-checking mutated fixture: %v", err)
	}
	diags, err := framework.Run(Analyzer, &framework.Package{
		Path:  pkgName,
		Fset:  fset,
		Files: []*ast.File{f},
		Types: tpkg,
		Info:  info,
	})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}
	return diags
}

type failImporter struct{}

func (failImporter) Import(path string) (*types.Package, error) {
	return nil, os.ErrNotExist
}

// TestNonVacuity pins that the checker actually explores the protocols: a
// one-token tag skew on the receive side of the clean fixture's broadcast
// must surface as a deadlock. If this test fails, a clean report means
// nothing.
func TestNonVacuity(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "src", "collective", "collective.go"))
	if err != nil {
		t.Fatalf("reading clean fixture: %v", err)
	}
	const orig = `p.Recv(g[root], tag)`
	if !strings.Contains(string(raw), orig) {
		t.Fatalf("clean fixture no longer contains %q; update this test's mutation", orig)
	}
	mutated := strings.Replace(string(raw), orig, `p.Recv(g[root], tag+"x")`, 1)
	diags := runOnSource(t, "collective", mutated)
	for _, d := range diags {
		if strings.Contains(d.Message, "deadlock") {
			return
		}
	}
	t.Fatalf("mutated broadcast (receive tag skewed) produced no deadlock finding; got %d diagnostics: %+v", len(diags), diags)
}

// TestCounterexampleTrace checks the shape of a reported counterexample:
// the dirty broadcast's deadlock carries the world it was found in and a
// non-empty interleaving ending in concrete scheduler events.
func TestCounterexampleTrace(t *testing.T) {
	raw, err := os.ReadFile(filepath.Join("testdata", "src", "badbcast", "badbcast.go"))
	if err != nil {
		t.Fatalf("reading fixture: %v", err)
	}
	diags := runOnSource(t, "badbcast", string(raw))
	var found *framework.Diagnostic
	for i := range diags {
		if strings.Contains(diags[i].Message, "deadlock") {
			found = &diags[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("no deadlock diagnostic on badbcast; got %+v", diags)
	}
	if found.World == "" {
		t.Errorf("deadlock diagnostic has no world description")
	}
	if !strings.Contains(found.World, "n=2") {
		t.Errorf("expected the smallest failing world (n=2), got %q", found.World)
	}
	if len(found.Trace) == 0 {
		t.Fatalf("deadlock diagnostic has no counterexample trace")
	}
	joined := strings.Join(found.Trace, "\n")
	if !strings.Contains(joined, "waits for tag") {
		t.Errorf("trace does not show the blocked receive:\n%s", joined)
	}
}
