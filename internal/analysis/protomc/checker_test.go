package protomc

import (
	"go/token"
	"strings"
	"testing"
)

// unitWorld builds a world whose processors are driven directly by a Go
// closure over the transport verbs — no interpretation involved — so the
// scheduler, fault injector, and property checks can be tested in
// isolation.
func unitWorld(n int, body func(mp *modelProc)) *world {
	return &world{
		name: "unit",
		n:    n,
		run: func(_ *interp, mp *modelProc) Value {
			body(mp)
			return NilVal{}
		},
	}
}

func findingMsgs(fs []Finding) string {
	var out []string
	for _, f := range fs {
		out = append(out, f.Msg)
	}
	return strings.Join(out, "\n")
}

func TestCheckerCleanPingPong(t *testing.T) {
	w := unitWorld(2, func(mp *modelProc) {
		if mp.id == 0 {
			mp.opSend(1, "ping", knownInt(1), token.NoPos)
			mp.opRecv(1, "pong", token.NoPos)
		} else {
			mp.opRecv(0, "ping", token.NoPos)
			mp.opSend(0, "pong", knownInt(2), token.NoPos)
		}
	})
	fs, _ := explore(nil, nil, w)
	if len(fs) != 0 {
		t.Fatalf("clean ping-pong produced findings:\n%s", findingMsgs(fs))
	}
}

func TestCheckerDeadlock(t *testing.T) {
	w := unitWorld(2, func(mp *modelProc) {
		// Both wait first: classic cyclic wait.
		mp.opRecv(1-mp.id, "m", token.NoPos)
		mp.opSend(1-mp.id, "m", knownInt(1), token.NoPos)
	})
	fs, _ := explore(nil, nil, w)
	if len(fs) == 0 || !strings.Contains(fs[0].Msg, "deadlock") {
		t.Fatalf("cyclic wait not reported as deadlock:\n%s", findingMsgs(fs))
	}
	if len(fs[0].Trace) == 0 {
		t.Fatalf("deadlock finding carries no trace")
	}
}

func TestCheckerOrphanMessage(t *testing.T) {
	w := unitWorld(2, func(mp *modelProc) {
		if mp.id == 0 {
			mp.opSend(1, "extra", knownInt(1), token.NoPos)
		}
	})
	fs, _ := explore(nil, nil, w)
	if len(fs) == 0 || !strings.Contains(fs[0].Msg, "never received") {
		t.Fatalf("undrained queue not reported as orphan:\n%s", findingMsgs(fs))
	}
}

func TestCheckerSendToTerminated(t *testing.T) {
	w := unitWorld(2, func(mp *modelProc) {
		if mp.id == 1 {
			// p0 exits immediately; by the time p1 runs, its peer is gone.
			mp.opRecv(0, "sync", token.NoPos)
		}
	})
	// p1 blocks on a receive that can never be satisfied -> deadlock, since
	// p0 exited cleanly without erroring.
	fs, _ := explore(nil, nil, w)
	if len(fs) == 0 || !strings.Contains(fs[0].Msg, "deadlock") {
		t.Fatalf("wait on exited peer not reported:\n%s", findingMsgs(fs))
	}
}

func TestCheckerOutOfWorldSend(t *testing.T) {
	w := unitWorld(2, func(mp *modelProc) {
		if mp.id == 0 {
			mp.opSend(7, "m", knownInt(1), token.NoPos)
		}
	})
	fs, _ := explore(nil, nil, w)
	if len(fs) == 0 || !strings.Contains(fs[0].Msg, "outside the world") {
		t.Fatalf("out-of-world send not reported:\n%s", findingMsgs(fs))
	}
}

func TestCheckerBarrierPhaseMismatch(t *testing.T) {
	w := unitWorld(2, func(mp *modelProc) {
		if mp.id == 0 {
			mp.opBarrier("eval", token.NoPos)
		} else {
			mp.opBarrier("mul", token.NoPos)
		}
	})
	fs, _ := explore(nil, nil, w)
	if len(fs) == 0 || !strings.Contains(fs[0].Msg, "barrier phase mismatch") {
		t.Fatalf("phase mismatch not reported:\n%s", findingMsgs(fs))
	}
}

// TestCheckerCrossingsCensus pins the fault-plan enumeration domain: one
// crossing per (proc, phase, hit) of the fault-free run.
func TestCheckerCrossingsCensus(t *testing.T) {
	w := unitWorld(3, func(mp *modelProc) {
		mp.opBarrier("eval", token.NoPos)
		mp.opBarrier("eval", token.NoPos)
	})
	fs, crossings := explore(nil, nil, w)
	if len(fs) != 0 {
		t.Fatalf("clean barrier pair produced findings:\n%s", findingMsgs(fs))
	}
	if len(crossings) != 6 {
		t.Fatalf("expected 6 crossings (3 procs x 2 hits), got %d: %v", len(crossings), crossings)
	}
	hits := map[string]int{}
	for _, c := range crossings {
		if c.Phase != "eval" {
			t.Errorf("unexpected phase %q", c.Phase)
		}
		hits[c.String()]++
	}
	for k, n := range hits {
		if n != 1 {
			t.Errorf("crossing %s recorded %d times", k, n)
		}
	}
}

// TestCheckerFaultEventDelivery pins the fail-stop semantics: the victim's
// replacement continues at the same rank with a wiped KV store and an
// incremented fault count, and every participant observes the event.
func TestCheckerFaultEventDelivery(t *testing.T) {
	events := make([]int, 3)
	faults := make([]int, 3)
	w := unitWorld(3, func(mp *modelProc) {
		ev := mp.opBarrier("eval", token.NoPos)
		events[mp.id] = len(ev.(*SliceVal).Elems)
		faults[mp.id] = mp.faultCount
	})
	w.plan = []faultSpec{{Proc: 1, Phase: "eval", Hit: 0}}
	w.faultTolerant = true
	fs, _ := explore(nil, nil, w)
	if len(fs) != 0 {
		t.Fatalf("tolerated fault produced findings:\n%s", findingMsgs(fs))
	}
	for id, n := range events {
		if n != 1 {
			t.Errorf("p%d observed %d fault events, want 1", id, n)
		}
	}
	if faults[1] != 1 || faults[0] != 0 || faults[2] != 0 {
		t.Errorf("fault counts %v, want [0 1 0]", faults)
	}
}

func TestCheckerStaleCrossFaultDelivery(t *testing.T) {
	w := unitWorld(2, func(mp *modelProc) {
		if mp.id == 0 {
			mp.opSend(1, "ckpt", knownInt(7), token.NoPos)
		}
		mp.opBarrier("sync", token.NoPos)
		if mp.id == 1 {
			mp.opRecv(0, "ckpt", token.NoPos)
		}
	})
	w.plan = []faultSpec{{Proc: 1, Phase: "sync", Hit: 0}}
	fs, _ := explore(nil, nil, w)
	if len(fs) == 0 || !strings.Contains(fs[0].Msg, "sent to its predecessor") {
		t.Fatalf("stale cross-fault delivery not reported:\n%s", findingMsgs(fs))
	}
}

func TestCheckerFaultTolerantAbortIsFinding(t *testing.T) {
	w := &world{
		name: "unit", n: 2, faultTolerant: true,
		plan: []faultSpec{{Proc: 0, Phase: "sync", Hit: 0}},
		run: func(_ *interp, mp *modelProc) Value {
			mp.opBarrier("sync", token.NoPos)
			if mp.id == 0 && mp.faultCount > 0 {
				return ErrVal{Msg: "lost my state"}
			}
			return NilVal{}
		},
	}
	fs, _ := explore(nil, nil, w)
	if len(fs) == 0 || !strings.Contains(fs[0].Msg, "aborts with") {
		t.Fatalf("abort under tolerated plan not reported:\n%s", findingMsgs(fs))
	}
}

// TestCheckerDeadlineChoices: a deadline receive is explored both on-time
// and late; with no sender it must resolve late without findings, and the
// DFS must try both branches when a sender exists.
func TestCheckerDeadlineNoSender(t *testing.T) {
	late := 0
	w := unitWorld(2, func(mp *modelProc) {
		if mp.id == 1 {
			if _, onTime := mp.opRecvDeadline(0, "slow", token.NoPos); !onTime {
				late++
			}
		}
	})
	fs, _ := explore(nil, nil, w)
	if len(fs) != 0 {
		t.Fatalf("deadline receive with no sender produced findings:\n%s", findingMsgs(fs))
	}
	if late == 0 {
		t.Fatalf("deadline receive never resolved late")
	}
}

func TestCheckerDeadlineBothBranches(t *testing.T) {
	var onTimes, lates int
	w := unitWorld(2, func(mp *modelProc) {
		if mp.id == 0 {
			mp.opSend(1, "res", knownInt(1), token.NoPos)
		} else {
			if _, onTime := mp.opRecvDeadline(0, "res", token.NoPos); onTime {
				onTimes++
			} else {
				lates++
			}
		}
	})
	fs, _ := explore(nil, nil, w)
	if len(fs) != 0 {
		t.Fatalf("deadline receive with sender produced findings:\n%s", findingMsgs(fs))
	}
	if onTimes == 0 || lates == 0 {
		t.Fatalf("DFS did not explore both deadline outcomes: onTime=%d late=%d", onTimes, lates)
	}
}

// TestCheckerExhaustiveAgreesWithDeterministic cross-validates the Kahn
// confluence argument: for a world whose only nondeterminism is scheduling
// order, the run-to-block deterministic schedule and the exhaustive
// schedule explorer must agree on the verdict — both on a clean protocol
// and on a broken one.
func TestCheckerExhaustiveAgreesWithDeterministic(t *testing.T) {
	build := func(exhaustive, broken bool) *world {
		return &world{
			name:       "unit",
			n:          3,
			exhaustive: exhaustive,
			maxRuns:    maxWorldRuns,
			run: func(_ *interp, mp *modelProc) Value {
				// All-to-root gather; the broken variant drops p2's drain.
				if mp.id != 0 {
					mp.opSend(0, "g", knownInt(int64(mp.id)), token.NoPos)
					return NilVal{}
				}
				mp.opRecv(1, "g", token.NoPos)
				if !broken {
					mp.opRecv(2, "g", token.NoPos)
				}
				return NilVal{}
			},
		}
	}
	for _, broken := range []bool{false, true} {
		det, _ := explore(nil, nil, build(false, broken))
		exh, _ := explore(nil, nil, build(true, broken))
		if (len(det) == 0) != (len(exh) == 0) {
			t.Fatalf("broken=%v: deterministic (%d findings) and exhaustive (%d findings) disagree:\n--- det:\n%s\n--- exh:\n%s",
				broken, len(det), len(exh), findingMsgs(det), findingMsgs(exh))
		}
		if broken && !strings.Contains(findingMsgs(det)+findingMsgs(exh), "never received") {
			t.Fatalf("broken gather not reported as orphan in both modes")
		}
	}
}
