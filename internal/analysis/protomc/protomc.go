// Package protomc extracts communication skeletons from per-processor SPMD
// functions and model-checks them explicitly for concrete small worlds.
//
// The analyzer targets packages that implement collectives or fault-tolerant
// recovery on top of the machine transport (the collective and ftparallel
// packages, plus fixture packages declaring their own Proc stand-in). Each
// package-level function taking a *machine.Proc first is compiled — via the
// shared abstract interpreter — into a process network and run to
// quiescence for every world size n in [2,5] and every legal root. The
// fault-tolerant engine is additionally instantiated exactly as
// ftparallel.Multiply builds it and re-explored under every single
// fail-stop fault plan its layout claims to tolerate (one fault per barrier
// crossing observed in the fault-free run, mirroring machine/faultinject's
// per-endpoint phase-keyed hit counting).
//
// Properties checked, each reported with a counterexample interleaving and
// the fault plan that exhibits it:
//
//   - deadlock-freedom: no reachable quiescent state where an unfailed
//     processor is still waiting;
//   - send/recv matching: every queue drains (no orphan message), no
//     receive waits forever, no message is addressed outside the world or
//     to a rank that has already terminated;
//   - barrier consistency: all participants arrive at the same phase;
//   - fault-tolerant completion: under any tolerated single fail-stop
//     plan, no processor aborts with an error and no replacement consumes
//     a message addressed to its failed predecessor.
//
// Functions whose call tree the interpreter cannot model soundly (goroutine
// spawns, selects, raw channel operations, unbounded comm loops) are
// themselves findings — the checker never silently skips, so a clean report
// really means the protocol space was explored.
package protomc

import (
	"go/ast"
	"go/token"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "protomc",
	Doc:  "model-check communication skeletons of collectives and FT recovery under fail-stop faults",
	Run:  run,
}

func run(pass *framework.Pass) error {
	if framework.ModelBoundaryPkg(pass.Path) {
		return nil // transport/arithmetic layers are modeled natively, not checked
	}
	if !inScope(pass) {
		return nil
	}

	skels := framework.ExtractSkeletons(pass.Summaries, framework.DefaultWorldAxioms())

	worlds, errs := collectiveWorlds(pass, pass.Summaries, skels)
	ew, eerrs := engineWorlds(pass, pass.Summaries, skels)
	worlds = append(worlds, ew...)
	errs = append(errs, eerrs...)

	for _, ie := range errs {
		pass.Reportf(ie.pos, "%s: %s", shortKey(ie.key), ie.msg)
	}

	// The same violation recurs across world sizes and fault plans (with
	// processor numbers baked into the message); report one diagnostic per
	// anchor position, keeping the smallest world's counterexample.
	reported := map[token.Pos]bool{}
	emit := func(fs []Finding) {
		for _, f := range fs {
			if reported[f.Pos] {
				continue
			}
			reported[f.Pos] = true
			pass.ReportTrace(f.Pos, f.World, f.Trace, "%s", f.Msg)
		}
	}

	for _, w := range worlds {
		findings, crossings := explore(pass.Summaries, skels, w)
		emit(findings)
		if !w.faultTolerant {
			continue
		}
		// Re-explore under every single fail-stop plan: one fault per
		// barrier crossing the fault-free run performed. Collectives have
		// no barriers (empty census), so this only expands engine worlds.
		for _, c := range crossings {
			fw := *w
			fw.plan = []faultSpec{c}
			fw.name = w.name + " " + c.String()
			f2, _ := explore(pass.Summaries, skels, &fw)
			emit(f2)
		}
	}
	return nil
}

// inScope: the collective, ftengine, and ftparallel packages, plus any
// package that declares its own Proc type (analysis fixtures use local
// stand-ins; the real machine package also declares Proc but is excluded
// above as a model boundary).
func inScope(pass *framework.Pass) bool {
	if framework.PathHasSegment(pass.Path, "collective") ||
		framework.PathHasSegment(pass.Path, "ftengine") ||
		framework.PathHasSegment(pass.Path, "ftparallel") {
		return true
	}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			gd, ok := d.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, s := range gd.Specs {
				if ts, ok := s.(*ast.TypeSpec); ok && ts.Name.Name == "Proc" {
					return true
				}
			}
		}
	}
	return false
}
