// Package protomc model-checks the communication protocols of the
// collective and fault-tolerant multiplication layers: it interprets the
// real per-processor (SPMD) function bodies over small concrete worlds,
// exploring every nondeterministic outcome (receive-deadline timing, fault
// plans mirroring machine/faultinject's fail-stop-with-replacement
// semantics) and proving deadlock freedom, send/recv matching, and that no
// traffic is left addressed to a failed processor.
//
// The interpreter is exact where the protocol is concrete (ranks, group
// arithmetic, loop bounds, tags) and abstract where only data flows: big
// integers and payload words are opaque values, and branches on opaque
// conditions follow two sound policies — an arm that merely returns an
// error is assumed not taken (the local-failure-free assumption; arithmetic
// invariants are other analyzers' jobs), and a communication-free arm may be
// skipped outright since it cannot change the communication shape.
package protomc

import (
	"fmt"
	"go/ast"
	"sort"
	"strings"

	"repro/internal/analysis/framework"
)

// Value is the interpreter's abstract value domain.
type Value interface{ isValue() }

// IntVal is any integer-kind value; Known is false for data-derived
// integers the model does not track (word counts, cost charges).
type IntVal struct {
	Known bool
	V     int64
}

// FloatVal models virtual-time floats (Clock, deadlines). The checker
// abstracts time, so the value is carried but never branched on.
type FloatVal struct {
	Known bool
	V     float64
}

// BoolVal is a boolean; unknown booleans arise from predicates on opaque
// data and are resolved by the branch policies in interp.go.
type BoolVal struct {
	Known bool
	V     bool
}

// StrVal is a string (message tags, phases, path names).
type StrVal struct {
	Known bool
	V     string
}

// NilVal is the nil of any nilable type, including nil errors.
type NilVal struct{}

// ErrVal is a non-nil error value.
type ErrVal struct{ Msg string }

// OpaqueVal abstracts one payload scalar (a bigint.Int). Known is non-nil
// when the value provably equals FromInt64(*Known) — the straggler decision
// protocol encodes column choices as small integers and decodes them with
// Int64, so that round trip must stay exact.
type OpaqueVal struct{ Known *int64 }

// SliceVal is a slice or array; used by pointer so element assignment
// aliases like Go slices. Subslicing copies the element list (the modeled
// protocols never write through a subslice).
type SliceVal struct{ Elems []Value }

// MapVal is a map with deterministic (insertion-order) iteration; keys are
// canonicalized with keyString.
type MapVal struct {
	keys []string
	vals map[string]mapEntry
}

type mapEntry struct {
	key Value
	val Value
}

// StructVal is a struct or pointer-to-struct; the interpreter gives structs
// reference semantics (the modeled code never mutates a by-value copy).
// PkgPath records the named type's package, letting interface method calls
// devirtualize against the dynamic type's declared methods (the engine's
// Workload seam); synthetic structs leave it empty.
type StructVal struct {
	Type    string
	PkgPath string
	Fields  map[string]Value
}

// TupleVal carries a multi-value result between call and assignment.
type TupleVal struct{ Vals []Value }

// ClosureVal is an interpreted function literal with its captured frame.
type ClosureVal struct {
	Lit *ast.FuncLit
	Fr  *frame
	Pkg *framework.Package
}

// FuncRef is a reference to a declared function used as a value.
type FuncRef struct{ Key string }

// NativeVal wraps a real Go value (toom.Algorithm, points.Point, rat.Rat,
// mat.Matrix, erasure.Code) bridged by reflection in native.go.
type NativeVal struct{ V any }

// ProcVal is the model processor handle; its transport verbs are
// implemented by the checker.
type ProcVal struct{ mp *modelProc }

func (IntVal) isValue()      {}
func (FloatVal) isValue()    {}
func (BoolVal) isValue()     {}
func (StrVal) isValue()      {}
func (NilVal) isValue()      {}
func (ErrVal) isValue()      {}
func (*OpaqueVal) isValue()  {}
func (*SliceVal) isValue()   {}
func (*MapVal) isValue()     {}
func (*StructVal) isValue()  {}
func (TupleVal) isValue()    {}
func (*ClosureVal) isValue() {}
func (FuncRef) isValue()     {}
func (NativeVal) isValue()   {}
func (ProcVal) isValue()     {}

func knownInt(v int64) IntVal     { return IntVal{Known: true, V: v} }
func unknownInt() IntVal          { return IntVal{} }
func knownBool(v bool) BoolVal    { return BoolVal{Known: true, V: v} }
func knownStr(s string) StrVal    { return StrVal{Known: true, V: s} }
func opaque() *OpaqueVal          { return &OpaqueVal{} }
func opaqueOf(v int64) *OpaqueVal { k := v; return &OpaqueVal{Known: &k} }

func newSlice(elems ...Value) *SliceVal { return &SliceVal{Elems: elems} }

func newMap() *MapVal { return &MapVal{vals: map[string]mapEntry{}} }

func (m *MapVal) get(k Value) (Value, bool) {
	e, ok := m.vals[keyString(k)]
	if !ok {
		return nil, false
	}
	return e.val, true
}

func (m *MapVal) set(k, v Value) {
	s := keyString(k)
	if _, ok := m.vals[s]; !ok {
		m.keys = append(m.keys, s)
	}
	m.vals[s] = mapEntry{key: k, val: v}
}

func (m *MapVal) len() int { return len(m.keys) }

// each iterates entries in insertion order (deterministic model runs; the
// modeled code sorts whenever order matters, so insertion order is safe).
func (m *MapVal) each(f func(k, v Value) bool) {
	for _, s := range m.keys {
		e := m.vals[s]
		if !f(e.key, e.val) {
			return
		}
	}
}

// keyString canonicalizes a map key.
func keyString(v Value) string {
	switch x := v.(type) {
	case IntVal:
		if x.Known {
			return fmt.Sprintf("i:%d", x.V)
		}
		return "i:?"
	case StrVal:
		if x.Known {
			return "s:" + x.V
		}
		return "s:?"
	case BoolVal:
		return fmt.Sprintf("b:%v:%v", x.Known, x.V)
	case *SliceVal: // array keys like [2]int
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			parts[i] = keyString(e)
		}
		return "[" + strings.Join(parts, ",") + "]"
	case NilVal:
		return "nil"
	}
	return fmt.Sprintf("%T:?", v)
}

// formatValue renders a value the way fmt does for the concrete shapes the
// protocols print (Sprint of an []int survivor set, %d of ints, %s of
// strings). ok is false when the value is not concretely printable.
func formatValue(v Value) (string, bool) {
	switch x := v.(type) {
	case IntVal:
		if !x.Known {
			return "", false
		}
		return fmt.Sprintf("%d", x.V), true
	case FloatVal:
		if !x.Known {
			return "", false
		}
		return fmt.Sprint(x.V), true
	case StrVal:
		if !x.Known {
			return "", false
		}
		return x.V, true
	case BoolVal:
		if !x.Known {
			return "", false
		}
		return fmt.Sprintf("%v", x.V), true
	case ErrVal:
		return x.Msg, true
	case *SliceVal:
		parts := make([]string, len(x.Elems))
		for i, e := range x.Elems {
			s, ok := formatValue(e)
			if !ok {
				return "", false
			}
			parts[i] = s
		}
		return "[" + strings.Join(parts, " ") + "]", true
	case NilVal:
		return "<nil>", true
	}
	return "", false
}

// copyPayload deep-copies the value shapes that cross the model transport,
// so a receiver can never mutate a sender's state through aliasing.
func copyPayload(v Value) Value {
	switch x := v.(type) {
	case *SliceVal:
		out := make([]Value, len(x.Elems))
		for i, e := range x.Elems {
			out[i] = copyPayload(e)
		}
		return &SliceVal{Elems: out}
	case *StructVal:
		f := make(map[string]Value, len(x.Fields))
		for k, e := range x.Fields {
			f[k] = copyPayload(e)
		}
		return &StructVal{Type: x.Type, PkgPath: x.PkgPath, Fields: f}
	default:
		return v
	}
}

// sortedFieldNames helps deterministic debugging output.
func sortedFieldNames(s *StructVal) []string {
	out := make([]string, 0, len(s.Fields))
	for k := range s.Fields {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
