// Fixture for the recoverpath analyzer, named "ftparallel" so every
// function is inside the fault-tolerance envelope (FTReach). Miniature
// stand-ins for erasure.Code, softfault.Corrector, machine.FaultEvent, and
// the bigint arena are matched by name.
package ftparallel

type Int struct{ v int }

type Code struct{ r int }

func (c *Code) Decode(m map[int][]Int) (map[int][]Int, error) { return m, nil }

type Corrector struct{ t int }

func (c *Corrector) Correct(vals []Int) ([]Int, []int, error) { return vals, nil, nil }
func (c *Corrector) Verify(vals []Int) (bool, error)          { return true, nil }

type FaultEvent struct{ P int }

type arena struct{ off int }

func (a *arena) alloc(n int) []Int { return make([]Int, n) }

func getArena() *arena  { return new(arena) }
func putArena(a *arena) {}

// checked is the correct shape: every recovery error is looked at.
func checked(c *Code, m map[int][]Int) (map[int][]Int, error) {
	rec, err := c.Decode(m)
	if err != nil {
		return nil, err
	}
	return rec, nil
}

// decodeVia threads the error through a helper; the helper's summary marks
// it as a recovery-error source too, so its callers are held to the rule.
func decodeVia(c *Code, m map[int][]Int) (map[int][]Int, error) {
	return c.Decode(m)
}

func checkedViaHelper(c *Code, m map[int][]Int) map[int][]Int {
	rec, err := decodeVia(c, m)
	if err != nil {
		return nil
	}
	return rec
}

// discardedDecode throws the erasure outcome away with a blank: an
// undecodable erasure would pass silently.
func discardedDecode(c *Code, m map[int][]Int) map[int][]Int {
	rec, _ := c.Decode(m) // want "discarded with _"
	return rec
}

// discardedViaHelper: the same discard one call away — only the summary
// knows decodeVia's error is a recovery error.
func discardedViaHelper(c *Code, m map[int][]Int) map[int][]Int {
	rec, _ := decodeVia(c, m) // want "discarded with _"
	return rec
}

// discardedCorrect drops the soft-fault correction error (and the erasure
// index slice with it).
func discardedCorrect(cr *Corrector, vals []Int) []Int {
	fixed, _, _ := cr.Correct(vals) // want "discarded with _"
	return fixed
}

// droppedVerify discards the verification outcome entirely.
func droppedVerify(cr *Corrector, vals []Int) {
	cr.Verify(vals) // want "dropped entirely"
}

// goroutineDecode launches the decode with go: the error can never be seen.
func goroutineDecode(c *Code, m map[int][]Int) {
	go c.Decode(m) // want "launched with go"
}

// spawningHandler is a fault-recovery handler (takes []FaultEvent, lives in
// ftparallel) that spawns a raw goroutine mid-repair.
func spawningHandler(ev []FaultEvent, c *Code, m map[int][]Int) {
	done := make(chan struct{})
	go func() { // want "spawns a raw goroutine"
		close(done)
	}()
	<-done
}

// indirectSpawner hides the goroutine behind a helper; the helper's
// summary carries SpawnsGo back to the handler's call site.
func indirectSpawner(ev []FaultEvent) {
	fanOut() // want "spawns raw goroutines"
}

func fanOut() {
	go func() {}()
}

// arenaHandler allocates repair scratch from the arena its (faulty) caller
// still holds.
func arenaHandler(ev []FaultEvent, a *arena) []Int {
	return a.alloc(len(ev)) // want "arena the faulty path may still hold"
}

// arenaViaHelper does the same one call away.
func arenaViaHelper(ev []FaultEvent, a *arena) {
	scratch(a, len(ev)) // want "passes its caller's arena"
}

func scratch(a *arena, n int) { _ = a.alloc(n) }

// freshArenaHandler rents its own arena for the repair: allowed.
func freshArenaHandler(ev []FaultEvent) {
	a := getArena()
	defer putArena(a)
	_ = a.alloc(len(ev))
}

// notAHandler spawns a goroutine but handles no fault events; poolspawn,
// not recoverpath, owns that rule.
func notAHandler() {
	go func() {}()
}
