// Package recoverpath machine-checks the Section-4 fault-recovery
// invariants end to end, using the interprocedural summaries of
// framework/summary.go. Related fault-tolerance reproductions rot exactly
// here: the happy path is exercised by every benchmark, while the recovery
// path — an f-reduce over erasure.Decode / softfault.Correct whose error
// and erasure-index results thread back through ftparallel — only runs when
// faults are injected.
//
// Two rules:
//
//  1. Recovery results must be checked. Any call whose callee can,
//     transitively, return an erasure/soft-fault error (erasure.Decode,
//     softfault.Correct, softfault.Verify, or any function with an error
//     result that reaches one) must not discard that error: not with a
//     blank `_` in the assignment, not by dropping the results entirely
//     (expression statement), and not by launching the call via go/defer.
//     An unchecked Decode error turns an undecodable erasure into silently
//     wrong products.
//
//  2. Recovery handlers must stay inside the fault-tolerance envelope. A
//     handler — a function taking fault events (a parameter of type
//     FaultEvent or []FaultEvent) reachable from an ftparallel package —
//     runs while part of the machine is known-faulty, so it must not spawn
//     raw goroutines (directly or through a callee; the bounded worker
//     pool is the only sanctioned concurrency, and a goroutine leaked
//     during recovery outlives the repair) and must not allocate from an
//     arena its caller may still hold allocations on (the faulty path's
//     scratch could be handed to the next renter mid-repair; composes the
//     poolspawn and arenasafe ownership facts).
//
// Matching is by name (types named Code/Corrector/FaultEvent/arena), so the
// analyzer covers the real tree and import-free fixtures alike.
package recoverpath

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "recoverpath",
	Doc:  "recovery results (erasure.Decode, softfault.Correct/Verify errors) must be checked, and fault-recovery handlers must not spawn raw goroutines or allocate from caller-held arenas",
	Run:  run,
}

func run(pass *framework.Pass) error {
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		checkDiscards(pass, fd)
		checkHandler(pass, fd)
	})
	return nil
}

// recoveryCallee returns the summary of the call's target when that target
// can return a recovery error, nil otherwise.
func recoveryCallee(pass *framework.Pass, call *ast.CallExpr) *framework.Summary {
	sum := pass.Summaries.Callee(pass.Info, call)
	if sum != nil && sum.RecoveryErr {
		return sum
	}
	return nil
}

// checkDiscards enforces rule 1 in every function: no recovery error may be
// dropped.
func checkDiscards(pass *framework.Pass, fd *ast.FuncDecl) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call, ok := ast.Unparen(n.X).(*ast.CallExpr); ok {
				if sum := recoveryCallee(pass, call); sum != nil {
					pass.Reportf(call.Pos(), "recovery result of %s is dropped entirely: its error reports an unrecoverable erasure and must be checked", sum.Name)
				}
			}
		case *ast.GoStmt:
			if sum := recoveryCallee(pass, n.Call); sum != nil {
				pass.Reportf(n.Call.Pos(), "recovery call %s launched with go: its error result is unreachable and the erasure outcome is lost", sum.Name)
			}
		case *ast.DeferStmt:
			if sum := recoveryCallee(pass, n.Call); sum != nil {
				pass.Reportf(n.Call.Pos(), "recovery call %s deferred: its error result is discarded and the erasure outcome is lost", sum.Name)
			}
		case *ast.AssignStmt:
			// Single multi-value call on the right: the error is the last
			// result, so the last LHS must not be blank.
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok && len(n.Lhs) > 1 {
					if sum := recoveryCallee(pass, call); sum != nil {
						if id, ok := n.Lhs[len(n.Lhs)-1].(*ast.Ident); ok && id.Name == "_" {
							pass.Reportf(call.Pos(), "error from %s is discarded with _: an undecodable erasure would pass silently — recovery must check it", sum.Name)
						}
					}
				}
				return true
			}
			// 1:1 assignments: a single-result recovery call (the error IS
			// the result) assigned to blank.
			if len(n.Lhs) == len(n.Rhs) {
				for i := range n.Rhs {
					call, ok := ast.Unparen(n.Rhs[i]).(*ast.CallExpr)
					if !ok {
						continue
					}
					sum := recoveryCallee(pass, call)
					if sum == nil {
						continue
					}
					if id, ok := n.Lhs[i].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(call.Pos(), "error from %s is discarded with _: an undecodable erasure would pass silently — recovery must check it", sum.Name)
					}
				}
			}
		}
		return true
	})
}

// checkHandler enforces rule 2 on fault-recovery handlers reachable from
// ftparallel.
func checkHandler(pass *framework.Pass, fd *ast.FuncDecl) {
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	sum := pass.Summaries.OfFunc(fn)
	if sum == nil || !sum.FTReach || !sum.HandlesFaults {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt:
			pass.Reportf(n.Pos(), "recovery handler %s spawns a raw goroutine: recovery runs while part of the machine is faulty and must stay on the bounded worker pool", fd.Name.Name)
		case *ast.CallExpr:
			callee := pass.Summaries.Callee(pass.Info, n)
			if callee == nil {
				return true
			}
			if callee.SpawnsGo {
				pass.Reportf(n.Pos(), "recovery handler %s calls %s, which spawns raw goroutines: recovery must stay on the bounded worker pool", fd.Name.Name, callee.Name)
			}
			// Allocating from an arena parameter: the handler's caller —
			// the faulty evaluation path — may still hold allocations on
			// that arena.
			if recv := framework.RecvTypeName(pass.Info, n); recv == "arena" {
				if id := framework.CalleeIdent(n); id != nil && id.Name == "alloc" {
					if obj := framework.ReceiverObject(pass.Info, n); obj != nil && isParam(fd, pass, obj) {
						pass.Reportf(n.Pos(), "recovery handler %s allocates from an arena the faulty path may still hold: rent a fresh arena for repair scratch", fd.Name.Name)
					}
				}
			}
			if callee.AllocsArenaParam {
				for _, arg := range n.Args {
					id, ok := ast.Unparen(arg).(*ast.Ident)
					if !ok {
						continue
					}
					obj := pass.Info.Uses[id]
					if obj == nil || framework.NamedTypeName(obj.Type()) != "arena" || !isParam(fd, pass, obj) {
						continue
					}
					pass.Reportf(n.Pos(), "recovery handler %s passes its caller's arena to %s, which allocates from it: the faulty path may still hold that arena", fd.Name.Name, callee.Name)
				}
			}
		}
		return true
	})
}

// isParam reports whether obj is one of fd's declared parameters.
func isParam(fd *ast.FuncDecl, pass *framework.Pass, obj types.Object) bool {
	if fd.Type.Params == nil {
		return false
	}
	for _, field := range fd.Type.Params.List {
		for _, name := range field.Names {
			if pass.Info.Defs[name] == obj {
				return true
			}
		}
	}
	return false
}
