package recoverpath_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/recoverpath"
)

func TestRecoverPath(t *testing.T) {
	analysistest.Run(t, recoverpath.Analyzer, "ftparallel")
}
