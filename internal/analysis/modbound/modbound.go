// Package modbound machine-proves the NTT kernel's lazy-arithmetic
// contracts with the framework's interval engine (framework/interval.go):
//
//   - every store into a lazy transform buffer stays in the Harvey domain
//     [0, 2p): butterfly exits, REDC pointwise products, nttLoad's
//     conditional-subtract reduction;
//   - every shoupMul/shoupOf call satisfies the Shoup precondition w < p,
//     and every redc call feeds operands below 2p;
//   - no unsigned add/sub/mul in a kernel can wrap around 2^64;
//   - reductions are present before CRT recombination: the residues
//     nttCRTCombine consumes are strictly below their primes, which is
//     enforced producer-side (the final store to nttProductInto's dst must
//     prove < p) and assumed consumer-side (the strict element contracts on
//     res1/res2/res3);
//   - package init establishes the nttCRT constants within the bounds the
//     combine step assumes (inv12 < p2, p1mod3 < p3, inv123 < p3, and
//     p12hi/p12lo exactly p1·p2).
//
// Any site the engine cannot prove is reported; there is no "probably fine".
//
// The analysis is concrete per prime: symbolic bounds like 2p do not fit a
// non-relational interval domain, so each kernel with an nttPrime receiver
// or parameter is solved once per modulus collected from the package's
// prime-table literal, with pr.p and pr.twoP pinned to that modulus.
// Helper kernels are axiomatized by name rather than inlined — shoupMul,
// redc, mulMod, powMod, invMod, shoupOf carry the pre/postconditions their
// doc comments state — and everything else flows through the
// interprocedural summary return bounds. Three assumptions are trusted
// rather than proved here, each pinned elsewhere:
//
//   - pr.rate/pr.irate elements and pr.r are below p (precompute reduces
//     them mod p; TestNTTPrimeProperties pins the tables);
//   - a lazy buffer is filled (nttLoad) before it is read — the element
//     contract is flow-insensitive;
//   - prime-table p fields are never reassigned after their literal.
//
// precompute itself is deliberately not in the checked set: its
// `(0 - p) % p` computes 2^64 mod p by intentional wraparound, which is
// exactly what the overflow check exists to flag elsewhere.
//
// Like every ftlint analyzer, matching is by name (type nttPrime, the
// kernel function names, math/bits primitives), so import-free fixtures
// exercise the same proofs as the real tree.
package modbound

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"math/bits"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "modbound",
	Doc:  "prove NTT lazy-domain bounds: [0,2p) stores, Shoup/REDC preconditions, no uint64 wraparound, strict reduction before CRT",
	Run:  run,
}

// bufKind classifies a kernel's slice parameters.
type bufKind int

const (
	bufRaw    bufKind = iota // arbitrary limbs: loads are unconstrained, stores unchecked
	bufLazy                  // lazy domain: loads assume [0, 2p), stores must prove < 2p
	bufStrict                // CRT residues: loads assume [0, p_k), stores must prove < p_k
)

type bufSpec struct {
	kind  bufKind
	prime int // prime index for bufStrict
}

// kernelSpec describes one checked function: its buffer contracts, the
// parameters assumed < p (call sites owe the matching proof), and whether
// the final store to a buffer must be strictly reduced.
type kernelSpec struct {
	bufs map[string]bufSpec
	ltP  map[string]bool
	// strictFinal names the buffer whose last store (in source order) must
	// prove < p — the "reduced before CRT" producer obligation.
	strictFinal string
	// perPrime runs the proof once per table modulus with the nttPrime
	// receiver/parameter pinned; otherwise one run sees the whole table.
	perPrime bool
}

var kernels = map[string]*kernelSpec{
	"forward":         {bufs: map[string]bufSpec{"a": {kind: bufLazy}}, perPrime: true},
	"inverse":         {bufs: map[string]bufSpec{"a": {kind: bufLazy}}, perPrime: true},
	"forwardRange":    {bufs: map[string]bufSpec{"a": {kind: bufLazy}}, ltP: map[string]bool{"rot": true}, perPrime: true},
	"inverseRange":    {bufs: map[string]bufSpec{"a": {kind: bufLazy}}, ltP: map[string]bool{"irot": true}, perPrime: true},
	"forwardBlockPar": {bufs: map[string]bufSpec{"a": {kind: bufLazy}}, ltP: map[string]bool{"rot": true}, perPrime: true},
	"inverseBlockPar": {bufs: map[string]bufSpec{"a": {kind: bufLazy}}, ltP: map[string]bool{"irot": true}, perPrime: true},
	"nttLoad":         {bufs: map[string]bufSpec{"dst": {kind: bufLazy}, "x": {kind: bufRaw}}, perPrime: true},
	"nttWorkProduct":  {bufs: map[string]bufSpec{"dst": {kind: bufLazy}, "x": {kind: bufRaw}, "y": {kind: bufRaw}}, perPrime: true},
	"nttProductInto": {
		bufs:        map[string]bufSpec{"dst": {kind: bufLazy}, "work": {kind: bufLazy}, "x": {kind: bufRaw}, "y": {kind: bufRaw}},
		strictFinal: "dst",
		perPrime:    true,
	},
	"nttCRTCombine": {
		bufs: map[string]bufSpec{
			"z":    {kind: bufRaw},
			"res1": {kind: bufStrict, prime: 0},
			"res2": {kind: bufStrict, prime: 1},
			"res3": {kind: bufStrict, prime: 2},
		},
	},
}

// kernelCallPre maps checked-kernel callee names to the argument index that
// must be proved < p at the call site (the twiddle handed to a range/block
// worker).
var kernelCallPre = map[string]int{
	"forwardRange":    4,
	"inverseRange":    4,
	"forwardBlockPar": 3,
	"inverseBlockPar": 3,
}

func run(pass *framework.Pass) error {
	if !framework.PathHasSegment(pass.Path, "bigint") {
		return nil
	}
	primes, tableObj := collectPrimes(pass)
	if len(primes) == 0 {
		return nil // no NTT prime table in this package
	}
	m := &checker{
		pass:     pass,
		primes:   primes,
		tableObj: tableObj,
		crtObj:   findCRTVar(pass),
		seen:     map[string]bool{},
	}
	for i, p := range primes {
		// redc's postcondition [0, 2p) needs 4p² < 2^64·p; the lazy domain
		// needs 4p < 2^64. Both are p < 2^62.
		if p >= 1<<62 {
			m.reportOnce(primePos(pass, i), "prime-size", fmt.Sprintf("NTT prime %d is not below 2^62: the lazy domain [0, 2p) and REDC are unsound for it", p))
		}
	}
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		switch {
		case fd.Recv == nil && fd.Name.Name == "init":
			m.checkInit(fd)
		case kernels[fd.Name.Name] != nil:
			m.checkKernel(fd, kernels[fd.Name.Name])
		}
	})
	return nil
}

// collectPrimes finds the package-level array/slice literal of nttPrime
// values and returns the constant p fields in element order, plus the
// table variable's object (for seeding nttPrimes[i].p facts).
func collectPrimes(pass *framework.Pass) ([]uint64, types.Object) {
	var primes []uint64
	var tableObj types.Object
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Names) != 1 || len(vs.Values) != 1 {
					continue
				}
				lit, ok := vs.Values[0].(*ast.CompositeLit)
				if !ok || !isPrimeTable(pass.Info, lit) {
					continue
				}
				tableObj = pass.Info.Defs[vs.Names[0]]
				for _, elt := range lit.Elts {
					el, ok := elt.(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, field := range el.Elts {
						kv, ok := field.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if key, ok := kv.Key.(*ast.Ident); ok && key.Name == "p" {
							if tv, ok := pass.Info.Types[kv.Value]; ok && tv.Value != nil {
								if iv, ok := constUint(tv); ok {
									primes = append(primes, iv)
								}
							}
						}
					}
				}
				if len(primes) > 0 {
					return primes, tableObj
				}
			}
		}
	}
	return primes, tableObj
}

func constUint(tv types.TypeAndValue) (uint64, bool) {
	return framework.ConstUint(tv.Value)
}

func isPrimeTable(info *types.Info, lit *ast.CompositeLit) bool {
	tv, ok := info.Types[lit]
	if !ok {
		return false
	}
	var elem types.Type
	switch t := tv.Type.Underlying().(type) {
	case *types.Array:
		elem = t.Elem()
	case *types.Slice:
		elem = t.Elem()
	default:
		return false
	}
	return framework.NamedTypeName(elem) == "nttPrime"
}

// primePos locates the i-th prime element literal for diagnostics, falling
// back to the file start.
func primePos(pass *framework.Pass, i int) token.Pos {
	for _, f := range pass.Files {
		var pos token.Pos
		ast.Inspect(f, func(node ast.Node) bool {
			lit, ok := node.(*ast.CompositeLit)
			if !ok || !isPrimeTable(pass.Info, lit) {
				return true
			}
			if i < len(lit.Elts) {
				pos = lit.Elts[i].Pos()
			}
			return false
		})
		if pos != token.NoPos {
			return pos
		}
	}
	return pass.Files[0].Pos()
}

// findCRTVar returns the object of the package-level nttCRT constant block.
func findCRTVar(pass *framework.Pass) types.Object {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				continue
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						if name.Name == "nttCRT" {
							return pass.Info.Defs[name]
						}
					}
				}
			}
		}
	}
	return nil
}

type checker struct {
	pass     *framework.Pass
	primes   []uint64
	tableObj types.Object
	crtObj   types.Object
	seen     map[string]bool // pos/kind dedup across per-prime runs
}

// reportOnce dedups by position and defect kind, not by message: the same
// unprovable site would otherwise be reported once per prime run with only
// the modulus differing. The first failing prime's message wins.
func (m *checker) reportOnce(pos token.Pos, kind, msg string) {
	key := fmt.Sprintf("%d:%s", pos, kind)
	if m.seen[key] {
		return
	}
	m.seen[key] = true
	m.pass.Reportf(pos, "%s", msg)
}

// crtBounds is the contract table for the Garner constants: what init must
// establish and what nttCRTCombine may assume. Shoup companions carry no
// bound (shoupOf of a reduced value is any 64-bit word).
func (m *checker) crtBounds() map[string]framework.Interval {
	if len(m.primes) < 3 {
		return nil
	}
	p1, p2, p3 := m.primes[0], m.primes[1], m.primes[2]
	hi, lo := bits.Mul64(p1, p2)
	return map[string]framework.Interval{
		"inv12":  framework.NewInterval(0, p2-1),
		"p1mod3": framework.NewInterval(0, p3-1),
		"inv123": framework.NewInterval(0, p3-1),
		"p12hi":  framework.PointInterval(hi),
		"p12lo":  framework.PointInterval(lo),
	}
}

// primeParam finds the nttPrime-typed receiver or parameter object of fd.
func (m *checker) primeParam(fd *ast.FuncDecl) types.Object {
	check := func(fl *ast.FieldList) types.Object {
		if fl == nil {
			return nil
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				obj := m.pass.Info.Defs[name]
				if obj != nil && framework.NamedTypeName(obj.Type()) == "nttPrime" {
					return obj
				}
			}
		}
		return nil
	}
	if obj := check(fd.Recv); obj != nil {
		return obj
	}
	return check(fd.Type.Params)
}

// paramObjs maps fd's parameter names to objects (for buffer contracts).
func (m *checker) paramObjs(fd *ast.FuncDecl) map[string]types.Object {
	out := map[string]types.Object{}
	collect := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, field := range fl.List {
			for _, name := range field.Names {
				if obj := m.pass.Info.Defs[name]; obj != nil {
					out[name.Name] = obj
				}
			}
		}
	}
	collect(fd.Recv)
	collect(fd.Type.Params)
	return out
}

func (m *checker) checkKernel(fd *ast.FuncDecl, spec *kernelSpec) {
	if spec.perPrime {
		prObj := m.primeParam(fd)
		if prObj == nil {
			return // not the kernel shape the contract describes
		}
		for i := range m.primes {
			m.runProof(fd, spec, prObj, i)
		}
		return
	}
	m.runProof(fd, spec, nil, -1)
}

// checkInit verifies that package init establishes the nttCRT contract.
func (m *checker) checkInit(fd *ast.FuncDecl) {
	if m.crtObj == nil {
		return
	}
	bounds := m.crtBounds()
	if bounds == nil {
		return
	}
	m.runInitProof(fd, bounds)
}

// seedCommon pins the prime-table facts every run may rely on.
func (m *checker) seedCommon(env *framework.IntervalEnv) {
	if m.tableObj == nil {
		return
	}
	for i, p := range m.primes {
		key := framework.KeyOf(m.tableObj).AtIndex(i)
		env.Set(key.WithField("p"), framework.PointInterval(p))
		if 2*p > p { // p < 2^63: twoP representable
			env.Set(key.WithField("twoP"), framework.PointInterval(2*p))
		}
	}
}

// seedCRT pins the Garner constants for consumers (init itself is the
// producer and gets no seed — it must prove them).
func (m *checker) seedCRT(env *framework.IntervalEnv) {
	bounds := m.crtBounds()
	if m.crtObj == nil || bounds == nil {
		return
	}
	for field, iv := range bounds {
		env.Set(framework.KeyOf(m.crtObj).WithField(field), iv)
	}
}

// proofCtx carries one solve's contract closures.
type proofCtx struct {
	m      *checker
	spec   *kernelSpec
	params map[string]types.Object
	prime  uint64 // 0 when the run is not prime-pinned
	// dstStores records stores into the strictFinal buffer, source order.
	dstStores []struct {
		pos token.Pos
		iv  framework.Interval
	}
}

func (c *proofCtx) primeNote() string {
	if c.prime == 0 {
		return ""
	}
	return fmt.Sprintf(" (prime %d)", c.prime)
}

// bufOf resolves an indexed/ranged base expression to its buffer contract.
func (c *proofCtx) bufOf(base ast.Expr) (bufSpec, string, bool) {
	id, ok := ast.Unparen(base).(*ast.Ident)
	if !ok {
		return bufSpec{}, "", false
	}
	obj := c.m.pass.Info.ObjectOf(id)
	if obj == nil {
		return bufSpec{}, "", false
	}
	for name, spec := range c.spec.bufs {
		if c.params[name] == obj {
			return spec, name, true
		}
	}
	return bufSpec{}, "", false
}

func (c *proofCtx) elemContract(base ast.Expr, site *ast.IndexExpr) (framework.Interval, bool) {
	// Twiddle tables: pr.rate[i]/pr.irate[i] are below p (established by
	// precompute, pinned by the prime-property tests).
	if sel, ok := ast.Unparen(base).(*ast.SelectorExpr); ok && c.prime != 0 {
		if sel.Sel.Name == "rate" || sel.Sel.Name == "irate" {
			return framework.NewInterval(0, c.prime-1), true
		}
	}
	spec, _, ok := c.bufOf(base)
	if !ok {
		return framework.Interval{}, false
	}
	switch spec.kind {
	case bufLazy:
		if c.prime != 0 {
			return framework.NewInterval(0, 2*c.prime-1), true
		}
	case bufStrict:
		if spec.prime < len(c.m.primes) {
			return framework.NewInterval(0, c.m.primes[spec.prime]-1), true
		}
	}
	return framework.FullInterval(), true // bufRaw
}

func (c *proofCtx) storeElem(site *ast.IndexExpr, v framework.Interval, env *framework.IntervalEnv) {
	spec, name, ok := c.bufOf(site.X)
	if !ok {
		return
	}
	switch spec.kind {
	case bufLazy:
		if c.prime == 0 {
			return
		}
		if name == c.spec.strictFinal {
			c.dstStores = append(c.dstStores, struct {
				pos token.Pos
				iv  framework.Interval
			}{site.Pos(), v})
		}
		if v.Hi >= 2*c.prime {
			c.m.reportOnce(site.Pos(), "store:"+name, fmt.Sprintf("store into lazy buffer %s not provably below 2p: proved %v, need [0, %d)%s", name, v, 2*c.prime, c.primeNote()))
		}
	case bufStrict:
		if spec.prime >= len(c.m.primes) {
			return
		}
		p := c.m.primes[spec.prime]
		if v.Hi >= p {
			c.m.reportOnce(site.Pos(), "store:"+name, fmt.Sprintf("store into CRT residue buffer %s not provably below its prime: proved %v, need [0, %d)", name, v, p))
		}
	}
}

// callContract is the axiom table plus kernel call-site preconditions.
func (c *proofCtx) callContract(ev *framework.IntervalEval, call *ast.CallExpr, args []framework.Interval) ([]framework.Interval, bool) {
	id := framework.CalleeIdent(call)
	if id == nil {
		return nil, false
	}
	report := ev.Reporting()
	full := []framework.Interval{framework.FullInterval()}
	lazyPost := func(p framework.Interval) []framework.Interval {
		if p.Hi >= 1<<62 {
			return full
		}
		return []framework.Interval{framework.NewInterval(0, 2*p.Hi-1)}
	}
	modPost := func(p framework.Interval) []framework.Interval {
		if p.Hi == 0 {
			return full
		}
		return []framework.Interval{framework.NewInterval(0, p.Hi-1)}
	}
	requireLt := func(what string, w, p framework.Interval) {
		if !report {
			return
		}
		if p.IsEmpty() || w.IsEmpty() || w.Hi >= p.Lo {
			c.m.reportOnce(call.Pos(), "pre:"+id.Name+":"+what, fmt.Sprintf("%s: %s not provably below p (proved %v, p ≥ %v)%s", id.Name, what, w, p.Lo, c.primeNote()))
		}
	}

	switch id.Name {
	case "shoupMul":
		if len(args) != 4 {
			return nil, false
		}
		requireLt("Shoup multiplier w", args[1], args[3])
		return lazyPost(args[3]), true
	case "shoupOf":
		if len(args) != 2 {
			return nil, false
		}
		requireLt("Shoup precomputation input w", args[0], args[1])
		return full, true
	case "redc":
		if len(args) != 4 {
			return nil, false
		}
		if report {
			p := args[2]
			twoP := uint64(0)
			if !p.IsEmpty() && p.Lo < 1<<62 {
				twoP = 2 * p.Lo
			}
			for i, name := range []string{"a", "b"} {
				if twoP == 0 || args[i].Hi >= twoP {
					c.m.reportOnce(call.Pos(), "pre:redc:"+name, fmt.Sprintf("redc operand %s not provably below 2p (proved %v, need [0, %d))%s", name, args[i], twoP, c.primeNote()))
				}
			}
		}
		return lazyPost(args[2]), true
	case "mulMod", "powMod":
		if len(args) != 3 {
			return nil, false
		}
		return modPost(args[2]), true
	case "invMod":
		if len(args) != 2 {
			return nil, false
		}
		return modPost(args[1]), true
	}

	if _, isKernel := kernels[id.Name]; isKernel {
		if argIdx, owesPre := kernelCallPre[id.Name]; owesPre && report {
			if argIdx < len(args) {
				requireLt("twiddle argument", args[argIdx], framework.PointInterval(c.prime))
			}
		}
		return nil, true // void, and touches only its buffers — no havoc
	}
	return nil, false
}

// newEval builds the hooked evaluator for one run.
func (c *proofCtx) newEval(storeKey func(ast.Expr, framework.ValKey, framework.Interval, *framework.IntervalEnv)) *framework.IntervalEval {
	ev := &framework.IntervalEval{
		Info:      c.m.pass.Info,
		Summaries: c.m.pass.Summaries,
		Elem:      c.elemContract,
		StoreElem: c.storeElem,
		StoreKey:  storeKey,
	}
	ev.Call = func(call *ast.CallExpr, args []framework.Interval, env *framework.IntervalEnv) ([]framework.Interval, bool) {
		return c.callContract(ev, call, args)
	}
	ev.OnWrap = func(site ast.Expr, op token.Token, definite bool) {
		kind := "possible"
		if definite {
			kind = "definite"
		}
		c.m.reportOnce(site.Pos(), "wrap", fmt.Sprintf("%s uint64 wraparound in lazy-domain arithmetic: the bounds cannot rule out overflow%s", kind, c.primeNote()))
	}
	return ev
}

// solveBody runs the engine over body (a function body or a closure inside
// it) and reports.
func solveBody(ev *framework.IntervalEval, body *ast.BlockStmt, seed *framework.IntervalEnv) {
	ev.BindRanges(body)
	ia := &framework.IntervalAnalysis{Eval: ev}
	cfg := framework.NewCFG(body)
	res := ia.Solve(cfg, seed)
	ia.Report(cfg, res)
}

// runProof proves one kernel under one prime binding (or the whole-table
// binding when prObj is nil).
func (m *checker) runProof(fd *ast.FuncDecl, spec *kernelSpec, prObj types.Object, primeIdx int) {
	c := &proofCtx{m: m, spec: spec, params: m.paramObjs(fd)}
	seed := framework.NewIntervalEnv()
	m.seedCommon(seed)
	m.seedCRT(seed)

	if primeIdx >= 0 {
		p := m.primes[primeIdx]
		if p == 0 || p >= 1<<62 {
			return // already reported by the validity check
		}
		c.prime = p
		key := framework.KeyOf(prObj)
		seed.Set(key.WithField("p"), framework.PointInterval(p))
		seed.Set(key.WithField("twoP"), framework.PointInterval(2*p))
		seed.Set(key.WithField("r"), framework.NewInterval(0, p-1)) // 2^64 mod p
		for name := range spec.ltP {
			if obj := c.params[name]; obj != nil {
				seed.Set(framework.KeyOf(obj), framework.NewInterval(0, p-1))
			}
		}
	}

	ev := c.newEval(nil)
	solveBody(ev, fd.Body, seed)
	// Closures (the pool-fork blocks) run with the function-entry facts:
	// captured parameters keep their contracts, captured locals are
	// unconstrained.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			solveBody(ev, lit.Body, seed)
			return false
		}
		return true
	})

	if spec.strictFinal != "" && c.prime != 0 {
		if len(c.dstStores) == 0 {
			m.reportOnce(fd.Pos(), "final-missing", fmt.Sprintf("%s: no store into %s found, cannot verify the pre-CRT strict reduction", fd.Name.Name, spec.strictFinal))
			return
		}
		last := c.dstStores[0]
		for _, s := range c.dstStores[1:] {
			if s.pos > last.pos {
				last = s
			}
		}
		if last.iv.Hi >= c.prime {
			m.reportOnce(last.pos, "final", fmt.Sprintf("final store into %s before CRT recombination not provably below p: proved %v, need [0, %d)%s", spec.strictFinal, last.iv, c.prime, c.primeNote()))
		}
	}
}

// runInitProof checks init's nttCRT assignments against the contract table.
func (m *checker) runInitProof(fd *ast.FuncDecl, bounds map[string]framework.Interval) {
	c := &proofCtx{m: m, spec: &kernelSpec{bufs: map[string]bufSpec{}}, params: map[string]types.Object{}}
	seed := framework.NewIntervalEnv()
	m.seedCommon(seed)

	storeKey := func(site ast.Expr, key framework.ValKey, v framework.Interval, env *framework.IntervalEnv) {
		if key.Obj != m.crtObj {
			return
		}
		want, ok := bounds[key.Field]
		if !ok {
			return // Shoup companions: any word
		}
		if v.IsEmpty() || v.Lo < want.Lo || v.Hi > want.Hi {
			m.reportOnce(site.Pos(), "crt:"+key.Field, fmt.Sprintf("init assigns nttCRT.%s a value not provably within its contract %v (proved %v): the CRT recombination would be wrong", key.Field, want, v))
		}
	}
	ev := c.newEval(storeKey)
	solveBody(ev, fd.Body, seed)
}
