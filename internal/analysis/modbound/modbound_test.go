package modbound_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/analysis/modbound"
)

// The clean fixture is a trimmed mirror of the real kernels: every store,
// Shoup/REDC call, and CRT constant must be machine-provable, so it expects
// zero findings.
func TestModBoundClean(t *testing.T) {
	analysistest.Run(t, modbound.Analyzer, "bigint/clean")
}

// The dirty fixture seeds one lazy-arithmetic defect per kernel.
func TestModBoundDirty(t *testing.T) {
	analysistest.Run(t, modbound.Analyzer, "bigint/dirty")
}

// TestModBoundRealTree is the acceptance proof: the real NTT implementation
// must verify with zero findings and zero allow comments.
func TestModBoundRealTree(t *testing.T) {
	pkgs, err := framework.LoadCached("../../..", "./internal/bigint")
	if err != nil {
		t.Fatalf("loading internal/bigint: %v", err)
	}
	active, suppressed, err := framework.RunAllDetail([]*framework.Analyzer{modbound.Analyzer}, pkgs)
	if err != nil {
		t.Fatalf("running modbound: %v", err)
	}
	// Filter to modbound findings: running a single analyzer makes the
	// framework's allow-comment validator flag suppressions that belong to
	// the analyzers not in this run.
	for _, d := range active {
		if d.Analyzer == "modbound" {
			t.Errorf("%s: %s", d.Position, d.Message)
		}
	}
	for _, d := range suppressed {
		if d.Analyzer == "modbound" {
			t.Errorf("suppressed by allow comment (the real kernels must prove without suppressions): %s: %s", d.Position, d.Message)
		}
	}
}
