// Dirty fixture: each kernel carries one seeded lazy-arithmetic defect the
// interval engine must catch — a dropped conditional subtract, swapped
// Shoup arguments, an unreduced twiddle update, a missing pre-load
// reduction, a REDC operand outside [0, 2p), a dropped final reduction
// before CRT, an out-of-contract Garner constant, and a subtraction that
// can underflow.
package bigint

type nttPrime struct {
	p, twoP, g, s, pInv, r uint64
	rate, irate            []uint64
}

var nttPrimes = [3]nttPrime{
	{p: 4179340454199820289, g: 3, s: 57},
	{p: 2936346957045563393, g: 3, s: 53},
	{p: 2485986994308513793, g: 11, s: 52},
}

var nttCRT struct {
	inv12, inv12Shoup   uint64
	p1mod3, p1mod3Shoup uint64
	inv123, inv123Shoup uint64
	p12hi, p12lo        uint64
}

func init() {
	p1 := nttPrimes[0].p
	p2 := nttPrimes[1].p
	p3 := nttPrimes[2].p
	nttCRT.inv12 = invMod(p1%p2, p2)
	nttCRT.inv12Shoup = shoupOf(nttCRT.inv12, p2)
	nttCRT.p1mod3 = p1 // want "init assigns nttCRT.p1mod3 a value not provably within its contract"
	nttCRT.p1mod3Shoup = shoupOf(nttCRT.p1mod3%p3, p3)
	nttCRT.inv123 = invMod(mulMod(p1%p3, p2%p3, p3), p3)
	nttCRT.inv123Shoup = shoupOf(nttCRT.inv123, p3)
	nttCRT.p12hi, nttCRT.p12lo = Mul64(p1, p2)
}

func Mul64(a, b uint64) (hi, lo uint64)         { return 0, 0 }
func Add64(a, b, carry uint64) (uint64, uint64) { return 0, 0 }
func TrailingZeros64(x uint64) int              { return 0 }

func mulMod(a, b, p uint64) uint64           { return 0 }
func invMod(a, p uint64) uint64              { return 0 }
func shoupOf(w, p uint64) uint64             { return 0 }
func shoupMul(x, w, wShoup, p uint64) uint64 { return 0 }
func redc(a, b, p, pInv uint64) uint64       { return 0 }

// forwardRange drops the conditional subtract on the + butterfly leg, so
// the store can reach 4p−2.
func (pr *nttPrime) forwardRange(a []uint64, i0, i1, half int, rot, rotShoup uint64) {
	p, twoP := pr.p, pr.twoP
	for i := i0; i < i1; i++ {
		l := a[i]
		t := shoupMul(a[i+half], rot, rotShoup, p)
		u0 := l + t
		u1 := l + twoP - t
		if u1 >= twoP {
			u1 -= twoP
		}
		a[i], a[i+half] = u0, u1 // want "store into lazy buffer a not provably below 2p"
	}
}

// inverseRange swaps the Shoup multiplier and its precomputation, so the
// w < p precondition cannot be proved.
func (pr *nttPrime) inverseRange(a []uint64, i0, i1, half int, irot, irotShoup uint64) {
	p, twoP := pr.p, pr.twoP
	for i := i0; i < i1; i++ {
		l, r := a[i], a[i+half]
		u0 := l + r
		if u0 >= twoP {
			u0 -= twoP
		}
		a[i] = u0
		a[i+half] = shoupMul(l+twoP-r, irotShoup, irot, p) // want "Shoup multiplier w not provably below p"
	}
}

// forward updates the twiddle with a bare multiply instead of mulMod: the
// product can wrap, and the unreduced rot breaks the callee's precondition
// and the Shoup precomputation.
func (pr *nttPrime) forward(a []uint64) {
	p := pr.p
	n := len(a)
	rot := uint64(1)
	rotShoup := shoupOf(rot, p)
	for half := n >> 1; half >= 1; half >>= 1 {
		for off := 0; off < n; off += half << 1 {
			pr.forwardRange(a, off, off+half, half, rot, rotShoup) // want "twiddle argument not provably below p"
		}
		rot = rot * pr.rate[TrailingZeros64(^rot)] // want "possible uint64 wraparound"
		rotShoup = shoupOf(rot, p)                 // want "Shoup precomputation input w not provably below p"
	}
}

// nttLoad drops the first of the two conditional subtracts, so a raw limb
// is only provably below 2^64 − 2p, not 2p.
func nttLoad(dst, x []uint64, pr *nttPrime) {
	twoP := pr.twoP
	for i, v := range x {
		if v >= twoP {
			v -= twoP
		}
		dst[i] = v // want "store into lazy buffer dst not provably below 2p"
	}
	clear(dst[len(x):])
}

// nttProductInto feeds a raw operand to redc and drops the strict final
// reduction, leaving dst in [0, 2p) instead of [0, p) for the CRT step.
func nttProductInto(dst, work, x, y []uint64, pr *nttPrime) {
	p, pInv := pr.p, pr.pInv
	nttLoad(dst, x, pr)
	pr.forward(dst)
	for i, v := range work {
		dst[i] = redc(x[i], v, p, pInv) // want "redc operand a not provably below 2p"
	}
	scale := mulMod(invMod(uint64(len(dst))%p, p), pr.r, p)
	scaleShoup := shoupOf(scale, p)
	for i, v := range dst {
		dst[i] = shoupMul(v, scale, scaleShoup, p) // want "final store into dst before CRT recombination not provably below p"
	}
}

// nttCRTCombine drops the reduction loop after u += r1m3, so the d3
// subtraction can underflow.
func nttCRTCombine(z, res1, res2, res3 []uint64) {
	p2 := nttPrimes[1].p
	p3 := nttPrimes[2].p
	c := &nttCRT
	m := len(z)
	for i := 0; i < m-1 && i < len(res1); i++ {
		r1, r2, r3 := res1[i], res2[i], res3[i]
		r1m2 := r1
		if r1m2 >= p2 {
			r1m2 -= p2
		}
		d2 := r2 + p2 - r1m2
		if d2 >= p2 {
			d2 -= p2
		}
		t2 := shoupMul(d2, c.inv12, c.inv12Shoup, p2)
		if t2 >= p2 {
			t2 -= p2
		}
		r1m3 := r1
		if r1m3 >= p3 {
			r1m3 -= p3
		}
		u := shoupMul(t2, c.p1mod3, c.p1mod3Shoup, p3)
		u += r1m3
		d3 := r3 + p3 - u // want "possible uint64 wraparound"
		if d3 >= p3 {
			d3 -= p3
		}
		t3 := shoupMul(d3, c.inv123, c.inv123Shoup, p3)
		if t3 >= p3 {
			t3 -= p3
		}
		var cc uint64
		z[i], cc = Add64(z[i], t2, 0)
		z[i+1], cc = Add64(z[i+1], t3, cc)
		_ = cc
	}
}
