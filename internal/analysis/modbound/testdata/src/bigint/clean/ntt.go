// Clean fixture: a trimmed, import-free mirror of the real NTT kernels.
// Every store, Shoup/REDC call, and CRT constant here must be machine-
// provable — this package expects zero findings. Mul64/Add64/
// TrailingZeros64 are local stand-ins matched by name, like the real
// math/bits calls.
package bigint

type nttPrime struct {
	p, twoP, g, s, pInv, r uint64
	rate, irate            []uint64
}

var nttPrimes = [3]nttPrime{
	{p: 4179340454199820289, g: 3, s: 57},
	{p: 2936346957045563393, g: 3, s: 53},
	{p: 2485986994308513793, g: 11, s: 52},
}

var nttCRT struct {
	inv12, inv12Shoup   uint64
	p1mod3, p1mod3Shoup uint64
	inv123, inv123Shoup uint64
	p12hi, p12lo        uint64
}

func init() {
	p1 := nttPrimes[0].p
	p2 := nttPrimes[1].p
	p3 := nttPrimes[2].p
	nttCRT.inv12 = invMod(p1%p2, p2)
	nttCRT.inv12Shoup = shoupOf(nttCRT.inv12, p2)
	nttCRT.p1mod3 = p1 % p3
	nttCRT.p1mod3Shoup = shoupOf(nttCRT.p1mod3, p3)
	nttCRT.inv123 = invMod(mulMod(p1%p3, p2%p3, p3), p3)
	nttCRT.inv123Shoup = shoupOf(nttCRT.inv123, p3)
	nttCRT.p12hi, nttCRT.p12lo = Mul64(p1, p2)
}

// Stand-ins for math/bits, matched by name.
func Mul64(a, b uint64) (hi, lo uint64)         { return 0, 0 }
func Add64(a, b, carry uint64) (uint64, uint64) { return 0, 0 }
func TrailingZeros64(x uint64) int              { return 0 }

// Axiomatized helpers: modbound trusts their doc contracts by name, so the
// fixture bodies are stubs.
func mulMod(a, b, p uint64) uint64           { return 0 }
func powMod(b, e, p uint64) uint64           { return 0 }
func invMod(a, p uint64) uint64              { return 0 }
func shoupOf(w, p uint64) uint64             { return 0 }
func shoupMul(x, w, wShoup, p uint64) uint64 { return 0 }
func redc(a, b, p, pInv uint64) uint64       { return 0 }

func fork(fn func()) { fn() }

func sameNat(x, y []uint64) bool { return len(x) == len(y) && len(x) > 0 }

func (pr *nttPrime) forwardRange(a []uint64, i0, i1, half int, rot, rotShoup uint64) {
	p, twoP := pr.p, pr.twoP
	for i := i0; i < i1; i++ {
		l := a[i]
		t := shoupMul(a[i+half], rot, rotShoup, p)
		u0 := l + t
		if u0 >= twoP {
			u0 -= twoP
		}
		u1 := l + twoP - t
		if u1 >= twoP {
			u1 -= twoP
		}
		a[i], a[i+half] = u0, u1
	}
}

func (pr *nttPrime) inverseRange(a []uint64, i0, i1, half int, irot, irotShoup uint64) {
	p, twoP := pr.p, pr.twoP
	for i := i0; i < i1; i++ {
		l, r := a[i], a[i+half]
		u0 := l + r
		if u0 >= twoP {
			u0 -= twoP
		}
		a[i] = u0
		a[i+half] = shoupMul(l+twoP-r, irot, irotShoup, p)
	}
}

func (pr *nttPrime) forwardBlockPar(a []uint64, offset, half int, rot, rotShoup uint64) {
	chunk := half >> 2
	for lo := 0; lo < half; lo += chunk {
		hi := lo + chunk
		lo, hi := lo, hi
		fork(func() {
			pr.forwardRange(a, offset+lo, offset+hi, half, rot, rotShoup)
		})
	}
}

func (pr *nttPrime) inverseBlockPar(a []uint64, offset, half int, irot, irotShoup uint64) {
	chunk := half >> 2
	for lo := 0; lo < half; lo += chunk {
		hi := lo + chunk
		lo, hi := lo, hi
		fork(func() {
			pr.inverseRange(a, offset+lo, offset+hi, half, irot, irotShoup)
		})
	}
}

func (pr *nttPrime) forward(a []uint64) {
	p := pr.p
	n := len(a)
	rot := uint64(1)
	rotShoup := shoupOf(rot, p)
	for half := n >> 1; half >= 1; half >>= 1 {
		for off := 0; off < n; off += half << 1 {
			if half >= 1024 {
				pr.forwardBlockPar(a, off, half, rot, rotShoup)
			} else {
				pr.forwardRange(a, off, off+half, half, rot, rotShoup)
			}
		}
		rot = mulMod(rot, pr.rate[TrailingZeros64(^rot)], p)
		rotShoup = shoupOf(rot, p)
	}
}

func (pr *nttPrime) inverse(a []uint64) {
	p := pr.p
	n := len(a)
	irot := uint64(1)
	irotShoup := shoupOf(irot, p)
	for half := 1; half < n; half <<= 1 {
		for off := 0; off < n; off += half << 1 {
			pr.inverseRange(a, off, off+half, half, irot, irotShoup)
		}
		irot = mulMod(irot, pr.irate[TrailingZeros64(^irot)], p)
		irotShoup = shoupOf(irot, p)
	}
}

func nttLoad(dst, x []uint64, pr *nttPrime) {
	twoP, fourP := pr.twoP, 4*pr.p
	for i, v := range x {
		if v >= fourP {
			v -= fourP
		}
		if v >= twoP {
			v -= twoP
		}
		dst[i] = v
	}
	clear(dst[len(x):])
}

func nttProductInto(dst, work, x, y []uint64, pr *nttPrime) {
	p, pInv := pr.p, pr.pInv
	nttLoad(dst, x, pr)
	pr.forward(dst)
	if !sameNat(x, y) {
		nttLoad(work, y, pr)
		pr.forward(work)
		for i, v := range work {
			dst[i] = redc(dst[i], v, p, pInv)
		}
	} else {
		for i, v := range dst {
			dst[i] = redc(v, v, p, pInv)
		}
	}
	pr.inverse(dst)
	scale := mulMod(invMod(uint64(len(dst))%p, p), pr.r, p)
	scaleShoup := shoupOf(scale, p)
	for i, v := range dst {
		u := shoupMul(v, scale, scaleShoup, p)
		if u >= p {
			u -= p
		}
		dst[i] = u
	}
}

func nttCRTCombine(z, res1, res2, res3 []uint64) {
	p1 := nttPrimes[0].p
	p2 := nttPrimes[1].p
	p3 := nttPrimes[2].p
	c := &nttCRT
	m := len(z)
	for i := 0; i < m-1 && i < len(res1); i++ {
		r1, r2, r3 := res1[i], res2[i], res3[i]

		r1m2 := r1
		if r1m2 >= p2 {
			r1m2 -= p2
		}
		d2 := r2 + p2 - r1m2
		if d2 >= p2 {
			d2 -= p2
		}
		t2 := shoupMul(d2, c.inv12, c.inv12Shoup, p2)
		if t2 >= p2 {
			t2 -= p2
		}

		r1m3 := r1
		if r1m3 >= p3 {
			r1m3 -= p3
		}
		u := shoupMul(t2, c.p1mod3, c.p1mod3Shoup, p3)
		u += r1m3
		for u >= p3 {
			u -= p3
		}
		d3 := r3 + p3 - u
		if d3 >= p3 {
			d3 -= p3
		}
		t3 := shoupMul(d3, c.inv123, c.inv123Shoup, p3)
		if t3 >= p3 {
			t3 -= p3
		}

		hi1, lo1 := Mul64(p1, t2)
		w0, carry := Add64(r1, lo1, 0)
		w1 := hi1 + carry

		hiL, loL := Mul64(c.p12lo, t3)
		hiH, loH := Mul64(c.p12hi, t3)
		w0, carry = Add64(w0, loL, 0)
		w1, carry = Add64(w1, hiL, carry)
		w2 := hiH + carry
		w1, carry = Add64(w1, loH, 0)
		w2 += carry

		var cc uint64
		z[i], cc = Add64(z[i], w0, 0)
		z[i+1], cc = Add64(z[i+1], w1, cc)
		if i+2 < m {
			z[i+2], cc = Add64(z[i+2], w2, cc)
			for j := i + 3; cc != 0 && j < m; j++ {
				z[j], cc = Add64(z[j], cc, 0)
			}
		}
	}
}
