// Fixture: a broadcast whose relay loop ships the payload twice per round
// ("defensive" redundant send). The derived bandwidth polynomial becomes
// 2·W·⌈log₂ g⌉, diverging from Table 1; costbound must report the
// divergence with both formulas and a concrete witness world.
package collective

type Int struct{ lo, hi uint64 }

func (x Int) WordLen() int { return 1 }

type Ints []Int

type Group []int

func (g Group) Index(id int) int {
	for i, m := range g {
		if m == id {
			return i
		}
	}
	return -1
}

type Proc struct{ id int }

func (p *Proc) ID() int                               { return p.id }
func (p *Proc) Send(to int, tag string, v Ints) error { return nil }
func (p *Proc) RecvInts(from int, tag string) (Ints, error) {
	return nil, nil
}

type strErr string

func (e strErr) Error() string { return string(e) }

// Broadcast sends v from the root down a binomial tree, but each relay
// round sends the payload twice.
func Broadcast(p *Proc, g Group, rootIdx int, tag string, v Ints) (Ints, error) { // want "Broadcast cost diverges from the paper closed form"
	n := len(g)
	me := g.Index(p.ID())
	if me < 0 {
		return nil, strErr("collective: proc not in group")
	}
	if rootIdx < 0 || rootIdx >= n {
		return nil, strErr("collective: root index out of range")
	}
	r := (me - rootIdx + n) % n
	cur := v
	recvMask := 0
	for mask := 1; mask < n; mask <<= 1 {
		if r >= mask && r < mask<<1 {
			recvMask = mask
			break
		}
	}
	if r != 0 {
		src := (r - recvMask + rootIdx) % n
		got, err := p.RecvInts(g[src], tag)
		if err != nil {
			return nil, err
		}
		cur = got
	}
	start := recvMask << 1
	if r == 0 {
		start = 1
	}
	for mask := start; mask < n; mask <<= 1 {
		dst := r + mask
		if dst < n {
			if err := p.Send(g[(dst+rootIdx)%n], tag, cur); err != nil {
				return nil, err
			}
			if err := p.Send(g[(dst+rootIdx)%n], tag, cur); err != nil {
				return nil, err
			}
		}
	}
	return cur, nil
}
