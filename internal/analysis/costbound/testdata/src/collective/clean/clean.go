// Fixture: faithful miniature of the binomial-tree collectives. costbound
// derives their cost polynomials through the same contracts as the real
// tree (the stand-in type names Proc/Ints/Int trigger the machine-boundary
// contracts) and certifies them against the paper's Table 1 closed forms.
package collective

type Int struct{ lo, hi uint64 }

func (x Int) WordLen() int { return 1 }
func (x Int) Add(y Int) Int {
	x.lo += y.lo
	return x
}

type Ints []Int

type Group []int

func (g Group) Index(id int) int {
	for i, m := range g {
		if m == id {
			return i
		}
	}
	return -1
}

type Proc struct{ id int }

func (p *Proc) ID() int                               { return p.id }
func (p *Proc) Send(to int, tag string, v Ints) error { return nil }
func (p *Proc) RecvInts(from int, tag string) (Ints, error) {
	return nil, nil
}
func (p *Proc) Work(n int64) {}

type strErr string

func (e strErr) Error() string { return string(e) }

// SumWork counts the word operations of element-wise summation.
func SumWork(a, b Ints) int64 {
	var w int64
	for i := range a {
		la := int64(a[i].WordLen())
		if i < len(b) {
			if lb := int64(b[i].WordLen()); lb > la {
				la = lb
			}
		}
		if la == 0 {
			la = 1
		}
		w += la
	}
	return w
}

func sum(a, b Ints) (Ints, error) {
	if len(a) != len(b) {
		return nil, strErr("collective: vector length mismatch")
	}
	out := make(Ints, len(a))
	for i := range a {
		out[i] = a[i].Add(b[i])
	}
	return out, nil
}

// Broadcast sends v from the root down a binomial tree.
func Broadcast(p *Proc, g Group, rootIdx int, tag string, v Ints) (Ints, error) {
	n := len(g)
	me := g.Index(p.ID())
	if me < 0 {
		return nil, strErr("collective: proc not in group")
	}
	if rootIdx < 0 || rootIdx >= n {
		return nil, strErr("collective: root index out of range")
	}
	r := (me - rootIdx + n) % n
	cur := v
	recvMask := 0
	for mask := 1; mask < n; mask <<= 1 {
		if r >= mask && r < mask<<1 {
			recvMask = mask
			break
		}
	}
	if r != 0 {
		src := (r - recvMask + rootIdx) % n
		got, err := p.RecvInts(g[src], tag)
		if err != nil {
			return nil, err
		}
		cur = got
	}
	start := recvMask << 1
	if r == 0 {
		start = 1
	}
	for mask := start; mask < n; mask <<= 1 {
		dst := r + mask
		if dst < n {
			if err := p.Send(g[(dst+rootIdx)%n], tag, cur); err != nil {
				return nil, err
			}
		}
	}
	return cur, nil
}

// Reduce element-wise sums every member's vector at the root.
func Reduce(p *Proc, g Group, rootIdx int, tag string, mine Ints) (Ints, error) {
	n := len(g)
	me := g.Index(p.ID())
	if me < 0 {
		return nil, strErr("collective: proc not in group")
	}
	if rootIdx < 0 || rootIdx >= n {
		return nil, strErr("collective: root index out of range")
	}
	r := (me - rootIdx + n) % n
	acc := mine
	for mask := 1; mask < n; mask <<= 1 {
		if r&mask != 0 {
			dst := (r - mask + rootIdx) % n
			return nil, p.Send(g[dst], tag, acc)
		}
		src := r + mask
		if src < n {
			got, err := p.RecvInts(g[(src+rootIdx)%n], tag)
			if err != nil {
				return nil, err
			}
			p.Work(SumWork(acc, got))
			var serr error
			acc, serr = sum(acc, got)
			if serr != nil {
				return nil, serr
			}
		}
	}
	return acc, nil
}
