package costbound

// worlds.go drives the interpreter: symbolic derivation of a collective's
// closed form from its declaration, and the send-log fixpoint that derives
// exact per-rank counts for a finite multiplication world.

import (
	"fmt"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// maxFixpointPasses bounds the send-log iteration; each pipeline phase that
// feeds message shapes forward needs one pass, so the certified worlds
// converge in single digits.
const maxFixpointPasses = 64

// nodeForDecl finds the call-graph node backing a declaration.
func nodeForDecl(sums *framework.Summaries, obj *types.Func) *framework.CGNode {
	if obj == nil {
		return nil
	}
	return sums.Graph.Nodes[framework.FuncKey(obj)]
}

// collectiveArgs builds symbolic entry arguments for a collective whose
// parameters follow the Broadcast/Reduce shape: an endpoint, a group, any
// number of int/string scalars, and one payload vector. Returns false if a
// parameter falls outside that shape.
func collectiveArgs(sig *types.Signature) ([]val, bool) {
	args := make([]val, 0, sig.Params().Len())
	payloads := 0
	for i := 0; i < sig.Params().Len(); i++ {
		t := sig.Params().At(i).Type()
		switch {
		case framework.NamedTypeName(t) == "Proc":
			args = append(args, procVal(-1))
		case framework.NamedTypeName(t) == "Group":
			args = append(args, val{k: kGroupSym, n: framework.SymVar("g")})
		case isIntVecType(t) || framework.NamedTypeName(t) == "Ints":
			args = append(args, vecVal(framework.SymVar("W")))
			payloads++
		default:
			b, ok := t.Underlying().(*types.Basic)
			if !ok {
				return nil, false
			}
			switch {
			case b.Info()&types.IsInteger != 0:
				args = append(args, intVal(0))
			case b.Info()&types.IsString != 0:
				args = append(args, strVal("t"))
			default:
				return nil, false
			}
		}
	}
	return args, payloads == 1
}

// deriveCollective interprets one collective declaration symbolically and
// returns the derived cost polynomial over g (group size) and W (payload
// words).
func deriveCollective(sums *framework.Summaries, fset *token.FileSet, node *framework.CGNode) (cv costVec, err error) {
	sig, _ := node.Fn.Type().(*types.Signature)
	if sig == nil {
		return costVec{}, fmt.Errorf("no signature for %s", node.Key)
	}
	args, ok := collectiveArgs(sig)
	if !ok {
		return costVec{}, fmt.Errorf("parameters of %s fall outside the collective shape", node.Key)
	}
	d := &deriver{
		sums:     sums,
		fset:     fset,
		symbolic: true,
		spmdW:    framework.SymVar("W"),
		pkg:      node.Pkg,
		fuel:     hostFuel,
	}
	defer func() {
		if rec := recover(); rec != nil {
			switch e := rec.(type) {
			case interpErr:
				err = e
			case missingNode:
				err = e
			default:
				panic(rec)
			}
		}
	}()
	d.callNode(node, nil, args, nil)
	return d.cost, nil
}

// worldArgs builds the (a, b, opts) arguments for a tier's Multiply entry.
// opts starts from the real Options type's zero value, so every field the
// interpreted sources read is present, then the world's shape parameters
// are filled in.
func worldArgs(entry *framework.CGNode, w World) ([]val, error) {
	sig, _ := entry.Fn.Type().(*types.Signature)
	if sig == nil || sig.Params().Len() != 3 {
		return nil, fmt.Errorf("entry %s does not look like Multiply(a, b, opts)", entry.Key)
	}
	opts := zeroVal(sig.Params().At(2).Type())
	if opts.k != kStruct {
		return nil, fmt.Errorf("entry %s has a non-struct options parameter", entry.Key)
	}
	alg := structV("Algorithm")
	alg.st.fields["k"] = intVal(int64(w.K))
	f := opts.st.fields
	f["Alg"] = alg
	f["P"] = intVal(int64(w.P))
	f["DFSSteps"] = intVal(int64(w.DFSSteps))
	f["LeafFactor"] = intVal(int64(w.Leaf))
	if w.FT {
		f["F"] = intVal(int64(w.Faults))
	}
	return []val{unitBig(), unitBig(), opts}, nil
}

// deriveWorld interprets a Multiply entry over one finite world, iterating
// the cross-rank send log to a fixpoint, and returns the per-counter maxima
// over all simulated ranks.
func deriveWorld(sums *framework.Summaries, fset *token.FileSet, entry *framework.CGNode, w World) (Counts, error) {
	args, err := worldArgs(entry, w)
	if err != nil {
		return Counts{}, err
	}
	prev := map[string][]int64{}
	var lastFail error
	for pass := 0; pass < maxFixpointPasses; pass++ {
		d := &deriver{
			sums:      sums,
			fset:      fset,
			machineP:  int64(w.MachineP()),
			prevLog:   prev,
			curLog:    map[string][]int64{},
			recvCur:   map[string]int{},
			rankCosts: map[int64]costVec{},
			rankFail:  map[int64]error{},
			pkg:       entry.Pkg,
			fuel:      hostFuel,
		}
		reachedRun, err := runEntry(d, entry, args)
		if err != nil {
			return Counts{}, err
		}
		if !reachedRun {
			return Counts{}, fmt.Errorf("world %s: entry finished without reaching machine.Run", w.Name)
		}
		lastFail = nil
		for r := int64(0); r < d.machineP; r++ {
			if e, bad := d.rankFail[r]; bad {
				lastFail = fmt.Errorf("rank %d: %v", r, e)
				break
			}
		}
		if lastFail == nil && !d.logMiss && logsEqual(prev, d.curLog) {
			out := Counts{}
			env := map[string]int64{}
			for r := int64(0); r < d.machineP; r++ {
				cv, ok := d.rankCosts[r]
				if !ok {
					return Counts{}, fmt.Errorf("world %s: rank %d produced no cost", w.Name, r)
				}
				cf, cs, cr, cl, err := cv.eval(env)
				if err != nil {
					return Counts{}, fmt.Errorf("world %s: rank %d cost not concrete: %v", w.Name, r, err)
				}
				out = maxCounts(out, Counts{cf, cs, cr, cl})
			}
			return out, nil
		}
		prev = d.curLog
	}
	if lastFail != nil {
		return Counts{}, fmt.Errorf("world %s: no fixpoint after %d passes; %v", w.Name, maxFixpointPasses, lastFail)
	}
	return Counts{}, fmt.Errorf("world %s: send log did not converge after %d passes", w.Name, maxFixpointPasses)
}

// runEntry interprets the entry function once, converting the interpreter's
// panic-based exits into results: doneSignal means machine.Run collected
// every rank.
func runEntry(d *deriver, entry *framework.CGNode, args []val) (reachedRun bool, err error) {
	defer func() {
		if rec := recover(); rec != nil {
			switch e := rec.(type) {
			case doneSignal:
				reachedRun, err = true, nil
			case interpErr:
				reachedRun, err = false, e
			case missingNode:
				reachedRun, err = false, e
			default:
				panic(rec)
			}
		}
	}()
	d.callNode(entry, nil, args, nil)
	return false, nil
}

func logsEqual(a, b map[string][]int64) bool {
	if len(a) != len(b) {
		return false
	}
	for k, av := range a {
		bv, ok := b[k]
		if !ok || len(av) != len(bv) {
			return false
		}
		for i := range av {
			if av[i] != bv[i] {
				return false
			}
		}
	}
	return true
}
