package costbound

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/framework"
	"repro/internal/bigint"
	"repro/internal/machine"
)

// The clean fixture mirrors the real binomial-tree collectives; both derive
// exactly the Table 1 closed forms, so it expects zero findings.
func TestCollectiveClean(t *testing.T) {
	analysistest.Run(t, Analyzer, "collective/clean")
}

// The dirty fixture ships the broadcast payload twice per relay round; the
// derived bandwidth polynomial doubles and the analyzer must say so.
func TestCollectiveDirty(t *testing.T) {
	analysistest.Run(t, Analyzer, "collective/dirty")
}

func loadTree(t *testing.T) ([]*framework.Package, *framework.Summaries) {
	t.Helper()
	pkgs, err := framework.LoadCached("../../..",
		"./internal/collective", "./internal/parallel", "./internal/ftparallel",
		"./internal/ftengine")
	if err != nil {
		t.Fatalf("loading certification targets: %v", err)
	}
	return pkgs, framework.ComputeSummaries(pkgs)
}

func pkgNamed(t *testing.T, pkgs []*framework.Package, path string) *framework.Package {
	t.Helper()
	for _, p := range pkgs {
		if p.Path == path {
			return p
		}
	}
	t.Fatalf("package %s not loaded", path)
	return nil
}

// TestRealTree is the acceptance proof: the real collectives and both
// multiplication tiers certify against the paper's closed forms with zero
// findings and zero allow comments.
func TestRealTree(t *testing.T) {
	pkgs, _ := loadTree(t)
	active, suppressed, err := framework.RunAllDetail([]*framework.Analyzer{Analyzer}, pkgs)
	if err != nil {
		t.Fatalf("running costbound: %v", err)
	}
	for _, d := range active {
		if d.Analyzer == "costbound" {
			t.Errorf("%s: %s", d.Position, d.Message)
		}
	}
	for _, d := range suppressed {
		if d.Analyzer == "costbound" {
			t.Errorf("suppressed by allow comment (the certification must hold without suppressions): %s: %s", d.Position, d.Message)
		}
	}
}

// TestTableCounts pins the recurrence evaluations to hand-derived values, so
// a table-side regression cannot silently track an interpreter-side one.
func TestTableCounts(t *testing.T) {
	want := map[string]Counts{
		"parallel/P3k2":         {F: 75, S: 8, R: 8, L: 6},
		"parallel/P3k2+dfs":     {F: 345, S: 24, R: 24, L: 18},
		"ftparallel/P3k2F1":     {F: 97, S: 29, R: 10, L: 16},
		"ftparallel/P3k2F1+dfs": {F: 407, S: 77, R: 26, L: 40},
	}
	ws := Worlds()
	if len(ws) != len(want) {
		t.Fatalf("got %d worlds, want %d", len(ws), len(want))
	}
	for _, w := range ws {
		exp, ok := want[w.Name]
		if !ok {
			t.Errorf("unexpected world %s", w.Name)
			continue
		}
		if w.Expected != exp {
			t.Errorf("world %s: table gives %+v, hand derivation gives %+v", w.Name, w.Expected, exp)
		}
	}
	// Collective closed forms at spot points: ⌈log₂4⌉ = 2, ⌈log₂5⌉ = 3.
	if got := ExpectedBroadcast(4, 3); got != (Counts{F: 0, S: 6, R: 3, L: 2}) {
		t.Errorf("ExpectedBroadcast(4,3) = %+v", got)
	}
	if got := ExpectedBroadcast(5, 2); got != (Counts{F: 0, S: 6, R: 2, L: 3}) {
		t.Errorf("ExpectedBroadcast(5,2) = %+v", got)
	}
	if got := ExpectedReduce(4, 3); got != (Counts{F: 6, S: 3, R: 6, L: 1}) {
		t.Errorf("ExpectedReduce(4,3) = %+v", got)
	}
}

// TestFormulaMutation proves the collective certification is not vacuous:
// perturbing the expected bandwidth form by one word must produce a finding
// whose witness separates the polynomials.
func TestFormulaMutation(t *testing.T) {
	pkgs, sums := loadTree(t)
	coll := pkgNamed(t, pkgs, "repro/internal/collective")

	testMutateFormula = func(name string, cv costVec) costVec {
		if name == "Broadcast" {
			cv.S = cv.S.Add(framework.SymConst(1))
		}
		return cv
	}
	defer func() { testMutateFormula = nil }()

	active, _, err := framework.RunShared(Analyzer, coll, sums)
	if err != nil {
		t.Fatalf("running costbound: %v", err)
	}
	var hits []framework.Diagnostic
	for _, d := range active {
		if d.Analyzer == "costbound" && strings.Contains(d.Message, "Broadcast") {
			hits = append(hits, d)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("got %d Broadcast findings under mutation, want 1: %v", len(hits), active)
	}
	d := hits[0]
	if d.Formula == "" || !strings.Contains(d.Formula, "≠") {
		t.Errorf("mutated finding lacks the formula pair: %q", d.Formula)
	}
	var g, w, got, want int64
	var counter string
	if _, err := fmt.Sscanf(d.Witness, "g=%d W=%d: %s derived=%d expected=%d",
		&g, &w, &counter, &got, &want); err != nil {
		t.Fatalf("witness %q does not parse: %v", d.Witness, err)
	}
	if counter != "S" || want != got+1 {
		t.Errorf("witness %q should separate S by exactly the injected word", d.Witness)
	}
}

// TestWorldMutation is the same non-vacuity proof for the finite worlds:
// perturbing one expected counter must produce a finding naming that world.
func TestWorldMutation(t *testing.T) {
	pkgs, sums := loadTree(t)
	par := pkgNamed(t, pkgs, "repro/internal/parallel")

	testMutateCounts = func(world string, c Counts) Counts {
		if world == "parallel/P3k2" {
			c.F++
		}
		return c
	}
	defer func() { testMutateCounts = nil }()

	active, _, err := framework.RunShared(Analyzer, par, sums)
	if err != nil {
		t.Fatalf("running costbound: %v", err)
	}
	var hits []framework.Diagnostic
	for _, d := range active {
		if d.Analyzer == "costbound" {
			hits = append(hits, d)
		}
	}
	if len(hits) != 1 {
		t.Fatalf("got %d findings under world mutation, want 1: %v", len(hits), hits)
	}
	d := hits[0]
	if !strings.Contains(d.Message, "parallel/P3k2") {
		t.Errorf("finding does not name the mutated world: %s", d.Message)
	}
	if !strings.Contains(d.Formula, "derived F=75") || !strings.Contains(d.Formula, "expected F=76") {
		t.Errorf("formula does not carry both counter values: %q", d.Formula)
	}
	if !strings.HasPrefix(d.Witness, "world parallel/P3k2:") {
		t.Errorf("witness does not pin the world parameters: %q", d.Witness)
	}
}

type noImporter struct{}

func (noImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("fixture must not import packages (got %q)", path)
}

// loadFixture type-checks one fixture package exactly as analysistest does,
// but returns the framework package so the test can inspect diagnostics.
func loadFixture(t *testing.T, rel string) *framework.Package {
	t.Helper()
	dir := filepath.Join("testdata", "src", rel)
	fset := token.NewFileSet()
	pkgAST, err := parser.ParseDir(fset, dir, nil, parser.ParseComments)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	var files []*ast.File
	for _, p := range pkgAST {
		for _, f := range p.Files {
			files = append(files, f)
		}
	}
	info := framework.NewInfo()
	conf := types.Config{Importer: noImporter{}}
	tpkg, err := conf.Check(rel, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}
	return &framework.Package{Path: rel, Fset: fset, Files: files, Types: tpkg, Info: info}
}

// TestDirtyWitnessReproduces closes the loop between the static derivation
// and the runtime: the witness world reported for the double-send broadcast
// fixture must reproduce the exact bandwidth divergence when the honest and
// the dirty protocol run on the real simulated machine under costacct-style
// accounting.
func TestDirtyWitnessReproduces(t *testing.T) {
	diags, err := framework.Run(Analyzer, loadFixture(t, "collective/dirty"))
	if err != nil {
		t.Fatalf("running costbound on dirty fixture: %v", err)
	}
	var witness string
	for _, d := range diags {
		if strings.Contains(d.Message, "Broadcast cost diverges") {
			witness = d.Witness
		}
	}
	if witness == "" {
		t.Fatalf("no divergence witness among %v", diags)
	}
	var g, w, derived, expected int64
	var counter string
	if _, err := fmt.Sscanf(witness, "g=%d W=%d: %s derived=%d expected=%d",
		&g, &w, &counter, &derived, &expected); err != nil {
		t.Fatalf("witness %q does not parse: %v", witness, err)
	}
	if counter != "S" {
		t.Fatalf("witness %q should separate the sent-words counter", witness)
	}

	// Replay both protocols on the witness world: g ranks, W-word payload
	// (unit-word entries). Report.BW is the max words sent — the S counter.
	bw := func(double bool) int64 {
		m, err := machine.New(machine.Config{P: int(g)}, nil)
		if err != nil {
			t.Fatalf("machine: %v", err)
		}
		rep, err := m.Run(func(p *machine.Proc) error {
			var v machine.Ints
			if p.ID() == 0 {
				v = make(machine.Ints, w)
				for i := range v {
					v[i] = bigint.FromInt64(1)
				}
			}
			return runBroadcast(p, int(g), v, double)
		})
		if err != nil {
			t.Fatalf("replay: %v", err)
		}
		return rep.BW
	}
	if got := bw(false); got != expected {
		t.Errorf("honest broadcast on witness world sent %d words, witness expected side says %d", got, expected)
	}
	if got := bw(true); got != derived {
		t.Errorf("double-send broadcast on witness world sent %d words, witness derived side says %d", got, derived)
	}
}

// runBroadcast is the binomial-tree broadcast over ranks 0..n-1 with root 0,
// optionally sending the payload twice per relay round — the runtime twin of
// the clean/dirty fixtures.
func runBroadcast(p *machine.Proc, n int, v machine.Ints, double bool) error {
	r := p.ID()
	cur := v
	recvMask := 0
	for mask := 1; mask < n; mask <<= 1 {
		if r >= mask && r < mask<<1 {
			recvMask = mask
			break
		}
	}
	if r != 0 {
		got, err := p.RecvInts(r-recvMask, "bc")
		if err != nil {
			return err
		}
		cur = got
	}
	start := recvMask << 1
	if r == 0 {
		start = 1
	}
	for mask := start; mask < n; mask <<= 1 {
		if dst := r + mask; dst < n {
			if err := p.Send(dst, "bc", cur); err != nil {
				return err
			}
			if double {
				if err := p.Send(dst, "bc", cur); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
