package costbound

// call.go dispatches call expressions: type conversions and builtins are
// evaluated directly; methods on the machine-boundary types (Proc, Machine,
// Ints, Meta, Algorithm, Int) and a handful of shape-relevant package
// functions follow explicit contracts (contracts.go); functions of the
// protocol packages under analysis are interpreted from their ASTs through
// the call graph; everything else degrades to a signature-shaped unknown.
//
// The contract layer keys methods on the receiver's *type name*, not its
// package, so self-contained fixtures that declare miniature `Proc`/`Int`
// stand-ins exercise the same charging rules as the real tree.

import (
	"go/ast"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// interpretPkgs are the package (base) names whose functions must be
// interpreted from source: the protocol tree whose costs are being derived.
// A callee in one of these packages without a call-graph node means the
// load set is incomplete — the derivation is skipped, not reported.
var interpretPkgs = map[string]bool{
	"collective": true,
	"parallel":   true,
	"ftparallel": true,
	"ftengine":   true,
	"ftmatmul":   true,
}

// contractRecvTypes are receiver type names whose methods are modeled by
// contract rather than interpreted (the machine/arithmetic boundary).
var contractRecvTypes = map[string]bool{
	"Proc":      true,
	"Machine":   true,
	"Ints":      true,
	"Meta":      true,
	"Algorithm": true,
	"Int":       true,
}

const maxCallDepth = 200

func (d *deriver) evalCall(call *ast.CallExpr, sc *scope) val {
	d.burn(call.Pos())
	fun := ast.Unparen(call.Fun)

	// Type conversion: T(x) passes the abstract value through unchanged
	// (conversions in the protocol sources only rename vector/int types).
	if tv, ok := d.info().Types[fun]; ok && tv.IsType() {
		if len(call.Args) != 1 {
			d.fail(call.Pos(), "costbound: malformed conversion")
		}
		return d.evalExpr(call.Args[0], sc)
	}

	// Builtin.
	if id, ok := fun.(*ast.Ident); ok {
		if b, ok := d.info().Uses[id].(*types.Builtin); ok {
			return d.evalBuiltin(b.Name(), call, sc)
		}
	}

	// Declared function or method.
	if fn := framework.CalleeFunc(d.info(), call); fn != nil {
		var recvV *val
		if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
			if sel, ok := fun.(*ast.SelectorExpr); ok {
				rv := d.evalExpr(sel.X, sc)
				recvV = &rv
			}
		}
		args := d.evalArgs(call, sc)
		return d.dispatch(fn, recvV, args, call)
	}

	// Call through a func value (closure, method value, hook).
	fv := d.evalExpr(fun, sc)
	args := d.evalArgs(call, sc)
	return d.callClosure(fv, args, call)
}

func (d *deriver) evalArgs(call *ast.CallExpr, sc *scope) []val {
	args := make([]val, len(call.Args))
	for i, a := range call.Args {
		args[i] = d.evalExpr(a, sc)
	}
	return args
}

// dispatch routes a resolved callee: contract first (lcm64-style opt-outs
// included), then source interpretation for the protocol packages, then the
// generic signature-shaped fallback.
func (d *deriver) dispatch(fn *types.Func, recvV *val, args []val, call *ast.CallExpr) val {
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil {
		d.fail(call.Pos(), "costbound: callee without signature")
	}
	pkgName := ""
	if fn.Pkg() != nil {
		pkgName = fn.Pkg().Name()
	}
	if sig.Recv() != nil {
		recvType := framework.NamedTypeName(sig.Recv().Type())
		if contractRecvTypes[recvType] {
			if v, ok := d.methodContract(recvType, fn.Name(), recvV, args, call); ok {
				return v
			}
		}
		if n := d.sums.Graph.Nodes[framework.FuncKey(fn)]; n != nil && !opaquePkg(pkgName) {
			return d.callNode(n, recvV, args, call)
		}
		// Interface method: devirtualize against the dynamic struct value's
		// declared method set (the engine's Workload seam). The struct value
		// records its named type's package, so the concrete method key is
		// reconstructible without a points-to analysis.
		if types.IsInterface(sig.Recv().Type()) && recvV != nil && recvV.k == kStruct && recvV.st.pkg != "" {
			dkey := recvV.st.pkg + "." + recvV.st.typ + "." + fn.Name()
			if n := d.sums.Graph.Nodes[dkey]; n != nil {
				return d.callNode(n, recvV, args, call)
			}
		}
		if interpretPkgs[pkgName] {
			panic(missingNode{key: framework.FuncKey(fn)})
		}
		return d.genericContract(sig, call.Pos())
	}
	if v, ok := d.funcContract(pkgName, fn.Name(), args, call); ok {
		return v
	}
	if n := d.sums.Graph.Nodes[framework.FuncKey(fn)]; n != nil && !opaquePkg(pkgName) {
		return d.callNode(n, recvV, args, call)
	}
	if interpretPkgs[pkgName] {
		panic(missingNode{key: framework.FuncKey(fn)})
	}
	return d.genericContract(sig, call.Pos())
}

// opaquePkg lists repo packages deliberately modeled by contracts / generic
// fallbacks even though their sources may be in the call graph: the machine
// runtime and the sequential arithmetic kernels, whose internals are
// exactly what the cost model abstracts away.
func opaquePkg(name string) bool {
	switch name {
	case "machine", "costacct", "bigint", "toom", "points", "erasure",
		"mat", "rat", "costmodel", "multistep", "toomgraph", "poly",
		"softfault", "workpool", "crosscheck", "benchenv":
		return true
	}
	return false
}

// callNode interprets a declared function's body in a fresh frame.
func (d *deriver) callNode(n *framework.CGNode, recvV *val, args []val, call *ast.CallExpr) val {
	if n.Decl == nil || n.Decl.Body == nil {
		d.fail(call.Pos(), "costbound: callee %s has no body", n.Key)
	}
	d.depth++
	if d.depth > maxCallDepth {
		d.fail(call.Pos(), "costbound: call depth exceeded at %s", n.Key)
	}
	savedPkg, savedExits, savedNamed := d.pkg, d.exits, d.curNamed
	d.pkg = n.Pkg
	d.exits = nil
	d.curNamed = nil
	sc := newScope(nil)

	if r := n.Decl.Recv; r != nil && len(r.List) > 0 && len(r.List[0].Names) > 0 {
		name := r.List[0].Names[0]
		if name.Name != "_" {
			if obj := d.pkg.Info.Defs[name]; obj != nil {
				rv := opaqueVal()
				if recvV != nil {
					rv = *recvV
				}
				sc.define(obj, rv)
			}
		}
	}
	d.bindParams(n.Decl.Type, sc, args, call)
	f := d.evalStmts(n.Decl.Body.List, sc)
	res := d.finishFrame(f, call)
	d.pkg, d.exits, d.curNamed = savedPkg, savedExits, savedNamed
	d.depth--
	return res
}

// callClosure invokes a kFunc value: a declared function (possibly with a
// bound receiver) or a function literal with its captured environment.
func (d *deriver) callClosure(fv val, args []val, call *ast.CallExpr) val {
	if fv.k != kFunc || fv.fn == nil {
		d.fail(call.Pos(), "costbound: call through %s", fv.describe())
	}
	cl := fv.fn
	if cl.node != nil {
		return d.dispatch(cl.node.Fn, cl.recv, args, call)
	}
	if cl.lit == nil {
		d.fail(call.Pos(), "costbound: call through unmodeled func value")
	}
	d.depth++
	if d.depth > maxCallDepth {
		d.fail(call.Pos(), "costbound: call depth exceeded in closure")
	}
	savedPkg, savedExits, savedNamed := d.pkg, d.exits, d.curNamed
	d.pkg = cl.pkg
	d.exits = nil
	d.curNamed = nil
	sc := newScope(cl.env)
	d.bindParams(cl.lit.Type, sc, args, call)
	f := d.evalStmts(cl.lit.Body.List, sc)
	res := d.finishFrame(f, call)
	d.pkg, d.exits, d.curNamed = savedPkg, savedExits, savedNamed
	d.depth--
	return res
}

// bindParams binds flattened parameters (variadic tail collected into a
// slice unless the call site spreads with ...).
func (d *deriver) bindParams(ft *ast.FuncType, sc *scope, args []val, call *ast.CallExpr) {
	type pslot struct {
		name     *ast.Ident
		variadic bool
	}
	var slots []pslot
	if ft.Params != nil {
		for _, f := range ft.Params.List {
			_, varArg := f.Type.(*ast.Ellipsis)
			if len(f.Names) == 0 {
				slots = append(slots, pslot{nil, varArg})
				continue
			}
			for _, nm := range f.Names {
				slots = append(slots, pslot{nm, varArg})
			}
		}
	}
	ai := 0
	for _, s := range slots {
		var v val
		switch {
		case s.variadic && call != nil && call.Ellipsis.IsValid():
			if ai < len(args) {
				v = args[ai]
				ai = len(args)
			} else {
				v = nilVal()
			}
		case s.variadic:
			rest := make([]val, 0, len(args)-ai)
			for ; ai < len(args); ai++ {
				rest = append(rest, args[ai])
			}
			v = sliceVal(rest)
		case ai < len(args):
			v = args[ai]
			ai++
		default:
			if call != nil {
				d.fail(call.Pos(), "costbound: argument arity mismatch")
			}
			v = opaqueVal()
		}
		if s.name == nil || s.name.Name == "_" {
			continue
		}
		if obj := d.pkg.Info.Defs[s.name]; obj != nil {
			sc.define(obj, v)
		}
	}
	// Named results start at their zero values.
	if ft.Results != nil {
		for _, f := range ft.Results.List {
			for _, nm := range f.Names {
				if nm.Name == "_" {
					continue
				}
				if obj := d.pkg.Info.Defs[nm]; obj != nil {
					c := sc.define(obj, zeroVal(obj.Type()))
					d.curNamed = append(d.curNamed, c)
				}
			}
		}
	}
}

// finishFrame closes the current call frame: the frame's cost becomes the
// component-wise maximum over its return paths (critical-path semantics),
// and its value the join of the returned tuples.
func (d *deriver) finishFrame(f flow, call *ast.CallExpr) val {
	if f != flowRet {
		var vals []val
		for _, c := range d.curNamed {
			vals = append(vals, c.v)
		}
		d.exits = append(d.exits, exitRec{cost: d.cost, vals: vals})
	}
	cost := d.exits[0].cost
	vals := append([]val(nil), d.exits[0].vals...)
	for _, e := range d.exits[1:] {
		cost = cost.maxWith(e.cost)
		if len(e.vals) != len(vals) {
			d.fail(call.Pos(), "costbound: inconsistent return arity")
		}
		for i := range vals {
			vals[i] = joinVal(vals[i], e.vals[i])
		}
	}
	d.cost = cost
	switch len(vals) {
	case 0:
		return val{}
	case 1:
		return vals[0]
	}
	return tupleVal(vals...)
}

// ---------------------------------------------------------------------------
// Builtins.

func (d *deriver) evalBuiltin(name string, call *ast.CallExpr, sc *scope) val {
	switch name {
	case "len", "cap":
		v := d.evalExpr(call.Args[0], sc)
		switch v.k {
		case kVec:
			if v.numOK {
				return numVal(v.w)
			}
			return unknownNum()
		case kSlice:
			return intVal(int64(len(v.elems)))
		case kMap:
			return intVal(int64(len(v.m)))
		case kStr:
			if v.sOK {
				return intVal(int64(len(v.s)))
			}
			return unknownNum()
		case kGroupSym:
			return numVal(v.n)
		case kNil:
			return intVal(0)
		case kOpaque, kMaybeNil:
			return unknownNum()
		}
		d.fail(call.Pos(), "costbound: len of %s", v.describe())
	case "append":
		return d.evalAppend(call, sc)
	case "copy":
		d.evalExpr(call.Args[0], sc)
		d.evalExpr(call.Args[1], sc)
		return unknownNum()
	case "make":
		return d.evalMake(call, sc)
	case "delete":
		m := d.evalExpr(call.Args[0], sc)
		key := d.evalExpr(call.Args[1], sc)
		if m.k == kMap {
			if ks, ok := renderKey(key); ok {
				delete(m.m, ks)
				delete(m.mk, ks)
				return val{}
			}
			d.fail(call.Pos(), "costbound: delete with non-concrete key")
		}
		return val{}
	case "min", "max":
		out := d.evalExpr(call.Args[0], sc)
		for _, a := range call.Args[1:] {
			v := d.evalExpr(a, sc)
			oc, ok1 := out.constInt()
			vc, ok2 := v.constInt()
			if !ok1 || !ok2 {
				out = unknownNum()
				continue
			}
			if (name == "min") == (vc < oc) {
				out = intVal(vc)
			}
		}
		return out
	case "new":
		if tv, ok := d.info().Types[call.Args[0]]; ok {
			return zeroVal(tv.Type)
		}
		return opaqueVal()
	case "panic":
		d.fail(call.Pos(), "costbound: panic site reached")
	case "print", "println":
		for _, a := range call.Args {
			d.evalExpr(a, sc)
		}
		return val{}
	}
	d.fail(call.Pos(), "costbound: unmodeled builtin %s", name)
	return val{}
}

func (d *deriver) evalMake(call *ast.CallExpr, sc *scope) val {
	tv, ok := d.info().Types[call.Args[0]]
	if !ok {
		d.fail(call.Pos(), "costbound: untyped make")
	}
	t := tv.Type
	n := intVal(0)
	if len(call.Args) >= 2 {
		n = d.evalExpr(call.Args[1], sc)
	}
	if len(call.Args) >= 3 {
		d.evalExpr(call.Args[2], sc) // capacity: evaluated, ignored
	}
	switch u := t.Underlying().(type) {
	case *types.Slice:
		if isIntVecType(t) {
			if n.k == kNum && n.numOK {
				return vecVal(n.num)
			}
			return unknownVec()
		}
		c, ok := n.constInt()
		if !ok {
			d.fail(call.Pos(), "costbound: make with non-concrete length")
		}
		elems := make([]val, c)
		for i := range elems {
			elems[i] = zeroVal(u.Elem())
		}
		return sliceVal(elems)
	case *types.Map:
		return val{k: kMap, m: map[string]val{}, mk: map[string]val{}}
	}
	d.fail(call.Pos(), "costbound: unmodeled make of %s", t)
	return val{}
}

func (d *deriver) evalAppend(call *ast.CallExpr, sc *scope) val {
	base := d.evalExpr(call.Args[0], sc)
	var resType types.Type
	if tv, ok := d.info().Types[call]; ok {
		resType = tv.Type
	}
	spread := call.Ellipsis.IsValid()
	var args []val
	for _, a := range call.Args[1:] {
		args = append(args, d.evalExpr(a, sc))
	}

	asVec := base.k == kVec || (base.k == kNil && resType != nil && isIntVecType(resType))
	if asVec {
		w := framework.SymConst(0)
		known := true
		if base.k == kVec {
			w, known = base.w, base.numOK
		}
		if spread {
			s := args[len(args)-1]
			switch s.k {
			case kVec:
				if !s.numOK {
					known = false
				} else {
					w = w.Add(s.w)
				}
			case kNil:
			case kSlice:
				w = w.Add(framework.SymConst(int64(len(s.elems))))
			default:
				known = false
			}
		} else {
			w = w.Add(framework.SymConst(int64(len(args))))
		}
		if !known {
			return unknownVec()
		}
		return vecVal(w)
	}

	switch base.k {
	case kSlice, kNil:
		elems := append([]val(nil), base.elems...)
		if spread {
			s := args[len(args)-1]
			switch s.k {
			case kSlice:
				elems = append(elems, s.elems...)
			case kNil:
			default:
				d.fail(call.Pos(), "costbound: append spread of %s", s.describe())
			}
		} else {
			elems = append(elems, args...)
		}
		return sliceVal(elems)
	case kOpaque:
		return opaqueVal()
	}
	d.fail(call.Pos(), "costbound: append to %s", base.describe())
	return val{}
}

var _ = token.ILLEGAL
