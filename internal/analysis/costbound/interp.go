// Package costbound derives F/BW/L cost polynomials from the real
// collective/parallel/ftparallel sources by abstract interpretation and
// checks them against the paper's closed forms (table.go).
//
// One interpreter runs in two modes.
//
// Symbolic mode derives closed forms for the binomial-tree collectives:
// the group size g and payload word count W stay symbolic, rank-dependent
// branches join component-wise (max over participants, exactly the
// per-counter critical-path semantics of machine.Report), and the two loop
// shapes of the protocol — doubling loops (⌈log₂ n⌉ trips) and linear
// scans — contribute trip × per-iteration cost symbolically. A loop body
// that can exit early (Reduce's send-and-retire) charges
// trip × (non-exiting per-iteration cost) + the exiting path's one-shot
// cost, which is sound and component-wise tight for these protocols.
//
// Concrete mode evaluates the recursive multiplication tiers per rank over
// a finite world (P, k, F, ldfs, leaf bound): every rank-dependent branch
// decides, loops iterate, and recursion terminates. Message sizes cross
// rank boundaries through a send log: each Send records its payload words
// under (src→dst, tag) and each RecvInts pops the matching entry; the whole
// world is re-interpreted until the log reaches a fixpoint (a handful of
// passes — one per pipeline phase that feeds shapes forward). Per-rank
// totals then reduce by component-wise max, mirroring machine.Report.
//
// Data values are never tracked — only shapes, in the unit-word model
// (every limb occupies one word, matching machine.Ints.Words() on the
// small-entry worlds the crosscheck suite replays). Data-dependent
// branches (IsZero skips, interpolation-weight tests) evaluate both arms
// and join by max, so derived work is the worst case the paper bounds.
// Any construct outside the modeled fragment aborts derivation with a
// position-carrying error that the analyzer reports — silence is never an
// answer (non-vacuity).
package costbound

import (
	"fmt"
	"go/token"
	"go/types"

	"repro/internal/analysis/framework"
)

// costVec is the four-counter cost state, matching costacct.Stats: F
// (word operations), S (sent words), R (received words), L (messages).
type costVec struct {
	F, S, R, L framework.SymExpr
}

func (c costVec) add(d costVec) costVec {
	return costVec{c.F.Add(d.F), c.S.Add(d.S), c.R.Add(d.R), c.L.Add(d.L)}
}

func (c costVec) sub(d costVec) costVec {
	return costVec{c.F.Sub(d.F), c.S.Sub(d.S), c.R.Sub(d.R), c.L.Sub(d.L)}
}

func (c costVec) scale(trip framework.SymExpr) costVec {
	return costVec{c.F.Mul(trip), c.S.Mul(trip), c.R.Mul(trip), c.L.Mul(trip)}
}

func (c costVec) maxWith(d costVec) costVec {
	return costVec{
		framework.SymMaxMin1(c.F, d.F),
		framework.SymMaxMin1(c.S, d.S),
		framework.SymMaxMin1(c.R, d.R),
		framework.SymMaxMin1(c.L, d.L),
	}
}

func (c costVec) String() string {
	return fmt.Sprintf("F=%s S=%s R=%s L=%s", c.F, c.S, c.R, c.L)
}

func (c costVec) equal(d costVec) bool {
	return c.F.Equal(d.F) && c.S.Equal(d.S) && c.R.Equal(d.R) && c.L.Equal(d.L)
}

// eval evaluates all four counters under env.
func (c costVec) eval(env map[string]int64) (f, s, r, l int64, err error) {
	if f, err = c.F.Eval(env); err != nil {
		return
	}
	if s, err = c.S.Eval(env); err != nil {
		return
	}
	if r, err = c.R.Eval(env); err != nil {
		return
	}
	l, err = c.L.Eval(env)
	return
}

// scope is a lexical environment; closures capture their defining scope.
type scope struct {
	parent *scope
	vars   map[types.Object]*cell
}

type cell struct{ v val }

func newScope(parent *scope) *scope {
	return &scope{parent: parent, vars: map[types.Object]*cell{}}
}

func (s *scope) find(obj types.Object) *cell {
	for sc := s; sc != nil; sc = sc.parent {
		if c, ok := sc.vars[obj]; ok {
			return c
		}
	}
	return nil
}

func (s *scope) define(obj types.Object, v val) *cell {
	c := &cell{v: v}
	s.vars[obj] = c
	return c
}

// interpErr aborts derivation; pos points at the construct that escaped the
// modeled fragment.
type interpErr struct {
	pos token.Pos
	msg string
}

func (e interpErr) Error() string { return e.msg }

// missingNode marks a callee whose source is not in the analyzed package
// set: the derivation is skipped (not reported) because the world is
// incomplete, e.g. a single-package ftlint invocation.
type missingNode struct{ key string }

func (e missingNode) Error() string { return "missing source for " + e.key }

// doneSignal unwinds interpretation once the machine.Run contract has
// collected every rank's charges; the host-side epilogue (assembly) is
// cost-free by construction (costcharge governs the charge sites).
type doneSignal struct{}

// flow is the control outcome of a statement.
type flow int

const (
	flowNorm flow = iota
	flowRet
	flowBrk
	flowCont
)

type loopCtx struct {
	brks []costVec // absolute cost at each break under this loop
	sw   bool      // a switch frame: absorbs break without recording it
}

// deriver interprets one target function.
type deriver struct {
	sums *framework.Summaries
	fset *token.FileSet

	symbolic bool
	spmdW    framework.SymExpr // symbolic payload measure (SPMD-uniform)

	// Concrete mode.
	rank      int64
	machineP  int64
	prevLog   map[string][]int64 // send log from the previous pass
	curLog    map[string][]int64
	recvCur   map[string]int // per-rank read cursors into prevLog
	logMiss   bool           // some recv found no matching send yet
	rankCosts map[int64]costVec
	rankFail  map[int64]error

	pkg       *framework.Package // package whose Info resolves current ASTs
	cost      costVec
	exits     []exitRec // return records of the current function frame
	curNamed  []*cell   // named-result cells of the current frame
	loops     []*loopCtx
	trails    []*trail
	joinDepth int // >0 while evaluating an undecided branch arm
	fuel      int
	depth     int
}

type exitRec struct {
	cost costVec
	vals []val
}

func (d *deriver) fail(pos token.Pos, format string, args ...any) {
	where := ""
	if d.fset != nil && pos.IsValid() {
		where = d.fset.Position(pos).String() + ": "
	}
	panic(interpErr{pos: pos, msg: where + fmt.Sprintf(format, args...)})
}

func (d *deriver) burn(pos token.Pos) {
	d.fuel--
	if d.fuel <= 0 {
		d.fail(pos, "costbound: interpretation fuel exhausted (diverging model?)")
	}
}

func (d *deriver) charge(c costVec) { d.cost = d.cost.add(c) }

// ---------------------------------------------------------------------------
// Conditions: three-valued, with the count-prover (all parameters ≥ 1).

type tri int

const (
	triFalse tri = iota
	triTrue
	triUnknown
)

func knownTri(b bool) tri {
	if b {
		return triTrue
	}
	return triFalse
}

// cmpNums decides a comparison between two abstract numbers when provable.
func cmpNums(op token.Token, a, b val) tri {
	if a.k != kNum || b.k != kNum || !a.numOK || !b.numOK {
		return triUnknown
	}
	if ac, aok := a.num.IsConst(); aok {
		if bc, bok := b.num.IsConst(); bok {
			switch op {
			case token.EQL:
				return knownTri(ac == bc)
			case token.NEQ:
				return knownTri(ac != bc)
			case token.LSS:
				return knownTri(ac < bc)
			case token.LEQ:
				return knownTri(ac <= bc)
			case token.GTR:
				return knownTri(ac > bc)
			case token.GEQ:
				return knownTri(ac >= bc)
			}
			return triUnknown
		}
	}
	// Symbolic: prove with the ≥1 coefficient test where possible.
	ge := framework.GEMin1
	switch op {
	case token.GEQ:
		if ge(a.num, b.num) {
			return triTrue
		}
		if ge(b.num, a.num.Add(framework.SymConst(1))) { // b ≥ a+1 ⇒ a < b
			return triFalse
		}
	case token.LSS:
		if ge(b.num, a.num.Add(framework.SymConst(1))) {
			return triTrue
		}
		if ge(a.num, b.num) {
			return triFalse
		}
	case token.GTR:
		if ge(a.num, b.num.Add(framework.SymConst(1))) {
			return triTrue
		}
		if ge(b.num, a.num) {
			return triFalse
		}
	case token.LEQ:
		if ge(b.num, a.num) {
			return triTrue
		}
		if ge(a.num, b.num.Add(framework.SymConst(1))) {
			return triFalse
		}
	case token.EQL:
		if a.num.Equal(b.num) {
			return triTrue
		}
		if ge(a.num, b.num.Add(framework.SymConst(1))) || ge(b.num, a.num.Add(framework.SymConst(1))) {
			return triFalse
		}
	case token.NEQ:
		if a.num.Equal(b.num) {
			return triFalse
		}
		if ge(a.num, b.num.Add(framework.SymConst(1))) || ge(b.num, a.num.Add(framework.SymConst(1))) {
			return triTrue
		}
	}
	return triUnknown
}

// isNilish reports whether v is definitely nil / definitely non-nil.
func nilness(v val) tri {
	switch v.k {
	case kNil:
		return triTrue
	case kOpaque, kStruct, kFunc, kProc, kMachine, kVec, kBig, kSlice, kGroupSym:
		return triFalse
	case kMap:
		if v.m == nil {
			return triTrue
		}
		return triFalse
	}
	return triUnknown
}
