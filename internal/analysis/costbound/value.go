package costbound

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// The abstract value domain. Cost derivation only needs shapes and counts,
// never digit values: integers are symbolic expressions (constants in
// concrete mode), limb vectors are measured by their word count (the
// unit-word model: every entry occupies exactly one machine word, which is
// what machine.Ints.Words() charges for small entries), and big-integer
// scalars are opaque carriers of a word measure. Everything else — slices,
// maps, structs, closures, endpoints — models just enough Go semantics to
// execute the real protocol sources.
type kind int

const (
	kInvalid kind = iota
	kNum          // integer; num is valid iff numOK
	kBool         // boolean; b valid iff bOK
	kStr          // string; s valid iff sOK
	kBig          // opaque scalar (bigint.Int, rat entries, ...) with a word measure
	kVec          // []Int / machine.Ints, measured by w (words == length, unit model)
	kSlice        // slice with concrete length and per-element values
	kMap          // map with concretely rendered keys
	kStruct       // struct (pointer semantics: shared *structVal)
	kFunc         // func value (closure or declared function)
	kProc         // machine endpoint; rank < 0 means symbolic participant
	kMachine      // machine.Machine carrying its processor count
	kGroupSym     // symbolic collective.Group of size n
	kNil          // nil / zero pointer / nil error
	kOpaque       // inert unmodeled value (never nil)
	kMaybeNil     // join of nil and non-nil: nilness undecidable
	kTuple        // multi-value
)

type structVal struct {
	typ    string
	pkg    string // package path of the named type; "" for synthetic structs
	fields map[string]val
}

type closure struct {
	node *framework.CGNode  // declared function, or
	lit  *ast.FuncLit       // function literal ...
	env  *scope             // ... with its captured scope
	pkg  *framework.Package // package the literal's Info lives in
	recv *val               // bound receiver for method calls
}

type val struct {
	k     kind
	num   framework.SymExpr
	numOK bool
	b     bool
	bOK   bool
	s     string
	sOK   bool
	w     framework.SymExpr // kVec / kBig measure
	elems []val             // kSlice / kTuple
	m     map[string]val    // kMap (rendered key → value)
	mk    map[string]val    // kMap (rendered key → original key value)
	st    *structVal
	fn    *closure
	rank  int64             // kProc
	mP    int64             // kMachine processor count
	n     framework.SymExpr // kGroupSym size
}

func numVal(e framework.SymExpr) val  { return val{k: kNum, num: e, numOK: true} }
func intVal(c int64) val              { return numVal(framework.SymConst(c)) }
func unknownNum() val                 { return val{k: kNum} }
func boolVal(b bool) val              { return val{k: kBool, b: b, bOK: true} }
func unknownBool() val                { return val{k: kBool} }
func strVal(s string) val             { return val{k: kStr, s: s, sOK: true} }
func vecVal(w framework.SymExpr) val  { return val{k: kVec, w: w, numOK: true} }
func unknownVec() val                 { return val{k: kVec} }
func bigVal(w framework.SymExpr) val  { return val{k: kBig, w: w, numOK: true} }
func unitBig() val                    { return bigVal(framework.SymConst(1)) }
func nilVal() val                     { return val{k: kNil} }
func opaqueVal() val                  { return val{k: kOpaque} }
func sliceVal(elems []val) val        { return val{k: kSlice, elems: elems} }
func tupleVal(elems ...val) val       { return val{k: kTuple, elems: elems} }
func procVal(rank int64) val          { return val{k: kProc, rank: rank} }
func structV(typ string) val {
	return val{k: kStruct, st: &structVal{typ: typ, fields: map[string]val{}}}
}

// namedTypePkgPath reports the package path behind a (possibly pointer-to)
// named type, so interface method calls can be devirtualized against the
// dynamic struct value's declared methods. Unnamed and universe types yield
// the empty string.
func namedTypePkgPath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj() != nil && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path()
	}
	return ""
}

// constInt extracts a concrete integer, panicking into the unmodeled path
// otherwise; callers use it where the protocol itself needs the number
// (loop bounds, ranks, slice lengths).
func (v val) constInt() (int64, bool) {
	if v.k != kNum || !v.numOK {
		return 0, false
	}
	return v.num.IsConst()
}

func (v val) describe() string {
	switch v.k {
	case kNum:
		if v.numOK {
			return "num(" + v.num.String() + ")"
		}
		return "num(?)"
	case kBool:
		if v.bOK {
			return fmt.Sprintf("bool(%v)", v.b)
		}
		return "bool(?)"
	case kStr:
		if v.sOK {
			return fmt.Sprintf("str(%q)", v.s)
		}
		return "str(?)"
	case kBig:
		return "big[" + v.w.String() + "w]"
	case kVec:
		return "vec[" + v.w.String() + "]"
	case kSlice:
		return fmt.Sprintf("slice[%d]", len(v.elems))
	case kMap:
		return fmt.Sprintf("map[%d]", len(v.m))
	case kStruct:
		return "struct " + v.st.typ
	case kFunc:
		return "func"
	case kProc:
		return fmt.Sprintf("proc(%d)", v.rank)
	case kMachine:
		return fmt.Sprintf("machine(P=%d)", v.mP)
	case kGroupSym:
		return "group(" + v.n.String() + ")"
	case kNil:
		return "nil"
	case kOpaque:
		return "opaque"
	case kMaybeNil:
		return "maybe-nil"
	case kTuple:
		return fmt.Sprintf("tuple[%d]", len(v.elems))
	}
	return "invalid"
}

// joinVal merges the values a variable holds on the two sides of an
// undecided branch. Counts join to their maximum (cost-model semantics:
// every count feeds a worst-case charge); everything else that differs
// degrades to unknown of its kind, or to opaque across kinds.
func joinVal(a, b val) val {
	if a.k == b.k {
		switch a.k {
		case kNum:
			if a.numOK && b.numOK {
				if a.num.Equal(b.num) {
					return a
				}
				return numVal(framework.SymMax(a.num, b.num))
			}
			return unknownNum()
		case kBool:
			if a.bOK && b.bOK && a.b == b.b {
				return a
			}
			return unknownBool()
		case kStr:
			if a.sOK && b.sOK && a.s == b.s {
				return a
			}
			return val{k: kStr}
		case kVec:
			if !a.numOK || !b.numOK {
				return unknownVec()
			}
			if a.w.Equal(b.w) {
				return a
			}
			return vecVal(framework.SymMaxMin1(a.w, b.w))
		case kBig:
			if !a.numOK || !b.numOK {
				return val{k: kBig}
			}
			if a.w.Equal(b.w) {
				return a
			}
			return bigVal(framework.SymMaxMin1(a.w, b.w))
		case kProc:
			if a.rank == b.rank {
				return a
			}
			return val{k: kProc, rank: -1}
		case kNil, kMaybeNil:
			return a
		case kStruct:
			if a.st == b.st {
				return a
			}
			return opaqueVal()
		case kSlice:
			if len(a.elems) == len(b.elems) {
				out := make([]val, len(a.elems))
				for i := range out {
					out[i] = joinVal(a.elems[i], b.elems[i])
				}
				return sliceVal(out)
			}
			return opaqueVal()
		case kTuple:
			if len(a.elems) == len(b.elems) {
				out := make([]val, len(a.elems))
				for i := range out {
					out[i] = joinVal(a.elems[i], b.elems[i])
				}
				return tupleVal(out...)
			}
			return opaqueVal()
		}
		return opaqueVal()
	}
	// A nil error joined with a non-nil one must keep its nilness
	// undecidable — deciding `err != nil` either way after such a join
	// would silently drop one arm's cost. Other cross-kind pairs lose all
	// precision except non-crashing inertness.
	if a.k == kNil || b.k == kNil || a.k == kMaybeNil || b.k == kMaybeNil {
		return val{k: kMaybeNil}
	}
	return opaqueVal()
}

// zeroVal builds the Go zero value of t in the abstract domain.
func zeroVal(t types.Type) val {
	switch u := t.Underlying().(type) {
	case *types.Basic:
		info := u.Info()
		switch {
		case info&types.IsInteger != 0, info&types.IsFloat != 0:
			return intVal(0)
		case info&types.IsBoolean != 0:
			return boolVal(false)
		case info&types.IsString != 0:
			return strVal("")
		}
		return opaqueVal()
	case *types.Slice, *types.Map, *types.Pointer, *types.Signature, *types.Interface, *types.Chan:
		return nilVal()
	case *types.Struct:
		name := framework.NamedTypeName(t)
		sv := structV(name)
		sv.st.pkg = namedTypePkgPath(t)
		for i := 0; i < u.NumFields(); i++ {
			sv.st.fields[u.Field(i).Name()] = zeroVal(u.Field(i).Type())
		}
		return sv
	case *types.Array:
		n := int(u.Len())
		elems := make([]val, n)
		for i := range elems {
			elems[i] = zeroVal(u.Elem())
		}
		return sliceVal(elems)
	}
	return opaqueVal()
}
