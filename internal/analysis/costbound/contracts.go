package costbound

// contracts.go models the machine boundary and the sequential arithmetic
// kernels. A contract is the cost model's axiom set: Send charges its
// payload words to S and one message to L, Recv charges R, Work charges F,
// Barrier charges the binomial-tree dissemination — exactly what
// machine/costacct charges at runtime, which the crosscheck suite pins.
// Everything below the charge sites (digit arithmetic, matrix inverses,
// point bookkeeping) is shape-only: contracts return unknowns of the right
// kind and the interpreter joins over any branch that depends on them.

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/framework"
)

const (
	hostFuel = 2_000_000
	rankFuel = 500_000
)

func callPos(call *ast.CallExpr) token.Pos {
	if call != nil {
		return call.Pos()
	}
	return token.NoPos
}

// methodContract handles methods of the boundary types, keyed by receiver
// type name so fixture stand-ins (a local `type Proc struct{}` with the
// same method names) follow the same axioms. Returns ok=false to fall
// through to interpretation / generic handling.
func (d *deriver) methodContract(recvType, name string, recvV *val, args []val, call *ast.CallExpr) (val, bool) {
	pos := callPos(call)
	rv := opaqueVal()
	if recvV != nil {
		rv = *recvV
	}
	switch recvType {
	case "Proc":
		return d.procContract(name, args, pos)
	case "Machine":
		if name == "Run" {
			if len(args) != 1 {
				d.fail(pos, "costbound: Machine.Run arity")
			}
			d.runMachine(rv, args[0], call)
		}
		return val{}, false
	case "Ints":
		if name == "Words" {
			if rv.k == kVec && rv.numOK {
				return numVal(rv.w), true
			}
			if rv.k == kVec || rv.k == kOpaque || rv.k == kMaybeNil {
				return unknownNum(), true
			}
			d.fail(pos, "costbound: Words of %s", rv.describe())
		}
		return val{}, false
	case "Meta":
		if name == "Words" {
			return intVal(1), true
		}
		return val{}, false
	case "Algorithm":
		return d.algContract(name, rv, args, pos)
	case "Int":
		switch name {
		case "WordLen":
			// Unit-word model: every digit occupies one machine word
			// (crosscheck worlds use small entries for exactly this reason).
			return intVal(1), true
		case "Add", "Sub":
			// Digit addition: the result's word measure is the operands'
			// maximum when both are known (1 in the unit-word model).
			if rv.k == kBig && rv.numOK && len(args) == 1 && args[0].k == kBig && args[0].numOK {
				return bigVal(framework.SymMaxMin1(rv.w, args[0].w)), true
			}
			return val{k: kBig}, true
		case "IsZero":
			return unknownBool(), true
		case "Sign", "BitLen", "Int64", "Cmp":
			return unknownNum(), true
		}
		return val{}, false
	}
	return val{}, false
}

func (d *deriver) procContract(name string, args []val, pos token.Pos) (val, bool) {
	switch name {
	case "ID":
		if d.symbolic {
			return unknownNum(), true
		}
		return intVal(d.rank), true
	case "P":
		if d.symbolic {
			d.fail(pos, "costbound: p.P() has no symbolic model")
		}
		return intVal(d.machineP), true
	case "Work":
		n := args[0]
		if n.k != kNum || !n.numOK {
			d.fail(pos, "costbound: Work with unknown operation count")
		}
		d.charge(costVec{F: n.num})
		return val{}, true
	case "Send":
		return d.sendContract(args, pos), true
	case "RecvInts", "Recv":
		return d.recvContract(args, pos), true
	case "Barrier":
		if d.symbolic {
			d.fail(pos, "costbound: Barrier has no symbolic model")
		}
		logP := ceilLog2(d.machineP)
		d.charge(costVec{
			S: framework.SymConst(logP),
			L: framework.SymConst(logP),
		})
		// Zero-fault worlds: no fault events, nil error.
		return tupleVal(sliceVal(nil), nilVal()), true
	case "Mark":
		return val{}, true
	case "Free":
		return val{}, true
	case "Store":
		return nilVal(), true
	case "Clock", "MemoryWords":
		return unknownNum(), true
	case "FaultCount":
		return intVal(0), true
	case "RecvDeadline":
		d.fail(pos, "costbound: RecvDeadline outside modeled (zero-fault) protocol")
	}
	return val{}, false
}

func ceilLog2(p int64) int64 {
	l := int64(0)
	for v := int64(1); v < p; v <<= 1 {
		l++
	}
	if l < 1 {
		l = 1
	}
	return l
}

// sendContract charges S/L and, in concrete mode, records the payload words
// in the send log (the cross-rank shape channel of the fixpoint).
func (d *deriver) sendContract(args []val, pos token.Pos) val {
	if len(args) != 3 {
		d.fail(pos, "costbound: Send arity")
	}
	to, tag, payload := args[0], args[1], args[2]
	w, wKnown := payloadWords(payload)
	if d.symbolic {
		if !wKnown {
			d.fail(pos, "costbound: symbolic Send with unknown payload measure")
		}
		d.charge(costVec{S: w, L: framework.SymConst(1)})
		return nilVal()
	}
	if d.joinDepth > 0 {
		d.fail(pos, "costbound: Send under an undecided branch")
	}
	dst, ok := to.constInt()
	if !ok {
		d.fail(pos, "costbound: Send to unknown rank")
	}
	if !tag.sOK {
		d.fail(pos, "costbound: Send with unknown tag")
	}
	key := fmt.Sprintf("%d>%d|%s", d.rank, dst, tag.s)
	words := int64(-1) // unknown sentinel: poisons this pass, next pass refines
	if wKnown {
		if c, cok := w.IsConst(); cok {
			words = c
		}
	}
	if words < 0 {
		d.logMiss = true
		d.curLog[key] = append(d.curLog[key], -1)
		d.charge(costVec{L: framework.SymConst(1)})
		return nilVal()
	}
	d.curLog[key] = append(d.curLog[key], words)
	d.charge(costVec{S: framework.SymConst(words), L: framework.SymConst(1)})
	return nilVal()
}

func payloadWords(p val) (framework.SymExpr, bool) {
	switch p.k {
	case kVec:
		if p.numOK {
			return p.w, true
		}
		return framework.SymExpr{}, false
	case kStruct:
		if p.st != nil && p.st.typ == "Meta" {
			return framework.SymConst(1), true
		}
	}
	return framework.SymExpr{}, false
}

// recvContract returns (payload, error). In symbolic mode the SPMD-uniform
// assumption applies: every peer's payload has the caller's own measure
// spmdW. In concrete mode the send log of the previous pass supplies the
// measure; a miss marks the pass dirty and yields an unknown vector so
// interpretation continues (downstream lenRefine picks up the code's own
// validation constants).
func (d *deriver) recvContract(args []val, pos token.Pos) val {
	if len(args) != 2 {
		d.fail(pos, "costbound: Recv arity")
	}
	from, tag := args[0], args[1]
	if d.symbolic {
		d.charge(costVec{R: d.spmdW})
		return tupleVal(vecVal(d.spmdW), nilVal())
	}
	src, ok := from.constInt()
	if !ok {
		d.fail(pos, "costbound: Recv from unknown rank")
	}
	if !tag.sOK {
		d.fail(pos, "costbound: Recv with unknown tag")
	}
	key := fmt.Sprintf("%d>%d|%s", src, d.rank, tag.s)
	cur := d.recvCur[key]
	log := d.prevLog[key]
	if cur >= len(log) || log[cur] == -1 {
		d.logMiss = true
		d.recvCur[key] = cur + 1
		return tupleVal(unknownVec(), nilVal())
	}
	d.recvCur[key] = cur + 1
	w := log[cur]
	d.charge(costVec{R: framework.SymConst(w)})
	return tupleVal(vecVal(framework.SymConst(w)), nilVal())
}

// runMachine is the Machine.Run contract: interpret the SPMD program once
// per rank, collect per-rank costs/failures, then unwind — everything after
// Run on the host (assembly, verification) is unmetered by construction.
func (d *deriver) runMachine(mach val, prog val, call *ast.CallExpr) {
	if mach.k != kMachine || mach.mP <= 0 {
		d.fail(callPos(call), "costbound: Run on unmodeled machine")
	}
	d.machineP = mach.mP
	for r := int64(0); r < mach.mP; r++ {
		d.rank = r
		d.fuel = rankFuel
		d.cost = costVec{}
		// A failed rank leaves frame bookkeeping mid-flight; reset it so the
		// next rank starts clean (host state is rebuilt each fixpoint pass).
		d.depth, d.joinDepth = 0, 0
		d.loops, d.trails = nil, nil
		func() {
			defer func() {
				if rec := recover(); rec != nil {
					if ie, ok := rec.(interpErr); ok {
						d.rankFail[r] = ie
						return
					}
					panic(rec)
				}
			}()
			d.callClosure(prog, []val{procVal(r)}, call)
			d.rankCosts[r] = d.cost
		}()
	}
	panic(doneSignal{})
}

// funcContract handles the few package functions whose shapes the
// interpreter needs beyond what genericContract can tell from a signature.
func (d *deriver) funcContract(pkgName, name string, args []val, call *ast.CallExpr) (val, bool) {
	pos := callPos(call)
	switch pkgName {
	case "machine":
		if name == "New" {
			cfg := args[0]
			if cfg.k != kStruct {
				d.fail(pos, "costbound: machine.New with unmodeled config")
			}
			p, ok := cfg.st.fields["P"].constInt()
			if !ok {
				d.fail(pos, "costbound: machine.New with unknown P")
			}
			if len(args) > 1 && nilness(args[1]) != triTrue {
				d.fail(pos, "costbound: machine.New with a fault plan (faulty worlds are model-checked, not cost-certified)")
			}
			return tupleVal(val{k: kMachine, mP: p}, nilVal()), true
		}
	case "toom":
		if name == "Recompose" {
			// The recomposed scalar carries the share's word measure so the
			// leaf's MulWithStats charge is len(a)·len(b).
			if args[0].k == kVec && args[0].numOK {
				return bigVal(args[0].w), true
			}
			return val{k: kBig}, true
		}
	case "points":
		if name == "StandardWithRedundancy" {
			k, ok1 := args[0].constInt()
			f, ok2 := args[1].constInt()
			if !ok1 || !ok2 {
				d.fail(pos, "costbound: StandardWithRedundancy with unknown k/f")
			}
			n := 2*k - 1 + f
			elems := make([]val, n)
			for i := range elems {
				elems[i] = opaqueVal()
			}
			return sliceVal(elems), true
		}
	case "ftparallel":
		// gcd64's Euclid loop is data-dependent; both are pure int helpers.
		if name == "gcd64" || name == "lcm64" {
			return unknownNum(), true
		}
	case "fmt":
		switch name {
		case "Sprintf", "Sprint":
			if s, ok := renderFmt(name, args); ok {
				return strVal(s), true
			}
			return val{k: kStr}, true
		case "Errorf":
			return opaqueVal(), true
		}
	case "sort":
		switch name {
		case "Ints", "Slice":
			// Ordering never affects counts; elements stay in place.
			return val{}, true
		}
	}
	return val{}, false
}

// renderFmt runs the real fmt over concretized abstract values, so cache
// keys and message tags built with Sprintf/Sprint ("code1/%d/%d",
// fmt.Sprint(survivors)) render exactly as at runtime.
func renderFmt(name string, args []val) (string, bool) {
	conc := make([]any, 0, len(args))
	for i, a := range args {
		c, ok := concretize(a)
		if !ok {
			return "", false
		}
		if name == "Sprintf" && i == 0 {
			s, sok := c.(string)
			if !sok {
				return "", false
			}
			conc = append(conc, s)
			continue
		}
		conc = append(conc, c)
	}
	if name == "Sprintf" {
		if len(conc) == 0 {
			return "", false
		}
		return fmt.Sprintf(conc[0].(string), conc[1:]...), true
	}
	return fmt.Sprint(conc...), true
}

func concretize(v val) (any, bool) {
	switch v.k {
	case kNum:
		c, ok := v.constInt()
		if !ok {
			return nil, false
		}
		return c, true
	case kStr:
		if v.sOK {
			return v.s, true
		}
	case kBool:
		if v.bOK {
			return v.b, true
		}
	case kSlice:
		out := make([]int64, len(v.elems))
		for i, e := range v.elems {
			c, ok := e.constInt()
			if !ok {
				return nil, false
			}
			out[i] = c
		}
		return out, true
	}
	return nil, false
}

// genericContract shapes an unmodeled callee's result purely from its
// signature: helpers succeed (nil errors), vectors and scalars come back
// with unknown measures, and the interpreter joins over whatever depends
// on them.
func (d *deriver) genericContract(sig *types.Signature, pos token.Pos) val {
	res := sig.Results()
	switch res.Len() {
	case 0:
		return val{}
	case 1:
		return d.genericResult(res.At(0).Type())
	}
	vals := make([]val, res.Len())
	for i := range vals {
		vals[i] = d.genericResult(res.At(i).Type())
	}
	return tupleVal(vals...)
}

func (d *deriver) genericResult(t types.Type) val {
	name := framework.NamedTypeName(t)
	if name == "error" {
		return nilVal()
	}
	if isIntVecType(t) {
		return unknownVec()
	}
	if name == "Int" {
		return unitBig()
	}
	if b, ok := t.Underlying().(*types.Basic); ok {
		info := b.Info()
		switch {
		case info&(types.IsInteger|types.IsFloat) != 0:
			return unknownNum()
		case info&types.IsBoolean != 0:
			return unknownBool()
		case info&types.IsString != 0:
			return val{k: kStr}
		}
	}
	return opaqueVal()
}

// algContract models toom.Algorithm: k is the one shape parameter; the
// matrices are opaque coefficient sources; MulWithStats reports the
// schoolbook word-operation count the leaf charges.
func (d *deriver) algContract(name string, rv val, args []val, pos token.Pos) (val, bool) {
	kField := func() framework.SymExpr {
		if rv.k == kStruct && rv.st != nil {
			if kv, ok := rv.st.fields["k"]; ok && kv.k == kNum && kv.numOK {
				return kv.num
			}
		}
		d.fail(pos, "costbound: Algorithm with unknown k")
		return framework.SymExpr{}
	}
	switch name {
	case "K":
		return numVal(kField()), true
	case "NumProducts":
		return numVal(kField().Scale(2).Sub(framework.SymConst(1))), true
	case "U":
		return opaqueVal(), true
	case "WScaled":
		return tupleVal(opaqueVal(), unknownNum()), true
	case "MulWithStats":
		if len(args) == 3 && args[2].k == kStruct && args[2].st != nil {
			wa, wb := framework.SymExpr{}, framework.SymExpr{}
			ok := false
			if args[0].k == kBig && args[0].numOK && args[1].k == kBig && args[1].numOK {
				wa, wb = args[0].w, args[1].w
				ok = true
			}
			if !ok {
				d.fail(pos, "costbound: MulWithStats with unknown operand measures")
			}
			args[2].st.fields["WordOps"] = numVal(wa.Mul(wb))
		}
		return val{k: kBig}, true
	case "Mul":
		return val{k: kBig}, true
	}
	return val{}, false
}

var _ = sort.Ints
