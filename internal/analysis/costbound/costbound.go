package costbound

import (
	"fmt"
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

// Analyzer symbolically certifies the paper's F/BW/L closed forms against
// the real sources: the binomial-tree collectives are derived as
// polynomials over (g, W) and compared with Table 1, and the parallel /
// fault-tolerant multiplication tiers are derived exactly over the finite
// crosscheck worlds and compared with the Table 2 recurrences. A
// divergence carries both polynomials and a concrete witness assignment; a
// protocol construct the interpreter cannot model is itself a finding
// (silence is never an answer).
var Analyzer = &framework.Analyzer{
	Name: "costbound",
	Doc: "derive F/BW/L cost polynomials from the collective and " +
		"multiplication sources by abstract interpretation and certify them " +
		"against the paper's closed forms (Tables 1-2); report any divergence " +
		"with both formulas and a concrete witness world",
	Run: run,
}

// Test seams (set only from this package's tests): perturb the expected
// side of a comparison, proving the certification cannot pass vacuously.
var (
	testMutateFormula func(name string, cv costVec) costVec
	testMutateCounts  func(world string, c Counts) Counts
)

// worldPaths maps package paths to the multiplication worlds certified
// against their Multiply entry point.
func worldsFor(path string) []World {
	var out []World
	for _, w := range Worlds() {
		if (w.FT && path == "repro/internal/ftparallel") ||
			(!w.FT && path == "repro/internal/parallel") {
			out = append(out, w)
		}
	}
	return out
}

func run(pass *framework.Pass) error {
	if pass.Summaries == nil || pass.Summaries.Graph == nil {
		return nil
	}
	if pass.Pkg != nil && pass.Pkg.Name() == "collective" {
		checkCollectives(pass)
	}
	if ws := worldsFor(pass.Path); len(ws) != 0 {
		checkWorlds(pass, ws)
	}
	return nil
}

// checkCollectives derives every certified collective declared in the
// package and compares it with the Table 1 closed form.
func checkCollectives(pass *framework.Pass) {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Recv != nil || fd.Body == nil {
				continue
			}
			expected, certified := expectedCollective(fd.Name.Name)
			if !certified {
				continue
			}
			if testMutateFormula != nil {
				expected = testMutateFormula(fd.Name.Name, expected)
			}
			fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
			node := nodeForDecl(pass.Summaries, fn)
			if node == nil {
				continue
			}
			derived, err := deriveCollective(pass.Summaries, pass.Fset, node)
			if err != nil {
				if _, incomplete := err.(missingNode); incomplete {
					continue // partial load set: not this package's fault
				}
				pass.Reportf(fd.Name.Pos(),
					"cannot certify %s against the paper closed form: %v",
					fd.Name.Name, err)
				continue
			}
			if derived.equal(expected) {
				continue
			}
			// Syntactically different: certified iff no world in the grid
			// separates them (the same finite domain protomc exhausts).
			_, witness, diverges := findWitness(derived, expected)
			if !diverges {
				continue
			}
			pass.ReportFormula(fd.Name.Pos(),
				fmt.Sprintf("derived %s ≠ expected %s", derived, expected),
				witness,
				"%s cost diverges from the paper closed form",
				fd.Name.Name)
		}
	}
}

// checkWorlds derives the package's Multiply entry over each certified
// finite world and compares the per-counter maxima with the Table 2
// recurrence values.
func checkWorlds(pass *framework.Pass, worlds []World) {
	var entryDecl *ast.FuncDecl
	var entryFn *types.Func
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if ok && fd.Recv == nil && fd.Name.Name == "Multiply" {
				entryDecl = fd
				entryFn, _ = pass.Info.Defs[fd.Name].(*types.Func)
			}
		}
	}
	if entryDecl == nil || entryFn == nil {
		return
	}
	node := nodeForDecl(pass.Summaries, entryFn)
	if node == nil {
		return
	}
	for _, w := range worlds {
		expected := w.Expected
		if testMutateCounts != nil {
			expected = testMutateCounts(w.Name, expected)
		}
		derived, err := deriveWorld(pass.Summaries, pass.Fset, node, w)
		if err != nil {
			if _, incomplete := err.(missingNode); incomplete {
				return // partial load set (single-package run): skip all worlds
			}
			pass.Reportf(entryDecl.Name.Pos(),
				"cannot certify world %s: %v", w.Name, err)
			continue
		}
		if derived == expected {
			continue
		}
		pass.ReportFormula(entryDecl.Name.Pos(),
			fmt.Sprintf("derived F=%d S=%d R=%d L=%d ≠ expected F=%d S=%d R=%d L=%d",
				derived.F, derived.S, derived.R, derived.L,
				expected.F, expected.S, expected.R, expected.L),
			fmt.Sprintf("world %s: P=%d k=%d F=%d ldfs=%d leaf=%d",
				w.Name, w.P, w.K, w.Faults, w.DFSSteps, w.Leaf),
			"Multiply cost diverges from the Table 2 recurrence on world %s",
			w.Name)
	}
}

// DeriveWorldCounts exposes the interpreter's per-world derivation for the
// crosscheck suite (static table vs. abstract interpretation vs. runtime).
func DeriveWorldCounts(sums *framework.Summaries, pkg *framework.Package, w World) (Counts, error) {
	var fn *types.Func
	for _, file := range pkg.Files {
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Recv == nil && fd.Name.Name == "Multiply" {
				fn, _ = pkg.Info.Defs[fd.Name].(*types.Func)
			}
		}
	}
	node := nodeForDecl(sums, fn)
	if node == nil {
		return Counts{}, fmt.Errorf("no Multiply entry in %s", pkg.Path)
	}
	return deriveWorld(sums, pkg.Fset, node, w)
}
