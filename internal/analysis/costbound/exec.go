package costbound

// exec.go executes Go statements and expressions over the abstract value
// domain of value.go, accumulating charges into the deriver's cost state.
// Control flow is exact where conditions decide and joins component-wise
// (cost: max; values: joinVal) where they don't. See interp.go for the
// mode rules.

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"

	"repro/internal/analysis/framework"
)

// trail records first-writes to cells so branch arms and widening passes
// can be rolled back. Writes under nested trails record into every open
// trail that has not yet seen the cell.
type trail struct {
	saved map[*cell]val
	order []*cell
}

func (d *deriver) pushTrail() *trail {
	t := &trail{saved: map[*cell]val{}}
	d.trails = append(d.trails, t)
	return t
}

// popTrail removes the top trail. If restore is set, every recorded cell is
// rolled back to its pre-trail value; the map of branch-final values is
// returned either way.
func (d *deriver) popTrail(restore bool) map[*cell]val {
	t := d.trails[len(d.trails)-1]
	d.trails = d.trails[:len(d.trails)-1]
	finals := map[*cell]val{}
	for _, c := range t.order {
		finals[c] = c.v
		if restore {
			c.v = t.saved[c]
		}
	}
	return finals
}

func (d *deriver) setCell(c *cell, v val) {
	for _, t := range d.trails {
		if _, seen := t.saved[c]; !seen {
			t.saved[c] = c.v
			t.order = append(t.order, c)
		}
	}
	c.v = v
}

func (d *deriver) info() *types.Info { return d.pkg.Info }

// ---------------------------------------------------------------------------
// Statements.

func (d *deriver) evalStmts(list []ast.Stmt, sc *scope) flow {
	for _, s := range list {
		if f := d.evalStmt(s, sc); f != flowNorm {
			return f
		}
	}
	return flowNorm
}

func (d *deriver) evalStmt(s ast.Stmt, sc *scope) flow {
	d.burn(s.Pos())
	switch st := s.(type) {
	case *ast.BlockStmt:
		return d.evalStmts(st.List, newScope(sc))
	case *ast.ExprStmt:
		d.evalExpr(st.X, sc)
		return flowNorm
	case *ast.AssignStmt:
		d.evalAssign(st, sc)
		return flowNorm
	case *ast.DeclStmt:
		gd, ok := st.Decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.VAR {
			d.fail(s.Pos(), "costbound: unmodeled declaration")
		}
		for _, spec := range gd.Specs {
			vs := spec.(*ast.ValueSpec)
			for i, name := range vs.Names {
				obj := d.info().Defs[name]
				var v val
				switch {
				case i < len(vs.Values):
					v = d.evalExpr(vs.Values[i], sc)
				case obj != nil:
					v = zeroVal(obj.Type())
				default:
					v = opaqueVal()
				}
				if obj != nil {
					sc.define(obj, v)
				}
			}
		}
		return flowNorm
	case *ast.IncDecStmt:
		cur := d.evalExpr(st.X, sc)
		one := intVal(1)
		var next val
		if st.Tok == token.INC {
			next = d.numBinop(token.ADD, cur, one, st.Pos())
		} else {
			next = d.numBinop(token.SUB, cur, one, st.Pos())
		}
		d.assignTo(st.X, next, sc)
		return flowNorm
	case *ast.IfStmt:
		sc2 := newScope(sc)
		if st.Init != nil {
			d.evalStmt(st.Init, sc2)
		}
		switch d.evalCond(st.Cond, sc2) {
		case triTrue:
			return d.evalStmts(st.Body.List, newScope(sc2))
		case triFalse:
			if st.Else != nil {
				return d.evalStmt(st.Else, sc2)
			}
			return flowNorm
		default:
			thenF := func(s2 *scope) flow { return d.evalStmts(st.Body.List, newScope(s2)) }
			elseF := func(s2 *scope) flow { return flowNorm }
			if st.Else != nil {
				elseF = func(s2 *scope) flow { return d.evalStmt(st.Else, s2) }
			}
			return d.joinArms(sc2, thenF, elseF)
		}
	case *ast.ForStmt:
		return d.evalFor(st, sc)
	case *ast.RangeStmt:
		return d.evalRange(st, sc)
	case *ast.ReturnStmt:
		d.evalReturn(st, sc)
		return flowRet
	case *ast.BranchStmt:
		switch st.Tok {
		case token.BREAK:
			if st.Label != nil {
				d.fail(s.Pos(), "costbound: labeled break unmodeled")
			}
			// break targets the innermost for OR switch; only a loop frame
			// records the exit cost (a switch frame just absorbs the flow).
			if n := len(d.loops); n > 0 && !d.loops[n-1].sw {
				d.loops[n-1].brks = append(d.loops[n-1].brks, d.cost)
			}
			return flowBrk
		case token.CONTINUE:
			if st.Label != nil {
				d.fail(s.Pos(), "costbound: labeled continue unmodeled")
			}
			return flowCont
		}
		d.fail(s.Pos(), "costbound: unmodeled branch statement %v", st.Tok)
	case *ast.SwitchStmt:
		return d.evalSwitch(st, sc)
	case *ast.DeferStmt:
		// Charges are additive, so running a deferred call at its defer
		// site instead of at function exit changes no counter totals.
		d.evalCall(st.Call, sc)
		return flowNorm
	case *ast.EmptyStmt:
		return flowNorm
	}
	d.fail(s.Pos(), "costbound: unmodeled statement %T", s)
	return flowNorm
}

// joinArms evaluates both arms of an undecided branch on a shared scope
// with trail-based rollback, joins written values, and takes the
// component-wise cost maximum. An arm that exits (return/break/continue)
// contributes its cost at the exit site (already recorded there); the
// surviving arm's environment wins unjoined.
func (d *deriver) joinArms(sc *scope, thenF, elseF func(*scope) flow) flow {
	d.joinDepth++
	defer func() { d.joinDepth-- }()

	pre := d.cost
	d.pushTrail()
	f1 := thenF(sc)
	thenCost := d.cost
	thenVals := d.popTrail(true)

	d.cost = pre
	d.pushTrail()
	f2 := elseF(sc)
	elseCost := d.cost
	elseOlds := map[*cell]val{}
	t2 := d.trails[len(d.trails)-1]
	for c, old := range t2.saved {
		elseOlds[c] = old
	}
	elseVals := d.popTrail(false) // keep else values for now

	// An exiting arm's cost is already recorded at its exit site (return →
	// exitRec, break → loopCtx.brks); the continuation carries only the
	// surviving arm's cost. Folding the exiting arm's cost in here would
	// charge its sends to every later iteration of an enclosing loop.
	thenExits := f1 == flowRet || f1 == flowBrk
	elseExits := f2 == flowRet || f2 == flowBrk
	switch {
	case thenExits && !elseExits:
		d.cost = elseCost
	case elseExits && !thenExits:
		d.cost = thenCost
	default:
		d.cost = thenCost.maxWith(elseCost)
	}

	switch {
	case thenExits && !elseExits:
		// keep else environment (already in place)
	case elseExits && !thenExits:
		// restore then environment
		for c, old := range elseOlds {
			c.v = old
		}
		for c, v := range thenVals {
			c.v = v
		}
	case !thenExits && !elseExits:
		touched := map[*cell]bool{}
		for c := range thenVals {
			touched[c] = true
		}
		for c := range elseVals {
			touched[c] = true
		}
		for c := range touched {
			tv, ok := thenVals[c]
			if !ok {
				if old, had := elseOlds[c]; had {
					tv = old // then arm left it at the pre-branch value
				} else {
					tv = c.v
				}
			}
			d.setCellNoTrail(c, joinVal(tv, c.v))
		}
	}

	switch {
	case f1 == f2:
		return f1
	case f1 == flowNorm || f2 == flowNorm, f1 == flowCont || f2 == flowCont:
		return flowNorm
	case f1 == flowBrk || f2 == flowBrk:
		return flowBrk
	}
	return flowRet
}

// setCellNoTrail writes through to enclosing trails (used while finishing a
// join: outer trails must still see the merge as a write).
func (d *deriver) setCellNoTrail(c *cell, v val) { d.setCell(c, v) }

func (d *deriver) evalReturn(st *ast.ReturnStmt, sc *scope) {
	var vals []val
	switch {
	case len(st.Results) == 0:
		for _, c := range d.curNamed {
			vals = append(vals, c.v)
		}
	case len(st.Results) == 1:
		v := d.evalExpr(st.Results[0], sc)
		if v.k == kTuple {
			vals = v.elems
		} else {
			vals = []val{v}
		}
	default:
		for _, r := range st.Results {
			vals = append(vals, d.evalExpr(r, sc))
		}
	}
	d.exits = append(d.exits, exitRec{cost: d.cost, vals: vals})
}

func (d *deriver) evalSwitch(st *ast.SwitchStmt, sc *scope) flow {
	sc2 := newScope(sc)
	if st.Init != nil {
		d.evalStmt(st.Init, sc2)
	}
	var tag val
	hasTag := st.Tag != nil
	if hasTag {
		tag = d.evalExpr(st.Tag, sc2)
	}
	var defaultClause *ast.CaseClause
	for _, c := range st.Body.List {
		cc := c.(*ast.CaseClause)
		if cc.List == nil {
			defaultClause = cc
			continue
		}
		for _, e := range cc.List {
			var t tri
			if hasTag {
				t = d.compareVals(token.EQL, tag, d.evalExpr(e, sc2), e.Pos())
			} else {
				t = d.evalCond(e, sc2)
			}
			switch t {
			case triTrue:
				return d.evalCaseBody(cc.Body, sc2)
			case triUnknown:
				d.fail(e.Pos(), "costbound: undecidable switch case")
			}
		}
	}
	if defaultClause != nil {
		return d.evalCaseBody(defaultClause.Body, sc2)
	}
	return flowNorm
}

// evalCaseBody runs a selected case body under a switch frame so that a
// bare break exits the switch (flowNorm), not an enclosing loop.
func (d *deriver) evalCaseBody(body []ast.Stmt, sc2 *scope) flow {
	d.loops = append(d.loops, &loopCtx{sw: true})
	f := d.evalStmts(body, newScope(sc2))
	d.loops = d.loops[:len(d.loops)-1]
	if f == flowBrk {
		return flowNorm
	}
	return f
}

// ---------------------------------------------------------------------------
// Loops.

func (d *deriver) evalFor(st *ast.ForStmt, sc *scope) flow {
	sc2 := newScope(sc)
	if st.Init != nil {
		d.evalStmt(st.Init, sc2)
	}
	// Try direct iteration first: whenever the condition decides at every
	// step (all concrete-mode loops, and constant-bounded symbolic ones),
	// run the loop for real.
	if st.Cond == nil {
		d.fail(st.Pos(), "costbound: unbounded for loop")
	}
	if c := d.evalCond(st.Cond, sc2); c != triUnknown {
		return d.iterateFor(st, sc2, c)
	}
	// Symbolic trip-count patterns.
	trip, ok := d.loopTrip(st, sc2)
	if !ok {
		d.fail(st.Pos(), "costbound: loop trip count not derivable")
	}
	return d.symbolicLoop(st.Body.List, sc2, trip, st.Pos(), nil)
}

// iterateFor executes a for loop whose condition decides concretely.
func (d *deriver) iterateFor(st *ast.ForStmt, sc2 *scope, first tri) flow {
	lc := &loopCtx{}
	d.loops = append(d.loops, lc)
	defer func() { d.loops = d.loops[:len(d.loops)-1] }()
	cond := first
	for iter := 0; ; iter++ {
		d.burn(st.Pos())
		if iter > 1<<21 {
			d.fail(st.Pos(), "costbound: loop iteration bound exceeded")
		}
		if cond == triUnknown {
			d.fail(st.Cond.Pos(), "costbound: loop condition became undecidable")
		}
		if cond == triFalse {
			break
		}
		f := d.evalStmts(st.Body.List, newScope(sc2))
		if f == flowRet {
			return flowRet
		}
		if f == flowBrk {
			break
		}
		if st.Post != nil {
			d.evalStmt(st.Post, sc2)
		}
		cond = d.evalCond(st.Cond, sc2)
	}
	for _, b := range lc.brks {
		d.cost = d.cost.maxWith(b)
	}
	return flowNorm
}

// loopTrip recognizes the two symbolic loop shapes of the protocol sources:
//
//	for x := c; x < N; x <<= 1  → ⌈log₂ N⌉ trips (doubling; x starts ≥ 1)
//	for x := c; x < N; x++      → N − c trips
func (d *deriver) loopTrip(st *ast.ForStmt, sc *scope) (framework.SymExpr, bool) {
	cond, ok := st.Cond.(*ast.BinaryExpr)
	if !ok || cond.Op != token.LSS {
		return framework.SymExpr{}, false
	}
	condVar, ok := cond.X.(*ast.Ident)
	if !ok {
		return framework.SymExpr{}, false
	}
	bound := d.evalExpr(cond.Y, sc)
	if bound.k != kNum || !bound.numOK {
		return framework.SymExpr{}, false
	}
	switch post := st.Post.(type) {
	case *ast.AssignStmt:
		if post.Tok == token.SHL_ASSIGN && len(post.Lhs) == 1 {
			if id, ok := post.Lhs[0].(*ast.Ident); ok && id.Name == condVar.Name {
				return framework.SymLog2Ceil(bound.num), true
			}
		}
	case *ast.IncDecStmt:
		if post.Tok == token.INC {
			if id, ok := post.X.(*ast.Ident); ok && id.Name == condVar.Name {
				init := framework.SymConst(0)
				if c := sc.findIdent(d.info(), condVar); c != nil {
					if c.v.k == kNum && c.v.numOK {
						init = c.v.num
					} else {
						return framework.SymExpr{}, false
					}
				}
				return bound.num.Sub(init), true
			}
		}
	}
	return framework.SymExpr{}, false
}

func (s *scope) findIdent(info *types.Info, id *ast.Ident) *cell {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return nil
	}
	return s.find(obj)
}

// symbolicLoop charges trip × per-iteration cost. Pass 1 widens the
// environment (accumulators with a stable additive delta get their closed
// form x₀ + delta·trip; anything else written becomes unknown); pass 2
// measures the per-iteration cost on the widened environment. A path that
// exits the loop contributes trip × (non-exiting cost) + its own one-shot
// cost — sound and component-wise tight for send-and-retire protocols.
// perIterExtra, when non-nil, runs inside each measured pass (used by
// range loops to bind the iteration variables).
func (d *deriver) symbolicLoop(body []ast.Stmt, sc *scope, trip framework.SymExpr, pos token.Pos, perIter func(*scope)) flow {
	pre := d.cost
	exitMark := len(d.exits)

	// Pass 1: widening. Breaks recorded during this speculative pass must
	// not leak into an enclosing loop's break set — push a throwaway ctx.
	d.loops = append(d.loops, &loopCtx{})
	d.pushTrail()
	sc1 := newScope(sc)
	if perIter != nil {
		perIter(sc1)
	}
	d.evalStmts(body, sc1)
	finals := d.popTrail(true)
	d.loops = d.loops[:len(d.loops)-1]
	d.exits = d.exits[:exitMark]
	d.cost = pre
	for c, after := range finals {
		before := c.v
		if before.k == kNum && before.numOK && after.k == kNum && after.numOK {
			delta := after.num.Sub(before.num)
			// Additive accumulator: publish its post-loop closed form.
			c.v = numVal(before.num.Add(delta.Mul(trip)))
			continue
		}
		if before.k == after.k {
			j := joinVal(before, after)
			// Stable across the iteration: keep; otherwise degrade.
			if before.k == kVec && before.numOK && after.numOK && before.w.Equal(after.w) {
				c.v = before
				continue
			}
			c.v = degrade(j)
			continue
		}
		c.v = joinVal(before, after) // cross-kind: maybe-nil or opaque
	}

	// Pass 2: measure on the widened environment — and restore it after, so
	// the measurement pass's own writes don't shift the published closed
	// forms (an accumulator would otherwise read x₀ + delta·trip + delta).
	lc := &loopCtx{}
	d.loops = append(d.loops, lc)
	d.pushTrail()
	sc2 := newScope(sc)
	if perIter != nil {
		perIter(sc2)
	}
	f := d.evalStmts(body, sc2)
	d.popTrail(true)
	d.loops = d.loops[:len(d.loops)-1]
	iter := d.cost.sub(pre)
	total := iter.scale(trip)
	d.cost = pre.add(total)
	for i := exitMark; i < len(d.exits); i++ {
		d.exits[i].cost = d.exits[i].cost.add(total)
	}
	for _, b := range lc.brks {
		d.cost = d.cost.maxWith(b.add(total))
	}
	if f == flowRet {
		// Every path through the body returns: the loop body runs at most
		// once to its return; the exits above carry the bound.
		return flowRet
	}
	return flowNorm
}

// degrade maps a joined value to its widened (unknown) form.
func degrade(v val) val {
	switch v.k {
	case kNum:
		return unknownNum()
	case kBool:
		return unknownBool()
	case kStr:
		return val{k: kStr}
	case kVec:
		return unknownVec()
	case kBig:
		return val{k: kBig}
	}
	return opaqueVal()
}

func (d *deriver) evalRange(st *ast.RangeStmt, sc *scope) flow {
	x := d.evalExpr(st.X, sc)
	sc2 := newScope(sc)

	bind := func(scIter *scope, key, value val) {
		if id, ok := st.Key.(*ast.Ident); ok && id.Name != "_" {
			d.bindRangeVar(scIter, id, key, st.Tok)
		}
		if st.Value != nil {
			if id, ok := st.Value.(*ast.Ident); ok && id.Name != "_" {
				d.bindRangeVar(scIter, id, value, st.Tok)
			}
		}
	}

	runIters := func(items []struct{ k, v val }) flow {
		lc := &loopCtx{}
		d.loops = append(d.loops, lc)
		defer func() { d.loops = d.loops[:len(d.loops)-1] }()
		for _, it := range items {
			d.burn(st.Pos())
			scIter := newScope(sc2)
			bind(scIter, it.k, it.v)
			f := d.evalStmts(st.Body.List, scIter)
			if f == flowRet {
				return flowRet
			}
			if f == flowBrk {
				break
			}
		}
		for _, b := range lc.brks {
			d.cost = d.cost.maxWith(b)
		}
		return flowNorm
	}

	switch x.k {
	case kSlice:
		items := make([]struct{ k, v val }, len(x.elems))
		for i, e := range x.elems {
			items[i] = struct{ k, v val }{intVal(int64(i)), e}
		}
		return runIters(items)
	case kMap:
		keys := make([]string, 0, len(x.m))
		for k := range x.m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		items := make([]struct{ k, v val }, 0, len(keys))
		for _, k := range keys {
			kv := x.mk[k]
			items = append(items, struct{ k, v val }{kv, x.m[k]})
		}
		return runIters(items)
	case kVec:
		if !x.numOK {
			d.fail(st.Pos(), "costbound: range over vector of unknown length")
		}
		if c, ok := x.w.IsConst(); ok {
			items := make([]struct{ k, v val }, c)
			for i := int64(0); i < c; i++ {
				items[i] = struct{ k, v val }{intVal(i), unitBig()}
			}
			return runIters(items)
		}
		return d.symbolicLoop(st.Body.List, sc2, x.w, st.Pos(), func(scIter *scope) {
			bind(scIter, unknownNum(), unitBig())
		})
	case kNum:
		if c, ok := x.constInt(); ok {
			items := make([]struct{ k, v val }, c)
			for i := int64(0); i < c; i++ {
				items[i] = struct{ k, v val }{intVal(i), val{}}
			}
			return runIters(items)
		}
		if x.numOK {
			return d.symbolicLoop(st.Body.List, sc2, x.num, st.Pos(), func(scIter *scope) {
				bind(scIter, unknownNum(), val{})
			})
		}
	case kGroupSym:
		return d.symbolicLoop(st.Body.List, sc2, x.n, st.Pos(), func(scIter *scope) {
			bind(scIter, unknownNum(), unknownNum())
		})
	case kNil:
		// Ranging over a nil slice or map: zero iterations.
		return flowNorm
	}
	d.fail(st.Pos(), "costbound: unmodeled range over %s", x.describe())
	return flowNorm
}

func (d *deriver) bindRangeVar(sc *scope, id *ast.Ident, v val, tok token.Token) {
	obj := d.info().Defs[id]
	if obj == nil {
		obj = d.info().Uses[id]
	}
	if obj == nil {
		return
	}
	if tok == token.DEFINE {
		sc.define(obj, v)
		return
	}
	if c := sc.find(obj); c != nil {
		d.setCell(c, v)
	}
}

// ---------------------------------------------------------------------------
// Assignment.

func (d *deriver) evalAssign(st *ast.AssignStmt, sc *scope) {
	if len(st.Lhs) > 1 && len(st.Rhs) == 1 {
		rhs := d.evalExpr(st.Rhs[0], sc)
		var parts []val
		if rhs.k == kTuple {
			parts = rhs.elems
		} else {
			// Comma-ok forms: map index, type assertion.
			parts = []val{rhs, unknownBool()}
			if ix, ok := st.Rhs[0].(*ast.IndexExpr); ok {
				base := d.evalExpr(ix.X, sc)
				if base.k == kMap {
					if key, kok := renderKey(d.evalExpr(ix.Index, sc)); kok {
						_, present := base.m[key]
						parts[1] = boolVal(present)
					}
				}
			}
		}
		for len(parts) < len(st.Lhs) {
			parts = append(parts, opaqueVal())
		}
		for i, lhs := range st.Lhs {
			d.assignLHS(st.Tok, lhs, parts[i], sc)
		}
		return
	}
	if len(st.Lhs) != len(st.Rhs) {
		d.fail(st.Pos(), "costbound: unmodeled assignment arity")
	}
	vals := make([]val, len(st.Rhs))
	for i, r := range st.Rhs {
		vals[i] = d.evalExpr(r, sc)
	}
	for i, lhs := range st.Lhs {
		v := vals[i]
		if st.Tok != token.ASSIGN && st.Tok != token.DEFINE {
			op := assignOp(st.Tok)
			cur := d.evalExpr(lhs, sc)
			v = d.binop(op, cur, v, st.Pos())
		}
		d.assignLHS(st.Tok, lhs, v, sc)
	}
}

func assignOp(t token.Token) token.Token {
	switch t {
	case token.ADD_ASSIGN:
		return token.ADD
	case token.SUB_ASSIGN:
		return token.SUB
	case token.MUL_ASSIGN:
		return token.MUL
	case token.QUO_ASSIGN:
		return token.QUO
	case token.REM_ASSIGN:
		return token.REM
	case token.SHL_ASSIGN:
		return token.SHL
	case token.SHR_ASSIGN:
		return token.SHR
	case token.AND_ASSIGN:
		return token.AND
	case token.OR_ASSIGN:
		return token.OR
	case token.XOR_ASSIGN:
		return token.XOR
	}
	return token.ILLEGAL
}

func (d *deriver) assignLHS(tok token.Token, lhs ast.Expr, v val, sc *scope) {
	if id, ok := lhs.(*ast.Ident); ok {
		if id.Name == "_" {
			return
		}
		if tok == token.DEFINE {
			if obj := d.info().Defs[id]; obj != nil {
				sc.define(obj, v)
				return
			}
			// := with a pre-declared variable on the left.
		}
	}
	d.assignTo(lhs, v, sc)
}

func (d *deriver) assignTo(lhs ast.Expr, v val, sc *scope) {
	switch t := lhs.(type) {
	case *ast.Ident:
		if t.Name == "_" {
			return
		}
		if c := sc.findIdent(d.info(), t); c != nil {
			d.setCell(c, v)
			return
		}
		d.fail(t.Pos(), "costbound: assignment to unbound %s", t.Name)
	case *ast.SelectorExpr:
		base := d.evalExpr(t.X, sc)
		if base.k == kStruct {
			base.st.fields[t.Sel.Name] = v
			return
		}
		if base.k == kOpaque {
			return
		}
		d.fail(t.Pos(), "costbound: field write on %s", base.describe())
	case *ast.IndexExpr:
		base := d.evalExpr(t.X, sc)
		idx := d.evalExpr(t.Index, sc)
		switch base.k {
		case kVec:
			return // unit-word entries: writes don't change the measure
		case kSlice:
			i, ok := idx.constInt()
			if !ok || i < 0 || int(i) >= len(base.elems) {
				d.fail(t.Pos(), "costbound: slice write at non-concrete index")
			}
			base.elems[i] = v
			return
		case kMap:
			key, ok := renderKey(idx)
			if !ok {
				d.fail(t.Pos(), "costbound: map write with non-concrete key")
			}
			base.m[key] = v
			base.mk[key] = idx
			return
		case kOpaque:
			return
		}
		d.fail(t.Pos(), "costbound: index write on %s", base.describe())
	case *ast.StarExpr:
		d.assignTo(t.X, v, sc)
	case *ast.ParenExpr:
		d.assignTo(t.X, v, sc)
	default:
		d.fail(lhs.Pos(), "costbound: unmodeled assignment target %T", lhs)
	}
}

func renderKey(v val) (string, bool) {
	switch v.k {
	case kNum:
		if c, ok := v.constInt(); ok {
			return fmt.Sprintf("i:%d", c), true
		}
	case kStr:
		if v.sOK {
			return "s:" + v.s, true
		}
	case kProc:
		if v.rank >= 0 {
			return fmt.Sprintf("p:%d", v.rank), true
		}
	}
	return "", false
}

// ---------------------------------------------------------------------------
// Conditions.

func (d *deriver) evalCond(e ast.Expr, sc *scope) tri {
	d.burn(e.Pos())
	if tv, ok := d.constValue(e); ok {
		if tv.k == kBool && tv.bOK {
			return knownTri(tv.b)
		}
	}
	switch x := e.(type) {
	case *ast.ParenExpr:
		return d.evalCond(x.X, sc)
	case *ast.UnaryExpr:
		if x.Op == token.NOT {
			switch d.evalCond(x.X, sc) {
			case triTrue:
				return triFalse
			case triFalse:
				return triTrue
			}
			return triUnknown
		}
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND:
			switch d.evalCond(x.X, sc) {
			case triFalse:
				return triFalse
			case triTrue:
				return d.evalCond(x.Y, sc)
			default:
				if d.evalCond(x.Y, sc) == triFalse {
					return triFalse
				}
				return triUnknown
			}
		case token.LOR:
			switch d.evalCond(x.X, sc) {
			case triTrue:
				return triTrue
			case triFalse:
				return d.evalCond(x.Y, sc)
			default:
				if d.evalCond(x.Y, sc) == triTrue {
					return triTrue
				}
				return triUnknown
			}
		case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			// Length-contract refinement: deciding a validation check on a
			// vector of not-yet-known length binds the length the code
			// itself asserts (the SPMD message-size contract).
			if t, ok := d.lenRefine(x, sc); ok {
				return t
			}
			return d.compareVals(x.Op, d.evalExpr(x.X, sc), d.evalExpr(x.Y, sc), x.Pos())
		}
	}
	v := d.evalExpr(e, sc)
	if v.k == kBool && v.bOK {
		return knownTri(v.b)
	}
	return triUnknown
}

// lenRefine handles `len(v) != N` / `len(v) == N` when v is a received
// vector whose length the send log has not yet supplied: the code's own
// validation constant becomes the binding (and the check decides so the
// error path is dead), matching the protocol's length contract.
func (d *deriver) lenRefine(x *ast.BinaryExpr, sc *scope) (tri, bool) {
	if x.Op != token.EQL && x.Op != token.NEQ {
		return triUnknown, false
	}
	try := func(lenSide, other ast.Expr) (tri, bool) {
		call, ok := lenSide.(*ast.CallExpr)
		if !ok || len(call.Args) != 1 {
			return triUnknown, false
		}
		fid, ok := call.Fun.(*ast.Ident)
		if !ok || fid.Name != "len" {
			return triUnknown, false
		}
		id, ok := call.Args[0].(*ast.Ident)
		if !ok {
			return triUnknown, false
		}
		c := sc.findIdent(d.info(), id)
		if c == nil || c.v.k != kVec || c.v.numOK {
			return triUnknown, false
		}
		want := d.evalExpr(other, sc)
		if want.k != kNum || !want.numOK {
			return triUnknown, false
		}
		d.setCell(c, vecVal(want.num))
		if x.Op == token.EQL {
			return triTrue, true
		}
		return triFalse, true
	}
	if t, ok := try(x.X, x.Y); ok {
		return t, true
	}
	return try(x.Y, x.X)
}

func (d *deriver) compareVals(op token.Token, a, b val, pos token.Pos) tri {
	if a.k == kNum && b.k == kNum {
		return cmpNums(op, a, b)
	}
	if a.k == kNil || b.k == kNil {
		other := a
		if a.k == kNil {
			other = b
		}
		n := nilness(other)
		if n == triUnknown {
			return triUnknown
		}
		eq := n == triTrue
		if op == token.EQL {
			return knownTri(eq)
		}
		return knownTri(!eq)
	}
	if a.k == kStr && b.k == kStr && a.sOK && b.sOK {
		switch op {
		case token.EQL:
			return knownTri(a.s == b.s)
		case token.NEQ:
			return knownTri(a.s != b.s)
		case token.LSS:
			return knownTri(a.s < b.s)
		}
	}
	if a.k == kBool && b.k == kBool && a.bOK && b.bOK {
		if op == token.EQL {
			return knownTri(a.b == b.b)
		}
		return knownTri(a.b != b.b)
	}
	if a.k == kProc && b.k == kProc {
		if a.rank >= 0 && b.rank >= 0 {
			if op == token.EQL {
				return knownTri(a.rank == b.rank)
			}
			return knownTri(a.rank != b.rank)
		}
		return triUnknown
	}
	if a.k == kStruct && b.k == kStruct {
		if op == token.EQL {
			return knownTri(a.st == b.st)
		}
		return knownTri(a.st != b.st)
	}
	return triUnknown
}

// ---------------------------------------------------------------------------
// Expressions.

// constValue resolves compile-time constants through go/types.
func (d *deriver) constValue(e ast.Expr) (val, bool) {
	tv, ok := d.info().Types[e]
	if !ok || tv.Value == nil {
		return val{}, false
	}
	switch tv.Value.Kind() {
	case constant.Int:
		if c, exact := constant.Int64Val(tv.Value); exact {
			return intVal(c), true
		}
	case constant.String:
		return strVal(constant.StringVal(tv.Value)), true
	case constant.Bool:
		return boolVal(constant.BoolVal(tv.Value)), true
	case constant.Float:
		if f, _ := constant.Float64Val(tv.Value); f == float64(int64(f)) {
			return intVal(int64(f)), true
		}
		return unknownNum(), true
	}
	return val{}, false
}

func (d *deriver) evalExpr(e ast.Expr, sc *scope) val {
	d.burn(e.Pos())
	if v, ok := d.constValue(e); ok {
		return v
	}
	switch x := e.(type) {
	case *ast.Ident:
		return d.evalIdent(x, sc)
	case *ast.ParenExpr:
		return d.evalExpr(x.X, sc)
	case *ast.StarExpr:
		return d.evalExpr(x.X, sc)
	case *ast.SelectorExpr:
		return d.evalSelector(x, sc)
	case *ast.BinaryExpr:
		switch x.Op {
		case token.LAND, token.LOR, token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
			switch d.evalCond(x, sc) {
			case triTrue:
				return boolVal(true)
			case triFalse:
				return boolVal(false)
			}
			return unknownBool()
		}
		return d.binop(x.Op, d.evalExpr(x.X, sc), d.evalExpr(x.Y, sc), x.Pos())
	case *ast.UnaryExpr:
		switch x.Op {
		case token.NOT:
			switch d.evalCond(x.X, sc) {
			case triTrue:
				return boolVal(false)
			case triFalse:
				return boolVal(true)
			}
			return unknownBool()
		case token.SUB:
			return d.numBinop(token.SUB, intVal(0), d.evalExpr(x.X, sc), x.Pos())
		case token.AND:
			return d.evalExpr(x.X, sc)
		case token.ADD:
			return d.evalExpr(x.X, sc)
		case token.XOR:
			v := d.evalExpr(x.X, sc)
			if c, ok := v.constInt(); ok {
				return intVal(^c)
			}
			return unknownNum()
		}
	case *ast.CallExpr:
		return d.evalCall(x, sc)
	case *ast.IndexExpr:
		return d.evalIndex(x, sc)
	case *ast.SliceExpr:
		return d.evalSlice(x, sc)
	case *ast.CompositeLit:
		return d.evalComposite(x, sc)
	case *ast.FuncLit:
		return val{k: kFunc, fn: &closure{lit: x, env: sc, pkg: d.pkg}}
	case *ast.TypeAssertExpr:
		return d.evalExpr(x.X, sc)
	case *ast.BasicLit:
		// Unreached in practice (constValue covers literals).
		return opaqueVal()
	}
	d.fail(e.Pos(), "costbound: unmodeled expression %T", e)
	return val{}
}

func (d *deriver) evalIdent(x *ast.Ident, sc *scope) val {
	if x.Name == "nil" {
		return nilVal()
	}
	obj := d.info().Uses[x]
	if obj == nil {
		obj = d.info().Defs[x]
	}
	if obj == nil {
		d.fail(x.Pos(), "costbound: unresolved identifier %s", x.Name)
	}
	if c := sc.find(obj); c != nil {
		return c.v
	}
	switch o := obj.(type) {
	case *types.Func:
		if n := d.sums.Graph.Nodes[framework.FuncKey(o)]; n != nil {
			return val{k: kFunc, fn: &closure{node: n}}
		}
		return val{k: kFunc, fn: &closure{}}
	case *types.Nil:
		return nilVal()
	}
	d.fail(x.Pos(), "costbound: unbound identifier %s (%T)", x.Name, obj)
	return val{}
}

func (d *deriver) evalSelector(x *ast.SelectorExpr, sc *scope) val {
	// Package-qualified name?
	if id, ok := x.X.(*ast.Ident); ok {
		if _, isPkg := d.info().Uses[id].(*types.PkgName); isPkg {
			obj := d.info().Uses[x.Sel]
			if fn, ok := obj.(*types.Func); ok {
				if n := d.sums.Graph.Nodes[framework.FuncKey(fn)]; n != nil {
					return val{k: kFunc, fn: &closure{node: n}}
				}
				return val{k: kFunc, fn: &closure{}}
			}
			// Constants were handled by constValue; package vars are out of
			// the modeled fragment.
			d.fail(x.Pos(), "costbound: unmodeled package member %s.%s", id.Name, x.Sel.Name)
		}
	}
	base := d.evalExpr(x.X, sc)
	switch base.k {
	case kStruct:
		if v, ok := base.st.fields[x.Sel.Name]; ok {
			return v
		}
		// A method value on the struct?
		if fn, ok := d.info().Uses[x.Sel].(*types.Func); ok {
			if n := d.sums.Graph.Nodes[framework.FuncKey(fn)]; n != nil {
				recv := base
				return val{k: kFunc, fn: &closure{node: n, recv: &recv}}
			}
		}
		d.fail(x.Pos(), "costbound: unknown field %s on %s", x.Sel.Name, base.st.typ)
	case kOpaque:
		return opaqueVal()
	case kProc, kMachine, kVec, kGroupSym, kSlice, kMap:
		// Method value (e.g. passing p.Send around) — bind receiver.
		if fn, ok := d.info().Uses[x.Sel].(*types.Func); ok {
			recv := base
			if n := d.sums.Graph.Nodes[framework.FuncKey(fn)]; n != nil {
				return val{k: kFunc, fn: &closure{node: n, recv: &recv}}
			}
			return val{k: kFunc, fn: &closure{recv: &recv}}
		}
	}
	d.fail(x.Pos(), "costbound: unmodeled selector on %s", base.describe())
	return val{}
}

func (d *deriver) evalIndex(x *ast.IndexExpr, sc *scope) val {
	base := d.evalExpr(x.X, sc)
	idx := d.evalExpr(x.Index, sc)
	switch base.k {
	case kVec:
		return unitBig()
	case kSlice:
		i, ok := idx.constInt()
		if !ok {
			// Reading any element of a uniform slice: join of all elements.
			if len(base.elems) > 0 {
				j := base.elems[0]
				for _, e := range base.elems[1:] {
					j = joinVal(j, e)
				}
				return j
			}
			d.fail(x.Pos(), "costbound: non-concrete index into empty slice")
		}
		if i < 0 || int(i) >= len(base.elems) {
			d.fail(x.Pos(), "costbound: slice index %d out of range [0,%d)", i, len(base.elems))
		}
		return base.elems[i]
	case kMap:
		key, ok := renderKey(idx)
		if !ok {
			d.fail(x.Pos(), "costbound: map read with non-concrete key")
		}
		if v, present := base.m[key]; present {
			return v
		}
		if t, ok := d.info().Types[x]; ok {
			return zeroVal(t.Type)
		}
		return opaqueVal()
	case kOpaque:
		// Element of an unmodeled container: unknown of the static type
		// (e.g. U()[j][m] is an unknown int64 coefficient, so `c == 0`
		// correctly forks into a worst-case join).
		if t, ok := d.info().Types[x]; ok {
			return d.genericResult(t.Type)
		}
		return opaqueVal()
	case kGroupSym:
		return unknownNum() // group members are ranks (ints)
	}
	d.fail(x.Pos(), "costbound: unmodeled index into %s", base.describe())
	return val{}
}

func (d *deriver) evalSlice(x *ast.SliceExpr, sc *scope) val {
	base := d.evalExpr(x.X, sc)
	lowV := intVal(0)
	if x.Low != nil {
		lowV = d.evalExpr(x.Low, sc)
	}
	switch base.k {
	case kVec:
		if !base.numOK {
			d.fail(x.Pos(), "costbound: slicing vector of unknown length")
		}
		highE := base.w
		if x.High != nil {
			h := d.evalExpr(x.High, sc)
			if h.k != kNum || !h.numOK {
				d.fail(x.Pos(), "costbound: non-derivable slice bound")
			}
			highE = h.num
		}
		if lowV.k != kNum || !lowV.numOK {
			d.fail(x.Pos(), "costbound: non-derivable slice bound")
		}
		return vecVal(highE.Sub(lowV.num))
	case kSlice:
		lo, ok1 := lowV.constInt()
		hi := int64(len(base.elems))
		ok2 := true
		if x.High != nil {
			hi, ok2 = d.evalExpr(x.High, sc).constInt()
		}
		if !ok1 || !ok2 || lo < 0 || hi < lo || int(hi) > len(base.elems) {
			d.fail(x.Pos(), "costbound: non-concrete slice bounds")
		}
		return val{k: kSlice, elems: base.elems[lo:hi]}
	case kOpaque:
		return opaqueVal()
	}
	d.fail(x.Pos(), "costbound: unmodeled slice of %s", base.describe())
	return val{}
}

// isIntVecType reports whether t is a limb-vector type ([]Int / Ints /
// machine.Ints — any slice whose element is a named type "Int").
func isIntVecType(t types.Type) bool {
	s, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	return framework.NamedTypeName(s.Elem()) == "Int"
}

func (d *deriver) evalComposite(x *ast.CompositeLit, sc *scope) val {
	tv, ok := d.info().Types[x]
	if !ok {
		d.fail(x.Pos(), "costbound: untyped composite literal")
	}
	t := tv.Type
	switch u := t.Underlying().(type) {
	case *types.Struct:
		sv := structV(framework.NamedTypeName(t))
		sv.st.pkg = namedTypePkgPath(t)
		for i := 0; i < u.NumFields(); i++ {
			sv.st.fields[u.Field(i).Name()] = zeroVal(u.Field(i).Type())
		}
		for i, el := range x.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				name := kv.Key.(*ast.Ident).Name
				sv.st.fields[name] = d.evalExpr(kv.Value, sc)
			} else {
				sv.st.fields[u.Field(i).Name()] = d.evalExpr(el, sc)
			}
		}
		return sv
	case *types.Slice, *types.Array:
		if isIntVecType(t) {
			for _, el := range x.Elts {
				d.evalExpr(el, sc)
			}
			return vecVal(framework.SymConst(int64(len(x.Elts))))
		}
		var elems []val
		for _, el := range x.Elts {
			if _, ok := el.(*ast.KeyValueExpr); ok {
				d.fail(x.Pos(), "costbound: keyed slice literal unmodeled")
			}
			elems = append(elems, d.evalExpr(el, sc))
		}
		return sliceVal(elems)
	case *types.Map:
		mv := val{k: kMap, m: map[string]val{}, mk: map[string]val{}}
		for _, el := range x.Elts {
			kv := el.(*ast.KeyValueExpr)
			key := d.evalExpr(kv.Key, sc)
			ks, ok := renderKey(key)
			if !ok {
				d.fail(x.Pos(), "costbound: map literal with non-concrete key")
			}
			mv.m[ks] = d.evalExpr(kv.Value, sc)
			mv.mk[ks] = key
		}
		return mv
	}
	d.fail(x.Pos(), "costbound: unmodeled composite literal type %s", t)
	return val{}
}

// ---------------------------------------------------------------------------
// Arithmetic.

func (d *deriver) binop(op token.Token, a, b val, pos token.Pos) val {
	if a.k == kStr || b.k == kStr {
		if op == token.ADD && a.sOK && b.sOK {
			return strVal(a.s + b.s)
		}
		return val{k: kStr}
	}
	return d.numBinop(op, a, b, pos)
}

func (d *deriver) numBinop(op token.Token, a, b val, pos token.Pos) val {
	// Opaque data arithmetic stays opaque (never feeds counts).
	if a.k == kOpaque || b.k == kOpaque || a.k == kBig || b.k == kBig {
		return unknownNum()
	}
	if a.k != kNum || b.k != kNum {
		d.fail(pos, "costbound: arithmetic on %s and %s", a.describe(), b.describe())
	}
	if !a.numOK || !b.numOK {
		return unknownNum()
	}
	ac, aok := a.num.IsConst()
	bc, bok := b.num.IsConst()
	if aok && bok {
		switch op {
		case token.ADD:
			return intVal(ac + bc)
		case token.SUB:
			return intVal(ac - bc)
		case token.MUL:
			return intVal(ac * bc)
		case token.QUO:
			if bc == 0 {
				d.fail(pos, "costbound: division by zero")
			}
			return intVal(ac / bc)
		case token.REM:
			if bc == 0 {
				d.fail(pos, "costbound: modulo by zero")
			}
			return intVal(ac % bc)
		case token.SHL:
			return intVal(ac << uint(bc))
		case token.SHR:
			return intVal(ac >> uint(bc))
		case token.AND:
			return intVal(ac & bc)
		case token.OR:
			return intVal(ac | bc)
		case token.XOR:
			return intVal(ac ^ bc)
		case token.AND_NOT:
			return intVal(ac &^ bc)
		}
		d.fail(pos, "costbound: unmodeled operator %v", op)
	}
	switch op {
	case token.ADD:
		return numVal(a.num.Add(b.num))
	case token.SUB:
		return numVal(a.num.Sub(b.num))
	case token.MUL:
		return numVal(a.num.Mul(b.num))
	case token.SHL:
		if bok && bc >= 0 && bc < 32 {
			return numVal(a.num.Scale(1 << uint(bc)))
		}
	case token.QUO:
		// Exact symbolic division when the coefficients divide; the
		// protocol's size arithmetic is exact by construction.
		if bok && bc > 0 {
			q := framework.SymCeilDiv(a.num, b.num)
			return numVal(q)
		}
	}
	return unknownNum()
}
