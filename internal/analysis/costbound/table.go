package costbound

import (
	"fmt"

	"repro/internal/analysis/framework"
)

// This file is the *paper* side of the certification: the closed forms of
// Table 1 (collectives) and the cost recurrences behind Tables 1/2 and
// Theorems 5.1-5.3 (multiplication tiers), encoded independently of the
// abstract interpreter. costbound.go compares what the interpreter derives
// from the real ASTs against these.

// ---------------------------------------------------------------------------
// Table 1: binomial-tree collectives, symbolic in g (group size) and W
// (payload words). Components are the per-counter maxima over participants,
// matching machine.Report.

// expectedCollective returns the paper's closed form for a top-level
// collective, or false if the name carries no certified formula.
func expectedCollective(name string) (costVec, bool) {
	g := framework.SymVar("g")
	w := framework.SymVar("W")
	lg := framework.SymLog2Ceil(g)
	zero := framework.SymConst(0)
	one := framework.SymConst(1)
	switch name {
	case "Broadcast":
		// Root relays down the binomial tree: ⌈log₂ g⌉ sends of W words;
		// every non-root receives the payload once.
		return costVec{F: zero, S: w.Mul(lg), R: w, L: lg}, true
	case "Reduce":
		// Root combines ⌈log₂ g⌉ child contributions (W word-ops each);
		// every non-root sends its partial once.
		return costVec{F: w.Mul(lg), S: w, R: w.Mul(lg), L: one}, true
	}
	return costVec{}, false
}

// witnessGrid is the protomc-style world grid the witness search walks:
// every certified collective formula is over g and W only.
var witnessGrid = struct {
	g []int64
	w []int64
}{
	g: []int64{2, 3, 4, 5},
	w: []int64{1, 2, 3, 5, 8},
}

// findWitness searches the world grid for a concrete assignment separating
// the two cost polynomials. It returns the environment, a parseable
// rendering ("g=2 W=4: S derived=.. expected=.."), and whether one exists.
// Polynomials that agree on the whole grid but differ syntactically are
// reported without a witness (the diagnostic still fires on the formulas).
func findWitness(derived, expected costVec) (map[string]int64, string, bool) {
	for _, g := range witnessGrid.g {
		for _, w := range witnessGrid.w {
			env := map[string]int64{"g": g, "W": w}
			df, ds, dr, dl, err := derived.eval(env)
			if err != nil {
				continue
			}
			ef, es, er, el, err := expected.eval(env)
			if err != nil {
				continue
			}
			var counter string
			var got, want int64
			switch {
			case df != ef:
				counter, got, want = "F", df, ef
			case ds != es:
				counter, got, want = "S", ds, es
			case dr != er:
				counter, got, want = "R", dr, er
			case dl != el:
				counter, got, want = "L", dl, el
			default:
				continue
			}
			return env, fmt.Sprintf("g=%d W=%d: %s derived=%d expected=%d",
				g, w, counter, got, want), true
		}
	}
	return nil, "", false
}

// ---------------------------------------------------------------------------
// Tables 1/2 recurrences for the finite crosscheck worlds. These evaluate
// the paper's per-level cost sums exactly (unit-word model, worst-case F:
// no structural-zero or zero-entry skips), so S/R/L match the runtime
// Stats exactly and F dominates them.

// Counts is an exact four-counter tally for one finite world: F word
// operations, S sent words, R received words, L messages — per-processor
// maxima, mirroring machine.Report.
type Counts struct {
	F, S, R, L int64
}

func (c Counts) add(d Counts) Counts {
	return Counts{c.F + d.F, c.S + d.S, c.R + d.R, c.L + d.L}
}

func maxCounts(a, b Counts) Counts {
	return Counts{max64(a.F, b.F), max64(a.S, b.S), max64(a.R, b.R), max64(a.L, b.L)}
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// World describes one finite configuration of a multiplication tier
// together with the paper's expected cost maxima.
type World struct {
	Name     string
	FT       bool // ftparallel.Multiply vs parallel.Multiply
	P        int  // worker processors
	K        int  // Toom-Cook parameter
	Faults   int  // FT redundancy F (zero injected faults)
	DFSSteps int
	Leaf     int // LeafFactor
	Digits   int // total digit count the plan derives
	Expected Counts
}

// Worlds returns the certified crosscheck worlds: both tiers, with and
// without a DFS level, smallest legal grids.
func Worlds() []World {
	ws := []World{
		{Name: "parallel/P3k2", FT: false, P: 3, K: 2, DFSSteps: 0, Leaf: 1},
		{Name: "parallel/P3k2+dfs", FT: false, P: 3, K: 2, DFSSteps: 1, Leaf: 1},
		{Name: "ftparallel/P3k2F1", FT: true, P: 3, K: 2, Faults: 1, DFSSteps: 0, Leaf: 1},
		{Name: "ftparallel/P3k2F1+dfs", FT: true, P: 3, K: 2, Faults: 1, DFSSteps: 1, Leaf: 1},
	}
	for i := range ws {
		w := &ws[i]
		cols := 2*w.K - 1
		levels := w.DFSSteps + intLog(w.P, cols)
		w.Digits = ipow(w.K, levels) * w.Leaf * w.P
		if w.FT {
			w.Expected = ftCounts(w.P, w.K, w.Faults, w.DFSSteps, w.Digits)
		} else {
			w.Expected = parallelCounts(w.P, w.K, w.DFSSteps, w.Digits)
		}
	}
	return ws
}

// MachineP returns the simulated machine size the world runs on.
func (w World) MachineP() int {
	if !w.FT {
		return w.P
	}
	cols := 2*w.K - 1
	gP := w.P / cols
	// Workers + one linear-code rank per grid column + F polynomial-code
	// ranks per grid row.
	return 2*w.P + w.Faults*gP
}

// ---------------------------------------------------------------------------
// Section 3 recurrence (plain parallel tier). All processors are SPMD
// symmetric, so the per-processor tally is the per-counter maximum.

// parallelCounts evaluates the Section 3 recurrence for P processors,
// Toom-Cook-k, l_DFS sequential levels and `digits` total digits.
func parallelCounts(p, k, ldfs, digits int) Counts {
	var c Counts
	parallelNode(&c, p, digits/p, k, ldfs, 0)
	return c
}

// parallelNode adds one recursion node's per-processor cost: g group
// members, s digits held per member. Result vectors have 2s entries per
// member (redundant digit representation).
func parallelNode(c *Counts, g, s, k, ldfs, level int) {
	cols := 2*k - 1
	switch {
	case level < ldfs:
		// DFS step: 2k-1 sequential sub-problems, no communication.
		lb := s / k
		for j := 0; j < cols; j++ {
			c.F += int64(4 * s) // two local evaluations, 2·(s/k)·k word-ops each
			parallelNode(c, g, lb, k, ldfs, level+1)
			c.F += int64(2 * cols * 2 * lb) // fold W^T column j into 2k-1 coefficients
		}
	case g > 1:
		// BFS step on the (g/(2k-1)) × (2k-1) grid.
		lb := s / k
		c.F += int64(4 * cols * s)            // evaluate all 2k-1 rows of both operands
		c.S += int64(2 * (cols - 1) * lb)     // downward exchange (operands A and B)
		c.R += int64(2 * (cols - 1) * lb)
		c.L += int64(2 * (cols - 1))
		parallelNode(c, g/cols, lb*cols, k, ldfs, level+1)
		c.S += int64((cols - 1) * 2 * lb)     // upward exchange of product classes
		c.R += int64((cols - 1) * 2 * lb)
		c.L += int64(cols - 1)
		c.F += int64(4 * cols * cols * lb)    // fold: (2k-1)² weights over 2·(s/k) entries
	default:
		// Leaf: recompose (2s word-ops) and multiply (s² schoolbook bound).
		c.F += int64(2*s + s*s)
	}
}

// ---------------------------------------------------------------------------
// Section 4/5 recurrence (fault-tolerant tier, zero injected faults).
// Three roles: workers (grid columns 0..2k-2), linear-code ranks (one per
// worker, roots of the input/product erasure codes), and polynomial-code
// ranks (virtual grid columns 2k-1..2k-1+F-1).

func ftCounts(p, k, faults, ldfs, digits int) Counts {
	cols := 2*k - 1
	gP := p / cols
	total := 2*p + faults*gP
	logT := int64(ceilLog2(int64(total)))

	var worker, linear, poly Counts

	// createInputCode: each worker scales its 2·digits/P input share and
	// reduces it onto its linear-code root (binomial reduce over 2 ranks).
	inVec := int64(2 * digits / p)
	worker.F += inVec
	worker.S += inVec
	worker.L++
	linear.F += 2 * inVec
	linear.R += inVec

	// Barrier(PhaseEval), charged once to every rank.
	barrier := Counts{S: logT, L: logT}
	worker = worker.add(barrier)
	linear = linear.add(barrier)
	poly = poly.add(barrier)

	ftNode(&worker, &linear, &poly, p, k, faults, gP, logT, digits, ldfs, 0)

	return maxCounts(maxCounts(worker, linear), poly)
}

// ftNode adds one FT recursion level's per-role cost at lenTotal digits.
func ftNode(worker, linear, poly *Counts, p, k, faults, gP int, logT int64, lenTotal, ldfs, level int) {
	cols := 2*k - 1
	if level < ldfs {
		// DFS level: workers evaluate both operands locally (applyRowBlocks
		// over the 2·lenTotal/P-word share, twice) and accumulate each
		// child product into the 2k-1 coefficient blocks; code ranks only
		// follow the recursion.
		shareLen := int64(lenTotal / p)
		childLen := int64(2 * lenTotal / k / p)
		for j := 0; j < cols; j++ {
			worker.F += 4 * shareLen
			ftNode(worker, linear, poly, p, k, faults, gP, logT, lenTotal/k, ldfs, level+1)
			worker.F += 2 * int64(cols) * childLen
		}
		return
	}

	// BFS step with F redundant columns.
	numCols := cols + faults
	shareLen := int64(lenTotal / p)
	per := int64(lenTotal / (k * p))
	prodLen := int64(2 * lenTotal / (k * gP))
	perUp := prodLen / int64(cols)

	// Evaluation over all real+virtual columns, downward redistribution.
	worker.F += 4 * int64(numCols) * shareLen
	worker.S += int64(numCols-1) * 2 * per // to every other column's row-mate
	worker.L += int64(numCols - 1)
	worker.R += int64(cols-1) * 2 * per // from every other worker column
	poly.R += int64(cols) * 2 * per     // virtual columns receive from all workers

	// Barrier(PhaseMul).
	barrier := Counts{S: logT, L: logT}
	*worker = worker.add(barrier)
	*linear = linear.add(barrier)
	*poly = poly.add(barrier)

	// Column subtree: plain parallel leaf over per·(2k-1) digits (gP = 1 in
	// the certified worlds; larger grids would recurse parallelNode here).
	sub := int64(per) * int64(cols)
	worker.F += 2*sub + sub*sub
	poly.F += 2*sub + sub*sub

	// createProductCode: workers reduce their child product onto their
	// linear-code root; virtual columns carry no code rank.
	worker.F += prodLen
	worker.S += prodLen
	worker.L++
	linear.F += 2 * prodLen
	linear.R += prodLen

	// Barrier(PhaseInterp).
	*worker = worker.add(barrier)
	*linear = linear.add(barrier)
	*poly = poly.add(barrier)

	// Upward exchange among the 2k-1 surviving (worker) columns; virtual
	// columns are not survivors under zero faults and return before it.
	worker.S += int64(cols-1) * perUp
	worker.R += int64(cols-1) * perUp
	worker.L += int64(cols - 1)

	// Fold with the lcm-scaled interpolation weights, plus the final
	// denominator-alignment rescale of the 2·lenTotal/P output entries.
	worker.F += 2*int64(cols)*int64(cols)*perUp + int64(2*lenTotal/p)
}

// ---------------------------------------------------------------------------
// Exact evaluation of the collective closed forms, exported for the
// crosscheck suite (static table vs. costacct runtime).

// ExpectedBroadcast evaluates the Table 1 Broadcast form at g, w.
func ExpectedBroadcast(g, w int64) Counts {
	return evalCollective("Broadcast", g, w)
}

// ExpectedReduce evaluates the Table 1 Reduce form at g, w.
func ExpectedReduce(g, w int64) Counts {
	return evalCollective("Reduce", g, w)
}

func evalCollective(name string, g, w int64) Counts {
	form, ok := expectedCollective(name)
	if !ok {
		panic("costbound: no formula for " + name)
	}
	env := map[string]int64{"g": g, "W": w}
	f, s, r, l, err := form.eval(env)
	if err != nil {
		panic("costbound: " + err.Error())
	}
	return Counts{f, s, r, l}
}

// intLog returns log_b(v) for exact powers, -1 otherwise.
func intLog(v, b int) int {
	if v < 1 || b < 2 {
		return -1
	}
	l := 0
	for v > 1 {
		if v%b != 0 {
			return -1
		}
		v /= b
		l++
	}
	return l
}

func ipow(base, exp int) int {
	out := 1
	for i := 0; i < exp; i++ {
		out *= base
	}
	return out
}
