// Fixture for the costcharge analyzer, named "toom" so its synthetic import
// path falls under the cost-accounting rule. Miniature stand-ins for Int,
// Acc, Stats, and Proc are matched by name.
package toom

type Int struct{ v int }

func (x Int) Add(y Int) Int        { return x }
func (x Int) Sub(y Int) Int        { return x }
func (x Int) Mul(y Int) Int        { return x }
func (x Int) MulInt64(v int64) Int { return x }
func (x Int) Shl(s uint) Int       { return x }
func (x Int) Neg() Int             { return x }
func (x Int) IsZero() bool         { return x.v == 0 }
func (x Int) WordLen() int         { return x.v }

type Acc struct{ v int }

func (a *Acc) AddMul(x Int, c int64) {}
func (a *Acc) Take() Int             { return Int{} }

type Stats struct{ WordOps int64 }

func (s *Stats) chargeWords(n int64) {
	if s != nil {
		s.WordOps += n
	}
}

type Proc struct{ flops int64 }

func (p *Proc) Work(n int64) { p.flops += n }

// Uncharged performs limb arithmetic with no channel to the cost model.
func Uncharged(x, y Int) Int { // want "no channel to the F/BW/L cost model"
	return x.Add(y)
}

// UnchargedAcc is the accumulator flavor of the same violation.
func UnchargedAcc(xs []Int) Int { // want "no channel to the F/BW/L cost model"
	var a Acc
	for _, x := range xs {
		a.AddMul(x, 3)
	}
	return a.Take()
}

// ChargedDirect charges Stats itself.
func ChargedDirect(x, y Int, stats *Stats) Int {
	stats.chargeWords(int64(x.WordLen()))
	return x.Add(y)
}

// ChargedProc charges through the machine processor.
func ChargedProc(p *Proc, x, y Int) Int {
	p.Work(2)
	return x.Mul(y)
}

// Endpoint stands in for the transport-seam cost carrier
// (costacct.Endpoint in the real tree, what machine.Proc charges through);
// it is a witness type like Stats and Proc.
type Endpoint struct{ flops int64 }

func (e *Endpoint) Work(n int64) { e.flops += n }

// ChargedEndpoint charges through the transport-seam endpoint.
func ChargedEndpoint(e *Endpoint, x, y Int) Int {
	e.Work(int64(x.WordLen()))
	return x.Mul(y)
}

// ChargedDelegate routes through a cost-aware callee; passing nil Stats is
// the documented caller opt-out, the channel still exists.
func ChargedDelegate(x, y Int) Int {
	return addWithStats(x, y, nil)
}

func addWithStats(x, y Int, stats *Stats) Int {
	stats.chargeWords(int64(x.WordLen()))
	return x.Add(y)
}

// FakeDelegate is the charge-via-helper hole the signature heuristic could
// not see: the helper accepts a *Stats but provably never charges it, so
// the summary refuses to count the call as a witness for the Sub below.
func FakeDelegate(x, y Int) Int { // want "no channel to the F/BW/L cost model"
	z := x.Sub(y)
	return addIgnoringStats(z, y, nil)
}

func addIgnoringStats(x, y Int, stats *Stats) Int {
	_ = stats
	return x
}

// DeepDelegate charges through two helper hops; the summary's transitive
// charge reachability proves the channel exists.
func DeepDelegate(x, y Int, stats *Stats) Int {
	z := x.Sub(y)
	return viaHop(z, y, stats)
}

func viaHop(x, y Int, stats *Stats) Int {
	return addWithStats(x, y, stats)
}

// unexported functions are not checked: their cost is their callers' duty.
func unexportedHelper(x, y Int) Int {
	return x.Sub(y)
}

// Structural reports no finding: Neg/IsZero/WordLen are bookkeeping, not
// limb arithmetic.
func Structural(x Int) bool {
	return x.Neg().IsZero()
}

//ftlint:allow costcharge fixture: host-side assembly outside the model
func Exempt(x, y Int) Int {
	return x.Add(y)
}
