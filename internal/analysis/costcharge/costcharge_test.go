package costcharge_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/costcharge"
)

func TestCostCharge(t *testing.T) {
	analysistest.Run(t, costcharge.Analyzer, "toom")
}
