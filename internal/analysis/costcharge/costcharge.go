// Package costcharge keeps the paper's Table 1/2 accounting honest: an
// exported function in the algorithm packages (internal/toom,
// internal/parallel, internal/ftparallel) that performs limb arithmetic must
// have a channel to the F/BW/L cost model, so that enabling accounting can
// never silently miss work. A function satisfies the invariant when it
// either
//
//   - charges directly — calls (*toom.Stats).chargeWords or a
//     (*machine.Proc) costing method such as Work/Send/Recv — or
//   - delegates to a cost-aware callee: any call whose target function has a
//     receiver or parameter of type Stats, Proc, or Machine (passing a nil
//     *Stats is the documented caller opt-out; the channel still exists).
//
// Since PR 4 the delegation arm is verified, not assumed: when the callee
// has an interprocedural summary (framework/summary.go), it only counts as
// a witness if some path through it actually reaches a chargeWords/Proc
// charge, transitively. A helper that accepts a *Stats and ignores it —
// the charge-via-helper hole the signature heuristic could not see — no
// longer silences the analyzer. Callees without a summary (outside the
// loaded set) still count by signature.
//
// "Limb arithmetic" means calling a mutating/combining method on bigint.Int
// or bigint.Acc (Add, Sub, Mul, MulInt64, Shl, Shr, DivExactInt64,
// QuoRemWord, AddMul, DivExact). Cheap structural accessors (Sign, Abs, Neg,
// IsZero, BitLen, WordLen, Extract, Cmp) are deliberately excluded — the
// model charges word-touching arithmetic, not bookkeeping.
//
// Primitives whose cost is charged by their callers (toom.ApplyRows via
// RowsWork, toom.Recompose via the recursion's recomposition charge) and
// host-side code outside the machine model carry explicit
// `//ftlint:allow costcharge <rationale>` comments.
package costcharge

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "costcharge",
	Doc:  "exported algorithm functions doing limb arithmetic must charge (or be able to charge) the F/BW/L cost model",
	Run:  run,
}

// governed lists the package path segments under the cost-accounting rule.
var governed = []string{"toom", "parallel", "ftengine", "ftparallel", "ftmatmul"}

// arithMethods lists the limb-arithmetic methods per receiver type name.
var arithMethods = map[string]map[string]bool{
	"Int": {
		"Add": true, "Sub": true, "Mul": true, "MulInt64": true,
		"Shl": true, "Shr": true, "DivExactInt64": true, "QuoRemWord": true,
	},
	"Acc": {
		"Add": true, "Sub": true, "AddMul": true,
		"Shl": true, "DivExact": true,
	},
}

// witnessTypes are the cost-model carrier types: a call into a function that
// receives one of these can charge (or forward) costs. Endpoint is the
// transport-seam carrier (costacct.Endpoint wraps every backend and is what
// machine.Proc charges through).
var witnessTypes = map[string]bool{"Stats": true, "Proc": true, "Machine": true, "Endpoint": true}

func run(pass *framework.Pass) error {
	target := false
	for _, seg := range governed {
		if framework.PathHasSegment(pass.Path, seg) {
			target = true
			break
		}
	}
	if !target {
		return nil
	}
	framework.FuncDecls(pass.Files, func(fd *ast.FuncDecl) {
		if !fd.Name.IsExported() {
			return
		}
		if isWorkloadHostHook(pass, fd) {
			return
		}
		checkFunc(pass, fd)
	})
	return nil
}

// isWorkloadHostHook exempts the ftengine.Workload read-out hooks: Decode and
// Recombine run host-side after machine.Run collects every rank, and the
// theorems do not charge result reassembly to the processors (the same rule
// the parallel tier's host-side assembly documents). The exemption is proved,
// not pattern-matched: the receiver type must implement the engine's Workload
// interface. Shard and Step stay fully governed — Step holds the *Proc.
func isWorkloadHostHook(pass *framework.Pass, fd *ast.FuncDecl) bool {
	if fd.Recv == nil || (fd.Name.Name != "Decode" && fd.Name.Name != "Recombine") {
		return false
	}
	fn, _ := pass.Info.Defs[fd.Name].(*types.Func)
	if fn == nil {
		return false
	}
	sig, _ := fn.Type().(*types.Signature)
	if sig == nil || sig.Recv() == nil {
		return false
	}
	for _, imp := range pass.Pkg.Imports() {
		if !framework.PathHasSegment(imp.Path(), "ftengine") {
			continue
		}
		obj := imp.Scope().Lookup("Workload")
		if obj == nil {
			continue
		}
		iface, ok := obj.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		if types.Implements(sig.Recv().Type(), iface) {
			return true
		}
	}
	return false
}

func checkFunc(pass *framework.Pass, fd *ast.FuncDecl) {
	arith := 0
	witness := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if recv := framework.RecvTypeName(pass.Info, call); recv != "" {
			if set := arithMethods[recv]; set != nil {
				if callee := framework.CalleeIdent(call); callee != nil && set[callee.Name] {
					arith++
				}
			}
		}
		if isWitness(pass, call) {
			witness = true
		}
		return true
	})
	if arith > 0 && !witness {
		pass.Reportf(fd.Name.Pos(), "exported function %s performs limb arithmetic (%d call(s)) but has no channel to the F/BW/L cost model: thread a *Stats/*Proc or delegate to a cost-aware callee (//ftlint:allow costcharge to exempt)",
			fd.Name.Name, arith)
	}
}

// isWitness reports whether the call can charge the cost model: its target
// function touches a Stats/Proc/Machine as receiver or parameter, and —
// when the callee's summary is available — some path through it provably
// reaches a charge.
func isWitness(pass *framework.Pass, call *ast.CallExpr) bool {
	fn := framework.CalleeFunc(pass.Info, call)
	if fn == nil {
		return false
	}
	if !carriesWitnessType(fn) {
		return false
	}
	if sum := pass.Summaries.OfFunc(fn); sum != nil {
		// Verified delegation: the carrier must actually be chargeable.
		return sum.Charges
	}
	return true
}

// carriesWitnessType is the pre-summary signature heuristic.
func carriesWitnessType(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return false
	}
	if recv := sig.Recv(); recv != nil && witnessTypes[framework.NamedTypeName(recv.Type())] {
		return true
	}
	params := sig.Params()
	for i := 0; i < params.Len(); i++ {
		if witnessTypes[framework.NamedTypeName(params.At(i).Type())] {
			return true
		}
	}
	return false
}
