// Package analysistest runs an ftlint analyzer over self-contained fixture
// packages under testdata/src and checks its findings against `// want`
// comments, mirroring golang.org/x/tools/go/analysis/analysistest (which the
// build environment does not provide).
//
// A fixture line expecting diagnostics carries a trailing comment
//
//	x := f() // want "regexp" "another regexp"
//
// with one quoted regexp per expected finding on that line. The run fails on
// any unmatched expectation and on any unexpected finding. Fixture packages
// must be import-free: they declare miniature stand-ins for the types the
// analyzers match by name (arena, Acc, Int, Stats, Proc, nat) instead of
// importing repro/internal packages.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"testing"

	"repro/internal/analysis/framework"
)

type noImporter struct{}

func (noImporter) Import(path string) (*types.Package, error) {
	return nil, fmt.Errorf("analysistest fixtures must not import packages (got %q)", path)
}

var wantRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// Run analyzes the fixture package testdata/src/<pkg> (relative to the test's
// working directory) with a and compares findings to // want comments. The
// fixture's import path is its directory name, so path-scoped analyzers can
// be exercised by naming fixtures "toom", "parallel", etc.
func Run(t *testing.T, a *framework.Analyzer, pkg string) {
	t.Helper()
	dir := filepath.Join("testdata", "src", pkg)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := framework.NewInfo()
	conf := types.Config{Importer: noImporter{}}
	tpkg, err := conf.Check(pkg, fset, files, info)
	if err != nil {
		t.Fatalf("type-checking fixture: %v", err)
	}

	diags, err := framework.Run(a, &framework.Package{
		Path:  pkg,
		Fset:  fset,
		Files: files,
		Types: tpkg,
		Info:  info,
	})
	if err != nil {
		t.Fatalf("running analyzer: %v", err)
	}

	// Collect expectations: file -> line -> pending regexps.
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := indexWant(text)
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				k := key{pos.Filename, pos.Line}
				for _, m := range wantRE.FindAllStringSubmatch(text[idx:], -1) {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, m[1], err)
					}
					wants[k] = append(wants[k], re)
				}
			}
		}
	}

	for _, d := range diags {
		k := key{d.Position.Filename, d.Position.Line}
		pending := wants[k]
		matched := -1
		for i, re := range pending {
			if re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			t.Errorf("%s:%d: unexpected finding: %s", k.file, k.line, d.Message)
			continue
		}
		wants[k] = append(pending[:matched], pending[matched+1:]...)
	}

	var leftover []string
	for k, pending := range wants {
		for _, re := range pending {
			leftover = append(leftover, fmt.Sprintf("%s:%d: expected finding matching %q, got none", k.file, k.line, re))
		}
	}
	sort.Strings(leftover)
	for _, msg := range leftover {
		t.Error(msg)
	}
}

// indexWant finds the "// want" marker inside a comment's raw text.
func indexWant(text string) int {
	for i := 0; i+6 <= len(text); i++ {
		if text[i:i+4] == "want" && (i == 0 || text[i-1] == ' ' || text[i-1] == '/') {
			// Require it to look like a marker followed by a quote somewhere.
			rest := text[i+4:]
			for j := 0; j < len(rest); j++ {
				switch rest[j] {
				case ' ', '\t':
					continue
				case '"':
					return i
				default:
					j = len(rest)
				}
			}
		}
	}
	return -1
}
