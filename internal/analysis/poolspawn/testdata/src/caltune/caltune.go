// Fixture for the poolspawn analyzer, named "caltune" so its synthetic
// import path falls under the pool-governed rule: the calibrator times the
// kernels sequentially and must not perturb its own measurements (or skew
// GOMAXPROCS accounting) with background goroutines.
package caltune

func timeAll(sizes []int, probe func(int)) {
	for _, n := range sizes {
		probe(n)
	}
}

func timeAllBackground(sizes []int, probe func(int)) {
	for _, n := range sizes {
		go probe(n) // want "raw go statement"
	}
}
