// Fixture for the poolspawn analyzer, named "toom" so its synthetic import
// path falls under the pool-governed rule.
package toom

type waitGroup struct{ n int }

func (w *waitGroup) Add(delta int) { w.n += delta }
func (w *waitGroup) Done()         { w.n-- }

func spawnRaw(fn func()) {
	go fn() // want "raw go statement"
}

func spawnClosure(wg *waitGroup) {
	wg.Add(1)
	go func() { // want "raw go statement"
		defer wg.Done()
	}()
}

func spawnAllowed(fn func()) {
	//ftlint:allow poolspawn fixture: this is the pool's own worker launch
	go fn()
}
