// Fixture for the poolspawn analyzer, named "simnet" so its synthetic
// import path matches the transport-backend entry in the governed list:
// the machine's network backends are under the no-raw-goroutines rule just
// like the algorithm packages above them.
package simnet

type endpoint struct{ rank int }

func deliverAsync(e *endpoint, fn func()) {
	go fn() // want "raw go statement"
}

func runProc(e *endpoint, body func(*endpoint) error) {
	//ftlint:allow poolspawn fixture: the backend's per-processor launch is the sanctioned pool
	go func() { _ = body(e) }()
}
