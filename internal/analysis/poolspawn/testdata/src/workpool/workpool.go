// Fixture for the poolspawn analyzer, named "workpool" so its synthetic
// import path falls under the pool-governed rule: even the pool package
// itself may only launch goroutines at its audited worker-spawn site.
package workpool

type token struct{}

// Fork mirrors internal/workpool: the one sanctioned goroutine launch,
// carrying the audit annotation.
func Fork(slots chan token, fn func()) {
	select {
	case t := <-slots:
		//ftlint:allow poolspawn fixture: the pool's own bounded worker launch
		go func() {
			defer func() { slots <- t }()
			fn()
		}()
	default:
		fn()
	}
}

// forkUnannotated is the same launch without the audit trail.
func forkUnannotated(fn func()) {
	go fn() // want "raw go statement"
}
