// Fixture for the poolspawn analyzer, named "bigint" so its synthetic
// import path falls under the pool-governed rule: the NTT tier's per-prime
// and butterfly fan-out must route through the bounded worker pool, never
// raw goroutines.
package bigint

type pool struct{}

func (p *pool) Fork(fns ...func()) {
	for _, fn := range fns {
		fn()
	}
}

var nttPool = &pool{}

// forwardPar is the sanctioned shape: stage halves fan out through the pool
// (which falls back to inline execution when no slot is free).
func forwardPar(a []uint64, half int) {
	nttPool.Fork(
		func() { butterfly(a[:half]) },
		func() { butterfly(a[half:]) },
	)
}

// forwardRaw reintroduces the unbounded spawn the pool exists to prevent.
func forwardRaw(a []uint64, half int) {
	done := make(chan struct{})
	go func() { // want "raw go statement"
		butterfly(a[:half])
		close(done)
	}()
	butterfly(a[half:])
	<-done
}

func butterfly(a []uint64) {
	for i := range a {
		a[i]++
	}
}
