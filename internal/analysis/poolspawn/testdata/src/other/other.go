// Fixture for the poolspawn analyzer: a package outside the pool-governed
// list may spawn goroutines freely.
package other

func spawn(fn func()) {
	go fn() // no finding: "other" is not pool-governed
}
