// Package poolspawn forbids raw `go` statements in the packages whose
// concurrency must route through the bounded worker pool
// (internal/workpool): internal/toom, internal/parallel,
// internal/ftparallel, internal/machine, internal/bigint (the NTT's
// per-prime and butterfly fan-out), internal/workpool itself, and
// cmd/caltune. The seed implementation's one-goroutine-per-subproduct
// fan-out was a (2k-1)^depth goroutine explosion; the pool bounds live
// workers at GOMAXPROCS, and this analyzer keeps new code from quietly
// reintroducing unbounded spawns.
//
// The two legitimate spawn sites — the pool's own worker launch and the
// machine simulator's one-goroutine-per-processor Run loop — carry explicit
// `//ftlint:allow poolspawn <rationale>` comments.
package poolspawn

import (
	"go/ast"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "poolspawn",
	Doc:  "forbid raw go statements in pool-governed packages; concurrency must use the bounded worker pool",
	Run:  run,
}

// governed lists the package path segments under the no-raw-goroutines rule.
// The "machine" segment already covers its transport subpackages
// (internal/machine/{transport,simnet,wallnet,costacct,faultinject}), but
// the backend packages are listed by name too so fixture packages — whose
// synthetic import paths are a single segment — exercise the rule.
var governed = []string{"toom", "parallel", "ftengine", "ftparallel", "ftmatmul", "machine", "simnet", "wallnet", "bigint", "workpool", "caltune"}

func run(pass *framework.Pass) error {
	target := false
	for _, seg := range governed {
		if framework.PathHasSegment(pass.Path, seg) {
			target = true
			break
		}
	}
	if !target {
		return nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			if g, ok := n.(*ast.GoStmt); ok {
				pass.Reportf(g.Pos(), "raw go statement in pool-governed package %q: route concurrency through the bounded worker pool (or annotate //ftlint:allow poolspawn with a rationale)", pass.Path)
			}
			return true
		})
	}
	return nil
}
