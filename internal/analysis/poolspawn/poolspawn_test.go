package poolspawn_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolspawn"
)

func TestPoolSpawnGoverned(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "toom")
}

func TestPoolSpawnUngoverned(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "other")
}

// The machine's transport backends are governed by name, not only through
// their parent "machine" path segment.
func TestPoolSpawnTransportBackend(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "simnet")
}

// The NTT tier's home package is governed: butterfly fan-out goes through
// the bounded pool, not raw goroutines.
func TestPoolSpawnBigint(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "bigint")
}

// The pool package itself is governed; only its annotated worker-launch
// site may spawn.
func TestPoolSpawnWorkpool(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "workpool")
}

// The calibrator is governed: background goroutines would perturb its
// timing probes.
func TestPoolSpawnCaltune(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "caltune")
}
