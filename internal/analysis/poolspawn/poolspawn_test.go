package poolspawn_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/poolspawn"
)

func TestPoolSpawnGoverned(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "toom")
}

func TestPoolSpawnUngoverned(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "other")
}

// The machine's transport backends are governed by name, not only through
// their parent "machine" path segment.
func TestPoolSpawnTransportBackend(t *testing.T) {
	analysistest.Run(t, poolspawn.Analyzer, "simnet")
}
