// Package natalias checks calls to the destination-reuse nat kernels
// (natAddTo, natSubTo, natMulWordTo, natShlTo, natDivWordTo). The kernels
// document exactly one aliasing mode: dst may be *identical* to a source
// operand (same slice, offset 0) — their loops read and write the same index
// before moving on. A dst that merely overlaps a source (a re-slice of the
// same base at a shifted offset, or a source that is a re-slice of dst)
// clobbers source limbs before they are read and corrupts the result, so any
// call where dst shares a syntactic base with a source without being
// token-for-token identical to it is flagged.
//
// The check is syntactic: two arguments alias when their unparenthesized
// source text shares the same base expression under slicing. That is exactly
// the granularity at which the kernels' contract is written, and it keeps
// the analyzer dependency-free.
package natalias

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "natalias",
	Doc:  "forbid partially-overlapping dst/src arguments to the destination-reuse nat kernels",
	Run:  run,
}

// kernelSrcArgs maps kernel name -> indices of its nat source operands
// (index 0 is always dst).
var kernelSrcArgs = map[string][]int{
	"natAddTo":     {1, 2},
	"natSubTo":     {1, 2},
	"natMulWordTo": {1},
	"natShlTo":     {1},
	"natDivWordTo": {1},
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := framework.CalleeIdent(call)
			if callee == nil {
				return true
			}
			srcIdxs, ok := kernelSrcArgs[callee.Name]
			if !ok || len(call.Args) <= srcIdxs[len(srcIdxs)-1] {
				return true
			}
			dst := call.Args[0]
			dstText := types.ExprString(ast.Unparen(dst))
			dstBase := baseText(dst)
			for _, i := range srcIdxs {
				src := call.Args[i]
				srcText := types.ExprString(ast.Unparen(src))
				if dstText == srcText {
					// Documented fully-in-place use: dst identical to src.
					continue
				}
				if dstBase != "" && dstBase == baseText(src) {
					pass.Reportf(call.Pos(), "dst %q partially aliases source %q: %s supports only exact in-place reuse (dst identical to a source operand)",
						dstText, srcText, callee.Name)
				}
			}
			return true
		})
	}
	return nil
}

// baseText strips slicing from an expression and returns the source text of
// the underlying base ("" when the expression has no identifier base).
func baseText(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident, *ast.SelectorExpr:
			return types.ExprString(ast.Unparen(e))
		default:
			return ""
		}
	}
}
