// Package natalias checks calls to the destination-reuse nat kernels
// (natAddTo, natSubTo, natMulWordTo, natShlTo, natDivWordTo). The kernels
// document exactly one aliasing mode: dst may be *identical* to a source
// operand (same slice, offset 0) — their loops read and write the same index
// before moving on. A dst that merely overlaps a source (a re-slice of the
// same base at a shifted offset, or a source that is a re-slice of dst)
// clobbers source limbs before they are read and corrupts the result, so any
// call where dst shares a syntactic base with a source without being
// token-for-token identical to it is flagged.
//
// The check is syntactic: two arguments alias when their unparenthesized
// source text shares the same base expression under slicing. That is exactly
// the granularity at which the kernels' contract is written, and it keeps
// the analyzer dependency-free.
//
// Since PR 4 the same check also applies *through wrappers*: when a callee's
// interprocedural summary (framework/summary.go) records that it forwards
// its parameters unmodified into a kernel's dst/src positions, the caller's
// arguments at those positions are checked with the same aliasing rule —
// the alias-through-wrapper hole a call-site-only analyzer provably cannot
// see.
package natalias

import (
	"go/ast"
	"go/types"

	"repro/internal/analysis/framework"
)

var Analyzer = &framework.Analyzer{
	Name: "natalias",
	Doc:  "forbid partially-overlapping dst/src arguments to the destination-reuse nat kernels, including through forwarding wrappers",
	Run:  run,
}

func run(pass *framework.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := framework.CalleeIdent(call)
			if callee == nil {
				return true
			}
			if srcIdxs, ok := framework.NatKernels[callee.Name]; ok {
				checkDirect(pass, call, callee.Name, srcIdxs)
				return true
			}
			checkWrapper(pass, call, callee.Name)
			return true
		})
	}
	return nil
}

// checkDirect applies the aliasing rule at a direct kernel call site.
func checkDirect(pass *framework.Pass, call *ast.CallExpr, kernel string, srcIdxs []int) {
	if len(call.Args) <= srcIdxs[len(srcIdxs)-1] {
		return
	}
	dst := call.Args[0]
	dstText := types.ExprString(ast.Unparen(dst))
	dstBase := baseText(dst)
	for _, i := range srcIdxs {
		src := call.Args[i]
		srcText := types.ExprString(ast.Unparen(src))
		if dstText == srcText {
			// Documented fully-in-place use: dst identical to src.
			continue
		}
		if dstBase != "" && dstBase == baseText(src) {
			pass.Reportf(call.Pos(), "dst %q partially aliases source %q: %s supports only exact in-place reuse (dst identical to a source operand)",
				dstText, srcText, kernel)
		}
	}
}

// checkWrapper applies the aliasing rule through a forwarding callee: the
// summary says which of the caller's argument positions land in a kernel's
// dst/src operands.
func checkWrapper(pass *framework.Pass, call *ast.CallExpr, name string) {
	sum := pass.Summaries.Callee(pass.Info, call)
	if sum == nil {
		return
	}
	for _, kc := range sum.KernelCalls {
		if kc.DstParam < 0 || kc.DstParam >= len(call.Args) {
			continue
		}
		dst := call.Args[kc.DstParam]
		dstText := types.ExprString(ast.Unparen(dst))
		dstBase := baseText(dst)
		for _, si := range kc.SrcParams {
			if si < 0 || si >= len(call.Args) || si == kc.DstParam {
				// The wrapper aliasing dst with itself is the documented
				// in-place mode; unmapped operands are internal to it.
				continue
			}
			src := call.Args[si]
			srcText := types.ExprString(ast.Unparen(src))
			if dstText == srcText {
				continue // forwarded identically: exact in-place reuse
			}
			if dstBase != "" && dstBase == baseText(src) {
				pass.Reportf(call.Pos(), "dst %q partially aliases source %q: %s forwards them into %s, which supports only exact in-place reuse",
					dstText, srcText, name, kc.Kernel)
			}
		}
	}
}

// baseText strips slicing from an expression and returns the source text of
// the underlying base ("" when the expression has no identifier base).
func baseText(e ast.Expr) string {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SliceExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.Ident, *ast.SelectorExpr:
			return types.ExprString(ast.Unparen(e))
		default:
			return ""
		}
	}
}
