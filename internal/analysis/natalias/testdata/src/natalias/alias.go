// Fixture for the natalias analyzer: miniature stand-ins for the
// destination-reuse nat kernels, matched by name.
package natalias

type nat []uint64

func natAddTo(dst, x, y nat) nat                      { return dst }
func natSubTo(dst, x, y nat) nat                      { return dst }
func natMulWordTo(dst, x nat, w uint64) nat           { return dst }
func natShlTo(dst, x nat, s uint) nat                 { return dst }
func natDivWordTo(dst, x nat, w uint64) (nat, uint64) { return dst, 0 }

type acc struct {
	abs nat
	tmp nat
}

func use(a, b, c nat, ac *acc) {
	// Documented fully-in-place uses: dst identical to a source.
	_ = natAddTo(a, a, b)
	_ = natSubTo(a, a, b)
	_ = natSubTo(a, b, a)
	_ = natMulWordTo(b, b, 3)
	_ = natShlTo(b, b, 1)
	_, _ = natDivWordTo(c, c, 5)
	ac.abs = natAddTo(ac.abs, ac.abs, b)
	ac.tmp = natMulWordTo(ac.tmp, ac.abs, 7)

	// Disjoint operands are always fine.
	_ = natAddTo(a, b, c)

	// Partial overlap: dst shares a base with a source without being
	// identical to it — the kernels clobber source limbs early.
	_ = natAddTo(a[1:], a, b)           // want "partially aliases"
	_ = natAddTo(a, b, a[2:])           // want "partially aliases"
	_ = natSubTo(b[:2], b, c)           // want "partially aliases"
	_ = natMulWordTo(c[1:], c, 9)       // want "partially aliases"
	_ = natShlTo(a[3:], a, 2)           // want "partially aliases"
	_ = natAddTo(ac.abs[1:], ac.abs, b) // want "partially aliases"

	// The audited escape hatch.
	//ftlint:allow natalias fixture: offset proven safe by construction
	_ = natAddTo(a[1:], a, b)
}

// addInto forwards its parameters unmodified into natAddTo: the summary
// records dst=0, srcs=[1 2] so call sites are checked like the kernel.
func addInto(dst, x, y nat) nat { return natAddTo(dst, x, y) }

// addIntoTwice is a wrapper around the wrapper; forwarding composes.
func addIntoTwice(dst, x, y nat) nat { return addInto(dst, x, y) }

// scaleInternal re-slices dst before the kernel, so its forwarding is not
// identity and call sites are not (cannot be) checked through it.
func scaleInternal(dst, x nat) nat { return natMulWordTo(dst[:len(x)], x, 3) }

func useWrappers(a, b, c nat) {
	// Exact in-place reuse and disjoint operands stay fine through the
	// wrapper, exactly as at a direct kernel call.
	_ = addInto(a, a, b)
	_ = addInto(a, b, c)
	_ = addIntoTwice(a, a, b)

	// Alias-through-wrapper: the wrapper hands the kernel a dst that
	// partially overlaps a source. A call-site-only analyzer sees only
	// "addInto(a[1:], a, b)" and has no idea a kernel is behind it.
	_ = addInto(a[1:], a, b)      // want "forwards them into natAddTo"
	_ = addInto(b, c, b[2:])      // want "forwards them into natAddTo"
	_ = addIntoTwice(a[1:], a, b) // want "forwards them into natAddTo"

	_ = scaleInternal(a, b)
}
