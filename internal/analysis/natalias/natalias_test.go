package natalias_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/natalias"
)

func TestNatAlias(t *testing.T) {
	analysistest.Run(t, natalias.Analyzer, "natalias")
}
