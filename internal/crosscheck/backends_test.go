// Package crosscheck runs the fault-tolerant multiplication matrix on both
// machine backends — the deterministic virtual-clock simulator and the
// in-process wall-clock runtime — and asserts that the seam refactor changed
// nothing observable: products stay bit-identical to math/big on both
// backends, and the simulator's F/BW/L counts stay pinned to the values the
// seed simulator produced before the transport extraction.
package crosscheck

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bigint"
	"repro/internal/ftparallel"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/toom"
)

// golden F/BW/L values captured from the seed simulator (commit c4ed587,
// before the transport seam) with seed 7, 8192-bit operands, k=2, P=9,
// f as listed. Any drift here means the refactor changed the cost model.
type goldenCounts struct {
	f, bw, l int64
}

func TestBackendsAgreeOnFaultMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := bigint.Random(rng, 1<<13)
	b := bigint.Random(rng, 1<<13)
	want := new(big.Int).Mul(a.ToBig(), b.ToBig())
	alg := toom.MustNew(2)
	lay, err := ftparallel.NewLayout(9, 2, 2)
	if err != nil {
		t.Fatal(err)
	}

	plans := []struct {
		name   string
		f, dfs int
		faults []machine.Fault
		golden goldenCounts
	}{
		{"nofault-f1", 1, 0, nil,
			goldenCounts{7947, 268, 25}},
		{"eval-worker", 2, 0,
			[]machine.Fault{{Proc: 4, Phase: ftparallel.PhaseEval}},
			goldenCounts{8283, 399, 32}},
		{"mul-worker", 1, 0,
			[]machine.Fault{{Proc: 4, Phase: ftparallel.PhaseMul}},
			goldenCounts{7318, 268, 25}},
		{"interp-worker", 1, 0,
			[]machine.Fault{{Proc: lay.Worker(1, 2), Phase: ftparallel.PhaseInterp}},
			goldenCounts{7947, 348, 27}},
		{"mixed-f2", 2, 0,
			[]machine.Fault{
				{Proc: 1, Phase: ftparallel.PhaseEval},
				{Proc: 4, Phase: ftparallel.PhaseMul},
			},
			goldenCounts{7654, 399, 32}},
		{"dfs-mul", 1, 1,
			[]machine.Fault{{Proc: 3, Phase: ftparallel.PhaseMul, Hit: 1}},
			goldenCounts{7511, 396, 65}},
	}

	for _, pl := range plans {
		pl := pl
		t.Run(pl.name, func(t *testing.T) {
			for _, backend := range []machine.Backend{machine.BackendSim, machine.BackendWall} {
				res, err := ftparallel.Multiply(a, b, ftparallel.Options{
					Alg: alg, P: 9, F: pl.f, DFSSteps: pl.dfs, Faults: pl.faults,
					Machine: machine.Config{Backend: backend},
				})
				if err != nil {
					t.Fatalf("%s: %v", backend, err)
				}
				if res.Product.ToBig().Cmp(want) != 0 {
					t.Fatalf("%s: product differs from math/big", backend)
				}
				// The wall backend's counts must match the simulator's
				// (accounting is a backend-independent decorator); the
				// simulator's must match the seed.
				got := goldenCounts{res.Report.F, res.Report.BW, res.Report.L}
				if got != pl.golden {
					t.Errorf("%s: F/BW/L = %d/%d/%d, golden %d/%d/%d",
						backend, got.f, got.bw, got.l,
						pl.golden.f, pl.golden.bw, pl.golden.l)
				}
			}
		})
	}
}

// TestBackendsAgreeOnPlainParallel pins the fault-free parallel engine the
// same way: identical product on both backends, seed counts on the simulator.
func TestBackendsAgreeOnPlainParallel(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := bigint.Random(rng, 1<<13)
	b := bigint.Random(rng, 1<<13)
	want := new(big.Int).Mul(a.ToBig(), b.ToBig())
	alg := toom.MustNew(2)
	golden := goldenCounts{7691, 160, 12}

	for _, backend := range []machine.Backend{machine.BackendSim, machine.BackendWall} {
		res, err := parallel.Multiply(a, b, parallel.Options{
			Alg: alg, P: 9, Machine: machine.Config{Backend: backend},
		})
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if res.Product.ToBig().Cmp(want) != 0 {
			t.Fatalf("%s: product differs from math/big", backend)
		}
		got := goldenCounts{res.Report.F, res.Report.BW, res.Report.L}
		if got != golden {
			t.Errorf("%s: F/BW/L = %d/%d/%d, golden %d/%d/%d",
				backend, got.f, got.bw, got.l, golden.f, golden.bw, golden.l)
		}
	}
}
