// Package crosscheck runs the repository-wide agreement test: every
// multiplication path — sequential, scheduled, lazy, unbalanced, parallel,
// fault-tolerant (with live faults), replicated, checkpointed, multi-step,
// soft-fault-corrected — must produce the identical product for identical
// operands, with math/big as the independent referee.
package crosscheck

import (
	"fmt"
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bigint"
	"repro/internal/ftparallel"
	"repro/internal/machine"
	"repro/internal/multistep"
	"repro/internal/parallel"
	"repro/internal/softfault"
	"repro/internal/toom"
	"repro/internal/toomgraph"
)

func TestAllAlgorithmsAgree(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 3; trial++ {
		bits := []int{1 << 12, 1 << 14, 1 << 15}[trial]
		a := bigint.Random(rng, bits)
		b := bigint.Random(rng, bits)
		if trial == 1 {
			a = a.Neg()
		}
		want := new(big.Int).Mul(a.ToBig(), b.ToBig())

		check := func(name string, got bigint.Int, err error) {
			t.Helper()
			if err != nil {
				t.Fatalf("%s (bits=%d): %v", name, bits, err)
			}
			if got.ToBig().Cmp(want) != 0 {
				t.Fatalf("%s (bits=%d): product mismatch", name, bits)
			}
		}

		check("schoolbook", a.Mul(b), nil)
		for k := 2; k <= 5; k++ {
			check(fmt.Sprintf("toom-%d", k), toom.MustNew(k).Mul(a, b), nil)
		}
		check("toom-3 scheduled", toom.MustNew(3).WithInterpolationSequence(toomgraph.Toom3()).Mul(a, b), nil)
		lazy, err := toom.MustNew(2).MulLazy(a, b, 3)
		check("lazy l=3", lazy, err)
		unb, err := toom.NewUnbalanced(3, 2, nil)
		if err != nil {
			t.Fatal(err)
		}
		check("toom-2.5", unb.Mul(a, b), nil)

		par, err := parallel.Multiply(a, b, parallel.Options{Alg: toom.MustNew(2), P: 9})
		if err != nil {
			t.Fatal(err)
		}
		check("parallel P=9", par.Product, nil)

		ft, err := ftparallel.Multiply(a, b, ftparallel.Options{
			Alg: toom.MustNew(2), P: 9, F: 1,
			Faults: []machine.Fault{{Proc: 4, Phase: ftparallel.PhaseMul}},
		})
		if err != nil {
			t.Fatal(err)
		}
		check("fault-tolerant with live fault", ft.Product, nil)

		repl, err := ftparallel.MultiplyReplicated(a, b, ftparallel.ReplicationOptions{
			Alg: toom.MustNew(2), P: 9, F: 1,
			Faults: []machine.Fault{{Proc: 1, Phase: ftparallel.PhaseMul}},
		})
		if err != nil {
			t.Fatal(err)
		}
		check("replicated with fleet loss", repl.Product, nil)

		cr, err := ftparallel.MultiplyCheckpointRestart(a, b, ftparallel.CheckpointOptions{
			Alg: toom.MustNew(2), P: 9,
			Faults: []machine.Fault{{Proc: 7, Phase: ftparallel.PhaseMul}},
		})
		if err != nil {
			t.Fatal(err)
		}
		check("checkpoint-restart with restart", cr.Product, nil)

		ms, err := multistep.New(2, 2, 1)
		if err != nil {
			t.Fatal(err)
		}
		msProd, err := ms.MulWithErasures(a, b, []int{3})
		check("multi-step with erasure", msProd, err)

		sf, err := softfault.New(2, 2)
		if err != nil {
			t.Fatal(err)
		}
		sfProd, _, err := sf.MulWithSoftFaults(a, b, map[int]bigint.Int{2: bigint.FromInt64(987654321)})
		check("soft-fault corrected", sfProd, err)
	}
}
