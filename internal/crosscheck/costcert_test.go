// costcert_test.go closes the three-way cost-certification loop:
//
//	paper table  ==  abstract interpretation  ==  runtime accounting
//
// costbound's own tests pin interpreter == table over the real ASTs; this
// file pins table == costacct-certified runtime Stats on the same worlds, so
// a drift in any one of the three representations breaks a test somewhere.
// S (sent words), R (received words) and L (messages) must agree exactly;
// the static F is a worst-case word-operation bound (the recurrence never
// takes the structural-zero shortcuts the kernels do), so it must dominate
// the runtime F without falling to zero.
package crosscheck

import (
	"math/big"
	"testing"

	"repro/internal/analysis/costbound"
	"repro/internal/analysis/framework"
	"repro/internal/bigint"
	"repro/internal/collective"
	"repro/internal/ftparallel"
	"repro/internal/machine"
	"repro/internal/parallel"
	"repro/internal/toom"
)

// maxRecvWords extracts the R counter machine.Report does not aggregate.
func maxRecvWords(rep *machine.Report) int64 {
	var r int64
	for _, st := range rep.PerProc {
		if st.RecvWords > r {
			r = st.RecvWords
		}
	}
	return r
}

// unitPayload is a W-entry vector of single-word digits, matching the
// unit-word model the closed forms count in.
func unitPayload(w int64) machine.Ints {
	out := make(machine.Ints, w)
	for i := range out {
		out[i] = bigint.FromInt64(1)
	}
	return out
}

// TestCollectiveCostsMatchRuntime replays Broadcast and Reduce on the real
// simulated machine over the costbound witness grid and checks all four
// counters against the Table 1 closed forms, exactly.
func TestCollectiveCostsMatchRuntime(t *testing.T) {
	for g := int64(2); g <= 5; g++ {
		group := make(collective.Group, g)
		for i := range group {
			group[i] = i
		}
		for _, w := range []int64{1, 2, 3, 5, 8} {
			run := func(name string, op func(p *machine.Proc) error) *machine.Report {
				t.Helper()
				m, err := machine.New(machine.Config{P: int(g)}, nil)
				if err != nil {
					t.Fatalf("g=%d W=%d %s: machine: %v", g, w, name, err)
				}
				rep, err := m.Run(op)
				if err != nil {
					t.Fatalf("g=%d W=%d %s: run: %v", g, w, name, err)
				}
				return rep
			}
			check := func(name string, rep *machine.Report, exp costbound.Counts) {
				t.Helper()
				got := costbound.Counts{F: rep.F, S: rep.BW, R: maxRecvWords(rep), L: rep.L}
				if got != exp {
					t.Errorf("g=%d W=%d %s: runtime %+v, closed form %+v", g, w, name, got, exp)
				}
			}

			rep := run("Broadcast", func(p *machine.Proc) error {
				var v machine.Ints
				if p.ID() == 0 {
					v = unitPayload(w)
				}
				_, err := collective.Broadcast(p, group, 0, "bc", v)
				return err
			})
			check("Broadcast", rep, costbound.ExpectedBroadcast(g, w))

			rep = run("Reduce", func(p *machine.Proc) error {
				_, err := collective.Reduce(p, group, 0, "rd", unitPayload(w))
				return err
			})
			check("Reduce", rep, costbound.ExpectedReduce(g, w))
		}
	}
}

// allOnes returns the Digits-bit all-ones integer, so the plan derives
// shift = 1 and every digit is a single 1-bit word — the unit-word model
// the recurrences count in.
func allOnes(digits int) bigint.Int {
	v := new(big.Int).Lsh(big.NewInt(1), uint(digits))
	v.Sub(v, big.NewInt(1))
	return bigint.FromBig(v)
}

// TestWorldCostsMatchRuntime runs both multiplication tiers on every
// certified costbound world and compares the recurrence values (already
// proven equal to the interpreter's derivation by costbound's tests)
// against the runtime accounting.
func TestWorldCostsMatchRuntime(t *testing.T) {
	for _, w := range costbound.Worlds() {
		w := w
		t.Run(w.Name, func(t *testing.T) {
			a := allOnes(w.Digits)
			var rep *machine.Report
			if w.FT {
				res, err := ftparallel.Multiply(a, a, ftparallel.Options{
					Alg: toom.MustNew(w.K), P: w.P, F: w.Faults,
					DFSSteps: w.DFSSteps, LeafFactor: w.Leaf,
				})
				if err != nil {
					t.Fatalf("ftparallel.Multiply: %v", err)
				}
				rep = res.Report
			} else {
				res, err := parallel.Multiply(a, a, parallel.Options{
					Alg: toom.MustNew(w.K), P: w.P,
					DFSSteps: w.DFSSteps, LeafFactor: w.Leaf,
				})
				if err != nil {
					t.Fatalf("parallel.Multiply: %v", err)
				}
				if res.Digits != w.Digits || res.Shift != 1 {
					t.Fatalf("plan derived digits=%d shift=%d, world wants digits=%d shift=1",
						res.Digits, res.Shift, w.Digits)
				}
				rep = res.Report
			}
			exp := w.Expected
			if rep.BW != exp.S {
				t.Errorf("sent words: runtime %d, recurrence %d", rep.BW, exp.S)
			}
			if r := maxRecvWords(rep); r != exp.R {
				t.Errorf("received words: runtime %d, recurrence %d", r, exp.R)
			}
			if rep.L != exp.L {
				t.Errorf("messages: runtime %d, recurrence %d", rep.L, exp.L)
			}
			if rep.F <= 0 || exp.F < rep.F {
				t.Errorf("word ops: runtime %d must be positive and dominated by the static bound %d", rep.F, exp.F)
			}
		})
	}
}

// TestWorldDerivationMatchesTable re-derives every world through the
// abstract interpreter from inside this package, making the three-way
// agreement explicit rather than transitive across test suites.
func TestWorldDerivationMatchesTable(t *testing.T) {
	pkgs, err := framework.LoadCached("../..",
		"./internal/collective", "./internal/parallel", "./internal/ftparallel",
		"./internal/ftengine")
	if err != nil {
		t.Fatalf("loading tiers: %v", err)
	}
	sums := framework.ComputeSummaries(pkgs)
	byPath := map[string]*framework.Package{}
	for _, p := range pkgs {
		byPath[p.Path] = p
	}
	for _, w := range costbound.Worlds() {
		path := "repro/internal/parallel"
		if w.FT {
			path = "repro/internal/ftparallel"
		}
		pkg := byPath[path]
		if pkg == nil {
			t.Fatalf("package %s not loaded", path)
		}
		got, err := costbound.DeriveWorldCounts(sums, pkg, w)
		if err != nil {
			t.Errorf("world %s: %v", w.Name, err)
			continue
		}
		if got != w.Expected {
			t.Errorf("world %s: interpreter derives %+v, recurrence says %+v", w.Name, got, w.Expected)
		}
	}
}
