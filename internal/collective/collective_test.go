package collective

import (
	"fmt"
	"testing"

	"repro/internal/bigint"
	"repro/internal/machine"
)

func ints(vals ...int64) machine.Ints {
	out := make(machine.Ints, len(vals))
	for i, v := range vals {
		out[i] = bigint.FromInt64(v)
	}
	return out
}

func run(t *testing.T, p int, program func(*machine.Proc) error) *machine.Report {
	t.Helper()
	m, err := machine.New(machine.Config{P: p}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(program)
	if err != nil {
		t.Fatal(err)
	}
	return rep
}

func TestBroadcastAllSizesAndRoots(t *testing.T) {
	for _, n := range []int{1, 2, 3, 5, 8, 9} {
		for root := 0; root < n; root += 2 {
			n, root := n, root
			t.Run(fmt.Sprintf("n=%d root=%d", n, root), func(t *testing.T) {
				g := make(Group, n)
				for i := range g {
					g[i] = i
				}
				run(t, n, func(p *machine.Proc) error {
					var v machine.Ints
					if g.Index(p.ID()) == root {
						v = ints(7, -3)
					}
					got, err := Broadcast(p, g, root, "bc", v)
					if err != nil {
						return err
					}
					if len(got) != 2 || !got[0].Equal(bigint.FromInt64(7)) || !got[1].Equal(bigint.FromInt64(-3)) {
						return fmt.Errorf("proc %d got %v", p.ID(), got)
					}
					return nil
				})
			})
		}
	}
}

func TestBroadcastLatencyLogarithmic(t *testing.T) {
	// With α dominating, broadcast time should grow like log n, not n.
	depth := func(n int) float64 {
		g := make(Group, n)
		for i := range g {
			g[i] = i
		}
		m, _ := machine.New(machine.Config{P: n, Alpha: 1000, Beta: 0.001, Gamma: 0.001}, nil)
		rep, err := m.Run(func(p *machine.Proc) error {
			var v machine.Ints
			if p.ID() == 0 {
				v = ints(1)
			}
			_, err := Broadcast(p, g, 0, "bc", v)
			return err
		})
		if err != nil {
			t.Fatal(err)
		}
		return rep.Time
	}
	t16, t8 := depth(16), depth(8)
	// log2(16)/log2(8) = 4/3; star would give 15/7 ≈ 2.1.
	if ratio := t16 / t8; ratio > 1.8 {
		t.Errorf("broadcast latency ratio 16/8 procs = %.2f; not logarithmic", ratio)
	}
}

func TestReduceSum(t *testing.T) {
	g := Group{0, 1, 2, 3, 4}
	run(t, 5, func(p *machine.Proc) error {
		mine := ints(int64(p.ID()), 1)
		got, err := Reduce(p, g, 2, "rd", mine)
		if err != nil {
			return err
		}
		if g.Index(p.ID()) != 2 {
			if got != nil {
				return fmt.Errorf("non-root got %v", got)
			}
			return nil
		}
		if v, _ := got[0].Int64(); v != 0+1+2+3+4 {
			return fmt.Errorf("sum = %d", v)
		}
		if v, _ := got[1].Int64(); v != 5 {
			return fmt.Errorf("count = %d", v)
		}
		return nil
	})
}

func TestReduceChargesWork(t *testing.T) {
	g := Group{0, 1}
	rep := run(t, 2, func(p *machine.Proc) error {
		_, err := Reduce(p, g, 0, "rd", ints(int64(p.ID())))
		return err
	})
	if rep.PerProc[0].Flops == 0 {
		t.Error("root did no combining work")
	}
}

func TestAllReduce(t *testing.T) {
	g := Group{1, 2, 3} // non-trivial subgroup of a larger machine
	run(t, 5, func(p *machine.Proc) error {
		if g.Index(p.ID()) < 0 {
			return nil
		}
		got, err := AllReduce(p, g, "ar", ints(10))
		if err != nil {
			return err
		}
		if v, _ := got[0].Int64(); v != 30 {
			return fmt.Errorf("proc %d: all-reduce = %d", p.ID(), v)
		}
		return nil
	})
}

func TestGather(t *testing.T) {
	g := Group{0, 1, 2, 3}
	run(t, 4, func(p *machine.Proc) error {
		got, err := Gather(p, g, 1, "ga", ints(int64(p.ID()*10)))
		if err != nil {
			return err
		}
		if p.ID() != 1 {
			if got != nil {
				return fmt.Errorf("non-root got data")
			}
			return nil
		}
		for i := 0; i < 4; i++ {
			if v, _ := got[i][0].Int64(); v != int64(i*10) {
				return fmt.Errorf("slot %d = %d", i, v)
			}
		}
		return nil
	})
}

func TestExchange(t *testing.T) {
	g := Group{0, 1, 2}
	run(t, 3, func(p *machine.Proc) error {
		out := make([]machine.Ints, 3)
		for i := range out {
			out[i] = ints(int64(p.ID()*100 + i)) // tagged: sender*100 + dest
		}
		in, err := Exchange(p, g, "xc", out)
		if err != nil {
			return err
		}
		for src := 0; src < 3; src++ {
			want := int64(src*100 + p.ID())
			if v, _ := in[src][0].Int64(); v != want {
				return fmt.Errorf("proc %d from %d: %d, want %d", p.ID(), src, v, want)
			}
		}
		return nil
	})
}

func TestWeightedReduce(t *testing.T) {
	// Code creation: Σ η^i · data_i with η=2: 1·d0 + 2·d1 + 4·d2.
	g := Group{0, 1, 2}
	run(t, 3, func(p *machine.Proc) error {
		weight := int64(1)
		for i := 0; i < g.Index(p.ID()); i++ {
			weight *= 2
		}
		got, err := WeightedReduce(p, g, 0, "wr", ints(10), weight)
		if err != nil {
			return err
		}
		if p.ID() == 0 {
			if v, _ := got[0].Int64(); v != 10*1+10*2+10*4 {
				return fmt.Errorf("weighted sum = %d", v)
			}
		}
		return nil
	})
}

func TestGroupErrors(t *testing.T) {
	g := Group{0, 1}
	run(t, 3, func(p *machine.Proc) error {
		if p.ID() != 2 {
			_, err := Broadcast(p, g, 0, "x", ints(1))
			return err
		}
		if _, err := Broadcast(p, g, 0, "x", nil); err == nil {
			return fmt.Errorf("non-member broadcast should fail")
		}
		if _, err := Reduce(p, g, 0, "y", nil); err == nil {
			return fmt.Errorf("non-member reduce should fail")
		}
		if _, err := Exchange(p, g, "z", make([]machine.Ints, 2)); err == nil {
			return fmt.Errorf("non-member exchange should fail")
		}
		return nil
	})
}

func TestBadRootIndex(t *testing.T) {
	g := Group{0}
	run(t, 1, func(p *machine.Proc) error {
		if _, err := Broadcast(p, g, 5, "x", ints(1)); err == nil {
			return fmt.Errorf("bad root should fail")
		}
		if _, err := Reduce(p, g, -1, "y", ints(1)); err == nil {
			return fmt.Errorf("bad root should fail")
		}
		return nil
	})
}

func TestExchangeWrongArity(t *testing.T) {
	g := Group{0, 1}
	run(t, 2, func(p *machine.Proc) error {
		if _, err := Exchange(p, g, "x", make([]machine.Ints, 3)); err == nil {
			return fmt.Errorf("wrong outgoing arity should fail")
		}
		// Clean up the protocol so both procs return: perform a matching
		// well-formed exchange.
		out := []machine.Ints{ints(0), ints(0)}
		_, err := Exchange(p, g, "ok", out)
		return err
	})
}

func TestMultiReduce(t *testing.T) {
	// t = 6 reduces over 3 procs: roots round-robin 0,1,2,0,1,2.
	g := Group{0, 1, 2}
	run(t, 3, func(p *machine.Proc) error {
		contribs := make([]machine.Ints, 6)
		for i := range contribs {
			contribs[i] = ints(int64((i + 1) * (p.ID() + 1)))
		}
		got, err := MultiReduce(p, g, "mr", contribs)
		if err != nil {
			return err
		}
		for i, total := range got {
			if i%3 != g.Index(p.ID()) {
				return fmt.Errorf("proc %d rooted reduce %d", p.ID(), i)
			}
			// Σ_procs (i+1)(id+1) = (i+1)·6.
			if v, _ := total[0].Int64(); v != int64((i+1)*6) {
				return fmt.Errorf("reduce %d total = %d", i, v)
			}
		}
		return nil
	})
}

func TestMultiReduceLatencyShape(t *testing.T) {
	// Lemma 2.5: t simultaneous reduces cost L = O(log P + t) on the
	// critical path, not t·O(log P). With round-robin roots each member
	// sends ~t/|g| + own-tree messages, far below t·log(g).
	n, tt := 8, 16
	g := make(Group, n)
	for i := range g {
		g[i] = i
	}
	m, _ := machine.New(machine.Config{P: n, Alpha: 1000, Beta: 0.01, Gamma: 0.01}, nil)
	rep, err := m.Run(func(p *machine.Proc) error {
		contribs := make([]machine.Ints, tt)
		for i := range contribs {
			contribs[i] = ints(int64(p.ID()))
		}
		_, err := MultiReduce(p, g, "mrl", contribs)
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
	// Naive bound: t·log2(P) = 16·3 = 48 sends per proc; the overlapped
	// schedule must stay well below it.
	if rep.L >= int64(tt*3) {
		t.Errorf("critical-path L = %d, want well below t·log P = %d", rep.L, tt*3)
	}
	if rep.L < int64(tt)/int64(n) {
		t.Errorf("critical-path L = %d suspiciously low", rep.L)
	}
}

func TestMultiBroadcast(t *testing.T) {
	g := Group{0, 1, 2, 3}
	run(t, 4, func(p *machine.Proc) error {
		values := make([]machine.Ints, 5)
		for i := range values {
			if i%4 == g.Index(p.ID()) {
				values[i] = ints(int64(100 + i))
			}
		}
		got, err := MultiBroadcast(p, g, "mb", values)
		if err != nil {
			return err
		}
		for i := range got {
			if v, _ := got[i][0].Int64(); v != int64(100+i) {
				return fmt.Errorf("proc %d broadcast %d = %d", p.ID(), i, v)
			}
		}
		return nil
	})
}
