// Package collective implements the collective communication operations the
// parallel Toom-Cook algorithms rely on (Section 2.4 of the paper):
// broadcast, reduce, all-reduce and gather over arbitrary processor groups
// of the simulated machine, plus the all-to-all personalized exchange that a
// BFS step performs within each grid row.
//
// Reduce and broadcast use binomial trees, giving the O(log g) latency and
// O(W) bandwidth shapes of Lemma 2.5 / Corollary 2.6 within a group of g
// processors. All collectives are SPMD: every member of the group must call
// the operation with the same group, root and tag.
package collective

import (
	"fmt"

	"repro/internal/machine"
)

// Group is an ordered list of processor ranks participating in a collective.
type Group []int

// Index returns the position of rank id in the group, or -1.
func (g Group) Index(id int) int {
	for i, r := range g {
		if r == id {
			return i
		}
	}
	return -1
}

// SumWork returns the word-operation count of element-wise adding two
// integer vectors (the reduce combiner's F charge).
func SumWork(a, b machine.Ints) int64 {
	var w int64
	for i := range a {
		la := int64(a[i].WordLen())
		if i < len(b) {
			if lb := int64(b[i].WordLen()); lb > la {
				la = lb
			}
		}
		if la == 0 {
			la = 1
		}
		w += la
	}
	return w
}

// sum element-wise adds two equal-length integer vectors.
func sum(a, b machine.Ints) (machine.Ints, error) {
	if len(a) != len(b) {
		return nil, fmt.Errorf("collective: vector length mismatch %d vs %d", len(a), len(b))
	}
	out := make(machine.Ints, len(a))
	for i := range a {
		out[i] = a[i].Add(b[i])
	}
	return out, nil
}

// Broadcast sends v from the group's root (given as a group index) to every
// member, over a binomial tree. Every member returns the broadcast vector.
func Broadcast(p *machine.Proc, g Group, rootIdx int, tag string, v machine.Ints) (machine.Ints, error) {
	n := len(g)
	me := g.Index(p.ID())
	if me < 0 {
		return nil, fmt.Errorf("collective: proc %d not in group", p.ID())
	}
	if rootIdx < 0 || rootIdx >= n {
		return nil, fmt.Errorf("collective: root index %d out of range", rootIdx)
	}
	r := (me - rootIdx + n) % n // virtual rank, root at 0
	cur := v
	// Receive once from the appropriate ancestor, then forward.
	recvMask := 0
	for mask := 1; mask < n; mask <<= 1 {
		if r >= mask && r < mask<<1 {
			recvMask = mask
			break
		}
	}
	if r != 0 {
		src := (r - recvMask + rootIdx) % n
		got, err := p.RecvInts(g[src], tag)
		if err != nil {
			return nil, err
		}
		cur = got
	}
	start := recvMask << 1
	if r == 0 {
		start = 1
	}
	for mask := start; mask < n; mask <<= 1 {
		dst := r + mask
		if dst < n {
			if err := p.Send(g[(dst+rootIdx)%n], tag, cur); err != nil {
				return nil, err
			}
		}
	}
	return cur, nil
}

// Reduce element-wise sums every member's vector at the root (group index).
// The root returns the total; other members return nil.
func Reduce(p *machine.Proc, g Group, rootIdx int, tag string, mine machine.Ints) (machine.Ints, error) {
	n := len(g)
	me := g.Index(p.ID())
	if me < 0 {
		return nil, fmt.Errorf("collective: proc %d not in group", p.ID())
	}
	if rootIdx < 0 || rootIdx >= n {
		return nil, fmt.Errorf("collective: root index %d out of range", rootIdx)
	}
	r := (me - rootIdx + n) % n
	acc := mine
	// Binomial tree reduction: at round `mask`, ranks with bit `mask` set
	// send their partial to rank r-mask, then retire.
	for mask := 1; mask < n; mask <<= 1 {
		if r&mask != 0 {
			dst := (r - mask + rootIdx) % n
			return nil, p.Send(g[dst], tag, acc)
		}
		src := r + mask
		if src < n {
			got, err := p.RecvInts(g[(src+rootIdx)%n], tag)
			if err != nil {
				return nil, err
			}
			p.Work(SumWork(acc, got))
			var serr error
			acc, serr = sum(acc, got)
			if serr != nil {
				return nil, serr
			}
		}
	}
	return acc, nil
}

// AllReduce is Reduce followed by Broadcast: every member returns the sum.
func AllReduce(p *machine.Proc, g Group, tag string, mine machine.Ints) (machine.Ints, error) {
	total, err := Reduce(p, g, 0, tag+"/r", mine)
	if err != nil {
		return nil, err
	}
	return Broadcast(p, g, 0, tag+"/b", total)
}

// Gather collects every member's vector at the root (group index), in group
// order. The root returns the list; other members return nil.
func Gather(p *machine.Proc, g Group, rootIdx int, tag string, mine machine.Ints) ([]machine.Ints, error) {
	n := len(g)
	me := g.Index(p.ID())
	if me < 0 {
		return nil, fmt.Errorf("collective: proc %d not in group", p.ID())
	}
	if me != rootIdx {
		return nil, p.Send(g[rootIdx], tag, mine)
	}
	out := make([]machine.Ints, n)
	out[me] = mine
	for i := 0; i < n; i++ {
		if i == me {
			continue
		}
		got, err := p.RecvInts(g[i], tag)
		if err != nil {
			return nil, err
		}
		out[i] = got
	}
	return out, nil
}

// Exchange performs an all-to-all personalized exchange within the group:
// outgoing[i] is delivered to group member i; the returned slice holds the
// vector received from each member (my own entry passes through untouched).
// This is the within-row redistribution of a parallel Toom-Cook BFS step.
func Exchange(p *machine.Proc, g Group, tag string, outgoing []machine.Ints) ([]machine.Ints, error) {
	n := len(g)
	if len(outgoing) != n {
		return nil, fmt.Errorf("collective: Exchange needs %d outgoing vectors, got %d", n, len(outgoing))
	}
	me := g.Index(p.ID())
	if me < 0 {
		return nil, fmt.Errorf("collective: proc %d not in group", p.ID())
	}
	incoming := make([]machine.Ints, n)
	incoming[me] = outgoing[me]
	// Round-robin schedule: in round d, send to me+d and receive from me-d,
	// keeping the pairwise channels deadlock-free and the load balanced.
	for d := 1; d < n; d++ {
		dst := (me + d) % n
		src := (me - d + n) % n
		if err := p.Send(g[dst], tag, outgoing[dst]); err != nil {
			return nil, err
		}
		got, err := p.RecvInts(g[src], tag)
		if err != nil {
			return nil, err
		}
		incoming[src] = got
	}
	return incoming, nil
}

// MultiReduce performs t simultaneous sum-reduces (the t-reduce of
// Lemma 2.5): contribution vector i is reduced to the group member i mod
// |g| (round-robin roots spread the root load, the essence of the
// Sanders-Sibeyn/Birnbaum-Schwartz construction). Because each member sends
// at most one message per reduce and the trees overlap, the critical-path
// message count is O(t + log g) rather than t·O(log g). The return maps
// reduce index → total for the reduces this processor roots.
func MultiReduce(p *machine.Proc, g Group, tag string, contribs []machine.Ints) (map[int]machine.Ints, error) {
	out := map[int]machine.Ints{}
	for i, mine := range contribs {
		root := i % len(g)
		total, err := Reduce(p, g, root, fmt.Sprintf("%s/%d", tag, i), mine)
		if err != nil {
			return nil, err
		}
		if g.Index(p.ID()) == root {
			out[i] = total
		}
	}
	return out, nil
}

// MultiBroadcast performs t simultaneous broadcasts (the t-broadcast of
// Corollary 2.6): value i originates at group member i mod |g|; only the
// origin's `values[i]` is consulted. Every member returns all t vectors.
func MultiBroadcast(p *machine.Proc, g Group, tag string, values []machine.Ints) ([]machine.Ints, error) {
	out := make([]machine.Ints, len(values))
	for i := range values {
		root := i % len(g)
		var mine machine.Ints
		if g.Index(p.ID()) == root {
			mine = values[i]
		}
		got, err := Broadcast(p, g, root, fmt.Sprintf("%s/%d", tag, i), mine)
		if err != nil {
			return nil, err
		}
		out[i] = got
	}
	return out, nil
}

// WeightedReduce computes Σ_i weight_i·vector_i at the root: each member
// scales its vector locally (charging the scaling work), then joins a plain
// sum-reduce. This is exactly the code-creation operation of Section 4.1,
// where code processor weights are Vandermonde powers η^l.
func WeightedReduce(p *machine.Proc, g Group, rootIdx int, tag string, mine machine.Ints, weight int64) (machine.Ints, error) {
	scaled := make(machine.Ints, len(mine))
	var work int64
	for i := range mine {
		scaled[i] = mine[i].MulInt64(weight)
		l := int64(mine[i].WordLen())
		if l == 0 {
			l = 1
		}
		work += l
	}
	p.Work(work)
	return Reduce(p, g, rootIdx, tag, scaled)
}
