package points

import (
	"testing"

	"repro/internal/mat"
	"repro/internal/rat"
)

func TestStandardToom3Set(t *testing.T) {
	pts := Standard(5)
	want := []string{"0", "1", "-1", "2", "inf"}
	if len(pts) != 5 {
		t.Fatalf("Standard(5) has %d points", len(pts))
	}
	for i, p := range pts {
		if p.String() != want[i] {
			t.Errorf("point %d = %v, want %s", i, p, want[i])
		}
	}
}

func TestStandardSizes(t *testing.T) {
	for n := 1; n <= 12; n++ {
		pts := Standard(n)
		if len(pts) != n {
			t.Fatalf("Standard(%d) has %d points", n, len(pts))
		}
		for i := range pts {
			for j := i + 1; j < len(pts); j++ {
				if pts[i].Proportional(pts[j]) {
					t.Fatalf("Standard(%d): points %v and %v proportional", n, pts[i], pts[j])
				}
			}
		}
	}
}

func TestStandardWithRedundancy(t *testing.T) {
	for k := 2; k <= 5; k++ {
		for f := 0; f <= 3; f++ {
			pts := StandardWithRedundancy(k, f)
			if len(pts) != 2*k-1+f {
				t.Fatalf("k=%d f=%d: %d points", k, f, len(pts))
			}
			if err := Valid(pts, 2*k-1); err != nil {
				t.Errorf("k=%d f=%d: invalid set: %v", k, f, err)
			}
		}
	}
}

func TestRowHomogeneous(t *testing.T) {
	// At ∞ = (1:0), the row for width w is (0, …, 0, 1): picks the leading
	// coefficient.
	row := Infinity().Row(4)
	for j := 0; j < 3; j++ {
		if !row[j].IsZero() {
			t.Errorf("inf row[%d] = %v, want 0", j, row[j])
		}
	}
	if !row[3].Equal(rat.One()) {
		t.Errorf("inf row[3] = %v, want 1", row[3])
	}
	// At 0 = (0:1) the row is (1, 0, …, 0): picks the constant coefficient.
	row = FiniteInt64(0).Row(4)
	if !row[0].Equal(rat.One()) {
		t.Errorf("0 row[0] = %v", row[0])
	}
	for j := 1; j < 4; j++ {
		if !row[j].IsZero() {
			t.Errorf("0 row[%d] = %v, want 0", j, row[j])
		}
	}
	// At 2 = (2:1), width 3: (1, 2, 4).
	row = FiniteInt64(2).Row(3)
	for j, want := range []int64{1, 2, 4} {
		if !row[j].Equal(rat.FromInt64(want)) {
			t.Errorf("2 row[%d] = %v, want %d", j, row[j], want)
		}
	}
}

func TestInterpolationTheorem(t *testing.T) {
	// Theorem 2.1: distinct points => invertible evaluation matrix.
	for k := 2; k <= 5; k++ {
		pts := Standard(2*k - 1)
		wt, err := Interpolation(pts, 2*k-1)
		if err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		e := EvalMatrix(pts, 2*k-1)
		if !wt.Mul(e).Equal(mat.Identity(2*k - 1)) {
			t.Fatalf("k=%d: W^T · E != I", k)
		}
	}
}

func TestInterpolationInverse(t *testing.T) {
	pts := Standard(5)
	wt, err := Interpolation(pts, 5)
	if err != nil {
		t.Fatal(err)
	}
	e := EvalMatrix(pts, 5)
	prod := wt.Mul(e)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			want := rat.Zero()
			if i == j {
				want = rat.One()
			}
			if !prod.At(i, j).Equal(want) {
				t.Fatalf("W^T·E at (%d,%d) = %v", i, j, prod.At(i, j))
			}
		}
	}
}

func TestInterpolationErrors(t *testing.T) {
	if _, err := Interpolation(Standard(4), 5); err == nil {
		t.Error("expected size-mismatch error")
	}
}

func TestValidRejectsProportional(t *testing.T) {
	pts := []Point{FiniteInt64(1), Finite(rat.NewInt64(2, 2))}
	if err := Valid(pts, 2); err == nil {
		t.Error("proportional points should be invalid")
	}
	// (2:1) and (4:2) are the same projective point.
	pts = []Point{{X: rat.FromInt64(2), H: rat.One()}, {X: rat.FromInt64(4), H: rat.FromInt64(2)}}
	if err := Valid(pts, 2); err == nil {
		t.Error("scaled homogeneous points should be invalid")
	}
}

func TestValidTooFew(t *testing.T) {
	if err := Valid(Standard(3), 5); err == nil {
		t.Error("3 points cannot determine 5 coefficients")
	}
}

func TestMonomials(t *testing.T) {
	mons := Monomials(3, 2)
	if len(mons) != 9 {
		t.Fatalf("Monomials(3,2) has %d entries", len(mons))
	}
	// First and last in lexicographic order.
	if mons[0][0] != 0 || mons[0][1] != 0 {
		t.Errorf("first monomial %v", mons[0])
	}
	if mons[8][0] != 2 || mons[8][1] != 2 {
		t.Errorf("last monomial %v", mons[8])
	}
	seen := map[[2]int]bool{}
	for _, e := range mons {
		seen[[2]int{e[0], e[1]}] = true
	}
	if len(seen) != 9 {
		t.Error("duplicate monomials")
	}
}

func TestTensorPointsGeneralPosition(t *testing.T) {
	// Claim 2.2/Claim 6.5 direction: S^l for distinct base values is in
	// (|S|, l)-general position.
	base := []rat.Rat{rat.FromInt64(0), rat.FromInt64(1), rat.FromInt64(-1)}
	pts := TensorPoints(base, 2)
	if len(pts) != 9 {
		t.Fatalf("TensorPoints: %d points", len(pts))
	}
	if !InGeneralPosition(pts, 3, 2) {
		t.Fatal("tensor grid should be in (3,2)-general position")
	}
}

func TestInGeneralPositionRejectsDegenerate(t *testing.T) {
	// Nine points on a line in F^2 cannot be in (3,2)-general position:
	// a polynomial vanishing on the line (degree 1 in each var) kills them.
	var pts []MultiPoint
	for i := int64(0); i < 9; i++ {
		pts = append(pts, MultiPointInt64(i, i)) // the line y = x
	}
	if InGeneralPosition(pts, 3, 2) {
		t.Fatal("collinear points should not be in (3,2)-general position")
	}
}

func TestFindRedundantUnivariateLike(t *testing.T) {
	// l = 1: general position = distinct points; the heuristic must find
	// fresh integers.
	base := []MultiPoint{MultiPointInt64(0), MultiPointInt64(1), MultiPointInt64(-1)}
	added, err := FindRedundant(base, 3, 1, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(added) != 2 {
		t.Fatalf("added %d points", len(added))
	}
	all := append(append([]MultiPoint{}, base...), added...)
	if !InGeneralPosition(all, 3, 1) {
		t.Fatal("extended set not in general position")
	}
}

func TestFindRedundantMultivariate(t *testing.T) {
	// The core of Section 6.2: extend the 2x2 tensor grid (k=... r=2, l=2,
	// i.e. fault-tolerant multi-step Karatsuba-like) with redundant points.
	base := TensorPoints([]rat.Rat{rat.FromInt64(0), rat.FromInt64(1)}, 2)
	added, err := FindRedundant(base, 2, 2, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	all := append(append([]MultiPoint{}, base...), added...)
	if !InGeneralPosition(all, 2, 2) {
		t.Fatal("extended multivariate set not in (2,2)-general position")
	}
}

func TestFindRedundantRejectsBadSeed(t *testing.T) {
	var pts []MultiPoint
	for i := int64(0); i < 4; i++ {
		pts = append(pts, MultiPointInt64(i, 0)) // x-axis: degenerate for (2,2)
	}
	if _, err := FindRedundant(pts, 2, 2, 1, 5); err == nil {
		t.Fatal("expected error for degenerate seed")
	}
}

func TestBoxShell(t *testing.T) {
	if got := len(boxShell(2, 0)); got != 1 {
		t.Errorf("shell radius 0 size %d", got)
	}
	if got := len(boxShell(2, 1)); got != 8 {
		t.Errorf("shell radius 1 size %d, want 8", got)
	}
	if got := len(boxShell(1, 3)); got != 2 {
		t.Errorf("1-d shell radius 3 size %d, want 2", got)
	}
}

func TestMultiEvalMatrixShape(t *testing.T) {
	pts := TensorPoints([]rat.Rat{rat.FromInt64(0), rat.FromInt64(1), rat.FromInt64(2)}, 2)
	m := MultiEvalMatrix(pts, 3, 2)
	if m.Rows() != 9 || m.Cols() != 9 {
		t.Fatalf("shape %dx%d", m.Rows(), m.Cols())
	}
	if m.Det().IsZero() {
		t.Fatal("tensor-grid evaluation matrix should be invertible")
	}
}
