// Package points implements Toom-Cook evaluation-point sets.
//
// A Toom-Cook-k algorithm is determined by its split number k and a set of
// 2k-1 evaluation points (Section 2.2 of the paper). The fault-tolerant
// variant of Section 4.2 adds f redundant points, and the multi-step variant
// of Sections 4.3/6 needs points in (2k-1, l)-general position. This package
// provides:
//
//   - homogeneous projective points (x : h), including ∞ = (1 : 0), with the
//     standard sets used in practice (e.g. {0, 1, -1, 2, ∞} for Toom-3);
//   - evaluation-matrix construction for polynomials of a given width;
//   - validity checks: a point set is valid for fault tolerance f iff every
//     (2k-1)-subset has an invertible product-evaluation matrix;
//   - multivariate (l-variable) points, (r, l)-general-position checking
//     (Claim 6.1) and the redundant-point search heuristic (Claims 6.2–6.5).
package points

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/rat"
)

// Point is a homogeneous (projective) evaluation point (X : H). The paper
// follows Zanoni's homogeneous notation: the classical point ∞ is (1 : 0),
// and a finite point v is (v : 1). Two points are equivalent iff they are
// proportional; valid sets contain pairwise non-proportional points.
type Point struct {
	X, H rat.Rat
}

// Finite returns the finite point (v : 1).
func Finite(v rat.Rat) Point { return Point{X: v, H: rat.One()} }

// FiniteInt64 returns the finite point (v : 1) for a small integer v.
func FiniteInt64(v int64) Point { return Finite(rat.FromInt64(v)) }

// Infinity returns the point at infinity (1 : 0).
func Infinity() Point { return Point{X: rat.One(), H: rat.Zero()} }

// IsInfinity reports whether p is the point at infinity (H == 0).
func (p Point) IsInfinity() bool { return p.H.IsZero() }

// String formats the point, using ∞ for (x : 0).
func (p Point) String() string {
	if p.IsInfinity() {
		return "inf"
	}
	if p.H.Equal(rat.One()) {
		return p.X.String()
	}
	return fmt.Sprintf("(%v:%v)", p.X, p.H)
}

// Proportional reports whether p and q name the same projective point.
func (p Point) Proportional(q Point) bool {
	// p ~ q  iff  x_p·h_q == x_q·h_p (and neither is (0:0), which we forbid).
	return p.X.Mul(q.H).Equal(q.X.Mul(p.H))
}

// Row returns the evaluation row of p for polynomials of the given width
// (number of coefficients): [h^{w-1}, h^{w-2}x, …, x^{w-1}]. Evaluating a
// degree-(w-1) homogeneous polynomial at p is the dot product of this row
// with the coefficient vector.
func (p Point) Row(width int) []rat.Rat {
	row := make([]rat.Rat, width)
	for j := 0; j < width; j++ {
		row[j] = p.H.Pow(width - 1 - j).Mul(p.X.Pow(j))
	}
	return row
}

// Standard returns the canonical point set with n points:
// 0, 1, -1, 2, -2, 3, -3, …, with ∞ last. For n = 5 (Toom-3) this is the
// commonly used {0, 1, -1, 2, ∞} (cf. Section 1.1 of the paper).
func Standard(n int) []Point {
	if n < 1 {
		panic("points: need at least one point")
	}
	pts := make([]Point, 0, n)
	pts = append(pts, FiniteInt64(0))
	v := int64(1)
	for len(pts) < n-1 {
		pts = append(pts, FiniteInt64(v))
		if len(pts) < n-1 {
			pts = append(pts, FiniteInt64(-v))
		}
		v++
	}
	if len(pts) < n {
		pts = append(pts, Infinity())
	}
	return pts
}

// StandardWithRedundancy returns the 2k-1 standard points for Toom-Cook-k
// followed by f redundant points, all pairwise non-proportional. The
// redundant points continue the standard pattern with fresh finite values,
// so that every (2k-1)-subset of the result is a valid point set (verified
// by Valid in tests; for distinct univariate points this is the classical
// interpolation theorem, Theorem 2.1).
func StandardWithRedundancy(k, f int) []Point {
	if k < 2 {
		panic("points: Toom-Cook needs k >= 2")
	}
	if f < 0 {
		panic("points: negative redundancy")
	}
	base := Standard(2*k - 1)
	pts := make([]Point, 0, 2*k-1+f)
	pts = append(pts, base...)
	// Find the largest finite magnitude used, then continue alternating.
	maxAbs := int64(0)
	for _, p := range base {
		if p.IsInfinity() {
			continue
		}
		if v, ok := p.X.Num().Int64(); ok {
			if v < 0 {
				v = -v
			}
			if v > maxAbs {
				maxAbs = v
			}
		}
	}
	// The standard set ends either on +v or ∞; resume from the next unused
	// finite value, keeping the alternation dense.
	next := maxAbs
	usedNeg := false
	for _, p := range base {
		if !p.IsInfinity() && p.X.Sign() < 0 {
			if v, _ := p.X.Neg().Num().Int64(); v == maxAbs {
				usedNeg = true
			}
		}
	}
	for len(pts) < 2*k-1+f {
		if !usedNeg && next > 0 {
			pts = append(pts, FiniteInt64(-next))
			usedNeg = true
			continue
		}
		next++
		pts = append(pts, FiniteInt64(next))
		usedNeg = false
	}
	return pts
}

// EvalMatrix returns the len(pts)×width evaluation matrix whose i-th row is
// pts[i].Row(width). For width = k this is the paper's U (= V); for
// width = 2k-1 it is the product-polynomial evaluation matrix whose inverse
// transpose defines W.
func EvalMatrix(pts []Point, width int) *mat.Matrix {
	m := mat.New(len(pts), width)
	for i, p := range pts {
		row := p.Row(width)
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	return m
}

// Valid reports whether pts is a valid evaluation-point set for polynomials
// of the given product width: the evaluation matrix restricted to any
// `width` rows must be injective. For len(pts) == width this is simple
// invertibility; for len(pts) == width+f it is the fault-tolerance validity
// condition of Section 4.2 (any f erasures leave an invertible system).
func Valid(pts []Point, width int) error {
	if len(pts) < width {
		return fmt.Errorf("points: %d points cannot determine %d coefficients", len(pts), width)
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if pts[i].Proportional(pts[j]) {
				return fmt.Errorf("points: points %d and %d are proportional (%v ~ %v)", i, j, pts[i], pts[j])
			}
		}
	}
	full := EvalMatrix(pts, width)
	for _, subset := range subsets(len(pts), width) {
		if !full.SelectRows(subset).IsInjective() {
			return fmt.Errorf("points: subset %v has singular evaluation matrix", subset)
		}
	}
	return nil
}

// Interpolation returns W^T for the given points and product width: the
// inverse of the (square) product-evaluation matrix. It errors if the
// matrix is singular. This is also the "on the fly" interpolation matrix
// the fault-tolerant algorithm builds from whichever 2k-1 sub-problems
// survive (Section 4.2, Fault recovery).
func Interpolation(pts []Point, width int) (*mat.Matrix, error) {
	if len(pts) != width {
		return nil, fmt.Errorf("points: interpolation needs exactly %d points, got %d", width, len(pts))
	}
	e := EvalMatrix(pts, width)
	inv, err := e.Inverse()
	if err != nil {
		return nil, fmt.Errorf("points: singular evaluation matrix: %w", err)
	}
	return inv, nil
}

// subsets enumerates all size-s subsets of {0,…,n-1}. Exponential; used on
// the small sets (2k-1+f points) that arise in practice.
func subsets(n, s int) [][]int {
	var out [][]int
	idx := make([]int, s)
	var rec func(start, pos int)
	rec = func(start, pos int) {
		if pos == s {
			c := make([]int, s)
			copy(c, idx)
			out = append(out, c)
			return
		}
		for i := start; i <= n-(s-pos); i++ {
			idx[pos] = i
			rec(i+1, pos+1)
		}
	}
	rec(0, 0)
	return out
}
