package points

import (
	"fmt"

	"repro/internal/mat"
	"repro/internal/rat"
)

// MultiPoint is an evaluation point in F^l for multivariate polynomials —
// the setting of the paper's multi-step traversal (Sections 4.3 and 6),
// where l merged BFS steps turn Toom-Cook-k into a multiplication of
// l-variable polynomials (Claim 2.1).
type MultiPoint []rat.Rat

// MultiPointInt64 builds a MultiPoint from small integer coordinates.
func MultiPointInt64(coords ...int64) MultiPoint {
	p := make(MultiPoint, len(coords))
	for i, c := range coords {
		p[i] = rat.FromInt64(c)
	}
	return p
}

// Equal reports coordinate-wise equality.
func (p MultiPoint) Equal(q MultiPoint) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !p[i].Equal(q[i]) {
			return false
		}
	}
	return true
}

func (p MultiPoint) String() string {
	s := "("
	for i, c := range p {
		if i > 0 {
			s += ","
		}
		s += c.String()
	}
	return s + ")"
}

// Monomials enumerates the exponent tuples of Poly_{r,l} (Definition 2.4):
// all e ∈ [0, r-1]^l, in lexicographic order with the first variable most
// significant. There are r^l of them.
func Monomials(r, l int) [][]int {
	if r < 1 || l < 1 {
		panic("points: Monomials needs r, l >= 1")
	}
	total := 1
	for i := 0; i < l; i++ {
		total *= r
	}
	out := make([][]int, total)
	for idx := 0; idx < total; idx++ {
		e := make([]int, l)
		v := idx
		for i := l - 1; i >= 0; i-- {
			e[i] = v % r
			v /= r
		}
		out[idx] = e
	}
	return out
}

// MultiEvalMatrix returns the len(pts)×r^l evaluation matrix of pts for
// Poly_{r,l}: entry (i, m) is the m-th monomial evaluated at pts[i].
func MultiEvalMatrix(pts []MultiPoint, r, l int) *mat.Matrix {
	mons := Monomials(r, l)
	m := mat.New(len(pts), len(mons))
	for i, p := range pts {
		if len(p) != l {
			panic(fmt.Sprintf("points: point %v has %d coordinates, want %d", p, len(p), l))
		}
		for j, e := range mons {
			v := rat.One()
			for d := 0; d < l; d++ {
				v = v.Mul(p[d].Pow(e[d]))
			}
			m.Set(i, j, v)
		}
	}
	return m
}

// InGeneralPosition reports whether pts is in (r, l)-general position
// (Definition 6.1): the only polynomial of Poly_{r,l} vanishing on any
// r^l-subset is zero — equivalently (Claim 6.1), every r^l×r^l submatrix of
// the evaluation matrix is invertible. Exponential in subset count; intended
// for the small parameter ranges of the paper (k, l, f all small).
func InGeneralPosition(pts []MultiPoint, r, l int) bool {
	n := 1
	for i := 0; i < l; i++ {
		n *= r
	}
	if len(pts) < n {
		// Fewer than r^l points: the condition is on the full evaluation
		// matrix being injective as far as it goes; the paper only uses the
		// property for |S| >= r^l, so we check full row independence.
		return MultiEvalMatrix(pts, r, l).Rank() == len(pts)
	}
	full := MultiEvalMatrix(pts, r, l)
	for _, sub := range subsets(len(pts), n) {
		if full.SelectRows(sub).Det().IsZero() {
			return false
		}
	}
	return true
}

// TensorPoints returns S^l — the l-fold Cartesian power of a univariate
// point set (finite points only). By Claim 2.1 these are exactly the
// evaluation points of an l-step Toom-Cook run, and by Claim 2.2 they are in
// (r, l)-general position whenever |S| >= r distinct values are used.
func TensorPoints(base []rat.Rat, l int) []MultiPoint {
	if l < 1 {
		panic("points: TensorPoints needs l >= 1")
	}
	out := []MultiPoint{{}}
	for d := 0; d < l; d++ {
		next := make([]MultiPoint, 0, len(out)*len(base))
		for _, p := range out {
			for _, v := range base {
				q := make(MultiPoint, len(p)+1)
				copy(q, p)
				q[len(p)] = v
				next = append(next, q)
			}
		}
		out = next
	}
	return out
}

// FindRedundant implements the heuristic of Section 6.2: starting from a set
// S in (r, l)-general position, it adds `count` integer points one at a
// time, each time scanning small integer candidates x ∈ Z^l and keeping the
// first x for which S ∪ {x} remains in general position. Claims 6.4/6.5
// guarantee such x exists (candidates outside a null set work), so the scan
// terminates for a large enough search box; maxCoord bounds the box and an
// error is returned if it is exhausted.
func FindRedundant(s []MultiPoint, r, l, count int, maxCoord int64) ([]MultiPoint, error) {
	if !InGeneralPosition(s, r, l) {
		return nil, fmt.Errorf("points: seed set is not in (%d,%d)-general position", r, l)
	}
	cur := make([]MultiPoint, len(s))
	copy(cur, s)
	var added []MultiPoint
	for len(added) < count {
		found := false
	search:
		for radius := int64(0); radius <= maxCoord; radius++ {
			for _, cand := range boxShell(l, radius) {
				if containsPoint(cur, cand) {
					continue
				}
				trial := append(append([]MultiPoint{}, cur...), cand)
				if inGeneralPositionIncremental(cur, cand, r, l) {
					cur = trial
					added = append(added, cand)
					found = true
					break search
				}
			}
		}
		if !found {
			return nil, fmt.Errorf("points: no candidate within coordinate bound %d extends the set", maxCoord)
		}
	}
	return added, nil
}

// inGeneralPositionIncremental checks only the subsets that involve the new
// point x (Claim 6.2: if every (r^l-1)-subset P of S gives q_P(x) != 0, the
// extended set is in general position). This is the incremental form of the
// heuristic and avoids re-checking subsets of the already-valid S.
func inGeneralPositionIncremental(s []MultiPoint, x MultiPoint, r, l int) bool {
	n := 1
	for i := 0; i < l; i++ {
		n *= r
	}
	if len(s)+1 < n {
		all := append(append([]MultiPoint{}, s...), x)
		return MultiEvalMatrix(all, r, l).Rank() == len(all)
	}
	for _, sub := range subsets(len(s), n-1) {
		pts := make([]MultiPoint, 0, n)
		for _, i := range sub {
			pts = append(pts, s[i])
		}
		pts = append(pts, x)
		if MultiEvalMatrix(pts, r, l).Det().IsZero() {
			return false
		}
	}
	return true
}

func containsPoint(s []MultiPoint, p MultiPoint) bool {
	for _, q := range s {
		if q.Equal(p) {
			return true
		}
	}
	return false
}

// boxShell enumerates integer points in Z^l whose max-norm is exactly radius
// (the shell of the box), so FindRedundant prefers small coordinates —
// smaller evaluation points mean cheaper arithmetic, the practical
// optimization the paper's Section 7 calls out.
func boxShell(l int, radius int64) []MultiPoint {
	var out []MultiPoint
	coords := make([]int64, l)
	var rec func(d int, onShell bool)
	rec = func(d int, onShell bool) {
		if d == l {
			if onShell || radius == 0 {
				p := make(MultiPoint, l)
				for i, c := range coords {
					p[i] = rat.FromInt64(c)
				}
				out = append(out, p)
			}
			return
		}
		for c := -radius; c <= radius; c++ {
			coords[d] = c
			rec(d+1, onShell || c == radius || c == -radius)
		}
	}
	rec(0, false)
	return out
}
