// Package toomgraph implements the Toom-Graph technique of Bodrato and
// Zanoni (Definition 2.3 of the paper): expressing Toom-Cook's interpolation
// stage as a short sequence of elementary row operations — an "inversion
// sequence" — instead of a dense matrix product.
//
// The Toom-Graph is the weighted graph whose vertices are matrices and whose
// edges are elementary row operations; an inversion sequence is a path from
// (W^T)^{-1} (the product-polynomial evaluation matrix) to the identity.
// Applying the same operations to the vector of pointwise products yields
// the product-polynomial coefficients, because the accumulated operations
// compose to exactly W^T.
//
// The package provides hand-optimized sequences for Karatsuba and Toom-3
// (in the style of the GMP interpolation schedules), and Find, a bounded
// best-first search over the Toom-Graph that discovers sequences
// automatically — the paper's "heuristic to find a fast inversion sequence
// relative to the cost of different elementary linear operations".
//
// Every operation keeps vectors exactly integral: a combine
// row_d ← (cd·row_d + cs·row_s)/div is only legal when div divides the
// resulting row at the matrix level, which the search enforces, so applying
// a found sequence to genuine product evaluations never leaves ℤ.
package toomgraph

import (
	"container/heap"
	"fmt"
	"strings"

	"repro/internal/bigint"
)

// OpKind distinguishes elementary row operations.
type OpKind int

const (
	// OpCombine is row[Dst] ← (CDst·row[Dst] + CSrc·row[Src]) / Div.
	OpCombine OpKind = iota
	// OpSwap exchanges row[Dst] and row[Src].
	OpSwap
)

// Op is one elementary row operation of an inversion sequence.
type Op struct {
	Kind       OpKind
	Dst, Src   int
	CDst, CSrc int64 // combine coefficients (CDst is usually 1)
	Div        int64 // exact divisor applied after the combine
}

// Cost returns the op's weight in the Toom-Graph. The weights follow the
// spirit of Bodrato-Zanoni's cost model: plain add/sub is cheapest,
// shift-friendly coefficients and divisors (powers of two) are cheap,
// arbitrary small multiplies and odd divisions cost more, swaps are nearly
// free (pointer renaming).
func (o Op) Cost() float64 {
	if o.Kind == OpSwap {
		return 0.05
	}
	c := 0.0
	c += coefCost(o.CSrc)
	if o.CDst != 1 {
		c += coefCost(o.CDst)
	}
	if o.Div != 1 && o.Div != -1 {
		if isPow2(abs64(o.Div)) {
			c += 0.4
		} else {
			c += 1.0
		}
	}
	if c == 0 {
		c = 0.05
	}
	return c
}

func coefCost(c int64) float64 {
	switch a := abs64(c); {
	case a == 0:
		return 0
	case a == 1:
		return 1.0
	case isPow2(a):
		return 1.1
	default:
		return 1.5
	}
}

func abs64(v int64) int64 {
	if v < 0 {
		return -v
	}
	return v
}

func isPow2(v int64) bool { return v > 0 && v&(v-1) == 0 }

// String renders the op in the notation of the Bodrato-Zanoni schedules.
func (o Op) String() string {
	if o.Kind == OpSwap {
		return fmt.Sprintf("v%d <-> v%d", o.Dst, o.Src)
	}
	var b strings.Builder
	fmt.Fprintf(&b, "v%d <- (", o.Dst)
	if o.CDst == 1 {
		fmt.Fprintf(&b, "v%d", o.Dst)
	} else {
		fmt.Fprintf(&b, "%d*v%d", o.CDst, o.Dst)
	}
	switch {
	case o.CSrc == 1:
		fmt.Fprintf(&b, " + v%d", o.Src)
	case o.CSrc == -1:
		fmt.Fprintf(&b, " - v%d", o.Src)
	case o.CSrc < 0:
		fmt.Fprintf(&b, " - %d*v%d", -o.CSrc, o.Src)
	case o.CSrc > 0:
		fmt.Fprintf(&b, " + %d*v%d", o.CSrc, o.Src)
	}
	b.WriteString(")")
	if o.Div != 1 {
		fmt.Fprintf(&b, "/%d", o.Div)
	}
	return b.String()
}

// Sequence is an inversion sequence: applied to the vector of pointwise
// products it computes W^T·v, i.e. the product-polynomial coefficients.
type Sequence struct {
	N   int // vector length (2k-1)
	Ops []Op
}

// Cost returns the total Toom-Graph path weight.
func (s *Sequence) Cost() float64 {
	total := 0.0
	for _, o := range s.Ops {
		total += o.Cost()
	}
	return total
}

// String lists the schedule one op per line.
func (s *Sequence) String() string {
	var b strings.Builder
	for i, o := range s.Ops {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(o.String())
	}
	return b.String()
}

// Apply runs the sequence on a copy of v, returning the transformed vector.
// It errors if any exact division fails — which cannot happen on genuine
// product evaluations, so an error indicates corrupted input.
func (s *Sequence) Apply(v []bigint.Int) ([]bigint.Int, error) {
	if len(v) != s.N {
		return nil, fmt.Errorf("toomgraph: sequence expects %d values, got %d", s.N, len(v))
	}
	w := make([]bigint.Int, len(v))
	copy(w, v)
	for _, o := range s.Ops {
		switch o.Kind {
		case OpSwap:
			w[o.Dst], w[o.Src] = w[o.Src], w[o.Dst]
		case OpCombine:
			t := w[o.Dst]
			if o.CDst != 1 {
				t = t.MulInt64(o.CDst)
			}
			if o.CSrc != 0 {
				t = t.Add(w[o.Src].MulInt64(o.CSrc))
			}
			if o.Div != 1 {
				d := o.Div
				// Validate divisibility before committing.
				q, r := t.Abs().QuoRemWord(uint64(abs64(d)))
				if r != 0 {
					return nil, fmt.Errorf("toomgraph: inexact division by %d in %q", d, o.String())
				}
				if (t.Sign() < 0) != (d < 0) && t.Sign() != 0 {
					q = q.Neg()
				}
				t = q
			}
			w[o.Dst] = t
		}
	}
	return w, nil
}

// Karatsuba returns the classical 2-op inversion sequence for Toom-Cook-2
// over the standard points (0, 1, ∞): v1 ← v1 − v0 − v2.
func Karatsuba() *Sequence {
	return &Sequence{N: 3, Ops: []Op{
		{Kind: OpCombine, Dst: 1, Src: 0, CDst: 1, CSrc: -1, Div: 1},
		{Kind: OpCombine, Dst: 1, Src: 2, CDst: 1, CSrc: -1, Div: 1},
	}}
}

// Toom3 returns a hand-optimized inversion sequence for Toom-Cook-3 over
// the standard points (0, 1, -1, 2, ∞), in the style of the GMP/Bodrato
// interpolation schedule: 7 combines, 3 exact divisions, 1 swap.
func Toom3() *Sequence {
	return &Sequence{N: 5, Ops: []Op{
		// v3 ← (v3 − v2)/3        = c1 + c2 + 3c3 + 5c4
		{Kind: OpCombine, Dst: 3, Src: 2, CDst: 1, CSrc: -1, Div: 3},
		// v2 ← (v2 − v1)/(−2)     = c1 + c3
		{Kind: OpCombine, Dst: 2, Src: 1, CDst: 1, CSrc: -1, Div: -2},
		// v1 ← v1 − v0            = c1 + c2 + c3 + c4
		{Kind: OpCombine, Dst: 1, Src: 0, CDst: 1, CSrc: -1, Div: 1},
		// v3 ← (v3 − v1)/2        = c3 + 2c4
		{Kind: OpCombine, Dst: 3, Src: 1, CDst: 1, CSrc: -1, Div: 2},
		// v1 ← v1 − v2            = c2 + c4
		{Kind: OpCombine, Dst: 1, Src: 2, CDst: 1, CSrc: -1, Div: 1},
		// v1 ← v1 − v4            = c2
		{Kind: OpCombine, Dst: 1, Src: 4, CDst: 1, CSrc: -1, Div: 1},
		// v3 ← v3 − 2·v4          = c3
		{Kind: OpCombine, Dst: 3, Src: 4, CDst: 1, CSrc: -2, Div: 1},
		// v2 ← v2 − v3            = c1
		{Kind: OpCombine, Dst: 2, Src: 3, CDst: 1, CSrc: -1, Div: 1},
		// reorder: (c0, c2, c1, c3, c4) → (c0, c1, c2, c3, c4)
		{Kind: OpSwap, Dst: 1, Src: 2},
	}}
}

// Toom4 returns a hand-derived inversion sequence for Toom-Cook-4 over the
// standard points (0, 1, -1, 2, -2, 3, ∞), using the classical even/odd
// splitting: v(±1) and v(±2) pairs isolate the even and odd coefficient
// sums, the evens solve against the known c0 = v(0) and c6 = v(∞), and
// v(3) supplies the third odd equation. Every division is exact at the
// matrix level, so the schedule never leaves ℤ.
func Toom4() *Sequence {
	c := func(dst, src int, cSrc, div int64) Op {
		return Op{Kind: OpCombine, Dst: dst, Src: src, CDst: 1, CSrc: cSrc, Div: div}
	}
	return &Sequence{N: 7, Ops: []Op{
		// Odd/even split of the ±1 pair: v2 ← O1 = c1+c3+c5, v1 ← E1 = c0+c2+c4+c6.
		c(2, 1, -1, -2),
		c(1, 2, -1, 1),
		// Odd/even split of the ±2 pair: v4 ← O2 = c1+4c3+16c5, v3 ← E2 = c0+4c2+16c4+64c6.
		c(4, 3, -1, -4),
		c(3, 4, -2, 1),
		// Even system: v1 ← A = c2+c4, v3 ← B = 4c2+16c4, then c4 and c2.
		c(1, 0, -1, 1),
		c(1, 6, -1, 1),
		c(3, 0, -1, 1),
		c(3, 6, -64, 1),
		c(3, 1, -4, 12), // v3 = c4
		c(1, 3, -1, 1),  // v1 = c2
		// Third odd equation from v(3): v5 ← O3 = c1+9c3+81c5.
		c(5, 0, -1, 1),
		c(5, 1, -9, 1),
		c(5, 3, -81, 1),
		c(5, 6, -729, 1),
		c(5, 0, 0, 3),
		// Odd system: D' = c3+5c5, G' = c3+10c5, then c5, c3, c1.
		c(4, 2, -1, 3), // v4 = D'
		c(5, 2, -1, 8), // v5 = G'
		c(5, 4, -1, 5), // v5 = c5
		c(4, 5, -5, 1), // v4 = c3
		c(2, 4, -1, 1),
		c(2, 5, -1, 1), // v2 = c1
		// Reorder (c0, c2, c1, c4, c3, c5, c6) → (c0, …, c6).
		{Kind: OpSwap, Dst: 1, Src: 2},
		{Kind: OpSwap, Dst: 3, Src: 4},
	}}
}

// Toom5 returns a hand-derived inversion sequence for Toom-Cook-5 over the
// standard points (0, 1, -1, 2, -2, 3, -3, 4, ∞), extending the Toom-4
// even/odd derivation: three ± pairs isolate the even/odd sums, the even
// system solves against the known c0 and c8, and v(4) supplies the fourth
// odd equation. All divisions are exact at the matrix level.
func Toom5() *Sequence {
	c := func(dst, src int, cSrc, div int64) Op {
		return Op{Kind: OpCombine, Dst: dst, Src: src, CDst: 1, CSrc: cSrc, Div: div}
	}
	return &Sequence{N: 9, Ops: []Op{
		// Split the ±1, ±2, ±3 pairs into odd/even sums.
		c(2, 1, -1, -2), // v2 = O1  = c1+c3+c5+c7
		c(1, 2, -1, 1),  // v1 = E1  = c0+c2+c4+c6+c8
		c(4, 3, -1, -4), // v4 = O2' = c1+4c3+16c5+64c7
		c(3, 4, -2, 1),  // v3 = E2  = c0+4c2+16c4+64c6+256c8
		c(6, 5, -1, -6), // v6 = O3' = c1+9c3+81c5+729c7
		c(5, 6, -3, 1),  // v5 = E3  = c0+9c2+81c4+729c6+6561c8
		// Even system against the known c0 = v0 and c8 = v8.
		c(1, 0, -1, 1),
		c(1, 8, -1, 1), // v1 = A1  = c2+c4+c6
		c(3, 0, -1, 1),
		c(3, 8, -256, 1),
		c(3, 0, 0, 4), // v3 = A2' = c2+4c4+16c6
		c(5, 0, -1, 1),
		c(5, 8, -6561, 1),
		c(5, 0, 0, 9),  // v5 = A3' = c2+9c4+81c6
		c(5, 3, -1, 5), // v5 = B2' = c4+13c6   (before v3 is consumed)
		c(3, 1, -1, 3), // v3 = B1' = c4+5c6
		c(5, 3, -1, 8), // v5 = c6
		c(3, 5, -5, 1), // v3 = c4
		c(1, 3, -1, 1),
		c(1, 5, -1, 1), // v1 = c2
		// Fourth odd equation from v(4), evens removed.
		c(7, 0, -1, 1),
		c(7, 1, -16, 1),
		c(7, 3, -256, 1),
		c(7, 5, -4096, 1),
		c(7, 8, -65536, 1),
		c(7, 0, 0, 4), // v7 = O4'' = c1+16c3+256c5+4096c7
		// Odd system (consume higher differences first).
		c(7, 6, -1, 7),  // v7 = D3 = c3+25c5+481c7
		c(6, 4, -1, 5),  // v6 = D2 = c3+13c5+133c7
		c(4, 2, -1, 3),  // v4 = D1 = c3+5c5+21c7
		c(7, 6, -1, 12), // v7 = G2 = c5+29c7
		c(6, 4, -1, 8),  // v6 = G1 = c5+14c7
		c(7, 6, -1, 15), // v7 = c7
		c(6, 7, -14, 1), // v6 = c5
		c(4, 6, -5, 1),
		c(4, 7, -21, 1), // v4 = c3
		c(2, 4, -1, 1),
		c(2, 6, -1, 1),
		c(2, 7, -1, 1), // v2 = c1
		// Reorder (c0, c2, c1, c4, c3, c6, c5, c7, c8) → identity.
		{Kind: OpSwap, Dst: 1, Src: 2},
		{Kind: OpSwap, Dst: 3, Src: 4},
		{Kind: OpSwap, Dst: 5, Src: 6},
	}}
}

// ForK returns a known hand-optimized sequence for Toom-Cook-k over the
// standard point set, or nil if none is catalogued.
func ForK(k int) *Sequence {
	switch k {
	case 2:
		return Karatsuba()
	case 3:
		return Toom3()
	case 4:
		return Toom4()
	case 5:
		return Toom5()
	default:
		return nil
	}
}

// ---------------------------------------------------------------------------
// Toom-Graph search
// ---------------------------------------------------------------------------

// Options configures the Find search.
type Options struct {
	// Coefficients tried for CSrc in combines (CDst is fixed at 1).
	Coefficients []int64
	// Divisors tried after each combine (besides 1), applied only when the
	// whole row is divisible.
	Divisors []int64
	// MaxNodes bounds the number of expanded states.
	MaxNodes int
	// MaxEntry bounds the magnitude of matrix entries along the path,
	// pruning runaway states.
	MaxEntry int64
	// Greed weights the heuristic against accumulated cost (weighted
	// best-first search). 1.0 approximates A*; larger values find paths
	// faster at the cost of optimality. The Toom-Graph method is explicitly
	// a heuristic (Definition 2.3), so suboptimal-but-short schedules are
	// acceptable.
	Greed float64
}

// DefaultOptions are suitable for k = 2 and k = 3 standard point sets.
func DefaultOptions() Options {
	return Options{
		Coefficients: []int64{-1, 1, -2, 2},
		Divisors:     []int64{2, -2, 3, -3, 6, -6},
		MaxNodes:     150000,
		MaxEntry:     64,
		Greed:        2.5,
	}
}

// Find searches the Toom-Graph for an inversion sequence transforming the
// integer evaluation matrix e (given as rows) into the identity, minimizing
// total op cost (best-first search with an inconsistency-tolerant reopening
// strategy). It returns an error if the budget is exhausted first.
func Find(e [][]int64, opts Options) (*Sequence, error) {
	n := len(e)
	for _, row := range e {
		if len(row) != n {
			return nil, fmt.Errorf("toomgraph: evaluation matrix must be square")
		}
	}
	if exceeds(e, 127) || opts.MaxEntry > 127 {
		return nil, fmt.Errorf("toomgraph: entries beyond the int8 state encoding (max 127)")
	}
	start := flatten(e)
	goal := identityFlat(n)
	if start == goal {
		return &Sequence{N: n}, nil
	}
	if opts.Greed <= 0 {
		opts.Greed = 1
	}

	dist := map[string]float64{start: 0}
	pq := &nodeHeap{}
	heap.Push(pq, heapEntry{priority: opts.Greed * heuristic(start, n), node: searchNode{state: start, g: 0}})
	expanded := 0

	for pq.Len() > 0 {
		entry := heap.Pop(pq).(heapEntry)
		cur := entry.node
		if cur.state == goal {
			ops := make([]Op, len(cur.seq))
			copy(ops, cur.seq)
			return &Sequence{N: n, Ops: ops}, nil
		}
		if best, ok := dist[cur.state]; ok && cur.g > best {
			continue
		}
		expanded++
		if expanded > opts.MaxNodes {
			return nil, fmt.Errorf("toomgraph: search budget (%d nodes) exhausted", opts.MaxNodes)
		}
		m := unflatten(cur.state, n)
		for _, op := range neighbors(m, n, opts) {
			next := applyToMatrix(m, op, n)
			if next == nil {
				continue
			}
			if exceeds(next, opts.MaxEntry) {
				continue
			}
			key := flatten(next)
			g := cur.g + op.Cost()
			if best, ok := dist[key]; ok && g >= best {
				continue
			}
			dist[key] = g
			seq := make([]Op, len(cur.seq), len(cur.seq)+1)
			copy(seq, cur.seq)
			seq = append(seq, op)
			heap.Push(pq, heapEntry{priority: g + opts.Greed*heuristic(key, n), node: searchNode{state: key, g: g, seq: seq}})
		}
	}
	return nil, fmt.Errorf("toomgraph: no inversion sequence found")
}

// neighbors enumerates candidate ops from a state.
func neighbors(m [][]int64, n int, opts Options) []Op {
	var ops []Op
	for dst := 0; dst < n; dst++ {
		for src := 0; src < n; src++ {
			if dst == src {
				continue
			}
			ops = append(ops, Op{Kind: OpSwap, Dst: dst, Src: src})
			for _, c := range opts.Coefficients {
				ops = append(ops, Op{Kind: OpCombine, Dst: dst, Src: src, CDst: 1, CSrc: c, Div: 1})
				for _, d := range opts.Divisors {
					ops = append(ops, Op{Kind: OpCombine, Dst: dst, Src: src, CDst: 1, CSrc: c, Div: d})
				}
			}
		}
		// Pure divisions of a single row (CSrc = 0).
		for _, d := range opts.Divisors {
			ops = append(ops, Op{Kind: OpCombine, Dst: dst, Src: (dst + 1) % n, CDst: 1, CSrc: 0, Div: d})
		}
	}
	return ops
}

// applyToMatrix applies op to a copy of m, returning nil when an exact
// division fails (illegal edge in the Toom-Graph).
func applyToMatrix(m [][]int64, op Op, n int) [][]int64 {
	out := make([][]int64, n)
	for i := range m {
		out[i] = append([]int64(nil), m[i]...)
	}
	switch op.Kind {
	case OpSwap:
		out[op.Dst], out[op.Src] = out[op.Src], out[op.Dst]
	case OpCombine:
		for j := 0; j < n; j++ {
			v := op.CDst*out[op.Dst][j] + op.CSrc*out[op.Src][j]
			if op.Div != 1 {
				if v%op.Div != 0 {
					return nil
				}
				v /= op.Div
			}
			out[op.Dst][j] = v
		}
	}
	return out
}

// heuristic estimates remaining cost from the number of entries that differ
// from the identity, with a bonus for rows that are entirely correct. A
// combine fixes at most one row, so wrong rows dominate; wrong entries break
// ties toward states that are "almost diagonal".
func heuristic(state string, n int) float64 {
	m := unflatten(state, n)
	wrongRows, wrongEntries := 0, 0
	for i := 0; i < n; i++ {
		rowOK := true
		for j := 0; j < n; j++ {
			want := int64(0)
			if i == j {
				want = 1
			}
			if m[i][j] != want {
				rowOK = false
				wrongEntries++
			}
		}
		if !rowOK {
			wrongRows++
		}
	}
	return 0.9*float64(wrongRows) + 0.25*float64(wrongEntries)
}

func exceeds(m [][]int64, bound int64) bool {
	for _, row := range m {
		for _, v := range row {
			if v > bound || v < -bound {
				return true
			}
		}
	}
	return false
}

func identityFlat(n int) string {
	m := make([][]int64, n)
	for i := range m {
		m[i] = make([]int64, n)
		m[i][i] = 1
	}
	return flatten(m)
}

// flatten encodes a matrix with entries in [-128, 127] as a compact byte
// string (map key). Entries are guaranteed small by Options.MaxEntry.
func flatten(m [][]int64) string {
	buf := make([]byte, 0, len(m)*len(m))
	for _, row := range m {
		for _, v := range row {
			buf = append(buf, byte(int8(v)))
		}
	}
	return string(buf)
}

func unflatten(s string, n int) [][]int64 {
	m := make([][]int64, n)
	for i := 0; i < n; i++ {
		m[i] = make([]int64, n)
		for j := 0; j < n; j++ {
			m[i][j] = int64(int8(s[i*n+j]))
		}
	}
	return m
}

type searchNode struct {
	state string
	g     float64
	seq   []Op
}

type heapEntry struct {
	priority float64
	node     searchNode
}

type nodeHeap []heapEntry

func (h nodeHeap) Len() int            { return len(h) }
func (h nodeHeap) Less(i, j int) bool  { return h[i].priority < h[j].priority }
func (h nodeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *nodeHeap) Push(x interface{}) { *h = append(*h, x.(heapEntry)) }
func (h *nodeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
