package toomgraph

import (
	"math/rand"
	"testing"

	"repro/internal/bigint"
	"repro/internal/points"
	"repro/internal/toom"
)

// evalRows returns the integer product-evaluation matrix for Toom-Cook-k
// standard points (the Toom-Graph start vertex (W^T)^{-1}).
func evalRows(t *testing.T, k int) [][]int64 {
	t.Helper()
	m := points.EvalMatrix(points.Standard(2*k-1), 2*k-1)
	rows := make([][]int64, m.Rows())
	for i := 0; i < m.Rows(); i++ {
		rows[i] = make([]int64, m.Cols())
		for j := 0; j < m.Cols(); j++ {
			v := m.At(i, j)
			if !v.IsInt() {
				t.Fatalf("non-integer evaluation entry %v", v)
			}
			n, ok := v.Num().Int64()
			if !ok {
				t.Fatalf("entry overflow")
			}
			rows[i][j] = n
		}
	}
	return rows
}

// checkSequence verifies that seq computes W^T·v for random product vectors:
// it must map eval(a)⊙eval(b) to the convolution of a and b.
func checkSequence(t *testing.T, k int, seq *Sequence) {
	t.Helper()
	alg := toom.MustNew(k)
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 50; trial++ {
		da := make([]bigint.Int, k)
		db := make([]bigint.Int, k)
		for i := 0; i < k; i++ {
			da[i] = bigint.FromInt64(rng.Int63n(2001) - 1000)
			db[i] = bigint.FromInt64(rng.Int63n(2001) - 1000)
		}
		ea := alg.EvalDigits(da, nil)
		eb := alg.EvalDigits(db, nil)
		prods := make([]bigint.Int, 2*k-1)
		for i := range prods {
			prods[i] = ea[i].Mul(eb[i])
		}
		got, err := seq.Apply(prods)
		if err != nil {
			t.Fatalf("Apply: %v", err)
		}
		want := alg.Interpolate(prods, nil)
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("k=%d coeff %d: sequence gives %v, matrix gives %v", k, i, got[i], want[i])
			}
		}
	}
}

func TestKaratsubaSequence(t *testing.T) {
	checkSequence(t, 2, Karatsuba())
}

func TestToom3Sequence(t *testing.T) {
	checkSequence(t, 3, Toom3())
}

func TestForK(t *testing.T) {
	if ForK(2) == nil || ForK(3) == nil || ForK(4) == nil {
		t.Error("catalogued sequences missing")
	}
	if ForK(7) != nil {
		t.Error("unexpected sequence for k=7")
	}
}

func TestSequenceCostOrdering(t *testing.T) {
	// The optimized Toom-3 schedule must beat a naive dense-matrix cost
	// proxy: 5x5 dense W^T with many non-unit coefficients would cost well
	// over the schedule's handful of adds.
	seq := Toom3()
	if c := seq.Cost(); c <= 0 || c > 15 {
		t.Errorf("Toom3 cost %v out of expected range", c)
	}
	if Karatsuba().Cost() >= seq.Cost() {
		t.Error("Karatsuba sequence should be cheaper than Toom-3")
	}
}

func TestApplyRejectsWrongLength(t *testing.T) {
	if _, err := Karatsuba().Apply(make([]bigint.Int, 5)); err == nil {
		t.Error("expected length error")
	}
}

func TestApplyInexactDivision(t *testing.T) {
	seq := &Sequence{N: 1, Ops: []Op{{Kind: OpCombine, Dst: 0, Src: 0, CDst: 1, CSrc: 0, Div: 3}}}
	if _, err := seq.Apply([]bigint.Int{bigint.FromInt64(7)}); err == nil {
		t.Error("expected inexact-division error")
	}
	if got, err := seq.Apply([]bigint.Int{bigint.FromInt64(-9)}); err != nil {
		t.Errorf("exact division errored: %v", err)
	} else if v, _ := got[0].Int64(); v != -3 {
		t.Errorf("-9/3 = %d", v)
	}
}

func TestNegativeDivisor(t *testing.T) {
	seq := &Sequence{N: 1, Ops: []Op{{Kind: OpCombine, Dst: 0, Src: 0, CDst: 1, CSrc: 0, Div: -2}}}
	got, err := seq.Apply([]bigint.Int{bigint.FromInt64(10)})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := got[0].Int64(); v != -5 {
		t.Errorf("10/-2 = %d", v)
	}
}

func TestOpString(t *testing.T) {
	op := Op{Kind: OpCombine, Dst: 3, Src: 2, CDst: 1, CSrc: -1, Div: 3}
	if got := op.String(); got != "v3 <- (v3 - v2)/3" {
		t.Errorf("String() = %q", got)
	}
	sw := Op{Kind: OpSwap, Dst: 1, Src: 2}
	if got := sw.String(); got != "v1 <-> v2" {
		t.Errorf("String() = %q", got)
	}
}

func TestFindKaratsuba(t *testing.T) {
	seq, err := Find(evalRows(t, 2), DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	checkSequence(t, 2, seq)
	// The search should find something no worse than the hand schedule
	// plus a small slack.
	if seq.Cost() > Karatsuba().Cost()+0.5 {
		t.Errorf("search found cost %.2f, hand schedule costs %.2f", seq.Cost(), Karatsuba().Cost())
	}
}

func TestFindToom3(t *testing.T) {
	if testing.Short() {
		t.Skip("Toom-3 graph search is expensive; skipped in -short")
	}
	opts := DefaultOptions()
	seq, err := Find(evalRows(t, 3), opts)
	if err != nil {
		t.Skipf("search budget exhausted (acceptable; heuristic): %v", err)
	}
	checkSequence(t, 3, seq)
	t.Logf("found Toom-3 schedule, cost %.2f:\n%s", seq.Cost(), seq)
}

func TestFindIdentityIsEmpty(t *testing.T) {
	id := [][]int64{{1, 0}, {0, 1}}
	seq, err := Find(id, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(seq.Ops) != 0 {
		t.Errorf("identity should need no ops, got %d", len(seq.Ops))
	}
}

func TestFindRejectsNonSquare(t *testing.T) {
	if _, err := Find([][]int64{{1, 2, 3}}, DefaultOptions()); err == nil {
		t.Error("expected non-square error")
	}
}

func TestToom4Sequence(t *testing.T) {
	checkSequence(t, 4, Toom4())
}

func TestForKToom4(t *testing.T) {
	if ForK(4) == nil {
		t.Fatal("Toom-4 schedule missing from catalogue")
	}
}

func TestToom5Sequence(t *testing.T) {
	checkSequence(t, 5, Toom5())
}
