// Package rat implements exact rational arithmetic over the repository's
// own big integers (internal/bigint).
//
// Rationals appear in three places in the reproduction: inverting Toom-Cook
// interpolation matrices (whose inverses have entries like 1/6), decoding
// the systematic Vandermonde erasure code (solving a small linear system
// whose solution must be recovered exactly), and validating evaluation-point
// sets ((r,l)-general position is a statement about exact determinants).
// Floating point is never acceptable for any of these, so everything here is
// exact.
package rat

import (
	"fmt"

	"repro/internal/bigint"
)

// Rat is an exact rational number p/q with q > 0 and gcd(p, q) = 1.
// The zero value is 0/1 and ready to use. Rats are immutable.
type Rat struct {
	p bigint.Int // numerator, carries the sign
	q bigint.Int // denominator, always positive; zero value means 1
}

// denom returns the denominator, mapping the zero value's implicit 1.
func (x Rat) denom() bigint.Int {
	if x.q.IsZero() {
		return bigint.One()
	}
	return x.q
}

// FromInt returns the rational v/1.
func FromInt(v bigint.Int) Rat { return Rat{p: v, q: bigint.One()} }

// FromInt64 returns the rational v/1.
func FromInt64(v int64) Rat { return FromInt(bigint.FromInt64(v)) }

// New returns the rational p/q in lowest terms. It panics if q is zero.
func New(p, q bigint.Int) Rat {
	if q.IsZero() {
		panic("rat: zero denominator")
	}
	if q.Sign() < 0 {
		p, q = p.Neg(), q.Neg()
	}
	g := gcd(p.Abs(), q)
	if !g.Equal(bigint.One()) {
		p = divExact(p, g)
		q = divExact(q, g)
	}
	return Rat{p: p, q: q}
}

// NewInt64 returns the rational p/q for small operands.
func NewInt64(p, q int64) Rat { return New(bigint.FromInt64(p), bigint.FromInt64(q)) }

// Num returns the numerator (carrying the sign).
func (x Rat) Num() bigint.Int { return x.p }

// Den returns the (positive) denominator.
func (x Rat) Den() bigint.Int { return x.denom() }

// Zero returns 0.
func Zero() Rat { return Rat{} }

// One returns 1.
func One() Rat { return FromInt64(1) }

// IsZero reports whether x == 0.
func (x Rat) IsZero() bool { return x.p.IsZero() }

// IsInt reports whether x is an integer.
func (x Rat) IsInt() bool { return x.denom().Equal(bigint.One()) }

// Int returns the integer value of x; it panics if x is not an integer.
// Use it where exactness is an invariant (e.g. erasure decoding must yield
// integers), so that a violation is detected rather than silently rounded.
func (x Rat) Int() bigint.Int {
	if !x.IsInt() {
		panic(fmt.Sprintf("rat: %v is not an integer", x))
	}
	return x.p
}

// Sign returns -1, 0, or +1.
func (x Rat) Sign() int { return x.p.Sign() }

// Neg returns -x.
func (x Rat) Neg() Rat { return Rat{p: x.p.Neg(), q: x.q} }

// Add returns x + y.
func (x Rat) Add(y Rat) Rat {
	xq, yq := x.denom(), y.denom()
	return New(x.p.Mul(yq).Add(y.p.Mul(xq)), xq.Mul(yq))
}

// Sub returns x - y.
func (x Rat) Sub(y Rat) Rat { return x.Add(y.Neg()) }

// Mul returns x * y.
func (x Rat) Mul(y Rat) Rat {
	return New(x.p.Mul(y.p), x.denom().Mul(y.denom()))
}

// Inv returns 1/x; it panics if x is zero.
func (x Rat) Inv() Rat {
	if x.IsZero() {
		panic("rat: inverse of zero")
	}
	return New(x.denom(), x.p)
}

// Div returns x / y; it panics if y is zero.
func (x Rat) Div(y Rat) Rat { return x.Mul(y.Inv()) }

// Cmp compares x and y: -1 if x<y, 0 if equal, +1 if x>y.
func (x Rat) Cmp(y Rat) int {
	// Cross-multiply; denominators are positive.
	return x.p.Mul(y.denom()).Cmp(y.p.Mul(x.denom()))
}

// Equal reports whether x == y.
func (x Rat) Equal(y Rat) bool { return x.Cmp(y) == 0 }

// MulInt returns x * v for an integer v.
func (x Rat) MulInt(v bigint.Int) Rat { return x.Mul(FromInt(v)) }

// Pow returns x^n for n >= 0 (x^0 = 1, including 0^0 = 1, the convention
// used by homogeneous evaluation points where h^0 appears with h = 0).
func (x Rat) Pow(n int) Rat {
	if n < 0 {
		panic("rat: negative exponent")
	}
	result := One()
	base := x
	for n > 0 {
		if n&1 == 1 {
			result = result.Mul(base)
		}
		base = base.Mul(base)
		n >>= 1
	}
	return result
}

// String formats x as "p/q", or "p" when integral.
func (x Rat) String() string {
	if x.IsInt() {
		return x.p.String()
	}
	return x.p.String() + "/" + x.q.String()
}

// gcd returns gcd(|a|, |b|) with gcd(0, b) = |b|.
func gcd(a, b bigint.Int) bigint.Int {
	a, b = a.Abs(), b.Abs()
	for !b.IsZero() {
		a, b = b, mod(a, b)
	}
	return a
}

// mod returns a mod b for positive b via repeated shift-subtract
// (binary long division on magnitudes).
func mod(a, b bigint.Int) bigint.Int {
	if a.Cmp(b) < 0 {
		return a
	}
	r := a
	for r.Cmp(b) >= 0 {
		shift := uint(r.BitLen() - b.BitLen())
		t := b.Shl(shift)
		if t.Cmp(r) > 0 {
			t = b.Shl(shift - 1)
		}
		r = r.Sub(t)
	}
	return r
}

// divExact returns a/b for b exactly dividing a (magnitude long division).
func divExact(a, b bigint.Int) bigint.Int {
	if b.IsZero() {
		panic("rat: divExact by zero")
	}
	neg := a.Sign()*b.Sign() < 0
	a, b = a.Abs(), b.Abs()
	if v, ok := b.Int64(); ok {
		q := a.DivExactInt64(v)
		if neg {
			q = q.Neg()
		}
		return q
	}
	// Binary long division.
	q := bigint.Zero()
	r := a
	for r.Cmp(b) >= 0 {
		shift := uint(r.BitLen() - b.BitLen())
		t := b.Shl(shift)
		if t.Cmp(r) > 0 {
			shift--
			t = b.Shl(shift)
		}
		r = r.Sub(t)
		q = q.Add(bigint.One().Shl(shift))
	}
	if !r.IsZero() {
		panic("rat: divExact not exact")
	}
	if neg {
		q = q.Neg()
	}
	return q
}
