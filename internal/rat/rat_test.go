package rat

import (
	"math/big"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bigint"
)

func randRat(rng *rand.Rand) Rat {
	p := rng.Int63n(1<<30) - 1<<29
	q := rng.Int63n(1<<20) + 1
	return NewInt64(p, q)
}

func randBigRat(rng *rand.Rand) Rat {
	p := bigint.Random(rng, 1+rng.Intn(200))
	if rng.Intn(2) == 0 {
		p = p.Neg()
	}
	q := bigint.Random(rng, 1+rng.Intn(100))
	return New(p, q)
}

func toBigRat(x Rat) *big.Rat {
	return new(big.Rat).SetFrac(x.Num().ToBig(), x.Den().ToBig())
}

func TestCanonicalForm(t *testing.T) {
	x := NewInt64(6, -4)
	if got := x.String(); got != "-3/2" {
		t.Errorf("6/-4 = %q, want -3/2", got)
	}
	if x.Den().Sign() <= 0 {
		t.Error("denominator must be positive")
	}
	y := NewInt64(-10, -5)
	if got := y.String(); got != "2" {
		t.Errorf("-10/-5 = %q, want 2", got)
	}
	if !NewInt64(0, 7).IsZero() {
		t.Error("0/7 should be zero")
	}
}

func TestZeroValueIsUsable(t *testing.T) {
	var z Rat
	if !z.IsZero() || !z.IsInt() {
		t.Fatal("zero value should be integer 0")
	}
	if got := z.Add(One()); !got.Equal(One()) {
		t.Errorf("0 + 1 = %v", got)
	}
	if got := z.Mul(NewInt64(3, 7)); !got.IsZero() {
		t.Errorf("0 * 3/7 = %v", got)
	}
	if got := z.String(); got != "0" {
		t.Errorf("String() = %q", got)
	}
}

func TestArithmeticAgainstBigRat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 400; i++ {
		x, y := randBigRat(rng), randBigRat(rng)
		if got, want := toBigRat(x.Add(y)), new(big.Rat).Add(toBigRat(x), toBigRat(y)); got.Cmp(want) != 0 {
			t.Fatalf("Add(%v, %v) = %v, want %v", x, y, got, want)
		}
		if got, want := toBigRat(x.Sub(y)), new(big.Rat).Sub(toBigRat(x), toBigRat(y)); got.Cmp(want) != 0 {
			t.Fatalf("Sub mismatch")
		}
		if got, want := toBigRat(x.Mul(y)), new(big.Rat).Mul(toBigRat(x), toBigRat(y)); got.Cmp(want) != 0 {
			t.Fatalf("Mul mismatch")
		}
		if !y.IsZero() {
			if got, want := toBigRat(x.Div(y)), new(big.Rat).Quo(toBigRat(x), toBigRat(y)); got.Cmp(want) != 0 {
				t.Fatalf("Div mismatch")
			}
		}
	}
}

func TestInv(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 200; i++ {
		x := randRat(rng)
		if x.IsZero() {
			continue
		}
		if got := x.Mul(x.Inv()); !got.Equal(One()) {
			t.Fatalf("x * 1/x = %v for x = %v", got, x)
		}
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Inv(0) should panic")
		}
	}()
	Zero().Inv()
}

func TestPow(t *testing.T) {
	x := NewInt64(-2, 3)
	if got := x.Pow(0); !got.Equal(One()) {
		t.Errorf("x^0 = %v", got)
	}
	if got := x.Pow(3); !got.Equal(NewInt64(-8, 27)) {
		t.Errorf("(-2/3)^3 = %v", got)
	}
	if got := Zero().Pow(0); !got.Equal(One()) {
		t.Errorf("0^0 = %v, want 1 (homogeneous-point convention)", got)
	}
	if got := Zero().Pow(5); !got.IsZero() {
		t.Errorf("0^5 = %v", got)
	}
}

func TestIntConversion(t *testing.T) {
	if got := NewInt64(84, 4).Int(); !got.Equal(bigint.FromInt64(21)) {
		t.Errorf("84/4 as Int = %v", got)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Int() of non-integer should panic")
		}
	}()
	NewInt64(1, 2).Int()
}

func TestCmp(t *testing.T) {
	vals := []Rat{NewInt64(-3, 2), NewInt64(-1, 1), Zero(), NewInt64(1, 3), NewInt64(1, 2), One(), NewInt64(7, 2)}
	for i := range vals {
		for j := range vals {
			want := 0
			if i < j {
				want = -1
			} else if i > j {
				want = 1
			}
			if got := vals[i].Cmp(vals[j]); got != want {
				t.Errorf("Cmp(%v, %v) = %d, want %d", vals[i], vals[j], got, want)
			}
		}
	}
}

// Property: Rat is a field.
func TestFieldAxiomsQuick(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cfg := &quick.Config{MaxCount: 150}
	check := func(name string, f func(int) bool) {
		if err := quick.Check(f, cfg); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
	check("add-comm", func(int) bool { a, b := randRat(rng), randRat(rng); return a.Add(b).Equal(b.Add(a)) })
	check("mul-comm", func(int) bool { a, b := randRat(rng), randRat(rng); return a.Mul(b).Equal(b.Mul(a)) })
	check("add-assoc", func(int) bool {
		a, b, c := randRat(rng), randRat(rng), randRat(rng)
		return a.Add(b).Add(c).Equal(a.Add(b.Add(c)))
	})
	check("mul-assoc", func(int) bool {
		a, b, c := randRat(rng), randRat(rng), randRat(rng)
		return a.Mul(b).Mul(c).Equal(a.Mul(b.Mul(c)))
	})
	check("distrib", func(int) bool {
		a, b, c := randRat(rng), randRat(rng), randRat(rng)
		return a.Mul(b.Add(c)).Equal(a.Mul(b).Add(a.Mul(c)))
	})
	check("mul-inverse", func(int) bool {
		a := randRat(rng)
		if a.IsZero() {
			return true
		}
		return a.Mul(a.Inv()).Equal(One())
	})
	check("sub-inverse", func(int) bool { a := randRat(rng); return a.Sub(a).IsZero() })
}

func TestLargeGCDReduction(t *testing.T) {
	// p/q with a large common factor must reduce.
	rng := rand.New(rand.NewSource(14))
	g := bigint.Random(rng, 128)
	p := bigint.Random(rng, 64).Mul(g)
	q := bigint.Random(rng, 64).Mul(g)
	x := New(p, q)
	wantNum := new(big.Rat).SetFrac(p.ToBig(), q.ToBig())
	if toBigRat(x).Cmp(wantNum) != 0 {
		t.Fatal("value changed by reduction")
	}
	// The reduced denominator must divide the original q exactly.
	rem := new(big.Int).Mod(q.ToBig(), x.Den().ToBig())
	if rem.Sign() != 0 {
		t.Fatal("reduced denominator does not divide original")
	}
}
