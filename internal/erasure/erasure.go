// Package erasure implements the systematic (n, k, d) linear erasure codes
// of Section 2.5 of the paper, with Vandermonde redundancy rows.
//
// The fault-tolerant Toom-Cook algorithm (Section 4.1) encodes the data held
// by the P/(2k-1) processors of each grid column onto f code processors in
// the same column, using a (P/(2k-1)+f, P/(2k-1), f+1) code: code processor
// i holds the weighted sum Σ_l η_i^l · data_l. Because the weights form a
// Vandermonde matrix (every minor invertible), any f erasures can be decoded
// by solving a small exact linear system over ℚ, whose solution is integral.
//
// Code words here are vectors of big integers: each "letter" is one
// processor's local share of an operand, and the linear combination is taken
// element-wise.
package erasure

import (
	"fmt"

	"repro/internal/bigint"
	"repro/internal/mat"
	"repro/internal/rat"
)

// Code is a systematic (K+F, K, F+1) erasure code over integer vectors.
// The generator is (I_K ; E) with E the F×K Vandermonde matrix on the nodes
// η_0 … η_{F-1} (Definition 2.7). The zero value is not usable; construct
// with New.
type Code struct {
	K, F  int
	nodes []int64   // η_i, pairwise distinct
	e     [][]int64 // F×K redundancy matrix, e[i][l] = η_i^l
}

// New returns the systematic code with k data letters and f redundancy
// letters, using nodes η_i = i+1 (distinct positive integers keep every
// Vandermonde minor invertible).
func New(k, f int) (*Code, error) {
	if k < 1 {
		return nil, fmt.Errorf("erasure: need k >= 1 data letters, got %d", k)
	}
	if f < 0 {
		return nil, fmt.Errorf("erasure: negative redundancy %d", f)
	}
	nodes := make([]int64, f)
	for i := range nodes {
		nodes[i] = int64(i + 1)
	}
	return NewWithNodes(k, nodes)
}

// NewWithNodes builds the code from explicit distinct Vandermonde nodes.
func NewWithNodes(k int, nodes []int64) (*Code, error) {
	if k < 1 {
		return nil, fmt.Errorf("erasure: need k >= 1 data letters, got %d", k)
	}
	seen := map[int64]bool{}
	for _, n := range nodes {
		if seen[n] {
			return nil, fmt.Errorf("erasure: repeated node %d", n)
		}
		seen[n] = true
	}
	f := len(nodes)
	e := make([][]int64, f)
	for i, eta := range nodes {
		row := make([]int64, k)
		v := int64(1)
		for l := 0; l < k; l++ {
			row[l] = v
			if l+1 < k {
				next := v * eta
				if eta != 0 && next/eta != v {
					return nil, fmt.Errorf("erasure: node %d overflows int64 at power %d", eta, l+1)
				}
				v = next
			}
		}
		e[i] = row
	}
	return &Code{K: k, F: f, nodes: append([]int64(nil), nodes...), e: e}, nil
}

// N returns the code length K+F.
func (c *Code) N() int { return c.K + c.F }

// Distance returns the code distance F+1 (any F erasures are recoverable).
func (c *Code) Distance() int { return c.F + 1 }

// Nodes returns a copy of the Vandermonde nodes.
func (c *Code) Nodes() []int64 { return append([]int64(nil), c.nodes...) }

// RedundancyRow returns code row i as weights over the K data letters:
// redundancy letter i = Σ_l row[l]·data[l]. The fault-tolerant algorithm
// uses these weights directly when a code processor accumulates its column's
// reduce (Section 4.1, "Code creation").
func (c *Code) RedundancyRow(i int) []int64 {
	return append([]int64(nil), c.e[i]...)
}

// Encode returns the F redundancy letters for a data word of K letters,
// each letter being a vector of big integers combined element-wise.
func (c *Code) Encode(data [][]bigint.Int) ([][]bigint.Int, error) {
	if len(data) != c.K {
		return nil, fmt.Errorf("erasure: Encode wants %d letters, got %d", c.K, len(data))
	}
	width := len(data[0])
	for _, d := range data {
		if len(d) != width {
			return nil, fmt.Errorf("erasure: ragged data letters")
		}
	}
	out := make([][]bigint.Int, c.F)
	for i := 0; i < c.F; i++ {
		letter := make([]bigint.Int, width)
		for l := 0; l < c.K; l++ {
			w := c.e[i][l]
			if w == 0 {
				continue
			}
			for j := 0; j < width; j++ {
				if data[l][j].IsZero() {
					continue
				}
				letter[j] = letter[j].Add(data[l][j].MulInt64(w))
			}
		}
		out[i] = letter
	}
	return out, nil
}

// Decode reconstructs the erased data letters. surviving maps data index →
// letter for the intact data letters; redundancy maps redundancy index →
// letter for intact redundancy letters. At most F letters may be missing in
// total. The returned map contains the reconstructed data letters for every
// erased data index.
//
// Decoding solves the linear system restricted to the erased coordinates:
// for each available redundancy letter r_i,
//
//	r_i − Σ_{l intact} η_i^l·d_l = Σ_{l erased} η_i^l·d_l,
//
// an s×s Vandermonde-minor system (s = number of erased data letters) that
// is invertible by the MDS property and solved exactly over ℚ; the solution
// is integral because the true data is.
func (c *Code) Decode(surviving map[int][]bigint.Int, redundancy map[int][]bigint.Int) (map[int][]bigint.Int, error) {
	var erased []int
	for l := 0; l < c.K; l++ {
		if _, ok := surviving[l]; !ok {
			erased = append(erased, l)
		}
	}
	if len(erased) == 0 {
		return map[int][]bigint.Int{}, nil
	}
	if len(erased) > len(redundancy) {
		return nil, fmt.Errorf("erasure: %d erasures but only %d redundancy letters available", len(erased), len(redundancy))
	}
	// Pick the first len(erased) available redundancy letters.
	var rows []int
	for i := 0; i < c.F && len(rows) < len(erased); i++ {
		if _, ok := redundancy[i]; ok {
			rows = append(rows, i)
		}
	}
	if len(rows) < len(erased) {
		return nil, fmt.Errorf("erasure: insufficient redundancy letters")
	}
	// Determine letter width.
	width := -1
	for _, v := range surviving {
		width = len(v)
		break
	}
	if width < 0 {
		width = len(redundancy[rows[0]])
	}

	// Build the s×s system matrix A with A[r][j] = η_{rows[r]}^{erased[j]}.
	s := len(erased)
	a := mat.New(s, s)
	for r, ri := range rows {
		for j, l := range erased {
			a.Set(r, j, rat.FromInt64(c.e[ri][l]))
		}
	}
	ainv, err := a.Inverse()
	if err != nil {
		return nil, fmt.Errorf("erasure: decode system singular (nodes not distinct?): %w", err)
	}

	// Right-hand side: b_r = redundancy[rows[r]] − Σ_{intact l} η^l·d_l,
	// element-wise over the letter width.
	b := make([][]bigint.Int, s)
	for r, ri := range rows {
		letter := redundancy[ri]
		if len(letter) != width {
			return nil, fmt.Errorf("erasure: ragged redundancy letter %d", ri)
		}
		row := make([]bigint.Int, width)
		copy(row, letter)
		for l := 0; l < c.K; l++ {
			d, ok := surviving[l]
			if !ok {
				continue
			}
			if len(d) != width {
				return nil, fmt.Errorf("erasure: ragged surviving letter %d", l)
			}
			w := c.e[ri][l]
			if w == 0 {
				continue
			}
			for j := 0; j < width; j++ {
				if d[j].IsZero() {
					continue
				}
				row[j] = row[j].Sub(d[j].MulInt64(w))
			}
		}
		b[r] = row
	}

	// x = A⁻¹·b, element-wise across the letter width; results must be
	// integers.
	out := make(map[int][]bigint.Int, s)
	for j, l := range erased {
		letter := make([]bigint.Int, width)
		for col := 0; col < width; col++ {
			acc := rat.Zero()
			for r := 0; r < s; r++ {
				entry := ainv.At(j, r)
				if entry.IsZero() || b[r][col].IsZero() {
					continue
				}
				acc = acc.Add(entry.MulInt(b[r][col]))
			}
			if !acc.IsInt() {
				return nil, fmt.Errorf("erasure: non-integral decode (corrupted letters?)")
			}
			letter[col] = acc.Int()
		}
		out[l] = letter
	}
	return out, nil
}

// GeneratorMatrix returns the full (K+F)×K generator (I_K ; E) as a rational
// matrix, for verification against Definition 2.7.
func (c *Code) GeneratorMatrix() *mat.Matrix {
	g := mat.New(c.K+c.F, c.K)
	for i := 0; i < c.K; i++ {
		g.Set(i, i, rat.One())
	}
	for i := 0; i < c.F; i++ {
		for l := 0; l < c.K; l++ {
			g.Set(c.K+i, l, rat.FromInt64(c.e[i][l]))
		}
	}
	return g
}
