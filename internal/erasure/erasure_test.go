package erasure

import (
	"math/rand"
	"testing"

	"repro/internal/bigint"
	"repro/internal/mat"
)

func randWord(rng *rand.Rand, k, width, bits int) [][]bigint.Int {
	data := make([][]bigint.Int, k)
	for i := range data {
		data[i] = make([]bigint.Int, width)
		for j := range data[i] {
			v := bigint.Random(rng, 1+rng.Intn(bits))
			if rng.Intn(2) == 0 {
				v = v.Neg()
			}
			data[i][j] = v
		}
	}
	return data
}

func TestNewValidations(t *testing.T) {
	if _, err := New(0, 1); err == nil {
		t.Error("k=0 should fail")
	}
	if _, err := New(3, -1); err == nil {
		t.Error("negative f should fail")
	}
	if _, err := NewWithNodes(3, []int64{1, 1}); err == nil {
		t.Error("repeated nodes should fail")
	}
	if _, err := NewWithNodes(40, []int64{7}); err == nil {
		t.Error("overflowing node powers should fail")
	}
}

func TestCodeParameters(t *testing.T) {
	c, err := New(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 6 || c.Distance() != 3 {
		t.Errorf("N=%d distance=%d", c.N(), c.Distance())
	}
	if got := c.Nodes(); len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Errorf("nodes = %v", got)
	}
	row := c.RedundancyRow(1) // η=2: 1, 2, 4, 8
	for i, want := range []int64{1, 2, 4, 8} {
		if row[i] != want {
			t.Errorf("row[%d] = %d, want %d", i, row[i], want)
		}
	}
}

func TestGeneratorIsMDS(t *testing.T) {
	// Every minor of E must be invertible (Definition 2.7).
	for _, kf := range [][2]int{{2, 1}, {3, 2}, {4, 3}} {
		c, err := New(kf[0], kf[1])
		if err != nil {
			t.Fatal(err)
		}
		g := c.GeneratorMatrix()
		e := mat.New(c.F, c.K)
		for i := 0; i < c.F; i++ {
			for l := 0; l < c.K; l++ {
				e.Set(i, l, g.At(c.K+i, l))
			}
		}
		if !mat.AllMinorsInvertible(e) {
			t.Errorf("k=%d f=%d: E has singular minor", kf[0], kf[1])
		}
	}
}

func TestEncodeDecodeAllErasurePatterns(t *testing.T) {
	// The headline property: any ≤ f erasures are recoverable, for every
	// erasure pattern.
	rng := rand.New(rand.NewSource(51))
	k, f, width := 4, 2, 3
	c, err := New(k, f)
	if err != nil {
		t.Fatal(err)
	}
	data := randWord(rng, k, width, 200)
	red, err := c.Encode(data)
	if err != nil {
		t.Fatal(err)
	}
	// All patterns of up to f erased data letters (redundancy all intact).
	for mask := 0; mask < 1<<k; mask++ {
		erasedCount := 0
		surviving := map[int][]bigint.Int{}
		for l := 0; l < k; l++ {
			if mask&(1<<l) != 0 {
				erasedCount++
			} else {
				surviving[l] = data[l]
			}
		}
		if erasedCount > f {
			continue
		}
		redMap := map[int][]bigint.Int{}
		for i := 0; i < f; i++ {
			redMap[i] = red[i]
		}
		rec, err := c.Decode(surviving, redMap)
		if err != nil {
			t.Fatalf("mask %b: %v", mask, err)
		}
		for l := 0; l < k; l++ {
			if mask&(1<<l) == 0 {
				continue
			}
			got, ok := rec[l]
			if !ok {
				t.Fatalf("mask %b: letter %d not reconstructed", mask, l)
			}
			for j := range got {
				if !got[j].Equal(data[l][j]) {
					t.Fatalf("mask %b: letter %d element %d wrong", mask, l, j)
				}
			}
		}
	}
}

func TestDecodeWithPartialRedundancy(t *testing.T) {
	// One data letter and one redundancy letter lost simultaneously: the
	// remaining redundancy letter must still recover the data letter.
	rng := rand.New(rand.NewSource(52))
	c, _ := New(3, 2)
	data := randWord(rng, 3, 2, 100)
	red, _ := c.Encode(data)
	surviving := map[int][]bigint.Int{0: data[0], 2: data[2]} // letter 1 lost
	redMap := map[int][]bigint.Int{1: red[1]}                 // redundancy 0 lost
	rec, err := c.Decode(surviving, redMap)
	if err != nil {
		t.Fatal(err)
	}
	for j := range data[1] {
		if !rec[1][j].Equal(data[1][j]) {
			t.Fatal("reconstruction with partial redundancy failed")
		}
	}
}

func TestDecodeTooManyErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	c, _ := New(3, 1)
	data := randWord(rng, 3, 2, 100)
	red, _ := c.Encode(data)
	surviving := map[int][]bigint.Int{0: data[0]} // two letters lost, f=1
	if _, err := c.Decode(surviving, map[int][]bigint.Int{0: red[0]}); err == nil {
		t.Fatal("expected failure beyond code distance")
	}
}

func TestDecodeNoErasures(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	c, _ := New(2, 1)
	data := randWord(rng, 2, 2, 100)
	red, _ := c.Encode(data)
	rec, err := c.Decode(map[int][]bigint.Int{0: data[0], 1: data[1]}, map[int][]bigint.Int{0: red[0]})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec) != 0 {
		t.Fatal("nothing to reconstruct")
	}
}

func TestEncodeValidations(t *testing.T) {
	c, _ := New(2, 1)
	if _, err := c.Encode([][]bigint.Int{{bigint.One()}}); err == nil {
		t.Error("wrong letter count should fail")
	}
	if _, err := c.Encode([][]bigint.Int{{bigint.One()}, {bigint.One(), bigint.One()}}); err == nil {
		t.Error("ragged letters should fail")
	}
}

// Property: linearity — the code of a sum is the sum of codes. This is the
// invariant that lets the fault-tolerant algorithm carry the code through
// the linear evaluation and interpolation stages (Section 4.1 Correctness).
func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	c, _ := New(3, 2)
	for trial := 0; trial < 30; trial++ {
		a := randWord(rng, 3, 2, 150)
		b := randWord(rng, 3, 2, 150)
		sum := make([][]bigint.Int, 3)
		for i := range sum {
			sum[i] = make([]bigint.Int, 2)
			for j := range sum[i] {
				sum[i][j] = a[i][j].Add(b[i][j])
			}
		}
		ra, _ := c.Encode(a)
		rb, _ := c.Encode(b)
		rs, _ := c.Encode(sum)
		for i := range rs {
			for j := range rs[i] {
				if !rs[i][j].Equal(ra[i][j].Add(rb[i][j])) {
					t.Fatal("code is not linear")
				}
			}
		}
	}
}
