// Package poly implements exact univariate and multivariate polynomial
// arithmetic over the repository's big integers.
//
// Toom-Cook *is* polynomial multiplication (Section 2.2): the inputs are
// split into digit polynomials p_a, p_b and the product polynomial r = p_a·p_b
// is recovered by evaluation and interpolation. This package provides the
// direct (convolution) polynomial product used as an oracle in tests, the
// evaluation primitives, and the multivariate view of lazy-interpolation
// Toom-Cook (Claim 2.1).
package poly

import (
	"strings"

	"repro/internal/bigint"
	"repro/internal/rat"
)

// Poly is a univariate polynomial with integer coefficients, coefficient of
// x^i at index i. The canonical form has no trailing zero coefficients; the
// zero polynomial is the empty slice.
type Poly []bigint.Int

// New builds a polynomial from coefficients (constant term first) and
// normalizes it.
func New(coeffs ...bigint.Int) Poly {
	p := make(Poly, len(coeffs))
	copy(p, coeffs)
	return p.norm()
}

// FromInt64s builds a polynomial from small integer coefficients.
func FromInt64s(coeffs ...int64) Poly {
	p := make(Poly, len(coeffs))
	for i, c := range coeffs {
		p[i] = bigint.FromInt64(c)
	}
	return p.norm()
}

func (p Poly) norm() Poly {
	n := len(p)
	for n > 0 && p[n-1].IsZero() {
		n--
	}
	return p[:n]
}

// Degree returns the degree of p (-1 for the zero polynomial).
func (p Poly) Degree() int { return len(p) - 1 }

// IsZero reports whether p is the zero polynomial.
func (p Poly) IsZero() bool { return len(p) == 0 }

// Coeff returns the coefficient of x^i (zero beyond the degree).
func (p Poly) Coeff(i int) bigint.Int {
	if i < 0 || i >= len(p) {
		return bigint.Zero()
	}
	return p[i]
}

// Add returns p + q.
func (p Poly) Add(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	z := make(Poly, n)
	for i := range z {
		z[i] = p.Coeff(i).Add(q.Coeff(i))
	}
	return z.norm()
}

// Sub returns p - q.
func (p Poly) Sub(q Poly) Poly {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	z := make(Poly, n)
	for i := range z {
		z[i] = p.Coeff(i).Sub(q.Coeff(i))
	}
	return z.norm()
}

// Mul returns p · q by direct convolution — the Θ(deg²) oracle against which
// the Toom-Cook identities are verified.
func (p Poly) Mul(q Poly) Poly {
	if p.IsZero() || q.IsZero() {
		return nil
	}
	z := make(Poly, len(p)+len(q)-1)
	for i := range z {
		z[i] = bigint.Zero()
	}
	for i, pi := range p {
		if pi.IsZero() {
			continue
		}
		for j, qj := range q {
			z[i+j] = z[i+j].Add(pi.Mul(qj))
		}
	}
	return z.norm()
}

// Scale returns p scaled by the integer c.
func (p Poly) Scale(c bigint.Int) Poly {
	z := make(Poly, len(p))
	for i := range p {
		z[i] = p[i].Mul(c)
	}
	return z.norm()
}

// Eval evaluates p at the integer v (Horner).
func (p Poly) Eval(v bigint.Int) bigint.Int {
	acc := bigint.Zero()
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc.Mul(v).Add(p[i])
	}
	return acc
}

// EvalRat evaluates p at a rational point.
func (p Poly) EvalRat(v rat.Rat) rat.Rat {
	acc := rat.Zero()
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc.Mul(v).Add(rat.FromInt(p[i]))
	}
	return acc
}

// EvalHomogeneous evaluates p, viewed as the degree-(width-1) homogeneous
// polynomial with p's coefficients, at the projective point (x : h):
// Σ p_i · h^{width-1-i} · x^i. This matches points.Point.Row.
func (p Poly) EvalHomogeneous(x, h rat.Rat, width int) rat.Rat {
	acc := rat.Zero()
	for i := 0; i < width; i++ {
		term := rat.FromInt(p.Coeff(i)).Mul(h.Pow(width - 1 - i)).Mul(x.Pow(i))
		acc = acc.Add(term)
	}
	return acc
}

// EvalBase2 evaluates p at 2^shift via shift-and-add — the recomposition
// c = Σ c_i B^i for B = 2^shift (Algorithm 1, line 16).
func (p Poly) EvalBase2(shift int) bigint.Int {
	acc := bigint.Zero()
	for i := len(p) - 1; i >= 0; i-- {
		acc = acc.Shl(uint(shift)).Add(p[i])
	}
	return acc
}

// Equal reports whether p and q are the same polynomial.
func (p Poly) Equal(q Poly) bool {
	p, q = p.norm(), q.norm()
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if !p[i].Equal(q[i]) {
			return false
		}
	}
	return true
}

// String renders p as a human-readable polynomial in x.
func (p Poly) String() string {
	if p.IsZero() {
		return "0"
	}
	var b strings.Builder
	first := true
	for i := len(p) - 1; i >= 0; i-- {
		c := p[i]
		if c.IsZero() {
			continue
		}
		if !first {
			if c.Sign() > 0 {
				b.WriteString(" + ")
			} else {
				b.WriteString(" - ")
				c = c.Neg()
			}
		}
		first = false
		switch {
		case i == 0:
			b.WriteString(c.String())
		case c.Equal(bigint.One()):
			// coefficient 1 omitted
		case c.Equal(bigint.FromInt64(-1)):
			b.WriteString("-")
		default:
			b.WriteString(c.String())
		}
		if i > 0 {
			b.WriteString("x")
			if i > 1 {
				b.WriteString("^")
				b.WriteString(itoa(i))
			}
		}
	}
	return b.String()
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

// SplitInt splits a non-negative integer into its k base-2^shift digits as a
// polynomial: p(2^shift) == v with 0 <= p_i < 2^shift. This is Algorithm 1's
// line 4 (digit split) expressed as a polynomial construction.
func SplitInt(v bigint.Int, k, shift int) Poly {
	if v.Sign() < 0 {
		panic("poly: SplitInt of negative integer")
	}
	p := make(Poly, k)
	for i := 0; i < k; i++ {
		p[i] = v.Extract(i*shift, shift)
	}
	return p.norm()
}
