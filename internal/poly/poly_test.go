package poly

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/bigint"
	"repro/internal/points"
	"repro/internal/rat"
)

func randPoly(rng *rand.Rand, maxDeg, coefBits int) Poly {
	deg := rng.Intn(maxDeg + 1)
	p := make(Poly, deg+1)
	for i := range p {
		c := bigint.Random(rng, 1+rng.Intn(coefBits))
		if rng.Intn(2) == 0 {
			c = c.Neg()
		}
		p[i] = c
	}
	return p.norm()
}

func TestNormalization(t *testing.T) {
	p := FromInt64s(1, 2, 0, 0)
	if p.Degree() != 1 {
		t.Fatalf("degree = %d, want 1", p.Degree())
	}
	if !FromInt64s(0, 0).IsZero() {
		t.Fatal("all-zero should normalize to zero polynomial")
	}
	if FromInt64s().Degree() != -1 {
		t.Fatal("zero polynomial degree should be -1")
	}
}

func TestAddSub(t *testing.T) {
	p := FromInt64s(1, 2, 3)
	q := FromInt64s(4, -2, -3)
	if got := p.Add(q); !got.Equal(FromInt64s(5)) {
		t.Errorf("Add = %v", got)
	}
	if got := p.Sub(p); !got.IsZero() {
		t.Errorf("p - p = %v", got)
	}
}

func TestMulKnown(t *testing.T) {
	// (x+1)(x-1) = x^2 - 1
	p := FromInt64s(1, 1)
	q := FromInt64s(-1, 1)
	if got := p.Mul(q); !got.Equal(FromInt64s(-1, 0, 1)) {
		t.Errorf("(x+1)(x-1) = %v", got)
	}
	if !p.Mul(Poly{}).IsZero() {
		t.Error("p · 0 != 0")
	}
}

func TestMulEvalHomomorphism(t *testing.T) {
	// eval(p·q, v) == eval(p,v)·eval(q,v) — the identity Toom-Cook exploits.
	rng := rand.New(rand.NewSource(21))
	cfg := &quick.Config{MaxCount: 100}
	f := func(int) bool {
		p, q := randPoly(rng, 6, 40), randPoly(rng, 6, 40)
		v := bigint.FromInt64(rng.Int63n(41) - 20)
		return p.Mul(q).Eval(v).Equal(p.Eval(v).Mul(q.Eval(v)))
	}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestEvalHomogeneous(t *testing.T) {
	p := FromInt64s(3, 0, 5) // 5x^2 + 3
	// Width 3 at (x:h) = (2:1): 3·1 + 0·2 + 5·4 = 23.
	got := p.EvalHomogeneous(rat.FromInt64(2), rat.One(), 3)
	if !got.Equal(rat.FromInt64(23)) {
		t.Errorf("EvalHomogeneous = %v", got)
	}
	// At ∞ = (1:0) picks the leading (width-1) coefficient: 5.
	got = p.EvalHomogeneous(rat.One(), rat.Zero(), 3)
	if !got.Equal(rat.FromInt64(5)) {
		t.Errorf("EvalHomogeneous at inf = %v", got)
	}
}

func TestEvalBase2(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 100; i++ {
		p := randPoly(rng, 5, 60)
		shift := 1 + rng.Intn(70)
		want := p.Eval(bigint.One().Shl(uint(shift)))
		if got := p.EvalBase2(shift); !got.Equal(want) {
			t.Fatalf("EvalBase2(%d) = %v, want %v", shift, got, want)
		}
	}
}

func TestSplitIntRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 200; i++ {
		v := bigint.Random(rng, 1+rng.Intn(500))
		k := 2 + rng.Intn(6)
		shift := (v.BitLen() + k - 1) / k
		if shift == 0 {
			shift = 1
		}
		p := SplitInt(v, k, shift)
		if got := p.EvalBase2(shift); !got.Equal(v) {
			t.Fatalf("SplitInt round trip failed: v=%v k=%d shift=%d", v, k, shift)
		}
		for i := range p {
			if p[i].Sign() < 0 || p[i].BitLen() > shift {
				t.Fatalf("digit %d out of range", i)
			}
		}
	}
}

func TestString(t *testing.T) {
	cases := []struct {
		p    Poly
		want string
	}{
		{FromInt64s(), "0"},
		{FromInt64s(5), "5"},
		{FromInt64s(0, 1), "x"},
		{FromInt64s(-1, 0, 1), "x^2 - 1"},
		{FromInt64s(2, -3, 1), "x^2 - 3x + 2"},
		{FromInt64s(0, -1), "-x"},
	}
	for _, c := range cases {
		if got := c.p.String(); got != c.want {
			t.Errorf("String(%v coeffs) = %q, want %q", []bigint.Int(c.p), got, c.want)
		}
	}
}

func TestMultiPolyFromDigits(t *testing.T) {
	// 4 digits, k=2, l=2: digit j ↦ monomial (j written in base 2).
	digits := []bigint.Int{bigint.FromInt64(10), bigint.FromInt64(11), bigint.FromInt64(12), bigint.FromInt64(13)}
	m, err := FromDigits(digits, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Evaluate at y1=B1, y2=B2 and compare with direct digit sum:
	// value = d0 + d1·y2 + d2·y1 + d3·y1·y2 with y1 most significant.
	p := points.MultiPoint{rat.FromInt64(100), rat.FromInt64(10)}
	want := rat.FromInt64(10 + 11*10 + 12*100 + 13*1000)
	if got := m.Eval(p); !got.Equal(want) {
		t.Fatalf("Eval = %v, want %v", got, want)
	}
	if _, err := FromDigits(digits[:3], 2, 2); err == nil {
		t.Fatal("expected length error")
	}
}

func TestMultiPolyMulMatchesEval(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	for trial := 0; trial < 30; trial++ {
		k, l := 2, 2
		a := NewMulti(k, l)
		b := NewMulti(k, l)
		for i := range a.Coeffs {
			a.Coeffs[i] = bigint.FromInt64(rng.Int63n(201) - 100)
			b.Coeffs[i] = bigint.FromInt64(rng.Int63n(201) - 100)
		}
		prod := a.Mul(b)
		pt := points.MultiPoint{rat.FromInt64(rng.Int63n(11) - 5), rat.FromInt64(rng.Int63n(11) - 5)}
		want := a.Eval(pt).Mul(b.Eval(pt))
		if got := prod.Eval(pt); !got.Equal(want) {
			t.Fatalf("product eval mismatch at %v", pt)
		}
	}
}

func TestMultiPolyTowerMatchesIntegerProduct(t *testing.T) {
	// Claim 2.1 end-to-end: splitting integers into k^l digits, multiplying
	// the multivariate polynomials, and evaluating the tower reproduces the
	// integer product.
	rng := rand.New(rand.NewSource(25))
	k, l, shift := 2, 2, 16
	for trial := 0; trial < 50; trial++ {
		x := bigint.Random(rng, shift*4)
		y := bigint.Random(rng, shift*4)
		px := SplitInt(x, 4, shift)
		py := SplitInt(y, 4, shift)
		dx := make([]bigint.Int, 4)
		dy := make([]bigint.Int, 4)
		for i := 0; i < 4; i++ {
			dx[i], dy[i] = px.Coeff(i), py.Coeff(i)
		}
		mx, _ := FromDigits(dx, k, l)
		my, _ := FromDigits(dy, k, l)
		prod := mx.Mul(my)
		got := prod.EvalBase2Tower(k, shift)
		if want := x.Mul(y); !got.Equal(want) {
			t.Fatalf("tower eval = %v, want %v", got, want)
		}
	}
}
