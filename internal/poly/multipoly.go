package poly

import (
	"fmt"

	"repro/internal/bigint"
	"repro/internal/points"
	"repro/internal/rat"
)

// MultiPoly is a dense multivariate polynomial in Poly_{r,l} (Definition
// 2.4): l variables, the exponent of each variable below r in every
// monomial. Coefficients are indexed by the monomial order of
// points.Monomials(r, l) (lexicographic, first variable most significant).
//
// This is the algebraic object lazy-interpolation Toom-Cook multiplies
// (Claim 2.1): an l-level recursion over base k corresponds to an l-variable
// polynomial with per-variable degree < k.
type MultiPoly struct {
	R, L   int
	Coeffs []bigint.Int // length R^L
}

// NewMulti returns the zero polynomial of Poly_{r,l}.
func NewMulti(r, l int) *MultiPoly {
	n := 1
	for i := 0; i < l; i++ {
		n *= r
	}
	c := make([]bigint.Int, n)
	return &MultiPoly{R: r, L: l, Coeffs: c}
}

// FromDigits interprets a digit vector (length k^l, digit i of the base-B
// expansion at index i) as the multivariate polynomial of Claim 2.1, where
// variable y_j stands for B^{k^{l-j}}. The digit index written in base k
// gives the exponent tuple directly, so this is just a re-indexing.
func FromDigits(digits []bigint.Int, k, l int) (*MultiPoly, error) {
	n := 1
	for i := 0; i < l; i++ {
		n *= k
	}
	if len(digits) != n {
		return nil, fmt.Errorf("poly: FromDigits needs %d digits, got %d", n, len(digits))
	}
	m := NewMulti(k, l)
	copy(m.Coeffs, digits)
	return m, nil
}

// Eval evaluates m at a point in F^l.
func (m *MultiPoly) Eval(p points.MultiPoint) rat.Rat {
	if len(p) != m.L {
		panic("poly: MultiPoly.Eval dimension mismatch")
	}
	mons := points.Monomials(m.R, m.L)
	acc := rat.Zero()
	for idx, e := range mons {
		if m.Coeffs[idx].IsZero() {
			continue
		}
		v := rat.FromInt(m.Coeffs[idx])
		for d := 0; d < m.L; d++ {
			v = v.Mul(p[d].Pow(e[d]))
		}
		acc = acc.Add(v)
	}
	return acc
}

// Mul returns the product of m and n in Poly_{2r-1, l}; both operands must
// share r and l. This is the direct (schoolbook) multivariate product used
// as the oracle for multi-step Toom-Cook.
func (m *MultiPoly) Mul(n *MultiPoly) *MultiPoly {
	if m.R != n.R || m.L != n.L {
		panic("poly: MultiPoly.Mul shape mismatch")
	}
	r2 := 2*m.R - 1
	z := NewMulti(r2, m.L)
	monsA := points.Monomials(m.R, m.L)
	for ia, ea := range monsA {
		ca := m.Coeffs[ia]
		if ca.IsZero() {
			continue
		}
		for ib, eb := range monsA {
			cb := n.Coeffs[ib]
			if cb.IsZero() {
				continue
			}
			// Index of the summed exponent tuple in base (2r-1).
			idx := 0
			for d := 0; d < m.L; d++ {
				idx = idx*r2 + ea[d] + eb[d]
			}
			z.Coeffs[idx] = z.Coeffs[idx].Add(ca.Mul(cb))
		}
	}
	return z
}

// EvalBase2Tower evaluates m with variable y_j set to 2^{shift·k^{l-j}} —
// the final recomposition of lazy-interpolation Toom-Cook, where the digits
// were split in base 2^shift and the tower of variables stands for the
// nested digit bases. Works for any R (inputs use R=k, products R=2k-1).
func (m *MultiPoly) EvalBase2Tower(k, shift int) bigint.Int {
	mons := points.Monomials(m.R, m.L)
	acc := bigint.Zero()
	// Weight of variable d (0-based, most significant first): k^{l-1-d}·shift bits.
	weights := make([]int, m.L)
	w := 1
	for d := m.L - 1; d >= 0; d-- {
		weights[d] = w * shift
		w *= k
	}
	for idx, e := range mons {
		c := m.Coeffs[idx]
		if c.IsZero() {
			continue
		}
		bits := 0
		for d := 0; d < m.L; d++ {
			bits += e[d] * weights[d]
		}
		acc = acc.Add(c.Shl(uint(bits)))
	}
	return acc
}

// Equal reports whether m and n are identical polynomials (same shape and
// coefficients).
func (m *MultiPoly) Equal(n *MultiPoly) bool {
	if m.R != n.R || m.L != n.L || len(m.Coeffs) != len(n.Coeffs) {
		return false
	}
	for i := range m.Coeffs {
		if !m.Coeffs[i].Equal(n.Coeffs[i]) {
			return false
		}
	}
	return true
}
