package softfault

import (
	"math/big"
	"math/rand"
	"testing"

	"repro/internal/bigint"
)

func randOperand(rng *rand.Rand, bits int) bigint.Int {
	return bigint.Random(rng, bits)
}

func TestNewValidation(t *testing.T) {
	if _, err := New(1, 2); err == nil {
		t.Error("k=1 should fail")
	}
	if _, err := New(2, -1); err == nil {
		t.Error("negative f should fail")
	}
}

func TestVerifyClean(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	da := []bigint.Int{bigint.FromInt64(rng.Int63n(1000)), bigint.FromInt64(rng.Int63n(1000)), bigint.FromInt64(rng.Int63n(1000))}
	db := []bigint.Int{bigint.FromInt64(rng.Int63n(1000)), bigint.FromInt64(rng.Int63n(1000)), bigint.FromInt64(rng.Int63n(1000))}
	vals := c.Products(da, db)
	ok, err := c.Verify(vals)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("clean vector rejected")
	}
}

func TestVerifyDetectsEverySinglePosition(t *testing.T) {
	rng := rand.New(rand.NewSource(132))
	c, _ := New(2, 1)
	da := []bigint.Int{bigint.Random(rng, 64), bigint.Random(rng, 64)}
	db := []bigint.Int{bigint.Random(rng, 64), bigint.Random(rng, 64)}
	vals := c.Products(da, db)
	for pos := range vals {
		bad := append([]bigint.Int(nil), vals...)
		bad[pos] = bad[pos].Add(bigint.FromInt64(1 + rng.Int63n(1000)))
		ok, err := c.Verify(bad)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			t.Fatalf("corruption at %d undetected", pos)
		}
	}
}

func TestCorrectSingleError(t *testing.T) {
	// f=2 → correction radius 1: every single corrupted product must be
	// repaired and localized.
	rng := rand.New(rand.NewSource(133))
	c, err := New(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	da := []bigint.Int{bigint.Random(rng, 80), bigint.Random(rng, 80)}
	db := []bigint.Int{bigint.Random(rng, 80), bigint.Random(rng, 80)}
	clean := c.Products(da, db)
	want, _, err := c.Correct(append([]bigint.Int(nil), clean...))
	if err != nil {
		t.Fatal(err)
	}
	for pos := range clean {
		vals := append([]bigint.Int(nil), clean...)
		vals[pos] = vals[pos].Sub(bigint.Random(rng, 60))
		got, bad, err := c.Correct(vals)
		if err != nil {
			t.Fatalf("position %d: %v", pos, err)
		}
		if len(bad) != 1 || bad[0] != pos {
			t.Fatalf("position %d: located %v", pos, bad)
		}
		for i := range want {
			if !got[i].Equal(want[i]) {
				t.Fatalf("position %d: coefficient %d wrong", pos, i)
			}
		}
	}
}

func TestCorrectTwoErrors(t *testing.T) {
	// f=4 → radius 2.
	rng := rand.New(rand.NewSource(134))
	c, err := New(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	da := []bigint.Int{bigint.Random(rng, 64), bigint.Random(rng, 64)}
	db := []bigint.Int{bigint.Random(rng, 64), bigint.Random(rng, 64)}
	clean := c.Products(da, db)
	vals := append([]bigint.Int(nil), clean...)
	vals[1] = vals[1].Add(bigint.FromInt64(7777))
	vals[5] = vals[5].Neg()
	_, bad, err := c.Correct(vals)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 2 || bad[0] != 1 || bad[1] != 5 {
		t.Fatalf("located %v, want [1 5]", bad)
	}
}

func TestCorrectRejectsOverload(t *testing.T) {
	// Three errors against radius 1 must be flagged, never mis-corrected.
	rng := rand.New(rand.NewSource(135))
	c, _ := New(2, 2)
	da := []bigint.Int{bigint.Random(rng, 64), bigint.Random(rng, 64)}
	db := []bigint.Int{bigint.Random(rng, 64), bigint.Random(rng, 64)}
	vals := c.Products(da, db)
	truth, _, _ := c.Correct(append([]bigint.Int(nil), vals...))
	for i := 0; i < 3; i++ {
		vals[i] = vals[i].Add(bigint.FromInt64(int64(1000 + i)))
	}
	got, _, err := c.Correct(vals)
	if err == nil {
		// A successful decode is only acceptable if it found the truth
		// (possible if corruptions landed on a valid codeword, measure zero).
		for i := range truth {
			if !got[i].Equal(truth[i]) {
				t.Fatal("overload mis-corrected to a wrong polynomial")
			}
		}
	}
}

func TestDetectionOnlyWithSmallF(t *testing.T) {
	rng := rand.New(rand.NewSource(136))
	c, _ := New(2, 1)
	da := []bigint.Int{bigint.Random(rng, 64), bigint.Random(rng, 64)}
	db := []bigint.Int{bigint.Random(rng, 64), bigint.Random(rng, 64)}
	vals := c.Products(da, db)
	vals[0] = vals[0].Add(bigint.One())
	if _, _, err := c.Correct(vals); err == nil {
		t.Fatal("f=1 cannot correct; expected explicit error")
	}
}

func TestMulWithSoftFaults(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	c, err := New(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		a := randOperand(rng, 2048)
		b := randOperand(rng, 2048)
		if trial%2 == 0 {
			a = a.Neg()
		}
		want := new(big.Int).Mul(a.ToBig(), b.ToBig())
		pos := rng.Intn(c.F + 2*c.K - 1)
		got, bad, err := c.MulWithSoftFaults(a, b, map[int]bigint.Int{
			pos: bigint.Random(rng, 100),
		})
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if got.ToBig().Cmp(want) != 0 {
			t.Fatalf("trial %d: wrong product despite correction", trial)
		}
		if len(bad) != 1 || bad[0] != pos {
			t.Fatalf("trial %d: located %v, want [%d]", trial, bad, pos)
		}
	}
}

func TestMulWithSoftFaultsClean(t *testing.T) {
	rng := rand.New(rand.NewSource(138))
	c, _ := New(2, 2)
	a, b := randOperand(rng, 1024), randOperand(rng, 1024)
	got, bad, err := c.MulWithSoftFaults(a, b, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(bad) != 0 {
		t.Fatalf("clean run flagged %v", bad)
	}
	want := new(big.Int).Mul(a.ToBig(), b.ToBig())
	if got.ToBig().Cmp(want) != 0 {
		t.Fatal("clean product wrong")
	}
}

func TestZeroOperand(t *testing.T) {
	c, _ := New(2, 2)
	got, _, err := c.MulWithSoftFaults(bigint.Zero(), bigint.FromInt64(9), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsZero() {
		t.Fatalf("0·9 = %v", got)
	}
}
