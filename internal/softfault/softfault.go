// Package softfault adapts the paper's polynomial coding to *soft* faults —
// processors that miscalculate rather than stop (the adaptation Section 7
// says the algorithm "can easily" support).
//
// The observation: the 2k-1+f pointwise products of the fault-tolerant
// algorithm are evaluations of the degree-(2k-2) product polynomial at
// 2k-1+f distinct points — a Reed-Solomon codeword of the coefficient
// vector, with f redundancy symbols. Hard faults are erasures (Section 4.2
// handles them by dropping the dead column); soft faults are *errors* at
// unknown positions, and classical decoding applies:
//
//   - up to f corrupted products are DETECTED (code distance f+1);
//   - up to ⌊f/2⌋ corrupted products are CORRECTED and localized, using the
//     Berlekamp-Welch algorithm over exact rationals.
//
// The corrector works over finite evaluation points (the affine
// Berlekamp-Welch formulation); the standard set without ∞ remains valid by
// the interpolation theorem (Theorem 2.1).
package softfault

import (
	"fmt"

	"repro/internal/bigint"
	"repro/internal/mat"
	"repro/internal/points"
	"repro/internal/rat"
	"repro/internal/toom"
)

// Corrector verifies and repairs the pointwise-product vector of a
// Toom-Cook-k multiplication carried out over 2k-1+f redundant evaluation
// points.
type Corrector struct {
	K, F int
	pts  []points.Point // finite, pairwise distinct
	xs   []rat.Rat      // affine coordinates
	u    [][]int64      // (2k-1+f)×k evaluation matrix
}

// New builds a corrector for Toom-Cook-k with f redundant products, over
// the finite standard points 0, 1, -1, 2, -2, ….
func New(k, f int) (*Corrector, error) {
	if k < 2 {
		return nil, fmt.Errorf("softfault: k must be >= 2")
	}
	if f < 0 {
		return nil, fmt.Errorf("softfault: negative redundancy")
	}
	n := 2*k - 1 + f
	pts := make([]points.Point, n)
	xs := make([]rat.Rat, n)
	pts[0] = points.FiniteInt64(0)
	xs[0] = rat.Zero()
	v := int64(1)
	for i := 1; i < n; i += 2 {
		pts[i] = points.FiniteInt64(v)
		xs[i] = rat.FromInt64(v)
		if i+1 < n {
			pts[i+1] = points.FiniteInt64(-v)
			xs[i+1] = rat.FromInt64(-v)
		}
		v++
	}
	if err := points.Valid(pts, 2*k-1); err != nil {
		return nil, err
	}
	u, err := toom.IntRows(points.EvalMatrix(pts, k))
	if err != nil {
		return nil, err
	}
	return &Corrector{K: k, F: f, pts: pts, xs: xs, u: u}, nil
}

// Products computes the 2k-1+f pointwise products of one Toom-Cook step for
// digit vectors da, db (length k each) — the values a soft-faulty machine
// would hand back, before any corruption.
func (c *Corrector) Products(da, db []bigint.Int) []bigint.Int {
	ea := toom.ApplyRows(c.u, da)
	eb := toom.ApplyRows(c.u, db)
	out := make([]bigint.Int, len(ea))
	for i := range ea {
		out[i] = ea[i].Mul(eb[i])
	}
	return out
}

// Verify reports whether vals is a consistent evaluation vector: the
// interpolation from the first 2k-1 values must reproduce every redundant
// value. Any ≤ f corruptions are guaranteed to be caught (distance f+1);
// it never produces false alarms on clean vectors.
func (c *Corrector) Verify(vals []bigint.Int) (bool, error) {
	coeffs, err := c.interpolatePrefix(vals)
	if err != nil {
		return false, err
	}
	return c.consistent(coeffs, vals), nil
}

// interpolatePrefix interpolates the coefficient vector from the first
// 2k-1 values (which may be corrupted; callers cross-check).
func (c *Corrector) interpolatePrefix(vals []bigint.Int) ([]rat.Rat, error) {
	d := 2*c.K - 1
	if len(vals) != len(c.pts) {
		return nil, fmt.Errorf("softfault: want %d values, got %d", len(c.pts), len(vals))
	}
	wt, err := points.Interpolation(c.pts[:d], d)
	if err != nil {
		return nil, err
	}
	return wt.ApplyInt(vals[:d]), nil
}

// consistent checks coeffs against every evaluation in vals.
func (c *Corrector) consistent(coeffs []rat.Rat, vals []bigint.Int) bool {
	for i, x := range c.xs {
		acc := rat.Zero()
		for j := len(coeffs) - 1; j >= 0; j-- {
			acc = acc.Mul(x).Add(coeffs[j])
		}
		if !acc.Equal(rat.FromInt(vals[i])) {
			return false
		}
	}
	return true
}

// Correct recovers the true coefficient vector from vals with up to ⌊f/2⌋
// arbitrary corruptions, via Berlekamp-Welch: find polynomials Q (degree ≤
// d+e) and E (degree ≤ e, E ≠ 0) with Q(x_i) = vals_i·E(x_i) for all i;
// then the product polynomial is Q/E. It returns the corrected integer
// coefficients and the indices of the corrupted values, or an error if the
// corruption exceeds the correction radius (detected, not mis-corrected).
func (c *Corrector) Correct(vals []bigint.Int) ([]bigint.Int, []int, error) {
	if len(vals) != len(c.pts) {
		return nil, nil, fmt.Errorf("softfault: want %d values, got %d", len(c.pts), len(vals))
	}
	d := 2*c.K - 2 // product polynomial degree
	e := c.F / 2   // correction radius

	// Fast path: already consistent.
	if coeffs, err := c.interpolatePrefix(vals); err == nil && c.consistent(coeffs, vals) {
		return ratsToInts(coeffs)
	}
	if e == 0 {
		return nil, nil, fmt.Errorf("softfault: corruption detected; f=%d provides detection only (correction needs f >= 2)", c.F)
	}

	// Berlekamp-Welch linear system over ℚ.
	nQ := d + e + 1
	nE := e + 1
	n := len(vals)
	a := mat.New(n, nQ+nE)
	for i := 0; i < n; i++ {
		x := c.xs[i]
		pow := rat.One()
		for j := 0; j < nQ; j++ {
			a.Set(i, j, pow)
			pow = pow.Mul(x)
		}
		v := rat.FromInt(vals[i])
		pow = rat.One()
		for t := 0; t < nE; t++ {
			a.Set(i, nQ+t, v.Mul(pow).Neg())
			pow = pow.Mul(x)
		}
	}
	basis := a.Nullspace()
	if len(basis) == 0 {
		return nil, nil, fmt.Errorf("softfault: no Berlekamp-Welch solution — corruption beyond ⌊f/2⌋ = %d errors", e)
	}
	for _, sol := range basis {
		q := sol[:nQ]
		ev := sol[nQ:]
		if allZero(ev) {
			continue
		}
		coeffs, ok := polyDivExact(q, ev, d)
		if !ok {
			continue
		}
		if !c.consistentWithin(coeffs, vals, e) {
			continue
		}
		// Locate errors: positions where the corrected polynomial disagrees.
		var bad []int
		for i, x := range c.xs {
			if !evalRat(coeffs, x).Equal(rat.FromInt(vals[i])) {
				bad = append(bad, i)
			}
		}
		if len(bad) > e {
			continue
		}
		ints, idx, err := ratsToInts(coeffs)
		if err != nil {
			continue
		}
		_ = idx
		return ints, bad, nil
	}
	return nil, nil, fmt.Errorf("softfault: corruption detected but uncorrectable (more than ⌊f/2⌋ = %d errors)", e)
}

// MulWithSoftFaults runs one verified Toom-Cook step end to end: split,
// evaluate, multiply pointwise, apply the given corruptions (index → value
// *added* to the product, modeling a miscalculating processor), correct,
// and recompose. Returns the exact product and the corrupted indices found.
func (c *Corrector) MulWithSoftFaults(a, b bigint.Int, corrupt map[int]bigint.Int) (bigint.Int, []int, error) {
	neg := a.Sign()*b.Sign() < 0
	a, b = a.Abs(), b.Abs()
	if a.IsZero() || b.IsZero() {
		return bigint.Zero(), nil, nil
	}
	maxBits := a.BitLen()
	if b.BitLen() > maxBits {
		maxBits = b.BitLen()
	}
	shift := (maxBits + c.K - 1) / c.K
	da := make([]bigint.Int, c.K)
	db := make([]bigint.Int, c.K)
	for i := 0; i < c.K; i++ {
		da[i] = a.Extract(i*shift, shift)
		db[i] = b.Extract(i*shift, shift)
	}
	vals := c.Products(da, db)
	for idx, delta := range corrupt {
		if idx < 0 || idx >= len(vals) {
			return bigint.Int{}, nil, fmt.Errorf("softfault: corruption index %d out of range", idx)
		}
		vals[idx] = vals[idx].Add(delta)
	}
	coeffs, bad, err := c.Correct(vals)
	if err != nil {
		return bigint.Int{}, nil, err
	}
	z := toom.Recompose(coeffs, shift)
	if neg {
		z = z.Neg()
	}
	return z, bad, nil
}

// consistentWithin checks coeffs against vals allowing at most e mismatches.
func (c *Corrector) consistentWithin(coeffs []rat.Rat, vals []bigint.Int, e int) bool {
	mismatches := 0
	for i, x := range c.xs {
		if !evalRat(coeffs, x).Equal(rat.FromInt(vals[i])) {
			mismatches++
			if mismatches > e {
				return false
			}
		}
	}
	return true
}

func evalRat(coeffs []rat.Rat, x rat.Rat) rat.Rat {
	acc := rat.Zero()
	for j := len(coeffs) - 1; j >= 0; j-- {
		acc = acc.Mul(x).Add(coeffs[j])
	}
	return acc
}

// polyDivExact divides q by ev over ℚ, returning the quotient's first d+1
// coefficients if the division is exact and the quotient has degree ≤ d.
func polyDivExact(q, ev []rat.Rat, d int) ([]rat.Rat, bool) {
	qq := trim(q)
	ee := trim(ev)
	if len(ee) == 0 {
		return nil, false
	}
	if len(qq) == 0 {
		// Q ≡ 0 means the product polynomial is 0 — legal for zero inputs.
		return make([]rat.Rat, d+1), true
	}
	if len(qq) < len(ee) {
		return nil, false
	}
	quot := make([]rat.Rat, len(qq)-len(ee)+1)
	rem := append([]rat.Rat(nil), qq...)
	lead := ee[len(ee)-1]
	for i := len(quot) - 1; i >= 0; i-- {
		cidx := i + len(ee) - 1
		cval := rem[cidx].Div(lead)
		quot[i] = cval
		if cval.IsZero() {
			continue
		}
		for j := 0; j < len(ee); j++ {
			rem[i+j] = rem[i+j].Sub(cval.Mul(ee[j]))
		}
	}
	for _, r := range rem {
		if !r.IsZero() {
			return nil, false
		}
	}
	if len(quot) > d+1 {
		for _, v := range quot[d+1:] {
			if !v.IsZero() {
				return nil, false
			}
		}
		quot = quot[:d+1]
	}
	out := make([]rat.Rat, d+1)
	copy(out, quot)
	return out, true
}

func trim(v []rat.Rat) []rat.Rat {
	n := len(v)
	for n > 0 && v[n-1].IsZero() {
		n--
	}
	return v[:n]
}

func allZero(v []rat.Rat) bool {
	for _, x := range v {
		if !x.IsZero() {
			return false
		}
	}
	return true
}

func ratsToInts(coeffs []rat.Rat) ([]bigint.Int, []int, error) {
	out := make([]bigint.Int, len(coeffs))
	for i, v := range coeffs {
		if !v.IsInt() {
			return nil, nil, fmt.Errorf("softfault: non-integral coefficient %d", i)
		}
		out[i] = v.Int()
	}
	return out, nil, nil
}
