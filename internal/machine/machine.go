// Package machine realizes the paper's parallel machine model
// (Section 2.1): P identical processors, each with a local memory of M
// words, connected by a peer-to-peer network. The three cost measures —
// F (arithmetic operations), BW (words communicated), and L (messages) —
// are counted along the critical path, and the total runtime is modeled as
// C = α·L + β·BW + γ·F.
//
// Since PR 5 the package is a facade over a layered stack (see
// internal/machine/transport): algorithms talk to Proc, Proc drives a
// costacct endpoint (F/BW/L accounting), which drives a faultinject
// endpoint (fail-stop deaths at barriers, delay-fault speed factors), which
// drives one of two interchangeable transport backends —
//
//   - simnet (Config.Backend == BackendSim, the default): the deterministic
//     virtual-clock simulator. Each processor carries a virtual clock that
//     advances with local work and message transfers, so the maximum clock
//     at the end of a run is the critical-path runtime under the α/β/γ
//     model, independent of real scheduling.
//   - wallnet (Config.Backend == BackendWall): an in-process wall-clock
//     backend with real deadlines and context cancellation, for wall-clock
//     benchmarking and real-time straggler experiments.
//
// Because accounting is a decorator above the backend, F/BW/L counts are
// identical on both backends; only Time changes meaning (virtual cost units
// versus real seconds or dilated units).
//
// Hard faults (Section 2.1) are injected at named barriers: a processor
// scheduled to fail "at phase X" loses its entire local store when it
// reaches the barrier named X, modeling fail-stop death with immediate
// replacement — the same rank continues with empty memory, exactly the
// paper's "the affected processor ceases operation, loses its data, and is
// subsequently replaced by an alternative processor". All processors
// observe the same list of failures at each barrier (a perfect failure
// detector, standard in this model).
package machine

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bigint"
	"repro/internal/machine/costacct"
	"repro/internal/machine/faultinject"
	"repro/internal/machine/simnet"
	"repro/internal/machine/transport"
	"repro/internal/machine/wallnet"
)

// Backend selects the transport realization under the machine API.
type Backend string

const (
	// BackendSim is the deterministic virtual-clock simulator (the default).
	BackendSim Backend = "sim"
	// BackendWall is the in-process wall-clock backend: real deadlines,
	// context cancellation, Time in seconds (or dilated model units).
	BackendWall Backend = "wall"
)

// Config describes the machine.
type Config struct {
	P int // number of processors (excluding none; code processors included by caller)

	// Backend selects the transport realization; empty means BackendSim.
	// Algorithm code never branches on this — the choice is invisible
	// above the Proc API.
	Backend Backend

	// MemoryWords is the per-processor memory capacity M in 64-bit words;
	// 0 means unlimited. Exceeding it makes Store return an error, so
	// algorithms can verify the Lemma 3.1 scheduling actually fits.
	MemoryWords int64

	// Runtime model coefficients: latency per message, time per word, time
	// per arithmetic word-operation. Zero values default to α=1000, β=10,
	// γ=1 — a conventional HPC-ish ratio.
	Alpha, Beta, Gamma float64

	// RecvTimeout guards against protocol deadlocks in tests; zero means
	// 30 seconds.
	RecvTimeout time.Duration

	// ChannelCap is the per-pair in-flight message capacity (default 128).
	// Channels are allocated lazily on first use of a (sender, receiver)
	// pair, so a large-P machine pays only for the pairs its protocol
	// actually exercises (grid protocols use O(P·√P) of the P² pairs)
	// rather than O(P²·ChannelCap) setup memory.
	ChannelCap int

	// SpeedFactors optionally slows processors down: processor i's
	// arithmetic takes γ·SpeedFactors[i] per word-operation (1.0 when nil
	// or zero). This models *delay faults* — the paper's third fault
	// category. On the sim backend the delay exists in virtual time only;
	// on the wall backend with WallTimeDilation set, slow ranks really do
	// finish later.
	SpeedFactors []float64

	// WallTimeDilation applies to BackendWall only: the real duration of
	// one model unit. When set, cost charges are slept off at that rate
	// and clocks read in model units, so virtual-machine experiments
	// (straggler slack, speed factors) transfer to the wall clock with
	// their ratios intact. Zero means free-running with clocks in seconds.
	WallTimeDilation time.Duration
}

func (c Config) withDefaults() Config {
	if c.Backend == "" {
		c.Backend = BackendSim
	}
	if c.Alpha == 0 {
		c.Alpha = 1000
	}
	if c.Beta == 0 {
		c.Beta = 10
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.RecvTimeout == 0 {
		c.RecvTimeout = 30 * time.Second
	}
	if c.ChannelCap == 0 {
		c.ChannelCap = 128
	}
	return c
}

// Fault schedules a hard fault: processor Proc dies when it reaches the
// barrier named Phase for the Hit-th time (0 = first).
type Fault struct {
	Proc  int
	Phase string
	Hit   int
}

// FaultEvent reports an injected fault to the surviving processors.
type FaultEvent = transport.FaultEvent

// Payload is anything a message can carry; Words is its size in the model's
// word units and is what the BW accounting charges.
type Payload = transport.Payload

// Ints is a payload of big integers; its word count is the total limb count
// (at least one word per integer, so zeros still occupy a word on the wire).
type Ints []bigint.Int

// Words implements Payload.
func (v Ints) Words() int64 {
	var w int64
	for _, x := range v {
		l := int64(x.WordLen())
		if l == 0 {
			l = 1
		}
		w += l
	}
	return w
}

// Meta is a small control payload (a tag, an index, a count) costing one word.
type Meta struct{ Value int }

// Words implements Payload.
func (Meta) Words() int64 { return 1 }

// Stats are one processor's accumulated costs.
type Stats struct {
	Flops     int64   // F: word-level arithmetic operations
	SentWords int64   // words sent
	RecvWords int64   // words received
	Messages  int64   // L: messages sent
	Barriers  int64   // barrier crossings
	PeakWords int64   // peak local-store occupancy
	Clock     float64 // completion time (virtual units on sim, model units/seconds on wall)
	Faults    int     // times this rank was killed and replaced
}

// MarkRecord is a named snapshot of a processor's counters, for per-phase
// cost attribution (the anatomy of the paper's evaluation/multiplication/
// interpolation stages).
type MarkRecord struct {
	Label     string
	Clock     float64
	Flops     int64
	SentWords int64
	Messages  int64
}

// Report aggregates a finished run. Following the paper, F, BW and L are
// critical-path figures: the maximum over processors (the processors
// operate bulk-synchronously between barriers). Totals are also kept for
// the overhead comparisons of Section 5.
type Report struct {
	PerProc []Stats
	F       int64   // max flops over processors
	BW      int64   // max words sent over processors
	BWIn    int64   // max words received over processors (inbound critical path)
	L       int64   // max messages over processors
	Time    float64 // max clock = modeled runtime C (sim) or elapsed wall time (wall)
	TotalF  int64
	TotalBW int64
	TotalL  int64
	Faults  []FaultEvent
	// Marks holds each processor's Mark snapshots, in call order.
	Marks [][]MarkRecord
}

// Machine is a P-processor machine over a pluggable transport. Create with
// New (or NewWithTransport for a custom backend), run one program with Run;
// a Machine is single-use.
type Machine struct {
	cfg   Config
	procs []*Proc

	base transport.Transport    // the backend, for backend-specific hooks
	fi   *faultinject.Transport // fault layer, for the event log
	acct *costacct.Transport    // accounting layer, endpoints come from here
}

// New creates a machine with the given configuration and fault plan, on the
// backend cfg.Backend selects.
func New(cfg Config, plan []Fault) (*Machine, error) {
	cfg = cfg.withDefaults()
	if cfg.P < 1 {
		return nil, fmt.Errorf("machine: need P >= 1, got %d", cfg.P)
	}
	var base transport.Transport
	var err error
	switch cfg.Backend {
	case BackendSim:
		base, err = simnet.New(simnet.Config{
			P:           cfg.P,
			ChannelCap:  cfg.ChannelCap,
			RecvTimeout: cfg.RecvTimeout,
		})
	case BackendWall:
		base, err = wallnet.New(wallnet.Config{
			P:            cfg.P,
			ChannelCap:   cfg.ChannelCap,
			RecvTimeout:  cfg.RecvTimeout,
			TimeDilation: cfg.WallTimeDilation,
		})
	default:
		err = fmt.Errorf("machine: unknown backend %q", cfg.Backend)
	}
	if err != nil {
		return nil, err
	}
	return NewWithTransport(cfg, plan, base)
}

// NewWithTransport creates a machine over a caller-supplied backend,
// layering fault injection and cost accounting on top of it. cfg.Backend is
// ignored; everything else applies as usual.
func NewWithTransport(cfg Config, plan []Fault, base transport.Transport) (*Machine, error) {
	cfg = cfg.withDefaults()
	if base.P() != cfg.P {
		return nil, fmt.Errorf("machine: transport has P=%d, config has P=%d", base.P(), cfg.P)
	}
	m := &Machine{cfg: cfg, base: base}
	for _, f := range plan {
		if f.Proc < 0 || f.Proc >= cfg.P {
			return nil, fmt.Errorf("machine: fault for nonexistent processor %d", f.Proc)
		}
	}
	fiPlan := make([]faultinject.Fault, len(plan))
	for i, f := range plan {
		fiPlan[i] = faultinject.Fault{Proc: f.Proc, Phase: f.Phase, Hit: f.Hit}
	}
	// Fail-stop: all local data is lost; the replacement starts empty at
	// the same rank. The callback runs on the dying rank's own goroutine
	// (inside its Barrier call), so touching its store is race-free.
	onFault := func(rank int) {
		p := m.procs[rank]
		p.store = map[string]storedValue{}
		p.memWords = 0
		p.faultCount++
	}
	fi, err := faultinject.New(base, fiPlan, cfg.SpeedFactors, onFault)
	if err != nil {
		return nil, fmt.Errorf("machine: %w", err)
	}
	m.fi = fi
	m.acct = costacct.New(fi, costacct.Model{Alpha: cfg.Alpha, Beta: cfg.Beta, Gamma: cfg.Gamma})
	m.procs = make([]*Proc, cfg.P)
	for i := range m.procs {
		m.procs[i] = &Proc{id: i, m: m, store: map[string]storedValue{}}
	}
	return m, nil
}

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.P }

// allocatedChannels counts the backend's lazily created per-pair channels
// (test hook for the lazy-allocation contract; call only while the machine
// is quiescent). Returns -1 for backends without the hook.
func (m *Machine) allocatedChannels() int {
	if h, ok := m.base.(interface{ AllocatedChannels() int }); ok {
		return h.AllocatedChannels()
	}
	return -1
}

// Run executes program on all P processors and returns the cost report.
// The first processor error (if any) aborts with that error.
func (m *Machine) Run(program func(*Proc) error) (*Report, error) {
	return m.RunContext(context.Background(), program)
}

// RunContext is Run under a context: on backends that support cancellation
// (wallnet), canceling ctx aborts blocked Recv/Barrier calls so the run
// unwinds with an error instead of waiting out the protocol timeout.
func (m *Machine) RunContext(ctx context.Context, program func(*Proc) error) (*Report, error) {
	for _, p := range m.procs {
		ep, err := m.acct.OpenCounted(ctx, p.id)
		if err != nil {
			return nil, err
		}
		p.ep = ep
	}

	errs := make([]error, m.cfg.P)
	var wg sync.WaitGroup
	for i := range m.procs {
		wg.Add(1)
		//ftlint:allow poolspawn the machine runtime IS the pool: one goroutine per simulated processor, bounded by cfg.P, not algorithm fan-out
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				p.exitClock = p.ep.Now()
				p.ep.Done()
			}()
			errs[p.id] = program(p)
		}(m.procs[i])
	}
	wg.Wait()
	defer m.base.Close()

	rep := &Report{PerProc: make([]Stats, m.cfg.P), Faults: m.fi.Events(), Marks: make([][]MarkRecord, m.cfg.P)}
	for i, p := range m.procs {
		rep.Marks[i] = p.marks
	}
	for i, p := range m.procs {
		c := p.ep.Stats()
		s := Stats{
			Flops:     c.Flops,
			SentWords: c.SentWords,
			RecvWords: c.RecvWords,
			Messages:  c.Messages,
			Barriers:  c.Barriers,
			PeakWords: p.peakWords,
			Clock:     p.exitClock,
			Faults:    p.faultCount,
		}
		rep.PerProc[i] = s
		rep.TotalF += s.Flops
		rep.TotalBW += s.SentWords
		rep.TotalL += s.Messages
		if s.Flops > rep.F {
			rep.F = s.Flops
		}
		if s.SentWords > rep.BW {
			rep.BW = s.SentWords
		}
		if s.RecvWords > rep.BWIn {
			rep.BWIn = s.RecvWords
		}
		if s.Messages > rep.L {
			rep.L = s.Messages
		}
		if s.Clock > rep.Time {
			rep.Time = s.Clock
		}
	}
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// StoreOf reads processor id's local store. It is intended for harness use
// after Run has returned (e.g. assembling a distributed result without
// charging communication); calling it during a run races with the programs.
func (m *Machine) StoreOf(id int, key string) (Payload, bool) {
	if id < 0 || id >= m.cfg.P {
		return nil, false
	}
	sv, ok := m.procs[id].store[key]
	if !ok {
		return nil, false
	}
	return sv.v, true
}

// storedValue tracks a stored payload and its size for memory accounting.
type storedValue struct {
	v     Payload
	words int64
}

// Proc is one processor of the machine; its methods must only be called
// from its own program goroutine. It owns the local store (the part of the
// model faults erase) and delegates communication, time, and accounting to
// its endpoint stack.
type Proc struct {
	id int
	m  *Machine
	ep *costacct.Endpoint

	memWords   int64
	peakWords  int64
	faultCount int
	exitClock  float64 // Clock() captured when the program returned

	store map[string]storedValue
	marks []MarkRecord
}

// Mark records a named snapshot of the processor's counters; the run report
// exposes all snapshots for per-phase cost attribution.
func (p *Proc) Mark(label string) {
	c := p.ep.Stats()
	p.marks = append(p.marks, MarkRecord{
		Label:     label,
		Clock:     p.ep.Now(),
		Flops:     c.Flops,
		SentWords: c.SentWords,
		Messages:  c.Messages,
	})
}

// ID returns the processor's rank in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the machine's processor count.
func (p *Proc) P() int { return p.m.cfg.P }

// Clock returns the processor's current time in model units.
func (p *Proc) Clock() float64 { return p.ep.Now() }

// FaultCount returns how many times this rank has been killed and replaced.
func (p *Proc) FaultCount() int { return p.faultCount }

// Work charges n word-level arithmetic operations (F) and advances the clock.
func (p *Proc) Work(n int64) {
	if n < 0 {
		panic("machine: negative work")
	}
	p.ep.Work(n)
}

// Send transmits payload to processor `to` with a protocol tag. It charges
// one message (L) and the payload's word count (BW) to the sender and
// advances the sender's clock by α + β·words; the receiver's clock is
// advanced on Recv to at least the arrival time.
func (p *Proc) Send(to int, tag string, payload Payload) error {
	if to < 0 || to >= p.m.cfg.P {
		return fmt.Errorf("machine: proc %d sending to nonexistent proc %d", p.id, to)
	}
	return p.ep.Send(to, tag, payload)
}

// Recv receives the next message from processor `from`, asserting the
// protocol tag. It blocks until the message arrives and advances the clock
// to at least the message's arrival time.
func (p *Proc) Recv(from int, tag string) (Payload, error) {
	if from < 0 || from >= p.m.cfg.P {
		return nil, fmt.Errorf("machine: proc %d receiving from nonexistent proc %d", p.id, from)
	}
	return p.ep.Recv(from, tag)
}

// RecvDeadline receives the next message from `from` but accepts it only if
// it arrives at or before the deadline (in the clock's model units); a late
// message is not accepted and the clock advances to the deadline instead.
// This is the timeout primitive behind straggler (delay-fault) mitigation:
// proceed at the deadline with whoever reported in time.
func (p *Proc) RecvDeadline(from int, tag string, deadline float64) (Payload, bool, error) {
	if from < 0 || from >= p.m.cfg.P {
		return nil, false, fmt.Errorf("machine: proc %d receiving from nonexistent proc %d", p.id, from)
	}
	return p.ep.RecvDeadline(from, tag, deadline)
}

// RecvInts is Recv specialized to the Ints payload type.
func (p *Proc) RecvInts(from int, tag string) (Ints, error) {
	v, err := p.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	ints, ok := v.(Ints)
	if !ok {
		return nil, fmt.Errorf("machine: proc %d expected Ints from %d tag %q, got %T", p.id, from, tag, v)
	}
	return ints, nil
}

// Store saves a payload in local memory under key, enforcing the memory
// capacity M when configured. Overwriting a key releases the old value.
func (p *Proc) Store(key string, v Payload) error {
	w := v.Words()
	old := p.store[key].words
	next := p.memWords - old + w
	if p.m.cfg.MemoryWords > 0 && next > p.m.cfg.MemoryWords {
		return fmt.Errorf("machine: proc %d out of memory: need %d words, capacity %d", p.id, next, p.m.cfg.MemoryWords)
	}
	p.store[key] = storedValue{v: v, words: w}
	p.memWords = next
	if p.memWords > p.peakWords {
		p.peakWords = p.memWords
	}
	return nil
}

// Load retrieves a stored payload.
func (p *Proc) Load(key string) (Payload, bool) {
	sv, ok := p.store[key]
	if !ok {
		return nil, false
	}
	return sv.v, true
}

// LoadInts retrieves a stored Ints payload, with a typed error on mismatch.
func (p *Proc) LoadInts(key string) (Ints, error) {
	v, ok := p.Load(key)
	if !ok {
		return nil, fmt.Errorf("machine: proc %d has no %q (lost to a fault?)", p.id, key)
	}
	ints, ok := v.(Ints)
	if !ok {
		return nil, fmt.Errorf("machine: proc %d key %q holds %T, not Ints", p.id, key, v)
	}
	return ints, nil
}

// Free releases a stored payload.
func (p *Proc) Free(key string) {
	if sv, ok := p.store[key]; ok {
		p.memWords -= sv.words
		delete(p.store, key)
	}
}

// Keys returns the stored keys in sorted order (diagnostics).
func (p *Proc) Keys() []string {
	keys := make([]string, 0, len(p.store))
	for k := range p.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MemoryWords returns the current local-store occupancy.
func (p *Proc) MemoryWords() int64 { return p.memWords }

// Barrier synchronizes all still-active processors at the named phase
// boundary and injects any faults scheduled for it. Every participant
// returns the same list of fault events (the perfect failure detector);
// a processor that appears in the list is the *replacement* of the failed
// rank: its store has been wiped and it continues with empty memory.
//
// The barrier charges ⌈log₂P⌉ messages of one word (a tree barrier) and
// synchronizes clocks to the barrier's completion time. The error return is
// the wall backend's cancellation path; on the sim backend it is always nil.
func (p *Proc) Barrier(phase string) ([]FaultEvent, error) {
	return p.ep.Barrier(phase, nil)
}
