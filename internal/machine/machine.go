// Package machine simulates the paper's parallel machine model
// (Section 2.1): P identical processors, each with a local memory of M
// words, connected by a peer-to-peer network. The three cost measures —
// F (arithmetic operations), BW (words communicated), and L (messages) —
// are counted along the critical path, and the total runtime is modeled as
// C = α·L + β·BW + γ·F.
//
// Each processor runs as a goroutine executing an SPMD program. Messages
// travel over per-pair FIFO channels; every processor carries a virtual
// clock that advances with local work and message transfers, so the maximum
// clock at the end of a run is the critical-path runtime under the α/β/γ
// model, independent of real scheduling.
//
// Hard faults (Section 2.1) are injected at named barriers: a processor
// scheduled to fail "at phase X" loses its entire local store when it
// reaches the barrier named X, modeling fail-stop death with immediate
// replacement — the same rank continues with empty memory, exactly the
// paper's "the affected processor ceases operation, loses its data, and is
// subsequently replaced by an alternative processor". All processors
// observe the same list of failures at each barrier (a perfect failure
// detector, standard in this model).
package machine

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/bigint"
)

// Config describes the simulated machine.
type Config struct {
	P int // number of processors (excluding none; code processors included by caller)

	// MemoryWords is the per-processor memory capacity M in 64-bit words;
	// 0 means unlimited. Exceeding it makes Store return an error, so
	// algorithms can verify the Lemma 3.1 scheduling actually fits.
	MemoryWords int64

	// Runtime model coefficients: latency per message, time per word, time
	// per arithmetic word-operation. Zero values default to α=1000, β=10,
	// γ=1 — a conventional HPC-ish ratio.
	Alpha, Beta, Gamma float64

	// RecvTimeout guards against protocol deadlocks in tests; zero means
	// 30 seconds.
	RecvTimeout time.Duration

	// ChannelCap is the per-pair in-flight message capacity (default 128).
	// Channels are allocated lazily on first use of a (sender, receiver)
	// pair, so a large-P machine pays only for the pairs its protocol
	// actually exercises (grid protocols use O(P·√P) of the P² pairs)
	// rather than O(P²·ChannelCap) setup memory.
	ChannelCap int

	// SpeedFactors optionally slows processors down: processor i's
	// arithmetic takes γ·SpeedFactors[i] per word-operation (1.0 when nil
	// or zero). This models *delay faults* — the paper's third fault
	// category — in virtual time only; real execution speed is unchanged.
	SpeedFactors []float64
}

func (c Config) withDefaults() Config {
	if c.Alpha == 0 {
		c.Alpha = 1000
	}
	if c.Beta == 0 {
		c.Beta = 10
	}
	if c.Gamma == 0 {
		c.Gamma = 1
	}
	if c.RecvTimeout == 0 {
		c.RecvTimeout = 30 * time.Second
	}
	if c.ChannelCap == 0 {
		c.ChannelCap = 128
	}
	return c
}

// Fault schedules a hard fault: processor Proc dies when it reaches the
// barrier named Phase for the Hit-th time (0 = first).
type Fault struct {
	Proc  int
	Phase string
	Hit   int
}

// FaultEvent reports an injected fault to the surviving processors.
type FaultEvent struct {
	Proc  int
	Phase string
}

// Payload is anything a message can carry; Words is its size in the model's
// word units and is what the BW accounting charges.
type Payload interface {
	Words() int64
}

// Ints is a payload of big integers; its word count is the total limb count
// (at least one word per integer, so zeros still occupy a word on the wire).
type Ints []bigint.Int

// Words implements Payload.
func (v Ints) Words() int64 {
	var w int64
	for _, x := range v {
		l := int64(x.WordLen())
		if l == 0 {
			l = 1
		}
		w += l
	}
	return w
}

// Meta is a small control payload (a tag, an index, a count) costing one word.
type Meta struct{ Value int }

// Words implements Payload.
func (Meta) Words() int64 { return 1 }

type message struct {
	from    int
	tag     string
	payload Payload
	arrive  float64 // sender clock after the transfer completed
}

// Stats are one processor's accumulated costs.
type Stats struct {
	Flops     int64   // F: word-level arithmetic operations
	SentWords int64   // words sent
	RecvWords int64   // words received
	Messages  int64   // L: messages sent
	PeakWords int64   // peak local-store occupancy
	Clock     float64 // virtual completion time
	Faults    int     // times this rank was killed and replaced
}

// MarkRecord is a named snapshot of a processor's counters, for per-phase
// cost attribution (the anatomy of the paper's evaluation/multiplication/
// interpolation stages).
type MarkRecord struct {
	Label     string
	Clock     float64
	Flops     int64
	SentWords int64
	Messages  int64
}

// Report aggregates a finished run. Following the paper, F, BW and L are
// critical-path figures: the maximum over processors (the processors
// operate bulk-synchronously between barriers). Totals are also kept for
// the overhead comparisons of Section 5.
type Report struct {
	PerProc []Stats
	F       int64   // max flops over processors
	BW      int64   // max words sent over processors
	L       int64   // max messages over processors
	Time    float64 // max virtual clock = modeled runtime C
	TotalF  int64
	TotalBW int64
	TotalL  int64
	Faults  []FaultEvent
	// Marks holds each processor's Mark snapshots, in call order.
	Marks [][]MarkRecord
}

// Machine is a simulated P-processor machine. Create with New, run one
// program with Run; a Machine is single-use.
type Machine struct {
	cfg   Config
	procs []*Proc

	// chanSlots[from*P+to] holds the per-pair FIFO, created lazily on first
	// use: the slot is an atomic pointer for the contended fast path, with
	// chanMu serializing only the one-time creation of each channel.
	chanSlots []atomic.Pointer[chan message]
	chanMu    sync.Mutex

	faults map[string]map[int]map[int]bool // phase -> hit -> proc set

	mu        sync.Mutex
	active    int
	barGen    int
	cur       *barState
	done      map[int]*barState
	barCond   *sync.Cond
	barHits   map[string]int
	allEvents []FaultEvent
}

// barState is the per-generation barrier rendezvous state; keeping it per
// generation prevents a fast processor's next barrier from clobbering the
// event list a slow waiter has not copied yet.
type barState struct {
	count   int // processors arrived
	readers int // processors yet to consume the released state
	events  []FaultEvent
	max     float64
}

// New creates a machine with the given configuration and fault plan.
func New(cfg Config, plan []Fault) (*Machine, error) {
	cfg = cfg.withDefaults()
	if cfg.P < 1 {
		return nil, fmt.Errorf("machine: need P >= 1, got %d", cfg.P)
	}
	m := &Machine{
		cfg:     cfg,
		faults:  map[string]map[int]map[int]bool{},
		barHits: map[string]int{},
		done:    map[int]*barState{},
	}
	m.barCond = sync.NewCond(&m.mu)
	for _, f := range plan {
		if f.Proc < 0 || f.Proc >= cfg.P {
			return nil, fmt.Errorf("machine: fault for nonexistent processor %d", f.Proc)
		}
		if m.faults[f.Phase] == nil {
			m.faults[f.Phase] = map[int]map[int]bool{}
		}
		if m.faults[f.Phase][f.Hit] == nil {
			m.faults[f.Phase][f.Hit] = map[int]bool{}
		}
		m.faults[f.Phase][f.Hit][f.Proc] = true
	}
	m.chanSlots = make([]atomic.Pointer[chan message], cfg.P*cfg.P)
	m.procs = make([]*Proc, cfg.P)
	for i := range m.procs {
		m.procs[i] = &Proc{id: i, m: m, store: map[string]storedValue{}}
	}
	return m, nil
}

// P returns the processor count.
func (m *Machine) P() int { return m.cfg.P }

// chanFor returns the FIFO from processor `from` to processor `to`,
// creating it on first use. Both endpoints may race to create the same
// pair's channel; the mutex-guarded double-check makes the winner's channel
// the one both see.
func (m *Machine) chanFor(from, to int) chan message {
	slot := &m.chanSlots[from*m.cfg.P+to]
	if c := slot.Load(); c != nil {
		return *c
	}
	m.chanMu.Lock()
	defer m.chanMu.Unlock()
	if c := slot.Load(); c != nil {
		return *c
	}
	ch := make(chan message, m.cfg.ChannelCap)
	slot.Store(&ch)
	return ch
}

// allocatedChannels counts the per-pair channels created so far (test hook
// for the lazy-allocation contract; call only while the machine is quiescent).
func (m *Machine) allocatedChannels() int {
	n := 0
	for i := range m.chanSlots {
		if m.chanSlots[i].Load() != nil {
			n++
		}
	}
	return n
}

// Run executes program on all P processors and returns the cost report.
// The first processor error (if any) aborts with that error.
func (m *Machine) Run(program func(*Proc) error) (*Report, error) {
	m.mu.Lock()
	m.active = m.cfg.P
	m.mu.Unlock()

	errs := make([]error, m.cfg.P)
	var wg sync.WaitGroup
	for i := range m.procs {
		wg.Add(1)
		//ftlint:allow poolspawn the simulator IS the machine: one goroutine per simulated processor, bounded by cfg.P, not algorithm fan-out
		go func(p *Proc) {
			defer wg.Done()
			defer func() {
				m.mu.Lock()
				m.active--
				m.maybeRelease()
				m.barCond.Broadcast()
				m.mu.Unlock()
			}()
			errs[p.id] = program(p)
		}(m.procs[i])
	}
	wg.Wait()

	rep := &Report{PerProc: make([]Stats, m.cfg.P), Faults: m.allEvents, Marks: make([][]MarkRecord, m.cfg.P)}
	for i, p := range m.procs {
		rep.Marks[i] = p.marks
	}
	for i, p := range m.procs {
		s := Stats{
			Flops:     p.flops,
			SentWords: p.sentWords,
			RecvWords: p.recvWords,
			Messages:  p.messages,
			PeakWords: p.peakWords,
			Clock:     p.clock,
			Faults:    p.faultCount,
		}
		rep.PerProc[i] = s
		rep.TotalF += s.Flops
		rep.TotalBW += s.SentWords
		rep.TotalL += s.Messages
		if s.Flops > rep.F {
			rep.F = s.Flops
		}
		if s.SentWords > rep.BW {
			rep.BW = s.SentWords
		}
		if s.Messages > rep.L {
			rep.L = s.Messages
		}
		if s.Clock > rep.Time {
			rep.Time = s.Clock
		}
	}
	for _, err := range errs {
		if err != nil {
			return rep, err
		}
	}
	return rep, nil
}

// StoreOf reads processor id's local store. It is intended for harness use
// after Run has returned (e.g. assembling a distributed result without
// charging communication); calling it during a run races with the programs.
func (m *Machine) StoreOf(id int, key string) (Payload, bool) {
	if id < 0 || id >= m.cfg.P {
		return nil, false
	}
	sv, ok := m.procs[id].store[key]
	if !ok {
		return nil, false
	}
	return sv.v, true
}

// storedValue tracks a stored payload and its size for memory accounting.
type storedValue struct {
	v     Payload
	words int64
}

// Proc is one simulated processor; its methods must only be called from its
// own program goroutine.
type Proc struct {
	id int
	m  *Machine

	clock      float64
	flops      int64
	sentWords  int64
	recvWords  int64
	messages   int64
	memWords   int64
	peakWords  int64
	faultCount int

	store map[string]storedValue
	marks []MarkRecord
}

// Mark records a named snapshot of the processor's counters; the run report
// exposes all snapshots for per-phase cost attribution.
func (p *Proc) Mark(label string) {
	p.marks = append(p.marks, MarkRecord{
		Label:     label,
		Clock:     p.clock,
		Flops:     p.flops,
		SentWords: p.sentWords,
		Messages:  p.messages,
	})
}

// ID returns the processor's rank in [0, P).
func (p *Proc) ID() int { return p.id }

// P returns the machine's processor count.
func (p *Proc) P() int { return p.m.cfg.P }

// Clock returns the processor's current virtual time.
func (p *Proc) Clock() float64 { return p.clock }

// FaultCount returns how many times this rank has been killed and replaced.
func (p *Proc) FaultCount() int { return p.faultCount }

// Work charges n word-level arithmetic operations (F) and advances the clock.
func (p *Proc) Work(n int64) {
	if n < 0 {
		panic("machine: negative work")
	}
	p.flops += n
	speed := 1.0
	if sf := p.m.cfg.SpeedFactors; p.id < len(sf) && sf[p.id] > 0 {
		speed = sf[p.id]
	}
	p.clock += p.m.cfg.Gamma * float64(n) * speed
}

// Send transmits payload to processor `to` with a protocol tag. It charges
// one message (L) and the payload's word count (BW) to the sender and
// advances the sender's clock by α + β·words; the receiver's clock is
// advanced on Recv to at least the arrival time.
func (p *Proc) Send(to int, tag string, payload Payload) error {
	if to < 0 || to >= p.m.cfg.P {
		return fmt.Errorf("machine: proc %d sending to nonexistent proc %d", p.id, to)
	}
	w := payload.Words()
	p.messages++
	p.sentWords += w
	p.clock += p.m.cfg.Alpha + p.m.cfg.Beta*float64(w)
	msg := message{from: p.id, tag: tag, payload: payload, arrive: p.clock}
	select {
	case p.m.chanFor(p.id, to) <- msg:
		return nil
	default:
		return fmt.Errorf("machine: channel %d->%d full (protocol error)", p.id, to)
	}
}

// Recv receives the next message from processor `from`, asserting the
// protocol tag. It blocks until the message arrives and advances the clock
// to at least the message's arrival time.
func (p *Proc) Recv(from int, tag string) (Payload, error) {
	if from < 0 || from >= p.m.cfg.P {
		return nil, fmt.Errorf("machine: proc %d receiving from nonexistent proc %d", p.id, from)
	}
	select {
	case msg := <-p.m.chanFor(from, p.id):
		if msg.tag != tag {
			return nil, fmt.Errorf("machine: proc %d expected tag %q from %d, got %q", p.id, tag, from, msg.tag)
		}
		w := msg.payload.Words()
		p.recvWords += w
		if msg.arrive > p.clock {
			p.clock = msg.arrive
		}
		return msg.payload, nil
	case <-time.After(p.m.cfg.RecvTimeout):
		return nil, fmt.Errorf("machine: proc %d timed out waiting for tag %q from %d", p.id, tag, from)
	}
}

// RecvDeadline receives the next message from `from` but accepts it only if
// its virtual arrival time is at or before the deadline; a later message is
// discarded (the transport drops what the receiver stopped listening for)
// and the receiver's clock advances to the deadline instead. This is the
// timeout primitive behind straggler (delay-fault) mitigation: proceed at
// the deadline with whoever reported in time.
func (p *Proc) RecvDeadline(from int, tag string, deadline float64) (Payload, bool, error) {
	if from < 0 || from >= p.m.cfg.P {
		return nil, false, fmt.Errorf("machine: proc %d receiving from nonexistent proc %d", p.id, from)
	}
	select {
	case msg := <-p.m.chanFor(from, p.id):
		if msg.tag != tag {
			return nil, false, fmt.Errorf("machine: proc %d expected tag %q from %d, got %q", p.id, tag, from, msg.tag)
		}
		if msg.arrive > deadline {
			if deadline > p.clock {
				p.clock = deadline
			}
			return nil, false, nil
		}
		p.recvWords += msg.payload.Words()
		if msg.arrive > p.clock {
			p.clock = msg.arrive
		}
		return msg.payload, true, nil
	case <-time.After(p.m.cfg.RecvTimeout):
		return nil, false, fmt.Errorf("machine: proc %d timed out waiting for tag %q from %d", p.id, tag, from)
	}
}

// RecvInts is Recv specialized to the Ints payload type.
func (p *Proc) RecvInts(from int, tag string) (Ints, error) {
	v, err := p.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	ints, ok := v.(Ints)
	if !ok {
		return nil, fmt.Errorf("machine: proc %d expected Ints from %d tag %q, got %T", p.id, from, tag, v)
	}
	return ints, nil
}

// Store saves a payload in local memory under key, enforcing the memory
// capacity M when configured. Overwriting a key releases the old value.
func (p *Proc) Store(key string, v Payload) error {
	w := v.Words()
	old := p.store[key].words
	next := p.memWords - old + w
	if p.m.cfg.MemoryWords > 0 && next > p.m.cfg.MemoryWords {
		return fmt.Errorf("machine: proc %d out of memory: need %d words, capacity %d", p.id, next, p.m.cfg.MemoryWords)
	}
	p.store[key] = storedValue{v: v, words: w}
	p.memWords = next
	if p.memWords > p.peakWords {
		p.peakWords = p.memWords
	}
	return nil
}

// Load retrieves a stored payload.
func (p *Proc) Load(key string) (Payload, bool) {
	sv, ok := p.store[key]
	if !ok {
		return nil, false
	}
	return sv.v, true
}

// LoadInts retrieves a stored Ints payload, with a typed error on mismatch.
func (p *Proc) LoadInts(key string) (Ints, error) {
	v, ok := p.Load(key)
	if !ok {
		return nil, fmt.Errorf("machine: proc %d has no %q (lost to a fault?)", p.id, key)
	}
	ints, ok := v.(Ints)
	if !ok {
		return nil, fmt.Errorf("machine: proc %d key %q holds %T, not Ints", p.id, key, v)
	}
	return ints, nil
}

// Free releases a stored payload.
func (p *Proc) Free(key string) {
	if sv, ok := p.store[key]; ok {
		p.memWords -= sv.words
		delete(p.store, key)
	}
}

// Keys returns the stored keys in sorted order (diagnostics).
func (p *Proc) Keys() []string {
	keys := make([]string, 0, len(p.store))
	for k := range p.store {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// MemoryWords returns the current local-store occupancy.
func (p *Proc) MemoryWords() int64 { return p.memWords }

// Barrier synchronizes all still-active processors at the named phase
// boundary and injects any faults scheduled for it. Every participant
// returns the same list of fault events (the perfect failure detector);
// a processor that appears in the list is the *replacement* of the failed
// rank: its store has been wiped and it continues with empty memory.
//
// The barrier charges ⌈log₂P⌉ messages of one word (a tree barrier) and
// synchronizes virtual clocks to the barrier's completion time.
func (p *Proc) Barrier(phase string) []FaultEvent {
	m := p.m
	logP := int64(math.Ceil(math.Log2(float64(m.cfg.P))))
	if logP < 1 {
		logP = 1
	}
	p.messages += logP
	p.sentWords += logP
	p.clock += float64(logP) * (m.cfg.Alpha + m.cfg.Beta)

	m.mu.Lock()
	defer m.mu.Unlock()

	gen := m.barGen
	if m.cur == nil {
		m.cur = &barState{}
	}
	m.cur.count++
	if p.clock > m.cur.max {
		m.cur.max = p.clock
	}

	// Inject this processor's own scheduled fault, if any.
	hit := m.barHits[barKey(phase, p.id)]
	m.barHits[barKey(phase, p.id)] = hit + 1
	if byHit, ok := m.faults[phase]; ok {
		if procs, ok := byHit[hit]; ok && procs[p.id] {
			ev := FaultEvent{Proc: p.id, Phase: phase}
			m.cur.events = append(m.cur.events, ev)
			m.allEvents = append(m.allEvents, ev)
			// Fail-stop: all local data is lost; the replacement starts
			// empty at the same rank.
			p.store = map[string]storedValue{}
			p.memWords = 0
			p.faultCount++
		}
	}

	m.maybeRelease()
	for m.barGen == gen {
		m.barCond.Wait()
	}
	st := m.done[gen]
	if st.max > p.clock {
		p.clock = st.max
	}
	events := make([]FaultEvent, len(st.events))
	copy(events, st.events)
	st.readers--
	if st.readers == 0 {
		delete(m.done, gen)
	}
	return events
}

// maybeRelease completes the current barrier generation once every active
// processor has arrived. Called with m.mu held, from Barrier and from the
// active-count decrement when a processor exits mid-barrier.
func (m *Machine) maybeRelease() {
	if m.cur == nil || m.cur.count < m.active {
		return
	}
	st := m.cur
	m.cur = nil
	sort.Slice(st.events, func(i, j int) bool { return st.events[i].Proc < st.events[j].Proc })
	st.readers = st.count
	m.done[m.barGen] = st
	m.barGen++
	m.barCond.Broadcast()
}

func barKey(phase string, proc int) string { return fmt.Sprintf("%s#%d", phase, proc) }
