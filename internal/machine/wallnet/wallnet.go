// Package wallnet is the wall-clock in-process transport backend: the same
// tagged point-to-point protocol as simnet, but time is real. Now() measures
// time.Since(start), RecvDeadline waits until a real deadline, and
// context.Context cancellation aborts blocked Send/Recv/Barrier calls —
// this is the backend that makes wall-clock benchmarking of FT overheads
// and real-time straggler experiments possible without touching algorithm
// code.
//
// Model units versus real time: with TimeDilation zero (the default) the
// backend is free-running — Elapse/ElapseWork are no-ops (real computation
// already costs real time) and one model unit is one second, so deadlines
// like "Clock()+slack" read as seconds of slack. With TimeDilation set,
// every model unit charged via Elapse/ElapseWork is slept off at that real
// duration and Now() converts elapsed real time back into model units, so
// virtual-machine experiments (straggler slack in cost units, speed-factor
// delays) transfer to the wall clock with their ratios intact.
//
// Unlike simnet, Send applies real backpressure: a full per-pair buffer
// blocks the sender (under context cancellation) instead of failing, which
// is how a real network behaves.
package wallnet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine/transport"
)

// Config sizes the wall-clock network.
type Config struct {
	P int // processor count

	// ChannelCap is the per-pair in-flight message capacity (default 128);
	// a full buffer blocks the sender rather than erroring. Channels are
	// allocated lazily per (sender, receiver) pair, as on simnet.
	ChannelCap int

	// RecvTimeout bounds how long Recv and Barrier wait before declaring
	// the protocol dead; zero means 30 seconds.
	RecvTimeout time.Duration

	// TimeDilation is the real duration of one model unit. Zero means
	// free-running: charges are not slept and Now() is in seconds.
	TimeDilation time.Duration
}

func (c Config) withDefaults() Config {
	if c.ChannelCap == 0 {
		c.ChannelCap = 128
	}
	if c.RecvTimeout == 0 {
		c.RecvTimeout = 30 * time.Second
	}
	return c
}

type message struct {
	from    int
	tag     string
	payload transport.Payload
	at      time.Time // real arrival stamp, for deadline accept/reject
}

// Net is the wall-clock transport. Create with New; a Net is single-use.
type Net struct {
	cfg   Config
	start time.Time

	chanSlots []atomic.Pointer[chan message]
	chanMu    sync.Mutex

	mu     sync.Mutex
	active int
	cur    *barState
}

// barState is one barrier generation. Waiters hold the pointer, so release
// is just closing the channel; events are sorted before the close and read
// only after it (the close is the happens-before edge).
type barState struct {
	arrived  int
	events   []transport.FaultEvent
	released chan struct{}
}

// New creates the wall-clock transport for cfg.P processors. The run's
// start time (the zero of Now) is stamped here.
func New(cfg Config) (*Net, error) {
	cfg = cfg.withDefaults()
	if cfg.P < 1 {
		return nil, fmt.Errorf("wallnet: need P >= 1, got %d", cfg.P)
	}
	return &Net{
		cfg:       cfg,
		start:     time.Now(),
		chanSlots: make([]atomic.Pointer[chan message], cfg.P*cfg.P),
		active:    cfg.P,
	}, nil
}

// P implements transport.Transport.
func (n *Net) P() int { return n.cfg.P }

// Open implements transport.Transport. The context cancels blocked
// Send/Recv/Barrier calls and aborts dilated sleeps.
func (n *Net) Open(ctx context.Context, rank int) (transport.Endpoint, error) {
	if rank < 0 || rank >= n.cfg.P {
		return nil, fmt.Errorf("wallnet: rank %d out of range [0,%d)", rank, n.cfg.P)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &endpoint{n: n, rank: rank, ctx: ctx}, nil
}

// Close implements transport.Transport.
func (n *Net) Close() error { return nil }

// AllocatedChannels counts the per-pair channels created so far (test hook;
// call only while the net is quiescent).
func (n *Net) AllocatedChannels() int {
	c := 0
	for i := range n.chanSlots {
		if n.chanSlots[i].Load() != nil {
			c++
		}
	}
	return c
}

func (n *Net) chanFor(from, to int) chan message {
	slot := &n.chanSlots[from*n.cfg.P+to]
	if c := slot.Load(); c != nil {
		return *c
	}
	n.chanMu.Lock()
	defer n.chanMu.Unlock()
	if c := slot.Load(); c != nil {
		return *c
	}
	ch := make(chan message, n.cfg.ChannelCap)
	slot.Store(&ch)
	return ch
}

// unit returns the real duration of one model unit.
func (n *Net) unit() time.Duration {
	if n.cfg.TimeDilation > 0 {
		return n.cfg.TimeDilation
	}
	return time.Second
}

// maybeRelease completes the current barrier once every active endpoint has
// arrived. Called with n.mu held.
func (n *Net) maybeRelease() {
	if n.cur == nil || n.cur.arrived < n.active {
		return
	}
	st := n.cur
	n.cur = nil
	sort.Slice(st.events, func(i, j int) bool { return st.events[i].Proc < st.events[j].Proc })
	close(st.released)
}

type endpoint struct {
	n    *Net
	rank int
	ctx  context.Context
}

func (ep *endpoint) Rank() int { return ep.rank }

func (ep *endpoint) P() int { return ep.n.cfg.P }

// Now returns elapsed real time in model units (seconds when free-running).
func (ep *endpoint) Now() float64 {
	return float64(time.Since(ep.n.start)) / float64(ep.n.unit())
}

// Elapse sleeps off the charge when dilation is configured; free-running
// time only advances by actually doing things.
func (ep *endpoint) Elapse(units float64) {
	if ep.n.cfg.TimeDilation <= 0 || units <= 0 {
		return
	}
	d := time.Duration(units * float64(ep.n.cfg.TimeDilation))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-ep.ctx.Done():
	}
}

func (ep *endpoint) ElapseWork(units float64) { ep.Elapse(units) }

// Send blocks when the per-pair buffer is full (real backpressure), under
// context cancellation.
func (ep *endpoint) Send(to int, tag string, payload transport.Payload) error {
	if to < 0 || to >= ep.n.cfg.P {
		return fmt.Errorf("wallnet: proc %d sending to nonexistent proc %d", ep.rank, to)
	}
	msg := message{from: ep.rank, tag: tag, payload: payload, at: time.Now()}
	select {
	case ep.n.chanFor(ep.rank, to) <- msg:
		return nil
	case <-ep.ctx.Done():
		return fmt.Errorf("wallnet: proc %d send to %d canceled: %w", ep.rank, to, ep.ctx.Err())
	}
}

func (ep *endpoint) Recv(from int, tag string) (transport.Payload, error) {
	if from < 0 || from >= ep.n.cfg.P {
		return nil, fmt.Errorf("wallnet: proc %d receiving from nonexistent proc %d", ep.rank, from)
	}
	timer := time.NewTimer(ep.n.cfg.RecvTimeout)
	defer timer.Stop()
	select {
	case msg := <-ep.n.chanFor(from, ep.rank):
		if msg.tag != tag {
			return nil, fmt.Errorf("wallnet: proc %d expected tag %q from %d, got %q", ep.rank, tag, from, msg.tag)
		}
		return msg.payload, nil
	case <-ep.ctx.Done():
		return nil, fmt.Errorf("wallnet: proc %d recv from %d canceled: %w", ep.rank, from, ep.ctx.Err())
	case <-timer.C:
		return nil, fmt.Errorf("wallnet: proc %d timed out waiting for tag %q from %d", ep.rank, tag, from)
	}
}

// RecvDeadline waits until a message arrives or the real deadline passes.
// A message stamped after the deadline is consumed and discarded, like
// simnet; if the deadline fires with nothing queued, ok=false is returned
// and the late message (if any ever comes) stays queued for the run's end.
func (ep *endpoint) RecvDeadline(from int, tag string, deadline float64) (transport.Payload, bool, error) {
	if from < 0 || from >= ep.n.cfg.P {
		return nil, false, fmt.Errorf("wallnet: proc %d receiving from nonexistent proc %d", ep.rank, from)
	}
	target := ep.n.start.Add(time.Duration(deadline * float64(ep.n.unit())))
	timer := time.NewTimer(time.Until(target))
	defer timer.Stop()
	select {
	case msg := <-ep.n.chanFor(from, ep.rank):
		if msg.tag != tag {
			return nil, false, fmt.Errorf("wallnet: proc %d expected tag %q from %d, got %q", ep.rank, tag, from, msg.tag)
		}
		if msg.at.After(target) {
			return nil, false, nil
		}
		return msg.payload, true, nil
	case <-timer.C:
		return nil, false, nil
	case <-ep.ctx.Done():
		return nil, false, fmt.Errorf("wallnet: proc %d recv from %d canceled: %w", ep.rank, from, ep.ctx.Err())
	}
}

// Barrier joins the current generation and blocks until every active
// endpoint arrives, the context is canceled, or RecvTimeout declares the
// protocol dead.
func (ep *endpoint) Barrier(phase string, local []transport.FaultEvent) ([]transport.FaultEvent, error) {
	n := ep.n
	n.mu.Lock()
	if n.cur == nil {
		n.cur = &barState{released: make(chan struct{})}
	}
	st := n.cur
	st.arrived++
	st.events = append(st.events, local...)
	n.maybeRelease()
	n.mu.Unlock()

	timer := time.NewTimer(n.cfg.RecvTimeout)
	defer timer.Stop()
	select {
	case <-st.released:
	case <-ep.ctx.Done():
		return nil, fmt.Errorf("wallnet: proc %d barrier %q canceled: %w", ep.rank, phase, ep.ctx.Err())
	case <-timer.C:
		return nil, fmt.Errorf("wallnet: proc %d timed out in barrier %q", ep.rank, phase)
	}
	events := make([]transport.FaultEvent, len(st.events))
	copy(events, st.events)
	return events, nil
}

// Done retires the endpoint, releasing a barrier in progress if this was
// the last arrival it was waiting on.
func (ep *endpoint) Done() {
	n := ep.n
	n.mu.Lock()
	n.active--
	n.maybeRelease()
	n.mu.Unlock()
}
