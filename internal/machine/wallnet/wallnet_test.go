package wallnet

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/machine/transport"
)

type words int64

func (w words) Words() int64 { return int64(w) }

func open2(t *testing.T, ctx context.Context, cfg Config) (*Net, transport.Endpoint, transport.Endpoint) {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e0, err := n.Open(ctx, 0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := n.Open(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	return n, e0, e1
}

func TestSendRecvAndTagAssert(t *testing.T) {
	_, e0, e1 := open2(t, context.Background(), Config{P: 2})
	if err := e0.Send(1, "x", words(3)); err != nil {
		t.Fatal(err)
	}
	got, err := e1.Recv(0, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.(words) != 3 {
		t.Errorf("payload = %v", got)
	}
	if err := e0.Send(1, "alpha", words(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.Recv(0, "beta"); err == nil || !strings.Contains(err.Error(), "expected tag") {
		t.Fatalf("tag mismatch err = %v", err)
	}
}

func TestRecvTimesOut(t *testing.T) {
	_, _, e1 := open2(t, context.Background(), Config{P: 2, RecvTimeout: 30 * time.Millisecond})
	if _, err := e1.Recv(0, "never"); err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("err = %v", err)
	}
}

func TestContextCancelAbortsRecvAndBarrier(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	_, e0, e1 := open2(t, ctx, Config{P: 2})
	errc := make(chan error, 2)
	go func() {
		_, err := e0.Recv(1, "never")
		errc <- err
	}()
	go func() {
		_, err := e1.Barrier("stuck", nil)
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errc:
			if err == nil || !strings.Contains(err.Error(), "canceled") {
				t.Fatalf("err = %v", err)
			}
		case <-time.After(2 * time.Second):
			t.Fatal("blocked call not aborted by cancel")
		}
	}
}

func TestRecvDeadline(t *testing.T) {
	_, e0, e1 := open2(t, context.Background(), Config{P: 2, TimeDilation: time.Millisecond})
	// On time: the message is already queued well before the deadline.
	if err := e0.Send(1, "d", words(1)); err != nil {
		t.Fatal(err)
	}
	_, ok, err := e1.RecvDeadline(0, "d", 10_000) // 10s of model time
	if err != nil || !ok {
		t.Fatalf("on-time message rejected: ok=%v err=%v", ok, err)
	}
	// Missed: nothing is sent, deadline 30ms from the start fires.
	start := time.Now()
	_, ok, err = e1.RecvDeadline(0, "d", 30)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("deadline with no sender should miss")
	}
	if time.Since(start) > 5*time.Second {
		t.Fatal("deadline wait did not use the real deadline")
	}
}

func TestBarrierMergesAndSorts(t *testing.T) {
	_, e0, e1 := open2(t, context.Background(), Config{P: 2})
	type out struct {
		ev  []transport.FaultEvent
		err error
	}
	ch := make(chan out, 2)
	go func() {
		ev, err := e1.Barrier("x", []transport.FaultEvent{{Proc: 1, Phase: "x"}})
		ch <- out{ev, err}
	}()
	ev, err := e0.Barrier("x", []transport.FaultEvent{{Proc: 0, Phase: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	o := <-ch
	if o.err != nil {
		t.Fatal(o.err)
	}
	for _, got := range [][]transport.FaultEvent{ev, o.ev} {
		if len(got) != 2 || got[0].Proc != 0 || got[1].Proc != 1 {
			t.Errorf("merged events = %v, want sorted [0 1]", got)
		}
	}
}

func TestDoneReleasesBarrier(t *testing.T) {
	_, e0, e1 := open2(t, context.Background(), Config{P: 2})
	done := make(chan error, 1)
	go func() {
		_, err := e0.Barrier("late", nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e1.Done()
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier not released by Done")
	}
}

func TestDilationSleepsWorkAndConvertsNow(t *testing.T) {
	n, err := New(Config{P: 1, TimeDilation: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := n.Open(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ep.ElapseWork(50) // 50 model units = 50ms of real time
	if now := ep.Now(); now < 50 {
		t.Errorf("Now() = %v model units after charging 50", now)
	}
}

func TestFreeRunningNowIsSeconds(t *testing.T) {
	n, err := New(Config{P: 1})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := n.Open(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	ep.Elapse(1e9) // free-running: charges are not slept
	if now := ep.Now(); now > 60 {
		t.Errorf("free-running Now() = %v, should be wall seconds", now)
	}
}

func TestSendBackpressureUnblocksOnRecv(t *testing.T) {
	_, e0, e1 := open2(t, context.Background(), Config{P: 2, ChannelCap: 1})
	if err := e0.Send(1, "x", words(1)); err != nil {
		t.Fatal(err)
	}
	sent := make(chan error, 1)
	go func() { sent <- e0.Send(1, "x", words(1)) }()
	time.Sleep(10 * time.Millisecond)
	if _, err := e1.Recv(0, "x"); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-sent:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("full-buffer send did not unblock after a receive")
	}
}
