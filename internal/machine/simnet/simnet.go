// Package simnet is the deterministic virtual-clock transport backend — the
// seed simulator's network and clock, extracted behind the transport seam.
//
// Each endpoint carries a virtual clock (a float64 in model units) advanced
// only by Elapse/ElapseWork; messages are stamped with the sender's clock at
// send time and the receiver's clock advances to at least that stamp on
// receive, so the maximum clock at the end of a run is the critical-path
// runtime under the cost model, independent of real scheduling. Messages
// travel over per-pair FIFO channels allocated lazily on first use of a
// (sender, receiver) pair.
//
// The barrier is a global generation rendezvous: phase names only matter to
// the fault-injection decorator, not to the release logic. An endpoint that
// calls Done stops counting toward the rendezvous, releasing any barrier in
// progress (a processor that exits its program early must not deadlock the
// others).
package simnet

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/machine/transport"
)

// Config sizes the simulated network.
type Config struct {
	P int // processor count

	// ChannelCap is the per-pair in-flight message capacity (default 128).
	// Channels are allocated lazily on first use of a (sender, receiver)
	// pair, so a large-P machine pays only for the pairs its protocol
	// actually exercises (grid protocols use O(P·√P) of the P² pairs)
	// rather than O(P²·ChannelCap) setup memory.
	ChannelCap int

	// RecvTimeout guards against protocol deadlocks in tests; zero means
	// 30 seconds. This is a real-time guard on a virtual-time machine: a
	// correct protocol never hits it.
	RecvTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.ChannelCap == 0 {
		c.ChannelCap = 128
	}
	if c.RecvTimeout == 0 {
		c.RecvTimeout = 30 * time.Second
	}
	return c
}

type message struct {
	from    int
	tag     string
	payload transport.Payload
	arrive  float64 // sender clock after the transfer completed
}

// Net is the virtual-clock transport. Create with New; a Net is single-use.
type Net struct {
	cfg Config

	// chanSlots[from*P+to] holds the per-pair FIFO, created lazily on first
	// use: the slot is an atomic pointer for the contended fast path, with
	// chanMu serializing only the one-time creation of each channel.
	chanSlots []atomic.Pointer[chan message]
	chanMu    sync.Mutex

	mu      sync.Mutex
	active  int
	barGen  int
	cur     *barState
	done    map[int]*barState
	barCond *sync.Cond
}

// barState is the per-generation barrier rendezvous state; keeping it per
// generation prevents a fast processor's next barrier from clobbering the
// event list a slow waiter has not copied yet.
type barState struct {
	count   int // endpoints arrived
	readers int // endpoints yet to consume the released state
	events  []transport.FaultEvent
	max     float64
}

// New creates the virtual-clock transport for cfg.P processors. All P
// endpoints count as active from the start; Open hands them out.
func New(cfg Config) (*Net, error) {
	cfg = cfg.withDefaults()
	if cfg.P < 1 {
		return nil, fmt.Errorf("simnet: need P >= 1, got %d", cfg.P)
	}
	n := &Net{
		cfg:       cfg,
		chanSlots: make([]atomic.Pointer[chan message], cfg.P*cfg.P),
		active:    cfg.P,
		done:      map[int]*barState{},
	}
	n.barCond = sync.NewCond(&n.mu)
	return n, nil
}

// P implements transport.Transport.
func (n *Net) P() int { return n.cfg.P }

// Open implements transport.Transport. The context cancels blocked Recv
// calls; the barrier is released by Done (virtual time has no in-barrier
// cancellation point — a correct protocol's barriers always complete).
func (n *Net) Open(ctx context.Context, rank int) (transport.Endpoint, error) {
	if rank < 0 || rank >= n.cfg.P {
		return nil, fmt.Errorf("simnet: rank %d out of range [0,%d)", rank, n.cfg.P)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	return &endpoint{n: n, rank: rank, ctx: ctx}, nil
}

// Close implements transport.Transport.
func (n *Net) Close() error { return nil }

// AllocatedChannels counts the per-pair channels created so far (test hook
// for the lazy-allocation contract; call only while the net is quiescent).
func (n *Net) AllocatedChannels() int {
	c := 0
	for i := range n.chanSlots {
		if n.chanSlots[i].Load() != nil {
			c++
		}
	}
	return c
}

// chanFor returns the FIFO from rank `from` to rank `to`, creating it on
// first use. Both endpoints may race to create the same pair's channel; the
// mutex-guarded double-check makes the winner's channel the one both see.
func (n *Net) chanFor(from, to int) chan message {
	slot := &n.chanSlots[from*n.cfg.P+to]
	if c := slot.Load(); c != nil {
		return *c
	}
	n.chanMu.Lock()
	defer n.chanMu.Unlock()
	if c := slot.Load(); c != nil {
		return *c
	}
	ch := make(chan message, n.cfg.ChannelCap)
	slot.Store(&ch)
	return ch
}

// maybeRelease completes the current barrier generation once every active
// endpoint has arrived. Called with n.mu held, from Barrier and from the
// active-count decrement when an endpoint retires mid-barrier.
func (n *Net) maybeRelease() {
	if n.cur == nil || n.cur.count < n.active {
		return
	}
	st := n.cur
	n.cur = nil
	sort.Slice(st.events, func(i, j int) bool { return st.events[i].Proc < st.events[j].Proc })
	st.readers = st.count
	n.done[n.barGen] = st
	n.barGen++
	n.barCond.Broadcast()
}

// endpoint is one rank's handle. The clock is owned by the rank's goroutine;
// Barrier publishes it into the shared barState under n.mu.
type endpoint struct {
	n     *Net
	rank  int
	ctx   context.Context
	clock float64
}

func (ep *endpoint) Rank() int { return ep.rank }

func (ep *endpoint) P() int { return ep.n.cfg.P }

func (ep *endpoint) Now() float64 { return ep.clock }

func (ep *endpoint) Elapse(units float64) { ep.clock += units }

// ElapseWork is Elapse: virtual compute time and virtual transfer time are
// the same currency; the distinction exists for decorators.
func (ep *endpoint) ElapseWork(units float64) { ep.clock += units }

// Send stamps the message with the sender's current clock (its arrival
// time) and enqueues it without blocking: a full per-pair buffer is a
// protocol error, not backpressure, on the virtual-time machine.
func (ep *endpoint) Send(to int, tag string, payload transport.Payload) error {
	if to < 0 || to >= ep.n.cfg.P {
		return fmt.Errorf("simnet: proc %d sending to nonexistent proc %d", ep.rank, to)
	}
	msg := message{from: ep.rank, tag: tag, payload: payload, arrive: ep.clock}
	select {
	case ep.n.chanFor(ep.rank, to) <- msg:
		return nil
	default:
		return fmt.Errorf("simnet: channel %d->%d full (protocol error)", ep.rank, to)
	}
}

// Recv blocks until the next message from `from` arrives, asserts the tag,
// and advances the clock to at least the message's virtual arrival time.
func (ep *endpoint) Recv(from int, tag string) (transport.Payload, error) {
	if from < 0 || from >= ep.n.cfg.P {
		return nil, fmt.Errorf("simnet: proc %d receiving from nonexistent proc %d", ep.rank, from)
	}
	select {
	case msg := <-ep.n.chanFor(from, ep.rank):
		if msg.tag != tag {
			return nil, fmt.Errorf("simnet: proc %d expected tag %q from %d, got %q", ep.rank, tag, from, msg.tag)
		}
		if msg.arrive > ep.clock {
			ep.clock = msg.arrive
		}
		return msg.payload, nil
	case <-ep.ctx.Done():
		return nil, fmt.Errorf("simnet: proc %d recv from %d canceled: %w", ep.rank, from, ep.ctx.Err())
	case <-time.After(ep.n.cfg.RecvTimeout):
		return nil, fmt.Errorf("simnet: proc %d timed out waiting for tag %q from %d", ep.rank, tag, from)
	}
}

// RecvDeadline receives the next message from `from` but accepts it only if
// its virtual arrival time is at or before the deadline; a later message is
// discarded (the transport drops what the receiver stopped listening for)
// and the receiver's clock advances to the deadline instead. This is the
// timeout primitive behind straggler (delay-fault) mitigation: proceed at
// the deadline with whoever reported in time.
func (ep *endpoint) RecvDeadline(from int, tag string, deadline float64) (transport.Payload, bool, error) {
	if from < 0 || from >= ep.n.cfg.P {
		return nil, false, fmt.Errorf("simnet: proc %d receiving from nonexistent proc %d", ep.rank, from)
	}
	select {
	case msg := <-ep.n.chanFor(from, ep.rank):
		if msg.tag != tag {
			return nil, false, fmt.Errorf("simnet: proc %d expected tag %q from %d, got %q", ep.rank, tag, from, msg.tag)
		}
		if msg.arrive > deadline {
			if deadline > ep.clock {
				ep.clock = deadline
			}
			return nil, false, nil
		}
		if msg.arrive > ep.clock {
			ep.clock = msg.arrive
		}
		return msg.payload, true, nil
	case <-ep.ctx.Done():
		return nil, false, fmt.Errorf("simnet: proc %d recv from %d canceled: %w", ep.rank, from, ep.ctx.Err())
	case <-time.After(ep.n.cfg.RecvTimeout):
		return nil, false, fmt.Errorf("simnet: proc %d timed out waiting for tag %q from %d", ep.rank, tag, from)
	}
}

// Barrier publishes the endpoint's clock and local fault events into the
// current generation, waits for every active endpoint, then syncs the clock
// to the barrier's completion time and returns the merged event list.
func (ep *endpoint) Barrier(phase string, local []transport.FaultEvent) ([]transport.FaultEvent, error) {
	_ = phase // rendezvous is global; the phase name matters to decorators only
	n := ep.n
	n.mu.Lock()
	defer n.mu.Unlock()

	gen := n.barGen
	if n.cur == nil {
		n.cur = &barState{}
	}
	n.cur.count++
	if ep.clock > n.cur.max {
		n.cur.max = ep.clock
	}
	n.cur.events = append(n.cur.events, local...)

	n.maybeRelease()
	for n.barGen == gen {
		n.barCond.Wait()
	}
	st := n.done[gen]
	if st.max > ep.clock {
		ep.clock = st.max
	}
	events := make([]transport.FaultEvent, len(st.events))
	copy(events, st.events)
	st.readers--
	if st.readers == 0 {
		delete(n.done, gen)
	}
	return events, nil
}

// Done retires the endpoint from barrier participation, releasing a
// rendezvous in progress if this was the last arrival it was waiting on.
func (ep *endpoint) Done() {
	n := ep.n
	n.mu.Lock()
	n.active--
	n.maybeRelease()
	n.barCond.Broadcast()
	n.mu.Unlock()
}
