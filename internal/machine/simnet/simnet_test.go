package simnet

import (
	"context"
	"testing"
	"time"

	"repro/internal/machine/transport"
)

type words int64

func (w words) Words() int64 { return int64(w) }

func open2(t *testing.T, cfg Config) (*Net, transport.Endpoint, transport.Endpoint) {
	t.Helper()
	n, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	e0, err := n.Open(context.Background(), 0)
	if err != nil {
		t.Fatal(err)
	}
	e1, err := n.Open(context.Background(), 1)
	if err != nil {
		t.Fatal(err)
	}
	return n, e0, e1
}

func TestClockStampsAndRecvSync(t *testing.T) {
	_, e0, e1 := open2(t, Config{P: 2})
	e0.Elapse(50)
	if err := e0.Send(1, "x", words(3)); err != nil {
		t.Fatal(err)
	}
	got, err := e1.Recv(0, "x")
	if err != nil {
		t.Fatal(err)
	}
	if got.(words) != 3 {
		t.Errorf("payload = %v", got)
	}
	// The receiver's clock jumps to the sender's stamp, not beyond.
	if e1.Now() != 50 {
		t.Errorf("receiver clock = %v, want 50", e1.Now())
	}
	// A receiver already past the stamp keeps its own clock.
	e0.Elapse(10) // clock 60
	if err := e0.Send(1, "y", words(1)); err != nil {
		t.Fatal(err)
	}
	e1.Elapse(100) // clock 150
	if _, err := e1.Recv(0, "y"); err != nil {
		t.Fatal(err)
	}
	if e1.Now() != 150 {
		t.Errorf("receiver clock = %v, want 150", e1.Now())
	}
}

func TestDeadlineDropsLateMessage(t *testing.T) {
	_, e0, e1 := open2(t, Config{P: 2, RecvTimeout: 50 * time.Millisecond})
	e0.Elapse(700) // stamp after the deadline
	if err := e0.Send(1, "d", words(2)); err != nil {
		t.Fatal(err)
	}
	_, ok, err := e1.RecvDeadline(0, "d", 500)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("late message should be rejected")
	}
	if e1.Now() != 500 {
		t.Errorf("clock should advance to the deadline, got %v", e1.Now())
	}
	// The late message was consumed, not left queued.
	if _, err := e1.Recv(0, "d"); err == nil {
		t.Fatal("expected timeout: the late message must have been dropped")
	}
	_ = e0
}

func TestFullChannelIsProtocolError(t *testing.T) {
	_, e0, _ := open2(t, Config{P: 2, ChannelCap: 1})
	if err := e0.Send(1, "x", words(1)); err != nil {
		t.Fatal(err)
	}
	if err := e0.Send(1, "x", words(1)); err == nil {
		t.Fatal("second send into cap-1 channel should fail, not block")
	}
}

func TestBarrierMergesAndSorts(t *testing.T) {
	n, e0, e1 := open2(t, Config{P: 2})
	type out struct {
		ev  []transport.FaultEvent
		err error
	}
	ch := make(chan out, 2)
	go func() {
		ev, err := e1.Barrier("x", []transport.FaultEvent{{Proc: 1, Phase: "x"}})
		ch <- out{ev, err}
	}()
	ev, err := e0.Barrier("x", []transport.FaultEvent{{Proc: 0, Phase: "x"}})
	if err != nil {
		t.Fatal(err)
	}
	o := <-ch
	if o.err != nil {
		t.Fatal(o.err)
	}
	for _, got := range [][]transport.FaultEvent{ev, o.ev} {
		if len(got) != 2 || got[0].Proc != 0 || got[1].Proc != 1 {
			t.Errorf("merged events = %v, want sorted [0 1]", got)
		}
	}
	_ = n
}

func TestDoneReleasesBarrier(t *testing.T) {
	_, e0, e1 := open2(t, Config{P: 2})
	done := make(chan error, 1)
	go func() {
		_, err := e0.Barrier("late", nil)
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	e1.Done() // rank 1 exits without reaching the barrier
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("barrier not released by Done")
	}
}

func TestContextCancelAbortsRecv(t *testing.T) {
	n, err := New(Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e1, err := n.Open(ctx, 1)
	if err != nil {
		t.Fatal(err)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := e1.Recv(0, "never")
		errc <- err
	}()
	cancel()
	select {
	case err := <-errc:
		if err == nil {
			t.Fatal("expected cancellation error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("recv not aborted by cancel")
	}
}

func TestLazyChannels(t *testing.T) {
	n, e0, _ := open2(t, Config{P: 8})
	if n.AllocatedChannels() != 0 {
		t.Fatalf("allocated %d channels before any send", n.AllocatedChannels())
	}
	if err := e0.Send(1, "x", words(1)); err != nil {
		t.Fatal(err)
	}
	if n.AllocatedChannels() != 1 {
		t.Fatalf("allocated %d channels after one pair used", n.AllocatedChannels())
	}
}
