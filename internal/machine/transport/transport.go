// Package transport defines the seam between the paper's algorithms and the
// machine realization they run on. The algorithm layers (internal/collective,
// internal/parallel, internal/ftparallel) are written against the concrete
// machine.Proc API; machine.Proc in turn drives an Endpoint obtained from a
// Transport, so the same algorithm code runs unmodified on any backend that
// implements these two interfaces.
//
// Two backends live in sibling packages:
//
//   - internal/machine/simnet — the deterministic virtual-clock simulator
//     (the seed implementation, extracted): time is a per-endpoint float64
//     advanced by Elapse/ElapseWork, and message timing is modeled, not real.
//   - internal/machine/wallnet — an in-process wall-clock backend: time is
//     real time.Since(start), deadlines are real deadlines, and
//     context.Context cancellation aborts blocked Recv/Barrier calls.
//
// Cost accounting (F/BW/L) and fault injection are NOT part of a backend:
// they are decorator transports (internal/machine/costacct,
// internal/machine/faultinject) that wrap any Transport, so counts are
// backend-independent by construction.
package transport

import "context"

// Payload is anything a message can carry; Words is its size in the model's
// word units and is what the BW accounting charges. It is satisfied by
// machine.Ints and machine.Meta.
type Payload interface {
	Words() int64
}

// FaultEvent reports an injected fail-stop fault to the surviving
// processors: rank Proc died (and was replaced in place) at the barrier
// named Phase.
type FaultEvent struct {
	Proc  int
	Phase string
}

// Endpoint is one processor's handle on the transport. All methods must be
// called from that processor's own goroutine only.
//
// Time is abstract: Now/Elapse/ElapseWork operate in "model units" whose
// meaning the backend chooses (virtual cost units on simnet, real seconds —
// or dilated units — on wallnet). Decorators charge costs by calling Elapse
// (communication) and ElapseWork (computation); backends that track real
// time may ignore the units or sleep them off.
type Endpoint interface {
	// Rank returns this endpoint's processor rank in [0, P).
	Rank() int
	// P returns the transport's processor count.
	P() int

	// Send transmits payload to rank `to` under a protocol tag.
	Send(to int, tag string, payload Payload) error
	// Recv blocks for the next message from rank `from`, asserting the tag.
	Recv(from int, tag string) (Payload, error)
	// RecvDeadline is Recv with a deadline in model-time units (absolute,
	// compared against Now). ok=false means the deadline passed first; the
	// backend advances Now to at least the deadline before returning.
	RecvDeadline(from int, tag string, deadline float64) (Payload, bool, error)

	// Barrier blocks until every still-active endpoint has arrived, then
	// returns the merged, Proc-sorted list of the FaultEvents every
	// participant contributed via local (the perfect failure detector).
	// The phase name identifies the barrier for fault injection; the
	// rendezvous itself is global.
	Barrier(phase string, local []FaultEvent) ([]FaultEvent, error)

	// Now returns this endpoint's current time in model units.
	Now() float64
	// Elapse advances this endpoint's time by units (a communication or
	// bookkeeping charge).
	Elapse(units float64)
	// ElapseWork advances this endpoint's time by units of computation.
	// It is distinct from Elapse so delay-fault decorators can slow
	// computation without touching communication charges.
	ElapseWork(units float64)

	// Done retires the endpoint: it stops participating in barriers (a
	// barrier already in progress is released as if this endpoint had
	// arrived). Must be called exactly once, after the program finishes.
	Done()
}

// Transport creates endpoints for a P-processor machine run. Implementations
// are single-use: open each rank once, run, then Close.
type Transport interface {
	// P returns the processor count.
	P() int
	// Open creates rank's endpoint. The context governs the endpoint's
	// blocking calls on backends that support cancellation.
	Open(ctx context.Context, rank int) (Endpoint, error)
	// Close releases transport resources after the run.
	Close() error
}
