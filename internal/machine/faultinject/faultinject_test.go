package faultinject

import (
	"context"
	"sync"
	"testing"

	"repro/internal/machine/simnet"
	"repro/internal/machine/transport"
)

func open(t *testing.T, p int, plan []Fault, speed []float64, onFault func(int)) (*Transport, []transport.Endpoint) {
	t.Helper()
	inner, err := simnet.New(simnet.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := New(inner, plan, speed, onFault)
	if err != nil {
		t.Fatal(err)
	}
	eps := make([]transport.Endpoint, p)
	for i := range eps {
		if eps[i], err = tr.Open(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	return tr, eps
}

func TestValidatesPlan(t *testing.T) {
	inner, err := simnet.New(simnet.Config{P: 2})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(inner, []Fault{{Proc: 5, Phase: "x"}}, nil, nil); err == nil {
		t.Fatal("fault for nonexistent rank should fail")
	}
}

// barrierAll drives every endpoint through one barrier of the given phase
// and returns rank 0's merged event list.
func barrierAll(t *testing.T, eps []transport.Endpoint, phase string) []transport.FaultEvent {
	t.Helper()
	var wg sync.WaitGroup
	out := make([][]transport.FaultEvent, len(eps))
	errs := make([]error, len(eps))
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep transport.Endpoint) {
			defer wg.Done()
			out[i], errs[i] = ep.Barrier(phase, nil)
		}(i, ep)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return out[0]
}

func TestInjectsAtScheduledHit(t *testing.T) {
	var killed []int
	tr, eps := open(t, 3, []Fault{{Proc: 1, Phase: "mul", Hit: 1}}, nil, func(rank int) {
		killed = append(killed, rank)
	})
	if ev := barrierAll(t, eps, "mul"); len(ev) != 0 {
		t.Fatalf("first crossing injected %v", ev)
	}
	// A different phase must not advance the "mul" hit counter.
	if ev := barrierAll(t, eps, "other"); len(ev) != 0 {
		t.Fatalf("other phase injected %v", ev)
	}
	ev := barrierAll(t, eps, "mul")
	if len(ev) != 1 || ev[0].Proc != 1 || ev[0].Phase != "mul" {
		t.Fatalf("second crossing events = %v", ev)
	}
	if len(killed) != 1 || killed[0] != 1 {
		t.Fatalf("onFault calls = %v", killed)
	}
	if got := tr.Events(); len(got) != 1 || got[0].Proc != 1 {
		t.Fatalf("transport event log = %v", got)
	}
}

func TestAllRanksSeeTheFault(t *testing.T) {
	_, eps := open(t, 4, []Fault{{Proc: 2, Phase: "x"}}, nil, nil)
	var wg sync.WaitGroup
	out := make([][]transport.FaultEvent, len(eps))
	for i, ep := range eps {
		wg.Add(1)
		go func(i int, ep transport.Endpoint) {
			defer wg.Done()
			out[i], _ = ep.Barrier("x", nil)
		}(i, ep)
	}
	wg.Wait()
	for i, ev := range out {
		if len(ev) != 1 || ev[0].Proc != 2 {
			t.Errorf("rank %d saw %v", i, ev)
		}
	}
}

func TestSpeedFactorScalesWorkOnly(t *testing.T) {
	_, eps := open(t, 2, nil, []float64{1, 10}, nil)
	eps[0].ElapseWork(100)
	eps[1].ElapseWork(100)
	eps[1].Elapse(5) // communication charge: never scaled
	if now := eps[0].Now(); now != 100 {
		t.Errorf("rank 0 clock = %v", now)
	}
	if now := eps[1].Now(); now != 1005 {
		t.Errorf("rank 1 clock = %v, want 1005 (10×work + unscaled comm)", now)
	}
}
