// Package faultinject injects the paper's fault categories as a decorator
// over any transport backend:
//
//   - hard (fail-stop) faults: a rank scheduled to fail at barrier phase X
//     (for the Hit-th time it reaches X) loses its local state there — the
//     decorator invokes the OnFault callback (the machine wipes the rank's
//     store) and announces a FaultEvent to every barrier participant,
//     modeling fail-stop death with immediate in-place replacement under a
//     perfect failure detector;
//   - delay faults (stragglers): per-rank speed factors stretch ElapseWork,
//     so a slow rank's computation takes longer on whichever clock the
//     backend keeps — virtual units on simnet, real (dilated) time on
//     wallnet — without touching communication charges.
//
// Hit counting is per-endpoint and phase-keyed: each endpoint owns a small
// map[phase]count, so counting a barrier crossing is an allocation-free map
// lookup instead of the seed's global fmt.Sprintf("%s#%d")-keyed map (see
// BenchmarkHitKey* for the difference).
package faultinject

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/machine/transport"
)

// Fault schedules a hard fault: rank Proc dies when it reaches the barrier
// named Phase for the Hit-th time (0 = first).
type Fault struct {
	Proc  int
	Phase string
	Hit   int
}

// Transport decorates inner with fault injection.
type Transport struct {
	inner   transport.Transport
	faults  map[string]map[int]map[int]bool // phase -> hit -> rank set
	speed   []float64
	onFault func(rank int)

	mu     sync.Mutex
	events []transport.FaultEvent
}

// New wraps inner with the given fault plan. speed optionally slows rank i's
// computation by speed[i] (1.0 when the slice is short or the entry is
// zero); onFault, if non-nil, is called on the dying rank's own goroutine at
// the moment of failure, before the fault is announced — the machine layer
// uses it to wipe the rank's local store.
func New(inner transport.Transport, plan []Fault, speed []float64, onFault func(rank int)) (*Transport, error) {
	t := &Transport{
		inner:   inner,
		faults:  map[string]map[int]map[int]bool{},
		speed:   speed,
		onFault: onFault,
	}
	for _, f := range plan {
		if f.Proc < 0 || f.Proc >= inner.P() {
			return nil, fmt.Errorf("faultinject: fault for nonexistent processor %d", f.Proc)
		}
		if t.faults[f.Phase] == nil {
			t.faults[f.Phase] = map[int]map[int]bool{}
		}
		if t.faults[f.Phase][f.Hit] == nil {
			t.faults[f.Phase][f.Hit] = map[int]bool{}
		}
		t.faults[f.Phase][f.Hit][f.Proc] = true
	}
	return t, nil
}

// Events returns every fault injected so far, in injection order.
func (t *Transport) Events() []transport.FaultEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]transport.FaultEvent, len(t.events))
	copy(out, t.events)
	return out
}

// P implements transport.Transport.
func (t *Transport) P() int { return t.inner.P() }

// Open implements transport.Transport.
func (t *Transport) Open(ctx context.Context, rank int) (transport.Endpoint, error) {
	ep, err := t.inner.Open(ctx, rank)
	if err != nil {
		return nil, err
	}
	sp := 1.0
	if rank < len(t.speed) && t.speed[rank] > 0 {
		sp = t.speed[rank]
	}
	return &Endpoint{inner: ep, t: t, speed: sp, hits: map[string]int{}}, nil
}

// Close implements transport.Transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Endpoint injects this rank's scheduled faults and delay factor.
type Endpoint struct {
	inner transport.Endpoint
	t     *Transport
	speed float64
	// hits counts this rank's crossings per phase name. Per-endpoint and
	// phase-keyed, so the lookup allocates nothing (the seed simulator
	// built a fmt.Sprintf("%s#%d", phase, rank) key into one shared map
	// on every crossing).
	hits map[string]int
}

// Rank implements transport.Endpoint.
func (ep *Endpoint) Rank() int { return ep.inner.Rank() }

// P implements transport.Endpoint.
func (ep *Endpoint) P() int { return ep.inner.P() }

// Send implements transport.Endpoint.
func (ep *Endpoint) Send(to int, tag string, payload transport.Payload) error {
	return ep.inner.Send(to, tag, payload)
}

// Recv implements transport.Endpoint.
func (ep *Endpoint) Recv(from int, tag string) (transport.Payload, error) {
	return ep.inner.Recv(from, tag)
}

// RecvDeadline implements transport.Endpoint.
func (ep *Endpoint) RecvDeadline(from int, tag string, deadline float64) (transport.Payload, bool, error) {
	return ep.inner.RecvDeadline(from, tag, deadline)
}

// Barrier checks whether this rank is scheduled to die at this crossing of
// phase; if so it fires OnFault (state loss), records the event, and adds it
// to the announcements every participant will receive from the rendezvous.
func (ep *Endpoint) Barrier(phase string, local []transport.FaultEvent) ([]transport.FaultEvent, error) {
	hit := ep.hits[phase]
	ep.hits[phase] = hit + 1
	if byHit, ok := ep.t.faults[phase]; ok {
		if ranks, ok := byHit[hit]; ok && ranks[ep.inner.Rank()] {
			ev := transport.FaultEvent{Proc: ep.inner.Rank(), Phase: phase}
			if ep.t.onFault != nil {
				ep.t.onFault(ev.Proc)
			}
			ep.t.mu.Lock()
			ep.t.events = append(ep.t.events, ev)
			ep.t.mu.Unlock()
			local = append(local, ev)
		}
	}
	return ep.inner.Barrier(phase, local)
}

// Now implements transport.Endpoint.
func (ep *Endpoint) Now() float64 { return ep.inner.Now() }

// Elapse implements transport.Endpoint. Communication charges pass through
// unscaled: delay faults slow computation, not the network.
func (ep *Endpoint) Elapse(units float64) { ep.inner.Elapse(units) }

// ElapseWork stretches computation time by this rank's speed factor.
func (ep *Endpoint) ElapseWork(units float64) { ep.inner.ElapseWork(units * ep.speed) }

// Done implements transport.Endpoint.
func (ep *Endpoint) Done() { ep.inner.Done() }
