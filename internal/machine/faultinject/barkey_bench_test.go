package faultinject

import (
	"fmt"
	"testing"
)

// The seed simulator counted barrier crossings in one machine-wide map
// keyed by fmt.Sprintf("%s#%d", phase, rank) — an allocation (several,
// via Sprintf) on every barrier of every rank. The decorator counts in a
// per-endpoint map keyed by the phase string alone, which allocates
// nothing after the first crossing of each phase. These benchmarks pin the
// difference; run with -benchmem:
//
//	BenchmarkHitKeySprintf     2 allocs/op  (the seed scheme)
//	BenchmarkHitKeyStruct       0 allocs/op  (shared map, composite key)
//	BenchmarkHitKeyPerRank      0 allocs/op  (what faultinject ships)

const benchRanks = 16

var benchPhases = [...]string{"eval", "mul", "interp"}

func BenchmarkHitKeySprintf(b *testing.B) {
	hits := make(map[string]int, benchRanks*len(benchPhases))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		phase := benchPhases[i%len(benchPhases)]
		key := fmt.Sprintf("%s#%d", phase, i%benchRanks)
		hits[key]++
	}
}

func BenchmarkHitKeyStruct(b *testing.B) {
	type hitKey struct {
		phase string
		rank  int
	}
	hits := make(map[hitKey]int, benchRanks*len(benchPhases))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		phase := benchPhases[i%len(benchPhases)]
		hits[hitKey{phase, i % benchRanks}]++
	}
}

func BenchmarkHitKeyPerRank(b *testing.B) {
	perRank := make([]map[string]int, benchRanks)
	for i := range perRank {
		perRank[i] = make(map[string]int, len(benchPhases))
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		phase := benchPhases[i%len(benchPhases)]
		perRank[i%benchRanks][phase]++
	}
}
