package machine

import (
	"context"
	"fmt"
	"testing"
	"time"

	"repro/internal/bigint"
)

// The wall-clock backend must run the same programs as the simulator with
// identical F/BW/L accounting; only the meaning of Clock/Time changes.

func TestWallBackendSendRecvCounts(t *testing.T) {
	m, err := New(Config{P: 2, Backend: BackendWall}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := Ints{bigint.FromInt64(42)}
	rep, err := m.Run(func(p *Proc) error {
		if p.ID() == 0 {
			return p.Send(1, "data", payload)
		}
		got, err := p.RecvInts(0, "data")
		if err != nil {
			return err
		}
		if len(got) != 1 || !got[0].Equal(bigint.FromInt64(42)) {
			return fmt.Errorf("wrong payload: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerProc[0].Messages != 1 || rep.PerProc[0].SentWords != 1 || rep.PerProc[1].RecvWords != 1 {
		t.Errorf("stats: %+v", rep.PerProc)
	}
}

func TestWallBackendFaultInjection(t *testing.T) {
	plan := []Fault{{Proc: 1, Phase: "mul"}}
	m, err := New(Config{P: 3, Backend: BackendWall}, plan)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(func(p *Proc) error {
		if err := p.Store("data", Ints{bigint.FromInt64(int64(p.ID()))}); err != nil {
			return err
		}
		events, err := p.Barrier("mul")
		if err != nil {
			return err
		}
		if len(events) != 1 || events[0].Proc != 1 {
			return fmt.Errorf("proc %d saw events %v", p.ID(), events)
		}
		if p.ID() == 1 {
			if _, err := p.LoadInts("data"); err == nil {
				return fmt.Errorf("fault did not wipe store")
			}
		} else if _, err := p.LoadInts("data"); err != nil {
			return fmt.Errorf("survivor lost data: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Faults) != 1 || rep.PerProc[1].Faults != 1 {
		t.Errorf("report faults = %v, per-proc = %+v", rep.Faults, rep.PerProc[1])
	}
}

func TestWallBackendContextCancel(t *testing.T) {
	m, err := New(Config{P: 2, Backend: BackendWall}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err = m.RunContext(ctx, func(p *Proc) error {
		if p.ID() == 0 {
			return nil
		}
		_, err := p.Recv(0, "never") // nothing will arrive; cancel unblocks
		return err
	})
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	if time.Since(start) > 10*time.Second {
		t.Fatal("cancel did not abort the blocked recv promptly")
	}
}

func TestWallBackendDilationClocks(t *testing.T) {
	m, err := New(Config{P: 1, Backend: BackendWall, Gamma: 1, WallTimeDilation: time.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := m.Run(func(p *Proc) error {
		p.Work(50) // 50 model units = 50ms of real time
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerProc[0].Flops != 50 {
		t.Errorf("flops = %d", rep.PerProc[0].Flops)
	}
	if rep.Time < 50 {
		t.Errorf("dilated Time = %v model units, want >= 50", rep.Time)
	}
}

func TestUnknownBackendRejected(t *testing.T) {
	if _, err := New(Config{P: 1, Backend: Backend("quantum")}, nil); err == nil {
		t.Fatal("unknown backend should fail")
	}
}

// TestBackendsAgreeOnBarrierProtocol runs a small all-phases program on
// both backends and checks the accounting matches exactly.
func TestBackendsAgreeOnCounts(t *testing.T) {
	program := func(p *Proc) error {
		p.Work(100 * int64(p.ID()+1))
		if p.ID() == 0 {
			if err := p.Send(1, "x", Ints{bigint.FromInt64(7)}); err != nil {
				return err
			}
		} else if _, err := p.RecvInts(0, "x"); err != nil {
			return err
		}
		if _, err := p.Barrier("sync"); err != nil {
			return err
		}
		p.Work(10)
		return nil
	}
	var reports []*Report
	for _, backend := range []Backend{BackendSim, BackendWall} {
		m, err := New(Config{P: 2, Backend: backend}, nil)
		if err != nil {
			t.Fatal(err)
		}
		rep, err := m.Run(program)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		reports = append(reports, rep)
	}
	sim, wall := reports[0], reports[1]
	if sim.F != wall.F || sim.BW != wall.BW || sim.L != wall.L ||
		sim.TotalF != wall.TotalF || sim.TotalBW != wall.TotalBW || sim.TotalL != wall.TotalL {
		t.Errorf("counts diverge: sim F=%d BW=%d L=%d, wall F=%d BW=%d L=%d",
			sim.F, sim.BW, sim.L, wall.F, wall.BW, wall.L)
	}
}
