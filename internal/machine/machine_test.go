package machine

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/bigint"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{P: 0}, nil); err == nil {
		t.Error("P=0 should fail")
	}
	if _, err := New(Config{P: 2}, []Fault{{Proc: 5, Phase: "x"}}); err == nil {
		t.Error("fault for nonexistent proc should fail")
	}
}

func TestIntsWords(t *testing.T) {
	v := Ints{bigint.Zero(), bigint.One(), bigint.One().Shl(200)}
	// zero counts 1, one counts 1, 201-bit counts 4 limbs.
	if got := v.Words(); got != 6 {
		t.Errorf("Words() = %d, want 6", got)
	}
}

func TestSendRecv(t *testing.T) {
	m, err := New(Config{P: 2}, nil)
	if err != nil {
		t.Fatal(err)
	}
	payload := Ints{bigint.FromInt64(42)}
	rep, err := m.Run(func(p *Proc) error {
		if p.ID() == 0 {
			return p.Send(1, "data", payload)
		}
		got, err := p.RecvInts(0, "data")
		if err != nil {
			return err
		}
		if len(got) != 1 || !got[0].Equal(bigint.FromInt64(42)) {
			return fmt.Errorf("wrong payload: %v", got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerProc[0].Messages != 1 || rep.PerProc[0].SentWords != 1 {
		t.Errorf("sender stats: %+v", rep.PerProc[0])
	}
	if rep.PerProc[1].RecvWords != 1 {
		t.Errorf("receiver stats: %+v", rep.PerProc[1])
	}
	if rep.L != 1 || rep.BW != 1 {
		t.Errorf("report: L=%d BW=%d", rep.L, rep.BW)
	}
}

func TestTagMismatch(t *testing.T) {
	m, _ := New(Config{P: 2}, nil)
	_, err := m.Run(func(p *Proc) error {
		if p.ID() == 0 {
			return p.Send(1, "alpha", Meta{})
		}
		_, err := p.Recv(0, "beta")
		return err
	})
	if err == nil {
		t.Fatal("expected tag mismatch error")
	}
}

func TestRecvTimeout(t *testing.T) {
	m, _ := New(Config{P: 2, RecvTimeout: 50 * time.Millisecond}, nil)
	_, err := m.Run(func(p *Proc) error {
		if p.ID() == 1 {
			_, err := p.Recv(0, "never")
			return err
		}
		return nil
	})
	if err == nil {
		t.Fatal("expected timeout error")
	}
}

func TestClockCriticalPath(t *testing.T) {
	// A chain 0 -> 1 -> 2: proc 2's clock must include both transfers and
	// all work, regardless of real scheduling.
	cfg := Config{P: 3, Alpha: 100, Beta: 1, Gamma: 1}
	m, _ := New(cfg, nil)
	rep, err := m.Run(func(p *Proc) error {
		switch p.ID() {
		case 0:
			p.Work(50)
			return p.Send(1, "x", Meta{})
		case 1:
			if _, err := p.Recv(0, "x"); err != nil {
				return err
			}
			p.Work(50)
			return p.Send(2, "x", Meta{})
		default:
			_, err := p.Recv(1, "x")
			return err
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	// clock(proc2) = 50 + (100+1) + 50 + (100+1) = 302.
	if got := rep.PerProc[2].Clock; got != 302 {
		t.Errorf("critical path clock = %v, want 302", got)
	}
	if rep.Time != 302 {
		t.Errorf("report time = %v", rep.Time)
	}
}

func TestWorkAccounting(t *testing.T) {
	m, _ := New(Config{P: 1, Gamma: 2}, nil)
	rep, _ := m.Run(func(p *Proc) error {
		p.Work(10)
		return nil
	})
	if rep.F != 10 {
		t.Errorf("F = %d", rep.F)
	}
	if rep.PerProc[0].Clock != 20 {
		t.Errorf("clock = %v, want 20 (γ=2)", rep.PerProc[0].Clock)
	}
}

func TestStoreLoadFree(t *testing.T) {
	m, _ := New(Config{P: 1}, nil)
	_, err := m.Run(func(p *Proc) error {
		v := Ints{bigint.One().Shl(128)} // 3 limbs
		if err := p.Store("a", v); err != nil {
			return err
		}
		if p.MemoryWords() != 3 {
			return fmt.Errorf("mem = %d, want 3", p.MemoryWords())
		}
		got, err := p.LoadInts("a")
		if err != nil {
			return err
		}
		if !got[0].Equal(v[0]) {
			return fmt.Errorf("loaded wrong value")
		}
		p.Free("a")
		if p.MemoryWords() != 0 {
			return fmt.Errorf("free did not release memory")
		}
		if _, err := p.LoadInts("a"); err == nil {
			return fmt.Errorf("expected miss after Free")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMemoryCapacity(t *testing.T) {
	m, _ := New(Config{P: 1, MemoryWords: 4}, nil)
	_, err := m.Run(func(p *Proc) error {
		big := Ints{bigint.One().Shl(64 * 8)} // 9 limbs > 4
		if err := p.Store("big", big); err == nil {
			return fmt.Errorf("expected out-of-memory error")
		}
		small := Ints{bigint.One()}
		if err := p.Store("s", small); err != nil {
			return err
		}
		// Overwriting a key releases the old allocation.
		if err := p.Store("s", Ints{bigint.One().Shl(64 * 2)}); err != nil {
			return err
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestPeakMemory(t *testing.T) {
	m, _ := New(Config{P: 1}, nil)
	rep, _ := m.Run(func(p *Proc) error {
		_ = p.Store("a", Ints{bigint.One().Shl(64 * 4)}) // 5 words
		p.Free("a")
		_ = p.Store("b", Ints{bigint.One()}) // 1 word
		return nil
	})
	if rep.PerProc[0].PeakWords != 5 {
		t.Errorf("peak = %d, want 5", rep.PerProc[0].PeakWords)
	}
}

func TestBarrierSynchronizesClocks(t *testing.T) {
	m, _ := New(Config{P: 3, Alpha: 1, Beta: 1, Gamma: 1}, nil)
	rep, err := m.Run(func(p *Proc) error {
		p.Work(int64(p.ID()) * 100) // staggered work
		if _, err := p.Barrier("sync"); err != nil {
			return err
		}
		if p.Clock() < 200 {
			return fmt.Errorf("proc %d clock %v below slowest worker", p.ID(), p.Clock())
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Time < 200 {
		t.Errorf("time %v", rep.Time)
	}
}

func TestFaultInjection(t *testing.T) {
	plan := []Fault{{Proc: 1, Phase: "mul"}}
	m, _ := New(Config{P: 3}, plan)
	var observed int32
	_, err := m.Run(func(p *Proc) error {
		if err := p.Store("data", Ints{bigint.FromInt64(int64(p.ID()))}); err != nil {
			return err
		}
		events, err := p.Barrier("mul")
		if err != nil {
			return err
		}
		if len(events) != 1 || events[0].Proc != 1 {
			return fmt.Errorf("proc %d saw events %v", p.ID(), events)
		}
		atomic.AddInt32(&observed, 1)
		if p.ID() == 1 {
			// The replacement's store is empty.
			if _, err := p.LoadInts("data"); err == nil {
				return fmt.Errorf("fault did not wipe store")
			}
			if p.FaultCount() != 1 {
				return fmt.Errorf("fault count %d", p.FaultCount())
			}
		} else if _, err := p.LoadInts("data"); err != nil {
			return fmt.Errorf("survivor lost data: %v", err)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if observed != 3 {
		t.Errorf("only %d procs observed the fault", observed)
	}
}

func TestFaultHitCounting(t *testing.T) {
	// Proc 0 dies the second time it reaches barrier "step".
	plan := []Fault{{Proc: 0, Phase: "step", Hit: 1}}
	m, _ := New(Config{P: 2}, plan)
	_, err := m.Run(func(p *Proc) error {
		ev1, err := p.Barrier("step")
		if err != nil {
			return err
		}
		if len(ev1) != 0 {
			return fmt.Errorf("unexpected fault at first hit: %v", ev1)
		}
		ev2, err := p.Barrier("step")
		if err != nil {
			return err
		}
		if len(ev2) != 1 || ev2[0].Proc != 0 {
			return fmt.Errorf("expected fault at second hit, got %v", ev2)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMultipleFaultsSameBarrier(t *testing.T) {
	plan := []Fault{{Proc: 0, Phase: "x"}, {Proc: 2, Phase: "x"}}
	m, _ := New(Config{P: 4}, plan)
	_, err := m.Run(func(p *Proc) error {
		events, err := p.Barrier("x")
		if err != nil {
			return err
		}
		if len(events) != 2 || events[0].Proc != 0 || events[1].Proc != 2 {
			return fmt.Errorf("events %v", events)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestBarrierAfterProcExit(t *testing.T) {
	// One proc returns early; the rest must still pass barriers.
	m, _ := New(Config{P: 3}, nil)
	_, err := m.Run(func(p *Proc) error {
		if p.ID() == 2 {
			return nil // leaves immediately
		}
		_, err := p.Barrier("late")
		return err
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReportAggregation(t *testing.T) {
	m, _ := New(Config{P: 2}, nil)
	rep, _ := m.Run(func(p *Proc) error {
		p.Work(int64(10 * (p.ID() + 1)))
		if p.ID() == 0 {
			return p.Send(1, "t", Ints{bigint.One()})
		}
		_, err := p.Recv(0, "t")
		return err
	})
	if rep.TotalF != 30 || rep.F != 20 {
		t.Errorf("F: total %d max %d", rep.TotalF, rep.F)
	}
	if rep.TotalL != 1 {
		t.Errorf("TotalL = %d", rep.TotalL)
	}
}

func TestProgramErrorPropagates(t *testing.T) {
	m, _ := New(Config{P: 2}, nil)
	_, err := m.Run(func(p *Proc) error {
		if p.ID() == 1 {
			return fmt.Errorf("boom")
		}
		return nil
	})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v", err)
	}
}

func TestSendBounds(t *testing.T) {
	m, _ := New(Config{P: 1}, nil)
	_, err := m.Run(func(p *Proc) error {
		if err := p.Send(7, "x", Meta{}); err == nil {
			return fmt.Errorf("expected out-of-range error")
		}
		if _, err := p.Recv(-1, "x"); err == nil {
			return fmt.Errorf("expected out-of-range error")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestMarks(t *testing.T) {
	m, _ := New(Config{P: 2, Gamma: 1}, nil)
	rep, err := m.Run(func(p *Proc) error {
		p.Work(10)
		p.Mark("after-work")
		if p.ID() == 0 {
			if err := p.Send(1, "x", Meta{}); err != nil {
				return err
			}
		} else if _, err := p.Recv(0, "x"); err != nil {
			return err
		}
		p.Mark("after-comm")
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	marks := rep.Marks[0]
	if len(marks) != 2 || marks[0].Label != "after-work" || marks[1].Label != "after-comm" {
		t.Fatalf("marks = %+v", marks)
	}
	if marks[0].Flops != 10 {
		t.Errorf("first mark flops = %d", marks[0].Flops)
	}
	if marks[1].Messages != 1 {
		t.Errorf("sender second mark messages = %d", marks[1].Messages)
	}
}

func TestSpeedFactors(t *testing.T) {
	m, _ := New(Config{P: 2, Gamma: 1, SpeedFactors: []float64{1, 10}}, nil)
	rep, err := m.Run(func(p *Proc) error {
		p.Work(100)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.PerProc[0].Clock != 100 || rep.PerProc[1].Clock != 1000 {
		t.Errorf("clocks = %v, %v; want 100, 1000", rep.PerProc[0].Clock, rep.PerProc[1].Clock)
	}
	// F counts are unaffected by the slowdown — only virtual time is.
	if rep.PerProc[1].Flops != 100 {
		t.Errorf("slow proc flops = %d", rep.PerProc[1].Flops)
	}
}

func TestRecvDeadline(t *testing.T) {
	m, _ := New(Config{P: 3, Alpha: 10, Beta: 1, Gamma: 1}, nil)
	_, err := m.Run(func(p *Proc) error {
		switch p.ID() {
		case 0:
			// Fast sender: arrives around t=11.
			return p.Send(2, "d", Meta{})
		case 1:
			// Slow sender: works first, arrives around t=1011.
			p.Work(1000)
			return p.Send(2, "d", Meta{})
		default:
			// Accept only what arrives by t=500.
			got, ok, err := p.RecvDeadline(0, "d", 500)
			if err != nil {
				return err
			}
			if !ok || got == nil {
				return fmt.Errorf("fast sender should beat the deadline")
			}
			_, ok, err = p.RecvDeadline(1, "d", 500)
			if err != nil {
				return err
			}
			if ok {
				return fmt.Errorf("slow sender should miss the deadline")
			}
			if p.Clock() != 500 {
				return fmt.Errorf("clock should advance to the deadline, got %v", p.Clock())
			}
			return nil
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLazyChannelAllocation(t *testing.T) {
	// Channels must be created on first use of a (sender, receiver) pair,
	// not eagerly for all P² pairs: a ring protocol on a 64-processor
	// machine should materialize exactly the 64 pair channels it touches.
	m, err := New(Config{P: 64}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.allocatedChannels(); got != 0 {
		t.Fatalf("machine allocated %d channels before any send", got)
	}
	_, err = m.Run(func(p *Proc) error {
		next := (p.ID() + 1) % p.P()
		prev := (p.ID() + p.P() - 1) % p.P()
		if err := p.Send(next, "ring", Meta{Value: p.ID()}); err != nil {
			return err
		}
		got, err := p.Recv(prev, "ring")
		if err != nil {
			return err
		}
		if got.(Meta).Value != prev {
			return fmt.Errorf("proc %d: bad ring value %v", p.ID(), got)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := m.allocatedChannels(); got != 64 {
		t.Fatalf("ring on P=64 allocated %d channels, want 64 (one per used pair)", got)
	}
}
