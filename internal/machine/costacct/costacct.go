// Package costacct charges the paper's three cost measures — F (arithmetic
// word-operations), BW (words communicated), L (messages) — as a decorator
// over any transport backend. Because the counters live here and not in a
// backend, F/BW/L figures are identical on the virtual-clock simulator and
// the wall-clock backend by construction: only the meaning of time differs.
//
// Charges follow the model C = α·L + β·BW + γ·F along each endpoint's own
// timeline: Send advances time by α + β·words, Work by γ·n, and Barrier by
// ⌈log₂P⌉·(α+β) (a tree barrier of one-word messages). Time itself is the
// wrapped endpoint's business — the simulator adds the units to its virtual
// clock, the wall backend sleeps them off or ignores them.
package costacct

import (
	"context"
	"fmt"
	"math"

	"repro/internal/machine/transport"
)

// Model holds the runtime coefficients: latency per message, time per word,
// time per arithmetic word-operation.
type Model struct {
	Alpha, Beta, Gamma float64
}

// Stats are one endpoint's accumulated costs. The struct is owned by the
// endpoint's goroutine; read it via Endpoint.Stats after the run.
type Stats struct {
	Flops     int64 // F: word-level arithmetic operations
	SentWords int64 // words sent
	RecvWords int64 // words received
	Messages  int64 // L: messages sent
	Barriers  int64 // barrier crossings (their messages are already in L/BW)
}

// Transport decorates inner with cost accounting.
type Transport struct {
	inner transport.Transport
	model Model
}

// New wraps inner so every endpoint it opens counts F/BW/L under model.
func New(inner transport.Transport, model Model) *Transport {
	return &Transport{inner: inner, model: model}
}

// P implements transport.Transport.
func (t *Transport) P() int { return t.inner.P() }

// Open implements transport.Transport.
func (t *Transport) Open(ctx context.Context, rank int) (transport.Endpoint, error) {
	return t.OpenCounted(ctx, rank)
}

// OpenCounted is Open returning the concrete type, so callers that need the
// counting extensions (Work, Stats) keep them without a type assertion.
func (t *Transport) OpenCounted(ctx context.Context, rank int) (*Endpoint, error) {
	ep, err := t.inner.Open(ctx, rank)
	if err != nil {
		return nil, fmt.Errorf("costacct: %w", err)
	}
	return &Endpoint{inner: ep, model: t.model}, nil
}

// Close implements transport.Transport.
func (t *Transport) Close() error { return t.inner.Close() }

// Endpoint counts costs and forwards to the wrapped endpoint. Like every
// endpoint, it must only be used from its rank's own goroutine.
type Endpoint struct {
	inner transport.Endpoint
	model Model
	st    Stats
}

// Stats returns a snapshot of the accumulated counters.
func (ep *Endpoint) Stats() Stats { return ep.st }

// Work charges n word-level arithmetic operations: F increases by n and the
// endpoint's time advances by γ·n (which a delay-fault decorator below may
// stretch). Work is the one counting method outside transport.Endpoint —
// computation is local, so only the accounting layer needs to see it.
func (ep *Endpoint) Work(n int64) {
	ep.st.Flops += n
	ep.inner.ElapseWork(ep.model.Gamma * float64(n))
}

// Rank implements transport.Endpoint.
func (ep *Endpoint) Rank() int { return ep.inner.Rank() }

// P implements transport.Endpoint.
func (ep *Endpoint) P() int { return ep.inner.P() }

// Send charges one message (L) and the payload's word count (BW), advances
// time by α + β·words, then forwards. The charge lands before the transfer
// so the message's arrival stamp includes it.
func (ep *Endpoint) Send(to int, tag string, payload transport.Payload) error {
	w := payload.Words()
	ep.st.Messages++
	ep.st.SentWords += w
	ep.inner.Elapse(ep.model.Alpha + ep.model.Beta*float64(w))
	return ep.inner.Send(to, tag, payload)
}

// Recv forwards and charges the received words on success.
func (ep *Endpoint) Recv(from int, tag string) (transport.Payload, error) {
	payload, err := ep.inner.Recv(from, tag)
	if err != nil {
		return nil, err
	}
	ep.st.RecvWords += payload.Words()
	return payload, nil
}

// RecvDeadline forwards and charges the received words only when a message
// was accepted in time.
func (ep *Endpoint) RecvDeadline(from int, tag string, deadline float64) (transport.Payload, bool, error) {
	payload, ok, err := ep.inner.RecvDeadline(from, tag, deadline)
	if err != nil || !ok {
		return nil, ok, err
	}
	ep.st.RecvWords += payload.Words()
	return payload, ok, nil
}

// Barrier charges ⌈log₂P⌉ one-word messages (a tree barrier) and the
// matching α+β time per message, then forwards to the rendezvous.
func (ep *Endpoint) Barrier(phase string, local []transport.FaultEvent) ([]transport.FaultEvent, error) {
	logP := int64(math.Ceil(math.Log2(float64(ep.inner.P()))))
	if logP < 1 {
		logP = 1
	}
	ep.st.Barriers++
	ep.st.Messages += logP
	ep.st.SentWords += logP
	ep.inner.Elapse(float64(logP) * (ep.model.Alpha + ep.model.Beta))
	return ep.inner.Barrier(phase, local)
}

// Now implements transport.Endpoint.
func (ep *Endpoint) Now() float64 { return ep.inner.Now() }

// Elapse implements transport.Endpoint.
func (ep *Endpoint) Elapse(units float64) { ep.inner.Elapse(units) }

// ElapseWork implements transport.Endpoint.
func (ep *Endpoint) ElapseWork(units float64) { ep.inner.ElapseWork(units) }

// Done implements transport.Endpoint.
func (ep *Endpoint) Done() { ep.inner.Done() }
