package costacct

import (
	"context"
	"testing"

	"repro/internal/machine/simnet"
)

type words int64

func (w words) Words() int64 { return int64(w) }

func open(t *testing.T, p int, model Model) (*Transport, []*Endpoint) {
	t.Helper()
	inner, err := simnet.New(simnet.Config{P: p})
	if err != nil {
		t.Fatal(err)
	}
	tr := New(inner, model)
	eps := make([]*Endpoint, p)
	for i := range eps {
		if eps[i], err = tr.OpenCounted(context.Background(), i); err != nil {
			t.Fatal(err)
		}
	}
	return tr, eps
}

func TestWorkChargesGammaAndCountsFlops(t *testing.T) {
	_, eps := open(t, 1, Model{Alpha: 1, Beta: 1, Gamma: 2})
	eps[0].Work(10)
	if st := eps[0].Stats(); st.Flops != 10 {
		t.Errorf("flops = %d", st.Flops)
	}
	if now := eps[0].Now(); now != 20 {
		t.Errorf("clock = %v, want 20 (γ=2)", now)
	}
}

func TestSendChargesAlphaBetaAndStampsAfterCharge(t *testing.T) {
	_, eps := open(t, 2, Model{Alpha: 100, Beta: 10, Gamma: 1})
	if err := eps[0].Send(1, "x", words(3)); err != nil {
		t.Fatal(err)
	}
	st := eps[0].Stats()
	if st.Messages != 1 || st.SentWords != 3 {
		t.Errorf("sender stats = %+v", st)
	}
	if now := eps[0].Now(); now != 130 {
		t.Errorf("sender clock = %v, want 130 (α+3β)", now)
	}
	if _, err := eps[1].Recv(0, "x"); err != nil {
		t.Fatal(err)
	}
	if st := eps[1].Stats(); st.RecvWords != 3 {
		t.Errorf("receiver stats = %+v", st)
	}
	// The arrival stamp includes the sender's transfer charge.
	if now := eps[1].Now(); now != 130 {
		t.Errorf("receiver clock = %v, want 130", now)
	}
}

func TestBarrierChargesTreeCost(t *testing.T) {
	_, eps := open(t, 4, Model{Alpha: 100, Beta: 10, Gamma: 1})
	done := make(chan error, 4)
	for _, ep := range eps {
		go func(ep *Endpoint) {
			_, err := ep.Barrier("x", nil)
			done <- err
		}(ep)
	}
	for range eps {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
	// log2(4) = 2 one-word messages, each costing α+β.
	st := eps[0].Stats()
	if st.Messages != 2 || st.SentWords != 2 {
		t.Errorf("barrier stats = %+v, want 2 messages / 2 words", st)
	}
	if now := eps[0].Now(); now != 220 {
		t.Errorf("clock = %v, want 220", now)
	}
}

func TestBarrierChargesAtLeastOneMessage(t *testing.T) {
	_, eps := open(t, 1, Model{Alpha: 1, Beta: 1, Gamma: 1})
	if _, err := eps[0].Barrier("x", nil); err != nil {
		t.Fatal(err)
	}
	if st := eps[0].Stats(); st.Messages != 1 {
		t.Errorf("P=1 barrier messages = %d, want 1 (⌈log₂P⌉ floored at 1)", st.Messages)
	}
}

func TestMissedDeadlineChargesNothing(t *testing.T) {
	_, eps := open(t, 2, Model{Alpha: 1, Beta: 1, Gamma: 1})
	eps[0].Elapse(700)
	if err := eps[0].Send(1, "d", words(5)); err != nil {
		t.Fatal(err)
	}
	before := eps[1].Stats()
	if _, ok, err := eps[1].RecvDeadline(0, "d", 500); err != nil || ok {
		t.Fatalf("ok=%v err=%v", ok, err)
	}
	if after := eps[1].Stats(); after.RecvWords != before.RecvWords {
		t.Errorf("missed deadline charged %d recv words", after.RecvWords-before.RecvWords)
	}
}
