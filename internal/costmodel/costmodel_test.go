package costmodel

import (
	"math"
	"testing"
)

func TestValidate(t *testing.T) {
	bad := []Params{
		{N: 0, P: 1, K: 2},
		{N: 1, P: 0, K: 2},
		{N: 1, P: 1, K: 1},
		{N: 1, P: 1, K: 2, M: -1},
		{N: 1, P: 1, K: 2, F: -1},
	}
	for i, p := range bad {
		if _, err := ParallelToomCook(p); err == nil {
			t.Errorf("case %d: expected validation error", i)
		}
	}
}

func TestExponent(t *testing.T) {
	// Karatsuba: log_2 3 ≈ 1.585; Toom-3: log_3 5 ≈ 1.465.
	if got := Exponent(2); math.Abs(got-1.585) > 0.01 {
		t.Errorf("Exponent(2) = %v", got)
	}
	if got := Exponent(3); math.Abs(got-1.465) > 0.01 {
		t.Errorf("Exponent(3) = %v", got)
	}
	// Exponent decreases with k (faster algorithms).
	if Exponent(4) >= Exponent(3) || Exponent(5) >= Exponent(4) {
		t.Error("exponent should decrease with k")
	}
}

func TestUnlimitedRegime(t *testing.T) {
	p := Params{N: 1 << 20, P: 9, K: 2}
	if !p.Unlimited() {
		t.Error("M=0 should be unlimited")
	}
	p.M = 1 << 19 // ≥ n/P^{log_3 2} ≈ n/4
	if !p.Unlimited() {
		t.Error("large M should be unlimited")
	}
	p.M = 1 << 10
	if p.Unlimited() {
		t.Error("tiny M should be limited")
	}
}

func TestParallelCostShapes(t *testing.T) {
	// F scales as n^ω/P.
	base := Params{N: 1 << 16, P: 9, K: 2}
	c1, err := ParallelToomCook(base)
	if err != nil {
		t.Fatal(err)
	}
	doubled := base
	doubled.N *= 2
	c2, _ := ParallelToomCook(doubled)
	wantRatio := math.Pow(2, Exponent(2))
	if r := c2.F / c1.F; math.Abs(r-wantRatio) > 0.01 {
		t.Errorf("F ratio on doubling n = %v, want %v", r, wantRatio)
	}
	// BW decreases with P (unlimited memory).
	moreP := base
	moreP.P = 27
	c3, _ := ParallelToomCook(moreP)
	if c3.BW >= c1.BW {
		t.Error("BW should decrease with P")
	}
	if c3.L <= c1.L {
		t.Error("L should grow (logarithmically) with P")
	}
}

func TestLimitedMemoryCosts(t *testing.T) {
	p := Params{N: 1 << 20, P: 9, K: 2, M: 1 << 10}
	cLim, err := ParallelToomCook(p)
	if err != nil {
		t.Fatal(err)
	}
	p2 := p
	p2.M = 0
	cUnl, _ := ParallelToomCook(p2)
	// Limited memory costs strictly more communication.
	if cLim.BW <= cUnl.BW {
		t.Errorf("limited-memory BW (%v) should exceed unlimited (%v)", cLim.BW, cUnl.BW)
	}
	if cLim.L <= cUnl.L {
		t.Errorf("limited-memory L (%v) should exceed unlimited (%v)", cLim.L, cUnl.L)
	}
	// Arithmetic is memory-independent.
	if cLim.F != cUnl.F {
		t.Error("F should not depend on M")
	}
}

func TestFaultTolerantOverheadVanishes(t *testing.T) {
	// (1+o(1)): overhead/base → 0 as n grows with fixed P, f.
	small := Params{N: 1 << 12, P: 9, K: 2, F: 2}
	large := Params{N: 1 << 24, P: 9, K: 2, F: 2}
	bs, os, err := FaultTolerant(small)
	if err != nil {
		t.Fatal(err)
	}
	bl, ol, _ := FaultTolerant(large)
	rs := os.F / bs.F
	rl := ol.F / bl.F
	if rl >= rs {
		t.Errorf("FT overhead fraction should shrink with n: %v -> %v", rs, rl)
	}
	if rl > 0.01 {
		t.Errorf("FT overhead fraction at large n = %v, want o(1)", rl)
	}
}

func TestReplicationOverhead(t *testing.T) {
	p := Params{N: 1 << 20, P: 9, K: 2, F: 2}
	base, over, err := Replication(p)
	if err != nil {
		t.Fatal(err)
	}
	if over.F != 0 {
		t.Error("replication adds no arithmetic")
	}
	if over.BW >= base.BW {
		t.Error("replication BW overhead should be lower-order")
	}
}

func TestExtraProcessorsTableColumns(t *testing.T) {
	p := Params{N: 1 << 20, P: 27, K: 2, F: 2}
	plain, repl, ft := ExtraProcessors(p, false)
	if plain != 0 {
		t.Errorf("plain = %d", plain)
	}
	if repl != 2*27 {
		t.Errorf("replication = %d, want f·P = 54", repl)
	}
	if ft != 2*3 {
		t.Errorf("FT = %d, want f·(2k-1) = 6", ft)
	}
	// Multi-step traversal in the unlimited-memory case: only f.
	_, _, ftMulti := ExtraProcessors(p, true)
	if ftMulti != 2 {
		t.Errorf("FT multi-step = %d, want f = 2", ftMulti)
	}
	// Limited memory: multi-step does not help.
	pLim := p
	pLim.M = 4
	_, _, ftLim := ExtraProcessors(pLim, true)
	if ftLim != 6 {
		t.Errorf("FT multi-step limited = %d, want f·(2k-1)", ftLim)
	}
}

func TestHeadlineReduction(t *testing.T) {
	// The Θ(P/(2k-1)) headline: ratio of replication extra processors to FT
	// extra processors.
	p := Params{N: 1, P: 125, K: 3, F: 1}
	_, repl, ft := ExtraProcessors(p, false)
	if got, want := float64(repl)/float64(ft), OverheadReduction(p); math.Abs(got-want) > 1e-9 {
		t.Errorf("reduction = %v, want %v", got, want)
	}
}
