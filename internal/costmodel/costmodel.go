// Package costmodel provides the closed-form cost predictions of the
// paper's Section 5: arithmetic (F), bandwidth (BW) and latency (L) costs of
// Parallel Toom-Cook (Theorem 5.1), Fault-Tolerant Toom-Cook (Theorem 5.2)
// and Toom-Cook with Replication (Theorem 5.3), in both the unlimited- and
// limited-memory regimes, plus the processor-count overheads of Tables 1–2.
//
// The formulas are asymptotic (Θ-shapes with unit constants); the experiment
// harness uses them to check that measured costs *scale* as predicted, not
// to match absolute values.
package costmodel

import (
	"fmt"
	"math"
)

// Params describes a problem instance in the paper's terms.
type Params struct {
	N int64 // input size in words
	P int   // processor count
	K int   // Toom-Cook split number
	M int64 // per-processor memory in words; 0 = unlimited
	F int   // fault tolerance target f (for FT and replication variants)
}

// Costs is an asymptotic cost triple.
type Costs struct {
	F  float64 // arithmetic operations
	BW float64 // words communicated (per processor, critical path)
	L  float64 // messages (per processor, critical path)
}

// omega returns the Toom-Cook exponent log_k(2k-1).
func omega(k int) float64 {
	return math.Log(float64(2*k-1)) / math.Log(float64(k))
}

// Exponent exposes ω = log_k(2k-1), the arithmetic exponent of Toom-Cook-k.
func Exponent(k int) float64 { return omega(k) }

// gridExponent returns log_{2k-1}(k), the bandwidth exponent of Theorem 5.1.
func gridExponent(k int) float64 {
	return math.Log(float64(k)) / math.Log(float64(2*k-1))
}

// Unlimited reports whether the memory budget is in the paper's
// unlimited-memory regime: M = Ω(n / P^{log_{2k-1}k}).
func (p Params) Unlimited() bool {
	if p.M <= 0 {
		return true
	}
	need := float64(p.N) / math.Pow(float64(p.P), gridExponent(p.K))
	return float64(p.M) >= need
}

// Validate checks parameter sanity.
func (p Params) Validate() error {
	if p.N < 1 {
		return fmt.Errorf("costmodel: need N >= 1")
	}
	if p.P < 1 {
		return fmt.Errorf("costmodel: need P >= 1")
	}
	if p.K < 2 {
		return fmt.Errorf("costmodel: need K >= 2")
	}
	if p.M < 0 || p.F < 0 {
		return fmt.Errorf("costmodel: negative M or F")
	}
	return nil
}

// ParallelToomCook returns the Theorem 5.1 cost shapes of the (non
// fault-tolerant) Parallel Toom-Cook algorithm.
func ParallelToomCook(p Params) (Costs, error) {
	if err := p.Validate(); err != nil {
		return Costs{}, err
	}
	n := float64(p.N)
	pf := float64(p.P)
	w := omega(p.K)
	logP := math.Log2(pf)
	if logP < 1 {
		logP = 1
	}
	arith := math.Pow(n, w) / pf
	if p.Unlimited() {
		return Costs{
			F:  arith,
			BW: n / math.Pow(pf, gridExponent(p.K)),
			L:  logP,
		}, nil
	}
	m := float64(p.M)
	reps := math.Pow(n/m, w) // (n/M)^{log_k(2k-1)}
	return Costs{
		F:  arith,
		BW: reps * m / pf,
		L:  reps * logP / pf,
	}, nil
}

// FaultTolerant returns the Theorem 5.2 cost shapes of Fault-Tolerant
// Toom-Cook: (1+o(1)) of Parallel Toom-Cook. The o(1) terms are the code
// creation and recovery costs, which we expose separately so the harness
// can check they vanish relative to the base costs.
func FaultTolerant(p Params) (base Costs, overhead Costs, err error) {
	base, err = ParallelToomCook(p)
	if err != nil {
		return Costs{}, Costs{}, err
	}
	f := float64(p.F)
	m := float64(p.M)
	if p.M <= 0 {
		// Unlimited memory: the linear code protects the per-processor
		// footprint n/P^{log_{2k-1}k}.
		m = float64(p.N) / math.Pow(float64(p.P), gridExponent(p.K))
	}
	logTerm := math.Log2(float64(p.P)/float64(2*p.K-1) + f + 2)
	// Code creation + fault recovery: O(f·M) work and words, O(log(P/(2k-1)+f)) messages
	// (Section 5.2), plus the widened first step (factor (2k-1+f)/(2k-1), asymptotically absorbed).
	overhead = Costs{F: f * m, BW: f * m, L: logTerm}
	return base, overhead, nil
}

// Replication returns the Theorem 5.3 cost shapes of Toom-Cook with
// Replication: identical to Parallel Toom-Cook with negligible duplication
// overhead.
func Replication(p Params) (base Costs, overhead Costs, err error) {
	base, err = ParallelToomCook(p)
	if err != nil {
		return Costs{}, Costs{}, err
	}
	// Replicating the inputs to the f extra fleets costs one broadcast of
	// the per-processor share.
	share := float64(p.N) / float64(p.P)
	overhead = Costs{F: 0, BW: float64(p.F) * share, L: math.Log2(float64(p.P) + 1)}
	return base, overhead, nil
}

// ExtraProcessors returns the additional-processor columns of Tables 1 and 2
// for the three algorithms: plain Parallel Toom-Cook needs none, replication
// needs f·P, and Fault-Tolerant Toom-Cook needs f·(2k-1) — or only f in the
// unlimited-memory case with full multi-step traversal (Section 5.2).
func ExtraProcessors(p Params, multiStep bool) (plain, replication, faultTolerant int) {
	plain = 0
	replication = p.F * p.P
	if multiStep && p.Unlimited() {
		faultTolerant = p.F
	} else {
		faultTolerant = p.F * (2*p.K - 1)
	}
	return plain, replication, faultTolerant
}

// OverheadReduction returns the headline Θ(P/(2k-1)) factor by which
// Fault-Tolerant Toom-Cook reduces the *additional processor* (and hence
// redundant work) overhead relative to replication.
func OverheadReduction(p Params) float64 {
	return float64(p.P) / float64(2*p.K-1)
}
