package ftengine

import (
	"fmt"
	"sort"

	"repro/internal/bigint"
	"repro/internal/machine"
)

// Slots maps a virtual output slot to this processor's accumulated share of
// the output vector for that slot. Shares for the same slot from different
// ranks are summed element-wise by Run — the additive gather every coded
// workload in this repo recombines through.
type Slots map[int][]bigint.Int

// Rank is the per-processor mutable state the engine threads through a
// Workload's Step: the coded shard context, the Coder protecting it, and the
// fault bookkeeping the step maintains as it crosses phase barriers.
type Rank struct {
	// Ctx holds the rank's durable coded data (shard + codeword).
	Ctx *Ctx
	// Coder runs the linear-code recovery protocols for this run.
	Coder *Coder
	// DeadSeen records the workload's dead units (extended-grid columns for
	// the Toom engine, shard ranks for the matrix engine) observed at
	// barriers; identical on every processor since fault events are global.
	DeadSeen map[int]bool
	// Recovered counts data-loss events this rank helped repair.
	Recovered int
	// EvalEvents holds the fault events observed at the PhaseEval barrier,
	// for workloads whose recovery is algorithmic (replica refetch) rather
	// than erasure-coded — identical on every processor.
	EvalEvents []machine.FaultEvent
}

// Workload is a fault-tolerant algorithm the engine can execute: it shards
// its inputs, computes per rank, decodes around the dead shards, and
// recombines the surviving slot shares into the flat output vector.
type Workload interface {
	// Shard returns the rank's flat input shard (nil for ranks that hold no
	// input — code processors, or spare ranks). Called once per rank before
	// the coded prologue; the Coder's linear code protects exactly this
	// vector.
	Shard(rank int) []bigint.Int
	// Step is the SPMD compute body. It may send, receive, barrier, and use
	// rk.Coder's protocols; it must record dead units in rk.DeadSeen and
	// count repairs in rk.Recovered. The returned slot shares are summed
	// across ranks by Run.
	Step(p *machine.Proc, rk *Rank) (Slots, error)
	// Decode maps the gathered slot shares around the dead units reported
	// by rank 0 (fault events are global, so every rank reports the same
	// set). Workloads whose Step already routed around faults return the
	// slots unchanged.
	Decode(dead []int, slots map[int][]bigint.Int) (map[int][]bigint.Int, error)
	// Recombine assembles the decoded slot shares into the output vector.
	Recombine(slots map[int][]bigint.Int) ([]bigint.Int, error)
}

// RunOptions configures one engine execution.
type RunOptions struct {
	// Layout is the processor grid; Machine.P is overridden with its Total.
	Layout Layout
	// Coder protects the input shards (built with NewCoder; a nil erasure
	// code inside it is valid for f = 0).
	Coder *Coder
	// Machine configures α/β/γ, memory, and the backend.
	Machine machine.Config
	// Faults is the fail-stop injection plan.
	Faults []machine.Fault
	// DropStragglers skips the coded prologue: delay-fault mitigation mode
	// runs without barriers or linear coding (the workload's Step uses the
	// Straggler protocol instead).
	DropStragglers bool
}

// RunResult reports one engine execution.
type RunResult struct {
	// Output is the workload's recombined output vector.
	Output []bigint.Int
	// Report is the machine's cost accounting.
	Report *machine.Report
	// Dead lists the workload's dead units as observed by rank 0.
	Dead []int
	// Recovered counts data-loss events repaired by the linear code.
	Recovered int
}

// exec carries the per-run immutable engine state shared by all processors.
type exec struct {
	wl             Workload
	lay            Layout
	coder          *Coder
	dropStragglers bool
}

// runRank is the generic SPMD body: coded prologue (encode + eval barrier +
// recovery), then the workload's step. It returns the rank's slot shares,
// the dead units it observed, and the repairs it participated in.
func (x *exec) runRank(p *machine.Proc) (Slots, []int, int, error) {
	rk := &Rank{
		Ctx:      &Ctx{Data: x.wl.Shard(p.ID())},
		Coder:    x.coder,
		DeadSeen: map[int]bool{},
	}
	if !x.dropStragglers {
		if err := x.coder.Protect(p, rk); err != nil {
			return nil, nil, 0, err
		}
	}
	shares, err := x.wl.Step(p, rk)
	if err != nil {
		return nil, nil, 0, err
	}
	var dead []int
	for c := range rk.DeadSeen {
		dead = append(dead, c)
	}
	sort.Ints(dead)
	return shares, dead, rk.Recovered, nil
}

// Run executes the workload on a fresh machine: encode → scatter (via
// Shard) → compute (Step, with barrier/fault-detect inside the coded
// prologue and the step's own phases) → gather (additive slot merge) →
// decode → recombine. The merge and recombination are unmetered read-out,
// exactly like the harness side of the Toom engine they were extracted from.
func Run(wl Workload, opts RunOptions) (*RunResult, error) {
	cfg := opts.Machine
	cfg.P = opts.Layout.Total()
	m, err := machine.New(cfg, opts.Faults)
	if err != nil {
		return nil, err
	}
	x := &exec{wl: wl, lay: opts.Layout, coder: opts.Coder, dropStragglers: opts.DropStragglers}
	results := make([]Slots, cfg.P)
	deadLog := make([][]int, cfg.P)
	recovered := make([]int, cfg.P)
	rep, err := m.Run(func(p *machine.Proc) error {
		st, dead, rec, err := x.runRank(p)
		if err != nil {
			return err
		}
		results[p.ID()] = st
		deadLog[p.ID()] = dead
		recovered[p.ID()] = rec
		return nil
	})
	if err != nil {
		return nil, err
	}
	perSlot := map[int][]bigint.Int{}
	for _, st := range results {
		for slot, share := range st {
			cur, ok := perSlot[slot]
			if !ok {
				perSlot[slot] = append([]bigint.Int(nil), share...)
				continue
			}
			if len(cur) != len(share) {
				return nil, fmt.Errorf("ftengine: ragged slot shares")
			}
			for i := range cur {
				cur[i] = cur[i].Add(share[i])
			}
		}
	}
	if len(perSlot) == 0 {
		return nil, fmt.Errorf("ftengine: no result shares")
	}
	decoded, err := wl.Decode(deadLog[0], perSlot)
	if err != nil {
		return nil, err
	}
	out, err := wl.Recombine(decoded)
	if err != nil {
		return nil, err
	}
	return &RunResult{
		Output:    out,
		Report:    rep,
		Dead:      deadLog[0],
		Recovered: recovered[0],
	}, nil
}
